package repro_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// maxTrackedFileSize is the repo policy enforced here and in CI: no
// tracked binary artifact over 1 MB. (A 5.2 MB repro.test once shipped
// in the tree; this is its regression test.)
const maxTrackedFileSize = 1 << 20

// textExtensions are tracked formats that may legitimately grow large;
// everything else over the limit is treated as an accidental binary.
var textExtensions = map[string]bool{
	".go": true, ".md": true, ".json": true, ".txt": true,
	".yml": true, ".yaml": true, ".mod": true, ".sum": true, ".csv": true,
}

// TestNoLargeTrackedBinaries walks `git ls-files` and fails on any
// tracked file over 1 MB that is not a known text format.
func TestNoLargeTrackedBinaries(t *testing.T) {
	out, err := exec.Command("git", "ls-files", "-z").Output()
	if err != nil {
		t.Skipf("git not available: %v", err)
	}
	for _, name := range strings.Split(string(bytes.TrimRight(out, "\x00")), "\x00") {
		if name == "" {
			continue
		}
		info, err := os.Stat(name)
		if err != nil {
			continue // deleted in the working tree but still tracked
		}
		if info.Size() > maxTrackedFileSize && !textExtensions[filepath.Ext(name)] {
			t.Errorf("tracked file %s is %d bytes (> %d) and not a text format; test binaries and profiles must not be committed",
				name, info.Size(), maxTrackedFileSize)
		}
	}
}
