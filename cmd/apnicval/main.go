// Command apnicval is the released artifact: it runs the paper's
// reliability checks (§5) against the APNIC dataset for one or all
// countries and prints a verdict per country.
//
// Usage:
//
//	apnicval -date 2024-08-09 -country RU
//	apnicval -date 2024-08-09            # all countries, summary table
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	dateStr := flag.String("date", "2024-08-09", "date to validate (YYYY-MM-DD)")
	country := flag.String("country", "", "single country (default: all)")
	flag.Parse()

	d, err := dates.Parse(*dateStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apnicval:", err)
		os.Exit(2)
	}
	lab := experiments.NewLab(*seed)

	if *country != "" {
		rep := experiments.RunCountryChecks(lab, *country, d)
		fmt.Printf("%s on %s: %s\n\n", *country, d, rep.Verdict)
		for _, c := range rep.Checks {
			status := "PASS"
			if !c.Passed {
				status = "FAIL"
			}
			fmt.Printf("  [%s] %-20s %s\n", status, c.Name, c.Detail)
		}
		if rep.Verdict != core.Reliable {
			os.Exit(1)
		}
		return
	}

	reports := experiments.CheckAll(lab, d)
	ccs := make([]string, 0, len(reports))
	for cc := range reports {
		ccs = append(ccs, cc)
	}
	sort.Slice(ccs, func(i, j int) bool {
		if reports[ccs[i]].Verdict != reports[ccs[j]].Verdict {
			return reports[ccs[i]].Verdict > reports[ccs[j]].Verdict
		}
		return ccs[i] < ccs[j]
	})
	var rows [][]string
	counts := map[core.Verdict]int{}
	for _, cc := range ccs {
		rep := reports[cc]
		counts[rep.Verdict]++
		if rep.Verdict == core.Reliable {
			continue // table lists only countries needing attention
		}
		var failed string
		for _, c := range rep.Checks {
			if !c.Passed {
				if failed != "" {
					failed += ", "
				}
				failed += c.Name
			}
		}
		rows = append(rows, []string{cc, rep.Verdict.String(), failed})
	}
	fmt.Printf("APNIC reliability on %s: %d reliable, %d caution, %d unreliable\n\n",
		d, counts[core.Reliable], counts[core.Caution], counts[core.Unreliable])
	fmt.Println(report.Table([]string{"Country", "Verdict", "Failed checks"}, rows))

	if guidance := core.Recommend(reports); len(guidance) > 0 {
		fmt.Println("recommendations:")
		for _, g := range guidance {
			fmt.Printf("\n  [%s] %v\n  %s\n", g.Check, g.Countries, g.Advice)
		}
	}
}
