// Command benchsweep records the performance trajectory of the full
// experiment sweep: wall time, heap allocations, and per-runner timings
// at one or more parallelism levels, written as a JSON artifact
// (BENCH_sweep.json) that CI archives per commit so regressions show up
// as a trend rather than an anecdote.
//
// Usage:
//
//	benchsweep [-seed N] [-parallel 1,0] [-out BENCH_sweep.json] [-max-allocs N]
//
// Parallelism 0 means GOMAXPROCS. Allocation counts are runtime.MemStats
// deltas around the sweep itself — lab construction (world build) is
// excluded, matching what BenchmarkFullSweepParallel1 times. With
// -max-allocs > 0 the tool exits 1 if the first listed parallelism
// level's sweep allocates more than the budget, which is how CI gates
// allocation regressions (the budget is set ~20% above the expected
// count).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

// RunnerTiming is one runner's wall time within a sweep.
type RunnerTiming struct {
	Name      string `json:"name"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// Sweep is the measurement of one full RunAll at a parallelism level.
type Sweep struct {
	Parallelism int   `json:"parallelism"` // as requested; 0 = GOMAXPROCS
	Workers     int   `json:"workers"`     // effective worker count
	WallNS      int64 `json:"wall_ns"`
	SerialNS    int64 `json:"serial_ns"` // sum of per-runner wall times
	Mallocs     int64 `json:"mallocs"`
	AllocBytes  int64 `json:"alloc_bytes"`

	Runners []RunnerTiming `json:"runners"`
}

// Report is the whole BENCH_sweep.json document.
type Report struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Seed          uint64  `json:"seed"`
	Sweeps        []Sweep `json:"sweeps"`
}

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	parallel := flag.String("parallel", "1,0", "comma-separated parallelism levels (0 = GOMAXPROCS)")
	out := flag.String("out", "BENCH_sweep.json", "output path")
	maxAllocs := flag.Int64("max-allocs", 0, "fail if the first level's sweep allocates more than this (0 = no gate)")
	flag.Parse()

	var levels []int
	for _, f := range strings.Split(*parallel, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 0 {
			fmt.Fprintf(os.Stderr, "bad -parallel entry %q\n", f)
			os.Exit(2)
		}
		levels = append(levels, p)
	}

	rep := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          *seed,
	}

	for _, p := range levels {
		s := measure(*seed, p)
		rep.Sweeps = append(rep.Sweeps, s)
		fmt.Fprintf(os.Stderr, "parallel=%d (workers=%d): wall=%s serial=%s mallocs=%d alloc=%s\n",
			s.Parallelism, s.Workers, time.Duration(s.WallNS), time.Duration(s.SerialNS),
			s.Mallocs, fmtBytes(s.AllocBytes))
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *maxAllocs > 0 && rep.Sweeps[0].Mallocs > *maxAllocs {
		fmt.Fprintf(os.Stderr, "allocation budget exceeded: %d > %d at parallelism %d\n",
			rep.Sweeps[0].Mallocs, *maxAllocs, rep.Sweeps[0].Parallelism)
		os.Exit(1)
	}
}

// measure runs one full sweep on a fresh lab and returns its accounting.
// The lab (world build) is constructed before the measured region so the
// numbers isolate the sweep, like the benchmarks do.
func measure(seed uint64, parallelism int) Sweep {
	lab := experiments.NewLab(seed)
	runners := experiments.Runners()

	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runners) {
		workers = len(runners)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	recs := experiments.RunAll(lab, runners, parallelism, nil)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	s := Sweep{
		Parallelism: parallelism,
		Workers:     workers,
		WallNS:      wall.Nanoseconds(),
		SerialNS:    experiments.TotalElapsed(recs).Nanoseconds(),
		Mallocs:     int64(after.Mallocs - before.Mallocs),
		AllocBytes:  int64(after.TotalAlloc - before.TotalAlloc),
	}
	for _, r := range recs {
		s.Runners = append(s.Runners, RunnerTiming{Name: r.Runner.Name, ElapsedNS: r.Elapsed.Nanoseconds()})
	}
	return s
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
