// Command benchsweep records the performance trajectory of the full
// experiment sweep: wall time, heap allocations, and per-runner timings
// at one or more parallelism levels, written as a JSON artifact
// (BENCH_sweep.json) that CI archives per commit so regressions show up
// as a trend rather than an anecdote.
//
// Usage:
//
//	benchsweep [-seed N] [-parallel 1,0] [-out BENCH_sweep.json] [-max-allocs N] [-max-regress-pct P] [-baseline FILE]
//
// Parallelism 0 means GOMAXPROCS. Allocation counts are runtime.MemStats
// deltas around the sweep itself — lab construction (world build) is
// excluded, matching what BenchmarkFullSweepParallel1 times. With
// -max-allocs > 0 the tool exits 1 if the first listed parallelism
// level's sweep allocates more than the budget, which is how CI gates
// allocation regressions (the budget is set ~20% above the expected
// count).
//
// The report carries a trajectory: before overwriting -out, the previous
// report's headline sweep (wall time, mallocs, per-runner timings) is
// appended to a rolling history (most recent last, capped at 50 runs), so
// the artifact records how per-runner cost moved across commits. With
// -max-regress-pct > 0 the tool exits 1 when the first listed level's
// wall time exceeds the baseline's same-position sweep by more than that
// percentage — the CI soft gate against wall-clock regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/source/bundle"
	"repro/internal/world"
)

// RunnerTiming is one runner's wall time within a sweep.
type RunnerTiming struct {
	Name      string `json:"name"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// Sweep is the measurement of one full RunAll at a parallelism level.
type Sweep struct {
	Parallelism int   `json:"parallelism"` // as requested; 0 = GOMAXPROCS
	Workers     int   `json:"workers"`     // effective worker count
	WallNS      int64 `json:"wall_ns"`
	SerialNS    int64 `json:"serial_ns"` // sum of per-runner wall times
	Mallocs     int64 `json:"mallocs"`
	AllocBytes  int64 `json:"alloc_bytes"`

	Runners []RunnerTiming `json:"runners"`
}

// SourceTiming is one dataset's cold Generate cost through the source
// registry: a fresh bundle, one registry.Frame call, MemStats deltas
// around it. These rows track the per-dataset generation cost the same
// way the sweep rows track the experiment runners.
type SourceTiming struct {
	Name       string `json:"name"`
	ElapsedNS  int64  `json:"elapsed_ns"`
	Mallocs    int64  `json:"mallocs"`
	AllocBytes int64  `json:"alloc_bytes"`
	Rows       int    `json:"rows"`
}

// Report is the whole BENCH_sweep.json document.
type Report struct {
	GeneratedUnix int64          `json:"generated_unix"`
	GoVersion     string         `json:"go_version"`
	NumCPU        int            `json:"num_cpu"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Seed          uint64         `json:"seed"`
	Sweeps        []Sweep        `json:"sweeps"`
	Sources       []SourceTiming `json:"sources"`

	// History holds prior runs' headline sweeps, oldest first, capped at
	// historyCap entries. Each new run folds the previous report's first
	// sweep in before overwriting the file.
	History []HistoryEntry `json:"history,omitempty"`
}

// HistoryEntry is one prior run's headline sweep, kept compact so the
// trajectory stays readable in diffs.
type HistoryEntry struct {
	GeneratedUnix int64          `json:"generated_unix"`
	Parallelism   int            `json:"parallelism"`
	WallNS        int64          `json:"wall_ns"`
	Mallocs       int64          `json:"mallocs"`
	Runners       []RunnerTiming `json:"runners,omitempty"`
}

// historyCap bounds the rolling trajectory carried inside the report.
const historyCap = 50

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	parallel := flag.String("parallel", "1,0", "comma-separated parallelism levels (0 = GOMAXPROCS)")
	out := flag.String("out", "BENCH_sweep.json", "output path")
	maxAllocs := flag.Int64("max-allocs", 0, "fail if the first level's sweep allocates more than this (0 = no gate)")
	maxRegress := flag.Float64("max-regress-pct", 0,
		"fail if the first level's wall time regresses more than this percent vs the baseline (0 = no gate)")
	baseline := flag.String("baseline", "", "baseline report for the regression gate and history (default: the -out path before overwrite)")
	flag.Parse()

	var levels []int
	for _, f := range strings.Split(*parallel, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 0 {
			fmt.Fprintf(os.Stderr, "bad -parallel entry %q\n", f)
			os.Exit(2)
		}
		levels = append(levels, p)
	}

	// Load the baseline before the measured run so the gate and history
	// survive -out pointing at the file about to be overwritten.
	basePath := *baseline
	if basePath == "" {
		basePath = *out
	}
	base := loadReport(basePath)

	rep := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          *seed,
	}
	if base != nil {
		rep.History = append(rep.History, base.History...)
		if len(base.Sweeps) > 0 {
			s := base.Sweeps[0]
			rep.History = append(rep.History, HistoryEntry{
				GeneratedUnix: base.GeneratedUnix,
				Parallelism:   s.Parallelism,
				WallNS:        s.WallNS,
				Mallocs:       s.Mallocs,
				Runners:       s.Runners,
			})
		}
		if n := len(rep.History); n > historyCap {
			rep.History = rep.History[n-historyCap:]
		}
	}

	for _, p := range levels {
		s := measure(*seed, p)
		rep.Sweeps = append(rep.Sweeps, s)
		fmt.Fprintf(os.Stderr, "parallel=%d (workers=%d): wall=%s serial=%s mallocs=%d alloc=%s\n",
			s.Parallelism, s.Workers, time.Duration(s.WallNS), time.Duration(s.SerialNS),
			s.Mallocs, fmtBytes(s.AllocBytes))
	}

	rep.Sources = measureSources(*seed)
	for _, st := range rep.Sources {
		fmt.Fprintf(os.Stderr, "source %-10s: generate=%s rows=%d mallocs=%d alloc=%s\n",
			st.Name, time.Duration(st.ElapsedNS), st.Rows, st.Mallocs, fmtBytes(st.AllocBytes))
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *maxAllocs > 0 && rep.Sweeps[0].Mallocs > *maxAllocs {
		fmt.Fprintf(os.Stderr, "allocation budget exceeded: %d > %d at parallelism %d\n",
			rep.Sweeps[0].Mallocs, *maxAllocs, rep.Sweeps[0].Parallelism)
		os.Exit(1)
	}
	if *maxRegress > 0 && base != nil && len(base.Sweeps) > 0 && base.Sweeps[0].WallNS > 0 {
		budget := float64(base.Sweeps[0].WallNS) * (1 + *maxRegress/100)
		if got := rep.Sweeps[0].WallNS; float64(got) > budget {
			fmt.Fprintf(os.Stderr, "wall-time regression at parallelism %d: %s vs baseline %s (+%.0f%% budget)\n",
				rep.Sweeps[0].Parallelism, time.Duration(got), time.Duration(base.Sweeps[0].WallNS), *maxRegress)
			os.Exit(1)
		}
	}
}

// loadReport reads a prior BENCH_sweep.json, or nil when the file is
// missing or unparseable (first run, or a format change).
func loadReport(path string) *Report {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil
	}
	return &r
}

// measure runs one full sweep on a fresh lab and returns its accounting.
// The lab (world build) is constructed before the measured region so the
// numbers isolate the sweep, like the benchmarks do.
func measure(seed uint64, parallelism int) Sweep {
	lab := experiments.NewLab(seed)
	runners := experiments.Runners()

	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runners) {
		workers = len(runners)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	recs := experiments.RunAll(lab, runners, parallelism, nil)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	s := Sweep{
		Parallelism: parallelism,
		Workers:     workers,
		WallNS:      wall.Nanoseconds(),
		SerialNS:    experiments.TotalElapsed(recs).Nanoseconds(),
		Mallocs:     int64(after.Mallocs - before.Mallocs),
		AllocBytes:  int64(after.TotalAlloc - before.TotalAlloc),
	}
	for _, r := range recs {
		s.Runners = append(s.Runners, RunnerTiming{Name: r.Runner.Name, ElapsedNS: r.Elapsed.Nanoseconds()})
	}
	return s
}

// measureSources times one cold Generate per registered dataset through
// the registry's frame path. The world is built once outside the
// measured regions; each dataset's first Frame call is what's timed, so
// the rows record generation cost, not cache hits.
func measureSources(seed uint64) []SourceTiming {
	w := world.MustBuild(world.Config{Seed: seed})
	b := bundle.New(w, seed, bundle.Config{})
	day := experiments.PrimaryCDNDay

	var out []SourceTiming
	for _, name := range b.Registry.Names() {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		f, err := b.Registry.Frame(name, day)
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: source %s: %v\n", name, err)
			os.Exit(1)
		}
		out = append(out, SourceTiming{
			Name:       name,
			ElapsedNS:  elapsed.Nanoseconds(),
			Mallocs:    int64(after.Mallocs - before.Mallocs),
			AllocBytes: int64(after.TotalAlloc - before.TotalAlloc),
			Rows:       f.Rows(),
		})
	}
	return out
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
