// Command benchsweep records the performance trajectory of the full
// experiment sweep: wall time, heap allocations, and per-runner timings
// at one or more parallelism levels, written as a JSON artifact
// (BENCH_sweep.json) that CI archives per commit so regressions show up
// as a trend rather than an anecdote.
//
// Usage:
//
//	benchsweep [-seed N] [-parallel 1,0] [-out BENCH_sweep.json] [-max-allocs N] [-max-regress-pct P] [-baseline FILE]
//	           [-max-bin-decode-allocs N] [-min-bin-speedup X]
//	           [-max-binz-decode-allocs N] [-min-binz-ratio X]
//
// Parallelism 0 means GOMAXPROCS. Allocation counts are runtime.MemStats
// deltas around the sweep itself — lab construction (world build) is
// excluded, matching what BenchmarkFullSweepParallel1 times. With
// -max-allocs > 0 the tool exits 1 if the first listed parallelism
// level's sweep allocates more than the budget, which is how CI gates
// allocation regressions (the budget is set ~20% above the expected
// count).
//
// The report carries a trajectory: before overwriting -out, the previous
// report's headline sweep (wall time, mallocs, per-runner timings) is
// appended to a rolling history (most recent last, capped at 50 runs), so
// the artifact records how per-runner cost moved across commits. With
// -max-regress-pct > 0 the tool exits 1 when the first listed level's
// wall time exceeds the baseline's same-position sweep by more than that
// percentage — the CI soft gate against wall-clock regressions.
//
// The report also carries a wire-format matrix: encode/decode ns per op,
// bytes/sec, and decode allocs per op for each dataset under the csv,
// json, binary (bin), and compressed binary (binz) frame codecs.
// -max-bin-decode-allocs gates the binary decoder's O(1) allocation
// promise; -min-bin-speedup gates the binary round trip's bytes/sec
// advantage over CSV (the reason the binary data plane exists);
// -max-binz-decode-allocs gates the compressed decoder's O(columns)
// allocation promise; -min-binz-ratio gates the compression win — every
// dataset's .bin body must be at least that many times the size of its
// .binz body.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/source"
	"repro/internal/source/binfmt"
	"repro/internal/source/bundle"
	"repro/internal/source/framez"
	"repro/internal/world"
)

// RunnerTiming is one runner's wall time within a sweep.
type RunnerTiming struct {
	Name      string `json:"name"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// Sweep is the measurement of one full RunAll at a parallelism level.
type Sweep struct {
	Parallelism int   `json:"parallelism"` // as requested; 0 = GOMAXPROCS
	Workers     int   `json:"workers"`     // effective worker count
	WallNS      int64 `json:"wall_ns"`
	SerialNS    int64 `json:"serial_ns"` // sum of per-runner wall times
	Mallocs     int64 `json:"mallocs"`
	AllocBytes  int64 `json:"alloc_bytes"`

	Runners []RunnerTiming `json:"runners"`
}

// SourceTiming is one dataset's cold Generate cost through the source
// registry: a fresh bundle, one registry.Frame call, MemStats deltas
// around it. These rows track the per-dataset generation cost the same
// way the sweep rows track the experiment runners.
type SourceTiming struct {
	Name       string `json:"name"`
	ElapsedNS  int64  `json:"elapsed_ns"`
	Mallocs    int64  `json:"mallocs"`
	AllocBytes int64  `json:"alloc_bytes"`
	Rows       int    `json:"rows"`
}

// CodecTiming is one (dataset, codec) cell of the wire-format matrix:
// encode and decode cost over the dataset's primary-day frame, plus the
// decode allocation count — the number the binary plane exists to crush.
type CodecTiming struct {
	Source            string  `json:"source"`
	Codec             string  `json:"codec"` // "csv", "json", "bin", "binz"
	Bytes             int     `json:"bytes"` // encoded body size
	EncodeNSOp        int64   `json:"encode_ns_op"`
	DecodeNSOp        int64   `json:"decode_ns_op"`
	EncodeBytesPerSec float64 `json:"encode_bytes_per_sec"`
	DecodeBytesPerSec float64 `json:"decode_bytes_per_sec"`
	DecodeAllocsPerOp float64 `json:"decode_allocs_per_op"`
}

// ScenarioTiming is one scenario's full world-build cost, recorded so
// the declarative shock layer's overhead over the hard-coded paper
// world stays visible as a trend. OverheadPct is relative to the paper
// row (the paper row itself reads 0).
type ScenarioTiming struct {
	Name        string  `json:"name"`
	BuildNS     int64   `json:"build_ns"`
	Mallocs     int64   `json:"mallocs"`
	OverheadPct float64 `json:"overhead_pct"`
}

// Report is the whole BENCH_sweep.json document.
type Report struct {
	GeneratedUnix int64            `json:"generated_unix"`
	GoVersion     string           `json:"go_version"`
	NumCPU        int              `json:"num_cpu"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Seed          uint64           `json:"seed"`
	Sweeps        []Sweep          `json:"sweeps"`
	Sources       []SourceTiming   `json:"sources"`
	Codecs        []CodecTiming    `json:"codecs"`
	Scenarios     []ScenarioTiming `json:"scenarios"`

	// History holds prior runs' headline sweeps, oldest first, capped at
	// historyCap entries. Each new run folds the previous report's first
	// sweep in before overwriting the file.
	History []HistoryEntry `json:"history,omitempty"`
}

// HistoryEntry is one prior run's headline sweep, kept compact so the
// trajectory stays readable in diffs.
type HistoryEntry struct {
	GeneratedUnix int64          `json:"generated_unix"`
	Parallelism   int            `json:"parallelism"`
	WallNS        int64          `json:"wall_ns"`
	Mallocs       int64          `json:"mallocs"`
	Runners       []RunnerTiming `json:"runners,omitempty"`
}

// historyCap bounds the rolling trajectory carried inside the report.
const historyCap = 50

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	parallel := flag.String("parallel", "1,0", "comma-separated parallelism levels (0 = GOMAXPROCS)")
	out := flag.String("out", "BENCH_sweep.json", "output path")
	maxAllocs := flag.Int64("max-allocs", 0, "fail if the first level's sweep allocates more than this (0 = no gate)")
	maxRegress := flag.Float64("max-regress-pct", 0,
		"fail if the first level's wall time regresses more than this percent vs the baseline (0 = no gate)")
	baseline := flag.String("baseline", "", "baseline report for the regression gate and history (default: the -out path before overwrite)")
	maxBinDecodeAllocs := flag.Float64("max-bin-decode-allocs", 0,
		"fail if any dataset's binary decode allocates more than this per op (0 = no gate)")
	minBinSpeedup := flag.Float64("min-bin-speedup", 0,
		"fail if the apnic binary encode+decode round trip is not at least this many times the CSV round trip in bytes/sec (0 = no gate)")
	maxBinzDecodeAllocs := flag.Float64("max-binz-decode-allocs", 0,
		"fail if any dataset's compressed binary decode allocates more than this per op (0 = no gate)")
	minBinzRatio := flag.Float64("min-binz-ratio", 0,
		"fail if any dataset's bin/binz size ratio is below this (0 = no gate)")
	flag.Parse()

	var levels []int
	for _, f := range strings.Split(*parallel, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 0 {
			fmt.Fprintf(os.Stderr, "bad -parallel entry %q\n", f)
			os.Exit(2)
		}
		levels = append(levels, p)
	}

	// Load the baseline before the measured run so the gate and history
	// survive -out pointing at the file about to be overwritten.
	basePath := *baseline
	if basePath == "" {
		basePath = *out
	}
	base := loadReport(basePath)

	rep := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          *seed,
	}
	if base != nil {
		rep.History = append(rep.History, base.History...)
		if len(base.Sweeps) > 0 {
			s := base.Sweeps[0]
			rep.History = append(rep.History, HistoryEntry{
				GeneratedUnix: base.GeneratedUnix,
				Parallelism:   s.Parallelism,
				WallNS:        s.WallNS,
				Mallocs:       s.Mallocs,
				Runners:       s.Runners,
			})
		}
		if n := len(rep.History); n > historyCap {
			rep.History = rep.History[n-historyCap:]
		}
	}

	for _, p := range levels {
		s := measure(*seed, p)
		rep.Sweeps = append(rep.Sweeps, s)
		fmt.Fprintf(os.Stderr, "parallel=%d (workers=%d): wall=%s serial=%s mallocs=%d alloc=%s\n",
			s.Parallelism, s.Workers, time.Duration(s.WallNS), time.Duration(s.SerialNS),
			s.Mallocs, fmtBytes(s.AllocBytes))
	}

	rep.Sources = measureSources(*seed)
	for _, st := range rep.Sources {
		fmt.Fprintf(os.Stderr, "source %-10s: generate=%s rows=%d mallocs=%d alloc=%s\n",
			st.Name, time.Duration(st.ElapsedNS), st.Rows, st.Mallocs, fmtBytes(st.AllocBytes))
	}

	rep.Codecs = measureCodecs(*seed)
	for _, ct := range rep.Codecs {
		fmt.Fprintf(os.Stderr, "codec  %-10s %-4s: %8s enc=%s/op dec=%s/op dec=%s/s allocs/dec=%.0f\n",
			ct.Source, ct.Codec, fmtBytes(int64(ct.Bytes)), time.Duration(ct.EncodeNSOp),
			time.Duration(ct.DecodeNSOp), fmtBytes(int64(ct.DecodeBytesPerSec)), ct.DecodeAllocsPerOp)
	}

	rep.Scenarios = measureScenarios(*seed)
	for _, st := range rep.Scenarios {
		fmt.Fprintf(os.Stderr, "scenario %-14s: build=%s mallocs=%d overhead=%+.1f%%\n",
			st.Name, time.Duration(st.BuildNS), st.Mallocs, st.OverheadPct)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *maxAllocs > 0 && rep.Sweeps[0].Mallocs > *maxAllocs {
		fmt.Fprintf(os.Stderr, "allocation budget exceeded: %d > %d at parallelism %d\n",
			rep.Sweeps[0].Mallocs, *maxAllocs, rep.Sweeps[0].Parallelism)
		os.Exit(1)
	}
	if *maxRegress > 0 && base != nil && len(base.Sweeps) > 0 && base.Sweeps[0].WallNS > 0 {
		budget := float64(base.Sweeps[0].WallNS) * (1 + *maxRegress/100)
		if got := rep.Sweeps[0].WallNS; float64(got) > budget {
			fmt.Fprintf(os.Stderr, "wall-time regression at parallelism %d: %s vs baseline %s (+%.0f%% budget)\n",
				rep.Sweeps[0].Parallelism, time.Duration(got), time.Duration(base.Sweeps[0].WallNS), *maxRegress)
			os.Exit(1)
		}
	}
	if *maxBinDecodeAllocs > 0 {
		for _, ct := range rep.Codecs {
			if ct.Codec == "bin" && ct.DecodeAllocsPerOp > *maxBinDecodeAllocs {
				fmt.Fprintf(os.Stderr, "binary decode alloc budget exceeded for %s: %.1f > %.1f allocs/op\n",
					ct.Source, ct.DecodeAllocsPerOp, *maxBinDecodeAllocs)
				os.Exit(1)
			}
		}
	}
	if *maxBinzDecodeAllocs > 0 {
		for _, ct := range rep.Codecs {
			if ct.Codec == "binz" && ct.DecodeAllocsPerOp > *maxBinzDecodeAllocs {
				fmt.Fprintf(os.Stderr, "compressed binary decode alloc budget exceeded for %s: %.1f > %.1f allocs/op\n",
					ct.Source, ct.DecodeAllocsPerOp, *maxBinzDecodeAllocs)
				os.Exit(1)
			}
		}
	}
	if *minBinzRatio > 0 {
		// Size ratio per dataset: the compressed plane must beat the raw
		// binary body everywhere, by at least the configured factor. The
		// floor is set by the least compressible dataset (itu: one column
		// of full-entropy float64 mantissas bounds its lossless ratio near
		// 1.3x; the other six sit between 2x and 5x).
		size := map[string]map[string]int{}
		for _, ct := range rep.Codecs {
			if size[ct.Source] == nil {
				size[ct.Source] = map[string]int{}
			}
			size[ct.Source][ct.Codec] = ct.Bytes
		}
		for src, byCodec := range size {
			bin, binz := byCodec["bin"], byCodec["binz"]
			if bin == 0 || binz == 0 {
				fmt.Fprintf(os.Stderr, "binz ratio gate: missing bin/binz row for %s\n", src)
				os.Exit(1)
			}
			if ratio := float64(bin) / float64(binz); ratio < *minBinzRatio {
				fmt.Fprintf(os.Stderr, "binz compression gate failed for %s: bin/binz = %.2fx < %.2fx (%d vs %d bytes)\n",
					src, ratio, *minBinzRatio, bin, binz)
				os.Exit(1)
			}
		}
	}
	if *minBinSpeedup > 0 {
		// Round-trip throughput for the hottest dataset: encoded bytes over
		// the combined encode+decode time. The binary plane's reason to
		// exist is this ratio staying comfortably above 1.
		roundTrip := func(codec string) float64 {
			for _, ct := range rep.Codecs {
				if ct.Source == "apnic" && ct.Codec == codec && ct.EncodeNSOp+ct.DecodeNSOp > 0 {
					return float64(ct.Bytes) / (float64(ct.EncodeNSOp+ct.DecodeNSOp) / 1e9)
				}
			}
			return 0
		}
		csvRT, binRT := roundTrip("csv"), roundTrip("bin")
		if csvRT <= 0 || binRT < *minBinSpeedup*csvRT {
			fmt.Fprintf(os.Stderr, "binary speedup gate failed: bin round trip %s/s vs csv %s/s (want >= %.1fx)\n",
				fmtBytes(int64(binRT)), fmtBytes(int64(csvRT)), *minBinSpeedup)
			os.Exit(1)
		}
	}
}

// loadReport reads a prior BENCH_sweep.json, or nil when the file is
// missing or unparseable (first run, or a format change).
func loadReport(path string) *Report {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil
	}
	return &r
}

// measure runs one full sweep on a fresh lab and returns its accounting.
// The lab (world build) is constructed before the measured region so the
// numbers isolate the sweep, like the benchmarks do.
func measure(seed uint64, parallelism int) Sweep {
	lab := experiments.NewLab(seed)
	runners := experiments.Runners()

	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runners) {
		workers = len(runners)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	recs := experiments.RunAll(lab, runners, parallelism, nil)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	s := Sweep{
		Parallelism: parallelism,
		Workers:     workers,
		WallNS:      wall.Nanoseconds(),
		SerialNS:    experiments.TotalElapsed(recs).Nanoseconds(),
		Mallocs:     int64(after.Mallocs - before.Mallocs),
		AllocBytes:  int64(after.TotalAlloc - before.TotalAlloc),
	}
	for _, r := range recs {
		s.Runners = append(s.Runners, RunnerTiming{Name: r.Runner.Name, ElapsedNS: r.Elapsed.Nanoseconds()})
	}
	return s
}

// measureSources times one cold Generate per registered dataset through
// the registry's frame path. The world is built once outside the
// measured regions; each dataset's first Frame call is what's timed, so
// the rows record generation cost, not cache hits.
func measureSources(seed uint64) []SourceTiming {
	w := world.MustBuild(world.Config{Seed: seed})
	b := bundle.New(w, seed, bundle.Config{})
	day := experiments.PrimaryCDNDay

	var out []SourceTiming
	for _, name := range b.Registry.Names() {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		f, err := b.Registry.Frame(name, day)
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: source %s: %v\n", name, err)
			os.Exit(1)
		}
		out = append(out, SourceTiming{
			Name:       name,
			ElapsedNS:  elapsed.Nanoseconds(),
			Mallocs:    int64(after.Mallocs - before.Mallocs),
			AllocBytes: int64(after.TotalAlloc - before.TotalAlloc),
			Rows:       f.Rows(),
		})
	}
	return out
}

// measureScenarios times a full world.Build under the paper scenario
// and one representative counterfactual, so the cost of routing every
// shock through the declarative scenario layer is a recorded trend, not
// a guess. Builds are slow enough (hundreds of ms) that a small fixed
// iteration count is adequate resolution for the percent-level question
// this row answers.
func measureScenarios(seed uint64) []ScenarioTiming {
	const iters = 3
	roster := []*scenario.Scenario{scenario.Paper()}
	if cg, ok := scenario.ByName("cgnat-wave"); ok {
		roster = append(roster, cg)
	}

	var out []ScenarioTiming
	for _, scn := range roster {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := world.Build(world.Config{Seed: seed, Scenario: scn}); err != nil {
				fmt.Fprintf(os.Stderr, "benchsweep: scenario %s: %v\n", scn.Name, err)
				os.Exit(1)
			}
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&after)
		st := ScenarioTiming{
			Name:    scn.Name,
			BuildNS: elapsed.Nanoseconds() / iters,
			Mallocs: int64(after.Mallocs-before.Mallocs) / iters,
		}
		if len(out) > 0 && out[0].BuildNS > 0 {
			st.OverheadPct = 100 * (float64(st.BuildNS)/float64(out[0].BuildNS) - 1)
		}
		out = append(out, st)
	}
	return out
}

// frameCodec pairs an encode and decode path for one wire format so the
// codec matrix treats csv, json, and bin uniformly. Encoders produce a
// fresh body per op (what the server's cache-fill path pays); decoders
// parse a shared immutable body (what clients pay).
type frameCodec struct {
	name   string
	encode func(*source.Frame) ([]byte, error)
	decode func([]byte) (*source.Frame, error)
}

var frameCodecs = []frameCodec{
	{"csv",
		func(f *source.Frame) ([]byte, error) {
			var buf bytes.Buffer
			err := f.WriteCSV(&buf)
			return buf.Bytes(), err
		},
		func(b []byte) (*source.Frame, error) { return source.ReadCSV(bytes.NewReader(b)) }},
	{"json",
		func(f *source.Frame) ([]byte, error) {
			var buf bytes.Buffer
			err := f.WriteJSON(&buf)
			return buf.Bytes(), err
		},
		func(b []byte) (*source.Frame, error) { return source.ReadJSON(bytes.NewReader(b)) }},
	{"bin", binfmt.Encode, binfmt.Decode},
	{"binz", framez.Encode, framez.Decode},
}

// measureCodecs fills the wire-format matrix: for every dataset's
// primary-day frame, time encode and decode for each codec. The frame
// comes from a warm registry so only serialization is measured.
func measureCodecs(seed uint64) []CodecTiming {
	w := world.MustBuild(world.Config{Seed: seed})
	b := bundle.New(w, seed, bundle.Config{})
	day := experiments.PrimaryCDNDay

	var out []CodecTiming
	for _, name := range b.Registry.Names() {
		f, err := b.Registry.Frame(name, day)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: source %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, c := range frameCodecs {
			body, err := c.encode(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsweep: %s %s encode: %v\n", name, c.name, err)
				os.Exit(1)
			}
			encNS, _, err := timeOp(func() error { _, err := c.encode(f); return err })
			if err == nil {
				var decNS int64
				var decAllocs float64
				decNS, decAllocs, err = timeOp(func() error { _, err := c.decode(body); return err })
				if err == nil {
					out = append(out, CodecTiming{
						Source:            name,
						Codec:             c.name,
						Bytes:             len(body),
						EncodeNSOp:        encNS,
						DecodeNSOp:        decNS,
						EncodeBytesPerSec: perSec(len(body), encNS),
						DecodeBytesPerSec: perSec(len(body), decNS),
						DecodeAllocsPerOp: decAllocs,
					})
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsweep: %s %s: %v\n", name, c.name, err)
				os.Exit(1)
			}
		}
	}
	return out
}

// timeOp runs op in a loop for at least 30ms (and 8 iterations) and
// returns mean ns/op and allocs/op from MemStats deltas over the loop.
func timeOp(op func() error) (int64, float64, error) {
	const minDur = 30 * time.Millisecond
	const minIters = 8
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	iters := 0
	for {
		if err := op(); err != nil {
			return 0, 0, err
		}
		iters++
		if iters >= minIters && time.Since(t0) >= minDur {
			break
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	ns := elapsed.Nanoseconds() / int64(iters)
	if ns < 1 {
		ns = 1
	}
	return ns, float64(after.Mallocs-before.Mallocs) / float64(iters), nil
}

func perSec(bytes int, nsOp int64) float64 {
	if nsOp <= 0 {
		return 0
	}
	return float64(bytes) / (float64(nsOp) / 1e9)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
