// Command experiments regenerates the paper's tables and figures from the
// simulated datasets.
//
// Usage:
//
//	experiments [-seed N] [-run Table2,Figure4] [-parallel N] [-list]
//
// With no -run flag every experiment runs in paper order. Runners execute
// concurrently on a worker pool (-parallel, default GOMAXPROCS) but
// results stream to stdout in paper order and are byte-identical at every
// parallelism level; progress and timing go to stderr so stdout can be
// diffed across runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	run := flag.String("run", "", "comma-separated experiment names (default: all)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent experiments (<=0 means GOMAXPROCS)")
	list := flag.Bool("list", false, "list available experiments and exit")
	md := flag.String("md", "", "write a paper-vs-measured markdown report to this file")
	metrics := flag.String("metrics", "", "write the lab metrics registry as JSON to this file on exit (\"-\" for stderr)")
	flag.Parse()

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-10s %s\n", r.Name, r.Desc)
		}
		return
	}

	var selected []experiments.Runner
	if *run == "" {
		selected = experiments.Runners()
	} else {
		for _, name := range strings.Split(*run, ",") {
			r, ok := experiments.RunnerByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", name)
				os.Exit(2)
			}
			selected = append(selected, r)
		}
	}

	fmt.Fprintf(os.Stderr, "building world (seed %d)...\n", *seed)
	start := time.Now()
	lab := experiments.NewLab(*seed)
	fmt.Fprintf(os.Stderr, "world ready in %v: %d orgs, %d routes\n\n", time.Since(start).Round(time.Millisecond),
		lab.W.Registry.Len(), lab.W.DB.Len())

	sweepStart := time.Now()
	recs := experiments.RunAll(lab, selected, *parallel, func(rec experiments.RunRecord) {
		experiments.WriteConsole(os.Stdout, rec.Result)
		fmt.Fprintf(os.Stderr, "%-16s %8v\n", rec.Runner.Name, rec.Elapsed.Round(time.Millisecond))
	})
	wall := time.Since(sweepStart)

	apnicDays, cdnDays := lab.CacheStats()
	fmt.Fprintf(os.Stderr, "\n%d experiments in %v wall (%v summed runner time, parallelism %d)\n",
		len(recs), wall.Round(time.Millisecond), experiments.TotalElapsed(recs).Round(time.Millisecond), *parallel)
	fmt.Fprintf(os.Stderr, "day caches: %d APNIC reports, %d CDN snapshots (each generated once)\n", apnicDays, cdnDays)

	if *md != "" {
		results := make([]*experiments.Result, len(recs))
		for i, rec := range recs {
			results[i] = rec.Result
		}
		f, err := os.Create(*md)
		if err == nil {
			err = experiments.WriteMarkdown(f, *seed, results)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", *md)
	}

	if *metrics != "" {
		// The registry carries per-runner wall time and the day-cache
		// request/generation/hit series the schedulers used to print ad hoc.
		err := func() error {
			if *metrics == "-" {
				return lab.Metrics.WriteJSON(os.Stderr)
			}
			f, err := os.Create(*metrics)
			if err != nil {
				return err
			}
			if err := lab.Metrics.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
