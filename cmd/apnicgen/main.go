// Command apnicgen generates dataset CSVs from the synthetic world. By
// default it emits APNIC-style daily reports in the legacy column layout;
// -dataset selects any registered source (apnic, cdn, itu, mlab,
// dnscount, broadband, ixp) and emits its self-describing frame CSV.
//
// Usage:
//
//	apnicgen -seed 42 -from 2024-04-01 -to 2024-04-07 -out reports/
//	apnicgen -date 2024-04-21                      # single day to stdout
//	apnicgen -dataset cdn -date 2024-04-21         # frame CSV of another dataset
//	apnicgen -dataset cdn -format bin -out frames/ # binary frame artifacts
//	apnicgen -dataset cdn -format binz -out frames/ # compressed binary artifacts
//
// -format bin emits the compact binary frame codec (the same bytes the
// server's .bin route serves) and -format binz its compressed extension
// (the .binz route's bytes) instead of CSV; both require -dataset, since
// the legacy APNIC layout is CSV-only by definition.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/source/binfmt"
	"repro/internal/source/bundle"
	"repro/internal/source/framez"
	"repro/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	date := flag.String("date", "", "single report date (YYYY-MM-DD), written to stdout")
	from := flag.String("from", "", "range start (YYYY-MM-DD)")
	to := flag.String("to", "", "range end (YYYY-MM-DD)")
	step := flag.Int("step", 1, "days between reports in range mode")
	out := flag.String("out", ".", "output directory for range mode")
	dataset := flag.String("dataset", "",
		"emit this dataset's frame CSV instead of the legacy APNIC layout (apnic, cdn, itu, mlab, dnscount, broadband, ixp)")
	format := flag.String("format", "csv", "frame output format: csv, bin or binz (bin/binz require -dataset)")
	flag.Parse()

	if *format != "csv" && *format != "bin" && *format != "binz" {
		fmt.Fprintf(os.Stderr, "apnicgen: unknown -format %q (want csv, bin or binz)\n", *format)
		os.Exit(2)
	}
	if *format != "csv" && *dataset == "" {
		fmt.Fprintf(os.Stderr, "apnicgen: -format %s requires -dataset; the legacy APNIC layout is CSV-only\n", *format)
		os.Exit(2)
	}

	w := world.MustBuild(world.Config{Seed: *seed})

	// writeDay abstracts over the output modes: the legacy APNIC CSV
	// (default, byte-identical to what apnicgen has always produced) and
	// the generic frame of any registered dataset, as CSV or the binary
	// frame codec.
	var writeDay func(d dates.Date, out io.Writer) error
	prefix, ext := "apnic", ".csv"
	if *dataset == "" {
		gen := apnic.New(w, itu.New(w, *seed), *seed)
		writeDay = func(d dates.Date, out io.Writer) error {
			return gen.Generate(d).WriteCSV(out)
		}
	} else {
		b := bundle.New(w, *seed, bundle.Config{})
		if _, ok := b.Registry.Lookup(*dataset); !ok {
			fmt.Fprintf(os.Stderr, "apnicgen: unknown dataset %q (have: %s)\n",
				*dataset, strings.Join(b.Registry.Names(), ", "))
			os.Exit(2)
		}
		prefix = *dataset
		switch *format {
		case "bin":
			ext = binfmt.Suffix
		case "binz":
			ext = framez.Suffix
		}
		writeDay = func(d dates.Date, out io.Writer) error {
			f, err := b.Registry.Frame(*dataset, d)
			if err != nil {
				return err
			}
			switch *format {
			case "bin":
				return binfmt.Write(f, out)
			case "binz":
				return framez.Write(f, out)
			}
			return f.WriteCSV(out)
		}
	}

	if *date != "" {
		d, err := dates.Parse(*date)
		if err != nil {
			fatal(err)
		}
		if err := writeDay(d, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *from == "" || *to == "" {
		fmt.Fprintln(os.Stderr, "need -date, or -from and -to")
		os.Exit(2)
	}
	f, err := dates.Parse(*from)
	if err != nil {
		fatal(err)
	}
	t, err := dates.Parse(*to)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, d := range dates.Range(f, t, *step) {
		path := filepath.Join(*out, fmt.Sprintf("%s-%s%s", prefix, d, ext))
		file, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		err = writeDay(d, file)
		if cerr := file.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apnicgen:", err)
	os.Exit(1)
}
