// Command apnicgen generates APNIC-style daily report CSVs from the
// synthetic world.
//
// Usage:
//
//	apnicgen -seed 42 -from 2024-04-01 -to 2024-04-07 -out reports/
//	apnicgen -date 2024-04-21        # single day to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	date := flag.String("date", "", "single report date (YYYY-MM-DD), written to stdout")
	from := flag.String("from", "", "range start (YYYY-MM-DD)")
	to := flag.String("to", "", "range end (YYYY-MM-DD)")
	step := flag.Int("step", 1, "days between reports in range mode")
	out := flag.String("out", ".", "output directory for range mode")
	flag.Parse()

	w := world.MustBuild(world.Config{Seed: *seed})
	gen := apnic.New(w, itu.New(w, *seed), *seed)

	if *date != "" {
		d, err := dates.Parse(*date)
		if err != nil {
			fatal(err)
		}
		if err := gen.Generate(d).WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *from == "" || *to == "" {
		fmt.Fprintln(os.Stderr, "need -date, or -from and -to")
		os.Exit(2)
	}
	f, err := dates.Parse(*from)
	if err != nil {
		fatal(err)
	}
	t, err := dates.Parse(*to)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, d := range dates.Range(f, t, *step) {
		path := filepath.Join(*out, fmt.Sprintf("apnic-%s.csv", d))
		file, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		err = gen.Generate(d).WriteCSV(file)
		if cerr := file.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apnicgen:", err)
	os.Exit(1)
}
