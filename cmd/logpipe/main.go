// Command logpipe demonstrates the raw CDN request-log pipeline: it can
// emit synthetic log lines for a country and day (mode=sample), read
// log lines from stdin and aggregate them to per-(country, org) stats
// the way the paper's CDN pipeline does (mode=aggregate), or run the
// continuous streaming pipeline end to end and report the rolling
// APNIC-style estimates it converges to (mode=stream).
//
// Round trip:
//
//	logpipe -mode sample -country FR -per-org 500 | logpipe -mode aggregate
//
// Streaming, with the convergence check against the batch generator:
//
//	logpipe -mode stream -country FR -days 1 -verify
//	logpipe -mode stream -stream-source cdnlog -country FR -days 1 -verify
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/apnic"
	"repro/internal/cdnlog"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/report"
	"repro/internal/stream"
	"repro/internal/world"
)

func main() {
	mode := flag.String("mode", "sample", "sample | aggregate | stream")
	seed := flag.Uint64("seed", 42, "world seed")
	country := flag.String("country", "FR", "country to sample / display")
	dateStr := flag.String("date", "2024-04-21", "log day (stream mode: first day)")
	perOrg := flag.Int("per-org", 200, "records per organization (sample/cdnlog-stream modes)")
	botThreshold := flag.Int("bot-threshold", 50, "bot score filter (aggregate/stream modes)")
	days := flag.Int("days", 1, "days to stream (stream mode)")
	streamSrc := flag.String("stream-source", "apnic", "stream mode source: apnic (count replay) | cdnlog (record-level)")
	verify := flag.Bool("verify", false, "stream mode: check convergence against the batch pipeline; exit 1 on mismatch")
	flag.Parse()

	d, err := dates.Parse(*dateStr)
	if err != nil {
		fatal(err)
	}
	w := world.MustBuild(world.Config{Seed: *seed})

	switch *mode {
	case "sample":
		s := cdnlog.NewSampler(w, *seed)
		n, err := s.WriteDay(os.Stdout, *country, d, *perOrg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "logpipe: wrote %d records for %s on %s\n", n, *country, d)

	case "aggregate":
		// Resolve against the compiled routing artifact: same answers as
		// the live trie, one flat immutable build shared by the process.
		agg := cdnlog.NewAggregator(w.RoutingDB(), w.Registry, *botThreshold)
		parsed, err := agg.ReadFrom(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "logpipe: parse warnings:", err)
		}
		stats := agg.Stats()
		keys := make([]string, 0, len(stats))
		byKey := map[string]*cdnlog.PairStats{}
		for k, st := range stats {
			id := k.Country + "/" + k.Org
			keys = append(keys, id)
			byKey[id] = st
		}
		sort.Slice(keys, func(i, j int) bool {
			return byKey[keys[i]].Requests > byKey[keys[j]].Requests
		})
		var rows [][]string
		for _, id := range keys {
			st := byKey[id]
			rows = append(rows, []string{
				id,
				report.Count(st.Requests),
				report.Count(st.Bots),
				fmt.Sprintf("%d", st.UserAgents()),
				report.Count(st.Bytes),
			})
		}
		fmt.Printf("parsed %d records (%d unrouted, %d unassigned)\n\n",
			parsed, agg.Unrouted(), agg.Unassigned())
		fmt.Println(report.Table([]string{"country/org", "human req", "bot req", "distinct UAs", "bytes"}, rows))

	case "stream":
		runStream(w, d, *seed, *country, *days, *perOrg, *botThreshold, *streamSrc, *verify)

	default:
		fmt.Fprintf(os.Stderr, "logpipe: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// runStream drives the continuous pipeline end to end: source →
// enrich → batch → rolling estimator, then prints the stage ledger and
// the country's rolling estimate. With -verify it re-runs the batch
// pipeline over the same window and demands agreement.
func runStream(w *world.World, from dates.Date, seed uint64, country string, days, perOrg, botThreshold int, srcName string, verify bool) {
	gen := apnic.New(w, itu.New(w, seed), seed)
	est := stream.NewRollingEstimator(gen)

	var src stream.Source
	var enr stream.Enricher
	switch srcName {
	case "apnic":
		// Replay the batch generator's own window counts: the convergence
		// contract says the drained estimate equals the batch report
		// exactly, float for float.
		src = &stream.CountSource{Gen: gen, From: from, Days: days, Chunk: 1000}
	case "cdnlog":
		// Record-level replay through the full attribution stage.
		src = &stream.SamplerSource{
			Sampler:   cdnlog.NewSampler(w, seed),
			Countries: []string{country},
			From:      from,
			Days:      days,
			PerOrg:    perOrg,
		}
		enr = &stream.CDNEnricher{DB: w.RoutingDB(), Registry: w.Registry, BotThreshold: botThreshold}
	default:
		fmt.Fprintf(os.Stderr, "logpipe: unknown stream source %q (want apnic or cdnlog)\n", srcName)
		os.Exit(2)
	}

	p, err := stream.New(stream.Config{Source: src, Enrich: enr, Publisher: &stream.EstimatorSink{Est: est}})
	if err != nil {
		fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		fatal(err)
	}
	st := p.Stats()
	fmt.Fprintf(os.Stderr,
		"logpipe: stream drained: emitted=%d accepted=%d shed=%d filtered=%d batches=%d published=%d failed=%d\n",
		st.Emitted, st.Accepted, st.SourceShed, st.Filtered, st.Batches, st.Published, st.PublishFailed)

	last := from.AddDays(days - 1)
	rep := est.Report(last)
	var rows [][]string
	for _, row := range rep.Rows {
		if row.CC != country {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Rank),
			fmt.Sprintf("AS%d", row.ASN),
			row.ASName,
			report.Count(int64(row.Users + 0.5)),
			fmt.Sprintf("%.2f%%", row.PctCountry),
			report.Count(row.Samples),
		})
		if len(rows) >= 15 {
			break
		}
	}
	fmt.Printf("rolling estimate for %s on %s (window %dd, %d retained day(s))\n\n",
		country, last, est.Window(), est.DaysHeld())
	fmt.Println(report.Table([]string{"rank", "AS", "name", "users", "% cc", "samples"}, rows))

	if !verify {
		return
	}
	switch srcName {
	case "apnic":
		// Exact equality with the batch generator, day by day.
		for i := 0; i < days; i++ {
			day := from.AddDays(i)
			if msg := reportDiff(est.Report(day), gen.Generate(day)); msg != "" {
				fmt.Fprintf(os.Stderr, "logpipe: VERIFY FAILED on %s: %s\n", day, msg)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "logpipe: verify ok — streaming estimate equals batch report for %d day(s)\n", days)
	case "cdnlog":
		// Record-level sources can't reproduce the generator's counts, but
		// the stream's attribution ledger must match the batch aggregator's
		// over the same records.
		s := cdnlog.NewSampler(w, seed)
		agg := cdnlog.NewAggregator(w.RoutingDB(), w.Registry, botThreshold)
		for i := 0; i < days; i++ {
			s.EachDayRecord(country, from.AddDays(i), perOrg, func(rec cdnlog.Record) bool {
				agg.Add(rec)
				return true
			})
		}
		var human, bots int64
		for _, ps := range agg.Stats() {
			human += ps.Requests
			bots += ps.Bots
		}
		wantFiltered := bots + agg.Unrouted() + agg.Unassigned()
		if st.Published != human || st.Filtered != wantFiltered {
			fmt.Fprintf(os.Stderr,
				"logpipe: VERIFY FAILED: stream published=%d filtered=%d, batch aggregator human=%d dropped=%d\n",
				st.Published, st.Filtered, human, wantFiltered)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "logpipe: verify ok — stream ledger matches batch aggregator (%d human, %d dropped)\n",
			human, wantFiltered)
	}
}

// reportDiff returns "" when the reports agree exactly, or a short
// description of the first difference.
func reportDiff(got, want *apnic.Report) string {
	if got.Date != want.Date || got.Window != want.Window {
		return fmt.Sprintf("header (%s, %d) != (%s, %d)", got.Date, got.Window, want.Date, want.Window)
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Sprintf("%d rows != %d rows", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if got.Rows[i] != want.Rows[i] {
			return fmt.Sprintf("row %d: %+v != %+v", i, got.Rows[i], want.Rows[i])
		}
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "logpipe:", err)
	os.Exit(1)
}
