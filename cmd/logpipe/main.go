// Command logpipe demonstrates the raw CDN request-log pipeline: it can
// emit synthetic log lines for a country and day (mode=sample), or read
// log lines from stdin and aggregate them to per-(country, org) stats the
// way the paper's CDN pipeline does (mode=aggregate).
//
// Round trip:
//
//	logpipe -mode sample -country FR -per-org 500 | logpipe -mode aggregate
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cdnlog"
	"repro/internal/dates"
	"repro/internal/report"
	"repro/internal/world"
)

func main() {
	mode := flag.String("mode", "sample", "sample | aggregate")
	seed := flag.Uint64("seed", 42, "world seed")
	country := flag.String("country", "FR", "country to sample")
	dateStr := flag.String("date", "2024-04-21", "log day")
	perOrg := flag.Int("per-org", 200, "records per organization (sample mode)")
	botThreshold := flag.Int("bot-threshold", 50, "bot score filter (aggregate mode)")
	flag.Parse()

	d, err := dates.Parse(*dateStr)
	if err != nil {
		fatal(err)
	}
	w := world.MustBuild(world.Config{Seed: *seed})

	switch *mode {
	case "sample":
		s := cdnlog.NewSampler(w, *seed)
		n, err := s.WriteDay(os.Stdout, *country, d, *perOrg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "logpipe: wrote %d records for %s on %s\n", n, *country, d)

	case "aggregate":
		// Resolve against the compiled routing artifact: same answers as
		// the live trie, one flat immutable build shared by the process.
		agg := cdnlog.NewAggregator(w.RoutingDB(), w.Registry, *botThreshold)
		parsed, err := agg.ReadFrom(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "logpipe: parse warnings:", err)
		}
		stats := agg.Stats()
		keys := make([]string, 0, len(stats))
		byKey := map[string]*cdnlog.PairStats{}
		for k, st := range stats {
			id := k.Country + "/" + k.Org
			keys = append(keys, id)
			byKey[id] = st
		}
		sort.Slice(keys, func(i, j int) bool {
			return byKey[keys[i]].Requests > byKey[keys[j]].Requests
		})
		var rows [][]string
		for _, id := range keys {
			st := byKey[id]
			rows = append(rows, []string{
				id,
				report.Count(st.Requests),
				report.Count(st.Bots),
				fmt.Sprintf("%d", st.UserAgents()),
				report.Count(st.Bytes),
			})
		}
		fmt.Printf("parsed %d records (%d unrouted, %d unassigned)\n\n",
			parsed, agg.Unrouted(), agg.Unassigned())
		fmt.Println(report.Table([]string{"country/org", "human req", "bot req", "distinct UAs", "bytes"}, rows))

	default:
		fmt.Fprintf(os.Stderr, "logpipe: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "logpipe:", err)
	os.Exit(1)
}
