// Command loadgen load-proves the report server: it drives the full
// seven-dataset serving stack with a realistic synthetic workload (Zipf
// dataset popularity, recency-biased day selection, conditional
// revalidations, gzip negotiation, thundering herds on cache-cold days)
// in closed- and open-loop modes, and writes per-route latency
// quantiles, throughput, and error budgets to a JSON artifact
// (BENCH_load.json) with a rolling history, so serving-path regressions
// show up as a trend rather than an anecdote.
//
// Usage:
//
//	loadgen -self [flags]                 # in-process server on a loopback port
//	loadgen -base http://host:8080 [...]  # an already-running server
//
// Key flags: -mode closed|open|both, -requests N, -duration D, -c N
// (concurrency), -rate R (open-loop req/s), -herd-every N -herd-size N,
// -out BENCH_load.json, and the CI gates -max-regress-pct P (worst
// per-route p99 vs the baseline's same-mode headline) and
// -max-error-rate F. Like benchsweep, the baseline is loaded from -out
// before it is overwritten and its headline is folded into the report's
// history. Exit status 1 means a gate fired.
//
// With -verify every 200 body is hashed per (path, encoding) and any
// byte drift between requests is an error: the immutability contract
// ("same day, same bytes, forever") checked under concurrent load.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/apnic"
	"repro/internal/apnicweb"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/loadgen"
	"repro/internal/stream"
	"repro/internal/world"
)

func main() {
	var (
		self      = flag.Bool("self", false, "serve in-process on a loopback port instead of -base")
		base      = flag.String("base", "", "base URL of a running server (ignored with -self)")
		seed      = flag.Uint64("seed", 42, "world + workload seed")
		first     = flag.String("first", "2024-01-01", "first served day")
		last      = flag.String("last", "2024-12-31", "last served day")
		cacheDays = flag.Int("cache-days", 30, "server day-cache capacity (-self only)")
		mode      = flag.String("mode", "both", "closed, open, or both")
		requests  = flag.Int("requests", 2000, "request budget per run (0 = duration-bound)")
		duration  = flag.Duration("duration", 0, "wall-clock budget per run (0 = request-bound)")
		conc      = flag.Int("c", 8, "concurrent workers")
		rate      = flag.Float64("rate", 200, "open-loop dispatch rate, requests/second")
		zipfS     = flag.Float64("zipf-s", 1.2, "Zipf exponent over dataset popularity ranks")
		halfLife  = flag.Float64("hot-half-life", 7, "day-recency half-life in days (0 = uniform)")
		gzipFrac  = flag.Float64("gzip-fraction", 0.5, "fraction of requests offering gzip")
		condFrac  = flag.Float64("cond-fraction", 0.3, "fraction of repeat requests sent conditionally")
		herdEvery = flag.Int("herd-every", 500, "thundering herd every N dispatches (0 = off)")
		herdSize  = flag.Int("herd-size", 16, "goroutines per herd")
		liveCCs   = flag.String("live-countries", "FR,DE,US,BR,JP",
			"comma-separated countries for the live-poll route share (empty = no live traffic)")
		verify    = flag.Bool("verify", true, "hash bodies and fail on byte drift per path+encoding")
		out       = flag.String("out", "BENCH_load.json", "output path")
		baseline  = flag.String("baseline", "", "baseline report for the gates and history (default: -out before overwrite)")
		maxPct    = flag.Float64("max-regress-pct", 0, "fail if worst p99 regresses more than this percent vs baseline (0 = no gate)")
		maxErr    = flag.Float64("max-error-rate", 0, "fail if the error rate exceeds this fraction (negative = no gate)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "loadgen: ", 0)

	firstD, err := dates.Parse(*first)
	if err != nil {
		logger.Fatalf("-first: %v", err)
	}
	lastD, err := dates.Parse(*last)
	if err != nil {
		logger.Fatalf("-last: %v", err)
	}

	baseURL := *base
	if *self {
		baseURL = startSelf(logger, *seed, firstD, lastD, *cacheDays)
	}
	if baseURL == "" {
		logger.Fatal("need -self or -base")
	}

	model := loadgen.ModelConfig{
		Datasets:       loadgen.Datasets,
		First:          firstD,
		Last:           lastD,
		ZipfS:          *zipfS,
		HotDayHalfLife: *halfLife,
		GzipFraction:   *gzipFrac,
		CondFraction:   *condFrac,
		SeriesPaths:    seriesPaths(logger, baseURL, firstD, lastD),
		LiveCountries:  splitCCs(*liveCCs),
	}

	var modes []loadgen.Mode
	switch *mode {
	case "closed":
		modes = []loadgen.Mode{loadgen.Closed}
	case "open":
		modes = []loadgen.Mode{loadgen.Open}
	case "both":
		modes = []loadgen.Mode{loadgen.Closed, loadgen.Open}
	default:
		logger.Fatalf("bad -mode %q", *mode)
	}

	basePath := *baseline
	if basePath == "" {
		basePath = *out
	}
	baseRep := loadgen.LoadReport(basePath)

	rep := &loadgen.Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          *seed,
	}
	for _, m := range modes {
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:      baseURL,
			Model:        model,
			Seed:         *seed,
			Mode:         m,
			Concurrency:  *conc,
			Requests:     *requests,
			Duration:     *duration,
			Rate:         *rate,
			HerdEvery:    *herdEvery,
			HerdSize:     *herdSize,
			VerifyBodies: *verify,
			Log:          logger,
		})
		if err != nil {
			logger.Fatalf("%s run: %v", m, err)
		}
		rep.Runs = append(rep.Runs, res)
		fmt.Fprintf(os.Stderr, "%-6s: %d req in %s (%.0f rps), errors=%d dropped=%d herds=%d\n",
			m, res.Requests, time.Duration(res.WallNS).Round(time.Millisecond), res.Throughput,
			res.Errors, res.Dropped, res.Herds)
		for _, rs := range res.Routes {
			fmt.Fprintf(os.Stderr, "  %-12s n=%-6d p50=%-9s p95=%-9s p99=%-9s p999=%-9s 304=%d err=%d\n",
				rs.Route, rs.Requests, secs(rs.P50), secs(rs.P95), secs(rs.P99), secs(rs.P999),
				rs.NotModified, rs.Errors)
		}
	}

	rep.FoldHistory(baseRep)
	if err := rep.WriteReport(*out); err != nil {
		logger.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if err := loadgen.Gate(rep, baseRep, *maxPct, *maxErr); err != nil {
		logger.Printf("gate failed: %v", err)
		os.Exit(1)
	}
}

// startSelf boots a full multi-server on an ephemeral loopback port and
// returns its base URL. A real TCP listener, not httptest: the load goes
// through the same kernel path a production client would use.
func startSelf(logger *log.Logger, seed uint64, first, last dates.Date, cacheDays int) string {
	w := world.MustBuild(world.Config{Seed: seed})
	srv := apnicweb.NewMultiServer(w, seed, first, last, cacheDays)

	// Attach a live rolling estimator primed with the last served day, so
	// the live-poll route share exercises the full 200/304 path (an
	// unprimed estimator would answer nothing but contract 503s).
	gen := apnic.New(w, itu.New(w, seed), seed)
	est := stream.NewRollingEstimator(gen)
	for _, c := range gen.DayCounts(last) {
		est.Observe(stream.Impression{Day: last, CC: c.CC, ASN: c.ASN, Weight: c.Samples})
	}
	srv.SetLive(est)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logger.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			logger.Printf("server: %v", err)
		}
	}()
	url := "http://" + ln.Addr().String()
	logger.Printf("self-serving %d datasets at %s", len(srv.Registry().Names()), url)
	return url
}

// seriesPaths derives a handful of real per-AS series paths from the
// last day's APNIC report so the series share of the mix queries rows
// that exist. Failures degrade to no series traffic rather than
// aborting the run.
func seriesPaths(logger *log.Logger, baseURL string, first, last dates.Date) []string {
	c := &apnicweb.Client{BaseURL: baseURL}
	rep, err := c.Report(context.Background(), last)
	if err != nil || len(rep.Rows) == 0 {
		logger.Printf("no series paths (%v); series traffic folds into reports", err)
		return nil
	}
	from := last.AddDays(-6)
	if from.DayNumber() < first.DayNumber() {
		from = first
	}
	var paths []string
	for i := 0; i < len(rep.Rows) && len(paths) < 8; i += max(1, len(rep.Rows)/8) {
		row := rep.Rows[i]
		paths = append(paths, fmt.Sprintf("/v1/series/AS%d?cc=%s&from=%s&to=%s",
			row.ASN, row.CC, from, last))
	}
	return paths
}

func secs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// splitCCs parses the -live-countries list, dropping empty elements.
func splitCCs(s string) []string {
	var out []string
	for _, cc := range strings.Split(s, ",") {
		if cc = strings.TrimSpace(cc); cc != "" {
			out = append(out, strings.ToUpper(cc))
		}
	}
	return out
}
