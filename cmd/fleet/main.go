// Command fleet sweeps seeds × scenarios in parallel and reports how
// stable the paper's reliability checks are across worlds. Each
// (seed, scenario) pair builds one world, runs the per-country checklist
// (sample sufficiency, elasticity band, temporal stability, M-Lab
// cross-check), and the sweep aggregates pass rates, verdict counts, and
// check flips against the same-seed paper baseline.
//
// The report is deterministic: same flags → identical bytes, regardless
// of -parallel or worker count.
//
// Usage:
//
//	fleet -seeds 4 -scenarios 4 -parallel
//	fleet -seeds 2 -scenarios 3 -json report.json -out report.md
//	fleet -seeds 2 -scenario-file my-scenario.json -day 2024-04-21
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dates"
	"repro/internal/fleet"
	"repro/internal/scenario"
)

func main() {
	seeds := flag.Int("seeds", 2, "number of world seeds (seed-base .. seed-base+N-1)")
	seedBase := flag.Uint64("seed-base", 42, "first world seed")
	nScenarios := flag.Int("scenarios", 2, "sweep the first N builtin scenarios (paper is always included)")
	scenarioFile := flag.String("scenario-file", "", "also sweep a scenario loaded from this JSON file")
	day := flag.String("day", "", "check day (YYYY-MM-DD); default is the paper's Table 2 snapshot")
	out := flag.String("out", "", "write the markdown report here instead of stdout")
	jsonOut := flag.String("json", "", "also write the report as JSON to this path")
	parallel := flag.Bool("parallel", false, "build worlds on all CPUs (default: one worker)")
	workers := flag.Int("workers", 0, "explicit worker count (overrides -parallel)")
	list := flag.Bool("list", false, "list builtin scenarios and exit")
	flag.Parse()

	if *list {
		for _, s := range scenario.Builtins() {
			fmt.Printf("%-18s %s\n", s.Name, s.Notes)
		}
		return
	}

	builtins := scenario.Builtins()
	if *nScenarios < 1 || *nScenarios > len(builtins) {
		fail(fmt.Errorf("-scenarios must be in 1..%d", len(builtins)))
	}
	scns := builtins[:*nScenarios]
	if *scenarioFile != "" {
		s, err := scenario.LoadFile(*scenarioFile)
		if err != nil {
			fail(err)
		}
		scns = append(append([]*scenario.Scenario{}, scns...), s)
	}

	cfg := fleet.Config{
		SeedBase:  *seedBase,
		Seeds:     *seeds,
		Scenarios: scns,
	}
	if *day != "" {
		d, err := dates.Parse(*day)
		if err != nil {
			fail(err)
		}
		cfg.Day = d
	}
	switch {
	case *workers > 0:
		cfg.Workers = *workers
	case *parallel:
		cfg.Workers = 0 // GOMAXPROCS
	default:
		cfg.Workers = 1
	}

	rep, err := fleet.Run(cfg)
	if err != nil {
		fail(err)
	}

	md := rep.Markdown()
	if *out == "" {
		fmt.Print(md)
	} else if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fail(err)
	}
	if *jsonOut != "" {
		buf, err := rep.JSON()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
	os.Exit(1)
}
