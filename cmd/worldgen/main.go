// Command worldgen builds the synthetic ground-truth world and dumps its
// structure: per-country markets, organizations with sibling ASes, user
// counts, and announced IP space.
//
// Usage:
//
//	worldgen -seed 42 -country FR -date 2024-04-21
//	worldgen -summary
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"

	"repro/internal/dates"
	"repro/internal/netdb"
	"repro/internal/report"
	"repro/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 42, "world seed")
	country := flag.String("country", "", "dump one country's market")
	dateStr := flag.String("date", "2024-04-21", "reference date")
	summary := flag.Bool("summary", false, "print world summary only")
	routes := flag.Bool("routes", false, "also dump announced prefixes for the country")
	flag.Parse()

	d, err := dates.Parse(*dateStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(2)
	}
	w := world.MustBuild(world.Config{Seed: *seed})

	if *summary || *country == "" {
		fmt.Printf("world seed=%d: %d countries, %d orgs, %d announced prefixes\n",
			*seed, len(w.Countries()), w.Registry.Len(), w.DB.Len())
		var rows [][]string
		for _, cc := range w.Countries() {
			m := w.Market(cc)
			rows = append(rows, []string{
				cc, m.Country.Name,
				report.Count(int64(w.TotalUsers(cc, d))),
				fmt.Sprintf("%d", len(m.ActiveEntries(d))),
			})
		}
		fmt.Println(report.Table([]string{"CC", "Country", "Internet users", "Active orgs"}, rows))
		if *country == "" {
			return
		}
	}

	m := w.Market(*country)
	if m == nil {
		fmt.Fprintf(os.Stderr, "worldgen: unknown country %q\n", *country)
		os.Exit(2)
	}
	entries := m.ActiveEntries(d)
	sort.Slice(entries, func(i, j int) bool {
		return w.TrueUsers(*country, entries[i].Org.ID, d) > w.TrueUsers(*country, entries[j].Org.ID, d)
	})
	var rows [][]string
	for _, e := range entries {
		users := w.TrueUsers(*country, e.Org.ID, d)
		rows = append(rows, []string{
			e.Org.ID, e.Org.Name, e.Org.Type.String(),
			report.Count(int64(users)),
			report.F(100*w.Share(*country, e.Org.ID, d), 2) + "%",
			fmt.Sprintf("%d", len(e.Org.ASNs)),
		})
	}
	fmt.Printf("%s (%s) on %s — %s Internet users\n\n", m.Country.Name, *country, d,
		report.Count(int64(w.TotalUsers(*country, d))))
	fmt.Println(report.Table([]string{"Org", "Name", "Type", "Users", "Share", "ASNs"}, rows))

	if *routes {
		fmt.Println("announced prefixes:")
		w.DB.Walk(func(p netip.Prefix, r netdb.Route) bool {
			if r.RegisteredCountry == *country {
				fmt.Printf("  %-18v AS%-7d true-country=%s\n", p, r.ASN, r.TrueCountry)
			}
			return true
		})
	}
}
