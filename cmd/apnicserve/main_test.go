package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dates"
)

// TestServeAllDatasets is the integration check from the roadmap: boot
// the exact handler main serves and curl every dataset's dates route
// plus one report. The loop mirrors
//
//	for d in apnic cdn itu mlab dnscount broadband ixp; do
//	    curl $base/v1/$d/dates
//	    curl $base/v1/$d/reports/2024-04-21.csv
//	done
func TestServeAllDatasets(t *testing.T) {
	srv := buildServer(11, dates.New(2024, 1, 1), dates.New(2024, 12, 31), 16)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	curl := func(path string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	for _, dataset := range []string{"apnic", "cdn", "itu", "mlab", "dnscount", "broadband", "ixp"} {
		code, body := curl("/v1/" + dataset + "/dates")
		if code != http.StatusOK {
			t.Fatalf("%s dates: status %d: %s", dataset, code, body)
		}
		var dd struct {
			Dataset string `json:"dataset"`
			First   string `json:"first"`
			Last    string `json:"last"`
			Cadence string `json:"cadence"`
		}
		if err := json.Unmarshal(body, &dd); err != nil {
			t.Fatalf("%s dates body %q: %v", dataset, body, err)
		}
		if dd.Dataset != dataset || dd.First != "2024-01-01" || dd.Last != "2024-12-31" {
			t.Fatalf("%s dates = %+v", dataset, dd)
		}

		code, body = curl("/v1/" + dataset + "/reports/2024-04-21.csv")
		if code != http.StatusOK {
			t.Fatalf("%s report: status %d: %s", dataset, code, body)
		}
		if !strings.HasPrefix(string(body), "#source,"+dataset+",") {
			t.Fatalf("%s report does not open with its frame meta record: %.80q", dataset, body)
		}
		if lines := strings.Count(string(body), "\n"); lines < 3 {
			t.Fatalf("%s report has only %d lines", dataset, lines)
		}
	}

	// The legacy APNIC surface main has always served must still answer.
	if code, _ := curl("/v1/dates"); code != http.StatusOK {
		t.Fatalf("legacy /v1/dates: status %d", code)
	}
	if code, body := curl("/v1/reports/2024-04-21.csv"); code != http.StatusOK {
		t.Fatalf("legacy report: status %d", code)
	} else if !strings.Contains(string(body), "Estimated Users") {
		t.Fatalf("legacy report lacks native header: %.120q", body)
	}
}
