// Command apnicserve serves the full dataset roster over HTTP: the APNIC
// per-AS report plus the six companion simulators (cdn, itu, mlab,
// dnscount, broadband, ixp), each under /v1/{dataset}/.... The legacy
// APNIC routes (/v1/dates, /v1/reports/{date}.csv, /v1/series/AS<asn>)
// stay byte-identical, the way the real dataset is published on
// stats.labs.apnic.net.
//
// Usage:
//
//	apnicserve -addr :8080 -seed 42 -from 2023-01-01 -to 2024-12-31 [-cache-days 365] [-log] [-dump-metrics]
//
// Then:
//
//	curl http://localhost:8080/v1/dates
//	curl http://localhost:8080/v1/reports/2024-04-21.csv | head
//	curl http://localhost:8080/v1/itu/dates
//	curl http://localhost:8080/v1/cdn/reports/2024-04-21.csv | head
//	curl http://localhost:8080/metrics                    # Prometheus text
//	curl 'http://localhost:8080/metrics?format=json'      # expvar-style JSON
//
// -log emits one structured line per request to stderr; -dump-metrics
// prints the full metrics registry as JSON on shutdown (SIGINT/SIGTERM),
// so even a non-scraped run leaves an operational record.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/apnicweb"
	"repro/internal/dates"
	"repro/internal/world"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 42, "world seed")
	from := flag.String("from", "2013-11-01", "first served date")
	to := flag.String("to", "2024-12-31", "last served date")
	logReqs := flag.Bool("log", false, "log every request (structured, to stderr)")
	dumpMetrics := flag.Bool("dump-metrics", false, "print the metrics registry as JSON on shutdown")
	cacheDays := flag.Int("cache-days", apnicweb.DefaultCacheDays,
		"max days held in each in-memory cache (report, CSV, row index); LRU eviction beyond this")
	flag.Parse()

	first, err := dates.Parse(*from)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apnicserve:", err)
		os.Exit(2)
	}
	last, err := dates.Parse(*to)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apnicserve:", err)
		os.Exit(2)
	}

	log.Printf("building world (seed %d)...", *seed)
	srv := buildServer(*seed, first, last, *cacheDays)
	if *logReqs {
		srv.Log = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving %s..%s on %s (metrics on /metrics)", first, last, *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
	}

	if *dumpMetrics {
		if err := srv.Metrics().WriteJSON(os.Stderr); err != nil {
			log.Printf("dumping metrics: %v", err)
		}
	}
}

// buildServer assembles the seven-dataset server; split out of main so
// the integration test can exercise the exact handler main serves.
func buildServer(seed uint64, first, last dates.Date, cacheDays int) *apnicweb.Server {
	w := world.MustBuild(world.Config{Seed: seed})
	return apnicweb.NewMultiServer(w, seed, first, last, cacheDays)
}
