// Command apnicserve serves APNIC-style daily reports over HTTP, the way
// the real dataset is published on stats.labs.apnic.net.
//
// Usage:
//
//	apnicserve -addr :8080 -seed 42 -from 2023-01-01 -to 2024-12-31
//
// Then:
//
//	curl http://localhost:8080/v1/dates
//	curl http://localhost:8080/v1/reports/2024-04-21.csv | head
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/apnic"
	"repro/internal/apnicweb"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/world"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 42, "world seed")
	from := flag.String("from", "2013-11-01", "first served date")
	to := flag.String("to", "2024-12-31", "last served date")
	flag.Parse()

	first, err := dates.Parse(*from)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apnicserve:", err)
		os.Exit(2)
	}
	last, err := dates.Parse(*to)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apnicserve:", err)
		os.Exit(2)
	}

	log.Printf("building world (seed %d)...", *seed)
	w := world.MustBuild(world.Config{Seed: *seed})
	gen := apnic.New(w, itu.New(w, *seed), *seed)
	srv := apnicweb.NewServer(gen, first, last)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("serving %s..%s on %s", first, last, *addr)
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
