// Consolidation: track how many organizations are needed to cover 95% of
// a country's users over time (§6), using the validated APNIC dataset
// with the best-day selection rule. Prints per-country trajectories for a
// few contrasting markets and the 2019→2024 percentage change.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/experiments"
)

func main() {
	lab := experiments.NewLab(1)

	// Contrasting §6 stories: Brazil diversifies, India consolidates,
	// Germany drifts down slowly, Kenya consolidates mildly.
	countries := []string{"BR", "IN", "DE", "KE"}
	years := []int{2019, 2020, 2021, 2022, 2023, 2024}

	fmt.Println("organizations needed to cover 95% of estimated users:")
	fmt.Printf("%-4s", "")
	for _, y := range years {
		fmt.Printf("%7d", y)
	}
	fmt.Printf("%10s\n", "2019→2024")

	for _, cc := range countries {
		counts := map[int]int{}
		for _, y := range years {
			// Mid-year snapshot via the best-day rule over Q2.
			ratios := map[dates.Date]float64{}
			for off := 0; off < 60; off += 5 {
				d := dates.New(y, 4, 1).AddDays(off)
				s, u := lab.APNIC.CountryTotals(cc, d)
				if s > 0 {
					ratios[d] = core.ElasticityRatio(u, float64(s))
				}
			}
			day, ok := core.BestDayDate(ratios)
			if !ok {
				continue
			}
			shares := lab.APNIC.CountryOrgShares(cc, day)
			counts[y] = core.OrgsToCover(shares, 0.95)
		}
		fmt.Printf("%-4s", cc)
		for _, y := range years {
			fmt.Printf("%7d", counts[y])
		}
		if counts[2019] > 0 {
			pct := 100 * (float64(counts[2024])/float64(counts[2019]) - 1)
			fmt.Printf("%9.1f%%", pct)
		}
		fmt.Println()
	}
	fmt.Println("\npositive = market diversifying; negative = consolidating (§6, Figure 11)")
}
