// Reliability: decide, from public data only, whether the APNIC dataset
// can be trusted for a set of countries — the workflow the paper's §5
// distills into its released artifact. The example contrasts the
// self-consistency signals (sample elasticity, temporal stability) with
// the external M-Lab cross-check, and then picks the best day within a
// 60-day window for one shaky country.
//
//	go run ./examples/reliability
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/experiments"
)

func main() {
	lab := experiments.NewLab(1)
	day := dates.New(2024, 8, 9)

	countries := []string{"DE", "BR", "RU", "MM", "TM", "VU", "MG", "IN"}
	fmt.Printf("APNIC reliability on %s:\n\n", day)
	for _, cc := range countries {
		rep := experiments.RunCountryChecks(lab, cc, day)
		fmt.Printf("%-3s %-11s", cc, rep.Verdict)
		for _, c := range rep.Checks {
			mark := "+"
			if !c.Passed {
				mark = "-"
			}
			fmt.Printf("  %s%s", mark, c.Name)
		}
		fmt.Println()
	}

	// For a country with unstable estimates, the §5.1.2 rule: scan the
	// 60 days before the target date and pick the one with the smallest
	// users-per-sample ratio.
	cc := "MG"
	ratios := map[dates.Date]float64{}
	for off := 0; off < 60; off += 5 {
		d := day.AddDays(-off)
		s, u := lab.APNIC.CountryTotals(cc, d)
		if s > 0 {
			ratios[d] = core.ElasticityRatio(u, float64(s))
		}
	}
	best, ok := core.BestDayDate(ratios)
	if !ok {
		fmt.Printf("\n%s: no day with usable data in the window\n", cc)
		return
	}
	fmt.Printf("\nbest-day selection for %s: use %s instead of %s\n", cc, best, day)
	fmt.Printf("  ratio on %s: %.1f users/sample\n", day, ratios[day])
	fmt.Printf("  ratio on %s: %.1f users/sample\n", best, ratios[best])
}
