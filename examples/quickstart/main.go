// Quickstart: build a synthetic world, generate one day of the APNIC
// dataset and the CDN's view of the same day, compare them with the
// validation toolkit, and run the reliability checks for one country.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/experiments"
	"repro/internal/orgs"
)

func main() {
	// A Lab bundles a seeded ground-truth world with every dataset
	// simulator. Everything downstream is deterministic in the seed.
	lab := experiments.NewLab(1)
	day := dates.New(2024, 4, 21)

	// 1. The APNIC dataset for one day.
	rep := lab.Report(day)
	fmt.Printf("APNIC report %s: %d (country, AS) rows\n", day, len(rep.Rows))
	top := rep.Rows[0]
	fmt.Printf("largest network: %s in %s with %.1fM estimated users (%.1f%% of country)\n\n",
		top.ASName, top.CC, top.Users/1e6, top.PctCountry)

	// 2. The CDN's view of the same day.
	snap := lab.Snapshot(day)
	fmt.Printf("CDN snapshot %s: %d (country, org) pairs\n\n", day, len(snap.Stats))

	// 3. How well do they agree in France?
	apnicShares := orgs.CountryShares(rep.OrgUsers(lab.W.Registry), "FR")
	agreement := core.CompareShares(apnicShares, snap.UAShares("FR"))
	fmt.Printf("France agreement: %s (Pearson %.2f, Kendall %.2f, slope %.2f)\n\n",
		agreement.Level, agreement.Pearson, agreement.Kendall, agreement.Slope)

	// 4. The released artifact: should you trust APNIC's numbers for
	// Russia on this day?
	for _, cc := range []string{"FR", "RU"} {
		check := experiments.RunCountryChecks(lab, cc, day)
		fmt.Printf("reliability checks for %s: %s\n", cc, check.Verdict)
		for _, c := range check.Checks {
			status := "pass"
			if !c.Passed {
				status = "FAIL"
			}
			fmt.Printf("  %-4s %-20s %s\n", status, c.Name, c.Detail)
		}
	}
}
