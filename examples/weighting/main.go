// Weighting: the paper's motivating use case. A measurement study has
// vantage points in a handful of networks and wants to know what share of
// the world's Internet users its measurements represent — the question
// studies like RIPE-Atlas-based ones answer with the APNIC dataset.
//
// This example picks the top network of five countries as "vantage
// points", weights them with the APNIC dataset, and shows how the answer
// changes if the study instead (naively) counted networks or countries
// equally.
//
//	go run ./examples/weighting
package main

import (
	"fmt"

	"repro/internal/dates"
	"repro/internal/experiments"
	"repro/internal/orgs"
)

func main() {
	lab := experiments.NewLab(1)
	day := dates.New(2024, 4, 21)
	rep := lab.Report(day)

	// Our study deployed probes in the largest org of each of these
	// countries.
	probeCountries := []string{"DE", "BR", "JP", "IN", "ZA"}
	var vantage []orgs.CountryOrg
	for _, cc := range probeCountries {
		tops := rep.TopOrgs(lab.W.Registry, cc)
		if len(tops) > 0 {
			vantage = append(vantage, orgs.CountryOrg{Country: cc, Org: tops[0]})
		}
	}

	weights, totalPct := experiments.WeightByUsers(lab, day, vantage)
	fmt.Printf("study vantage points and their APNIC user weight (%s):\n", day)
	for _, p := range vantage {
		o, _ := lab.W.Registry.ByID(p.Org)
		fmt.Printf("  %-3s %-28s %6.3f%% of the world's users\n", p.Country, o.Name, 100*weights[p])
	}
	fmt.Printf("\nAPNIC-weighted coverage of the study: %.2f%% of Internet users\n", totalPct)

	// The naive alternatives the paper argues against:
	totalRows := len(rep.Rows)
	fmt.Printf("naive per-network weighting would claim:  %.3f%% (\"%d of %d networks\")\n",
		100*float64(len(vantage))/float64(totalRows), len(vantage), totalRows)
	countries := map[string]bool{}
	for _, r := range rep.Rows {
		countries[r.CC] = true
	}
	fmt.Printf("naive per-country weighting would claim:  %.1f%% (\"%d of %d countries\")\n",
		100*float64(len(probeCountries))/float64(len(countries)), len(probeCountries), len(countries))
	fmt.Println("\nuser-weighted coverage differs from both by an order of magnitude —")
	fmt.Println("which is why the paper validates the APNIC dataset before use.")
}
