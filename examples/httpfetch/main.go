// HTTP fetch: run the dataset server and a client in one process, the way
// a research pipeline consumes the real dataset from stats.labs.apnic.net:
// discover the served date range, download a week of daily CSVs, build an
// archive, and extract a per-AS time series. The server carries the full
// seven-dataset roster, so the same client then pulls a non-APNIC dataset
// (the ITU country totals) over the generic /v1/{dataset}/... routes.
//
//	go run ./examples/httpfetch
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/apnic"
	"repro/internal/apnicweb"
	"repro/internal/dates"
	"repro/internal/world"
)

func main() {
	// Server side: build the world once and serve every dataset on a
	// loopback port. The legacy APNIC routes ride along unchanged.
	w := world.MustBuild(world.Config{Seed: 1})
	srv := apnicweb.NewMultiServer(w, 1, dates.New(2024, 4, 1), dates.New(2024, 4, 30), 30)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving the dataset roster on", base)

	// Client side: discover the range, fetch a week, build an archive.
	client := &apnicweb.Client{BaseURL: base}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	first, last, err := client.Dates(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server offers %s .. %s\n", first, last)

	archive := apnic.NewArchive()
	for _, d := range dates.Range(first, first.AddDays(6), 1) {
		rep, err := client.Report(ctx, d)
		if err != nil {
			log.Fatal(err)
		}
		archive.Add(rep)
		fmt.Printf("fetched %s: %d rows\n", d, len(rep.Rows))
	}

	// Analysis side: the top German AS's users and samples over the week.
	asns := archive.ASNsIn("DE")
	if len(asns) == 0 {
		log.Fatal("no German ASes in the archive")
	}
	fmt.Printf("\ntop German AS%d over the fetched week:\n", asns[0])
	for _, p := range archive.Series("DE", asns[0]) {
		fmt.Printf("  %s  users=%.0f  samples=%d\n", p.Date, p.Users, p.Samples)
	}

	// Beyond APNIC: the same server publishes the companion datasets.
	// Pull the ITU country totals for the first served day and read off a
	// few large countries from the self-describing frame.
	dd, err := client.DatasetDates(ctx, "itu")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nitu dataset: %s .. %s (cadence %s)\n", dd.First, dd.Last, dd.Cadence)
	f, err := client.Frame(ctx, "itu", first)
	if err != nil {
		log.Fatal(err)
	}
	cc, users := f.Col("CC"), f.Col("Users")
	fmt.Printf("itu frame for %s: %d countries\n", first, f.Rows())
	shown := 0
	for i := 0; i < f.Rows() && shown < 3; i++ {
		if users.Floats[i] > 1e8 {
			fmt.Printf("  %s  users=%.0f\n", cc.Strs[i], users.Floats[i])
			shown++
		}
	}

	// Representation check: the same report is served as JSON and as the
	// compact binary frame codec (Accept: application/x-frame-bin). Both
	// must decode to the identical frame; the binary body is the one a
	// bulk consumer would pick.
	fj, err := client.FrameJSON(ctx, "cdn", first)
	if err != nil {
		log.Fatal(err)
	}
	fb, err := client.FrameBin(ctx, "cdn", first)
	if err != nil {
		log.Fatal(err)
	}
	if !fj.Equal(fb) {
		log.Fatal("JSON and binary representations decoded to different frames")
	}
	jsonLen, binLen := bodyLen(ctx, base+"/v1/cdn/reports/"+first.String()), bodyLen(ctx, base+"/v1/cdn/reports/"+first.String()+".bin")
	fmt.Printf("\ncdn report %s: JSON and binary decode to the same %d-row frame\n", first, fb.Rows())
	fmt.Printf("  json body: %d bytes\n", jsonLen)
	fmt.Printf("  bin  body: %d bytes (%.0f%% of JSON)\n", binLen, 100*float64(binLen)/float64(jsonLen))
}

// bodyLen fetches a URL and returns its identity body length.
func bodyLen(ctx context.Context, u string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d, %v", u, resp.StatusCode, err)
	}
	return len(body)
}
