// HTTP fetch: run the dataset server and a client in one process, the way
// a research pipeline consumes the real dataset from stats.labs.apnic.net:
// discover the served date range, download a week of daily CSVs, build an
// archive, and extract a per-AS time series.
//
//	go run ./examples/httpfetch
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/apnic"
	"repro/internal/apnicweb"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/world"
)

func main() {
	// Server side: build the world and serve reports on a loopback port.
	w := world.MustBuild(world.Config{Seed: 1})
	gen := apnic.New(w, itu.New(w, 1), 1)
	srv := apnicweb.NewServer(gen, dates.New(2024, 4, 1), dates.New(2024, 4, 30))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving the APNIC dataset on", base)

	// Client side: discover the range, fetch a week, build an archive.
	client := &apnicweb.Client{BaseURL: base}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	first, last, err := client.Dates(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server offers %s .. %s\n", first, last)

	archive := apnic.NewArchive()
	for _, d := range dates.Range(first, first.AddDays(6), 1) {
		rep, err := client.Report(ctx, d)
		if err != nil {
			log.Fatal(err)
		}
		archive.Add(rep)
		fmt.Printf("fetched %s: %d rows\n", d, len(rep.Rows))
	}

	// Analysis side: the top German AS's users and samples over the week.
	asns := archive.ASNsIn("DE")
	if len(asns) == 0 {
		log.Fatal("no German ASes in the archive")
	}
	fmt.Printf("\ntop German AS%d over the fetched week:\n", asns[0])
	for _, p := range archive.Series("DE", asns[0]) {
		fmt.Printf("  %s  users=%.0f  samples=%d\n", p.Date, p.Users, p.Samples)
	}
}
