package cdn

import (
	"fmt"
	"sort"

	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/orgs"
	"repro/internal/source"
)

// DatasetName is the registry name of the CDN log-aggregate dataset.
const DatasetName = "cdn"

// Frame converts the snapshot to the uniform columnar form, one row per
// observed (country, org) pair sorted by country then org. Lossless:
// SnapshotFromFrame reconstructs an equal snapshot.
func (s *Snapshot) Frame() *source.Frame {
	pairs := make([]orgs.CountryOrg, 0, len(s.Stats))
	for pair := range s.Stats {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Country != pairs[j].Country {
			return pairs[i].Country < pairs[j].Country
		}
		return pairs[i].Org < pairs[j].Org
	})
	f := source.NewFrame(DatasetName, s.Date)
	cc := f.AddStrings("CC")
	org := f.AddStrings("Org")
	req := f.AddInts("Sampled Requests")
	bots := f.AddInts("Filtered Bots")
	uas := f.AddFloats("User Agents")
	bytes := f.AddFloats("Bytes")
	for _, pair := range pairs {
		st := s.Stats[pair]
		cc.Strs = append(cc.Strs, pair.Country)
		org.Strs = append(org.Strs, pair.Org)
		req.Ints = append(req.Ints, st.SampledRequests)
		bots.Ints = append(bots.Ints, st.FilteredBots)
		uas.Floats = append(uas.Floats, st.UserAgents)
		bytes.Floats = append(bytes.Floats, st.Bytes)
	}
	return f
}

// SnapshotFromFrame reconstructs the native snapshot from its frame form.
func SnapshotFromFrame(f *source.Frame) (*Snapshot, error) {
	cc, org := f.Col("CC"), f.Col("Org")
	req, bots := f.Col("Sampled Requests"), f.Col("Filtered Bots")
	uas, bytes := f.Col("User Agents"), f.Col("Bytes")
	if cc == nil || org == nil || req == nil || bots == nil || uas == nil || bytes == nil {
		return nil, fmt.Errorf("cdn: frame is missing snapshot columns")
	}
	s := &Snapshot{Date: f.Date, Stats: make(map[orgs.CountryOrg]OrgStats, f.Rows())}
	for i := 0; i < f.Rows(); i++ {
		s.Stats[orgs.CountryOrg{Country: cc.Strs[i], Org: org.Strs[i]}] = OrgStats{
			SampledRequests: req.Ints[i],
			FilteredBots:    bots.Ints[i],
			UserAgents:      uas.Floats[i],
			Bytes:           bytes.Floats[i],
		}
	}
	return s, nil
}

// Source adapts the generator to the uniform source interface, caching
// the native snapshots day-keyed.
type Source struct {
	gen  *Generator
	days *source.Days[*Snapshot]
}

// NewSource wraps a generator as a registrable source.
func NewSource(gen *Generator, metrics *obsv.Registry, cacheDays int) *Source {
	return &Source{
		gen:  gen,
		days: source.NewDays[*Snapshot](metrics, "source", DatasetName, cacheDays),
	}
}

// Generator returns the wrapped generator.
func (s *Source) Generator() *Generator { return s.gen }

// Name implements source.Source.
func (s *Source) Name() string { return DatasetName }

// Window implements source.Source.
func (s *Source) Window() source.Window {
	return source.Window{First: source.SpanFirst, Last: source.SpanLast, Cadence: source.CadenceDaily}
}

// Snapshot returns the memoized native snapshot for a day.
func (s *Source) Snapshot(d dates.Date) *Snapshot {
	return s.days.Get(d, s.gen.Generate)
}

// Generate implements source.Source.
func (s *Source) Generate(d dates.Date) *source.Frame {
	return s.Snapshot(d).Frame()
}

// CacheStats reports the native snapshot cache's activity.
func (s *Source) CacheStats() source.CacheStats { return s.days.Stats() }
