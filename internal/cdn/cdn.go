// Package cdn simulates the paper's proprietary ANONCDN datasets (§3.4):
// HTTP request logs sampled uniformly at 1% across all PoPs, labelled by a
// bot-score pipeline, aggregated to per-(country, org) unique User-Agent
// counts and outbound traffic volume.
//
// The CDN observes the same ground-truth world as the APNIC simulator but
// through a different channel with its own documented biases:
//
//   - True geolocation: the CDN's internal tool resolves VPN egress IPs to
//     the user's actual country (§4.4, Norway), so the VPN org is small in
//     the hub country and spread across origin countries.
//   - Short observation window: a snapshot reflects a single day, so
//     shutdown days (Myanmar) move the numbers that APNIC's 60-day window
//     smooths away.
//   - Bot skew: cloud and enterprise networks carry disproportionate bot
//     traffic, filtered by the score >= 50 rule with a small error rate.
//   - Coverage: pairs with too few sampled requests are invisible, and
//     networks that barely touch the CDN (censored countries) are missed
//     entirely — the source of APNIC-only pairs.
//   - Extra "countries": Tor exits are reported under the pseudo country
//     code T1, and countries Google bans ads in (North Korea) appear in
//     the CDN data but never in APNIC's.
package cdn

import (
	"math"
	"sort"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/world"
)

// Defaults mirroring the paper's description.
const (
	DefaultSamplingRate  = 0.01 // 1% uniform request sampling
	DefaultBotThreshold  = 50   // scores >= 50 are treated as human
	DefaultMinSampledReq = 10   // visibility floor for a (country, org)
	// TorCountry is ANONCDN's pseudo country code for Tor exits.
	TorCountry = "T1"
	// TorOrg is the synthetic org ID carrying Tor exit traffic.
	TorOrg = "T1-TOR-00"
	// bytesPerUserDay is the baseline outbound CDN bytes per user-day at
	// TrafficPerUser == 1.
	bytesPerUserDay = 2.0e7
)

// Generator produces daily CDN snapshots over a world.
type Generator struct {
	W *world.World

	SamplingRate  float64
	BotThreshold  int
	MinSampledReq int64

	root *rng.Stream
}

// Derivation channel keys for the generator's noise streams; hot loops
// derive per-(country, org, day) streams as integer tuples instead of
// formatted labels.
const (
	chanNoise uint64 = iota + 1
	chanRequests
	chanTor
)

// New returns a generator with the paper defaults.
func New(w *world.World, seed uint64) *Generator {
	return &Generator{
		W:             w,
		SamplingRate:  DefaultSamplingRate,
		BotThreshold:  DefaultBotThreshold,
		MinSampledReq: DefaultMinSampledReq,
		root:          rng.New(seed).Split("cdn"),
	}
}

// OrgStats is what the CDN reports for one (country, org) pair on one day.
type OrgStats struct {
	SampledRequests int64   // sampled requests classified human
	FilteredBots    int64   // sampled requests dropped by the bot filter
	UserAgents      float64 // estimated distinct human User-Agents
	Bytes           float64 // outbound traffic volume (total, not sampled)
}

// Snapshot is one day of aggregated CDN logs.
type Snapshot struct {
	Date  dates.Date
	Stats map[orgs.CountryOrg]OrgStats
}

// entryFor resolves the simulation parameters for a (country, org) pair:
// the home-market entry, also used for the VPN org's foreign appearances.
func (g *Generator) entryFor(pair orgs.CountryOrg) *world.Entry {
	if e := g.W.Entry(pair.Country, pair.Org); e != nil {
		return e
	}
	o, ok := g.W.Registry.ByID(pair.Org)
	if !ok {
		return nil
	}
	return g.W.Entry(o.Home, pair.Org)
}

// Generate produces the snapshot for one day. Snapshots are independent
// and deterministic in (world, seed, date).
func (g *Generator) Generate(d dates.Date) *Snapshot {
	pairs := g.W.CountryOrgPairs(d)
	snap := &Snapshot{Date: d, Stats: make(map[orgs.CountryOrg]OrgStats, len(pairs)+1)}
	for _, pair := range pairs {
		e := g.entryFor(pair)
		if e == nil {
			continue
		}
		st, ok := g.pairStats(pair, e, d)
		if ok {
			snap.Stats[pair] = st
		}
	}
	g.addTor(snap, d)
	return snap
}

func (g *Generator) pairStats(pair orgs.CountryOrg, e *world.Entry, d dates.Date) (OrgStats, bool) {
	users := g.W.CDNUsers(pair.Country, pair.Org, d)
	if users <= 0 {
		return OrgStats{}, false
	}
	m := g.W.Market(pair.Country)
	c := m.Country
	shut := g.W.ShutdownFactor(pair.Country, d)
	day := uint64(int64(d.DayNumber()))

	// Day-level activity noise: larger where the network environment is
	// unstable (low freedom, volatile ad/market conditions).
	sigma := 0.03 + c.AdVolatility/3
	if c.Freedom < 30 {
		sigma += 0.10
	}
	ns := g.root.Derive(chanNoise, m.Key(), e.Key, day)
	noise := ns.LogNormal(0, sigma)

	activity := users * e.CDNAffinity * noise * shut

	humanMean := activity * e.ReqPerUser * g.SamplingRate
	botMean := 0.0
	if e.BotShare > 0 && e.BotShare < 1 {
		botMean = humanMean * e.BotShare / (1 - e.BotShare)
	}
	s := g.root.Derive(chanRequests, m.Key(), e.Key, day)
	sampledHuman := s.Poisson(humanMean)
	sampledBot := s.Poisson(botMean)

	// Bot-score filtering: requests scoring below the threshold are
	// dropped. At the paper's threshold of 50 the classifier keeps ~97%
	// of humans and leaks ~3% of bots; threshold 0 disables filtering,
	// higher thresholds trade human recall for bot rejection.
	keepHuman, leakBot := botFilterRates(g.BotThreshold)
	keptHuman := s.Binomial(sampledHuman, keepHuman)
	leakedBot := s.Binomial(sampledBot, leakBot)
	human := keptHuman + leakedBot
	filtered := sampledHuman + sampledBot - human

	if human < g.MinSampledReq {
		return OrgStats{}, false
	}

	// Distinct User-Agents among the sampled human requests: each active
	// user is caught with probability 1−e^{−λ} where λ is their expected
	// sampled request count.
	active := users * e.CDNAffinity * shut
	var uas float64
	if active > 0 {
		lambda := float64(keptHuman) / active
		uas = active * (1 - math.Exp(-lambda)) * (0.7 + 0.3*e.UAPerUser)
	}

	// Reported volume scales with the requests that survive the bot
	// filter: with filtering off, bot traffic inflates bot-heavy orgs'
	// volumes; an aggressive filter deflates human-heavy ones.
	volFactor := 1.0
	if sampledHuman > 0 {
		volFactor = float64(human) / float64(sampledHuman)
	}
	volume := activity * e.TrafficPerUser * bytesPerUserDay * volFactor
	return OrgStats{
		SampledRequests: human,
		FilteredBots:    filtered,
		UserAgents:      uas,
		Bytes:           volume,
	}, true
}

// botFilterRates maps a bot-score threshold to (human-kept, bot-leaked)
// probabilities. Threshold 0 disables filtering entirely.
func botFilterRates(threshold int) (keepHuman, leakBot float64) {
	switch {
	case threshold <= 0:
		return 1, 1
	case threshold < 50:
		// Lenient: keeps nearly all humans, leaks more bots.
		return 0.995, 0.10
	case threshold < 80:
		// The paper's operating point.
		return 0.97, 0.03
	default:
		// Aggressive: rejects bots hard but drops real users too.
		return 0.85, 0.005
	}
}

// addTor injects the Tor pseudo-country the paper notes the CDN reports
// under country code T1.
func (g *Generator) addTor(snap *Snapshot, d dates.Date) {
	s := g.root.Derive(chanTor, uint64(int64(d.DayNumber())))
	users := 1.5e6 * s.LogNormal(0, 0.05)
	req := s.Poisson(users * 20 * g.SamplingRate)
	snap.Stats[orgs.CountryOrg{Country: TorCountry, Org: TorOrg}] = OrgStats{
		SampledRequests: req,
		UserAgents:      users * 0.3,
		Bytes:           users * 0.5 * bytesPerUserDay,
	}
}

// Countries returns the sorted country codes in the snapshot.
func (s *Snapshot) Countries() []string {
	seen := map[string]bool{}
	for k := range s.Stats {
		seen[k.Country] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// UserAgents returns the raw UA counts keyed by (country, org).
func (s *Snapshot) UserAgents() map[orgs.CountryOrg]float64 {
	out := make(map[orgs.CountryOrg]float64, len(s.Stats))
	for k, v := range s.Stats {
		out[k] = v.UserAgents
	}
	return out
}

// Volumes returns the traffic volumes keyed by (country, org).
func (s *Snapshot) Volumes() map[orgs.CountryOrg]float64 {
	out := make(map[orgs.CountryOrg]float64, len(s.Stats))
	for k, v := range s.Stats {
		out[k] = v.Bytes
	}
	return out
}

// UAShares returns one country's per-org share of User-Agents, summing to
// 1 — the form the paper receives the proprietary data in ("we are
// provided with the percentages for each (country, org)").
func (s *Snapshot) UAShares(country string) map[string]float64 {
	return shares(s.Stats, country, func(st OrgStats) float64 { return st.UserAgents })
}

// VolumeShares returns one country's per-org share of traffic volume.
func (s *Snapshot) VolumeShares(country string) map[string]float64 {
	return shares(s.Stats, country, func(st OrgStats) float64 { return st.Bytes })
}

func shares(byPair map[orgs.CountryOrg]OrgStats, country string, f func(OrgStats) float64) map[string]float64 {
	out := map[string]float64{}
	for k, st := range byPair {
		if k.Country == country {
			out[k.Org] = f(st)
		}
	}
	// NormalizeMap sums in sorted key order so map iteration cannot leak
	// into the shares' last bits.
	return stats.NormalizeMap(out)
}
