package cdn

import (
	"testing"

	"repro/internal/dates"
)

// TestGenerateAllocBudget guards the allocation-free hot path: after the
// world's year/day caches are warm, a daily snapshot costs a handful of
// allocations (the snapshot struct and its stats map) — measured at ~19
// per run. A reintroduced fmt.Sprintf or string-labelled Split in the
// per-(country, org, day) loop would add tens of thousands and trip the
// budget immediately.
func TestGenerateAllocBudget(t *testing.T) {
	const budget = 64
	g := testGen()
	d := dates.New(2023, 7, 20)
	g.Generate(d) // warm the world caches so steady-state cost is measured
	allocs := testing.AllocsPerRun(5, func() { g.Generate(d) })
	if allocs > budget {
		t.Fatalf("cdn.Generate allocates %v times per run, budget %d", allocs, budget)
	}
}
