package cdn

import (
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 11})

func testGen() *Generator { return New(testW, 11) }

func TestGenerateDeterministic(t *testing.T) {
	d := dates.New(2023, 7, 20)
	s1 := testGen().Generate(d)
	s2 := testGen().Generate(d)
	if len(s1.Stats) != len(s2.Stats) {
		t.Fatal("stat counts differ")
	}
	for k, v := range s1.Stats {
		if s2.Stats[k] != v {
			t.Fatalf("stats differ for %v", k)
		}
	}
}

func TestCoverageExceedsAPNIC(t *testing.T) {
	d := dates.New(2023, 7, 20)
	snap := testGen().Generate(d)
	pairs := testW.CountryOrgPairs(d)
	// The CDN must observe the large majority of real pairs.
	if float64(len(snap.Stats)) < 0.7*float64(len(pairs)) {
		t.Fatalf("CDN sees %d of %d pairs", len(snap.Stats), len(pairs))
	}
}

func TestSharesSumToOne(t *testing.T) {
	snap := testGen().Generate(dates.New(2023, 7, 20))
	for _, c := range []string{"FR", "IN", "US", "BR"} {
		ua := snap.UAShares(c)
		vol := snap.VolumeShares(c)
		var sa, sv float64
		for _, v := range ua {
			sa += v
		}
		for _, v := range vol {
			sv += v
		}
		if math.Abs(sa-1) > 1e-9 || math.Abs(sv-1) > 1e-9 {
			t.Errorf("%s shares sum to %v / %v", c, sa, sv)
		}
	}
}

func TestUACountsTrackUsers(t *testing.T) {
	d := dates.New(2023, 7, 20)
	snap := testGen().Generate(d)
	// Within France, bigger orgs must show more UAs (rank preserved for
	// the top of the market).
	entries := testW.Market("FR").ActiveEntries(d)
	type pair struct{ users, uas float64 }
	var ps []pair
	for _, e := range entries {
		if !e.Org.Type.HostsUsers() {
			continue
		}
		st, ok := snap.Stats[orgs.CountryOrg{Country: "FR", Org: e.Org.ID}]
		if !ok {
			continue
		}
		ps = append(ps, pair{testW.TrueUsers("FR", e.Org.ID, d), st.UserAgents})
	}
	if len(ps) < 5 {
		t.Fatalf("only %d French eyeball orgs visible", len(ps))
	}
	// Spot-check monotonicity between clearly separated sizes.
	for i := range ps {
		for j := range ps {
			if ps[i].users > 5*ps[j].users && ps[i].uas < ps[j].uas {
				t.Errorf("org with %vx users has fewer UAs (%v < %v)", ps[i].users/ps[j].users, ps[i].uas, ps[j].uas)
			}
		}
	}
}

func TestVPNGeolocationViews(t *testing.T) {
	d := dates.New(2023, 7, 20)
	snap := testGen().Generate(d)
	vpn := testW.VPNOrgID

	// In the hub (Norway) the CDN sees only the VPN's real local users —
	// a small share. In APNIC's view the same org looms large (tested in
	// the apnic package); here we check the CDN side is small.
	hubShare := snap.UAShares("NO")[vpn]
	if hubShare > 0.1 {
		t.Errorf("CDN NO share of VPN = %v; true geolocation should keep it small", hubShare)
	}
	// And the origin countries see some VPN presence.
	found := 0
	for origin, w := range testW.VPNOrigins() {
		if w <= 0 {
			continue
		}
		if _, ok := snap.Stats[orgs.CountryOrg{Country: origin, Org: vpn}]; ok {
			found++
		}
	}
	if found < 3 {
		t.Errorf("VPN visible in only %d origin countries", found)
	}
}

func TestTorPseudoCountry(t *testing.T) {
	snap := testGen().Generate(dates.New(2023, 7, 20))
	st, ok := snap.Stats[orgs.CountryOrg{Country: TorCountry, Org: TorOrg}]
	if !ok {
		t.Fatal("no Tor pseudo-country in CDN data")
	}
	if st.UserAgents <= 0 || st.Bytes <= 0 {
		t.Fatal("Tor stats empty")
	}
	countries := snap.Countries()
	hasT1 := false
	for _, c := range countries {
		if c == TorCountry {
			hasT1 = true
		}
	}
	if !hasT1 {
		t.Fatal("T1 missing from Countries()")
	}
}

func TestNorthKoreaCDNOnly(t *testing.T) {
	// KP has zero ad reach (no APNIC data ever) but the CDN still sees a
	// trickle of traffic.
	snap := testGen().Generate(dates.New(2023, 7, 20))
	kp := 0
	for k := range snap.Stats {
		if k.Country == "KP" {
			kp++
		}
	}
	if kp == 0 {
		t.Error("CDN should observe some KP networks")
	}
}

func TestBotFiltering(t *testing.T) {
	d := dates.New(2023, 7, 20)
	snap := testGen().Generate(d)
	// Cloud orgs must have a much higher filtered-bot fraction than
	// eyeball orgs.
	frac := func(typ orgs.Type) float64 {
		var bots, human int64
		for k, st := range snap.Stats {
			o, ok := testW.Registry.ByID(k.Org)
			if !ok || o.Type != typ {
				continue
			}
			bots += st.FilteredBots
			human += st.SampledRequests
		}
		if bots+human == 0 {
			return 0
		}
		return float64(bots) / float64(bots+human)
	}
	cloud := frac(orgs.CloudProvider)
	access := frac(orgs.FixedAccess)
	if cloud < 2*access {
		t.Errorf("cloud bot fraction %v not ≫ access %v", cloud, access)
	}
}

func TestShutdownDayVisible(t *testing.T) {
	// Find a Myanmar shutdown day in 2024 and check the CDN reacts.
	g := testGen()
	var shutDay, normalDay dates.Date
	for _, d := range dates.Range(dates.New(2024, 1, 1), dates.New(2024, 6, 30), 1) {
		if testW.ShutdownFactor("MM", d) < 1 {
			if shutDay == (dates.Date{}) {
				shutDay = d
			}
		} else if normalDay == (dates.Date{}) {
			normalDay = d
		}
	}
	if shutDay == (dates.Date{}) {
		t.Skip("no shutdown day realized in H1 2024")
	}
	vol := func(d dates.Date) float64 {
		total := 0.0
		for k, st := range g.Generate(d).Stats {
			if k.Country == "MM" {
				total += st.Bytes
			}
		}
		return total
	}
	vShut, vNorm := vol(shutDay), vol(normalDay)
	if vShut > 0.5*vNorm {
		t.Errorf("shutdown day volume %v not clearly below normal %v", vShut, vNorm)
	}
}

func TestMinSampledReqFloor(t *testing.T) {
	snap := testGen().Generate(dates.New(2023, 7, 20))
	for k, st := range snap.Stats {
		if k.Country == TorCountry {
			continue
		}
		if st.SampledRequests < DefaultMinSampledReq {
			t.Fatalf("%v visible with %d sampled requests", k, st.SampledRequests)
		}
	}
}

func TestVolumeDominatedByBigOrgs(t *testing.T) {
	snap := testGen().Generate(dates.New(2023, 7, 20))
	vol := snap.VolumeShares("US")
	// The top org by volume should hold a sizable share.
	var top float64
	for _, v := range vol {
		if v > top {
			top = v
		}
	}
	if top < 0.08 {
		t.Errorf("top US volume share = %v; expected concentration", top)
	}
}
