package rir

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 11})

func TestDeterministic(t *testing.T) {
	a := New(testW, 8).Year(2024)
	b := New(testW, 8).Year(2024)
	for region, c := range a {
		if b[region] != c {
			t.Fatalf("nondeterministic counts for %s", region)
		}
	}
}

func TestBaseCountsPositive(t *testing.T) {
	counts := New(testW, 8).Year(2019)
	for _, region := range geo.AllSubregions() {
		c, ok := counts[region]
		if !ok {
			t.Errorf("region %s missing", region)
			continue
		}
		if c.Advertised <= 0 || c.Allocated <= 0 {
			t.Errorf("%s has non-positive counts: %+v", region, c)
		}
		if c.Allocated < c.Advertised {
			t.Errorf("%s: allocated %d < advertised %d", region, c.Allocated, c.Advertised)
		}
	}
}

func TestChangesDirections(t *testing.T) {
	changes := New(testW, 8).Changes(2019, 2024)
	if len(changes) != len(geo.AllSubregions()) {
		t.Fatalf("%d change rows, want %d", len(changes), len(geo.AllSubregions()))
	}
	byRegion := map[geo.Subregion]Change{}
	for _, c := range changes {
		byRegion[c.Region] = c
	}
	// The qualitative structure of Table 6.
	positives := []geo.Subregion{geo.Caribbean, geo.EasternAsia, geo.SouthernAsia, geo.SouthEastAsia, geo.EasternAfrica}
	for _, r := range positives {
		if byRegion[r].AllocatedPct <= 0 {
			t.Errorf("%s allocated change %v, want positive", r, byRegion[r].AllocatedPct)
		}
	}
	negatives := []geo.Subregion{geo.NorthernAmer, geo.EasternEurope, geo.NorthernEurope, geo.WesternEurope, geo.AustraliaNZ}
	for _, r := range negatives {
		if byRegion[r].AllocatedPct >= 0 {
			t.Errorf("%s allocated change %v, want negative", r, byRegion[r].AllocatedPct)
		}
	}
	// Eastern Asia advertises much faster than it allocates.
	ea := byRegion[geo.EasternAsia]
	if ea.AdvertisedPct <= ea.AllocatedPct {
		t.Errorf("Eastern Asia advertised %v should outpace allocated %v", ea.AdvertisedPct, ea.AllocatedPct)
	}
}

func TestChangesRowOrder(t *testing.T) {
	changes := New(testW, 8).Changes(2019, 2024)
	order := geo.AllSubregions()
	for i, c := range changes {
		if c.Region != order[i] {
			t.Fatalf("row %d is %s, want %s", i, c.Region, order[i])
		}
	}
}

func TestSameYearNoChange(t *testing.T) {
	changes := New(testW, 8).Changes(2019, 2019)
	for _, c := range changes {
		if c.AllocatedPct != 0 || c.AdvertisedPct != 0 {
			t.Errorf("%s: nonzero change for identical years: %+v", c.Region, c)
		}
	}
}
