// Package rir simulates the regional ASN delegation statistics behind the
// paper's Appendix D (Table 6): per-UN-subregion counts of allocated and
// advertised AS numbers over 2019–2024. The base counts come from the
// world's organizations; regional growth dynamics (Latin American and
// Asian expansion, North American and European contraction) are applied
// on top with yearly noise, so the generated table has the right shape
// without being a verbatim copy of the paper's percentages.
package rir

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/world"
)

// Counts is one region-year's registry state.
type Counts struct {
	Allocated  int // ASNs delegated by the RIR
	Advertised int // ASNs visible in the global routing table
}

// Generator produces per-region ASN counts by year.
type Generator struct {
	W    *world.World
	root *rng.Stream
}

// New returns a generator.
func New(w *world.World, seed uint64) *Generator {
	return &Generator{W: w, root: rng.New(seed).Split("rir")}
}

// regionTrend gives the annualized growth rates of allocated and
// advertised ASNs for 2019→2024, per subregion. These encode the
// qualitative structure of the paper's Table 6: the Caribbean and Eastern
// Asia boom, Northern America and Europe shrink.
func regionTrend(s geo.Subregion) (allocPerYear, advPerYear float64) {
	switch s {
	case geo.Caribbean:
		return 0.038, 0.059
	case geo.CentralAmerica:
		return 0.014, 0.020
	case geo.SouthAmer:
		return 0.006, 0.017
	case geo.NorthernAmer:
		return -0.032, -0.026
	case geo.EasternAsia:
		return 0.102, 0.182
	case geo.OtherAsia:
		return 0.073, 0.083
	case geo.SouthernAsia:
		return 0.093, 0.049
	case geo.SouthEastAsia:
		return 0.050, 0.045
	case geo.EasternAfrica:
		return 0.032, 0.037
	case geo.SouthernAfrica:
		return 0.018, 0.023
	case geo.NorthernAfrica:
		return 0.008, 0.021
	case geo.OtherAfrica:
		return 0.015, 0.021
	case geo.EasternEurope:
		return -0.065, -0.046
	case geo.SouthernEurope:
		return -0.026, -0.010
	case geo.NorthernEurope:
		return -0.028, -0.021
	case geo.WesternEurope:
		return -0.023, -0.011
	case geo.AustraliaNZ:
		return -0.027, -0.022
	default: // Oceania
		return -0.026, -0.021
	}
}

// baseCounts derives each region's 2019 registry size from the world:
// every org ASN is allocated, and a multiple of that is historically
// allocated-but-dark space.
func (g *Generator) baseCounts() map[geo.Subregion]Counts {
	out := map[geo.Subregion]Counts{}
	for _, cc := range g.W.Countries() {
		m := g.W.Market(cc)
		region := m.Country.Subregion
		c := out[region]
		for _, e := range m.Entries {
			c.Advertised += len(e.Org.ASNs)
		}
		out[region] = c
	}
	for region, c := range out {
		s := g.root.Split("base/" + string(region))
		c.Allocated = int(float64(c.Advertised) * s.Range(1.3, 1.8))
		out[region] = c
	}
	return out
}

// Year returns the registry counts per subregion for a year in
// [2019, 2024], with mild year-level noise.
func (g *Generator) Year(year int) map[geo.Subregion]Counts {
	base := g.baseCounts()
	out := map[geo.Subregion]Counts{}
	for region, b := range base {
		alloc, adv := regionTrend(region)
		years := float64(year - 2019)
		s := g.root.Split("noise/" + string(region))
		var offset float64
		for y := 2019; y < year; y++ {
			offset += s.Norm(0, 0.005)
		}
		growA := pow1p(alloc, years) * (1 + offset)
		growV := pow1p(adv, years) * (1 + offset)
		out[region] = Counts{
			Allocated:  int(float64(b.Allocated) * growA),
			Advertised: int(float64(b.Advertised) * growV),
		}
	}
	return out
}

func pow1p(rate, years float64) float64 {
	v := 1.0
	for i := 0.0; i < years; i++ {
		v *= 1 + rate
	}
	return v
}

// Change summarizes the percentage change between two years for every
// region, in Table 6 row order.
type Change struct {
	Region        geo.Subregion
	AllocatedPct  float64
	AdvertisedPct float64
}

// Changes computes per-region percentage changes from one year to
// another.
func (g *Generator) Changes(fromYear, toYear int) []Change {
	from := g.Year(fromYear)
	to := g.Year(toYear)
	var out []Change
	for _, region := range geo.AllSubregions() {
		f, okF := from[region]
		t, okT := to[region]
		if !okF || !okT || f.Allocated == 0 || f.Advertised == 0 {
			continue
		}
		out = append(out, Change{
			Region:        region,
			AllocatedPct:  100 * (float64(t.Allocated)/float64(f.Allocated) - 1),
			AdvertisedPct: 100 * (float64(t.Advertised)/float64(f.Advertised) - 1),
		})
	}
	sort.Slice(out, func(i, j int) bool { return regionOrder(out[i].Region) < regionOrder(out[j].Region) })
	return out
}

func regionOrder(s geo.Subregion) int {
	for i, r := range geo.AllSubregions() {
		if r == s {
			return i
		}
	}
	return len(geo.AllSubregions())
}
