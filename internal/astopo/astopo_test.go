package astopo

import (
	"testing"

	"repro/internal/dates"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 11})

func testGraph(t *testing.T) *Graph {
	t.Helper()
	return BuildGraph(testW, 11)
}

func TestGraphStructure(t *testing.T) {
	g := testGraph(t)
	if len(g.Tier1()) != 12 {
		t.Fatalf("%d tier-1s", len(g.Tier1()))
	}
	// Tier-1s form a peer clique with no providers.
	for _, t1 := range g.Tier1() {
		prov, _, peer := g.Degree(t1)
		if prov != 0 {
			t.Errorf("%s has %d providers; tier-1s buy transit from nobody", t1, prov)
		}
		if peer < 11 {
			t.Errorf("%s peers with %d tier-1s", t1, peer)
		}
	}
	// Every org node has at least one provider (no stub is isolated).
	orphans := 0
	for _, n := range g.Nodes() {
		prov, cust, peer := g.Degree(n)
		if prov+cust+peer == 0 {
			orphans++
		}
	}
	if orphans > 0 {
		t.Errorf("%d isolated nodes", orphans)
	}
	if len(g.Nodes()) < 4000 {
		t.Errorf("only %d nodes", len(g.Nodes()))
	}
}

func TestGraphDeterministic(t *testing.T) {
	a := BuildGraph(testW, 5)
	b := BuildGraph(testW, 5)
	na, nb := a.Nodes(), b.Nodes()
	if len(na) != len(nb) {
		t.Fatal("node sets differ")
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatal("node order differs")
		}
		pa, ca, ra := a.Degree(na[i])
		pb, cb, rb := b.Degree(nb[i])
		if pa != pb || ca != cb || ra != rb {
			t.Fatalf("degrees differ at %s", na[i])
		}
	}
}

func TestValleyFreeSmall(t *testing.T) {
	// Hand-built topology:
	//        T (tier-1)
	//       /  \
	//      A    B      A,B customers of T; A-B NOT peers
	//     /      \
	//    a        b    stubs
	g := newGraph()
	g.AddEdge("A", "T", Customer)
	g.AddEdge("B", "T", Customer)
	g.AddEdge("a", "A", Customer)
	g.AddEdge("b", "B", Customer)

	p := g.PathsFrom("a")
	path, ok := p.To("b")
	if !ok {
		t.Fatal("no path a→b")
	}
	want := []string{"a", "A", "T", "B", "b"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if d := p.Dist("b"); d != 4 {
		t.Fatalf("dist = %d", d)
	}
}

func TestValleyFreePeerShortcut(t *testing.T) {
	// a-A-B-b with A,B peers must beat the longer provider route.
	g := newGraph()
	g.AddEdge("A", "T", Customer)
	g.AddEdge("B", "T", Customer)
	g.AddEdge("A", "B", Peer)
	g.AddEdge("a", "A", Customer)
	g.AddEdge("b", "B", Customer)
	path, ok := g.PathsFrom("a").To("b")
	if !ok {
		t.Fatal("no path")
	}
	if len(path) != 4 || path[1] != "A" || path[2] != "B" {
		t.Fatalf("peer shortcut not taken: %v", path)
	}
}

func TestValleyFreeNoDoublePeer(t *testing.T) {
	// a-A ~ B ~ C-c with two peer links in sequence is NOT valley-free;
	// with no other connectivity c must be unreachable from a.
	g := newGraph()
	g.AddEdge("a", "A", Customer)
	g.AddEdge("A", "B", Peer)
	g.AddEdge("B", "C", Peer)
	g.AddEdge("c", "C", Customer)
	if _, ok := g.PathsFrom("a").To("c"); ok {
		t.Fatal("double-peer path should be forbidden")
	}
}

func TestValleyFreeNoValley(t *testing.T) {
	// a and b are customers of M; M must not provide transit *upward*:
	// path a→b via M is a-M-b (down after up) which IS valley-free.
	// But x→y where x,y are providers of M must not route through their
	// shared customer M.
	g := newGraph()
	g.AddEdge("M", "x", Customer) // M pays x
	g.AddEdge("M", "y", Customer) // M pays y
	if _, ok := g.PathsFrom("x").To("y"); ok {
		t.Fatal("customer M must not transit between its providers")
	}
}

func TestPathsUnknownSource(t *testing.T) {
	g := newGraph()
	g.AddEdge("a", "A", Customer)
	if _, ok := g.PathsFrom("zz").To("a"); ok {
		t.Fatal("unknown source should reach nothing")
	}
	if g.PathsFrom("a").Dist("zz") != -1 {
		t.Fatal("unknown destination should be unreachable")
	}
}

func TestWorldGraphConnectivity(t *testing.T) {
	g := testGraph(t)
	// A random big eyeball must reach the vast majority of org nodes.
	src := testW.Market("FR").Entries[0].Org.ID
	p := g.PathsFrom(src)
	reached := 0
	for _, n := range g.Nodes() {
		if p.Dist(n) >= 0 {
			reached++
		}
	}
	if frac := float64(reached) / float64(len(g.Nodes())); frac < 0.95 {
		t.Fatalf("reached only %.1f%% of nodes", 100*frac)
	}
}

func TestCampaignPopularity(t *testing.T) {
	g := testGraph(t)
	c := NewCampaign(testW, g, 11, 20)
	if len(c.Vantages) != 20 {
		t.Fatalf("%d vantages", len(c.Vantages))
	}
	d := dates.New(2023, 7, 20)
	pop := c.Run(d, 50)
	if pop.Traces < 900 {
		t.Fatalf("only %d traces completed", pop.Traces)
	}
	if pop.LostHops == 0 {
		t.Error("no measurement error despite nonzero hop loss probability")
	}
	if len(pop.Weight) < 50 {
		t.Fatalf("popularity covers only %d orgs", len(pop.Weight))
	}
	// Transit must dominate: a tier-1 should out-rank any stub.
	var maxT1, maxStub float64
	for id, w := range pop.Weight {
		if len(id) > 3 && id[:3] == "T1-" {
			if w > maxT1 {
				maxT1 = w
			}
		} else if len(id) > 3 && id[:3] != "RT-" {
			if w > maxStub {
				maxStub = w
			}
		}
	}
	if maxT1 == 0 {
		t.Fatal("no tier-1 appears on any path")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	g := testGraph(t)
	d := dates.New(2023, 7, 20)
	p1 := NewCampaign(testW, g, 7, 10).Run(d, 20)
	p2 := NewCampaign(testW, g, 7, 10).Run(d, 20)
	if p1.Traces != p2.Traces || len(p1.Weight) != len(p2.Weight) {
		t.Fatal("campaigns differ")
	}
	for id, w := range p1.Weight {
		if p2.Weight[id] != w {
			t.Fatalf("weight differs for %s", id)
		}
	}
}

func TestCountryShares(t *testing.T) {
	g := testGraph(t)
	c := NewCampaign(testW, g, 11, 20)
	pop := c.Run(dates.New(2023, 7, 20), 100)
	shares := pop.CountryShares(testW.Registry, "DE")
	sum := 0.0
	for id, v := range shares {
		o, _ := testW.Registry.ByID(id)
		if o.Home != "DE" {
			t.Errorf("foreign org %s in German shares", id)
		}
		sum += v
	}
	if len(shares) > 0 && (sum < 0.999 || sum > 1.001) {
		t.Fatalf("shares sum to %v", sum)
	}
}
