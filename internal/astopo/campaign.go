package astopo

import (
	"sort"

	"repro/internal/dates"
	"repro/internal/geo"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/syncx"
	"repro/internal/world"
)

// chanTrace is the derivation channel for per-(vantage, day) trace
// streams: root.Derive(chanTrace, vantageKey, dayNumber) replaces the
// old root.Split("trace/"+v+"/"+d.String()) label format on the hot path.
const chanTrace uint64 = 1

// Campaign is a traceroute measurement campaign: vantage points probe
// destinations across the topology and the observed AS paths are folded
// into per-organization path popularity — the [69]-style traffic proxy.
type Campaign struct {
	W     *world.World
	Graph *Graph

	// Vantages are the probing orgs. The default selection is biased
	// toward Europe and North America, reproducing the source-location
	// bias the paper cites.
	Vantages []string

	// HopLossProb is the per-hop probability that a traceroute fails to
	// reveal an AS on the path (the paper's "inaccuracies").
	HopLossProb float64

	// Parallelism bounds how many vantages Run traces concurrently
	// (GOMAXPROCS when <= 0). Every setting produces byte-identical
	// results: each vantage accumulates into its own partial weight map
	// and partials are merged in sorted vantage order.
	Parallelism int

	root        *rng.Stream
	vantageKeys []uint64 // rng.KeyString per vantage, parallel to Vantages

	// paths memoizes PathsFrom per vantage: the valley-free BFS is the
	// expensive part of a trace and is identical across days.
	paths syncx.Cache[string, *Paths]
}

// NewCampaign builds a campaign with nVantages probes chosen with the
// canonical geographic bias: ~70% of vantage points in Europe and North
// America, the rest spread across the remaining continents.
func NewCampaign(w *world.World, g *Graph, seed uint64, nVantages int) *Campaign {
	c := &Campaign{
		W:           w,
		Graph:       g,
		HopLossProb: 0.08,
		root:        rng.New(seed).Split("campaign"),
	}
	s := c.root.Split("vantages")

	var west, rest []string
	for _, cc := range w.Countries() {
		m := w.Market(cc)
		cont := m.Country.Continent()
		for _, e := range m.ActiveEntries(dates.New(2023, 7, 20)) {
			if !e.Org.Type.HostsUsers() || e.BaseWeight < 0.05 {
				continue
			}
			if cont == geo.Europe || cont == geo.NorthAmerica {
				west = append(west, e.Org.ID)
			} else {
				rest = append(rest, e.Org.ID)
			}
		}
	}
	sort.Strings(west)
	sort.Strings(rest)
	nWest := nVantages * 7 / 10
	c.Vantages = append(pickDistinct(s, west, nWest), pickDistinct(s, rest, nVantages-nWest)...)
	sort.Strings(c.Vantages)
	c.vantageKeys = make([]uint64, len(c.Vantages))
	for i, v := range c.Vantages {
		c.vantageKeys[i] = rng.KeyString(v)
	}
	return c
}

// Popularity is the campaign result: per-org weighted path appearances.
type Popularity struct {
	// Weight is the flow-weighted number of observed paths crossing the
	// org, keyed by org ID.
	Weight map[string]float64
	// Traces is the number of traceroutes run.
	Traces int
	// LostHops counts AS hops hidden by measurement error.
	LostHops int
}

// Run executes the campaign on a date: every vantage traces toward
// destination orgs sampled in proportion to their traffic attractiveness
// (content networks dominate), each trace weighted by the vantage org's
// user population — approximating "paths weighted by popularity".
func (c *Campaign) Run(d dates.Date, tracesPerVantage int) *Popularity {
	pop := &Popularity{Weight: map[string]float64{}}

	// Destination mix: orgs weighted by users × traffic intensity, the
	// flow gravity model.
	var dsts []string
	var dstW []float64
	for _, cc := range c.W.Countries() {
		m := c.W.Market(cc)
		for _, e := range m.ActiveEntries(d) {
			if e.Org.Home != cc {
				continue
			}
			attract := c.W.TrueUsers(cc, e.Org.ID, d) * e.TrafficPerUser
			if attract <= 0 {
				continue
			}
			dsts = append(dsts, e.Org.ID)
			dstW = append(dstW, attract)
		}
	}
	cum := rng.Cumulative(dstW)
	if cum == nil {
		return pop
	}

	// Trace every vantage into its own partial, then merge in sorted
	// vantage order. Partials make the float accumulation order a pure
	// function of the (sorted) vantage list, so serial and parallel runs
	// are byte-identical.
	parts := make([]tracePartial, len(c.Vantages))
	syncx.ParallelEach(len(c.Vantages), c.Parallelism, func(i int) {
		parts[i] = c.trace(d, i, tracesPerVantage, dsts, cum)
	})
	for i := range parts {
		pop.Traces += parts[i].traces
		pop.LostHops += parts[i].lostHops
		for id, w := range parts[i].weight {
			pop.Weight[id] += w
		}
	}
	return pop
}

// tracePartial is one vantage's contribution to a Popularity.
type tracePartial struct {
	weight   map[string]float64
	traces   int
	lostHops int
}

// trace runs vantage i's probes for one day. It touches only shared
// read-only state (world queries and the memoized path tree), so Run may
// invoke it concurrently across vantages.
func (c *Campaign) trace(d dates.Date, i, tracesPerVantage int, dsts []string, cum []float64) tracePartial {
	part := tracePartial{weight: map[string]float64{}}
	v := c.Vantages[i]
	paths := c.pathsFrom(v)
	o, ok := c.W.Registry.ByID(v)
	if !ok {
		return part
	}
	weight := c.W.TrueUsers(o.Home, v, d)
	if weight <= 0 {
		weight = 1
	}
	s := c.root.Derive(chanTrace, c.vantageKeys[i], uint64(int64(d.DayNumber())))
	for t := 0; t < tracesPerVantage; t++ {
		dst := dsts[s.Categorical(cum)]
		path, ok := paths.To(dst)
		if !ok {
			continue
		}
		part.traces++
		for _, hop := range path {
			if s.Bool(c.HopLossProb) {
				part.lostHops++
				continue // hop hidden by measurement error
			}
			part.weight[hop] += weight
		}
	}
	return part
}

// pathsFrom returns the memoized valley-free path tree for a vantage.
// PathsFrom is deterministic in (graph, src), so the first computation is
// shared by every later Run regardless of date.
func (c *Campaign) pathsFrom(v string) *Paths {
	return c.paths.Get(v, func() *Paths { return c.Graph.PathsFrom(v) })
}

// CountryShares projects the popularity onto one country's organizations
// (by org home), normalized to sum to 1.
func (p *Popularity) CountryShares(reg *orgs.Registry, country string) map[string]float64 {
	out := map[string]float64{}
	for id, w := range p.Weight {
		o, ok := reg.ByID(id)
		if !ok || o.Home != country {
			continue
		}
		out[id] = w
	}
	// Sum in sorted ID order: float addition is order-sensitive and map
	// ranges are not, so an unsorted sum would vary run to run.
	ids := make([]string, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	total := 0.0
	for _, id := range ids {
		total += out[id]
	}
	if total > 0 {
		for _, id := range ids {
			out[id] /= total
		}
	}
	return out
}
