package astopo

import (
	"sort"

	"repro/internal/dates"
	"repro/internal/geo"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/world"
)

// Campaign is a traceroute measurement campaign: vantage points probe
// destinations across the topology and the observed AS paths are folded
// into per-organization path popularity — the [69]-style traffic proxy.
type Campaign struct {
	W     *world.World
	Graph *Graph

	// Vantages are the probing orgs. The default selection is biased
	// toward Europe and North America, reproducing the source-location
	// bias the paper cites.
	Vantages []string

	// HopLossProb is the per-hop probability that a traceroute fails to
	// reveal an AS on the path (the paper's "inaccuracies").
	HopLossProb float64

	root *rng.Stream
}

// NewCampaign builds a campaign with nVantages probes chosen with the
// canonical geographic bias: ~70% of vantage points in Europe and North
// America, the rest spread across the remaining continents.
func NewCampaign(w *world.World, g *Graph, seed uint64, nVantages int) *Campaign {
	c := &Campaign{
		W:           w,
		Graph:       g,
		HopLossProb: 0.08,
		root:        rng.New(seed).Split("campaign"),
	}
	s := c.root.Split("vantages")

	var west, rest []string
	for _, cc := range w.Countries() {
		m := w.Market(cc)
		cont := m.Country.Continent()
		for _, e := range m.ActiveEntries(dates.New(2023, 7, 20)) {
			if !e.Org.Type.HostsUsers() || e.BaseWeight < 0.05 {
				continue
			}
			if cont == geo.Europe || cont == geo.NorthAmerica {
				west = append(west, e.Org.ID)
			} else {
				rest = append(rest, e.Org.ID)
			}
		}
	}
	sort.Strings(west)
	sort.Strings(rest)
	nWest := nVantages * 7 / 10
	c.Vantages = append(pickDistinct(s, west, nWest), pickDistinct(s, rest, nVantages-nWest)...)
	sort.Strings(c.Vantages)
	return c
}

// Popularity is the campaign result: per-org weighted path appearances.
type Popularity struct {
	// Weight is the flow-weighted number of observed paths crossing the
	// org, keyed by org ID.
	Weight map[string]float64
	// Traces is the number of traceroutes run.
	Traces int
	// LostHops counts AS hops hidden by measurement error.
	LostHops int
}

// Run executes the campaign on a date: every vantage traces toward
// destination orgs sampled in proportion to their traffic attractiveness
// (content networks dominate), each trace weighted by the vantage org's
// user population — approximating "paths weighted by popularity".
func (c *Campaign) Run(d dates.Date, tracesPerVantage int) *Popularity {
	pop := &Popularity{Weight: map[string]float64{}}

	// Destination mix: orgs weighted by users × traffic intensity, the
	// flow gravity model.
	var dsts []string
	var dstW []float64
	for _, cc := range c.W.Countries() {
		m := c.W.Market(cc)
		for _, e := range m.ActiveEntries(d) {
			if e.Org.Home != cc {
				continue
			}
			attract := c.W.TrueUsers(cc, e.Org.ID, d) * e.TrafficPerUser
			if attract <= 0 {
				continue
			}
			dsts = append(dsts, e.Org.ID)
			dstW = append(dstW, attract)
		}
	}
	cum := rng.Cumulative(dstW)
	if cum == nil {
		return pop
	}

	for _, v := range c.Vantages {
		paths := c.Graph.PathsFrom(v)
		o, ok := c.W.Registry.ByID(v)
		if !ok {
			continue
		}
		weight := c.W.TrueUsers(o.Home, v, d)
		if weight <= 0 {
			weight = 1
		}
		s := c.root.Split("trace/" + v + "/" + d.String())
		for t := 0; t < tracesPerVantage; t++ {
			dst := dsts[s.Categorical(cum)]
			path, ok := paths.To(dst)
			if !ok {
				continue
			}
			pop.Traces++
			for _, hop := range path {
				if s.Bool(c.HopLossProb) {
					pop.LostHops++
					continue // hop hidden by measurement error
				}
				pop.Weight[hop] += weight
			}
		}
	}
	return pop
}

// CountryShares projects the popularity onto one country's organizations
// (by org home), normalized to sum to 1.
func (p *Popularity) CountryShares(reg *orgs.Registry, country string) map[string]float64 {
	out := map[string]float64{}
	total := 0.0
	for id, w := range p.Weight {
		o, ok := reg.ByID(id)
		if !ok || o.Home != country {
			continue
		}
		out[id] = w
		total += w
	}
	if total > 0 {
		for k := range out {
			out[k] /= total
		}
	}
	return out
}
