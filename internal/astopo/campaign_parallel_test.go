package astopo

import (
	"testing"

	"repro/internal/dates"
)

// TestCampaignSerialVsParallel runs the same campaign at several
// parallelism settings and requires byte-identical results: same traces,
// same lost hops, same weight map bit for bit. This is the contract the
// partial-merge design guarantees by construction.
func TestCampaignSerialVsParallel(t *testing.T) {
	g := testGraph(t)
	d := dates.New(2023, 7, 20)

	run := func(parallelism int) *Popularity {
		c := NewCampaign(testW, g, 11, 16)
		c.Parallelism = parallelism
		return c.Run(d, 60)
	}

	base := run(1)
	if base.Traces == 0 {
		t.Fatal("serial campaign completed no traces")
	}
	for _, par := range []int{2, 4, 8, 0} { // 0 = GOMAXPROCS
		got := run(par)
		if got.Traces != base.Traces || got.LostHops != base.LostHops {
			t.Fatalf("parallelism %d: (%d traces, %d lost) vs serial (%d, %d)",
				par, got.Traces, got.LostHops, base.Traces, base.LostHops)
		}
		if len(got.Weight) != len(base.Weight) {
			t.Fatalf("parallelism %d: %d weighted orgs vs serial %d", par, len(got.Weight), len(base.Weight))
		}
		for id, w := range base.Weight {
			if got.Weight[id] != w {
				t.Fatalf("parallelism %d: weight[%s] = %v, serial %v", par, id, got.Weight[id], w)
			}
		}
	}
}

// TestCampaignPathMemo checks that repeat Runs share the memoized path
// trees instead of re-running the valley-free BFS per day.
func TestCampaignPathMemo(t *testing.T) {
	g := testGraph(t)
	c := NewCampaign(testW, g, 11, 12)
	c.Run(dates.New(2023, 7, 20), 10)
	if n := c.paths.Len(); n != len(c.Vantages) {
		t.Fatalf("path memo holds %d vantages, want %d", n, len(c.Vantages))
	}
	c.Run(dates.New(2023, 7, 21), 10)
	if n := c.paths.Len(); n != len(c.Vantages) {
		t.Fatalf("second day grew the path memo to %d, want %d", n, len(c.Vantages))
	}
}

// TestCountrySharesDeterministic guards the sorted-order normalization:
// repeated projections of one popularity must be bit-identical.
func TestCountrySharesDeterministic(t *testing.T) {
	g := testGraph(t)
	pop := NewCampaign(testW, g, 11, 16).Run(dates.New(2023, 7, 20), 80)
	first := pop.CountryShares(testW.Registry, "DE")
	for i := 0; i < 5; i++ {
		again := pop.CountryShares(testW.Registry, "DE")
		if len(again) != len(first) {
			t.Fatal("share set size changed between projections")
		}
		for id, v := range first {
			if again[id] != v {
				t.Fatalf("projection %d: shares[%s] = %v, first %v", i, id, again[id], v)
			}
		}
	}
}

// BenchmarkCampaignRun measures a full one-day campaign over a fresh
// graph, the shape ExtProxies pays once per lab.
func BenchmarkCampaignRun(b *testing.B) {
	c := NewCampaign(testW, BuildGraph(testW, 11), 11, 24)
	d := dates.New(2023, 7, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(d, 150)
	}
}
