// Package astopo implements the traceroute-based traffic-proxy baseline
// the paper discusses in §7 (the "weighted graph of the Internet" of
// Sanchez et al.): an AS-level topology with customer/provider/peer
// relationships, Gao-Rexford valley-free path computation, and a
// traceroute-campaign simulator that measures per-organization *path
// popularity* as a proxy for traffic volume.
//
// The paper's assessment, which the simulation reproduces: the proxy
// correlates with traffic but "requires massive traceroute campaigns,
// which are known to potentially include inaccuracies and biases based on
// the number and location of sources". Both failure modes are modelled —
// hop loss in traces and a vantage-point distribution skewed toward
// Europe and North America.
package astopo

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/world"
)

// Rel is a business relationship between two nodes.
type Rel int

// Relationship kinds, from the perspective of the first node.
const (
	Customer Rel = iota // first pays second (c2p)
	Peer                // settlement-free
)

// Graph is an AS-organization-level topology.
type Graph struct {
	providers map[string][]string // node -> providers (sorted)
	customers map[string][]string // node -> customers (sorted)
	peers     map[string][]string // node -> peers (sorted)
	nodes     []string            // all nodes, sorted
	tier1     []string
}

// newGraph returns an empty graph.
func newGraph() *Graph {
	return &Graph{
		providers: map[string][]string{},
		customers: map[string][]string{},
		peers:     map[string][]string{},
	}
}

func (g *Graph) addNode(id string) {
	if _, ok := g.providers[id]; ok {
		return
	}
	g.providers[id] = nil
	g.customers[id] = nil
	g.peers[id] = nil
	g.nodes = append(g.nodes, id)
}

// AddEdge installs a relationship; for Customer, a pays b.
func (g *Graph) AddEdge(a, b string, rel Rel) {
	g.addNode(a)
	g.addNode(b)
	switch rel {
	case Customer:
		g.providers[a] = insertSorted(g.providers[a], b)
		g.customers[b] = insertSorted(g.customers[b], a)
	case Peer:
		g.peers[a] = insertSorted(g.peers[a], b)
		g.peers[b] = insertSorted(g.peers[b], a)
	}
}

func insertSorted(s []string, v string) []string {
	i := sort.SearchStrings(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Nodes returns all node IDs, sorted.
func (g *Graph) Nodes() []string {
	out := append([]string(nil), g.nodes...)
	sort.Strings(out)
	return out
}

// Tier1 returns the global transit clique.
func (g *Graph) Tier1() []string { return append([]string(nil), g.tier1...) }

// Degree returns (providers, customers, peers) counts for a node.
func (g *Graph) Degree(id string) (prov, cust, peer int) {
	return len(g.providers[id]), len(g.customers[id]), len(g.peers[id])
}

// BuildGraph synthesizes a topology over the world's organizations:
//
//   - a full-mesh clique of global tier-1 transit networks;
//   - two or three regional transit networks per subregion, customers of
//     several tier-1s and peering among neighbours;
//   - every organization a customer of one to three of its region's
//     transits, with the largest eyeballs multihoming to a tier-1 and
//     cloud/CDN orgs peering broadly (their off-net footprint).
func BuildGraph(w *world.World, seed uint64) *Graph {
	g := newGraph()
	s := rng.New(seed).Split("astopo")

	// Tier-1 clique.
	const nTier1 = 12
	for i := 0; i < nTier1; i++ {
		id := fmt.Sprintf("T1-%02d", i)
		g.addNode(id)
		g.tier1 = append(g.tier1, id)
	}
	for i := 0; i < nTier1; i++ {
		for j := i + 1; j < nTier1; j++ {
			g.AddEdge(g.tier1[i], g.tier1[j], Peer)
		}
	}

	// Regional transits.
	regional := map[geo.Subregion][]string{}
	for _, region := range geo.AllSubregions() {
		rs := s.Split("region/" + string(region))
		n := 2 + rs.Intn(2)
		for k := 0; k < n; k++ {
			id := fmt.Sprintf("RT-%s-%d", compactRegion(region), k)
			g.addNode(id)
			regional[region] = append(regional[region], id)
			// Customer of 2-4 tier-1s.
			for _, t := range pickDistinct(rs, g.tier1, 2+rs.Intn(3)) {
				g.AddEdge(id, t, Customer)
			}
		}
		// Regionals peer among themselves.
		rts := regional[region]
		for i := 0; i < len(rts); i++ {
			for j := i + 1; j < len(rts); j++ {
				g.AddEdge(rts[i], rts[j], Peer)
			}
		}
	}

	// Attach every org.
	for _, cc := range w.Countries() {
		m := w.Market(cc)
		region := m.Country.Subregion
		rts := regional[region]
		cs := s.Split("attach/" + cc)
		for _, e := range m.Entries {
			if e.Org.Home != cc {
				continue
			}
			id := e.Org.ID
			g.addNode(id)
			for _, rt := range pickDistinct(cs, rts, 1+cs.Intn(minInt(3, len(rts)))) {
				g.AddEdge(id, rt, Customer)
			}
			switch e.Org.Type {
			case orgs.ConvergedAccess, orgs.MobileCarrier, orgs.FixedAccess:
				// The biggest eyeballs multihome directly to a tier-1.
				if e.BaseWeight > 0.5 && cs.Bool(0.6) {
					g.AddEdge(id, g.tier1[cs.Intn(len(g.tier1))], Customer)
				}
			case orgs.CloudProvider, orgs.CDNProvider:
				// Clouds peer broadly across regions (their off-nets).
				allRegions := geo.AllSubregions()
				for k := 0; k < 4; k++ {
					r := allRegions[cs.Intn(len(allRegions))]
					if len(regional[r]) > 0 {
						g.AddEdge(id, regional[r][cs.Intn(len(regional[r]))], Peer)
					}
				}
			}
		}
	}
	sort.Strings(g.nodes)
	return g
}

func compactRegion(r geo.Subregion) string {
	out := make([]byte, 0, 8)
	for i := 0; i < len(r); i++ {
		c := r[i]
		if c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, 'X')
	}
	return string(out)
}

func pickDistinct(s *rng.Stream, from []string, n int) []string {
	if n >= len(from) {
		return append([]string(nil), from...)
	}
	perm := s.Perm(len(from))
	out := make([]string, 0, n)
	for _, i := range perm[:n] {
		out = append(out, from[i])
	}
	sort.Strings(out)
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
