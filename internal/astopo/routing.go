package astopo

// Gao-Rexford valley-free routing: a path may climb customer→provider
// links, cross at most one peer link, then descend provider→customer
// links. Shortest valley-free paths from one source to every destination
// are computed with a BFS over (node, phase) states.

// Routing phases.
const (
	phaseUp   = 0 // still climbing c2p links
	phasePeer = 1 // crossed the single allowed peer link
	phaseDown = 2 // descending p2c links
)

// pathState tracks BFS bookkeeping for one (node, phase).
type pathState struct {
	dist   int
	parent string // previous node
	pphase int    // previous phase
	seen   bool
}

// Paths holds shortest valley-free routes from one source.
type Paths struct {
	src    string
	states map[string]*[3]pathState
}

// PathsFrom computes shortest valley-free paths from src to every
// reachable node. Adjacency lists are sorted, so tie-breaking (and hence
// every returned path) is deterministic.
func (g *Graph) PathsFrom(src string) *Paths {
	p := &Paths{src: src, states: map[string]*[3]pathState{}}
	get := func(n string) *[3]pathState {
		st := p.states[n]
		if st == nil {
			st = &[3]pathState{}
			p.states[n] = st
		}
		return st
	}
	if _, ok := g.providers[src]; !ok {
		return p
	}

	type item struct {
		node  string
		phase int
	}
	start := get(src)
	start[phaseUp] = pathState{dist: 0, seen: true}
	queue := []item{{src, phaseUp}}

	push := func(n string, phase, dist int, parent string, pphase int) {
		st := get(n)
		if st[phase].seen {
			return
		}
		st[phase] = pathState{dist: dist, parent: parent, pphase: pphase, seen: true}
		queue = append(queue, item{n, phase})
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := get(cur.node)[cur.phase].dist
		switch cur.phase {
		case phaseUp:
			for _, prov := range g.providers[cur.node] {
				push(prov, phaseUp, d+1, cur.node, cur.phase)
			}
			for _, peer := range g.peers[cur.node] {
				push(peer, phasePeer, d+1, cur.node, cur.phase)
			}
			for _, cust := range g.customers[cur.node] {
				push(cust, phaseDown, d+1, cur.node, cur.phase)
			}
		case phasePeer, phaseDown:
			for _, cust := range g.customers[cur.node] {
				push(cust, phaseDown, d+1, cur.node, cur.phase)
			}
		}
	}
	return p
}

// To reconstructs the shortest valley-free path from the source to dst
// (inclusive of both endpoints). ok is false if dst is unreachable.
func (p *Paths) To(dst string) (path []string, ok bool) {
	st := p.states[dst]
	if st == nil {
		return nil, false
	}
	// Best phase: smallest distance; prefer the later phase on ties
	// (BGP prefers customer/peer routes — descending arrivals).
	best := -1
	for phase := 2; phase >= 0; phase-- {
		if !st[phase].seen {
			continue
		}
		if best == -1 || st[phase].dist < st[best].dist {
			best = phase
		}
	}
	if best == -1 {
		return nil, false
	}
	// Walk parents back to the source.
	var rev []string
	node, phase := dst, best
	for {
		rev = append(rev, node)
		if node == p.src && phase == phaseUp {
			break
		}
		s := p.states[node]
		if s == nil || !s[phase].seen {
			return nil, false
		}
		node, phase = s[phase].parent, s[phase].pphase
		if len(rev) > 64 {
			return nil, false // defensive: malformed state
		}
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// Dist returns the AS-hop distance to dst, or -1 if unreachable.
func (p *Paths) Dist(dst string) int {
	st := p.states[dst]
	if st == nil {
		return -1
	}
	best := -1
	for phase := 0; phase < 3; phase++ {
		if st[phase].seen && (best == -1 || st[phase].dist < best) {
			best = st[phase].dist
		}
	}
	return best
}
