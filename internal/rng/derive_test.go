package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// firstU64 draws the first value from a derived stream; taking the
// stream as a parameter makes it addressable for the pointer-receiver
// methods.
func firstU64(s Stream) uint64 { return s.Uint64() }

func TestDeriveReproducible(t *testing.T) {
	a := firstU64(New(9).Derive(1, 2, 3))
	b := firstU64(New(9).Derive(1, 2, 3))
	if a != b {
		t.Fatal("same (seed, keys) derivation not reproducible")
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	r1 := New(7)
	r1.Derive(1, 2, 3)
	r2 := New(7)
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("Derive advanced the parent stream")
	}
}

func TestDeriveDistinctTuples(t *testing.T) {
	root := New(3)
	a := firstU64(root.Derive(1, 2))
	b := firstU64(root.Derive(2, 1))
	c := firstU64(root.Derive(1, 3))
	if a == b || a == c || b == c {
		t.Fatal("derivations with distinct key tuples collided")
	}
}

// Tuples of different lengths — including prefix relationships like
// (1) vs (1, 0) — must land on distinct streams, or a generator adding a
// trailing time key would alias its own persistent channel.
func TestDeriveLengthMatters(t *testing.T) {
	root := New(5)
	seen := map[uint64]string{}
	cases := []struct {
		name string
		keys []uint64
	}{
		{"k1", []uint64{1}},
		{"k1,0", []uint64{1, 0}},
		{"k1,0,0", []uint64{1, 0, 0}},
		{"k0,1", []uint64{0, 1}},
		{"k0", []uint64{0}},
		{"empty", nil},
	}
	for _, c := range cases {
		v := firstU64(root.Derive(c.keys...))
		if prev, ok := seen[v]; ok {
			t.Fatalf("tuples %s and %s derived colliding streams", prev, c.name)
		}
		seen[v] = c.name
	}
}

// Mirror of TestSplitNDistinct: sweeping one key coordinate over a large
// range must not produce colliding streams.
func TestDeriveSweepDistinct(t *testing.T) {
	root := New(3)
	seen := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		v := firstU64(root.Derive(7, uint64(i)))
		if seen[v] {
			t.Fatalf("Derive collision at index %d", i)
		}
		seen[v] = true
	}
}

// Mirror of TestFloat64Mean, but across derived streams: the first
// Float64 drawn from each of n per-key derivations must look uniform on
// [0,1). This is the property the generators rely on — each (entity, day)
// tuple contributes one fresh draw, not a long run from one stream.
func TestDeriveFirstDrawUniform(t *testing.T) {
	root := New(13)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		s := root.Derive(uint64(i))
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("first-draw mean over derived streams = %v, want ~0.5", mean)
	}
}

// Mirror of TestNormMoments across derived streams: one normal deviate
// per (key) derivation should still have mean ~0 and variance ~1.
func TestDeriveFirstNormalMoments(t *testing.T) {
	root := New(19)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		s := root.Derive(2, uint64(i))
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean over derived streams = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance over derived streams = %v, want ~1", variance)
	}
}

// Bit-level balance: each of the 64 output bits of the first draw should
// be set about half the time across derivations.
func TestDeriveBitBalance(t *testing.T) {
	root := New(23)
	n := 20000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := firstU64(root.Derive(uint64(i), 9))
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-0.5) > 0.02 {
			t.Errorf("bit %d set fraction = %v, want ~0.5", b, frac)
		}
	}
}

// Derive and Split address disjoint stream families in practice: the
// derived stream for a tuple must differ from the labelled splits the
// generators also use off the hot path.
func TestDeriveSplitDisjoint(t *testing.T) {
	root := New(29)
	d := firstU64(root.Derive(1))
	s := root.Split("1").Uint64()
	if d == s {
		t.Fatal("Derive(1) collided with Split(\"1\")")
	}
}

func TestKeyStringDeterministicDistinct(t *testing.T) {
	if KeyString("US-FIX-01") != KeyString("US-FIX-01") {
		t.Fatal("KeyString not deterministic")
	}
	ids := []string{"", "US", "SU", "US-FIX-01", "US-FIX-02", "DE-MOB-01", "T1-TOR-00"}
	seen := map[uint64]string{}
	for _, id := range ids {
		k := KeyString(id)
		if prev, ok := seen[k]; ok {
			t.Fatalf("KeyString collision between %q and %q", prev, id)
		}
		seen[k] = id
	}
}

// Property: derivations with adjacent final keys never collide.
func TestQuickDeriveNoAdjacentCollision(t *testing.T) {
	root := New(31)
	f := func(k uint64) bool {
		return firstU64(root.Derive(5, k)) != firstU64(root.Derive(5, k+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The whole point of Derive is that the hot loops can mint per-tuple
// streams without touching the heap.
func TestDeriveAllocFree(t *testing.T) {
	root := New(37)
	sink := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		s := root.Derive(3, 12345, 678)
		sink += s.Float64()
	})
	if allocs != 0 {
		t.Fatalf("Derive allocated %v times per call, want 0", allocs)
	}
	_ = sink
}

func BenchmarkDerive(b *testing.B) {
	s := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		d := s.Derive(1, uint64(i), 42)
		acc ^= d.Uint64()
	}
	_ = acc
}

func BenchmarkSplitLabel(b *testing.B) {
	s := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= s.Split("chan/US/US-FIX-01").Uint64()
	}
	_ = acc
}
