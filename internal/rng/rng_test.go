package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("apnic")
	b := root.Split("cdn")
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams with different labels produced identical first value")
	}
	// Splitting must not advance the parent.
	r1 := New(7)
	r1.Split("x")
	r2 := New(7)
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(9).Split("label").Uint64()
	b := New(9).Split("label").Uint64()
	if a != b {
		t.Fatal("same (seed,label) split not reproducible")
	}
}

func TestSplitNDistinct(t *testing.T) {
	root := New(3)
	seen := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		v := root.SplitN("as", i).Uint64()
		if seen[v] {
			t.Fatalf("SplitN collision at index %d", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(13)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(19)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 5, 25, 100, 5000} {
		s := New(23)
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / float64(n)
		tol := 4 * math.Sqrt(lambda/float64(n)) // ~4 sigma of the sample mean
		if math.Abs(mean-lambda) > tol+0.5 {
			t.Errorf("Poisson(%v) sample mean = %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	s := New(29)
	for i := 0; i < 1000; i++ {
		if s.Poisson(1000) < 0 {
			t.Fatal("negative Poisson deviate")
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive lambda should be 0")
	}
}

func TestBinomialBounds(t *testing.T) {
	s := New(31)
	for i := 0; i < 2000; i++ {
		v := s.Binomial(1000, 0.01)
		if v < 0 || v > 1000 {
			t.Fatalf("Binomial out of bounds: %d", v)
		}
	}
	if s.Binomial(100, 0) != 0 {
		t.Fatal("Binomial(n, 0) != 0")
	}
	if s.Binomial(100, 1) != 100 {
		t.Fatal("Binomial(n, 1) != n")
	}
	if s.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0, p) != 0")
	}
}

func TestBinomialMean(t *testing.T) {
	s := New(37)
	var n int64 = 100000
	p := 0.01
	trials := 500
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(s.Binomial(n, p))
	}
	mean := sum / float64(trials)
	want := float64(n) * p
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("Binomial(%d,%v) mean = %v, want ~%v", n, p, mean, want)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(10, 1.0)
	if len(w) != 10 {
		t.Fatalf("len = %d", len(w))
	}
	if math.Abs(w[9]-1) > 1e-12 {
		t.Fatalf("last cumulative weight = %v, want 1", w[9])
	}
	for i := 1; i < len(w); i++ {
		if w[i] < w[i-1] {
			t.Fatal("cumulative weights not monotone")
		}
	}
	// Rank-1 mass must exceed rank-2 mass.
	if w[0] <= w[1]-w[0] {
		t.Fatal("Zipf mass not decreasing in rank")
	}
}

func TestCategoricalDistribution(t *testing.T) {
	cum := Cumulative([]float64{1, 2, 7})
	s := New(41)
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.Categorical(cum)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestCumulativeAllZero(t *testing.T) {
	if Cumulative([]float64{0, 0}) != nil {
		t.Fatal("Cumulative of zero weights should be nil")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(43)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestParetoTail(t *testing.T) {
	s := New(47)
	for i := 0; i < 10000; i++ {
		v := s.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto below xmin: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(53)
	for i := 0; i < 10000; i++ {
		if s.LogNormal(0, 1) <= 0 {
			t.Fatal("log-normal deviate not positive")
		}
	}
}

// Property: mix is a bijection-ish hash — distinct consecutive seeds never
// collide over a large sample (SplitMix64 guarantees a full-period bijection).
func TestQuickMixNoAdjacentCollision(t *testing.T) {
	f := func(seed uint64) bool {
		return mix(seed) != mix(seed+0x9e3779b97f4a7c15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Categorical always returns an index within range for any
// weight vector with at least one positive entry.
func TestQuickCategoricalInRange(t *testing.T) {
	f := func(seed uint64, raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			raw[i] = math.Abs(raw[i])
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 1
			}
		}
		raw[0] += 1 // ensure positive mass
		cum := Cumulative(raw)
		s := New(seed)
		for i := 0; i < 32; i++ {
			k := s.Categorical(cum)
			if k < 0 || k >= len(raw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Poisson(1e6)
	}
}
