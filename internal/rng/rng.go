// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every dataset generator in this repository.
//
// Reproducibility is a hard requirement: the paper's experiments are
// re-generated from synthetic data, and results must be byte-identical
// across runs and platforms. The generator is a SplitMix64 core with
// labelled sub-streams: a stream derived with Split("apnic") is
// statistically independent from one derived with Split("cdn"), yet both
// are fully determined by the root seed. This lets each measurement
// simulator observe the same ground-truth world through independent noise.
package rng

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded with 0; prefer New or Split for anything real.
type Stream struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Split derives an independent child stream from the parent's seed and a
// label. Splitting does not advance the parent. The same (parent seed,
// label) pair always yields the same child, which is what makes whole
// experiment pipelines reproducible module-by-module.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	// Mix the parent state in first so different parents produce
	// different children for the same label.
	var buf [8]byte
	st := s.state
	for i := 0; i < 8; i++ {
		buf[i] = byte(st >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return &Stream{state: mix(h.Sum64())}
}

// SplitN derives an independent child stream from the parent and an index.
// Useful when fanning out per-entity streams (one per AS, per day, ...).
func (s *Stream) SplitN(label string, n int) *Stream {
	c := s.Split(label)
	c.state = mix(c.state + uint64(n)*0x9e3779b97f4a7c15)
	return c
}

// golden is the SplitMix64 increment (2^64 / phi), also used to decorrelate
// integer derivation keys before mixing.
const golden = 0x9e3779b97f4a7c15

// Derive returns a child stream keyed by a tuple of integers. It is the
// allocation-free counterpart of Split for hot per-(entity, day) loops:
// callers precompute a uint64 key per entity (KeyString at construction
// time) and derive with (channel, entityKey..., dayNumber) tuples instead
// of formatting a label. Like Split, Derive never advances the parent, and
// the same (parent seed, key tuple) always yields the same child.
//
// The child is returned by value so the whole derivation stays on the
// stack; distinct tuples (including tuples of different lengths) yield
// statistically independent streams via double SplitMix64 finalization.
func (s *Stream) Derive(keys ...uint64) Stream {
	st := s.state
	for _, k := range keys {
		st = mix(st ^ mix(k+golden))
	}
	return Stream{state: st}
}

// KeyString hashes an identifier into a derivation key for Derive.
// Intended for construction time: hash each country code / org ID once,
// store the key, and the hot loops never touch strings again.
func KeyString(id string) uint64 {
	// FNV-1a, finalized with the SplitMix64 mixer so that short ASCII
	// identifiers are spread over the full 64-bit key space.
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return mix(h)
}

// mix is the SplitMix64 finalizer; it turns correlated inputs into
// well-distributed seeds.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling is overkill here;
	// modulo bias at 64 bits is negligible for simulation workloads.
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Range returns a uniform float64 in [lo, hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard normal deviate (Marsaglia polar method).
func (s *Stream) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Norm returns a normal deviate with the given mean and standard deviation.
func (s *Stream) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// LogNormal returns a log-normal deviate where the underlying normal has
// mean mu and standard deviation sigma.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// ExpFloat64 returns an exponential deviate with rate 1.
func (s *Stream) ExpFloat64() float64 {
	return -math.Log(1 - s.Float64())
}

// Pareto returns a Pareto(alpha) deviate with minimum xmin.
// Heavy-tailed: used for traffic-per-user and org-size distributions.
func (s *Stream) Pareto(xmin, alpha float64) float64 {
	return xmin / math.Pow(1-s.Float64(), 1/alpha)
}

// Poisson returns a Poisson(lambda) deviate. For small lambda it uses
// Knuth's product method; for large lambda a normal approximation, which
// is accurate enough for simulated impression counts in the millions.
func (s *Stream) Poisson(lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := int64(0)
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := s.Norm(lambda, math.Sqrt(lambda))
	if v < 0 {
		return 0
	}
	return int64(v + 0.5)
}

// Binomial returns a Binomial(n, p) deviate. Exact inversion for small n,
// normal approximation (with continuity correction) otherwise. Used to
// model "1% uniform sampling of requests" and ad-impression draws.
func (s *Stream) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 64 {
		var k int64
		for i := int64(0); i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	if sd < 1e-9 {
		return int64(mean + 0.5)
	}
	v := s.Norm(mean, sd)
	switch {
	case v < 0:
		return 0
	case v > float64(n):
		return n
	}
	return int64(v + 0.5)
}

// Zipf samples k in [0, n) with probability proportional to 1/(k+1)^alpha.
// It draws against precomputed cumulative weights supplied by ZipfWeights,
// so callers sampling repeatedly should cache the weights.
func ZipfWeights(n int, alpha float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), alpha)
		w[k] = sum
	}
	for k := range w {
		w[k] /= sum
	}
	return w
}

// Categorical samples an index from cumulative weights cum (non-decreasing,
// ending at 1.0), as produced by ZipfWeights or Cumulative.
func (s *Stream) Categorical(cum []float64) int {
	u := s.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Cumulative converts unnormalized non-negative weights into a cumulative
// distribution suitable for Categorical. It returns nil if all weights are
// zero.
func Cumulative(weights []float64) []float64 {
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		sum += w
		cum[i] = sum
	}
	if sum == 0 {
		return nil
	}
	for i := range cum {
		cum[i] /= sum
	}
	return cum
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
