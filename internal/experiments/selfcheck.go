package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/syncx"
)

// elasticityAnalysis fits the §5.1.1 log-log relationship on the Figure 6
// snapshot; shared by Figures 6, 7 and 11 and the artifact checks.
func elasticityAnalysis(l *Lab) core.ElasticityAnalysis {
	rep := l.Report(Figure6Day)
	users := rep.OrgUsersCached(l.W.Registry)
	samples := rep.OrgSamples(l.W.Registry)
	return core.AnalyzeElasticity(core.TopOrgPoints(users, samples, 1))
}

// Figure6 regenerates the log-log Samples vs User-Estimates analysis.
// Paper shape: elasticity β ≈ 0.9 (a 1% sample increase ⇒ ~0.9-0.97% user
// increase), with the above-CI outliers being the low-ad-reach countries
// (Russia, Turkmenistan, Eritrea, Madagascar, Sudan, Myanmar, Vanuatu).
func Figure6(l *Lab) *Result {
	an := elasticityAnalysis(l)

	expected := []string{"RU", "TM", "ER", "MG", "SD", "MM", "VU"}
	above := map[string]bool{}
	for _, cc := range an.AboveCI {
		above[cc] = true
	}
	hits := 0
	for _, cc := range expected {
		if above[cc] {
			hits++
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "log10(users) = %.3f + %.3f * log10(samples)   (R²=%.3f, n=%d)\n",
		an.Fit.Intercept, an.Fit.Beta, an.Fit.R2, an.Fit.Used)
	fmt.Fprintf(&b, "above 95%% CI: %s\n", strings.Join(an.AboveCI, " "))
	fmt.Fprintf(&b, "below 95%% CI: %s\n", strings.Join(an.BelowCI, " "))
	fmt.Fprintf(&b, "paper outliers recovered: %d / %d\n", hits, len(expected))

	return &Result{
		ID:    "Figure 6",
		Title: fmt.Sprintf("Samples vs User Estimates, top org per country (%s)", Figure6Day),
		Text:  b.String(),
		Metrics: map[string]float64{
			"beta":           an.Fit.Beta,
			"r2":             an.Fit.R2,
			"countries":      float64(an.Fit.Used),
			"n_above_ci":     float64(len(an.AboveCI)),
			"paper_outliers": float64(hits),
		},
		Paper: map[string]float64{
			"beta":           0.9,
			"paper_outliers": 7,
		},
	}
}

// Figure7 regenerates the fraction of 2024 days on which each country's
// users-to-samples ratio sits above the elasticity bound. Paper shape:
// ex-Soviet low-reach states pinned at ~1.0, the global majority at ~0,
// and some African countries in between with date-dependent dips.
func Figure7(l *Lab) *Result {
	an := elasticityAnalysis(l)
	days := dates.Range(dates.New(2024, 1, 3), dates.New(2024, 12, 25), 7)

	// Each day's row depends only on that day; rows land in their own
	// slice slot, so day-level parallelism preserves the result exactly.
	dayRows := make([]map[string]core.ElasticityPoint, len(days))
	syncx.ParallelEach(len(days), 0, func(i int) {
		d := days[i]
		row := map[string]core.ElasticityPoint{}
		for _, cc := range l.W.Countries() {
			s, u := l.APNIC.CountryTotals(cc, d)
			if s > 0 && u > 0 {
				row[cc] = core.ElasticityPoint{Country: cc, Samples: float64(s), Users: u}
			}
		}
		dayRows[i] = row
	})
	perDay := map[string]map[string]core.ElasticityPoint{}
	for i, d := range days {
		perDay[d.String()] = dayRows[i]
	}
	frac := an.DaysAboveFraction(perDay)

	ccs := make([]string, 0, len(frac))
	for cc := range frac {
		ccs = append(ccs, cc)
	}
	sort.Slice(ccs, func(i, j int) bool {
		if frac[ccs[i]] != frac[ccs[j]] {
			return frac[ccs[i]] > frac[ccs[j]]
		}
		return ccs[i] < ccs[j]
	})
	var rows [][]string
	alwaysAbove, neverAbove := 0, 0
	for _, cc := range ccs {
		if frac[cc] >= 0.9 {
			alwaysAbove++
		}
		if frac[cc] == 0 {
			neverAbove++
		}
		if frac[cc] > 0 {
			rows = append(rows, []string{cc, report.F(frac[cc], 2)})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "countries sampled weekly across 2024: %d; always above bound: %d; never: %d\n\n",
		len(ccs), alwaysAbove, neverAbove)
	b.WriteString(report.Table([]string{"Country", "Fraction of days above bound"}, rows))

	return &Result{
		ID:    "Figure 7",
		Title: "Fraction of 2024 days with User-to-Sample ratio above the CI",
		Text:  b.String(),
		Metrics: map[string]float64{
			"countries":    float64(len(ccs)),
			"always_above": float64(alwaysAbove),
			"never_above":  float64(neverAbove),
			"ru_frac":      frac["RU"],
			"tm_frac":      frac["TM"],
			"de_frac":      frac["DE"],
		},
		Paper: map[string]float64{
			"ru_frac": 1.0,
			"tm_frac": 1.0,
			"de_frac": 0.0,
		},
	}
}

// figure8Countries is the deterministic country subset used for the
// stability analysis (the full set would be slow in a unit-test context
// without changing any conclusion).
func figure8Countries(l *Lab) []string {
	all := l.W.Countries()
	var out []string
	for i, cc := range all {
		if i%2 == 0 {
			out = append(out, cc)
		}
	}
	return out
}

// stabilityDistances computes consecutive two-sample Kolmogorov–Smirnov
// distances per country at one granularity, optionally replacing each
// period's snapshot with the best day (minimum users-per-sample ratio)
// within the preceding window (§5.1.2's aggregation rule).
//
// The statistic follows the paper: the K-S distance between the
// *distributions of per-org user estimates* at t and t+1. This makes the
// measure sensitive to the country-wide ITU renormalization — a uniform
// rescale shifts every org's estimate and the K-S distance jumps by
// multiples of 1/n — which is precisely how the paper surfaces the
// ITU-driven instability of Figure 1.
func stabilityDistances(l *Lab, ccs []string, start dates.Date, periods, stepDays int, adjusted bool) []float64 {
	var out []float64
	for _, cc := range ccs {
		var snaps [][]float64
		for p := 0; p < periods; p++ {
			d := start.AddDays(p * stepDays)
			if adjusted {
				d = bestDayBefore(l, cc, d, 60)
			}
			sh := l.APNIC.CountryOrgShares(cc, d)
			if len(sh) == 0 {
				continue
			}
			_, itu := l.APNIC.CountryTotals(cc, d)
			vals := make([]float64, 0, len(sh))
			for _, s := range sh {
				vals = append(vals, s*itu)
			}
			snaps = append(snaps, vals)
		}
		for i := 1; i < len(snaps); i++ {
			d := stats.KSTwoSample(snaps[i-1], snaps[i])
			if !math.IsNaN(d) {
				out = append(out, d)
			}
		}
	}
	return out
}

// bestDayBefore applies the best-day rule: among every 5th day of the 60
// days ending at d, pick the one with the smallest users-per-sample
// ratio for the country.
func bestDayBefore(l *Lab, cc string, d dates.Date, window int) dates.Date {
	ratios := map[dates.Date]float64{}
	for off := 0; off < window; off += 5 {
		day := d.AddDays(-off)
		s, u := l.APNIC.CountryTotals(cc, day)
		if s > 0 {
			ratios[day] = core.ElasticityRatio(u, float64(s))
		}
	}
	if best, ok := core.BestDayDate(ratios); ok {
		return best
	}
	return d
}

// Figure8 regenerates the K-S stability CDFs across granularities, with
// and without the best-day adjustment. Paper shape: ~10% of consecutive
// days move some org by ≥0.2 of the country; coarser granularities move
// more; the elasticity-based best-day rule flattens every curve.
func Figure8(l *Lab) *Result {
	ccs := figure8Countries(l)
	type curve struct {
		label    string
		start    dates.Date
		periods  int
		stepDays int
		adjusted bool
		data     []float64
	}
	curves := []curve{
		{label: "days", start: dates.New(2024, 2, 1), periods: 20, stepDays: 1},
		{label: "days-adj", start: dates.New(2024, 2, 1), periods: 20, stepDays: 1, adjusted: true},
		{label: "weeks", start: dates.New(2024, 1, 1), periods: 16, stepDays: 7},
		{label: "weeks-adj", start: dates.New(2024, 1, 1), periods: 16, stepDays: 7, adjusted: true},
		{label: "months", start: dates.New(2023, 1, 15), periods: 14, stepDays: 30},
		{label: "months-adj", start: dates.New(2023, 1, 15), periods: 14, stepDays: 30, adjusted: true},
		{label: "years", start: dates.New(2015, 6, 1), periods: 10, stepDays: 365},
		{label: "years-adj", start: dates.New(2015, 6, 1), periods: 10, stepDays: 365, adjusted: true},
	}
	// The eight curves are independent pure computations over the shared
	// read-only generators; each writes only its own slot, so parallel
	// execution cannot change the result.
	syncx.ParallelEach(len(curves), 0, func(i int) {
		c := &curves[i]
		c.data = stabilityDistances(l, ccs, c.start, c.periods, c.stepDays, c.adjusted)
	})

	metrics := map[string]float64{}
	var rows [][]string
	var plotNames []string
	var plotCurves [][2][]float64
	for _, c := range curves {
		if len(c.data) == 0 {
			continue
		}
		p50 := stats.Quantile(c.data, 0.5)
		p90 := stats.Quantile(c.data, 0.9)
		over02 := 0.0
		for _, v := range c.data {
			if v > 0.2 {
				over02++
			}
		}
		fracOver := over02 / float64(len(c.data))
		rows = append(rows, []string{c.label, fmt.Sprintf("%d", len(c.data)), report.F(p50, 3), report.F(p90, 3), report.F(100*fracOver, 1) + "%"})
		metrics[c.label+"_p90"] = p90
		metrics[c.label+"_frac_over_02"] = fracOver
		if c.label == "days" || c.label == "months" || c.label == "months-adj" {
			xs, fs := stats.NewECDF(c.data).Points()
			plotNames = append(plotNames, c.label)
			plotCurves = append(plotCurves, [2][]float64{xs, fs})
		}
	}

	text := report.Table([]string{"Granularity", "N", "median", "p90", "share > 0.2"}, rows) +
		"\nCDF of K-S distances (cf. the paper's Figure 8):\n" +
		report.CDFPlot(plotNames, plotCurves, 60, 12)

	return &Result{
		ID:      "Figure 8",
		Title:   "K-S stability of per-country user distributions",
		Text:    text,
		Metrics: metrics,
		Paper: map[string]float64{
			// ~10% of (country, day) pairs exceed 0.2 at daily
			// granularity; the adjusted curves are much flatter.
			"days_frac_over_02": 0.10,
		},
	}
}
