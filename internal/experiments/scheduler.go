package experiments

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/obsv"
)

// RunRecord couples one runner's Result with its scheduling accounting.
// Result is deterministic in (seed, runner); Elapsed is wall time and
// varies run to run, which is why it lives here and not on Result.
type RunRecord struct {
	Runner  Runner
	Result  *Result
	Elapsed time.Duration
}

// RunAll executes runners against lab with at most parallelism workers
// and returns one record per runner in the order given (paper order),
// regardless of completion order. parallelism <= 0 means GOMAXPROCS.
//
// If emit is non-nil it is called once per record, in input order, as
// soon as that record and all earlier ones have completed — callers can
// stream output deterministically while later runners still execute.
//
// Results are byte-identical across parallelism levels: runners share
// nothing but the lab, whose day caches are singleflight and whose
// artifacts are pure functions of (seed, date). The scheduler itself
// never reorders, merges, or mutates results.
func RunAll(lab *Lab, runners []Runner, parallelism int, emit func(RunRecord)) []RunRecord {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(runners) {
		parallelism = len(runners)
	}
	recs := make([]RunRecord, len(runners))
	done := make([]chan struct{}, len(runners))
	for i := range done {
		done[i] = make(chan struct{})
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				res := runners[i].Run(lab)
				elapsed := time.Since(t0)
				recs[i] = RunRecord{Runner: runners[i], Result: res, Elapsed: elapsed}
				if lab != nil && lab.Metrics != nil {
					// Wall time is scheduling noise, not science, so it
					// lives in the metrics registry (one gauge per
					// runner) rather than on the deterministic Result.
					lab.Metrics.Gauge(obsv.Label("experiment_runner_seconds", "runner", runners[i].Name)).Set(elapsed.Seconds())
				}
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range runners {
			jobs <- i
		}
		close(jobs)
	}()

	for i := range runners {
		<-done[i]
		if emit != nil {
			emit(recs[i])
		}
	}
	wg.Wait()
	return recs
}

// TotalElapsed sums per-runner wall time — the serial cost of the sweep,
// for comparing against the observed parallel wall clock.
func TotalElapsed(recs []RunRecord) time.Duration {
	var total time.Duration
	for _, r := range recs {
		total += r.Elapsed
	}
	return total
}
