package experiments

import (
	"math"
	"sync"
	"testing"
)

// The lab is expensive enough to share across tests; runners must not
// mutate it beyond cache fills.
var (
	labOnce sync.Once
	lab     *Lab
)

func testLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() { lab = NewLab(42) })
	return lab
}

func metric(t *testing.T, r *Result, key string) float64 {
	t.Helper()
	v, ok := r.Metrics[key]
	if !ok {
		t.Fatalf("%s: missing metric %q (have %v)", r.ID, key, sortedMetricKeys(r.Metrics))
	}
	return v
}

func TestRunnersComplete(t *testing.T) {
	rs := Runners()
	if len(rs) != 21 {
		t.Fatalf("%d runners; every table and figure must be present", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.Name] {
			t.Fatalf("duplicate runner %s", r.Name)
		}
		seen[r.Name] = true
		if r.Run == nil || r.Desc == "" {
			t.Fatalf("runner %s incomplete", r.Name)
		}
	}
	if _, ok := RunnerByName("table2"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := RunnerByName("nope"); ok {
		t.Fatal("unknown runner should miss")
	}
}

func TestEveryRunnerProducesOutput(t *testing.T) {
	l := testLab(t)
	for _, r := range Runners() {
		res := r.Run(l)
		if res == nil || res.ID == "" || res.Title == "" || res.Text == "" {
			t.Fatalf("%s produced empty result", r.Name)
		}
		if len(res.Metrics) == 0 {
			t.Fatalf("%s produced no metrics", r.Name)
		}
		for k, v := range res.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s metric %s = %v", r.Name, k, v)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	res := Table2(testLab(t))
	if metric(t, res, "top5_in_cn") != 5 {
		t.Error("top-5 should all be Indian or Chinese ASes")
	}
	if v := metric(t, res, "top1_users_M"); v < 100 || v > 600 {
		t.Errorf("top AS has %vM users; want hundreds of millions", v)
	}
}

func TestFigure1Shape(t *testing.T) {
	res := Figure1(testLab(t))
	if metric(t, res, "orgs_plotted") != 5 {
		t.Error("should plot 5 ISPs")
	}
	// Some ITU-driven divergence between users and samples must exist.
	if metric(t, res, "max_user_jump_pct") < 3 {
		t.Error("no visible ITU instability event")
	}
}

func TestFigure2Shape(t *testing.T) {
	res := Figure2(testLab(t))
	if v := metric(t, res, "global_r2"); v < 0.5 || v > 0.95 {
		t.Errorf("global R² = %v; paper reports 0.72 (strong but imperfect)", v)
	}
	if metric(t, res, "countries") != 20 {
		t.Error("survey must cover 20 countries")
	}
	if metric(t, res, "mobile_overrep") < 3 {
		t.Error("mobile-heavy carriers should be visibly overrepresented")
	}
}

func TestFigure3Shape(t *testing.T) {
	res := Figure3(testLab(t))
	// The paper's central §4.2 finding: a modest pair overlap carries
	// almost all of every weighting.
	if v := metric(t, res, "pair_overlap_pct"); v < 25 || v > 70 {
		t.Errorf("pair overlap = %v%%; paper ≈ 40%%", v)
	}
	for _, k := range []string{"users_cov_pct", "ua_cov_pct", "vol_cov_pct"} {
		if v := metric(t, res, k); v < 90 {
			t.Errorf("%s = %v%%; the common pairs must carry ≥90%%", k, v)
		}
	}
	if metric(t, res, "cdn_only") < 100 {
		t.Error("the CDN must see a long tail APNIC misses")
	}
	if metric(t, res, "apnic_only") < 1 {
		t.Error("some APNIC-only pairs should exist (censored-country networks)")
	}
}

func TestTable3Shape(t *testing.T) {
	res := Table3(testLab(t))
	if v := metric(t, res, "pct_above_90"); v < 80 {
		t.Errorf("only %v%% of countries above 90%% coverage; paper: nearly all", v)
	}
	if v := metric(t, res, "median_pct"); v < 95 {
		t.Errorf("median coverage = %v%%; paper ≈ 99.8%%", v)
	}
}

func TestFigure4Shape(t *testing.T) {
	res := Figure4(testLab(t))
	uaP := metric(t, res, "ua_principal_pct")
	volP := metric(t, res, "vol_principal_pct")
	uaR := metric(t, res, "ua_rank_pct")
	volR := metric(t, res, "vol_rank_pct")
	uaC := metric(t, res, "ua_complete_pct")
	volC := metric(t, res, "vol_complete_pct")

	// Principal-org agreement is high for both metrics (paper: 93.9 and
	// 91.0) and always the easiest level.
	if uaP < 80 || volP < 80 {
		t.Errorf("principal agreement too low: ua=%v vol=%v", uaP, volP)
	}
	if uaR > uaP || volR > volP {
		t.Error("rank agreement cannot exceed principal agreement here")
	}
	// User-Agent agreement beats traffic-volume agreement (the paper's
	// key ordering: APNIC measures users better than traffic).
	if uaR <= volR || uaC <= volC {
		t.Errorf("UA agreement (%v/%v) should exceed volume agreement (%v/%v)", uaR, uaC, volR, volC)
	}
}

func TestFigure5Shape(t *testing.T) {
	res := Figure5(testLab(t))
	// Russia: scrambled (the paper's upper-left cloud).
	if v := metric(t, res, "ru_pearson"); v > 0.6 {
		t.Errorf("Russia Pearson = %v; should be scrambled", v)
	}
	// Norway and India: CDN sees much less than APNIC implies (slope ≪ 1).
	if v := metric(t, res, "no_slope"); v > 0.7 {
		t.Errorf("Norway slope = %v; VPN should drag it down", v)
	}
	if v := metric(t, res, "in_slope"); v > 0.7 {
		t.Errorf("India slope = %v; cloud traffic should drag it down", v)
	}
	// Myanmar: slope near 1 (the disagreement is noise, not scale).
	if v := metric(t, res, "mm_slope"); v < 0.5 || v > 1.5 {
		t.Errorf("Myanmar slope = %v; paper ≈ 0.98", v)
	}
}

func TestFigure6Shape(t *testing.T) {
	res := Figure6(testLab(t))
	if v := metric(t, res, "beta"); v < 0.7 || v > 1.05 {
		t.Errorf("elasticity β = %v; paper ≈ 0.9", v)
	}
	if v := metric(t, res, "paper_outliers"); v < 4 {
		t.Errorf("only %v of the paper's outlier countries recovered", v)
	}
	if v := metric(t, res, "n_above_ci"); v > 15 {
		t.Errorf("%v countries above CI; should be a small set", v)
	}
}

func TestFigure7Shape(t *testing.T) {
	res := Figure7(testLab(t))
	if v := metric(t, res, "ru_frac"); v < 0.9 {
		t.Errorf("Russia above-bound fraction = %v; paper: pinned at 1", v)
	}
	if v := metric(t, res, "tm_frac"); v < 0.9 {
		t.Errorf("Turkmenistan above-bound fraction = %v", v)
	}
	if v := metric(t, res, "de_frac"); v > 0.05 {
		t.Errorf("Germany above-bound fraction = %v; should be ~0", v)
	}
	if v := metric(t, res, "never_above"); v < metric(t, res, "countries")/2 {
		t.Error("the majority of countries should never exceed the bound")
	}
}

func TestFigure8Shape(t *testing.T) {
	res := Figure8(testLab(t))
	daily := metric(t, res, "days_frac_over_02")
	if daily < 0.03 || daily > 0.25 {
		t.Errorf("daily K-S > 0.2 fraction = %v; paper ≈ 0.10", daily)
	}
	// Coarser granularity → larger distances.
	if metric(t, res, "months_p90") < metric(t, res, "days_p90") {
		t.Error("monthly distances should exceed daily")
	}
	// The best-day rule stabilizes the weekly and monthly curves.
	if metric(t, res, "weeks-adj_p90") >= metric(t, res, "weeks_p90") {
		t.Error("adjusted weekly curve should be flatter")
	}
	if metric(t, res, "months-adj_p90") >= metric(t, res, "months_p90") {
		t.Error("adjusted monthly curve should be flatter")
	}
}

func TestFigure9Shape(t *testing.T) {
	res := Figure9(testLab(t))
	if v := metric(t, res, "trend_pearson"); v < 0.5 {
		t.Errorf("M-Lab→CDN agreement trend = %v; should be clearly increasing", v)
	}
	if metric(t, res, "countries") < 50 {
		t.Error("too few countries with both datasets")
	}
}

func TestFigure10Shape(t *testing.T) {
	res := Figure10(testLab(t))
	// Adding IXP data must help, most visibly in IXP-dense Europe.
	if v := metric(t, res, "europe_gain"); v <= 0 {
		t.Errorf("Europe MIC gain = %v; should be positive", v)
	}
	if v := metric(t, res, "asia_gain"); v < -0.02 {
		t.Errorf("Asia MIC gain = %v; should not be clearly negative", v)
	}
}

func TestFigure11Shape(t *testing.T) {
	res := Figure11(testLab(t))
	// §6's regional story.
	if v := metric(t, res, "south_america"); v < 20 {
		t.Errorf("South America change = %v%%; should increase massively", v)
	}
	if v := metric(t, res, "southern_asia"); v > -10 {
		t.Errorf("Southern Asia change = %v%%; should decrease drastically", v)
	}
	if v := metric(t, res, "western_europe"); v > 0 {
		t.Errorf("Western Europe change = %v%%; should decline", v)
	}
	if v := metric(t, res, "africa_middle_west"); v > 0 {
		t.Errorf("Africa change = %v%%; should decline", v)
	}
}

func TestFigure12Shape(t *testing.T) {
	res := Figure12(testLab(t))
	if v := metric(t, res, "pct_below_1"); v < 70 {
		t.Errorf("only %v%% of pairs stable below 1%%; paper > 93%%", v)
	}
	if v := metric(t, res, "pct_at_least_5"); v > 5 {
		t.Errorf("%v%% of pairs above 5%%; paper ≈ 0.8%%", v)
	}
}

func TestTable6Shape(t *testing.T) {
	res := Table6(testLab(t))
	if v := metric(t, res, "caribbean_alloc"); v <= 0 {
		t.Errorf("Caribbean allocation change = %v; should grow", v)
	}
	if v := metric(t, res, "northern_america_alloc"); v >= 0 {
		t.Errorf("Northern America allocation change = %v; should shrink", v)
	}
	if metric(t, res, "eastern_asia_adv") <= metric(t, res, "eastern_asia_alloc") {
		t.Error("Eastern Asia advertises faster than it allocates")
	}
}

func TestFigure13Shape(t *testing.T) {
	res := Figure13(testLab(t))
	if v := metric(t, res, "r2"); v < 0.25 || v > 0.75 {
		t.Errorf("IXP↔PNI R² = %v; paper ≈ 0.47 (loose mid-range)", v)
	}
	if metric(t, res, "slope") <= 0 {
		t.Error("IXP↔PNI slope must be positive")
	}
}

func TestLabCaching(t *testing.T) {
	l := testLab(t)
	r1 := l.Report(PrimaryCDNDay)
	r2 := l.Report(PrimaryCDNDay)
	if r1 != r2 {
		t.Error("reports not cached")
	}
	s1 := l.Snapshot(PrimaryCDNDay)
	s2 := l.Snapshot(PrimaryCDNDay)
	if s1 != s2 {
		t.Error("snapshots not cached")
	}
}

func TestDeterministicAcrossLabs(t *testing.T) {
	a := NewLab(7)
	b := NewLab(7)
	ra := Figure3(a)
	rb := Figure3(b)
	for k, v := range ra.Metrics {
		if rb.Metrics[k] != v {
			t.Errorf("metric %s differs across same-seed labs: %v vs %v", k, v, rb.Metrics[k])
		}
	}
}

func TestExtDriversShape(t *testing.T) {
	res := ExtDrivers(testLab(t))
	// India consolidates: its top gainer gains substantially.
	if v := metric(t, res, "in_top_gain_pp"); v < 2 {
		t.Errorf("India top gainer +%vpp; should be substantial", v)
	}
	// Switzerland's merger: the absorbed org is the biggest loser.
	if v := metric(t, res, "ch_top_loss_pp"); v > -2 {
		t.Errorf("Switzerland top loss %vpp; the merger victim should lose its whole share", v)
	}
}

func TestExtTrafficModelShape(t *testing.T) {
	res := ExtTrafficModel(testLab(t))
	in := metric(t, res, "in_sample_r2")
	out := metric(t, res, "out_sample_r2")
	if in < 0.4 {
		t.Errorf("in-sample R² = %v; blend should fit well", in)
	}
	if out < 0.3 {
		t.Errorf("out-of-sample R² = %v; blend should generalize", out)
	}
	if out > in+0.05 {
		t.Errorf("out-of-sample R² (%v) implausibly above in-sample (%v)", out, in)
	}
}

func TestExtProxiesShape(t *testing.T) {
	res := ExtProxies(testLab(t))
	apnicCorr := metric(t, res, "apnic_users_spearman")
	dnsCorr := metric(t, res, "dns_queries_spearman")
	ixpCorr := metric(t, res, "ixp_capacity_spearman")
	pathCorr := metric(t, res, "path_popularity_spearman")

	// APNIC is the best magnitude proxy among public sources — the
	// paper's bottom line.
	if apnicCorr <= dnsCorr || apnicCorr <= ixpCorr || apnicCorr <= pathCorr {
		t.Errorf("APNIC Spearman %v should lead (dns=%v ixp=%v path=%v)",
			apnicCorr, dnsCorr, ixpCorr, pathCorr)
	}
	// DNS detects presence almost everywhere — far beyond APNIC's
	// sample-floor-limited coverage.
	if metric(t, res, "dns_queries_coverage") <= 2*metric(t, res, "apnic_users_coverage") {
		t.Error("DNS pair coverage should dwarf APNIC's")
	}
	// The traceroute campaign ran with measurement error.
	if metric(t, res, "lost_hops") <= 0 {
		t.Error("no hop loss recorded")
	}
}

func TestRunnerByNameTable(t *testing.T) {
	cases := []struct {
		query string
		want  string // canonical name; "" means not found
	}{
		{"Table2", "Table2"},
		{"table2", "Table2"},
		{"TABLE2", "Table2"},
		{"tAbLe2", "Table2"},
		{"Figure13", "Figure13"},
		{"extproxies", "ExtProxies"},
		{"EXTTRAFFICMODEL", "ExtTrafficModel"},
		{"Table", ""},   // prefix is not a match
		{"Table22", ""}, // superstring is not a match
		{"nope", ""},
		{"", ""},
		{" Table2", ""}, // caller is responsible for trimming
	}
	for _, tc := range cases {
		r, ok := RunnerByName(tc.query)
		if tc.want == "" {
			if ok {
				t.Errorf("RunnerByName(%q) unexpectedly found %s", tc.query, r.Name)
			}
			continue
		}
		if !ok {
			t.Errorf("RunnerByName(%q) not found, want %s", tc.query, tc.want)
			continue
		}
		if r.Name != tc.want {
			t.Errorf("RunnerByName(%q) = %s, want %s", tc.query, r.Name, tc.want)
		}
		if r.Run == nil || r.Desc == "" {
			t.Errorf("RunnerByName(%q) returned an incomplete runner", tc.query)
		}
	}
}

func TestSortedMetricKeysTable(t *testing.T) {
	cases := []struct {
		name string
		in   map[string]float64
		want []string
	}{
		{"nil", nil, []string{}},
		{"empty", map[string]float64{}, []string{}},
		{"single", map[string]float64{"a": 1}, []string{"a"}},
		{"reversed", map[string]float64{"c": 3, "b": 2, "a": 1}, []string{"a", "b", "c"}},
		{"mixed_case", map[string]float64{"B": 1, "a": 2, "A": 3}, []string{"A", "B", "a"}},
		{"underscores", map[string]float64{"x_2": 0, "x_10": 0, "x_1": 0}, []string{"x_1", "x_10", "x_2"}},
	}
	for _, tc := range cases {
		got := sortedMetricKeys(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("%s: sortedMetricKeys = %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: sortedMetricKeys = %v, want %v", tc.name, got, tc.want)
				break
			}
		}
		// Stable across calls: re-run and compare.
		again := sortedMetricKeys(tc.in)
		for i := range got {
			if got[i] != again[i] {
				t.Errorf("%s: ordering unstable across calls: %v then %v", tc.name, got, again)
				break
			}
		}
	}
}
