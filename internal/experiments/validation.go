package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/orgs"
	"repro/internal/report"
	"repro/internal/stats"
)

// Figure2 compares the Broadband Subscriber dataset against APNIC user
// percentages across the survey countries (§4.1). Paper shape: global
// R² ≈ 0.72 against the 1:1 line, strong agreement for most countries,
// negative R² for a handful (Russia, Brazil, Korea, Japan, Poland in the
// paper's table), and mobile-heavy carriers overrepresented in APNIC.
func Figure2(l *Lab) *Result {
	bb := l.BroadbandData(BroadbandDay)
	rep := l.Report(BroadbandDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)

	var allX, allY []float64
	type ccRow struct {
		cc       string
		coverage float64 // % of APNIC country users covered by surveyed orgs
		r2       float64
	}
	var ccRows []ccRow
	mobileOverrep := 0

	for _, cc := range bb.Countries() {
		survey := bb.Shares[cc]
		apnicCountry := orgs.CountryShares(apnicUsers, cc)

		// Renormalize APNIC over the surveyed orgs (§4.1). Sorted-order
		// iteration keeps the float sums (and the R² fits below, whose
		// input order these loops set) bit-reproducible across runs.
		var apnicTotal, surveyedTotal float64
		for _, id := range sortedMetricKeys(apnicCountry) {
			v := apnicCountry[id]
			apnicTotal += v
			if _, ok := survey[id]; ok {
				surveyedTotal += v
			}
		}
		if apnicTotal == 0 || surveyedTotal == 0 {
			continue
		}
		var xs, ys []float64
		for _, id := range sortedMetricKeys(survey) {
			sv := survey[id]
			av := apnicCountry[id] / surveyedTotal
			xs = append(xs, 100*sv)
			ys = append(ys, 100*av)
			allX = append(allX, 100*sv)
			allY = append(allY, 100*av)
			// A mobile-heavy org overrepresented in APNIC?
			e := l.W.Entry(cc, id)
			if e != nil && e.MobileShare > 0.4 && av > sv*1.3 && av-sv > 0.03 {
				mobileOverrep++
			}
		}
		ccRows = append(ccRows, ccRow{
			cc:       cc,
			coverage: 100 * surveyedTotal / apnicTotal,
			r2:       stats.R2Identity(xs, ys),
		})
	}
	sort.Slice(ccRows, func(i, j int) bool { return ccRows[i].coverage < ccRows[j].coverage })

	globalR2 := stats.R2Identity(allX, allY)
	negR2 := 0
	rows := make([][]string, 0, len(ccRows))
	for _, r := range ccRows {
		if r.r2 < 0 {
			negR2++
		}
		rows = append(rows, []string{r.cc, report.Pct(r.coverage), report.F(r.r2, 2)})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Global R² vs the 1:1 line over %d (country, org) points: %.2f\n", len(allX), globalR2)
	fmt.Fprintf(&b, "Mobile-heavy orgs overrepresented in APNIC: %d\n\n", mobileOverrep)
	b.WriteString(report.Table([]string{"Country", "% APNIC users in surveyed orgs", "R² vs 1:1"}, rows))

	return &Result{
		ID:    "Figure 2",
		Title: "Broadband Subscriber vs (renormalized) APNIC user percentages",
		Text:  b.String(),
		Metrics: map[string]float64{
			"global_r2":      globalR2,
			"countries":      float64(len(ccRows)),
			"negative_r2":    float64(negR2),
			"mobile_overrep": float64(mobileOverrep),
			"points":         float64(len(allX)),
		},
		Paper: map[string]float64{
			"global_r2":   0.72,
			"countries":   20,
			"negative_r2": 5,
		},
	}
}

// Figure3 regenerates the overlap bars of §4.2: raw (country, org) pair
// counts per dataset, then the weighted coverage of the common pairs by
// APNIC user estimates, CDN User-Agents and CDN traffic volume.
// Paper shape: ~40% of pairs are common, yet those pairs carry ≥96% of
// every weighting.
func Figure3(l *Lab) *Result {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)

	apnicUsers := rep.OrgUsersCached(l.W.Registry)
	uas := snap.UserAgents()
	vols := snap.Volumes()

	usersOv := core.ComputeOverlap(apnicUsers, uas)
	volOv := core.ComputeOverlap(apnicUsers, vols)

	totalCDN := usersOv.Both + usersOv.BOnly
	pairPct := 0.0
	if totalCDN > 0 {
		pairPct = 100 * float64(usersOv.Both) / float64(totalCDN)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "(country, org) pairs: both=%d  cdn-only=%d  apnic-only=%d  (overlap = %.1f%% of CDN pairs)\n\n",
		usersOv.Both, usersOv.BOnly, usersOv.AOnly, pairPct)
	b.WriteString(report.Bar("APNIC users on common pairs", usersOv.BothPctA, 100, 40))
	b.WriteString(report.Bar("CDN User-Agents on common", usersOv.BothPctB, 100, 40))
	b.WriteString(report.Bar("CDN traffic vol on common", volOv.BothPctB, 100, 40))

	return &Result{
		ID:    "Figure 3",
		Title: "Overlap of (country, org) pairs, raw and weighted",
		Text:  b.String(),
		Metrics: map[string]float64{
			"pair_overlap_pct": pairPct,
			"users_cov_pct":    usersOv.BothPctA,
			"ua_cov_pct":       usersOv.BothPctB,
			"vol_cov_pct":      volOv.BothPctB,
			"apnic_only":       float64(usersOv.AOnly),
			"cdn_only":         float64(usersOv.BOnly),
		},
		Paper: map[string]float64{
			"pair_overlap_pct": 40,
			"users_cov_pct":    96.01,
			"ua_cov_pct":       98.65,
			"vol_cov_pct":      96.4,
		},
	}
}

// Table3 regenerates the per-country traffic coverage of the overlapping
// pairs (§4.2, Tables 3 and 5): within each country, what share of CDN
// traffic volume lands on pairs APNIC also sees. Paper shape: the vast
// majority of countries exceed 95%, only a handful fall below 90%.
func Table3(l *Lab) *Result {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)
	cov := core.PerCountryCoverage(apnicUsers, snap.Volumes())

	var nonzero []core.CountryCoverage
	zeros := 0
	above90, above95 := 0, 0
	for _, c := range cov {
		if c.Pct == 0 {
			zeros++
			continue
		}
		nonzero = append(nonzero, c)
		if c.Pct >= 90 {
			above90++
		}
		if c.Pct >= 95 {
			above95++
		}
	}
	var rows [][]string
	top := 20
	if len(nonzero) < top {
		top = len(nonzero)
	}
	for i := 0; i < top; i++ {
		rows = append(rows, []string{fmt.Sprintf("%d", i+1), nonzero[i].Country, report.F(nonzero[i].Pct, 2)})
	}
	rows = append(rows, []string{"...", "...", "..."})
	for i := len(nonzero) - top; i < len(nonzero); i++ {
		if i < top {
			continue
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i+1), nonzero[i].Country, report.F(nonzero[i].Pct, 2)})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "countries with data: %d (plus %d with 0%%); >=90%%: %d; >=95%%: %d\n\n", len(nonzero), zeros, above90, above95)
	b.WriteString(report.Table([]string{"Count", "Country", "% Vol"}, rows))

	fra90 := 0.0
	if len(nonzero) > 0 {
		fra90 = 100 * float64(above90) / float64(len(nonzero))
	}
	return &Result{
		ID:    "Table 3 / Table 5",
		Title: "Per-country CDN traffic volume on overlapping pairs",
		Text:  b.String(),
		Metrics: map[string]float64{
			"countries":    float64(len(nonzero)),
			"pct_above_90": fra90,
			"median_pct":   medianCoverage(nonzero),
		},
		Paper: map[string]float64{
			// "only 5 have less than 90%" out of 234 with data.
			"pct_above_90": 97.9,
			"median_pct":   99.8,
		},
	}
}

func medianCoverage(cov []core.CountryCoverage) float64 {
	if len(cov) == 0 {
		return math.NaN()
	}
	vals := make([]float64, len(cov))
	for i, c := range cov {
		vals[i] = c.Pct
	}
	return stats.Median(vals)
}

// figure4Sides computes the per-country agreement for one CDN metric.
func figure4Side(l *Lab, metric string) (map[string]core.Agreement, map[string]bool) {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)

	agreements := map[string]core.Agreement{}
	principal := map[string]bool{}
	for _, cc := range snap.Countries() {
		apnicShares := orgs.CountryShares(apnicUsers, cc)
		var other map[string]float64
		if metric == "ua" {
			other = snap.UAShares(cc)
		} else {
			other = snap.VolumeShares(cc)
		}
		if len(apnicShares) == 0 {
			continue // no APNIC data at all: No Information
		}
		agreements[cc] = core.CompareShares(apnicShares, other)
		principal[cc] = core.PrincipalOrgMatch(apnicShares, other)
	}
	return agreements, principal
}

// Figure4 regenerates the agreement analysis of §4.3 for both CDN
// metrics. Paper shape: User-Agents — principal 93.9%, rank 54.2%,
// complete 51.2%; traffic volume — 91.0 / 40.5 / 36.5; UA agreement
// beats volume agreement on every count.
func Figure4(l *Lab) *Result {
	uaAgr, uaMatch := figure4Side(l, "ua")
	volAgr, volMatch := figure4Side(l, "vol")
	ua := core.Summarize(uaAgr, uaMatch)
	vol := core.Summarize(volAgr, volMatch)

	rows := [][]string{
		{"User-Agents", report.Pct(ua.PrincipalPct), report.Pct(ua.RankPct), report.Pct(ua.CompletePct), fmt.Sprintf("%d", ua.Countries)},
		{"Traffic volume", report.Pct(vol.PrincipalPct), report.Pct(vol.RankPct), report.Pct(vol.CompletePct), fmt.Sprintf("%d", vol.Countries)},
	}

	// The paper's named outliers for the UA comparison.
	var noAgreement []string
	for cc, a := range uaAgr {
		if a.Level == core.NoAgreement {
			noAgreement = append(noAgreement, cc)
		}
	}
	sort.Strings(noAgreement)

	var b strings.Builder
	b.WriteString(report.Table([]string{"Metric", "Principal org", "Rank", "Complete", "Countries"}, rows))
	fmt.Fprintf(&b, "\nNo-agreement countries (User-Agents): %s\n", strings.Join(noAgreement, " "))

	return &Result{
		ID:    "Figure 4",
		Title: "Agreement between APNIC user estimates and CDN metrics",
		Text:  b.String(),
		Metrics: map[string]float64{
			"ua_principal_pct":  ua.PrincipalPct,
			"ua_rank_pct":       ua.RankPct,
			"ua_complete_pct":   ua.CompletePct,
			"vol_principal_pct": vol.PrincipalPct,
			"vol_rank_pct":      vol.RankPct,
			"vol_complete_pct":  vol.CompletePct,
			"countries":         float64(ua.Countries),
			"ua_no_agreement":   float64(len(noAgreement)),
		},
		Paper: map[string]float64{
			"ua_principal_pct":  93.9,
			"ua_rank_pct":       54.2,
			"ua_complete_pct":   51.2,
			"vol_principal_pct": 91.0,
			"vol_rank_pct":      40.5,
			"vol_complete_pct":  36.5,
		},
	}
}

// Figure5 zooms into the paper's four outlier countries: Russia and
// Norway against User-Agents, India and Myanmar against traffic volume,
// reporting the per-country regression slope (the ρ annotations).
// Paper shape: Norway ρ≈0.29 (the VPN org drags the fit), India ρ≈0.39
// (cloud traffic invisible to APNIC), Myanmar ρ≈0.98 but noisy, Russia a
// scrambled cloud.
func Figure5(l *Lab) *Result {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)

	slope := func(cc, metric string) (float64, float64) {
		apnicShares := orgs.CountryShares(apnicUsers, cc)
		var other map[string]float64
		if metric == "ua" {
			other = snap.UAShares(cc)
		} else {
			other = snap.VolumeShares(cc)
		}
		a, b, _ := stats.AlignShares(apnicShares, other)
		a = stats.Normalize(a)
		b = stats.Normalize(b)
		fit := stats.LinearRegression(a, b)
		return fit.Slope, stats.Pearson(a, b)
	}

	ruSlope, ruP := slope("RU", "ua")
	noSlope, noP := slope("NO", "ua")
	inSlope, inP := slope("IN", "vol")
	mmSlope, mmP := slope("MM", "vol")

	rows := [][]string{
		{"RU", "User-Agents", report.F(ruSlope, 2), report.F(ruP, 2)},
		{"NO", "User-Agents", report.F(noSlope, 2), report.F(noP, 2)},
		{"IN", "Traffic volume", report.F(inSlope, 2), report.F(inP, 2)},
		{"MM", "Traffic volume", report.F(mmSlope, 2), report.F(mmP, 2)},
	}
	return &Result{
		ID:    "Figure 5",
		Title: "Outlier (country, org) regressions",
		Text:  report.Table([]string{"Country", "CDN metric", "Slope (rho)", "Pearson"}, rows),
		Metrics: map[string]float64{
			"ru_slope": ruSlope, "ru_pearson": ruP,
			"no_slope": noSlope, "no_pearson": noP,
			"in_slope": inSlope, "in_pearson": inP,
			"mm_slope": mmSlope, "mm_pearson": mmP,
		},
		Paper: map[string]float64{
			"no_slope": 0.29,
			"in_slope": 0.39,
			"mm_slope": 0.98,
		},
	}
}
