package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenResults is a tiny fixed result set exercising every formatting
// path: metrics with and without paper counterparts, multi-line text,
// and an empty metric map.
func goldenResults() []*Result {
	return []*Result{
		{
			ID:    "Table 9",
			Title: "A synthetic table",
			Text:  "col_a col_b\n1     2\n",
			Metrics: map[string]float64{
				"zeta":  0.125,
				"alpha": 42,
				"beta":  -3.5,
			},
			Paper: map[string]float64{"alpha": 40, "beta": -3},
		},
		{
			ID:      "Figure 99",
			Title:   "A figure with no metrics",
			Text:    "ascii art here\n",
			Metrics: map[string]float64{},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -run Golden -args -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteMarkdownGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, 42, goldenResults()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "markdown_golden.md", buf.Bytes())
}

func TestWriteConsoleGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, res := range goldenResults() {
		WriteConsole(&buf, res)
	}
	checkGolden(t, "console_golden.txt", buf.Bytes())
}

// TestWriteMarkdownStable guards the byte-identical guarantee directly:
// two renderings of the same results must match exactly (map ordering is
// the usual way this breaks).
func TestWriteMarkdownStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteMarkdown(&a, 7, goldenResults()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMarkdown(&b, 7, goldenResults()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteMarkdown is not deterministic for identical inputs")
	}
}
