package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestLabMetrics checks the day caches report requests, generations, and
// hit gauges through the lab registry, and that RunAll records per-runner
// wall time there.
func TestLabMetrics(t *testing.T) {
	l := NewLab(7)
	d := PrimaryCDNDay
	l.Report(d)
	l.Report(d)
	l.Snapshot(d)

	if got := l.Metrics.Counter(`source_requests_total{dataset="apnic"}`).Value(); got != 2 {
		t.Errorf("report requests = %d, want 2", got)
	}
	if got := l.Metrics.Counter(`source_generations_total{dataset="apnic"}`).Value(); got != 1 {
		t.Errorf("report generations = %d, want 1", got)
	}
	if a, c := l.CacheStats(); a != 1 || c != 1 {
		t.Errorf("CacheStats = %d, %d, want 1, 1", a, c)
	}

	recs := RunAll(l, []Runner{{
		Name: "Synthetic",
		Desc: "sleeps a tick",
		Run: func(*Lab) *Result {
			time.Sleep(2 * time.Millisecond)
			return &Result{ID: "Synthetic"}
		},
	}}, 1, nil)
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if got := l.Metrics.Gauge(`experiment_runner_seconds{runner="Synthetic"}`).Value(); got < 0.002 {
		t.Errorf("runner wall-time gauge = %v, want >= 2ms", got)
	}

	var b strings.Builder
	if err := l.Metrics.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"source_cache_hits{dataset=\"apnic\"}": 1`,
		`"source_cache_days{dataset=\"apnic\"}": 1`,
		`"experiment_runner_seconds{runner=\"Synthetic\"}"`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, b.String())
		}
	}
}
