package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/orgs"
)

// RunCountryChecks assembles the artifact's CheckInput for one country on
// one day — exactly the data a researcher can derive from public sources
// (the APNIC dataset itself plus M-Lab) — and runs the reliability
// checklist.
func RunCountryChecks(l *Lab, cc string, d dates.Date) core.Report {
	return RunCountryChecksWith(l, elasticityAnalysis(l), cc, d)
}

// RunCountryChecksWith is RunCountryChecks with the elasticity analysis
// supplied by the caller. The analysis is a whole-world fit, identical for
// every country on a day, so batch callers (CheckAll, the fleet sweeps)
// compute it once instead of once per country.
func RunCountryChecksWith(l *Lab, an core.ElasticityAnalysis, cc string, d dates.Date) core.Report {
	samples, users := l.APNIC.CountryTotals(cc, d)

	// A week of daily share snapshots for the stability check.
	var recent []map[string]float64
	for off := 6; off >= 0; off-- {
		sh := l.APNIC.CountryOrgShares(cc, d.AddDays(-off))
		if len(sh) > 0 {
			recent = append(recent, sh)
		}
	}

	// Public cross-check: Kendall against the M-Lab month.
	mlabKendall := math.NaN()
	if l.MLab.Integrated(cc) {
		ml := l.MLabData(d)
		mlShares := ml.CountryShares(cc)
		apnicShares := l.APNIC.CountryOrgShares(cc, d)
		if len(mlShares) >= 3 && len(apnicShares) >= 3 {
			res := core.CompareShares(apnicShares, mlShares)
			mlabKendall = res.Kendall
		}
	}

	return core.RunChecks(core.CheckInput{
		Country:      cc,
		Samples:      float64(samples),
		Users:        users,
		Elasticity:   an,
		RecentShares: recent,
		MLabKendall:  mlabKendall,
	})
}

// CheckAll runs the artifact checks for every country on a day and
// returns the reports keyed by country code.
func CheckAll(l *Lab, d dates.Date) map[string]core.Report {
	an := elasticityAnalysis(l)
	out := map[string]core.Report{}
	for _, cc := range l.W.Countries() {
		out[cc] = RunCountryChecksWith(l, an, cc, d)
	}
	return out
}

// WeightByUsers returns each listed (country, org) pair's share of the
// world's Internet users according to an APNIC report — the paper's
// motivating use case: weighting a measurement platform's coverage.
func WeightByUsers(l *Lab, d dates.Date, pairs []orgs.CountryOrg) (weights map[orgs.CountryOrg]float64, totalPct float64) {
	rep := l.Report(d)
	users := rep.OrgUsersCached(l.W.Registry)
	// Report rows are in deterministic order; summing them (rather than
	// ranging over the users map) keeps the total bit-reproducible.
	var worldTotal float64
	for _, row := range rep.Rows {
		worldTotal += row.Users
	}
	weights = map[orgs.CountryOrg]float64{}
	if worldTotal == 0 {
		return weights, 0
	}
	for _, p := range pairs {
		w := users[p] / worldTotal
		weights[p] = w
		totalPct += 100 * w
	}
	return weights, totalPct
}
