package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/geo"
	"repro/internal/report"
)

// yearShares selects, per country, the per-org share snapshot for a year
// using the paper's rule: the first sampled day of the year whose
// users-per-sample ratio falls inside the elasticity bound; countries
// with no acceptable day are omitted (drawn black in Figure 11).
func yearShares(l *Lab, an core.ElasticityAnalysis, year int) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, cc := range l.W.Countries() {
		var chosen dates.Date
		found := false
		for off := 0; off < 360; off += 15 {
			d := dates.YearStart(year).AddDays(off)
			s, u := l.APNIC.CountryTotals(cc, d)
			if s == 0 {
				continue
			}
			if !an.RatioAboveBound(float64(s), u) {
				chosen = d
				found = true
				break
			}
		}
		if !found {
			continue
		}
		sh := l.APNIC.CountryOrgShares(cc, chosen)
		if len(sh) > 0 {
			out[cc] = sh
		}
	}
	return out
}

// Figure11 regenerates the consolidation analysis of §6: the percentage
// change, from the 2019 baseline, in the number of organizations needed
// to cover 95% of each country's estimated users. Paper shape: Latin
// America strongly up (diversification), Southern Asia sharply down
// (India's consolidation), Europe and Africa mildly down.
func Figure11(l *Lab) *Result {
	an := elasticityAnalysis(l)
	baseline := yearShares(l, an, 2019)

	metrics := map[string]float64{}
	var b strings.Builder
	var lastChanges []core.ConsolidationChange

	for _, target := range []int{2021, 2022, 2023, 2024} {
		shares := yearShares(l, an, target)
		changes := core.ConsolidationChanges(baseline, shares)
		lastChanges = changes

		// Aggregate per region.
		type agg struct {
			sum float64
			n   int
		}
		regions := map[geo.Subregion]*agg{}
		noData := 0
		for _, ch := range changes {
			if ch.NoData {
				noData++
				continue
			}
			c, ok := geo.ByCode(ch.Country)
			if !ok {
				continue
			}
			a := regions[c.Subregion]
			if a == nil {
				a = &agg{}
				regions[c.Subregion] = a
			}
			a.sum += ch.Pct
			a.n++
		}

		fmt.Fprintf(&b, "== 2019 -> %d (countries without a valid day: %d) ==\n", target, noData)
		var rows [][]string
		for _, region := range geo.AllSubregions() {
			a := regions[region]
			if a == nil || a.n == 0 {
				continue
			}
			mean := a.sum / float64(a.n)
			rows = append(rows, []string{string(region), fmt.Sprintf("%d", a.n), report.F(mean, 1) + "%"})
			if target == 2024 {
				key := regionMetricKey(region)
				metrics[key] = mean
			}
		}
		b.WriteString(report.Table([]string{"Region", "countries", "mean % change in orgs-to-95%"}, rows))
		b.WriteString("\n")
		if target == 2024 {
			metrics["no_data_countries"] = float64(noData)
		}
	}
	_ = lastChanges

	return &Result{
		ID:      "Figure 11",
		Title:   "Change in organizations needed to cover 95% of users (2019 baseline)",
		Text:    b.String(),
		Metrics: metrics,
		Paper: map[string]float64{
			// Directional targets from §6's narrative.
			"south_america":      100, // "massively increased"
			"southern_asia":      -40, // "drastic decrease"
			"western_europe":     -15, // "steady decline"
			"africa_middle_west": -10, // "decrease in diversity"
		},
	}
}

func regionMetricKey(region geo.Subregion) string {
	switch region {
	case geo.SouthAmer:
		return "south_america"
	case geo.CentralAmerica:
		return "central_america"
	case geo.Caribbean:
		return "caribbean"
	case geo.SouthernAsia:
		return "southern_asia"
	case geo.WesternEurope:
		return "western_europe"
	case geo.EasternEurope:
		return "eastern_europe"
	case geo.NorthernEurope:
		return "northern_europe"
	case geo.SouthernEurope:
		return "southern_europe"
	case geo.OtherAfrica:
		return "africa_middle_west"
	case geo.EasternAfrica:
		return "eastern_africa"
	default:
		return strings.ToLower(strings.ReplaceAll(string(region), " ", "_"))
	}
}

// Table6 regenerates Appendix D: percentage change in allocated and
// advertised ASNs per region, 2019 → 2024.
func Table6(l *Lab) *Result {
	changes := l.RIR.Changes(2019, 2024)
	var rows [][]string
	metrics := map[string]float64{}
	for _, ch := range changes {
		rows = append(rows, []string{string(ch.Region), report.F(ch.AllocatedPct, 2), report.F(ch.AdvertisedPct, 2)})
	}
	for _, ch := range changes {
		switch ch.Region {
		case geo.Caribbean:
			metrics["caribbean_alloc"] = ch.AllocatedPct
		case geo.EasternAsia:
			metrics["eastern_asia_alloc"] = ch.AllocatedPct
			metrics["eastern_asia_adv"] = ch.AdvertisedPct
		case geo.NorthernAmer:
			metrics["northern_america_alloc"] = ch.AllocatedPct
		case geo.EasternEurope:
			metrics["eastern_europe_alloc"] = ch.AllocatedPct
		}
	}
	return &Result{
		ID:      "Table 6 (Appendix D)",
		Title:   "Percentage increase in allocated and advertised ASNs per region (2019-2024)",
		Text:    report.Table([]string{"Region", "Allocated ASN Incr. (%)", "Advertised ASN Incr. (%)"}, rows),
		Metrics: metrics,
		Paper: map[string]float64{
			"caribbean_alloc":        20.46,
			"eastern_asia_alloc":     62.46,
			"eastern_asia_adv":       130.34,
			"northern_america_alloc": -15.13,
			"eastern_europe_alloc":   -28.69,
		},
	}
}
