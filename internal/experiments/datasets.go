package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/report"
	"repro/internal/stats"
)

// Table1 regenerates the dataset summary: what each simulated source
// contains and how big it is on the reference days.
func Table1(l *Lab) *Result {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)
	ix := l.IXPData(PrimaryCDNDay)
	ml := l.MLabData(BroadbandDay)
	bb := l.BroadbandData(BroadbandDay)

	bbOrgs := 0
	for _, row := range bb.Shares {
		bbOrgs += len(row)
	}
	rows := [][]string{
		{"APNIC", "2013-11-01 to 2024-12-31", "ASN, samples, user estimates", report.Count(int64(len(rep.Rows))) + " AS rows/day"},
		{"ANONCDN (sim)", "2023-07-20, 2023-10-19, 2024 days", "HTTP requests, UAs, bytes", report.Count(int64(len(snap.Stats))) + " (country,org) pairs"},
		{"IXP", "2023-07-20, 2024-08-19", "ASN, port capacities", report.Count(int64(len(ix.Capacities))) + " registrations"},
		{"M-Lab", "2024-01-01, 2024-06-01", "ASN, speed test counts", report.Count(int64(len(ml.Counts))) + " (country,org) pairs"},
		{"Broadband", "2024-03-01 to 2024-03-31", "ASN, subscribers", fmt.Sprintf("%d countries, %d orgs", len(bb.Shares), bbOrgs)},
	}
	return &Result{
		ID:    "Table 1",
		Title: "Summary of Datasets",
		Text:  report.Table([]string{"Name", "Dates", "Data", "Size (simulated)"}, rows),
		Metrics: map[string]float64{
			"apnic_rows":     float64(len(rep.Rows)),
			"cdn_pairs":      float64(len(snap.Stats)),
			"ixp_pairs":      float64(len(ix.Capacities)),
			"mlab_pairs":     float64(len(ml.Counts)),
			"broadband_ccs":  float64(len(bb.Shares)),
			"broadband_orgs": float64(bbOrgs),
		},
		Paper: map[string]float64{"broadband_ccs": 20},
	}
}

// Table2 regenerates the top-5 (country, AS) rows by estimated users.
// Paper shape: all five rows come from India and China, with hundreds of
// millions of users each and tens of percent of their countries.
func Table2(l *Lab) *Result {
	rep := l.Report(Table2Day)
	n := 5
	if len(rep.Rows) < n {
		n = len(rep.Rows)
	}
	var rows [][]string
	inOrCn := 0
	for _, r := range rep.Rows[:n] {
		if r.CC == "IN" || r.CC == "CN" {
			inOrCn++
		}
		rows = append(rows, []string{
			r.CC,
			fmt.Sprintf("AS%d", r.ASN),
			report.F(r.Users/1e6, 2),
			report.F(r.PctCountry, 1),
			report.F(r.PctInternet, 2),
			report.F(float64(r.Samples)/1e6, 2),
		})
	}
	return &Result{
		ID:    "Table 2",
		Title: fmt.Sprintf("Top 5 (country, AS) in Est. User Population (%s, window=%dd)", Table2Day, rep.Window),
		Text:  report.Table([]string{"Country", "AS", "Users (M)", "% of Country", "% of Internet", "Samples (M)"}, rows),
		Metrics: map[string]float64{
			"top1_users_M":  rep.Rows[0].Users / 1e6,
			"top5_in_cn":    float64(inOrCn),
			"top1_pc_cntry": rep.Rows[0].PctCountry,
		},
		Paper: map[string]float64{
			"top1_users_M": 277.97,
			"top5_in_cn":   5,
		},
	}
}

// Figure1 regenerates the French time series: estimated users and samples
// for the top-5 ISPs, monthly from 2014 to 2024, and flags ITU-driven
// instability events — months where every org's user estimate jumps while
// samples stay flat (the paper's event B on 2019-05-13).
func Figure1(l *Lab) *Result {
	const cc = "FR"
	// Top 5 eyeball orgs as of 2024.
	shares := l.APNIC.CountryOrgShares(cc, dates.New(2024, 1, 1))
	type kv struct {
		id string
		v  float64
	}
	var ranked []kv
	for id, v := range shares {
		ranked = append(ranked, kv{id, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		return ranked[i].id < ranked[j].id
	})
	if len(ranked) > 5 {
		ranked = ranked[:5]
	}

	months := dates.Range(dates.New(2014, 1, 15), dates.New(2024, 4, 15), 30)
	var b strings.Builder
	fmt.Fprintf(&b, "# Monthly estimated users (U) and samples (S) for top-5 %s ISPs\n", cc)
	fmt.Fprintf(&b, "# date")
	for _, r := range ranked {
		fmt.Fprintf(&b, "\tU(%s)\tS(%s)", r.id, r.id)
	}
	b.WriteString("\n")

	// For spike detection: total user estimate vs total samples.
	var prevUsers, prevSamples float64
	maxUserJump := 0.0
	spikeMonth := ""
	for _, d := range months {
		totalS, itu := l.APNIC.CountryTotals(cc, d)
		sh := l.APNIC.CountryOrgShares(cc, d)
		fmt.Fprintf(&b, "%s", d)
		for _, r := range ranked {
			fmt.Fprintf(&b, "\t%.0f\t%.0f", sh[r.id]*itu, sh[r.id]*float64(totalS))
		}
		b.WriteString("\n")
		if prevUsers > 0 && prevSamples > 0 {
			uJump := itu/prevUsers - 1
			sJump := float64(totalS)/prevSamples - 1
			// An ITU-driven event: users jump with flat samples.
			if excess := uJump - sJump; excess > maxUserJump {
				maxUserJump = excess
				spikeMonth = d.String()
			}
		}
		prevUsers, prevSamples = itu, float64(totalS)
	}
	fmt.Fprintf(&b, "# largest users-vs-samples divergence: %+.1f%% in month of %s\n", 100*maxUserJump, spikeMonth)

	spike2019 := 0.0
	if strings.HasPrefix(spikeMonth, "2019-05") || strings.HasPrefix(spikeMonth, "2019-06") {
		spike2019 = 1
	}
	return &Result{
		ID:    "Figure 1",
		Title: "Estimated Users and Samples over time, top-5 French ISPs (2014-2024)",
		Text:  b.String(),
		Metrics: map[string]float64{
			"orgs_plotted":      float64(len(ranked)),
			"max_user_jump_pct": 100 * maxUserJump,
			"spike_in_2019_05":  spike2019,
		},
		Paper: map[string]float64{
			"orgs_plotted": 5,
			// The paper attributes event B (2019-05-13) to a +6M ITU
			// anomaly on a ~62M base: ≈ +10%.
			"max_user_jump_pct": 10,
			"spike_in_2019_05":  1,
		},
	}
}

// Table4 renders the agreement taxonomy — definitional, encoded in
// core.AgreementLevel.
func Table4(l *Lab) *Result {
	rows := [][]string{
		{"Rank Similarity", "✓", "", ""},
		{"Principal Orgs Agreement", "", "✓", "> 0"},
		{"Complete Agreement", "✓", "✓", "≈ 1"},
	}
	return &Result{
		ID:    "Table 4",
		Title: "Conditions for dataset agreement (strong = correlation ≥ 0.8)",
		Text:  report.Table([]string{"Level", "Kendall-Tau", "Pearson", "Linear Fit"}, rows),
		Metrics: map[string]float64{
			"strong_threshold": 0.8,
		},
		Paper: map[string]float64{"strong_threshold": 0.8},
	}
}

// Figure12 regenerates Appendix C: the CDF of the maximum User-Agent
// share difference per (country, org) pair across the 2024 CDN days.
// Paper shape: >93% of pairs differ by <1%, and only ~0.8% of pairs reach
// a 5% difference, concentrated in small or low-freedom countries.
func Figure12(l *Lab) *Result {
	type key = orgs.CountryOrg
	minShare := map[key]float64{}
	maxShare := map[key]float64{}
	seenCountries := map[string]bool{}
	for _, d := range CDN2024Days {
		snap := l.Snapshot(d)
		for _, cc := range snap.Countries() {
			seenCountries[cc] = true
			for id, share := range snap.UAShares(cc) {
				k := key{Country: cc, Org: id}
				if cur, ok := minShare[k]; !ok || share < cur {
					minShare[k] = share
				}
				if cur, ok := maxShare[k]; !ok || share > cur {
					maxShare[k] = share
				}
			}
		}
	}
	var diffs []float64
	for k, hi := range maxShare {
		diffs = append(diffs, 100*(hi-minShare[k]))
	}
	sort.Float64s(diffs)
	n := float64(len(diffs))
	below1 := 0.0
	atLeast5 := 0.0
	for _, d := range diffs {
		if d < 1 {
			below1++
		}
		if d >= 5 {
			atLeast5++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# CDF of max UA-share difference (%%) across %d days in 2024, %d pairs\n", len(CDN2024Days), len(diffs))
	for _, q := range []float64{0.5, 0.9, 0.93, 0.99, 0.999} {
		idx := int(q * (n - 1))
		fmt.Fprintf(&b, "p%-5g  %.3f%%\n", 100*q, diffs[idx])
	}
	fmt.Fprintf(&b, "pairs with diff < 1%%: %.1f%%\n", 100*below1/n)
	fmt.Fprintf(&b, "pairs with diff >= 5%%: %.2f%%\n\n", 100*atLeast5/n)
	// Plot the CDF over the informative 0-10% range (cf. Figure 12).
	var clipped []float64
	for _, d := range diffs {
		if d <= 10 {
			clipped = append(clipped, d)
		}
	}
	xs, fs := stats.NewECDF(clipped).Points()
	b.WriteString(report.CDFPlot([]string{"max UA-share diff (%), clipped at 10%"},
		[][2][]float64{{xs, fs}}, 60, 10))

	return &Result{
		ID:    "Figure 12 (Appendix C)",
		Title: "Max User-Agent share difference across 2024 CDN days",
		Text:  b.String(),
		Metrics: map[string]float64{
			"pairs":            n,
			"pct_below_1":      100 * below1 / n,
			"pct_at_least_5":   100 * atLeast5 / n,
			"median_diff_pct":  diffs[int(0.5*(n-1))],
			"countries_in_cdn": float64(len(seenCountries)),
		},
		Paper: map[string]float64{
			"pct_below_1":    93,
			"pct_at_least_5": 0.8,
		},
	}
}
