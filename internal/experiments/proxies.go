package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/orgs"
	"repro/internal/report"
	"repro/internal/stats"
)

// ExtProxies compares every *public* traffic/user proxy the paper touches
// against the (private) CDN ground truth, per country, on the primary
// comparison day:
//
//   - APNIC user estimates (§3.2 — the paper's subject),
//   - DNS query counts (§7's client-identification prior work),
//   - IXP registry capacity (§3.6),
//   - traceroute path popularity (§7's weighted-Internet-graph prior
//     work, with vantage bias and hop loss).
//
// For each proxy it reports median per-country Spearman correlation with
// CDN traffic volume plus pair coverage — the quantitative version of
// §7's qualitative comparison. Expected shape: APNIC leads on
// correlation; DNS leads on coverage but trails on magnitude; IXP and
// traceroute sit in between with poor coverage or heavy bias.
func ExtProxies(l *Lab) *Result {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)
	ix := l.IXPData(PrimaryCDNDay)
	dns := l.DNSData(PrimaryCDNDay)

	campaign := l.Campaign()
	popularity := l.PathPopularity(PrimaryCDNDay, 150)

	apnicUsers := rep.OrgUsersCached(l.W.Registry)

	type proxy struct {
		name   string
		shares func(cc string) map[string]float64
	}
	proxies := []proxy{
		{"apnic-users", func(cc string) map[string]float64 {
			return normalize(orgs.CountryShares(apnicUsers, cc))
		}},
		{"dns-queries", dns.CountryShares},
		{"ixp-capacity", func(cc string) map[string]float64 {
			return normalize(ix.CountryCapacities(cc))
		}},
		{"path-popularity", func(cc string) map[string]float64 {
			return popularity.CountryShares(l.W.Registry, cc)
		}},
	}

	countries := l.W.Countries()
	truePairs := l.W.CountryOrgPairs(PrimaryCDNDay)
	metrics := map[string]float64{}
	var rows [][]string
	for _, p := range proxies {
		// Build each country's share map once per proxy. The correlation
		// pass and the per-pair coverage pass below both read from this
		// table; the coverage pass used to recompute the full map once per
		// true pair, which dominated the runner's cost.
		shareByCC := make(map[string]map[string]float64, len(countries))
		for _, cc := range countries {
			shareByCC[cc] = p.shares(cc)
		}
		var corrs []float64
		for _, cc := range countries {
			vol := snap.VolumeShares(cc)
			sh := shareByCC[cc]
			if len(sh) < 5 || len(vol) < 5 {
				continue
			}
			a, b, _ := stats.AlignShares(sh, vol)
			r := stats.Spearman(a, b)
			if !math.IsNaN(r) {
				corrs = append(corrs, r)
			}
		}
		// Coverage over the true pair set.
		covered := 0
		for _, pair := range truePairs {
			if shareByCC[pair.Country][pair.Org] > 0 {
				covered++
			}
		}
		coverage := 100 * float64(covered) / float64(len(truePairs))
		median := stats.Median(corrs)
		rows = append(rows, []string{
			p.name,
			report.F(median, 2),
			fmt.Sprintf("%d", len(corrs)),
			report.Pct(coverage),
		})
		key := strings.ReplaceAll(p.name, "-", "_")
		metrics[key+"_spearman"] = median
		metrics[key+"_coverage"] = coverage
	}
	metrics["traces"] = float64(popularity.Traces)
	metrics["lost_hops"] = float64(popularity.LostHops)

	var b strings.Builder
	b.WriteString(report.Table([]string{"Proxy", "median Spearman vs CDN volume", "countries", "pair coverage"}, rows))
	fmt.Fprintf(&b, "\ntraceroute campaign: %d vantages, %d traces, %d hops lost to measurement error\n",
		len(campaign.Vantages), popularity.Traces, popularity.LostHops)

	return &Result{
		ID:      "Extension: proxy comparison",
		Title:   "Public traffic proxies vs CDN ground truth (§7's landscape, quantified)",
		Text:    b.String(),
		Metrics: metrics,
	}
}

// normalize scales a map to sum to 1 (empty maps pass through), summing
// in sorted key order so the result is bit-reproducible.
func normalize(m map[string]float64) map[string]float64 {
	total := stats.SumMap(m)
	if total == 0 {
		return m
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v / total
	}
	return out
}
