package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// canonical encodes everything deterministic about a Result so two runs
// can be compared byte-for-byte.
func canonical(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\x00%s\x00%s\x00", res.ID, res.Title, res.Text)
	for _, k := range sortedMetricKeys(res.Metrics) {
		fmt.Fprintf(&b, "%s=%s;", k, strconv.FormatFloat(res.Metrics[k], 'g', -1, 64))
	}
	b.WriteString("\x00")
	for _, k := range sortedMetricKeys(res.Paper) {
		fmt.Fprintf(&b, "%s=%s;", k, strconv.FormatFloat(res.Paper[k], 'g', -1, 64))
	}
	return b.String()
}

// TestRunAllDeterministic is the scheduler's core guarantee: the same
// seed swept at parallelism 1 and parallelism 8 yields byte-identical
// results in identical order. Fresh labs for each sweep so no cache state
// carries over.
func TestRunAllDeterministic(t *testing.T) {
	runners := Runners()
	if testing.Short() {
		var fast []Runner
		for _, r := range runners {
			switch r.Name { // the multi-second runners; everything else is <100ms
			case "Figure7", "Figure8", "Figure11", "Figure12", "ExtDrivers", "ExtProxies":
				continue
			}
			fast = append(fast, r)
		}
		runners = fast
	}

	serial := RunAll(NewLab(42), runners, 1, nil)
	parallel := RunAll(NewLab(42), runners, 8, nil)

	if len(serial) != len(runners) || len(parallel) != len(runners) {
		t.Fatalf("record counts: serial %d, parallel %d, want %d", len(serial), len(parallel), len(runners))
	}
	for i := range runners {
		if serial[i].Runner.Name != runners[i].Name || parallel[i].Runner.Name != runners[i].Name {
			t.Fatalf("slot %d: order broken (serial %q, parallel %q, want %q)",
				i, serial[i].Runner.Name, parallel[i].Runner.Name, runners[i].Name)
		}
		s, p := canonical(serial[i].Result), canonical(parallel[i].Result)
		if s != p {
			t.Errorf("%s: results differ between parallelism 1 and 8:\nserial:   %.200q\nparallel: %.200q",
				runners[i].Name, s, p)
		}
	}
}

// TestRunAllEmitOrder uses synthetic runners that complete in reverse
// order and checks emission still follows input order, with every record
// populated and accounted.
func TestRunAllEmitOrder(t *testing.T) {
	const n = 8
	var runners []Runner
	for i := 0; i < n; i++ {
		runners = append(runners, Runner{
			Name: fmt.Sprintf("R%d", i),
			Desc: "synthetic",
			Run: func(*Lab) *Result {
				// Later runners finish first, so in-order emission must
				// buffer completions rather than stream them raw.
				time.Sleep(time.Duration(n-i) * 5 * time.Millisecond)
				return &Result{ID: fmt.Sprintf("R%d", i), Title: "t", Text: "x"}
			},
		})
	}
	var emitted []string
	recs := RunAll(nil, runners, n, func(rec RunRecord) {
		emitted = append(emitted, rec.Result.ID)
	})
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("R%d", i)
		if emitted[i] != want {
			t.Fatalf("emitted[%d] = %s, want %s (full order %v)", i, emitted[i], want, emitted)
		}
		if recs[i].Result.ID != want {
			t.Fatalf("recs[%d] = %s, want %s", i, recs[i].Result.ID, want)
		}
		if recs[i].Elapsed <= 0 {
			t.Fatalf("recs[%d].Elapsed = %v, want > 0", i, recs[i].Elapsed)
		}
	}
	if total := TotalElapsed(recs); total < 5*time.Millisecond*n {
		t.Fatalf("TotalElapsed = %v, want at least the summed sleeps", total)
	}
}

func TestRunAllEdgeCases(t *testing.T) {
	if recs := RunAll(nil, nil, 4, nil); len(recs) != 0 {
		t.Fatalf("empty runner list produced %d records", len(recs))
	}
	one := []Runner{{Name: "only", Desc: "d", Run: func(*Lab) *Result { return &Result{ID: "only"} }}}
	for _, par := range []int{-3, 0, 1, 100} {
		recs := RunAll(nil, one, par, nil)
		if len(recs) != 1 || recs[0].Result.ID != "only" {
			t.Fatalf("parallelism %d: bad records %+v", par, recs)
		}
	}
}

// TestLabSingleflightHammer hits the day caches from many goroutines on
// overlapping dates and verifies each day's generator ran exactly once
// and every caller got the same artifact instance.
func TestLabSingleflightHammer(t *testing.T) {
	l := NewLab(7)
	reportDays := CDN2024Days[:4]
	var wg sync.WaitGroup
	const goroutines = 24
	reports := make([]map[int]interface{}, goroutines)
	snaps := make([]map[int]interface{}, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[g] = map[int]interface{}{}
			snaps[g] = map[int]interface{}{}
			for i := 0; i < 3; i++ {
				for di, d := range reportDays {
					reports[g][di] = l.Report(d)
					snaps[g][di] = l.Snapshot(d)
				}
			}
		}()
	}
	wg.Wait()

	apnicDays, cdnDays := l.CacheStats()
	if int(apnicDays) != len(reportDays) {
		t.Errorf("APNIC generations = %d, want %d (one per distinct day)", apnicDays, len(reportDays))
	}
	if int(cdnDays) != len(reportDays) {
		t.Errorf("CDN generations = %d, want %d (one per distinct day)", cdnDays, len(reportDays))
	}
	for g := 1; g < goroutines; g++ {
		for di := range reportDays {
			if reports[g][di] != reports[0][di] {
				t.Fatalf("goroutine %d got a different report instance for day %d", g, di)
			}
			if snaps[g][di] != snaps[0][di] {
				t.Fatalf("goroutine %d got a different snapshot instance for day %d", g, di)
			}
		}
	}
}
