package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/orgs"
	"repro/internal/report"
	"repro/internal/stats"
)

// countryKendall computes per-country Kendall-Tau between APNIC user
// shares and another per-country share map provider.
func countryKendall(l *Lab, other func(cc string) map[string]float64, only func(cc string) bool) map[string]float64 {
	rep := l.Report(PrimaryCDNDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)
	out := map[string]float64{}
	for _, cc := range l.W.Countries() {
		if only != nil && !only(cc) {
			continue
		}
		apnicShares := orgs.CountryShares(apnicUsers, cc)
		o := other(cc)
		if len(apnicShares) < 3 || len(o) < 3 {
			continue
		}
		res := core.CompareShares(apnicShares, o)
		if !math.IsNaN(res.Kendall) {
			out[cc] = res.Kendall
		}
	}
	return out
}

// Figure9 regenerates the §5.2 cross-check: binning countries by their
// M-Lab↔APNIC Kendall-Tau and summarizing the CDN↔APNIC Kendall-Tau per
// bin. Paper shape: the per-bin average rises monotonically — strong
// public agreement predicts strong private agreement.
func Figure9(l *Lab) *Result {
	ml := l.MLabData(BroadbandDay)
	snap := l.Snapshot(PrimaryCDNDay)

	public := countryKendall(l, ml.CountryShares, l.MLab.Integrated)
	private := countryKendall(l, snap.VolumeShares, nil)

	bins := core.BinKendall(public, private, 0.1)
	var rows [][]string
	var mids, avgs, weights []float64
	for _, b := range bins {
		rows = append(rows, []string{
			fmt.Sprintf("[%.2f, %.2f)", b.Lo, b.Hi),
			fmt.Sprintf("%d", b.Count),
			report.F(b.Min, 2), report.F(b.Avg, 2), report.F(b.Max, 2),
		})
		// Singleton bins are pure noise; the trend statistic uses the
		// populated bins only, and weights each bin by how many
		// countries it aggregates — a sparsely populated extreme bin
		// (2-org countries where tau is trivially ±1) must not swing
		// the trend as hard as the 40-country bins in the middle.
		if b.Count >= 3 {
			mids = append(mids, (b.Lo+b.Hi)/2)
			avgs = append(avgs, b.Avg)
			weights = append(weights, float64(b.Count))
		}
	}
	trend := stats.WeightedPearson(mids, avgs, weights)

	var b strings.Builder
	b.WriteString(report.Table([]string{"M-Lab tau bin", "countries", "CDN tau min", "avg", "max"}, rows))
	fmt.Fprintf(&b, "\ntrend: Pearson(bin center, avg CDN tau) = %.2f over %d bins, %d countries\n",
		trend, len(bins), len(public))

	return &Result{
		ID:    "Figure 9",
		Title: "M-Lab↔APNIC Kendall bins vs CDN↔APNIC Kendall",
		Text:  b.String(),
		Metrics: map[string]float64{
			"bins":           float64(len(bins)),
			"countries":      float64(len(public)),
			"trend_pearson":  trend,
			"top_bin_avg":    lastAvg(bins),
			"bottom_bin_avg": firstAvg(bins),
		},
		Paper: map[string]float64{
			// The paper's Figure 9 shows a clearly increasing average.
			"trend_pearson": 0.9,
		},
	}
}

func firstAvg(bins []core.KendallBin) float64 {
	if len(bins) == 0 {
		return math.NaN()
	}
	return bins[0].Avg
}

func lastAvg(bins []core.KendallBin) float64 {
	if len(bins) == 0 {
		return math.NaN()
	}
	return bins[len(bins)-1].Avg
}

// Figure10 regenerates the §5.3 MIC analysis: per country, the maximal
// information the APNIC estimates alone carry about CDN traffic volume,
// versus APNIC plus IXP capacity. Paper shape: the combined CDF
// stochastically dominates the APNIC-only CDF on every continent shown
// (Oceania, Asia, Europe).
func Figure10(l *Lab) *Result {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)
	ix := l.IXPData(PrimaryCDNDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)

	// Within-country IXP capacity shares, so that all three quantities
	// are commensurate relative measures.
	ixpShares := func(cc string) map[string]float64 {
		caps := ix.CountryCapacities(cc)
		total := stats.SumMap(caps) // sorted-order sum: bit-reproducible
		out := make(map[string]float64, len(caps))
		if total > 0 {
			for id, v := range caps {
				out[id] = v / total
			}
		}
		return out
	}

	// Train the blend once on the pooled per-org observations — the
	// paper's "train with private data, predict from public inputs".
	// Observations are appended in sorted org order: the fit's normal
	// equations sum over them, and float summation order must not depend
	// on map iteration.
	var ta, tx, tv []float64
	for _, cc := range l.W.Countries() {
		aSh := orgs.CountryShares(apnicUsers, cc)
		iSh := ixpShares(cc)
		vols := snap.VolumeShares(cc)
		ids := make([]string, 0, len(vols))
		for id := range vols {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			ta = append(ta, aSh[id])
			tx = append(tx, iSh[id])
			tv = append(tv, vols[id])
		}
	}
	model := core.FitTrafficModel(ta, tx, tv)

	conts := []geo.Continent{geo.Oceania, geo.Asia, geo.Europe}
	perCont := map[geo.Continent][]core.MICComparison{}
	for _, cc := range l.W.Countries() {
		c, _ := geo.ByCode(cc)
		cont := c.Continent()
		keep := false
		for _, want := range conts {
			if cont == want {
				keep = true
			}
		}
		if !keep {
			continue
		}
		cmp, ok := core.CompareMIC(cc, model,
			orgs.CountryShares(apnicUsers, cc),
			ixpShares(cc),
			snap.VolumeShares(cc))
		if ok {
			perCont[cont] = append(perCont[cont], cmp)
		}
	}

	metrics := map[string]float64{}
	var rows [][]string
	var plotNames []string
	var plotCurves [][2][]float64
	for _, cont := range conts {
		cmps := perCont[cont]
		if len(cmps) == 0 {
			continue
		}
		var alone, combined []float64
		gain := 0.0
		for _, c := range cmps {
			alone = append(alone, c.APNIC)
			combined = append(combined, c.Combined)
			gain += c.Combined - c.APNIC
		}
		gain /= float64(len(cmps))
		rows = append(rows, []string{
			string(cont), fmt.Sprintf("%d", len(cmps)),
			report.F(stats.Median(alone), 2), report.F(stats.Median(combined), 2),
			report.F(gain, 3),
		})
		key := strings.ToLower(strings.ReplaceAll(string(cont), " ", "_"))
		metrics[key+"_gain"] = gain
		metrics[key+"_n"] = float64(len(cmps))
		if cont == geo.Europe {
			xs, fs := stats.NewECDF(alone).Points()
			plotNames = append(plotNames, "Europe APNIC")
			plotCurves = append(plotCurves, [2][]float64{xs, fs})
			xs2, fs2 := stats.NewECDF(combined).Points()
			plotNames = append(plotNames, "Europe APNIC+IXP")
			plotCurves = append(plotCurves, [2][]float64{xs2, fs2})
		}
	}

	text := report.Table([]string{"Continent", "countries", "median MIC (APNIC)", "median MIC (combined)", "avg gain"}, rows) +
		"\nCDF across European countries (cf. the paper's Figure 10):\n" +
		report.CDFPlot(plotNames, plotCurves, 60, 12)

	return &Result{
		ID:      "Figure 10",
		Title:   "MIC against CDN traffic volume: APNIC alone vs APNIC + IXP",
		Text:    text,
		Metrics: metrics,
		Paper: map[string]float64{
			// The paper reports a positive information gain on every
			// plotted continent.
			"europe_gain": 0.05,
		},
	}
}

// Figure13 regenerates Appendix E: the linear relationship between an
// org's public IXP capacity and its (hidden) PNI capacity with the CDN.
// Paper shape: R² ≈ 0.47 — a usable but coarse proxy.
func Figure13(l *Lab) *Result {
	ix := l.IXPData(PrimaryCDNDay)
	var xs, ys []float64
	// Pairs() is sorted, so the regression's input order (and its float
	// sums) cannot vary with map iteration.
	for _, pair := range ix.Pairs() {
		capv := ix.Capacities[pair]
		pni := ix.PNI[pair]
		if pni <= 0 {
			continue
		}
		// The paper's plot covers the CDN's interconnect range,
		// 0–3000 Gbps; hypergiant-scale outliers beyond that would
		// dominate a linear fit.
		if capv/ixpGbps > 3000 || pni/ixpGbps > 3000 {
			continue
		}
		xs = append(xs, capv/ixpGbps)
		ys = append(ys, pni/ixpGbps)
	}
	fit := stats.LinearRegression(xs, ys)

	var b strings.Builder
	fmt.Fprintf(&b, "PNI(Gbps) = %.2f + %.3f * IXP(Gbps)   R² = %.3f over %d orgs\n",
		fit.Intercept, fit.Slope, fit.R2, fit.N)
	return &Result{
		ID:    "Figure 13 (Appendix E)",
		Title: "IXP capacity vs PNI capacity",
		Text:  b.String(),
		Metrics: map[string]float64{
			"r2":    fit.R2,
			"slope": fit.Slope,
			"orgs":  float64(fit.N),
		},
		Paper: map[string]float64{"r2": 0.47},
	}
}

const ixpGbps = 1e9
