// Package experiments wires the dataset simulators to the core validation
// toolkit and regenerates every table and figure of the paper's
// evaluation. Each runner returns a Result carrying rendered text, the
// headline metrics, and the paper's corresponding values, so that
// EXPERIMENTS.md and the benchmark harness can report paper-vs-measured
// side by side.
package experiments

import (
	"sort"
	"strings"

	"repro/internal/apnic"
	"repro/internal/astopo"
	"repro/internal/broadband"
	"repro/internal/cdn"
	"repro/internal/dates"
	"repro/internal/dnscount"
	"repro/internal/itu"
	"repro/internal/ixp"
	"repro/internal/mlab"
	"repro/internal/obsv"
	"repro/internal/rir"
	"repro/internal/scenario"
	"repro/internal/source/bundle"
	"repro/internal/syncx"
	"repro/internal/world"
)

// Reference dates, mirroring the paper's data pulls.
var (
	// PrimaryCDNDay is the main comparison day (§3.4 lists 2023-07-20).
	PrimaryCDNDay = dates.New(2023, 7, 20)
	// Table2Day is the snapshot of Table 2.
	Table2Day = dates.New(2024, 4, 21)
	// Figure6Day is the elasticity snapshot (Figure 6's caption).
	Figure6Day = dates.New(2024, 8, 9)
	// BroadbandDay is the Broadband Subscriber collection window.
	BroadbandDay = dates.New(2024, 3, 1)
	// CDN2024Days are the 2024 log days of Appendix C.
	CDN2024Days = []dates.Date{
		dates.New(2024, 4, 1), dates.New(2024, 4, 2),
		dates.New(2024, 5, 2), dates.New(2024, 5, 3),
		dates.New(2024, 8, 9), dates.New(2024, 8, 10),
		dates.New(2024, 8, 11), dates.New(2024, 8, 12),
	}
)

// Lab bundles one world with all its measurement simulators, caching the
// expensive daily artifacts.
//
// Lab is safe for concurrent use: the generators themselves are read-only
// after construction (the splittable RNG derives child streams without
// advancing the parent), and the day caches are per-day singleflight
// entries, so concurrent runners needing the same day block only on that
// day's in-flight generation while distinct days generate in parallel.
// Each day's artifact is a pure function of (seed, date), which is what
// makes RunAll's output independent of parallelism.
type Lab struct {
	Seed      uint64
	W         *world.World
	ITU       *itu.Estimator
	APNIC     *apnic.Generator
	CDN       *cdn.Generator
	Broadband *broadband.Generator
	MLab      *mlab.Generator
	DNS       *dnscount.Generator
	IXP       *ixp.Generator
	RIR       *rir.Generator

	// Sources is the uniform dataset roster over the lab's generators.
	// Every day artifact the runners consume resolves through its
	// adapters, so memoization and per-dataset metrics are the same here
	// as in the HTTP server (source_requests_total{dataset="apnic"}, ...).
	Sources *bundle.Bundle

	// Metrics is the lab's observability registry. The source day caches
	// count their requests and generations here, RunAll records
	// per-runner wall time into it, and cmd/experiments can dump it on
	// exit.
	Metrics *obsv.Registry

	// Shared traceroute artifacts: the AS graph and campaign are built at
	// most once per lab, and each (day, traces) campaign run at most once.
	topo      syncx.Cache[struct{}, *astopo.Graph]
	campaigns syncx.Cache[struct{}, *astopo.Campaign]
	pops      syncx.Cache[popKey, *astopo.Popularity]

	popReqs *obsv.Counter // path-popularity cache lookups
	popGens *obsv.Counter // campaign runs (one per distinct (day, traces))
}

// popKey identifies one memoized campaign result.
type popKey struct {
	day    int // dates.Date.DayNumber()
	traces int // traces per vantage
}

// LabVantages is the vantage count of the lab's shared traceroute
// campaign — ExtProxies' configuration (24 probes, ~70% western bias).
const LabVantages = 24

// LabCacheDays bounds each dataset's day cache. The simulated decade is
// ~4100 days; holding them all preserves the previous behavior (each
// distinct day generated exactly once per lab) while still putting a
// ceiling on residency.
const LabCacheDays = 4200

// NewLab builds a world and all generators from one seed, under the paper
// scenario.
func NewLab(seed uint64) *Lab {
	l, err := NewLabScenario(seed, nil)
	if err != nil {
		// nil selects scenario.Paper(), which always compiles.
		panic(err)
	}
	return l
}

// NewLabScenario builds a world under an explicit scenario (nil selects
// scenario.Paper()) and wires all measurement generators to it. The
// generators are scenario-agnostic: they read shocks through the world's
// market seams, so a lab over a counterfactual world exercises exactly
// the measurement code paths the paper lab does.
func NewLabScenario(seed uint64, scn *scenario.Scenario) (*Lab, error) {
	w, err := world.Build(world.Config{Seed: seed, Scenario: scn})
	if err != nil {
		return nil, err
	}
	ituEst := itu.New(w, seed)
	l := &Lab{
		Seed:      seed,
		W:         w,
		ITU:       ituEst,
		APNIC:     apnic.New(w, ituEst, seed),
		CDN:       cdn.New(w, seed),
		Broadband: broadband.New(w, seed),
		MLab:      mlab.New(w, seed),
		DNS:       dnscount.New(w, seed),
		IXP:       ixp.New(w, seed),
		RIR:       rir.New(w, seed),
		Metrics:   obsv.NewRegistry(),
	}
	l.Sources = bundle.New(w, seed, bundle.Config{
		Metrics:   l.Metrics,
		CacheDays: LabCacheDays,
		ITU:       l.ITU,
		APNIC:     l.APNIC,
		CDN:       l.CDN,
		MLab:      l.MLab,
		DNS:       l.DNS,
		Broadband: l.Broadband,
		IXP:       l.IXP,
	})
	l.popReqs = l.Metrics.Counter("lab_path_popularity_requests_total")
	l.popGens = l.Metrics.Counter("lab_path_popularity_runs_total")
	l.Metrics.GaugeFunc("lab_path_popularity_cache_entries", func() float64 { return float64(l.pops.Len()) })
	return l, nil
}

// Report returns the cached APNIC report for a day, generating it at most
// once even under concurrent access.
func (l *Lab) Report(d dates.Date) *apnic.Report {
	return l.Sources.APNIC.Report(d)
}

// Snapshot returns the cached CDN snapshot for a day, generating it at
// most once even under concurrent access.
func (l *Lab) Snapshot(d dates.Date) *cdn.Snapshot {
	return l.Sources.CDN.Snapshot(d)
}

// MLabData returns the cached M-Lab dataset for the month containing d.
func (l *Lab) MLabData(d dates.Date) *mlab.Dataset {
	return l.Sources.MLab.Dataset(d)
}

// DNSData returns the cached open-resolver query dataset for a day.
func (l *Lab) DNSData(d dates.Date) *dnscount.Dataset {
	return l.Sources.DNS.Dataset(d)
}

// BroadbandData returns the cached broadband survey for a day.
func (l *Lab) BroadbandData(d dates.Date) *broadband.Dataset {
	return l.Sources.Broadband.Dataset(d)
}

// IXPData returns the cached IXP registry scrape for a day.
func (l *Lab) IXPData(d dates.Date) *ixp.Snapshot {
	return l.Sources.IXP.Snapshot(d)
}

// ITUTable returns the cached per-country ITU table for a day.
func (l *Lab) ITUTable(d dates.Date) *itu.Table {
	return l.Sources.ITU.Table(d)
}

// Topology returns the lab's shared AS-relationship graph, built at most
// once even under concurrent access.
func (l *Lab) Topology() *astopo.Graph {
	return l.topo.Get(struct{}{}, func() *astopo.Graph {
		return astopo.BuildGraph(l.W, l.Seed)
	})
}

// Campaign returns the shared traceroute campaign (LabVantages probes)
// over the lab topology, built at most once. Per-vantage path trees are
// memoized inside the campaign, so repeat days only pay for tracing.
func (l *Lab) Campaign() *astopo.Campaign {
	return l.campaigns.Get(struct{}{}, func() *astopo.Campaign {
		return astopo.NewCampaign(l.W, l.Topology(), l.Seed, LabVantages)
	})
}

// PathPopularity returns the memoized campaign result for one
// (day, tracesPerVantage) pair, running the campaign at most once per
// pair even under concurrent runners.
func (l *Lab) PathPopularity(d dates.Date, tracesPerVantage int) *astopo.Popularity {
	l.popReqs.Inc()
	return l.pops.Get(popKey{d.DayNumber(), tracesPerVantage}, func() *astopo.Popularity {
		l.popGens.Inc()
		return l.Campaign().Run(d, tracesPerVantage)
	})
}

// CacheStats reports how many day artifacts have been generated so far.
// Under the singleflight contract each counter equals the number of
// distinct days requested, no matter how many goroutines asked.
func (l *Lab) CacheStats() (apnicDays, cdnDays int64) {
	return l.Sources.APNIC.CacheStats().Gens, l.Sources.CDN.CacheStats().Gens
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string // "Table 2", "Figure 4", ...
	Title string
	Text  string // rendered table / series data

	// Metrics are this run's headline numbers; Paper holds the values
	// the paper reports for the same quantities (keys match Metrics
	// where a direct counterpart exists).
	Metrics map[string]float64
	Paper   map[string]float64
}

// Runner regenerates one experiment.
type Runner struct {
	Name string // canonical ID, e.g. "Table2"
	Desc string
	Run  func(*Lab) *Result
}

// Runners lists every experiment in paper order.
func Runners() []Runner {
	return []Runner{
		{"Table1", "Summary of datasets", Table1},
		{"Table2", "Top 5 (country, AS) by estimated users", Table2},
		{"Figure1", "Users and samples over time for major French ISPs", Figure1},
		{"Figure2", "Broadband Subscriber vs APNIC user percentages", Figure2},
		{"Figure3", "Overlap of (country, org) pairs and weighted coverage", Figure3},
		{"Table3", "Per-country traffic coverage of overlapping pairs", Table3},
		{"Table4", "Agreement conditions across correlation metrics", Table4},
		{"Figure4", "Pearson vs Kendall agreement, User-Agents and traffic", Figure4},
		{"Figure5", "Outlier countries: Russia, Norway, India, Myanmar", Figure5},
		{"Figure6", "Samples vs user estimates, log-log elasticity", Figure6},
		{"Figure7", "Fraction of 2024 days above the elasticity bound", Figure7},
		{"Figure8", "K-S stability of user distributions across granularities", Figure8},
		{"Figure9", "M-Lab agreement predicts CDN agreement", Figure9},
		{"Figure10", "MIC of APNIC vs APNIC+IXP against CDN volume", Figure10},
		{"Figure11", "Consolidation: orgs needed to cover 95% of users", Figure11},
		{"Figure12", "Max User-Agent share differences across 2024 days", Figure12},
		{"Table6", "Allocated and advertised ASN changes per region", Table6},
		{"Figure13", "IXP capacity vs PNI capacity", Figure13},
		{"ExtDrivers", "Extension: key players driving consolidation", ExtDrivers},
		{"ExtTrafficModel", "Extension: cross-validated traffic model", ExtTrafficModel},
		{"ExtProxies", "Extension: public traffic proxies vs CDN ground truth", ExtProxies},
	}
}

// RunnerByName finds a runner by its canonical name (case-insensitive).
func RunnerByName(name string) (Runner, bool) {
	for _, r := range Runners() {
		if strings.EqualFold(r.Name, name) {
			return r, true
		}
	}
	return Runner{}, false
}

// sortedMetricKeys returns a result's metric keys in stable order.
func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
