package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/orgs"
	"repro/internal/report"
)

// ExtDrivers implements §6's stated future work: identify the key players
// driving access-network consolidation, per contrasting country. For each
// of a consolidating (IN), a diversifying (BR) and a merging (CH) market
// it lists the organizations with the largest share swings 2019 → 2024.
func ExtDrivers(l *Lab) *Result {
	an := elasticityAnalysis(l)
	before := yearShares(l, an, 2019)
	after := yearShares(l, an, 2024)

	metrics := map[string]float64{}
	var b strings.Builder
	for _, cc := range []string{"IN", "BR", "CH"} {
		drivers := core.ConsolidationDrivers(before[cc], after[cc], 0)
		if len(drivers) == 0 {
			continue
		}
		top := drivers[0]
		bottom := drivers[len(drivers)-1]
		var rows [][]string
		for _, d := range drivers[:min(4, len(drivers))] {
			rows = append(rows, []string{d.Org, report.Pct(100 * d.Before), report.Pct(100 * d.After), report.F(100*d.Delta, 1) + "pp"})
		}
		rows = append(rows, []string{bottom.Org, report.Pct(100 * bottom.Before), report.Pct(100 * bottom.After), report.F(100*bottom.Delta, 1) + "pp"})
		fmt.Fprintf(&b, "== %s: top gainers and biggest loser, 2019 -> 2024 ==\n", cc)
		b.WriteString(report.Table([]string{"Org", "2019", "2024", "change"}, rows))
		b.WriteString("\n")
		metrics[strings.ToLower(cc)+"_top_gain_pp"] = 100 * top.Delta
		metrics[strings.ToLower(cc)+"_top_loss_pp"] = 100 * bottom.Delta
	}
	return &Result{
		ID:      "Extension: consolidation drivers",
		Title:   "Key players driving consolidation (§6 future work)",
		Text:    b.String(),
		Metrics: metrics,
	}
}

// ExtTrafficModel implements §5.3's stated future work: train the
// APNIC+IXP traffic model where ground truth exists and evaluate it
// out-of-sample, reporting in- vs out-of-fold log-space R².
func ExtTrafficModel(l *Lab) *Result {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)
	ix := l.IXPData(PrimaryCDNDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)

	var ta, tx, tv []float64
	for _, cc := range l.W.Countries() {
		aSh := orgs.CountryShares(apnicUsers, cc)
		caps := ix.CountryCapacities(cc)
		// Sorted summation: float addition order must not depend on map
		// iteration, or tx (and the fitted R²) drifts in the last bits
		// from run to run.
		capIDs := make([]string, 0, len(caps))
		for id := range caps {
			capIDs = append(capIDs, id)
		}
		sort.Strings(capIDs)
		total := 0.0
		for _, id := range capIDs {
			total += caps[id]
		}
		// Iterate in sorted org order: fold assignment in the
		// cross-validation below is positional, so map-iteration order
		// would leak into out_sample_r2 and break run-to-run determinism.
		vols := snap.VolumeShares(cc)
		ids := make([]string, 0, len(vols))
		for id := range vols {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			ta = append(ta, aSh[id])
			if total > 0 {
				tx = append(tx, caps[id]/total)
			} else {
				tx = append(tx, 0)
			}
			tv = append(tv, vols[id])
		}
	}
	cv, ok := core.CrossValidateTrafficModel(ta, tx, tv, 5)
	if !ok {
		return &Result{
			ID:      "Extension: traffic model",
			Title:   "Cross-validated APNIC+IXP traffic model (§5.3 future work)",
			Text:    "cross-validation failed: insufficient data\n",
			Metrics: map[string]float64{"ok": 0},
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d-fold cross-validation over %d (country, org) observations\n", cv.Folds, len(tv))
	fmt.Fprintf(&b, "in-sample  log-space R²: %.3f\n", cv.InSampleR2)
	fmt.Fprintf(&b, "out-sample log-space R²: %.3f\n", cv.OutSampleR2)
	b.WriteString("\nan out-of-sample R² close to the in-sample value means the blend\n")
	b.WriteString("generalizes: traffic can be estimated from public inputs alone.\n")
	return &Result{
		ID:    "Extension: traffic model",
		Title: "Cross-validated APNIC+IXP traffic model (§5.3 future work)",
		Text:  b.String(),
		Metrics: map[string]float64{
			"in_sample_r2":  cv.InSampleR2,
			"out_sample_r2": cv.OutSampleR2,
			"observations":  float64(len(tv)),
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
