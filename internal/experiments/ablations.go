package experiments

import (
	"math"
	"sort"

	"repro/internal/apnic"
	"repro/internal/cdn"
	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/stats"
)

// Ablation experiments for the design choices DESIGN.md calls out. Each
// returns the headline metric(s) under a modified configuration, so that
// the benchmark harness can report how the paper's parameter choices
// shape the results.

// AblationKendallFilter recomputes Figure 4's User-Agent rank-agreement
// percentage with an alternative small-org filter threshold (the paper
// uses 0.5%). Without the filter, the long tail of tiny orgs degrades
// the rank statistic; too high a filter discards real signal.
func AblationKendallFilter(l *Lab, minShare float64) float64 {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)

	strong, total := 0, 0
	for _, cc := range snap.Countries() {
		apnicShares := orgs.CountryShares(apnicUsers, cc)
		if len(apnicShares) == 0 {
			continue
		}
		res := core.CompareSharesFiltered(apnicShares, snap.UAShares(cc), minShare)
		if res.Level == core.NoInformation {
			continue
		}
		total++
		if !math.IsNaN(res.Kendall) && res.Kendall >= core.StrongCorrelation {
			strong++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(strong) / float64(total)
}

// AblationBestDay compares monthly K-S stability (p90) for naive
// latest-day snapshots against the §5.1.2 best-day rule.
func AblationBestDay(l *Lab) (naiveP90, adjustedP90 float64) {
	ccs := figure8Countries(l)
	start := dates.New(2023, 6, 15)
	naive := stabilityDistances(l, ccs, start, 10, 30, false)
	adjusted := stabilityDistances(l, ccs, start, 10, 30, true)
	return stats.Quantile(naive, 0.9), stats.Quantile(adjusted, 0.9)
}

// AblationBotFilter recomputes the average APNIC↔CDN-volume Kendall-Tau
// with the CDN bot filter at a given score threshold (0 disables
// filtering; the paper uses 50). Unfiltered bot traffic inflates cloud
// and enterprise volumes and degrades rank agreement.
func AblationBotFilter(l *Lab, threshold int) float64 {
	gen := cdn.New(l.W, l.Seed)
	gen.BotThreshold = threshold
	snap := gen.Generate(PrimaryCDNDay)
	rep := l.Report(PrimaryCDNDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)

	var sum float64
	n := 0
	for _, cc := range snap.Countries() {
		apnicShares := orgs.CountryShares(apnicUsers, cc)
		if len(apnicShares) == 0 {
			continue
		}
		res := core.CompareShares(apnicShares, snap.VolumeShares(cc))
		if !math.IsNaN(res.Kendall) {
			sum += res.Kendall
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AblationSamplingRate recomputes the CDN's pair coverage (the share of
// true (country, org) pairs it observes) at a given request sampling
// rate. The paper argues 1% is sufficient; far lower rates lose the tail.
func AblationSamplingRate(l *Lab, rate float64) float64 {
	gen := cdn.New(l.W, l.Seed)
	gen.SamplingRate = rate
	snap := gen.Generate(PrimaryCDNDay)
	pairs := l.W.CountryOrgPairs(PrimaryCDNDay)
	if len(pairs) == 0 {
		return 0
	}
	seen := 0
	for _, p := range pairs {
		if _, ok := snap.Stats[p]; ok {
			seen++
		}
	}
	return 100 * float64(seen) / float64(len(pairs))
}

// AblationMICGrid recomputes Figure 10's Europe MIC gain with an
// alternative grid-budget exponent (canonical: 0.6).
func AblationMICGrid(l *Lab, exponent float64) float64 {
	rep := l.Report(PrimaryCDNDay)
	snap := l.Snapshot(PrimaryCDNDay)
	apnicUsers := rep.OrgUsersCached(l.W.Registry)

	var gains []float64
	for _, cc := range l.W.Countries() {
		m := l.W.Market(cc)
		if m.Country.Continent() != "Europe" {
			continue
		}
		apnicShares := orgs.CountryShares(apnicUsers, cc)
		vol := snap.VolumeShares(cc)
		keys := map[string]bool{}
		for k := range apnicShares {
			keys[k] = true
		}
		for k := range vol {
			keys[k] = true
		}
		if len(keys) < 8 {
			continue
		}
		var a, v []float64
		ids := make([]string, 0, len(keys))
		for k := range keys {
			ids = append(ids, k)
		}
		sort.Strings(ids) // deterministic order
		for _, id := range ids {
			a = append(a, apnicShares[id])
			v = append(v, vol[id])
		}
		mic := stats.MICBudget(a, v, exponent)
		if !math.IsNaN(mic) {
			gains = append(gains, mic)
		}
	}
	return stats.Median(gains)
}

// AblationMinSamples recomputes APNIC's (country, org) pair coverage with
// an alternative inclusion floor (the paper observes >= 120 samples). The
// floor is what drives Figure 3's "APNIC sees only ~40% of pairs".
func AblationMinSamples(l *Lab, minSamples int64) float64 {
	gen := apnic.New(l.W, l.ITU, l.Seed)
	gen.MinSamples = minSamples
	rep := gen.Generate(PrimaryCDNDay)
	users := rep.OrgUsersCached(l.W.Registry)
	pairs := l.W.CountryOrgPairs(PrimaryCDNDay)
	if len(pairs) == 0 {
		return 0
	}
	seen := 0
	for _, p := range pairs {
		if users[p] > 0 {
			seen++
		}
	}
	return 100 * float64(seen) / float64(len(pairs))
}
