package dnscount

import (
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/stats"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 11})

func TestDeterministic(t *testing.T) {
	d := dates.New(2023, 7, 20)
	a := New(testW, 2).Generate(d)
	b := New(testW, 2).Generate(d)
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("query sets differ")
	}
	for k, v := range a.Queries {
		if b.Queries[k] != v {
			t.Fatalf("nondeterministic count for %v", k)
		}
	}
}

func TestPresenceCoverageBeatsAPNIC(t *testing.T) {
	// The paper's point about the DNS method: it identifies presence for
	// nearly every network — including the tail APNIC's sample floor
	// drops.
	d := dates.New(2023, 7, 20)
	ds := New(testW, 2).Generate(d)
	pairs := testW.CountryOrgPairs(d)
	detected := 0
	for _, p := range pairs {
		if _, ok := ds.Queries[p]; ok {
			detected++
		}
	}
	if frac := float64(detected) / float64(len(pairs)); frac < 0.75 {
		t.Fatalf("DNS detects only %.1f%% of pairs", 100*frac)
	}
}

func TestCacheCompression(t *testing.T) {
	// Query counts must be strongly sublinear in users: compare the
	// query-per-user ratio of a huge org vs a tiny one.
	d := dates.New(2023, 7, 20)
	ds := New(testW, 2).Generate(d)
	type obs struct{ users, queries float64 }
	var biggest, smallest obs
	smallest.users = math.Inf(1)
	for k, q := range ds.Queries {
		o, _ := testW.Registry.ByID(k.Org)
		if o == nil || !o.Type.HostsUsers() {
			continue
		}
		u := testW.TrueUsers(k.Country, k.Org, d)
		if u > biggest.users {
			biggest = obs{u, q}
		}
		if u > 1000 && u < smallest.users {
			smallest = obs{u, q}
		}
	}
	if biggest.users < 1e7 || math.IsInf(smallest.users, 1) {
		t.Fatal("observation extraction failed")
	}
	ratioBig := biggest.queries / biggest.users
	ratioSmall := smallest.queries / smallest.users
	if ratioBig >= ratioSmall {
		t.Errorf("queries/user big=%v small=%v; caching should compress large orgs", ratioBig, ratioSmall)
	}
}

func TestMagnitudeSignalWeakerThanPresence(t *testing.T) {
	// DNS shares must correlate with user shares more weakly than they
	// would if counts were linear — the "identifies presence, not
	// magnitude" property. Concretely: within a big country, the
	// DNS-implied share of the top org understates its true share.
	d := dates.New(2023, 7, 20)
	ds := New(testW, 2).Generate(d)
	for _, cc := range []string{"DE", "FR", "US"} {
		shares := ds.CountryShares(cc)
		trueTop, dnsTop := 0.0, 0.0
		var topID string
		total := 0.0
		for _, e := range testW.Market(cc).ActiveEntries(d) {
			if !e.Org.Type.HostsUsers() {
				continue
			}
			u := testW.TrueUsers(cc, e.Org.ID, d)
			total += u
			if u > trueTop {
				trueTop = u
				topID = e.Org.ID
			}
		}
		dnsTop = shares[topID]
		if total == 0 || topID == "" {
			t.Fatalf("%s: no eyeballs", cc)
		}
		if dnsTop >= trueTop/total {
			t.Errorf("%s: DNS top share %v not compressed below true %v", cc, dnsTop, trueTop/total)
		}
	}
}

func TestInfrastructureNoise(t *testing.T) {
	// Cloud orgs emit outsized automated query loads.
	d := dates.New(2023, 7, 20)
	ds := New(testW, 2).Generate(d)
	perUser := func(typ orgs.Type) float64 {
		var q, u float64
		for k, v := range ds.Queries {
			o, _ := testW.Registry.ByID(k.Org)
			if o == nil || o.Type != typ {
				continue
			}
			q += v
			u += testW.TrueUsers(k.Country, k.Org, d)
		}
		if u == 0 {
			return 0
		}
		return q / u
	}
	if perUser(orgs.CloudProvider) < 10*perUser(orgs.FixedAccess) {
		t.Errorf("cloud queries/user %v not ≫ access %v", perUser(orgs.CloudProvider), perUser(orgs.FixedAccess))
	}
}

func TestSharesNormalizedAndSorted(t *testing.T) {
	ds := New(testW, 2).Generate(dates.New(2023, 7, 20))
	shares := ds.CountryShares("FR")
	sum := 0.0
	vals := make([]float64, 0, len(shares))
	for _, v := range shares {
		sum += v
		vals = append(vals, v)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	if stats.Max(vals) <= 0 {
		t.Fatal("no positive shares")
	}
	pairs := ds.Pairs()
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if a.Country > b.Country || (a.Country == b.Country && a.Org >= b.Org) {
			t.Fatal("Pairs not sorted")
		}
	}
}
