package dnscount

import (
	"fmt"
	"sort"

	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/orgs"
	"repro/internal/source"
)

// DatasetName is the registry name of the open-resolver query dataset.
const DatasetName = "dnscount"

// Frame converts the dataset to the uniform columnar form, one row per
// (country, org) pair sorted by country then org. Lossless:
// DatasetFromFrame reconstructs an equal dataset.
func (ds *Dataset) Frame() *source.Frame {
	pairs := make([]orgs.CountryOrg, 0, len(ds.Queries))
	for pair := range ds.Queries {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Country != pairs[j].Country {
			return pairs[i].Country < pairs[j].Country
		}
		return pairs[i].Org < pairs[j].Org
	})
	f := source.NewFrame(DatasetName, ds.Date)
	cc := f.AddStrings("CC")
	org := f.AddStrings("Org")
	q := f.AddFloats("Queries")
	for _, pair := range pairs {
		cc.Strs = append(cc.Strs, pair.Country)
		org.Strs = append(org.Strs, pair.Org)
		q.Floats = append(q.Floats, ds.Queries[pair])
	}
	return f
}

// DatasetFromFrame reconstructs the native dataset from its frame form.
func DatasetFromFrame(f *source.Frame) (*Dataset, error) {
	cc, org, q := f.Col("CC"), f.Col("Org"), f.Col("Queries")
	if cc == nil || org == nil || q == nil {
		return nil, fmt.Errorf("dnscount: frame is missing dataset columns")
	}
	ds := &Dataset{Date: f.Date, Queries: make(map[orgs.CountryOrg]float64, f.Rows())}
	for i := 0; i < f.Rows(); i++ {
		ds.Queries[orgs.CountryOrg{Country: cc.Strs[i], Org: org.Strs[i]}] = q.Floats[i]
	}
	return ds, nil
}

// Source adapts the generator to the uniform source interface, caching
// the native datasets day-keyed.
type Source struct {
	gen  *Generator
	days *source.Days[*Dataset]
}

// NewSource wraps a generator as a registrable source.
func NewSource(gen *Generator, metrics *obsv.Registry, cacheDays int) *Source {
	return &Source{
		gen:  gen,
		days: source.NewDays[*Dataset](metrics, "source", DatasetName, cacheDays),
	}
}

// Generator returns the wrapped generator.
func (s *Source) Generator() *Generator { return s.gen }

// Name implements source.Source.
func (s *Source) Name() string { return DatasetName }

// Window implements source.Source.
func (s *Source) Window() source.Window {
	return source.Window{First: source.SpanFirst, Last: source.SpanLast, Cadence: source.CadenceDaily}
}

// Dataset returns the memoized native dataset for a day.
func (s *Source) Dataset(d dates.Date) *Dataset {
	return s.days.Get(d, s.gen.Generate)
}

// Generate implements source.Source.
func (s *Source) Generate(d dates.Date) *source.Frame {
	return s.Dataset(d).Frame()
}

// CacheStats reports the native dataset cache's activity.
func (s *Source) CacheStats() source.CacheStats { return s.days.Stats() }
