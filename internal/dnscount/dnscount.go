// Package dnscount simulates the DNS-based client-identification baseline
// the paper discusses in §7 (Jiang et al., "Towards Identifying Networks
// with Internet Clients Using Public Data"): counting queries that reach
// public recursive resolvers and root servers, attributed to the client's
// AS. The paper's characterization — which this simulator reproduces — is
// that DNS analysis identifies *user presence* within an AS well, but
// does not infer user magnitude or traffic volume:
//
//   - Resolver caching compresses volume: an org with 10× the users
//     produces far less than 10× the upstream queries (popular domains
//     are answered from cache), modelled as a sublinear exponent.
//   - Infrastructure noise: enterprise and cloud networks emit heavy
//     automated query loads unrelated to human users.
//   - Coverage is excellent: even a handful of users leak some queries,
//     so presence detection beats APNIC's 120-sample floor.
//   - Resolver visibility varies wildly per network: ISPs running their
//     own recursive resolvers are nearly invisible to public-resolver
//     vantage points, so relative magnitudes are scrambled even where
//     presence is detected — "identifies the user presence within an AS,
//     [but] does not infer traffic volume" (§7).
package dnscount

import (
	"math"
	"sort"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/world"
)

// Derivation channel keys for the visibility and query-count streams.
const (
	chanVisibility uint64 = iota + 1
	chanQueries
)

// CacheExponent is the sublinear users→queries exponent induced by
// resolver caching. 1.0 would mean no cache compression.
const CacheExponent = 0.62

// Generator produces DNS query-count datasets over a world.
type Generator struct {
	W *world.World

	// MinQueries is the presence-detection floor.
	MinQueries int64

	root *rng.Stream
}

// New returns a generator with defaults.
func New(w *world.World, seed uint64) *Generator {
	return &Generator{W: w, MinQueries: 25, root: rng.New(seed).Split("dns")}
}

// Dataset is one day of per-(country, org) upstream query counts.
type Dataset struct {
	Date    dates.Date
	Queries map[orgs.CountryOrg]float64
}

// Generate produces the query counts observed on a day.
func (g *Generator) Generate(d dates.Date) *Dataset {
	ds := &Dataset{Date: d, Queries: map[orgs.CountryOrg]float64{}}
	for _, cc := range g.W.Countries() {
		m := g.W.Market(cc)
		shut := g.W.ShutdownFactor(cc, d)
		for _, e := range m.ActiveEntries(d) {
			users := g.W.TrueUsers(cc, e.Org.ID, d)
			if users <= 0 {
				continue
			}
			// Cache-compressed human queries plus automated load.
			human := 40 * pow(users, CacheExponent)
			auto := 0.0
			switch e.Org.Type {
			case orgs.Enterprise:
				auto = users * 8
			case orgs.CloudProvider, orgs.CDNProvider:
				auto = users * 300
			}
			// Persistent per-org resolver visibility: how much of the
			// org's resolution load reaches public vantage points.
			vs := g.root.Derive(chanVisibility, m.Key(), e.Key)
			visibility := vs.LogNormal(0, 0.7)
			if vs.Bool(0.3) {
				visibility *= 0.05 // org operates its own resolvers
			}
			s := g.root.Derive(chanQueries, m.Key(), e.Key, uint64(int64(d.DayNumber())))
			mean := (human + auto) * visibility * shut * s.LogNormal(0, 0.15)
			n := s.Poisson(mean)
			if n < g.MinQueries {
				continue
			}
			ds.Queries[orgs.CountryOrg{Country: cc, Org: e.Org.ID}] = float64(n)
		}
	}
	return ds
}

// pow guards math.Pow against non-positive bases.
func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// CountryShares returns one country's per-org query shares, summing to 1.
func (ds *Dataset) CountryShares(country string) map[string]float64 {
	out := map[string]float64{}
	for k, v := range ds.Queries {
		if k.Country == country {
			out[k.Org] = v
		}
	}
	// Sorted-order summation keeps the shares bit-reproducible.
	stats.NormalizeMap(out)
	return out
}

// Pairs returns the detected (country, org) pairs, sorted.
func (ds *Dataset) Pairs() []orgs.CountryOrg {
	out := make([]orgs.CountryOrg, 0, len(ds.Queries))
	for k := range ds.Queries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Country != out[j].Country {
			return out[i].Country < out[j].Country
		}
		return out[i].Org < out[j].Org
	})
	return out
}
