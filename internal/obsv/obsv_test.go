package obsv

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketEdges pins the boundary semantics: a sample equal to
// a bucket's upper bound lands in that bucket (le is inclusive), one just
// above it lands in the next, and anything beyond the last bound lands in
// +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.100001, 1, 1.5, 10, 11, 1e9} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	wantBounds := []float64{0.1, 1, 10, math.Inf(1)}
	if len(bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v", bounds)
	}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] {
			t.Fatalf("bounds[%d] = %v, want %v", i, bounds[i], wantBounds[i])
		}
	}
	// 0.05, 0.1 <= 0.1 | 0.100001, 1 <= 1 | 1.5, 10 <= 10 | 11, 1e9 → +Inf
	wantCum := []uint64{2, 4, 6, 8}
	for i := range wantCum {
		if cum[i] != wantCum[i] {
			t.Errorf("cumulative[%d] = %d, want %d (bounds %v)", i, cum[i], wantCum[i], bounds)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if want := 0.05 + 0.1 + 0.100001 + 1 + 1.5 + 10 + 11 + 1e9; math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
}

// TestHistogramUnsortedBounds checks creation sorts the bounds.
func TestHistogramUnsortedBounds(t *testing.T) {
	h := newHistogram([]float64{5, 1, 3})
	h.Observe(2)
	bounds, cum := h.Buckets()
	if bounds[0] != 1 || bounds[1] != 3 || bounds[2] != 5 {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	if cum[0] != 0 || cum[1] != 1 {
		t.Fatalf("observation landed wrong: %v", cum)
	}
}

// TestRegistryConcurrent hammers every registry entry point from many
// goroutines; run under -race this is the registry's thread-safety proof.
// Each goroutine resolves the series by name every iteration, so the
// get-or-create paths race deliberately.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared_total").Inc()
				r.Counter(fmt.Sprintf("per_goroutine_total{g=\"%d\"}", g%4)).Inc()
				r.Gauge("shared_gauge").Add(1)
				r.Histogram("shared_seconds", nil).Observe(float64(i) / 1000)
				r.GaugeFunc("fn_gauge", func() float64 { return float64(g) })
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WriteJSON(&b); err != nil {
						t.Errorf("WriteJSON: %v", err)
					}
					if err := r.WritePrometheus(&b); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("shared_total").Value(); got != goroutines*iters {
		t.Errorf("shared counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("shared_gauge").Value(); got != goroutines*iters {
		t.Errorf("shared gauge = %v, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("shared_seconds", nil).Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	var sum int64
	for g := 0; g < 4; g++ {
		sum += r.Counter(fmt.Sprintf("per_goroutine_total{g=\"%d\"}", g)).Value()
	}
	if sum != goroutines*iters {
		t.Errorf("labeled counters sum to %d, want %d", sum, goroutines*iters)
	}
}

// TestRegistrySamePointer verifies get-or-create returns a stable
// pointer, which is what lets hot paths cache it.
func TestRegistrySamePointer(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not memoized")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not memoized")
	}
	h := r.Histogram("h", []float64{1, 2})
	if r.Histogram("h", []float64{9}) != h {
		t.Error("Histogram not memoized (bounds should be first-wins)")
	}
	if bounds, _ := h.Buckets(); len(bounds) != 3 {
		t.Errorf("first registration's bounds lost: %v", bounds)
	}
}

// TestExposition spot-checks both formats on a small fixed registry.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{route="/x",class="2xx"}`).Add(3)
	r.Gauge("temp").Set(1.5)
	r.GaugeFunc("fn", func() float64 { return 7 })
	h := r.Histogram(`lat_seconds{route="/x"}`, []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(2)

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{route="/x",class="2xx"} 3`,
		"# TYPE temp gauge",
		"temp 1.5",
		"fn 7",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{route="/x",le="0.5"} 1`,
		`lat_seconds_bucket{route="/x",le="1"} 1`,
		`lat_seconds_bucket{route="/x",le="+Inf"} 2`,
		`lat_seconds_sum{route="/x"} 2.2`,
		`lat_seconds_count{route="/x"} 2`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(js.String())) {
		t.Fatalf("WriteJSON produced invalid JSON:\n%s", js.String())
	}
	for _, want := range []string{
		`"req_total{route=\"/x\",class=\"2xx\"}": 3`,
		`"temp": 1.5`,
		`"fn": 7`,
		`"count": 2`,
		`"+Inf": 2`,
	} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("json output missing %q:\n%s", want, js.String())
		}
	}
}

func TestLabel(t *testing.T) {
	if got := Label("m_total"); got != "m_total" {
		t.Errorf("Label no-labels = %q", got)
	}
	if got, want := Label("m_total", "a", "x", "b", `q"uote`), `m_total{a="x",b="q\"uote"}`; got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
}

// TestHistogramQuantile checks the bucket-interpolated quantile against
// uniformly spread observations, where the exact quantiles are known.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	// 40 observations uniform over (0, 40]: 10 per bucket.
	for i := 1; i <= 40; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
		{0.125, 5}, {0.625, 25},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Out-of-range q clamps rather than panicking.
	if got := h.Quantile(2); got != 40 {
		t.Errorf("Quantile(2) = %v, want clamp to 40", got)
	}
	if got := h.Quantile(-1); got < 0 || got > 10 {
		t.Errorf("Quantile(-1) = %v, want within first bucket", got)
	}
}

// TestHistogramQuantileEdges covers the empty histogram and observations
// past the last finite bound.
func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
	h.Observe(100) // lands in +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want clamp to last finite bound 2", got)
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
}

// TestLoadBucketsSorted guards the finer loadgen bucket set: ascending,
// sub-millisecond resolution at the bottom.
func TestLoadBucketsSorted(t *testing.T) {
	if !sort.Float64sAreSorted(LoadBuckets) {
		t.Fatalf("LoadBuckets not ascending: %v", LoadBuckets)
	}
	if LoadBuckets[0] >= 0.001 {
		t.Fatalf("LoadBuckets[0] = %v; loadgen needs sub-millisecond resolution", LoadBuckets[0])
	}
}
