package obsv

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSleeper records requested delays instead of sleeping.
type fakeSleeper struct {
	delays []time.Duration
}

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) bool {
	f.delays = append(f.delays, d)
	return ctx.Err() == nil
}

// flakyHandler fails with the given status for failures requests, then
// succeeds.
func flakyHandler(failures int, status int, retryAfter string) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(failures) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, "unavailable", status)
			return
		}
		io.WriteString(w, "payload")
	}), &calls
}

// TestRetryBackoffSchedule pins the exponential schedule with a fake
// clock and jitter pinned to its maximum: 100ms, 200ms, 400ms.
func TestRetryBackoffSchedule(t *testing.T) {
	h, calls := flakyHandler(3, http.StatusServiceUnavailable, "")
	ts := httptest.NewServer(h)
	defer ts.Close()

	reg := NewRegistry()
	var logBuf bytes.Buffer
	sl := &fakeSleeper{}
	rt := &RetryTransport{
		Policy:  RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second},
		Metrics: reg,
		Log:     log.New(&logBuf, "", 0),
		sleep:   sl.sleep,
		randF:   func() float64 { return 1 }, // full jitter: delay == base * 2^(n-1)
	}
	client := &http.Client{Transport: rt}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "payload" {
		t.Fatalf("final response = %d %q", resp.StatusCode, body)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want 4", got)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(sl.delays) != len(want) {
		t.Fatalf("slept %v, want %v", sl.delays, want)
	}
	for i := range want {
		if sl.delays[i] != want[i] {
			t.Errorf("delay[%d] = %v, want %v", i, sl.delays[i], want[i])
		}
	}
	if got := reg.Counter("httpclient_attempts_total").Value(); got != 4 {
		t.Errorf("attempts metric = %d, want 4", got)
	}
	if got := reg.Counter(`httpclient_retries_total{reason="status"}`).Value(); got != 3 {
		t.Errorf("retries metric = %d, want 3", got)
	}
	if !strings.Contains(logBuf.String(), "httpclient retry attempt=2/4") {
		t.Errorf("retry log missing attempt line:\n%s", logBuf.String())
	}
}

// TestRetryHalfJitter checks the other end of the jitter range: with
// randF pinned to 0 every delay is half the exponential base.
func TestRetryHalfJitter(t *testing.T) {
	h, _ := flakyHandler(2, http.StatusBadGateway, "")
	ts := httptest.NewServer(h)
	defer ts.Close()

	sl := &fakeSleeper{}
	rt := &RetryTransport{
		Policy: RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond},
		sleep:  sl.sleep,
		randF:  func() float64 { return 0 },
	}
	resp, err := (&http.Client{Transport: rt}).Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	DrainClose(resp.Body, 1<<20)
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(sl.delays) != 2 || sl.delays[0] != want[0] || sl.delays[1] != want[1] {
		t.Fatalf("slept %v, want %v", sl.delays, want)
	}
}

// TestRetryRespectsRetryAfter: a 429 carrying Retry-After: 3 must wait
// the server-mandated 3s, not the 100ms backoff.
func TestRetryRespectsRetryAfter(t *testing.T) {
	h, calls := flakyHandler(1, http.StatusTooManyRequests, "3")
	ts := httptest.NewServer(h)
	defer ts.Close()

	sl := &fakeSleeper{}
	rt := &RetryTransport{
		Policy: RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond},
		sleep:  sl.sleep,
		randF:  func() float64 { return 1 },
	}
	resp, err := (&http.Client{Transport: rt}).Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	DrainClose(resp.Body, 1<<20)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", calls.Load())
	}
	if len(sl.delays) != 1 || sl.delays[0] != 3*time.Second {
		t.Fatalf("slept %v, want [3s]", sl.delays)
	}
}

// TestRetryExhausted: a permanently failing server burns all attempts and
// surfaces the last response plus the exhausted counter.
func TestRetryExhausted(t *testing.T) {
	h, calls := flakyHandler(1000, http.StatusInternalServerError, "")
	ts := httptest.NewServer(h)
	defer ts.Close()

	reg := NewRegistry()
	rt := &RetryTransport{
		Policy:  RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Metrics: reg,
		sleep:   (&fakeSleeper{}).sleep,
		randF:   func() float64 { return 0 },
	}
	resp, err := (&http.Client{Transport: rt}).Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	DrainClose(resp.Body, 1<<20)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", calls.Load())
	}
	if got := reg.Counter("httpclient_retry_exhausted_total").Value(); got != 1 {
		t.Errorf("exhausted metric = %d, want 1", got)
	}
}

// TestRetryBudgetDries: with a budget of 1 token, the first failing
// request gets its one retry and the next failing request fails fast.
func TestRetryBudgetDries(t *testing.T) {
	h, calls := flakyHandler(1000, http.StatusServiceUnavailable, "")
	ts := httptest.NewServer(h)
	defer ts.Close()

	reg := NewRegistry()
	rt := &RetryTransport{
		Policy:  RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Budget: 1},
		Metrics: reg,
		sleep:   (&fakeSleeper{}).sleep,
		randF:   func() float64 { return 0 },
	}
	client := &http.Client{Transport: rt}
	for i := 0; i < 2; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		DrainClose(resp.Body, 1<<20)
	}
	// Request 1: attempt + retry (spends the only token). Request 2:
	// attempt, budget dry, no retry. 3 server calls total.
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if got := reg.Counter("httpclient_retry_budget_dry_total").Value(); got != 1 {
		t.Errorf("budget-dry metric = %d, want 1", got)
	}
}

// TestRetryTransportError: connection-refused errors are retried too; a
// backend that comes back mid-sequence recovers the request.
func TestRetryTransportError(t *testing.T) {
	h, _ := flakyHandler(0, 0, "")
	ts := httptest.NewServer(h)
	addr := ts.URL
	ts.Close() // kill the backend: first attempts get connection refused

	var attempts atomic.Int64
	base := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if attempts.Add(1) <= 2 {
			return nil, errors.New("dial tcp: connection refused")
		}
		rec := httptest.NewRecorder()
		io.WriteString(rec, "revived")
		return rec.Result(), nil
	})
	reg := NewRegistry()
	sl := &fakeSleeper{}
	rt := &RetryTransport{
		Base:    base,
		Policy:  RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond},
		Metrics: reg,
		sleep:   sl.sleep,
		randF:   func() float64 { return 0 },
	}
	req, _ := http.NewRequest("GET", addr, nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip after revival: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "revived" {
		t.Fatalf("body = %q", body)
	}
	if got := reg.Counter(`httpclient_retries_total{reason="error"}`).Value(); got != 2 {
		t.Errorf("error-retries metric = %d, want 2", got)
	}
	if len(sl.delays) != 2 {
		t.Errorf("slept %v, want two backoffs", sl.delays)
	}
}

// TestRetryCancelledContext: a cancelled request must not retry.
func TestRetryCancelledContext(t *testing.T) {
	var attempts atomic.Int64
	base := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		attempts.Add(1)
		return nil, errors.New("boom")
	})
	rt := &RetryTransport{
		Base:   base,
		Policy: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		sleep:  (&fakeSleeper{}).sleep,
		randF:  func() float64 { return 0 },
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://example.invalid/", nil)
	if _, err := rt.RoundTrip(req); err == nil {
		t.Fatal("want error from cancelled context")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("cancelled request attempted %d times, want 1", got)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("2"); d != 2*time.Second {
		t.Errorf("seconds form = %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("empty = %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage = %v", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 8*time.Second || d > 10*time.Second {
		t.Errorf("http-date form = %v", d)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Errorf("past http-date = %v, want 0", d)
	}
}
