package obsv

import (
	"bytes"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeNow returns a clock that advances by step on every call, so
// middleware latency becomes deterministic.
func fakeNow(step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}

// TestMiddlewareRecords drives a handler through the middleware and
// checks per-route counters by status class, the latency histogram, and
// the byte counter.
func TestMiddlewareRecords(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	m := &HTTPMetrics{
		Registry: reg,
		Log:      log.New(&logBuf, "", 0),
		Route: func(r *http.Request) string {
			if strings.HasPrefix(r.URL.Path, "/item/") {
				return "/item/:id"
			}
			return r.URL.Path
		},
		Buckets: []float64{0.001, 1},
		now:     fakeNow(10 * time.Millisecond),
	}
	h := m.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/boom":
			http.Error(w, "kaboom", http.StatusInternalServerError)
		case "/implicit":
			w.Write([]byte("ok!")) // no WriteHeader: implicit 200
		default:
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("hello"))
		}
	}))

	for _, path := range []string{"/item/1", "/item/2", "/boom", "/implicit"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	}

	if got := reg.Counter(`http_requests_total{route="/item/:id",class="2xx"}`).Value(); got != 2 {
		t.Errorf("item 2xx count = %d, want 2 (route collapsing broken?)", got)
	}
	if got := reg.Counter(`http_requests_total{route="/boom",class="5xx"}`).Value(); got != 1 {
		t.Errorf("boom 5xx count = %d, want 1", got)
	}
	if got := reg.Counter(`http_requests_total{route="/implicit",class="2xx"}`).Value(); got != 1 {
		t.Errorf("implicit-200 response not classed 2xx (count = %d)", got)
	}
	if got := reg.Counter(`http_response_bytes_total{route="/item/:id"}`).Value(); got != 2*int64(len("hello")) {
		t.Errorf("item bytes = %d, want %d", got, 2*len("hello"))
	}

	// Each request sees exactly one 10ms tick between the two now()
	// calls, so every observation must sit in the (0.001, 1] bucket.
	hist := reg.Histogram(`http_request_seconds{route="/item/:id"}`, nil)
	if hist.Count() != 2 {
		t.Fatalf("latency observations = %d, want 2", hist.Count())
	}
	bounds, cum := hist.Buckets()
	if cum[0] != 0 || cum[1] != 2 {
		t.Errorf("latency landed in wrong buckets: bounds %v cumulative %v", bounds, cum)
	}
	if got, want := hist.Sum(), 0.020; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("latency sum = %v, want %v", got, want)
	}

	logs := logBuf.String()
	for _, want := range []string{
		"method=GET route=/item/:id path=/item/1 status=200 bytes=5 dur=10ms",
		"route=/boom path=/boom status=500",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("request log missing %q:\n%s", want, logs)
		}
	}
}

// TestMiddlewareNilLogAndRoute checks the minimal configuration works
// and the raw path becomes the route label.
func TestMiddlewareNilLogAndRoute(t *testing.T) {
	reg := NewRegistry()
	m := &HTTPMetrics{Registry: reg}
	h := m.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/raw", nil))
	if got := reg.Counter(`http_requests_total{route="/raw",class="4xx"}`).Value(); got != 1 {
		t.Errorf("raw-route 4xx count = %d, want 1", got)
	}
}

// TestMiddlewareConcurrent exercises the per-(route, class) series cache
// under contention; meaningful under -race.
func TestMiddlewareConcurrent(t *testing.T) {
	reg := NewRegistry()
	m := &HTTPMetrics{Registry: reg}
	h := m.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("x"))
	}))
	var wg sync.WaitGroup
	const goroutines, iters = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/hot", nil))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter(`http_requests_total{route="/hot",class="2xx"}`).Value(); got != goroutines*iters {
		t.Errorf("hot route count = %d, want %d", got, goroutines*iters)
	}
}
