package obsv

import (
	"log"
	"net/http"
	"sync"
	"time"
)

// HTTPMetrics is an http.Handler middleware that records, per route:
//
//	http_requests_total{route=...,class=...}   counter per status class
//	http_request_seconds{route=...}            latency histogram
//	http_response_bytes_total{route=...}       bytes written
//
// and, when Log is non-nil, emits one structured (logfmt-style) request
// log line per request. The route label comes from Route, which callers
// use to collapse parameterized paths (/v1/reports/2024-01-01.csv →
// /v1/reports/:date) so series cardinality stays bounded; a nil Route
// uses the raw URL path.
//
// Metric pointers are resolved once per (route, class) and memoized, so
// steady-state requests do a lock-free counter add and one histogram
// observe — no map-string building on the hot path.
type HTTPMetrics struct {
	Registry *Registry
	Log      *log.Logger                // nil disables request logging
	Route    func(*http.Request) string // nil: raw r.URL.Path
	Buckets  []float64                  // nil: DefBuckets
	now      func() time.Time           // test hook; nil: time.Now

	mu     sync.RWMutex
	series map[routeClass]*routeSeries
}

type routeClass struct {
	route string
	class string
}

type routeSeries struct {
	requests *Counter
	latency  *Histogram
	bytes    *Counter
}

// statusClass maps an HTTP status code to its Prometheus-style class
// label ("2xx", "4xx", ...).
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

func (m *HTTPMetrics) lookup(route, class string) *routeSeries {
	key := routeClass{route, class}
	m.mu.RLock()
	s := m.series[key]
	m.mu.RUnlock()
	if s != nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.series == nil {
		m.series = map[routeClass]*routeSeries{}
	}
	if s = m.series[key]; s == nil {
		s = &routeSeries{
			requests: m.Registry.Counter(Label("http_requests_total", "route", route, "class", class)),
			latency:  m.Registry.Histogram(Label("http_request_seconds", "route", route), m.Buckets),
			bytes:    m.Registry.Counter(Label("http_response_bytes_total", "route", route)),
		}
		m.series[key] = s
	}
	return s
}

// statusWriter captures the status code and byte count of a response.
// Handlers that never call WriteHeader implicitly send 200.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Wrap instruments next with metrics and request logging.
func (m *HTTPMetrics) Wrap(next http.Handler) http.Handler {
	now := m.now
	if now == nil {
		now = time.Now
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := now().Sub(start)

		route := r.URL.Path
		if m.Route != nil {
			route = m.Route(r)
		}
		s := m.lookup(route, statusClass(sw.status))
		s.requests.Inc()
		s.latency.Observe(elapsed.Seconds())
		s.bytes.Add(sw.bytes)

		if m.Log != nil {
			m.Log.Printf("http method=%s route=%s path=%s status=%d bytes=%d dur=%s",
				r.Method, route, r.URL.Path, sw.status, sw.bytes, elapsed.Round(time.Microsecond))
		}
	})
}
