package obsv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the /metrics endpoint. The default response is the
// Prometheus text exposition format (what `curl /metrics` and a scraper
// both want); `?format=json` returns the same series as one flat,
// expvar-compatible JSON object whose keys are the series names.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// snapshot copies the series maps under the read lock so exposition can
// format without holding it. Metric values are still read live (they are
// atomics), which is exactly what a scrape wants.
func (r *Registry) snapshot() (cs map[string]*Counter, gs map[string]*Gauge, fns map[string]func() float64, hs map[string]*Histogram) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cs = make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		cs[k] = v
	}
	gs = make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gs[k] = v
	}
	fns = make(map[string]func() float64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	hs = make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hs[k] = v
	}
	return cs, gs, fns, hs
}

// WriteJSON writes every series as one flat JSON object, keys sorted, in
// the spirit of expvar: counters and gauges map to numbers, histograms to
// {"count":N,"sum":S,"buckets":{"<le>":<cumulative>,...}}.
func (r *Registry) WriteJSON(w io.Writer) error {
	cs, gs, fns, hs := r.snapshot()
	bw := bufio.NewWriter(w)
	bw.WriteString("{")
	first := true
	field := func(name string) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		bw.WriteString("\n  ")
		bw.WriteString(strconv.Quote(name))
		bw.WriteString(": ")
	}
	for _, name := range sortedKeys(cs) {
		field(name)
		fmt.Fprintf(bw, "%d", cs[name].Value())
	}
	for _, name := range sortedKeys(gs) {
		field(name)
		bw.WriteString(jsonFloat(gs[name].Value()))
	}
	for _, name := range sortedKeys(fns) {
		field(name)
		bw.WriteString(jsonFloat(fns[name]()))
	}
	for _, name := range sortedKeys(hs) {
		field(name)
		h := hs[name]
		bounds, cum := h.Buckets()
		fmt.Fprintf(bw, "{\"count\": %d, \"sum\": %s, \"buckets\": {", h.Count(), jsonFloat(h.Sum()))
		for i := range bounds {
			if i > 0 {
				bw.WriteString(", ")
			}
			fmt.Fprintf(bw, "%s: %d", strconv.Quote(leLabel(bounds[i])), cum[i])
		}
		bw.WriteString("}}")
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}

// WritePrometheus writes every series in the Prometheus text exposition
// format, with # TYPE lines and deterministic (sorted) series order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	cs, gs, fns, hs := r.snapshot()
	bw := bufio.NewWriter(w)
	typed := map[string]bool{}
	writeType := func(series, kind string) {
		base, _ := splitSeries(series)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, name := range sortedKeys(cs) {
		writeType(name, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, cs[name].Value())
	}
	for _, name := range sortedKeys(gs) {
		writeType(name, "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, promFloat(gs[name].Value()))
	}
	for _, name := range sortedKeys(fns) {
		writeType(name, "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, promFloat(fns[name]()))
	}
	for _, name := range sortedKeys(hs) {
		writeType(name, "histogram")
		h := hs[name]
		base, labels := splitSeries(name)
		bounds, cum := h.Buckets()
		for i := range bounds {
			fmt.Fprintf(bw, "%s_bucket%s %d\n", base, withLabel(labels, "le", leLabel(bounds[i])), cum[i])
		}
		fmt.Fprintf(bw, "%s_sum%s %s\n", base, braced(labels), promFloat(h.Sum()))
		fmt.Fprintf(bw, "%s_count%s %d\n", base, braced(labels), h.Count())
	}
	return bw.Flush()
}

// splitSeries splits `name{k="v",...}` into the bare metric name and the
// label body (without braces); labels is "" when the series is unlabeled.
func splitSeries(series string) (base, labels string) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, ""
	}
	return series[:i], strings.TrimSuffix(series[i+1:], "}")
}

// braced re-wraps a label body, returning "" for no labels.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// withLabel appends one more label to a (possibly empty) label body and
// wraps it in braces.
func withLabel(labels, key, val string) string {
	pair := key + "=" + strconv.Quote(val)
	if labels == "" {
		return "{" + pair + "}"
	}
	return "{" + labels + "," + pair + "}"
}

// leLabel formats a bucket bound the way Prometheus expects.
func leLabel(bound float64) string {
	if math.IsInf(bound, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(bound, 'g', -1, 64)
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// jsonFloat renders a float as JSON, mapping non-finite values (illegal
// in JSON) to null.
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Label builds a series name from a base metric name and alternating
// key, value label pairs: Label("x_total", "route", "/v1/dates") is
// `x_total{route="/v1/dates"}`. Panics on an odd number of pairs — label
// sets are compile-time shapes, not data.
func Label(base string, kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obsv.Label: odd number of key/value arguments")
	}
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(kv[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}
