// Package obsv is the repo's dependency-free observability layer: a
// race-safe metrics registry (counters, gauges, bounded-bucket latency
// histograms), an http.Handler middleware that records per-route request
// counts / status classes / latency and emits structured request logs,
// a /metrics exposition endpoint (expvar-compatible JSON plus Prometheus
// text format), and a retrying http.RoundTripper with exponential
// backoff, jitter, a retry budget, and Retry-After support.
//
// The hot paths (Counter.Inc, Gauge.Set, Histogram.Observe) are plain
// atomic operations and allocate nothing; registry lookups take a
// read-lock and are meant to be done once per route/series, with the
// returned metric pointer reused across requests.
//
// Series naming follows Prometheus conventions: a metric name optionally
// followed by a brace-delimited label set, e.g.
//
//	http_requests_total{route="/v1/reports",class="2xx"}
//
// The registry treats the whole string as the series key; the Prometheus
// exposition splits it back apart so histogram series can splice in their
// "le" label.
package obsv

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds. Thirteen buckets from 1ms to 10s cover everything from a warm
// cache hit to a cold full-report generation.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// LoadBuckets are finer-grained latency bounds for load generation,
// where warm cache hits sit well under a millisecond and the interesting
// resolution is 100µs–250ms: DefBuckets would fold the entire warm path
// into its first bucket and make p99 estimates useless.
var LoadBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus exposition to stay
// honest; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. Buckets are upper
// bounds in increasing order with an implicit +Inf bucket at the end;
// Observe is lock-free and allocation-free.
type Histogram struct {
	bounds []float64       // sorted upper bounds, immutable after creation
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// distribution from the bucket counts, interpolating linearly inside the
// bucket that straddles the target rank (Prometheus histogram_quantile
// semantics). The estimate is bounded by the bucket resolution; callers
// needing exact percentiles must keep raw samples. Returns NaN when the
// histogram is empty; a quantile landing in the +Inf bucket clamps to
// the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if float64(cum+n) < rank || n == 0 {
			cum += n
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket: no upper bound to interpolate to
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*(rank-float64(cum))/float64(n)
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns the bucket upper bounds and their cumulative counts
// (Prometheus semantics: counts[i] is the number of observations <=
// bounds[i]; a final +Inf entry equals Count). The slices are fresh
// copies.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append(bounds, h.bounds...)
	bounds = append(bounds, math.Inf(1))
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// Registry holds named metric series. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use; the getters
// create the series on first use and return the same pointer thereafter,
// so callers should hold on to the pointer rather than re-resolving it
// on every event.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter series named name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge series named name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — for surfacing existing atomics (cache sizes, generation counts)
// without double-counting. Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns the histogram series named name, creating it with the
// given bucket bounds if needed. If the series already exists the bounds
// argument is ignored (first registration wins); nil bounds means
// DefBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// sortedKeys returns the keys of m in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
