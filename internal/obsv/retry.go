package obsv

import (
	"context"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy configures RetryTransport. The zero value means defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// <= 0 means 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. <= 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff. <= 0 means 5s. A server's
	// Retry-After may exceed it (see RoundTrip).
	MaxDelay time.Duration
	// Budget is the transport-wide retry budget in tokens: every retry
	// spends one token, every successful attempt earns back a tenth,
	// and the pool is capped at Budget. When the pool is dry, requests
	// fail fast with their last result instead of retrying — the
	// classic guard against retry storms amplifying an outage.
	// <= 0 means 32.
	Budget int
}

func (p RetryPolicy) maxAttempts() int { return defInt(p.MaxAttempts, 4) }

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return 100 * time.Millisecond
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 5 * time.Second
}

func (p RetryPolicy) budget() int { return defInt(p.Budget, 32) }

func defInt(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// retryAfterCap bounds how long a server's Retry-After header can make us
// wait; respecting a multi-minute value would turn one slow request into
// a hung client.
const retryAfterCap = 30 * time.Second

// RetryTransport is an http.RoundTripper that retries transient failures
// (transport errors, 429, 5xx) with exponential backoff and equal
// jitter, honors Retry-After, spends from a transport-wide retry budget,
// and records per-attempt metrics:
//
//	httpclient_attempts_total                    every attempt
//	httpclient_retries_total{reason=...}         retries by cause (error|status)
//	httpclient_retry_exhausted_total             gave up with attempts left... none
//	httpclient_retry_budget_dry_total            retry suppressed by the budget
//
// Requests whose context is done are never retried, and a request with a
// consumed, non-rewindable body is returned as-is after its first
// attempt.
type RetryTransport struct {
	// Base performs the actual attempts; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Policy holds the knobs; its zero value is a sane default.
	Policy RetryPolicy
	// Metrics receives per-attempt counters when non-nil.
	Metrics *Registry
	// Log, when non-nil, gets one line per retry with the delay and cause.
	Log *log.Logger

	// sleep and randF are test seams: sleep blocks for d unless ctx ends
	// first, randF yields [0,1) jitter. Nil means real time / math/rand.
	sleep func(ctx context.Context, d time.Duration) bool
	randF func() float64

	budgetOnce sync.Once
	tokens     atomic.Int64 // tenths of a retry token
}

func (t *RetryTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *RetryTransport) count(name string) {
	if t.Metrics != nil {
		t.Metrics.Counter(name).Inc()
	}
}

// spendToken takes one retry token (10 tenths) if available.
func (t *RetryTransport) spendToken() bool {
	t.budgetOnce.Do(func() { t.tokens.Store(int64(t.Policy.budget()) * 10) })
	for {
		cur := t.tokens.Load()
		if cur < 10 {
			return false
		}
		if t.tokens.CompareAndSwap(cur, cur-10) {
			return true
		}
	}
}

// earnToken credits a tenth of a token for a successful attempt, capped
// at the configured budget.
func (t *RetryTransport) earnToken() {
	t.budgetOnce.Do(func() { t.tokens.Store(int64(t.Policy.budget()) * 10) })
	max := int64(t.Policy.budget()) * 10
	for {
		cur := t.tokens.Load()
		if cur >= max {
			return
		}
		if t.tokens.CompareAndSwap(cur, cur+1) {
			return
		}
	}
}

// retryableStatus reports whether a response status merits a retry.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// RoundTrip implements http.RoundTripper.
func (t *RetryTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	maxAttempts := t.Policy.maxAttempts()
	var resp *http.Response
	var err error
	for attempt := 1; ; attempt++ {
		resp, err = t.base().RoundTrip(req)
		t.count("httpclient_attempts_total")

		retryable := false
		reason := ""
		var retryAfter time.Duration
		switch {
		case err != nil:
			retryable, reason = true, "error"
		case retryableStatus(resp.StatusCode):
			retryable, reason = true, "status"
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		default:
			t.earnToken()
			return resp, nil
		}

		if !retryable || attempt >= maxAttempts || req.Context().Err() != nil || !rewindBody(req) {
			if attempt >= maxAttempts {
				t.count("httpclient_retry_exhausted_total")
			}
			return resp, err
		}
		if !t.spendToken() {
			t.count("httpclient_retry_budget_dry_total")
			return resp, err
		}
		if resp != nil {
			DrainClose(resp.Body, 64<<10)
		}

		delay := t.backoff(attempt)
		if retryAfter > delay {
			delay = min(retryAfter, retryAfterCap)
		}
		t.count(Label("httpclient_retries_total", "reason", reason))
		if t.Log != nil {
			cause := resp.Status
			if err != nil {
				cause = err.Error()
			}
			t.Log.Printf("httpclient retry attempt=%d/%d url=%s delay=%s cause=%q",
				attempt+1, maxAttempts, req.URL, delay, cause)
		}
		if !t.sleepFor(req.Context(), delay) {
			return nil, req.Context().Err()
		}
	}
}

// backoff computes the jittered delay after the attempt-th try: an
// exponentially growing base capped at MaxDelay, with "equal jitter"
// (half fixed, half uniform) so synchronized clients spread out.
func (t *RetryTransport) backoff(attempt int) time.Duration {
	d := t.Policy.baseDelay() << (attempt - 1)
	if max := t.Policy.maxDelay(); d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	r := t.randF
	if r == nil {
		r = rand.Float64
	}
	return d/2 + time.Duration(r()*float64(d/2))
}

func (t *RetryTransport) sleepFor(ctx context.Context, d time.Duration) bool {
	if t.sleep != nil {
		return t.sleep(ctx, d)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// rewindBody prepares req for another attempt. Bodyless requests (all of
// this repo's) always rewind; a consumed body needs GetBody.
func rewindBody(req *http.Request) bool {
	if req.Body == nil || req.Body == http.NoBody {
		return true
	}
	if req.GetBody == nil {
		return false
	}
	body, err := req.GetBody()
	if err != nil {
		return false
	}
	req.Body = body
	return true
}

// parseRetryAfter parses a Retry-After header value: either delay
// seconds or an HTTP date. Returns 0 when absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

// DrainClose reads at most limit bytes from rc and closes it. Draining
// before close is what lets the HTTP client return the underlying
// connection to its keep-alive pool; the bound keeps a hostile or huge
// error body from turning cleanup into an unbounded read.
func DrainClose(rc io.ReadCloser, limit int64) {
	if rc == nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(rc, limit))
	rc.Close()
}
