package world

import (
	"repro/internal/dates"
	"repro/internal/orgs"
)

// yearFrac splits a date into its anchor year and the fraction of the year
// elapsed, for linear interpolation between Jan-1 anchors.
func yearFrac(d dates.Date) (year int, frac float64) {
	start := dates.YearStart(d.Year)
	next := dates.YearStart(d.Year + 1)
	span := next.Sub(start)
	return d.Year, float64(d.Sub(start)) / float64(span)
}

// TotalUsers returns the country's Internet user count on a date,
// interpolating the yearly penetration anchors.
func (w *World) TotalUsers(country string, d dates.Date) float64 {
	m := w.markets[country]
	if m == nil {
		return 0
	}
	y, f := yearFrac(d)
	u0 := m.Country.InternetUsers(y)
	u1 := m.Country.InternetUsers(y + 1)
	return u0 + f*(u1-u0)
}

// Share returns the org's user share in a country on a date,
// interpolating Jan-1 share anchors.
func (w *World) Share(country, orgID string, d dates.Date) float64 {
	m := w.markets[country]
	if m == nil {
		return 0
	}
	y, f := yearFrac(d)
	s0 := w.shareInYear(m, orgID, y)
	s1 := w.shareInYear(m, orgID, y+1)
	return s0 + f*(s1-s0)
}

// TrueUsers returns the actual number of human users of an org in a
// country on a date — the quantity every dataset is trying to estimate.
func (w *World) TrueUsers(country, orgID string, d dates.Date) float64 {
	return w.TotalUsers(country, d) * w.Share(country, orgID, d)
}

// Entry returns the market entry for an org in a country, or nil. Lookups
// hit the per-market index built at construction, so the call is O(1) and
// safe in per-(org, day) loops.
func (w *World) Entry(country, orgID string) *Entry {
	m := w.markets[country]
	if m == nil {
		return nil
	}
	return m.byOrg[orgID]
}

// VPNFunnelTotal returns the number of foreign users funneled through the
// VPN hub's egress IPs on a date. It grows roughly linearly from ~0.5M in
// 2013 to ~5.5M in 2024 — on the order of the hub country's own Internet
// population, which is what makes the VPN org rank among the largest
// "networks" globally in APNIC's view (the paper's 23rd-largest
// observation, §4.4) while the CDN sees almost nobody there.
func (w *World) VPNFunnelTotal(d dates.Date) float64 {
	if w.VPNOrgID == "" {
		return 0
	}
	y, f := yearFrac(d)
	yearF := float64(y) + f
	frac := (yearF - 2013) / 11
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	base := 0.5e6 + frac*5.0e6
	// Scenario VPN-adoption surges scale the funnel; the factor is exactly
	// 1 for the paper scenario, which skips the multiply and keeps the
	// historical float math bit for bit.
	if f := w.shocks.VPNFactor(d); f != 1 {
		base *= f
	}
	return base
}

// VPNOriginShare returns the fraction of funneled VPN users originating
// from a country (zero for non-origins).
func (w *World) VPNOriginShare(country string) float64 {
	return w.vpnOrigin[country]
}

// VPNOrigins returns the origin-country mix of the VPN funnel.
func (w *World) VPNOrigins() map[string]float64 {
	out := make(map[string]float64, len(w.vpnOrigin))
	for k, v := range w.vpnOrigin {
		out[k] = v
	}
	return out
}

// APNICUsers returns the users an IP-geolocation-based measurement (the
// APNIC pipeline) attributes to (country, org) on a date: true users,
// plus — for the VPN org in its hub country — all funneled foreign users,
// whose egress IPs geolocate to the hub.
func (w *World) APNICUsers(country, orgID string, d dates.Date) float64 {
	u := w.TrueUsers(country, orgID, d)
	if orgID == w.VPNOrgID && w.isVPNHub(country) {
		u += w.VPNFunnelTotal(d)
	}
	return u
}

// CDNUsers returns the users a true-geolocation measurement (the CDN
// pipeline) attributes to (country, org) on a date: true users, plus —
// for the VPN org in an *origin* country — that country's slice of the
// funnel. The hub sees only the VPN's real local users.
func (w *World) CDNUsers(country, orgID string, d dates.Date) float64 {
	u := w.TrueUsers(country, orgID, d)
	if orgID == w.VPNOrgID && !w.isVPNHub(country) {
		u += w.VPNFunnelTotal(d) * w.vpnOrigin[country]
	}
	return u
}

func (w *World) isVPNHub(country string) bool {
	m := w.markets[country]
	return m != nil && m.Country.VPNHub
}

// CountryOrgPairs enumerates every (country, org) pair with nonzero CDN
// users on a date: each market's active entries, plus the VPN org's
// origin-country appearances. Activity only changes at year granularity,
// so the slice is cached per year; callers must treat it as read-only.
func (w *World) CountryOrgPairs(d dates.Date) []orgs.CountryOrg {
	return w.pairs.Get(d.Year, func() []orgs.CountryOrg {
		out := make([]orgs.CountryOrg, 0, 4096)
		for _, code := range w.codes {
			for _, e := range w.markets[code].Entries {
				if !activeIn(e, d.Year) {
					continue
				}
				out = append(out, orgs.CountryOrg{Country: code, Org: e.Org.ID})
			}
			if w.VPNOrgID != "" && w.vpnOrigin[code] > 0 {
				out = append(out, orgs.CountryOrg{Country: code, Org: w.VPNOrgID})
			}
		}
		return out
	})
}

// ActiveEntries returns a market's entries active in the date's year.
// The slice is cached per year (entry and exit are annual events) and
// shared between callers; callers must treat it as read-only.
func (m *Market) ActiveEntries(d dates.Date) []*Entry {
	return m.active.Get(d.Year, func() []*Entry {
		out := make([]*Entry, 0, len(m.Entries))
		for _, e := range m.Entries {
			if activeIn(e, d.Year) {
				out = append(out, e)
			}
		}
		return out
	})
}

// OrgCount returns the number of organizations active in a country in a
// year (used by the consolidation analysis and the RIR substrate).
func (w *World) OrgCount(country string, year int) int {
	m := w.markets[country]
	if m == nil {
		return 0
	}
	n := 0
	for _, e := range m.Entries {
		if activeIn(e, year) {
			n++
		}
	}
	return n
}

// ShutdownFactor returns the fraction of normal Internet activity
// surviving in a country on a specific day: 1.0 normally, ~0.1 on a
// government-shutdown day. Shutdown days are *world events*: every
// measurement system (APNIC sampling, CDN logs, M-Lab tests) observes the
// same realization, which is what makes the Myanmar comparison of §4.4
// meaningful — the CDN's short observation window reacts to individual
// shutdown days while APNIC's 60-day window smooths over them.
func (w *World) ShutdownFactor(country string, d dates.Date) float64 {
	m := w.markets[country]
	if m == nil || !m.hasShutdowns() {
		return 1
	}
	return w.shutdownFactor(m, d)
}

// chanShutdown is the world's event-channel derivation key.
const chanShutdown uint64 = 1

// hasShutdowns reports whether the market can ever see a shutdown day:
// a baseline rate from the geo registry, or a scenario regime override.
func (m *Market) hasShutdowns() bool {
	return m.Country.ShutdownRate != 0 || (m.shocks != nil && m.shocks.HasShutdownRegime())
}

// shutdownRate resolves the effective per-day shutdown probability: the
// geo registry's baseline, overridden by whichever scenario regime covers
// the day.
func (m *Market) shutdownRate(dayNumber int) float64 {
	rate := m.Country.ShutdownRate
	if m.shocks != nil && m.shocks.HasShutdownRegime() {
		rate = m.shocks.ShutdownRate(dayNumber, rate)
	}
	return rate
}

func (w *World) shutdownFactor(m *Market, d dates.Date) float64 {
	dn := d.DayNumber()
	rate := m.shutdownRate(dn)
	if rate == 0 {
		return 1
	}
	// The realization stream is keyed by (country, day) alone, not by the
	// rate: a scenario that raises the rate reuses the same underlying
	// draws, so baseline shutdown days stay shutdown days and the regime
	// only adds new ones — and the paper scenario (no overrides)
	// reproduces the historical realization exactly.
	s := w.events.Derive(chanShutdown, m.key, uint64(int64(dn)))
	if s.Bool(rate) {
		return 0.1
	}
	return 1
}

// ShutdownWindowFactor averages ShutdownFactor over the window days
// ending at d — the suppression a window-averaged measurement like APNIC
// experiences. The average is identical for every org in the country, so
// it is cached per (country, day, window); concurrent callers share one
// singleflight fill. A window <= 0 has no days to average and returns 1
// (it used to divide an empty sum and poison callers with NaN).
func (w *World) ShutdownWindowFactor(country string, d dates.Date, window int) float64 {
	m := w.markets[country]
	if m == nil || !m.hasShutdowns() || window <= 0 {
		return 1
	}
	return m.winShut.Get(winKey{day: d.DayNumber(), window: window}, func() float64 {
		total := 0.0
		for i := 0; i < window; i++ {
			total += w.shutdownFactor(m, d.AddDays(-i))
		}
		return total / float64(window)
	})
}
