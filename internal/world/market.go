package world

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/orgs"
	"repro/internal/rng"
)

// buildMarket creates one country's organization market: a Zipf-like body
// of eyeball networks, a long tail of tiny networks, plus enterprise,
// cloud and CDN orgs. Weights, types and per-org parameters all come from
// the country's dedicated random stream.
func (w *World) buildMarket(c geo.Country, s *rng.Stream) (*Market, error) {
	m := &Market{Country: c}
	users24 := c.InternetUsers(2024)
	if users24 < 1 {
		users24 = 1
	}

	// Eyeball networks: count grows with the user base, the market body
	// follows a Zipf law.
	nEyeball := int(2.5*math.Log10(users24)) - 8
	if nEyeball < 3 {
		nEyeball = 3
	}
	if nEyeball > 26 {
		nEyeball = 26
	}
	nEyeball += s.Intn(3)

	// Market steepness varies by country: some markets are dominated by
	// one incumbent (high alpha), mature telecom markets often have
	// three or four near-equal players (low alpha) — which is exactly
	// where survey-vs-APNIC rank inversions can turn Figure 2's per-
	// country R² negative.
	zipfAlpha := s.Range(0.55, 1.25)
	for k := 0; k < nEyeball; k++ {
		typ := w.eyeballType(s, k)
		e := w.newEntry(c, s, typ, k,
			1/math.Pow(float64(k+1), zipfAlpha))
		m.Entries = append(m.Entries, e)
	}

	// Long tail of tiny networks (regional ISPs, WISPs): these are the
	// pairs the CDN observes but APNIC's ≥120-sample floor drops (§4.2).
	nTiny := 12 + s.Intn(22)
	for k := 0; k < nTiny; k++ {
		weight := math.Pow(10, s.Range(-5, -3.4))
		e := w.newEntry(c, s, orgs.FixedAccess, 100+k, weight)
		m.Entries = append(m.Entries, e)
	}

	// Enterprise networks: present everywhere, few users, modest traffic.
	nEnt := 1 + s.Intn(3)
	for k := 0; k < nEnt; k++ {
		e := w.newEntry(c, s, orgs.Enterprise, 200+k, s.Range(0.002, 0.006))
		m.Entries = append(m.Entries, e)
	}

	// Cloud / CDN orgs in sizable markets. Southern Asia gets a heavier
	// cloud footprint — the mechanism behind the paper's India traffic
	// outlier (§4.4): huge CDN volume, almost no ad-visible users.
	if users24 > 5e6 {
		nCloud := 1 + s.Intn(2)
		if c.Subregion == geo.SouthernAsia {
			nCloud += 2
		}
		for k := 0; k < nCloud; k++ {
			e := w.newEntry(c, s, orgs.CloudProvider, 300+k, s.Range(0.0005, 0.002))
			if c.Subregion == geo.SouthernAsia {
				e.TrafficPerUser *= 5
			}
			m.Entries = append(m.Entries, e)
		}
		if users24 > 3e7 {
			e := w.newEntry(c, s, orgs.CDNProvider, 350, s.Range(0.0003, 0.001))
			m.Entries = append(m.Entries, e)
		}
	}
	return m, nil
}

// eyeballType picks the network type for the k-th eyeball org: the top of
// the market mixes converged carriers and pure-fixed incumbents (their
// differing mobile exposure is what makes mobile-heavy carriers look
// overrepresented against fixed-only broadband surveys, Figure 2), the
// middle adds mobile carriers, the tail is mostly fixed.
func (w *World) eyeballType(s *rng.Stream, k int) orgs.Type {
	switch {
	case k < 2:
		if s.Bool(0.35) {
			return orgs.FixedAccess
		}
		return orgs.ConvergedAccess
	case k < 5:
		switch s.Intn(3) {
		case 0:
			return orgs.MobileCarrier
		case 1:
			return orgs.FixedAccess
		default:
			return orgs.ConvergedAccess
		}
	default:
		if s.Bool(0.2) {
			return orgs.MobileCarrier
		}
		return orgs.FixedAccess
	}
}

// newEntry creates an org plus its market entry with all per-org
// simulation parameters.
func (w *World) newEntry(c geo.Country, s *rng.Stream, typ orgs.Type, idx int, weight float64) *Entry {
	nASN := 1
	if typ.HostsUsers() && idx < 5 {
		nASN = 1 + s.Intn(4) // big carriers run sibling ASes
	} else if s.Bool(0.2) {
		nASN = 2
	}
	asns := make([]uint32, nASN)
	for i := range asns {
		asns[i] = w.nextASN
		w.nextASN++
	}
	id := fmt.Sprintf("%s-%s-%02d", c.Code, typeTag(typ), idx)
	o := &orgs.Org{
		ID:   id,
		Name: orgName(c.Code, typ, idx, s),
		Type: typ,
		Home: c.Code,
		ASNs: asns,
	}
	if err := w.Registry.Add(o); err != nil {
		// Construction is fully controlled; a duplicate here is a bug.
		panic(err)
	}

	asnW := make([]float64, nASN)
	total := 0.0
	for i := range asnW {
		asnW[i] = s.Range(0.5, 1.5)
		total += asnW[i]
	}
	for i := range asnW {
		asnW[i] /= total
	}

	e := &Entry{
		Org:        o,
		Key:        rng.KeyString(id),
		BaseWeight: weight,
		EntryYear:  0,
		ASNWeights: asnW,
	}

	// Per-type parameters.
	switch typ {
	case orgs.FixedAccess:
		e.MobileShare = s.Range(0, 0.1)
		e.AdFactor = s.Range(0.95, 1.05)
		e.TrafficPerUser = s.LogNormal(0, 0.14)
		e.ReqPerUser = 80 * s.LogNormal(0, 0.10)
		e.BotShare = s.Range(0.05, 0.12)
	case orgs.MobileCarrier:
		e.MobileShare = s.Range(0.9, 1.0)
		e.AdFactor = s.Range(1.0, 1.15) // mobile browsing sees more ads
		e.TrafficPerUser = 0.7 * s.LogNormal(0, 0.14)
		e.ReqPerUser = 70 * s.LogNormal(0, 0.10)
		e.BotShare = s.Range(0.03, 0.08)
	case orgs.ConvergedAccess:
		e.MobileShare = s.Range(0.25, 0.85)
		e.AdFactor = s.Range(0.95, 1.1)
		e.TrafficPerUser = 0.9 * s.LogNormal(0, 0.14)
		e.ReqPerUser = 80 * s.LogNormal(0, 0.10)
		e.BotShare = s.Range(0.04, 0.1)
	case orgs.Enterprise:
		e.MobileShare = s.Range(0.05, 0.2)
		e.AdFactor = s.Range(0.15, 0.35) // workplace browsing, fewer ads
		e.TrafficPerUser = 0.4 * s.LogNormal(0, 0.4)
		e.ReqPerUser = 25 * s.LogNormal(0, 0.3)
		e.BotShare = s.Range(0.15, 0.35)
	case orgs.CloudProvider:
		e.MobileShare = 0
		e.AdFactor = s.Range(0.01, 0.04) // machines do not watch ads
		e.TrafficPerUser = 40 * s.LogNormal(0, 0.5)
		e.ReqPerUser = 400 * s.LogNormal(0, 0.4)
		e.BotShare = s.Range(0.4, 0.6)
	case orgs.CDNProvider:
		e.MobileShare = 0
		e.AdFactor = s.Range(0.01, 0.03)
		e.TrafficPerUser = 25 * s.LogNormal(0, 0.5)
		e.ReqPerUser = 300 * s.LogNormal(0, 0.4)
		e.BotShare = s.Range(0.3, 0.5)
	case orgs.VPNProvider:
		e.MobileShare = s.Range(0.2, 0.4)
		e.AdFactor = 1.0
		e.TrafficPerUser = s.LogNormal(0, 0.3)
		e.ReqPerUser = 45 * s.LogNormal(0, 0.25)
		e.BotShare = s.Range(0.1, 0.25)
	}
	e.UAPerUser = s.Range(1.15, 1.45)

	// Persistent APNIC sampling bias: the weaker Google's local
	// ecosystem, the wilder the per-org distortion (§4.1, §4.4). The
	// superlinear exponent keeps high-reach countries nearly clean while
	// low-reach markets (Russia, Korea's Naver-dominated web, Brazil)
	// get rank-scrambling distortions.
	biasSigma := 0.08 + 1.1*math.Pow(1-c.AdReach, 1.3)
	e.APNICBias = s.LogNormal(0, biasSigma)

	// Proxy effect: where Google's ecosystem is weak, a disproportionate
	// share of the ad impressions that *do* arrive come through cloud /
	// relay infrastructure. This is the paper's Russia anomaly (§4.4): a
	// minor cloud org that APNIC ranks among the largest "networks"
	// globally while the CDN sees almost no users there.
	if (typ == orgs.CloudProvider || typ == orgs.CDNProvider) && c.AdReach < 0.45 {
		e.AdFactor = s.Range(50, 150)
	}

	// CDN affinity: how much of the org's activity the CDN observes.
	e.CDNAffinity = clamp01(s.Range(0.75, 0.95))
	if c.Freedom < 30 && c.Freedom > 0 && s.Bool(0.25) {
		// Some networks in censored countries barely reach the CDN at
		// all — these become APNIC-only (country, org) pairs (§4.2).
		e.CDNAffinity *= 0.002
	}
	return e
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func typeTag(t orgs.Type) string {
	switch t {
	case orgs.FixedAccess:
		return "FIX"
	case orgs.MobileCarrier:
		return "MOB"
	case orgs.ConvergedAccess:
		return "CNV"
	case orgs.Enterprise:
		return "ENT"
	case orgs.CloudProvider:
		return "CLD"
	case orgs.CDNProvider:
		return "CDN"
	case orgs.VPNProvider:
		return "VPN"
	default:
		return "ORG"
	}
}

// applyMergers injects the §6 market events: a probabilistic wave of
// European and African consolidation with scenario overrides pinning
// specific markets (the paper's guaranteed Sunrise+UPC and
// Vodafone+Unitymedia events are scenario.Paper()'s CH and DE overrides),
// and the Latin-American entry of new access networks after 2019.
//
// The draw sequence is pinned: within each country's stream the wave year
// is drawn before any override applies, then the Bool(prob) gate, then
// mergeOne's victim pick. Overrides for countries outside the European
// wave run on a dedicated child split, which never advances the parent —
// both properties keep the paper scenario byte-identical to the old
// hard-coded code path.
func (w *World) applyMergers(s *rng.Stream) {
	forced := w.shocks.Mergers()
	for _, code := range w.codes {
		m := w.markets[code]
		region := m.Country.Subregion
		cs := s.Split("country/" + code)

		inEuropeanWave := false
		switch geo.ContinentOf(region) {
		case geo.Europe:
			inEuropeanWave = true
			prob := 0.35
			year := 2019 + cs.Intn(4)
			if ov, ok := forced[code]; ok {
				prob, year = ov.Probability, ov.Year
			}
			if cs.Bool(prob) {
				w.mergeOne(m, cs, year)
			}
		case geo.Africa:
			if cs.Bool(0.30) {
				w.mergeOne(m, cs, 2019+cs.Intn(5))
			}
		}
		if ov, ok := forced[code]; ok && !inEuropeanWave {
			ms := cs.Split("scenario-merger")
			if ms.Bool(ov.Probability) {
				w.mergeOne(m, ms, ov.Year)
			}
		}

		// Latin America: a wave of new access networks enters after
		// 2019, strongly diversifying the market (§6 reports the number
		// of orgs needed for 95% coverage growing by up to +300%).
		if region == geo.SouthAmer || region == geo.CentralAmerica || region == geo.Caribbean {
			nNew := 8 + cs.Intn(8)
			for k := 0; k < nNew; k++ {
				e := w.newEntry(m.Country, cs.Split(fmt.Sprintf("entrant/%d", k)), orgs.FixedAccess, 400+k, math.Pow(10, cs.Range(-2.2, -1.1)))
				e.EntryYear = 2019 + cs.Intn(5)
				m.Entries = append(m.Entries, e)
			}
		}
	}
}

// mergeOne absorbs a mid-market eyeball org into the market leader in the
// given year.
func (w *World) mergeOne(m *Market, s *rng.Stream, year int) {
	var eyeballs []*Entry
	for _, e := range m.Entries {
		if e.Org.Type.HostsUsers() && e.ExitYear == 0 {
			eyeballs = append(eyeballs, e)
		}
	}
	if len(eyeballs) < 4 {
		return
	}
	sort.Slice(eyeballs, func(i, j int) bool { return eyeballs[i].BaseWeight > eyeballs[j].BaseWeight })
	victim := eyeballs[1+s.Intn(3)] // one of ranks 2..4
	victim.ExitYear = year
	victim.AbsorbedBy = eyeballs[0].Org.ID
}

// applyEntrants injects the scenario's new-entrant orgs: one org per
// event, home-registered, with a market entry in the home country and in
// each listed presence country. Per-country parameters derive from the
// entrant's own stream, so scenarios with no entrants (the paper) consume
// zero draws here.
func (w *World) applyEntrants(s *rng.Stream) error {
	for _, ev := range w.shocks.Entrants() {
		es := s.Split("entrant/" + ev.Name)
		nASN := 1 + es.Intn(3)
		asns := make([]uint32, nASN)
		for i := range asns {
			asns[i] = w.nextASN
			w.nextASN++
		}
		o := &orgs.Org{
			ID:   ev.Name,
			Name: ev.Name,
			Type: orgs.ConvergedAccess,
			Home: ev.Home,
			ASNs: asns,
		}
		if err := w.Registry.Add(o); err != nil {
			return fmt.Errorf("world: scenario entrant %s: %w", ev.Name, err)
		}
		presence := append([]string{ev.Home}, ev.Countries...)
		for _, cc := range presence {
			m := w.markets[cc]
			if m == nil {
				return fmt.Errorf("world: scenario entrant %s: no market for %s", ev.Name, cc)
			}
			cs := es.Split("cc/" + cc)
			asnW := make([]float64, nASN)
			total := 0.0
			for i := range asnW {
				asnW[i] = cs.Range(0.5, 1.5)
				total += asnW[i]
			}
			for i := range asnW {
				asnW[i] /= total
			}
			e := &Entry{
				Org:            o,
				Key:            rng.KeyString(o.ID),
				BaseWeight:     ev.Weight,
				EntryYear:      ev.EntryYear,
				MobileShare:    ev.MobileShare,
				AdFactor:       cs.Range(0.95, 1.05),
				TrafficPerUser: cs.LogNormal(0, 0.14),
				ReqPerUser:     80 * cs.LogNormal(0, 0.10),
				UAPerUser:      cs.Range(1.15, 1.45),
				BotShare:       cs.Range(0.04, 0.1),
				CDNAffinity:    clamp01(cs.Range(0.75, 0.95)),
				ASNWeights:     asnW,
			}
			biasSigma := 0.08 + 1.1*math.Pow(1-m.Country.AdReach, 1.3)
			e.APNICBias = cs.LogNormal(0, biasSigma)
			m.Entries = append(m.Entries, e)
			if cc != ev.Home {
				w.entrantAway = append(w.entrantAway, entrantPresence{country: cc, entry: e})
			}
		}
	}
	return nil
}

// buildVPN creates the Norway-style VPN provider whose egress IPs
// geolocate to the hub while its users are spread across other countries.
func (w *World) buildVPN(s *rng.Stream) {
	var hub *Market
	for _, code := range w.codes {
		if w.markets[code].Country.VPNHub {
			hub = w.markets[code]
			break
		}
	}
	if hub == nil {
		return
	}
	e := w.newEntry(hub.Country, s, orgs.VPNProvider, 0, 0.004)
	hub.Entries = append(hub.Entries, e)
	w.VPNOrgID = e.Org.ID

	// Origin mix of the funneled users.
	origins := []string{"DE", "GB", "US", "FR", "SE", "DK", "NL", "PL", "FI", "RU"}
	total := 0.0
	weights := make([]float64, len(origins))
	for i := range origins {
		weights[i] = s.Range(0.5, 1.5)
		total += weights[i]
	}
	for i, o := range origins {
		if _, ok := w.markets[o]; ok {
			w.vpnOrigin[o] = weights[i] / total
		}
	}
}

// consolidationGamma returns the market-concentration exponent for a
// region and year: shares evolve as BaseWeight^gamma, so gamma > 1
// concentrates the market and gamma < 1 diversifies it. The anchors
// encode §6's observations (2019 as baseline; Latin America diversifies,
// Southern Asia concentrates hard, Europe and Africa consolidate).
func consolidationGamma(region geo.Subregion, year int) float64 {
	g2013, g2019 := 0.94, 1.0
	var g2024 float64
	switch region {
	case geo.SouthAmer, geo.CentralAmerica, geo.Caribbean:
		g2024 = 0.62
	case geo.SouthernAsia:
		g2024 = 1.85
	case geo.EasternEurope, geo.SouthernEurope, geo.NorthernEurope, geo.WesternEurope:
		g2024 = 1.28
	case geo.EasternAfrica, geo.SouthernAfrica, geo.NorthernAfrica, geo.OtherAfrica:
		g2024 = 1.32
	case geo.SouthEastAsia:
		g2024 = 1.22
	case geo.EasternAsia, geo.OtherAsia:
		g2024 = 1.15
	case geo.AustraliaNZ:
		g2024 = 1.12
	default:
		g2024 = 1.04
	}
	switch {
	case year <= 2013:
		return g2013
	case year <= 2019:
		f := float64(year-2013) / 6
		return g2013 + f*(g2019-g2013)
	case year >= 2024:
		return g2024
	default:
		f := float64(year-2019) / 5
		return g2019 + f*(g2024-g2019)
	}
}

// computeShares fills the market's per-year normalized share table.
func (w *World) computeShares(m *Market) {
	m.shares = map[int]map[string]float64{}
	for y := w.Cfg.FirstYear; y <= w.Cfg.LastYear+1; y++ {
		gamma := consolidationGamma(m.Country.Subregion, y)
		row := map[string]float64{}
		total := 0.0
		// Effective weight: active orgs plus mass inherited from
		// absorbed orgs.
		eff := map[string]float64{}
		eyeball := map[string]bool{}
		for _, e := range m.Entries {
			if !activeIn(e, y) {
				continue
			}
			eff[e.Org.ID] += e.BaseWeight
			eyeball[e.Org.ID] = e.Org.Type.HostsUsers()
		}
		for _, e := range m.Entries {
			if e.ExitYear != 0 && y >= e.ExitYear && e.AbsorbedBy != "" {
				if _, ok := eff[e.AbsorbedBy]; ok {
					eff[e.AbsorbedBy] += e.BaseWeight
				}
			}
		}
		ids := make([]string, 0, len(eff))
		for id := range eff {
			ids = append(ids, id)
		}
		sort.Strings(ids) // deterministic summation order
		for _, id := range ids {
			v := eff[id]
			if eyeball[id] {
				// The consolidation tilt models the *access-market*
				// dynamics of §6; enterprise, cloud, CDN and VPN orgs
				// keep their base weight.
				v = math.Pow(v, gamma)
			}
			row[id] = v
			total += v
		}
		if total > 0 {
			for _, id := range ids {
				row[id] /= total
			}
		}
		m.shares[y] = row
	}
}

func activeIn(e *Entry, year int) bool {
	if e.EntryYear != 0 && year < e.EntryYear {
		return false
	}
	if e.ExitYear != 0 && year >= e.ExitYear {
		return false
	}
	return true
}

// shareInYear returns the Jan-1 share for an org in a market's country.
func (w *World) shareInYear(m *Market, orgID string, year int) float64 {
	if year < w.Cfg.FirstYear {
		year = w.Cfg.FirstYear
	}
	if year > w.Cfg.LastYear+1 {
		year = w.Cfg.LastYear + 1
	}
	return m.shares[year][orgID]
}
