// Package world builds the synthetic ground-truth Internet that every
// dataset generator observes through its own biased channel. It models,
// per country: the organization market structure (access, mobile,
// converged, enterprise, cloud, CDN and VPN networks with sibling ASes),
// market-share trajectories from 2013 to 2024 (with the regional
// consolidation trends of the paper's §6, explicit mergers like
// Sunrise+UPC, and Latin-American new entrants), per-organization traffic
// intensity, ad exposure, and the Norway VPN funnel of §4.4.
//
// The world is the *truth*; the apnic, cdn, broadband, mlab and ixp
// packages are *measurement processes* over it. The paper's experiments
// then quantify how well one measurement (APNIC) agrees with the others —
// exactly as the original study did against proprietary data.
package world

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/netdb"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/syncx"
)

// Config parameterizes world generation.
type Config struct {
	// Seed determines every random choice; the same seed reproduces the
	// same world bit for bit.
	Seed uint64

	// FirstYear and LastYear bound the simulated period. The zero value
	// is replaced by the paper's range, 2013 and 2024.
	FirstYear int
	LastYear  int

	// Scenario is the declarative event set applied at construction time.
	// nil selects scenario.Paper() — the byte-pinned baseline encoding
	// exactly the events the source paper documents, so every existing
	// call site builds the same world it always did.
	Scenario *scenario.Scenario
}

func (c Config) withDefaults() Config {
	if c.FirstYear == 0 {
		c.FirstYear = 2013
	}
	if c.LastYear == 0 {
		c.LastYear = 2024
	}
	return c
}

// Entry is one organization's position in one country's market.
type Entry struct {
	Org *orgs.Org

	// Key is the org's precomputed integer derivation key (rng.KeyString
	// of the org ID), so per-day noise streams can be derived without
	// formatting labels in the hot loops.
	Key uint64

	// BaseWeight is the unnormalized market weight before the yearly
	// consolidation tilt; EntryYear/ExitYear bound the org's activity.
	BaseWeight float64
	EntryYear  int
	ExitYear   int    // 0 = never exits
	AbsorbedBy string // org ID gaining this org's users after ExitYear

	// MobileShare is the fraction of the org's users on mobile access.
	// The broadband-subscriber survey (§3.3) only sees the fixed share.
	MobileShare float64

	// AdFactor scales how strongly this org's users are exposed to the
	// ad-impression sampling behind APNIC: ~1 for eyeball networks,
	// near zero for cloud/CDN networks whose "users" are machines.
	AdFactor float64

	// APNICBias is a persistent per-org multiplicative distortion of ad
	// sampling, large in countries where Google's ecosystem is weak —
	// the mechanism behind rank disagreements in Russia or Korea (§4.1).
	APNICBias float64

	// TrafficPerUser is the relative CDN traffic intensity of one user
	// of this org (cloud orgs are orders of magnitude above eyeballs).
	TrafficPerUser float64

	// ReqPerUser is the mean CDN HTTP requests per user per day.
	ReqPerUser float64

	// UAPerUser is the mean distinct User-Agents per user.
	UAPerUser float64

	// BotShare is the fraction of this org's CDN requests that are
	// bot-originated (filtered by the bot-score pipeline, §3.4).
	BotShare float64

	// CDNAffinity is the fraction of the org's user activity that
	// touches the simulated CDN at all (low where the CDN has little
	// local presence or is blocked).
	CDNAffinity float64

	// ASNWeights splits the org's users across its sibling ASes; it has
	// the same length as Org.ASNs and sums to 1.
	ASNWeights []float64
}

// Market is one country's organization market.
type Market struct {
	Country geo.Country
	Entries []*Entry

	// shares[year][orgID] is the normalized user share at Jan 1 of year.
	shares map[int]map[string]float64

	key   uint64            // precomputed country derivation key
	byOrg map[string]*Entry // org ID → entry index for O(1) Entry lookups

	// shocks is the country's compiled scenario view (nil when the
	// scenario leaves the country untouched) — the seam the measurement
	// packages consult in their hot loops.
	shocks *scenario.CountryShocks

	// active caches ActiveEntries per year (activity only changes at year
	// granularity); winShut caches ShutdownWindowFactor per (day, window).
	// Both are singleflight so concurrent runners share one fill.
	active  syncx.Cache[int, []*Entry]
	winShut syncx.Cache[winKey, float64]
}

type winKey struct{ day, window int }

// Key returns the market's precomputed country derivation key.
func (m *Market) Key() uint64 { return m.key }

// Shocks returns the country's compiled scenario events, or nil when the
// world's scenario does not touch this country. Generators check the nil
// fast path once per call, so unaffected countries pay nothing.
func (m *Market) Shocks() *scenario.CountryShocks { return m.shocks }

// World is the generated ground truth.
type World struct {
	Cfg       Config
	Registry  *orgs.Registry
	DB        *netdb.DB
	VPNOrgID  string             // the Norway VPN provider
	vpnOrigin map[string]float64 // origin-country mix of funneled users

	markets map[string]*Market
	codes   []string // sorted country codes with markets
	nextASN uint32   // global ASN assignment cursor

	// shocks is the compiled scenario the world was built under; never
	// nil (a nil Config.Scenario compiles the paper baseline).
	shocks *scenario.Compiled

	// entrantAway lists scenario-entrant market entries outside their
	// org's home country, in deterministic order, for address allocation:
	// their prefixes are registered at home while their users are local.
	entrantAway []entrantPresence

	events *rng.Stream // real-world event realizations (shutdown days)

	// pairs caches CountryOrgPairs per year: entry/exit is annual, and the
	// VPN origin mix is static, so a whole year shares one slice.
	pairs syncx.Cache[int, []orgs.CountryOrg]

	// compiled holds the artifact-backed view of DB, built on first use
	// and shared by every consumer (HTTP servers, log pipelines, Labs).
	compiledOnce sync.Once
	compiled     *netdb.CompiledDB
}

// Build generates a world from the configuration. Generation is
// deterministic in cfg.Seed.
func Build(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	shocks, err := scenario.Compile(cfg.Scenario)
	if err != nil {
		return nil, fmt.Errorf("world: %w", err)
	}
	root := rng.New(cfg.Seed)
	w := &World{
		Cfg:       cfg,
		Registry:  orgs.NewRegistry(),
		DB:        netdb.NewDB(),
		markets:   map[string]*Market{},
		vpnOrigin: map[string]float64{},
		shocks:    shocks,
	}
	alloc := netdb.NewAllocator()
	w.nextASN = 1000
	w.events = root.Split("events")

	for _, c := range geo.All() {
		m, err := w.buildMarket(c, root.Split("market/"+c.Code))
		if err != nil {
			return nil, err
		}
		m.shocks = shocks.Country(c.Code)
		w.markets[c.Code] = m
		w.codes = append(w.codes, c.Code)
	}
	sort.Strings(w.codes)

	w.applyMergers(root.Split("mergers"))
	w.buildVPN(root.Split("vpn"))
	// Scenario entrants draw from their own split, so the paper scenario
	// (no entrants, zero draws) leaves every other stream untouched.
	if err := w.applyEntrants(root.Split("scenario/entrants")); err != nil {
		return nil, err
	}

	// Precompute yearly share tables (address sizing depends on them) and
	// the per-market indexes: the org→entry map behind Entry lookups and
	// the integer derivation keys the hot loops use instead of labels.
	for _, code := range w.codes {
		m := w.markets[code]
		w.computeShares(m)
		m.key = rng.KeyString(code)
		m.byOrg = make(map[string]*Entry, len(m.Entries))
		for _, e := range m.Entries {
			m.byOrg[e.Org.ID] = e
		}
	}

	// Allocate and announce IP space once org structure is final.
	if err := w.allocateAddresses(alloc); err != nil {
		return nil, err
	}
	return w, nil
}

// MustBuild is Build for tests and examples; it panics on error.
func MustBuild(cfg Config) *World {
	w, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// CompiledDB returns the routing database compiled into its immutable
// artifact form (netdb.Compile → netdb.LoadBytes), built once per world.
// The world's announcements are final after Build, so the compiled view
// answers every query identically to DB while sharing one flat byte
// artifact across all consumers. Returns nil if compilation fails
// (callers fall back to the live trie via RoutingDB).
func (w *World) CompiledDB() *netdb.CompiledDB {
	w.compiledOnce.Do(func() {
		buf, err := netdb.Compile(w.DB)
		if err != nil {
			return
		}
		cdb, err := netdb.LoadBytes(buf)
		if err != nil {
			return
		}
		w.compiled = cdb
	})
	return w.compiled
}

// RoutingDB returns the preferred read view of the routing database: the
// compiled artifact when available, the live trie otherwise.
func (w *World) RoutingDB() netdb.Database {
	if c := w.CompiledDB(); c != nil {
		return c
	}
	return w.DB
}

// Countries returns the country codes with markets, sorted.
func (w *World) Countries() []string {
	return append([]string(nil), w.codes...)
}

// Market returns one country's market, or nil if unknown.
func (w *World) Market(code string) *Market {
	return w.markets[code]
}

// Years returns the simulated year range.
func (w *World) Years() (first, last int) {
	return w.Cfg.FirstYear, w.Cfg.LastYear
}

// Scenario returns the compiled scenario the world was built under;
// never nil.
func (w *World) Scenario() *scenario.Compiled { return w.shocks }

// ScenarioName returns the name of the world's scenario.
func (w *World) ScenarioName() string { return w.shocks.Name() }

// allocateAddresses hands out a prefix per ASN and announces it with both
// geolocation views. VPN egress blocks are handled in buildVPN.
func (w *World) allocateAddresses(alloc *netdb.Allocator) error {
	for _, code := range w.codes {
		m := w.markets[code]
		for _, e := range m.Entries {
			if e.Org.Home != code {
				continue // announced from the home market only
			}
			peak := w.peakUsers(m, e)
			for i, asn := range e.Org.ASNs {
				// ISPs NAT many users behind each address; 0.3 addresses
				// per user, with blocks capped at /12, keeps the whole
				// 5-billion-user world inside unicast IPv4 space.
				hosts := int64(peak * e.ASNWeights[i] * 0.3)
				if hosts < 256 {
					hosts = 256
				}
				bits := netdb.BitsForHosts(hosts)
				if bits < 12 {
					bits = 12
				}
				p, err := alloc.Alloc(bits)
				if err != nil {
					return fmt.Errorf("world: allocating for %s: %w", e.Org.ID, err)
				}
				if err := w.DB.Announce(p, netdb.Route{
					ASN:               asn,
					RegisteredCountry: code,
					TrueCountry:       code,
				}); err != nil {
					return err
				}
			}
		}
	}
	// Scenario-entrant away markets: like VPN egress blocks, the prefix
	// registers to the org's home country while the users are local —
	// the Starlink-style geolocation bias.
	for _, pr := range w.entrantAway {
		p, err := alloc.Alloc(18)
		if err != nil {
			return err
		}
		if err := w.DB.Announce(p, netdb.Route{
			ASN:               pr.entry.Org.ASNs[0],
			RegisteredCountry: pr.entry.Org.Home,
			TrueCountry:       pr.country,
		}); err != nil {
			return err
		}
	}
	// VPN egress blocks: registered in the hub, users elsewhere.
	if w.VPNOrgID != "" {
		vpnOrg, _ := w.Registry.ByID(w.VPNOrgID)
		hub := vpnOrg.Home
		for _, origin := range sortedKeys(w.vpnOrigin) {
			p, err := alloc.Alloc(20)
			if err != nil {
				return err
			}
			if err := w.DB.Announce(p, netdb.Route{
				ASN:               vpnOrg.ASNs[0],
				RegisteredCountry: hub,
				TrueCountry:       origin,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// peakUsers returns the org's maximum user count across the simulated
// years, used to size its address blocks.
func (w *World) peakUsers(m *Market, e *Entry) float64 {
	peak := 0.0
	for y := w.Cfg.FirstYear; y <= w.Cfg.LastYear; y++ {
		u := m.Country.InternetUsers(y) * w.shareInYear(m, e.Org.ID, y)
		if u > peak {
			peak = u
		}
	}
	return peak
}

// entrantPresence is one scenario-entrant entry outside its home market.
type entrantPresence struct {
	country string
	entry   *Entry
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
