package world_test

import (
	"math"
	"net/netip"
	"testing"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/netdb"
	"repro/internal/scenario"
	"repro/internal/world"
)

// mustScenario builds a world under a named builtin scenario.
func mustScenario(t *testing.T, seed uint64, name string) *world.World {
	t.Helper()
	s, ok := scenario.ByName(name)
	if !ok {
		t.Fatalf("no builtin scenario %q", name)
	}
	w, err := world.Build(world.Config{Seed: seed, Scenario: s})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestNilScenarioIsPaper pins the refactor's central identity: a nil
// Config.Scenario and an explicit scenario.Paper() build the same world —
// same markets, same per-org parameters, same event realizations. The
// byte-level pins against the pre-refactor generator outputs live in the
// dataset packages' golden tests; this covers the construction path.
func TestNilScenarioIsPaper(t *testing.T) {
	a := world.MustBuild(world.Config{Seed: 123})
	b := world.MustBuild(world.Config{Seed: 123, Scenario: scenario.Paper()})

	if a.ScenarioName() != "paper" || b.ScenarioName() != "paper" {
		t.Fatalf("scenario names = %q, %q", a.ScenarioName(), b.ScenarioName())
	}
	ac, bc := a.Countries(), b.Countries()
	if len(ac) != len(bc) {
		t.Fatalf("country counts differ: %d vs %d", len(ac), len(bc))
	}
	for i, cc := range ac {
		if bc[i] != cc {
			t.Fatalf("country order differs at %d: %s vs %s", i, cc, bc[i])
		}
		ma, mb := a.Market(cc), b.Market(cc)
		if len(ma.Entries) != len(mb.Entries) {
			t.Fatalf("%s: entry counts differ: %d vs %d", cc, len(ma.Entries), len(mb.Entries))
		}
		for j, ea := range ma.Entries {
			eb := mb.Entries[j]
			if ea.Org.ID != eb.Org.ID || ea.BaseWeight != eb.BaseWeight ||
				ea.EntryYear != eb.EntryYear || ea.ExitYear != eb.ExitYear ||
				ea.AbsorbedBy != eb.AbsorbedBy || ea.AdFactor != eb.AdFactor ||
				ea.APNICBias != eb.APNICBias || ea.TrafficPerUser != eb.TrafficPerUser {
				t.Fatalf("%s entry %d differs: %+v vs %+v", cc, j, ea, eb)
			}
		}
	}
	// Event realizations: every Myanmar shutdown day must agree.
	d := dates.New(2024, 1, 1)
	for i := 0; i < 365; i++ {
		day := d.AddDays(i)
		if fa, fb := a.ShutdownFactor("MM", day), b.ShutdownFactor("MM", day); fa != fb {
			t.Fatalf("MM shutdown factor differs on %v: %v vs %v", day, fa, fb)
		}
	}
	if fa, fb := a.VPNFunnelTotal(d), b.VPNFunnelTotal(d); fa != fb {
		t.Fatalf("VPN funnel differs: %v vs %v", fa, fb)
	}
}

// TestShutdownWindowFactorNonPositiveWindow is the regression test for the
// window guard: the pre-scenario code divided the (empty) sum by the
// window, so window == 0 returned NaN and a negative window returned +Inf
// or NaN — either poisons every downstream estimate for a shutdown-prone
// country. A non-positive window has no days to average and must be the
// neutral factor 1.
func TestShutdownWindowFactorNonPositiveWindow(t *testing.T) {
	w := world.MustBuild(world.Config{Seed: 42})
	// Myanmar has a nonzero baseline ShutdownRate, so the guard — not the
	// no-shutdowns fast path — is what protects it.
	if w.Market("MM").Country.ShutdownRate == 0 {
		t.Fatal("test premise broken: MM must have a baseline shutdown rate")
	}
	d := dates.New(2024, 4, 21)
	for _, window := range []int{0, -1, -30} {
		f := w.ShutdownWindowFactor("MM", d, window)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("window %d: factor %v escaped the guard", window, f)
		}
		if f != 1 {
			t.Fatalf("window %d: factor = %v, want 1", window, f)
		}
	}
	// Sanity: a real window still averages to something in (0, 1].
	if f := w.ShutdownWindowFactor("MM", d, 60); f <= 0 || f > 1 {
		t.Fatalf("window 60: factor = %v out of (0,1]", f)
	}
}

// TestCGNATRolloutSuppressesSamples checks the cgnat-wave counterfactual
// end to end: Brazil's ad-visible sample counts collapse by the rollout
// factor while the ground truth (and hence the ITU denominator) is
// untouched — the users-per-sample explosion that flips the elasticity
// check in the fleet sweeps.
func TestCGNATRolloutSuppressesSamples(t *testing.T) {
	const seed = 42
	paper := world.MustBuild(world.Config{Seed: seed})
	cgnat := mustScenario(t, seed, "cgnat-wave")

	d := dates.New(2024, 4, 21)
	sum := func(w *world.World) int64 {
		g := apnic.New(w, itu.New(w, seed), seed)
		var total int64
		for _, c := range g.DayCounts(d) {
			if c.CC == "BR" {
				total += c.Samples
			}
		}
		return total
	}
	base, shocked := sum(paper), sum(cgnat)
	if base == 0 {
		t.Fatal("paper world has no BR samples")
	}
	ratio := float64(shocked) / float64(base)
	// Rollout factor is 0.05; integer rounding keeps the ratio near it.
	if ratio > 0.1 || ratio < 0.01 {
		t.Fatalf("BR sample ratio = %v, want ≈ 0.05", ratio)
	}
	// Ground truth unmoved: same true users under both worlds.
	if a, b := paper.TotalUsers("BR", d), cgnat.TotalUsers("BR", d); a != b {
		t.Fatalf("CGNAT must not change true users: %v vs %v", a, b)
	}
}

// TestShutdownRegimeRaisesShutdownDays checks that a scenario regime adds
// shutdown days during its window and only reuses the baseline
// realization: every paper-world shutdown day inside the window is still a
// shutdown day under the regime (same underlying draws, higher threshold).
func TestShutdownRegimeRaisesShutdownDays(t *testing.T) {
	const seed = 7
	paper := world.MustBuild(world.Config{Seed: seed})
	reg := mustScenario(t, seed, "shutdown-regimes")

	// The builtin pins Iran at rate 0.45 during 2022-09-15..2024-12-31.
	start := dates.New(2023, 1, 1)
	var basedays, regdays int
	for i := 0; i < 365; i++ {
		day := start.AddDays(i)
		pf := paper.ShutdownFactor("IR", day)
		rf := reg.ShutdownFactor("IR", day)
		if pf < 1 {
			basedays++
			if rf >= 1 {
				t.Fatalf("%v: baseline shutdown day vanished under the regime", day)
			}
		}
		if rf < 1 {
			regdays++
		}
	}
	if regdays <= basedays {
		t.Fatalf("regime shutdown days = %d, baseline = %d; regime must add days", regdays, basedays)
	}
	// Outside the window the regime is inert: identical realization.
	before := dates.New(2021, 6, 1)
	for i := 0; i < 100; i++ {
		day := before.AddDays(i)
		if paper.ShutdownFactor("IR", day) != reg.ShutdownFactor("IR", day) {
			t.Fatalf("%v: pre-regime realization differs", day)
		}
	}
}

// TestMergerOverrideOutsideEurope forces a merger in a market the paper's
// consolidation waves never touch, and checks the paper world is unmoved.
func TestMergerOverrideOutsideEurope(t *testing.T) {
	const seed = 11
	s := scenario.Paper()
	s.Name = "us-merger"
	s.Mergers = append(s.Mergers, scenario.MergerOverride{Country: "US", Year: 2021, Probability: 1})
	forced, err := world.Build(world.Config{Seed: seed, Scenario: s})
	if err != nil {
		t.Fatal(err)
	}
	paper := world.MustBuild(world.Config{Seed: seed})

	count := func(w *world.World) int {
		n := 0
		for _, e := range w.Market("US").Entries {
			if e.ExitYear == 2021 && e.AbsorbedBy != "" {
				n++
			}
		}
		return n
	}
	if n := count(paper); n != 0 {
		t.Fatalf("paper world already has %d US mergers in 2021", n)
	}
	if n := count(forced); n != 1 {
		t.Fatalf("override produced %d US mergers, want 1", n)
	}
	// The override draws from a child split: the rest of the US market —
	// and every other country — is byte-identical to the paper world.
	pe, fe := paper.Market("US").Entries, forced.Market("US").Entries
	if len(pe) != len(fe) {
		t.Fatalf("US entry counts differ: %d vs %d", len(pe), len(fe))
	}
	for i := range pe {
		if pe[i].Org.ID != fe[i].Org.ID || pe[i].AdFactor != fe[i].AdFactor {
			t.Fatalf("US entry %d perturbed by override", i)
		}
	}
	pj, fj := paper.Market("JP").Entries, forced.Market("JP").Entries
	for i := range pj {
		if pj[i].APNICBias != fj[i].APNICBias {
			t.Fatalf("JP entry %d perturbed by a US-only override", i)
		}
	}
}

// TestEntrantScenario checks the Starlink-style entrant: a new org
// registered in its home country with market entries everywhere it
// operates, users appearing only from its entry year, and away-market
// prefixes that geolocate to the registered home (the misattribution
// mechanism) while the true country stays local.
func TestEntrantScenario(t *testing.T) {
	const seed = 42
	w := mustScenario(t, seed, "starlink-entry")

	o, ok := w.Registry.ByID("GLOBALSAT")
	if !ok {
		t.Fatal("entrant org missing from registry")
	}
	if o.Home != "US" {
		t.Fatalf("entrant home = %s", o.Home)
	}
	for _, cc := range []string{"US", "AU", "BR", "NG"} {
		e := w.Entry(cc, "GLOBALSAT")
		if e == nil {
			t.Fatalf("no %s market entry for entrant", cc)
		}
		if e.EntryYear != 2021 {
			t.Fatalf("%s entry year = %d", cc, e.EntryYear)
		}
	}
	// Shares interpolate between Jan-1 anchors, so the last fully-zero
	// year is two before entry (2020 ramps toward the 2021 anchor).
	if s := w.Share("AU", "GLOBALSAT", dates.New(2019, 6, 1)); s != 0 {
		t.Fatalf("entrant has share %v before entry year", s)
	}
	if s := w.Share("AU", "GLOBALSAT", dates.New(2024, 6, 1)); s <= 0 {
		t.Fatal("entrant has no share after entry year")
	}
	// Away prefixes are announced home-registered: the registered-country
	// view of AU's entrant addresses says US, the true view says AU.
	asns := map[uint32]bool{}
	for _, asn := range o.ASNs {
		asns[asn] = true
	}
	found := false
	w.RoutingDB().Walk(func(p netip.Prefix, r netdb.Route) bool {
		if asns[r.ASN] && r.TrueCountry == "AU" {
			found = true
			if r.RegisteredCountry != "US" {
				t.Errorf("AU entrant prefix %v registered to %s, want US", p, r.RegisteredCountry)
			}
		}
		return true
	})
	if !found {
		t.Fatal("no away prefix with TrueCountry AU found for entrant")
	}
	// The paper world knows nothing of the entrant.
	paper := world.MustBuild(world.Config{Seed: seed})
	if _, ok := paper.Registry.ByID("GLOBALSAT"); ok {
		t.Fatal("entrant leaked into the paper world")
	}
}

// TestVPNSurgeScalesFunnel checks the vpn-surge counterfactual: the funnel
// triples after the surge date and is untouched before it.
func TestVPNSurgeScalesFunnel(t *testing.T) {
	const seed = 42
	paper := world.MustBuild(world.Config{Seed: seed})
	surge := mustScenario(t, seed, "vpn-surge")

	before := dates.New(2022, 5, 1)
	if a, b := paper.VPNFunnelTotal(before), surge.VPNFunnelTotal(before); a != b {
		t.Fatalf("funnel differs before surge: %v vs %v", a, b)
	}
	after := dates.New(2023, 6, 1)
	a, b := paper.VPNFunnelTotal(after), surge.VPNFunnelTotal(after)
	if math.Abs(b-3*a) > 1e-6*a {
		t.Fatalf("funnel after surge = %v, want 3 × %v", b, a)
	}
}
