package world

import (
	"math"
	"net/netip"
	"testing"

	"repro/internal/dates"
	"repro/internal/geo"
	"repro/internal/netdb"
	"repro/internal/orgs"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	w, err := Build(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildDeterministic(t *testing.T) {
	w1 := MustBuild(Config{Seed: 7})
	w2 := MustBuild(Config{Seed: 7})
	if w1.Registry.Len() != w2.Registry.Len() {
		t.Fatal("same-seed worlds differ in org count")
	}
	d := dates.New(2024, 4, 21)
	for _, code := range []string{"FR", "IN", "RU", "BR"} {
		for _, e := range w1.Market(code).Entries {
			u1 := w1.TrueUsers(code, e.Org.ID, d)
			u2 := w2.TrueUsers(code, e.Org.ID, d)
			if u1 != u2 {
				t.Fatalf("user counts differ for %s/%s: %v vs %v", code, e.Org.ID, u1, u2)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	w1 := MustBuild(Config{Seed: 1})
	w2 := MustBuild(Config{Seed: 2})
	d := dates.New(2024, 1, 1)
	same := 0
	total := 0
	for _, e := range w1.Market("FR").Entries {
		if e2 := w2.Entry("FR", e.Org.ID); e2 != nil {
			total++
			if w1.TrueUsers("FR", e.Org.ID, d) == w2.TrueUsers("FR", e.Org.ID, d) {
				same++
			}
		}
	}
	if total > 0 && same == total {
		t.Fatal("different seeds produced identical markets")
	}
}

func TestEveryCountryHasMarket(t *testing.T) {
	w := testWorld(t)
	if len(w.Countries()) != len(geo.All()) {
		t.Fatalf("markets for %d countries, want %d", len(w.Countries()), len(geo.All()))
	}
	for _, code := range w.Countries() {
		m := w.Market(code)
		if m == nil || len(m.Entries) < 5 {
			t.Fatalf("country %s has a degenerate market", code)
		}
	}
}

func TestSharesSumToOne(t *testing.T) {
	w := testWorld(t)
	for _, code := range []string{"FR", "IN", "US", "VU", "RU", "BR", "NG"} {
		for _, d := range []dates.Date{dates.New(2014, 6, 1), dates.New(2019, 1, 1), dates.New(2024, 4, 21)} {
			sum := 0.0
			for _, e := range w.Market(code).ActiveEntries(d) {
				sum += w.Share(code, e.Org.ID, d)
			}
			// Jan-1 anchors sum to exactly 1; mid-year interpolation can
			// deviate slightly when org sets change between years.
			if math.Abs(sum-1) > 0.05 {
				t.Errorf("%s shares at %v sum to %v", code, d, sum)
			}
		}
	}
}

func TestMarketIsConcentrated(t *testing.T) {
	w := testWorld(t)
	d := dates.New(2024, 1, 1)
	m := w.Market("FR")
	var top, total float64
	for _, e := range m.ActiveEntries(d) {
		s := w.Share("FR", e.Org.ID, d)
		total += s
		if s > top {
			top = s
		}
	}
	if top < 0.15 {
		t.Errorf("largest French org has share %v, want a clear market leader", top)
	}
	if total < 0.95 {
		t.Errorf("active shares total %v", total)
	}
}

func TestTrueUsersScale(t *testing.T) {
	w := testWorld(t)
	d := dates.New(2024, 4, 21)
	// India's biggest org should host on the order of 10^8 users.
	var top float64
	for _, e := range w.Market("IN").ActiveEntries(d) {
		if u := w.TrueUsers("IN", e.Org.ID, d); u > top {
			top = u
		}
	}
	if top < 5e7 {
		t.Errorf("largest Indian org has %v users, want > 5e7", top)
	}
	// Vanuatu's biggest org should be tiny in comparison.
	var topVU float64
	for _, e := range w.Market("VU").ActiveEntries(d) {
		if u := w.TrueUsers("VU", e.Org.ID, d); u > topVU {
			topVU = u
		}
	}
	if topVU > 1e6 {
		t.Errorf("largest Vanuatu org has %v users", topVU)
	}
}

func TestUsersGrowOverTime(t *testing.T) {
	w := testWorld(t)
	early := w.TotalUsers("IN", dates.New(2014, 1, 1))
	late := w.TotalUsers("IN", dates.New(2024, 1, 1))
	if late < 2*early {
		t.Errorf("India users %v → %v; expected strong growth", early, late)
	}
}

func TestConsolidationDirection(t *testing.T) {
	w := testWorld(t)
	// Southern Asia concentrates: top-org share rises 2019 → 2024.
	inTop := func(d dates.Date) float64 {
		var top float64
		for _, e := range w.Market("IN").ActiveEntries(d) {
			if s := w.Share("IN", e.Org.ID, d); s > top {
				top = s
			}
		}
		return top
	}
	if inTop(dates.New(2024, 1, 1)) <= inTop(dates.New(2019, 1, 1)) {
		t.Error("Indian market should concentrate after 2019")
	}

	// Latin America diversifies: orgs needed to reach 95% grows.
	cover := func(code string, d dates.Date) int {
		shares := []float64{}
		for _, e := range w.Market(code).ActiveEntries(d) {
			shares = append(shares, w.Share(code, e.Org.ID, d))
		}
		// count largest shares to 95%
		n := 0
		covered := 0.0
		for covered < 0.95 {
			best, bestIdx := -1.0, -1
			for i, s := range shares {
				if s > best {
					best, bestIdx = s, i
				}
			}
			if bestIdx < 0 {
				break
			}
			covered += best
			shares[bestIdx] = -2
			n++
		}
		return n
	}
	brBefore := cover("BR", dates.New(2019, 1, 1))
	brAfter := cover("BR", dates.New(2024, 1, 1))
	if brAfter <= brBefore {
		t.Errorf("Brazilian market should diversify: cover count %d → %d", brBefore, brAfter)
	}
}

func TestMergerEvents(t *testing.T) {
	w := testWorld(t)
	// Switzerland has a guaranteed 2020 merger.
	var victim *Entry
	for _, e := range w.Market("CH").Entries {
		if e.ExitYear == 2020 && e.AbsorbedBy != "" {
			victim = e
		}
	}
	if victim == nil {
		t.Fatal("no Swiss merger found")
	}
	// After the merger the victim has no users and the absorber gained.
	before := dates.New(2019, 1, 1)
	after := dates.New(2021, 1, 1)
	if w.TrueUsers("CH", victim.Org.ID, after) != 0 {
		t.Error("absorbed org still has users after exit")
	}
	absBefore := w.Share("CH", victim.AbsorbedBy, before)
	absAfter := w.Share("CH", victim.AbsorbedBy, after)
	if absAfter <= absBefore {
		t.Errorf("absorber share %v → %v; should grow", absBefore, absAfter)
	}
}

func TestVPNViews(t *testing.T) {
	w := testWorld(t)
	if w.VPNOrgID == "" {
		t.Fatal("no VPN org built")
	}
	d := dates.New(2024, 4, 1)
	apnicView := w.APNICUsers("NO", w.VPNOrgID, d)
	cdnView := w.CDNUsers("NO", w.VPNOrgID, d)
	if apnicView <= cdnView {
		t.Fatalf("APNIC view of VPN in NO (%v) must exceed CDN view (%v)", apnicView, cdnView)
	}
	// The funnel is large relative to Norway itself.
	if apnicView < 0.3*w.TotalUsers("NO", d) {
		t.Errorf("VPN apparent users %v too small relative to NO total %v", apnicView, w.TotalUsers("NO", d))
	}
	// Origin countries see the VPN org in the CDN view only.
	foundOrigin := false
	for origin, share := range w.VPNOrigins() {
		if share <= 0 {
			continue
		}
		foundOrigin = true
		if w.CDNUsers(origin, w.VPNOrgID, d) <= 0 {
			t.Errorf("CDN should see VPN users in origin %s", origin)
		}
		if w.APNICUsers(origin, w.VPNOrgID, d) != w.TrueUsers(origin, w.VPNOrgID, d) {
			t.Errorf("APNIC should not see funneled users in origin %s", origin)
		}
	}
	if !foundOrigin {
		t.Fatal("VPN has no origins")
	}
	// Funnel grows over time.
	if w.VPNFunnelTotal(dates.New(2014, 1, 1)) >= w.VPNFunnelTotal(dates.New(2024, 1, 1)) {
		t.Error("VPN funnel should grow over the decade")
	}
}

func TestRoutingConsistency(t *testing.T) {
	w := testWorld(t)
	if w.DB.Len() < 1000 {
		t.Fatalf("only %d routes announced", w.DB.Len())
	}
	vpnOrg, _ := w.Registry.ByID(w.VPNOrgID)
	divergent := 0
	w.DB.Walk(func(p netip.Prefix, r netdb.Route) bool {
		o, ok := w.Registry.ByASN(r.ASN)
		if !ok {
			t.Errorf("route %v has unregistered AS%d", p, r.ASN)
			return false
		}
		if r.RegisteredCountry != o.Home {
			t.Errorf("route %v registered in %s but org home is %s", p, r.RegisteredCountry, o.Home)
			return false
		}
		if r.TrueCountry != r.RegisteredCountry {
			divergent++
			if o.ID != vpnOrg.ID {
				t.Errorf("non-VPN route %v has divergent geolocation", p)
				return false
			}
		}
		return true
	})
	if divergent == 0 {
		t.Error("no VPN egress blocks with divergent geolocation views")
	}
}

func TestRegistryASNsResolve(t *testing.T) {
	w := testWorld(t)
	for _, o := range w.Registry.All() {
		for _, asn := range o.ASNs {
			got, ok := w.Registry.ByASN(asn)
			if !ok || got.ID != o.ID {
				t.Fatalf("AS%d does not resolve to %s", asn, o.ID)
			}
		}
	}
	if w.Registry.Len() < 1000 {
		t.Errorf("only %d orgs; want a rich world", w.Registry.Len())
	}
}

func TestCountryOrgPairs(t *testing.T) {
	w := testWorld(t)
	d := dates.New(2024, 4, 1)
	pairs := w.CountryOrgPairs(d)
	if len(pairs) < 2000 {
		t.Errorf("only %d (country, org) pairs", len(pairs))
	}
	seen := map[orgs.CountryOrg]bool{}
	vpnCountries := 0
	for _, p := range pairs {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
		if p.Org == w.VPNOrgID {
			vpnCountries++
		}
	}
	if vpnCountries < 5 {
		t.Errorf("VPN org appears in %d countries, want hub + origins", vpnCountries)
	}
}

func TestEntryParameterSanity(t *testing.T) {
	w := testWorld(t)
	for _, code := range w.Countries() {
		for _, e := range w.Market(code).Entries {
			if e.BaseWeight <= 0 {
				t.Fatalf("%s: non-positive weight", e.Org.ID)
			}
			if e.AdFactor <= 0 || e.TrafficPerUser <= 0 || e.ReqPerUser <= 0 {
				t.Fatalf("%s: non-positive intensity parameters", e.Org.ID)
			}
			if e.MobileShare < 0 || e.MobileShare > 1 {
				t.Fatalf("%s: mobile share out of range", e.Org.ID)
			}
			if e.CDNAffinity < 0 || e.CDNAffinity > 1 {
				t.Fatalf("%s: CDN affinity out of range", e.Org.ID)
			}
			sum := 0.0
			for _, v := range e.ASNWeights {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 || len(e.ASNWeights) != len(e.Org.ASNs) {
				t.Fatalf("%s: ASN weights malformed", e.Org.ID)
			}
		}
	}
}

func TestCloudOrgsAreTrafficHeavyAdLight(t *testing.T) {
	w := testWorld(t)
	for _, code := range []string{"IN", "US", "DE"} {
		for _, e := range w.Market(code).Entries {
			if e.Org.Type == orgs.CloudProvider {
				if e.AdFactor > 0.1 {
					t.Errorf("%s cloud org ad factor %v too high", code, e.AdFactor)
				}
				if e.TrafficPerUser < 5 {
					t.Errorf("%s cloud org traffic/user %v too low", code, e.TrafficPerUser)
				}
			}
		}
	}
}

func TestOrgCount(t *testing.T) {
	w := testWorld(t)
	n2019 := w.OrgCount("BR", 2019)
	n2024 := w.OrgCount("BR", 2024)
	if n2024 <= n2019 {
		t.Errorf("Brazil org count %d → %d; entrants should add orgs", n2019, n2024)
	}
	if w.OrgCount("XX", 2024) != 0 {
		t.Error("unknown country should have zero orgs")
	}
}

func TestGammaAnchors(t *testing.T) {
	if g := consolidationGamma(geo.SouthernAsia, 2024); g <= 1.5 {
		t.Errorf("Southern Asia 2024 gamma = %v", g)
	}
	if g := consolidationGamma(geo.SouthAmer, 2024); g >= 0.9 {
		t.Errorf("South America 2024 gamma = %v", g)
	}
	if g := consolidationGamma(geo.WesternEurope, 2019); math.Abs(g-1) > 1e-9 {
		t.Errorf("2019 baseline gamma = %v, want 1", g)
	}
	// Monotone between anchors.
	prev := consolidationGamma(geo.SouthernAsia, 2019)
	for y := 2020; y <= 2024; y++ {
		g := consolidationGamma(geo.SouthernAsia, y)
		if g < prev {
			t.Errorf("gamma not monotone at %d", y)
		}
		prev = g
	}
}

func TestCloudProxyEffectInLowReachCountries(t *testing.T) {
	// §4.4's Russia anomaly mechanism: in low-ad-reach countries, cloud
	// orgs draw outsized ad exposure through proxy/relay traffic.
	w := testWorld(t)
	adFactor := func(cc string) (cloudMax float64) {
		for _, e := range w.Market(cc).Entries {
			if e.Org.Type == orgs.CloudProvider && e.AdFactor > cloudMax {
				cloudMax = e.AdFactor
			}
		}
		return cloudMax
	}
	if ru := adFactor("RU"); ru < 10 {
		t.Errorf("Russian cloud ad factor %v; proxy effect missing", ru)
	}
	if de := adFactor("DE"); de > 1 {
		t.Errorf("German cloud ad factor %v; proxy effect should not apply", de)
	}
}

func TestEyeballTypeMix(t *testing.T) {
	// The top of markets must mix converged and pure-fixed incumbents
	// (the Figure 2 mobile-mismatch mechanism needs both).
	w := testWorld(t)
	fixedTop, convergedTop := 0, 0
	for _, cc := range w.Countries() {
		entries := w.Market(cc).Entries
		if len(entries) == 0 {
			continue
		}
		switch entries[0].Org.Type {
		case orgs.FixedAccess:
			fixedTop++
		case orgs.ConvergedAccess:
			convergedTop++
		}
	}
	if fixedTop < 10 || convergedTop < 10 {
		t.Errorf("market leaders: %d fixed, %d converged; need a mix", fixedTop, convergedTop)
	}
}

func TestShutdownFactorProperties(t *testing.T) {
	w := testWorld(t)
	// Non-shutdown countries always return 1.
	for _, d := range dates.Range(dates.New(2024, 1, 1), dates.New(2024, 3, 1), 7) {
		if w.ShutdownFactor("DE", d) != 1 {
			t.Fatal("Germany should never shut down")
		}
	}
	// Myanmar hits shutdown days at roughly its configured rate.
	days := dates.Range(dates.New(2023, 1, 1), dates.New(2024, 12, 31), 1)
	shut := 0
	for _, d := range days {
		f := w.ShutdownFactor("MM", d)
		if f != 1 && f != 0.1 {
			t.Fatalf("unexpected factor %v", f)
		}
		if f < 1 {
			shut++
		}
	}
	rate := float64(shut) / float64(len(days))
	if rate < 0.05 || rate > 0.16 {
		t.Errorf("MM shutdown rate %v, configured 0.10", rate)
	}
	// The window factor smooths: it must sit strictly between the worst
	// day and 1 on a window containing both kinds of days.
	wf := w.ShutdownWindowFactor("MM", dates.New(2024, 6, 30), 60)
	if wf <= 0.1 || wf >= 1 {
		t.Errorf("window factor %v not smoothed", wf)
	}
}

// TestCompiledDBMatchesLive: the compiled routing artifact must answer
// every query over a real world's announcements exactly like the live
// trie — prefixes, ASNs, and both geolocation views, including the VPN
// egress blocks whose two views diverge.
func TestCompiledDBMatchesLive(t *testing.T) {
	w := testWorld(t)
	cdb := w.CompiledDB()
	if cdb == nil {
		t.Fatal("CompiledDB returned nil for a valid world")
	}
	if cdb != w.CompiledDB() {
		t.Error("CompiledDB is not cached")
	}
	if w.RoutingDB() != netdb.Database(cdb) {
		t.Error("RoutingDB does not prefer the compiled view")
	}
	if cdb.Len() != w.DB.Len() {
		t.Fatalf("compiled %d routes, live %d", cdb.Len(), w.DB.Len())
	}
	divergent := 0
	w.DB.Walk(func(p netip.Prefix, r netdb.Route) bool {
		addr := p.Addr()
		cr, ok := cdb.Lookup(addr)
		if !ok {
			t.Fatalf("compiled DB misses %v", p)
		}
		lr, _ := w.DB.Lookup(addr)
		if cr != lr {
			t.Fatalf("route mismatch at %v: live %+v, compiled %+v", p, lr, cr)
		}
		if r.RegisteredCountry != r.TrueCountry {
			divergent++
		}
		return true
	})
	if divergent == 0 {
		t.Fatal("world has no VPN egress blocks; test lost its teeth")
	}
}
