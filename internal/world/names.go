package world

import (
	"fmt"

	"repro/internal/orgs"
	"repro/internal/rng"
)

// Name fragments for synthesizing plausible operator names. Names carry no
// simulation semantics; they only make reports readable.
var (
	nameStems = []string{
		"Tele", "Net", "Via", "Uni", "Air", "Sky", "Terra", "Nova",
		"Volt", "Lumen", "Axon", "Orbit", "Vertex", "Pulse", "Echo",
		"Zenith", "Astra", "Delta", "Omni", "Prima",
	}
	nameSuffixes = []string{
		"com", "net", "wave", "link", "tel", "fiber", "cast",
		"connect", "line", "span", "bridge", "port",
	}
)

// orgName synthesizes a display name for an organization.
func orgName(country string, typ orgs.Type, idx int, s *rng.Stream) string {
	stem := nameStems[s.Intn(len(nameStems))]
	suffix := nameSuffixes[s.Intn(len(nameSuffixes))]
	base := stem + suffix
	switch typ {
	case orgs.MobileCarrier:
		base += " Mobile"
	case orgs.Enterprise:
		base += " Corporate"
	case orgs.CloudProvider:
		base += " Cloud"
	case orgs.CDNProvider:
		base += " Edge"
	case orgs.VPNProvider:
		base += " VPN"
	}
	return fmt.Sprintf("%s %s %d", base, country, idx+1)
}
