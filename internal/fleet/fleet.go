// Package fleet sweeps seeds × scenarios in parallel: it builds one world
// per (seed, scenario) pair, runs the paper's per-country reliability
// checklist (core.RunChecks via experiments.CheckAll) against each, and
// aggregates the outcomes into a deterministic stability report.
//
// The sweep answers the question the single-world experiments cannot: how
// stable are the paper's reliability verdicts across random worlds, and
// which declarative shocks (internal/scenario) flip which checks? Every
// world is a pure function of (seed, scenario), so the report is
// byte-identical across runs and worker counts.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// Config parameterizes one sweep.
type Config struct {
	// SeedBase is the first world seed; the sweep runs seeds
	// SeedBase .. SeedBase+Seeds-1. Seeds <= 0 means 1.
	SeedBase uint64
	Seeds    int

	// Scenarios to sweep. The paper scenario is always included (and run
	// first) even if absent from the list: every counterfactual is scored
	// as flips against the same-seed paper world.
	Scenarios []*scenario.Scenario

	// Day is the check day; the zero value selects experiments.Table2Day
	// (the paper's Table 2 snapshot).
	Day dates.Date

	// Workers caps concurrent world builds; <= 0 means GOMAXPROCS.
	Workers int
}

// worldOutcome is one (seed, scenario) world's raw check output.
type worldOutcome struct {
	seed    uint64
	reports map[string]core.Report
	err     error
}

// Run executes the sweep and aggregates the stability report.
//
// Scheduling mirrors experiments.RunAll: a fixed worker pool drains an
// index channel into a results slice, so output order never depends on
// completion order. Each job builds its own Lab (worlds share nothing),
// which keeps the pool embarrassingly parallel; the singleflight caches
// inside a Lab only matter within one job's CheckAll.
func Run(cfg Config) (*Report, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	day := cfg.Day
	if (day == dates.Date{}) {
		day = experiments.Table2Day
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	scns := rosterWithPaper(cfg.Scenarios)
	for i, s := range scns {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: scenario %d: %w", i, err)
		}
	}

	type job struct{ scn, seed int }
	jobs := make([]job, 0, len(scns)*cfg.Seeds)
	for si := range scns {
		for k := 0; k < cfg.Seeds; k++ {
			jobs = append(jobs, job{scn: si, seed: k})
		}
	}
	outcomes := make([][]worldOutcome, len(scns))
	for i := range outcomes {
		outcomes[i] = make([]worldOutcome, cfg.Seeds)
	}

	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				seed := cfg.SeedBase + uint64(j.seed)
				out := worldOutcome{seed: seed}
				l, err := experiments.NewLabScenario(seed, scns[j.scn])
				if err != nil {
					out.err = err
				} else {
					out.reports = experiments.CheckAll(l, day)
				}
				outcomes[j.scn][j.seed] = out
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for si, row := range outcomes {
		for _, out := range row {
			if out.err != nil {
				return nil, fmt.Errorf("fleet: seed %d scenario %s: %w",
					out.seed, scns[si].Name, out.err)
			}
		}
	}
	return aggregate(scns, outcomes, cfg, day), nil
}

// rosterWithPaper returns the scenario roster with the paper baseline
// guaranteed present and first.
func rosterWithPaper(in []*scenario.Scenario) []*scenario.Scenario {
	out := make([]*scenario.Scenario, 0, len(in)+1)
	var paper *scenario.Scenario
	for _, s := range in {
		if s.Name == "paper" && paper == nil {
			paper = s
			continue
		}
		out = append(out, s)
	}
	if paper == nil {
		paper = scenario.Paper()
	}
	return append([]*scenario.Scenario{paper}, out...)
}

// aggregate folds raw per-world check reports into the stability report.
// Every loop runs in sorted order so the result is deterministic.
func aggregate(scns []*scenario.Scenario, outcomes [][]worldOutcome, cfg Config, day dates.Date) *Report {
	rep := &Report{
		Day:      day.String(),
		SeedBase: cfg.SeedBase,
		Seeds:    cfg.Seeds,
	}
	paperRow := outcomes[0]
	for si, scn := range scns {
		sum := ScenarioSummary{Scenario: scn.Name, Worlds: len(outcomes[si])}
		verdicts := map[string]int{}
		checks := map[string]*CheckStat{}
		flips := map[string]*FlipStat{}

		for k, out := range outcomes[si] {
			codes := sortedReportKeys(out.reports)
			for _, cc := range codes {
				r := out.reports[cc]
				verdicts[r.Verdict.String()]++
				var base *core.Report
				if si > 0 {
					if b, ok := paperRow[k].reports[cc]; ok {
						base = &b
					}
				}
				for _, c := range r.Checks {
					st := checks[c.Name]
					if st == nil {
						st = &CheckStat{Name: c.Name}
						checks[c.Name] = st
					}
					st.Total++
					if c.Passed {
						st.Passed++
					}
					if base != nil {
						if bc, ok := findCheck(base, c.Name); ok && bc.Passed != c.Passed {
							fl := flips[c.Name]
							if fl == nil {
								fl = &FlipStat{Check: c.Name}
								flips[c.Name] = fl
							}
							if bc.Passed {
								fl.PassToFail++
							} else {
								fl.FailToPass++
							}
							if len(fl.Examples) < maxFlipExamples {
								fl.Examples = append(fl.Examples,
									fmt.Sprintf("seed%d/%s", out.seed, cc))
							}
						}
					}
				}
			}
		}

		for _, name := range sortedStatKeys(checks) {
			sum.Checks = append(sum.Checks, *checks[name])
		}
		for _, name := range sortedFlipKeys(flips) {
			sum.Flips = append(sum.Flips, *flips[name])
		}
		sum.Verdicts = verdicts
		rep.Scenarios = append(rep.Scenarios, sum)
	}
	return rep
}

// maxFlipExamples caps the per-check example list in the report.
const maxFlipExamples = 8

func findCheck(r *core.Report, name string) (core.CheckResult, bool) {
	for _, c := range r.Checks {
		if c.Name == name {
			return c, true
		}
	}
	return core.CheckResult{}, false
}

func sortedReportKeys(m map[string]core.Report) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStatKeys(m map[string]*CheckStat) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedFlipKeys(m map[string]*FlipStat) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
