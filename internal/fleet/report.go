package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// CheckStat is one reliability check's pass rate aggregated over every
// (seed, country) cell of a scenario.
type CheckStat struct {
	Name   string `json:"name"`
	Passed int    `json:"passed"`
	Total  int    `json:"total"`
}

// Rate returns the pass fraction.
func (s CheckStat) Rate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Passed) / float64(s.Total)
}

// FlipStat counts how often a check's outcome differs from the same-seed
// paper world — the sweep's measure of a scenario's reliability impact.
type FlipStat struct {
	Check      string   `json:"check"`
	PassToFail int      `json:"pass_to_fail"`
	FailToPass int      `json:"fail_to_pass"`
	Examples   []string `json:"examples,omitempty"` // "seed42/BR", capped
}

// ScenarioSummary aggregates one scenario across all seeds.
type ScenarioSummary struct {
	Scenario string         `json:"scenario"`
	Worlds   int            `json:"worlds"`
	Verdicts map[string]int `json:"verdicts"` // verdict → country-world count
	Checks   []CheckStat    `json:"checks"`
	Flips    []FlipStat     `json:"flips,omitempty"` // empty for paper
}

// Report is the sweep's deterministic output: no timestamps, no wall
// times, every slice in sorted order — two runs of the same Config must
// produce identical bytes from Markdown() and JSON().
type Report struct {
	Day       string            `json:"day"`
	SeedBase  uint64            `json:"seed_base"`
	Seeds     int               `json:"seeds"`
	Scenarios []ScenarioSummary `json:"scenarios"`
}

// JSON renders the report as indented JSON (trailing newline included).
func (r *Report) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Markdown renders the stability report.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fleet stability report\n\n")
	fmt.Fprintf(&b, "Check day %s, seeds %d..%d (%d per scenario).\n\n",
		r.Day, r.SeedBase, r.SeedBase+uint64(r.Seeds)-1, r.Seeds)

	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "## Scenario `%s`\n\n", s.Scenario)
		fmt.Fprintf(&b, "%d worlds.\n\n", s.Worlds)

		fmt.Fprintf(&b, "| check | pass | total | rate |\n")
		fmt.Fprintf(&b, "|---|---:|---:|---:|\n")
		for _, c := range s.Checks {
			fmt.Fprintf(&b, "| %s | %d | %d | %.3f |\n", c.Name, c.Passed, c.Total, c.Rate())
		}
		b.WriteString("\n")

		fmt.Fprintf(&b, "Verdicts:")
		for _, v := range sortedVerdictKeys(s.Verdicts) {
			fmt.Fprintf(&b, " %s=%d", v, s.Verdicts[v])
		}
		b.WriteString("\n\n")

		if len(s.Flips) > 0 {
			fmt.Fprintf(&b, "Flips vs same-seed paper worlds:\n\n")
			fmt.Fprintf(&b, "| check | pass→fail | fail→pass | examples |\n")
			fmt.Fprintf(&b, "|---|---:|---:|---|\n")
			for _, f := range s.Flips {
				fmt.Fprintf(&b, "| %s | %d | %d | %s |\n",
					f.Check, f.PassToFail, f.FailToPass, strings.Join(f.Examples, ", "))
			}
			b.WriteString("\n")
		} else if s.Scenario != "paper" {
			fmt.Fprintf(&b, "No check flips vs the paper baseline.\n\n")
		}
	}
	return b.String()
}

func sortedVerdictKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
