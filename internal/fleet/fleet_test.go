package fleet

import (
	"bytes"
	"testing"

	"repro/internal/scenario"
)

// sweep runs a small 2-seed sweep over paper + cgnat-wave.
func sweep(t *testing.T) *Report {
	t.Helper()
	cg, ok := scenario.ByName("cgnat-wave")
	if !ok {
		t.Fatal("no cgnat-wave builtin")
	}
	rep, err := Run(Config{
		SeedBase:  42,
		Seeds:     2,
		Scenarios: []*scenario.Scenario{cg},
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSweepDeterministicAndFlips(t *testing.T) {
	if testing.Short() {
		t.Skip("builds six worlds")
	}
	a := sweep(t)
	b := sweep(t)

	amd, bmd := a.Markdown(), b.Markdown()
	if amd != bmd {
		t.Fatal("markdown differs between identical sweeps")
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatal("JSON differs between identical sweeps")
	}

	if len(a.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(a.Scenarios))
	}
	if a.Scenarios[0].Scenario != "paper" {
		t.Fatalf("first scenario = %s, want paper", a.Scenarios[0].Scenario)
	}
	if len(a.Scenarios[0].Flips) != 0 {
		t.Fatal("paper scenario must have no flips against itself")
	}

	// The CGNAT wave suppresses BR/IN/ID samples ~20×, exploding the
	// users-per-sample ratio out of the elasticity band: the sweep must
	// observe at least one pass→fail flip on that check.
	cg := a.Scenarios[1]
	if cg.Scenario != "cgnat-wave" {
		t.Fatalf("second scenario = %s", cg.Scenario)
	}
	found := false
	for _, f := range cg.Flips {
		if f.Check == "elasticity-band" && f.PassToFail > 0 {
			found = true
			if len(f.Examples) == 0 {
				t.Error("flip stat has no examples")
			}
		}
	}
	if !found {
		t.Fatalf("cgnat-wave did not flip elasticity-band; flips = %+v", cg.Flips)
	}

	// Aggregation bookkeeping: every check row covers seeds × countries.
	for _, s := range a.Scenarios {
		for _, c := range s.Checks {
			if c.Total == 0 || c.Passed > c.Total {
				t.Fatalf("%s/%s: bad stat %+v", s.Scenario, c.Name, c)
			}
		}
	}
}

func TestRosterWithPaper(t *testing.T) {
	cg, _ := scenario.ByName("cgnat-wave")
	out := rosterWithPaper([]*scenario.Scenario{cg})
	if len(out) != 2 || out[0].Name != "paper" || out[1].Name != "cgnat-wave" {
		t.Fatalf("roster = %v", names(out))
	}
	// Paper supplied mid-list is hoisted, not duplicated.
	out = rosterWithPaper([]*scenario.Scenario{cg, scenario.Paper()})
	if len(out) != 2 || out[0].Name != "paper" {
		t.Fatalf("roster = %v", names(out))
	}
}

func names(ss []*scenario.Scenario) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}
