// Package dates implements timezone-free civil-date arithmetic. The APNIC
// dataset is a daily report over a 60-day moving window spanning 2013–2024;
// all generators and analyses index data by civil day, so a minimal Date
// type avoids both time.Time's timezone pitfalls and any wall-clock reads
// (library code must stay deterministic).
package dates

import (
	"fmt"
	"strconv"
	"strings"
)

// Date is a civil calendar date.
type Date struct {
	Year  int
	Month int // 1..12
	Day   int // 1..31
}

// New returns the date for y-m-d. It does not normalize; use FromDayNumber
// for arithmetic results.
func New(y, m, d int) Date { return Date{Year: y, Month: m, Day: d} }

// Parse parses "YYYY-MM-DD".
func Parse(s string) (Date, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Date{}, fmt.Errorf("dates: invalid date %q", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return Date{}, fmt.Errorf("dates: invalid date %q", s)
	}
	dt := Date{y, m, d}
	if !dt.Valid() {
		return Date{}, fmt.Errorf("dates: invalid date %q", s)
	}
	return dt, nil
}

// MustParse is Parse for compile-time-known literals; it panics on error.
func MustParse(s string) Date {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

// String formats the date as "YYYY-MM-DD".
func (d Date) String() string {
	return fmt.Sprintf("%04d-%02d-%02d", d.Year, d.Month, d.Day)
}

// Valid reports whether the date is a real calendar date.
func (d Date) Valid() bool {
	if d.Month < 1 || d.Month > 12 || d.Day < 1 {
		return false
	}
	return d.Day <= daysInMonth(d.Year, d.Month)
}

func isLeap(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if isLeap(y) {
			return 29
		}
		return 28
	}
}

// DayNumber returns the number of days since 1970-01-01 (which is day 0).
// Negative for earlier dates. The computation uses the standard civil-
// from-days algorithm (Howard Hinnant's chrono derivation).
func (d Date) DayNumber() int {
	y := d.Year
	if d.Month <= 2 {
		y--
	}
	era := y / 400
	if y < 0 && y%400 != 0 {
		era--
	}
	yoe := y - era*400 // [0, 399]
	m := d.Month
	var doy int
	if m > 2 {
		doy = (153*(m-3)+2)/5 + d.Day - 1
	} else {
		doy = (153*(m+9)+2)/5 + d.Day - 1
	}
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

// FromDayNumber is the inverse of DayNumber.
func FromDayNumber(z int) Date {
	z += 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	day := doy - (153*mp+2)/5 + 1
	m := mp + 3
	if mp >= 10 {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return Date{Year: y, Month: m, Day: day}
}

// AddDays returns the date n days after d (n may be negative).
func (d Date) AddDays(n int) Date {
	return FromDayNumber(d.DayNumber() + n)
}

// Sub returns the number of days from other to d (d − other).
func (d Date) Sub(other Date) int {
	return d.DayNumber() - other.DayNumber()
}

// Before reports whether d is strictly before other.
func (d Date) Before(other Date) bool { return d.DayNumber() < other.DayNumber() }

// After reports whether d is strictly after other.
func (d Date) After(other Date) bool { return d.DayNumber() > other.DayNumber() }

// Equal reports whether d and other are the same day.
func (d Date) Equal(other Date) bool { return d == other }

// Weekday returns the ISO weekday (1 = Monday ... 7 = Sunday).
func (d Date) Weekday() int {
	// 1970-01-01 was a Thursday (ISO weekday 4).
	wd := (d.DayNumber()%7 + 7) % 7 // 0 = Thursday
	return (wd+3)%7 + 1
}

// Range returns all dates from from to to inclusive, stepping by step days.
// It returns nil if to is before from or step <= 0.
func Range(from, to Date, step int) []Date {
	if step <= 0 || to.Before(from) {
		return nil
	}
	var out []Date
	for n := from.DayNumber(); n <= to.DayNumber(); n += step {
		out = append(out, FromDayNumber(n))
	}
	return out
}

// YearStart returns January 1 of the given year.
func YearStart(y int) Date { return Date{Year: y, Month: 1, Day: 1} }

// WeekIndex returns the 7-day bucket of a date counted from the epoch
// (floor division, so pre-1970 dates land in the correct bucket). The ITU
// revision series and the scenario engine's registry-spike events must
// agree on week boundaries, so both use this single definition.
func WeekIndex(d Date) int {
	n := d.DayNumber()
	if n < 0 {
		n -= 6
	}
	return n / 7
}
