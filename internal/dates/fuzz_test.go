package dates

import "testing"

// FuzzParse exercises the date parser: it must never panic, and any date
// it accepts must round-trip through String and day-number arithmetic.
func FuzzParse(f *testing.F) {
	f.Add("2024-04-21")
	f.Add("2024-02-29")
	f.Add("1970-01-01")
	f.Add("0000-01-01")
	f.Add("9999-12-31")
	f.Add("not-a-date")
	f.Add("2024-13-01")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := Parse(s)
		if err != nil {
			return
		}
		if !d.Valid() {
			t.Fatalf("Parse accepted invalid date %q -> %+v", s, d)
		}
		if rt, err := Parse(d.String()); err != nil || rt != d {
			t.Fatalf("String round trip failed for %q: %v %v", s, rt, err)
		}
		if FromDayNumber(d.DayNumber()) != d {
			t.Fatalf("day-number round trip failed for %v", d)
		}
	})
}
