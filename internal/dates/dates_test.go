package dates

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEpoch(t *testing.T) {
	if got := New(1970, 1, 1).DayNumber(); got != 0 {
		t.Fatalf("epoch day number = %d, want 0", got)
	}
	if got := New(1970, 1, 2).DayNumber(); got != 1 {
		t.Fatalf("epoch+1 = %d, want 1", got)
	}
	if got := New(1969, 12, 31).DayNumber(); got != -1 {
		t.Fatalf("epoch-1 = %d, want -1", got)
	}
}

func TestAgainstTimePackage(t *testing.T) {
	// Validate day numbers against the standard library over the paper's
	// full data range.
	start := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	epoch := time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4500; i++ {
		tt := start.AddDate(0, 0, i)
		d := New(tt.Year(), int(tt.Month()), tt.Day())
		want := int(tt.Sub(epoch).Hours() / 24)
		if got := d.DayNumber(); got != want {
			t.Fatalf("%v day number = %d, want %d", d, got, want)
		}
		if rt := FromDayNumber(want); rt != d {
			t.Fatalf("round trip of %v gave %v", d, rt)
		}
	}
}

func TestLeapYears(t *testing.T) {
	if !New(2024, 2, 29).Valid() {
		t.Error("2024-02-29 should be valid")
	}
	if New(2023, 2, 29).Valid() {
		t.Error("2023-02-29 should be invalid")
	}
	if !New(2000, 2, 29).Valid() {
		t.Error("2000-02-29 should be valid (divisible by 400)")
	}
	if New(1900, 2, 29).Valid() {
		t.Error("1900-02-29 should be invalid (divisible by 100, not 400)")
	}
}

func TestParse(t *testing.T) {
	d, err := Parse("2024-04-21")
	if err != nil {
		t.Fatal(err)
	}
	if d != New(2024, 4, 21) {
		t.Fatalf("parsed %v", d)
	}
	if d.String() != "2024-04-21" {
		t.Fatalf("String = %q", d.String())
	}
	for _, bad := range []string{"2024-13-01", "2024-02-30", "garbage", "2024-04", "20x4-01-01"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestAddDaysAcrossBoundaries(t *testing.T) {
	cases := []struct {
		from Date
		n    int
		want Date
	}{
		{New(2023, 12, 31), 1, New(2024, 1, 1)},
		{New(2024, 2, 28), 1, New(2024, 2, 29)},
		{New(2024, 2, 29), 1, New(2024, 3, 1)},
		{New(2024, 1, 1), -1, New(2023, 12, 31)},
		{New(2013, 11, 1), 60, New(2013, 12, 31)},
	}
	for _, c := range cases {
		if got := c.from.AddDays(c.n); got != c.want {
			t.Errorf("%v + %d = %v, want %v", c.from, c.n, got, c.want)
		}
	}
}

func TestSubAndComparisons(t *testing.T) {
	a := New(2024, 4, 21)
	b := New(2024, 2, 21)
	if got := a.Sub(b); got != 60 {
		t.Fatalf("Sub = %d, want 60", got)
	}
	if !b.Before(a) || a.Before(b) || !a.After(b) {
		t.Fatal("comparison methods inconsistent")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Fatal("Equal inconsistent")
	}
}

func TestWeekday(t *testing.T) {
	// 2024-01-01 was a Monday; 1970-01-01 was a Thursday.
	if got := New(2024, 1, 1).Weekday(); got != 1 {
		t.Errorf("2024-01-01 weekday = %d, want 1 (Monday)", got)
	}
	if got := New(1970, 1, 1).Weekday(); got != 4 {
		t.Errorf("1970-01-01 weekday = %d, want 4 (Thursday)", got)
	}
	if got := New(2024, 11, 4).Weekday(); got != 1 { // IMC'24 opened on a Monday
		t.Errorf("2024-11-04 weekday = %d, want 1", got)
	}
}

func TestRange(t *testing.T) {
	days := Range(New(2024, 1, 1), New(2024, 1, 10), 1)
	if len(days) != 10 {
		t.Fatalf("daily range length = %d, want 10", len(days))
	}
	weekly := Range(New(2024, 1, 1), New(2024, 1, 31), 7)
	if len(weekly) != 5 {
		t.Fatalf("weekly range length = %d, want 5", len(weekly))
	}
	if Range(New(2024, 1, 2), New(2024, 1, 1), 1) != nil {
		t.Fatal("reversed range should be nil")
	}
	if Range(New(2024, 1, 1), New(2024, 1, 2), 0) != nil {
		t.Fatal("zero step should be nil")
	}
}

// Property: DayNumber and FromDayNumber are inverses over a wide range.
func TestQuickRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		day := int(n % 100000) // ±~270 years around the epoch
		return FromDayNumber(day).DayNumber() == day
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AddDays(n).Sub(d) == n.
func TestQuickAddSub(t *testing.T) {
	f := func(n int16) bool {
		d := New(2020, 6, 15)
		return d.AddDays(int(n)).Sub(d) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
