package netdb

import (
	"fmt"
	"net/netip"
)

// Allocator hands out non-overlapping IPv4 blocks, skipping reserved
// ranges, the way an RIR delegates address space. Allocations are
// deterministic: the same sequence of requests yields the same blocks.
type Allocator struct {
	cursor uint32
}

// reservedRanges lists IPv4 space an allocator must never hand out.
var reservedRanges = []netip.Prefix{
	netip.MustParsePrefix("0.0.0.0/8"),
	netip.MustParsePrefix("10.0.0.0/8"),
	netip.MustParsePrefix("100.64.0.0/10"),
	netip.MustParsePrefix("127.0.0.0/8"),
	netip.MustParsePrefix("169.254.0.0/16"),
	netip.MustParsePrefix("172.16.0.0/12"),
	netip.MustParsePrefix("192.0.2.0/24"),
	netip.MustParsePrefix("192.168.0.0/16"),
	netip.MustParsePrefix("198.18.0.0/15"),
	netip.MustParsePrefix("224.0.0.0/3"), // multicast + class E + broadcast
}

// NewAllocator returns an allocator starting at 1.0.0.0.
func NewAllocator() *Allocator {
	return &Allocator{cursor: 1 << 24} // 1.0.0.0
}

// reservedContaining returns the reserved range containing addr, if any.
func reservedContaining(addr netip.Addr) (netip.Prefix, bool) {
	for _, r := range reservedRanges {
		if r.Contains(addr) {
			return r, true
		}
	}
	return netip.Prefix{}, false
}

// Alloc returns the next free block with the given prefix length
// (8 ≤ bits ≤ 30). It returns an error when the space is exhausted.
func (a *Allocator) Alloc(bits int) (netip.Prefix, error) {
	if bits < 8 || bits > 30 {
		return netip.Prefix{}, fmt.Errorf("netdb: prefix length %d out of [8,30]", bits)
	}
	size := uint32(1) << (32 - bits)
	for {
		// Align the cursor to the block size.
		if rem := a.cursor % size; rem != 0 {
			a.cursor += size - rem
		}
		if a.cursor < 1<<24 { // wrapped around
			return netip.Prefix{}, fmt.Errorf("netdb: IPv4 space exhausted")
		}
		p := PrefixFromUint32(a.cursor, bits)
		// The block is clean only if neither endpoint is reserved and no
		// reserved range starts inside it.
		if r, hit := reservedContaining(p.Addr()); hit {
			// Jump past the reserved range.
			base := AddrToUint32(r.Addr())
			a.cursor = base + 1<<(32-r.Bits())
			continue
		}
		last := AddrFromUint32(a.cursor + size - 1)
		if r, hit := reservedContaining(last); hit {
			base := AddrToUint32(r.Addr())
			a.cursor = base + 1<<(32-r.Bits())
			continue
		}
		a.cursor += size
		return p, nil
	}
}

// BitsForHosts returns the smallest prefix length whose block holds at
// least n addresses, clamped to [8, 30].
func BitsForHosts(n int64) int {
	bits := 30
	var capacity int64 = 4
	for bits > 8 && capacity < n {
		bits--
		capacity <<= 1
	}
	return bits
}
