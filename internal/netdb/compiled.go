package netdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/netip"
	"sort"
	"unsafe"
)

// This file implements the compiled form of DB: the pointer-chasing trie
// plus per-route Route structs flattened into a handful of contiguous
// typed slabs inside one versioned, checksummed byte artifact. A server
// (or a fleet of per-world Labs) builds the database once with Compile
// and every consumer loads it with LoadBytes, which aliases the slabs
// straight out of the artifact instead of reconstructing the trie — the
// mmap-style pattern GeoIP readers use for their .mmdb files.
//
// Artifact layout, version 1 (all integers little-endian):
//
//	magic     4 bytes  FB 'N' 'D' 'B'
//	version   u16      1
//	flags     u16      0 (reserved; loaders reject nonzero)
//	countryN  u32      then countryN × (u32 length + bytes), sorted,
//	                   unique — the country-code dictionary
//	routeN    u32
//	pad       zeros to the next 8-byte boundary
//	bases     routeN × u32   prefix base addresses, walk (address) order
//	asns      routeN × u32   origin ASNs
//	regIdx    routeN × u16   dictionary index of RegisteredCountry
//	trueIdx   routeN × u16   dictionary index of TrueCountry
//	bits      routeN × u8    prefix lengths (0..32)
//	pad       zeros to the next 4-byte boundary
//	nodeN     u32
//	nodes     nodeN × 3 × u32  child0, child1, route index (preorder;
//	                           0xFFFFFFFF = none; node 0 is the root)
//	crc       u32      CRC-32C (Castagnoli) of every byte before it
//
// LoadBytes validates the checksum and every index once, up front, so
// lookups run with plain slice indexing and zero allocations.

// CompiledVersion is the artifact version this package writes.
const CompiledVersion = 1

// cdbNone marks an absent child or route index in the node slab.
const cdbNone = ^uint32(0)

var cdbMagic = [4]byte{0xFB, 'N', 'D', 'B'}

var cdbCRC = crc32.MakeTable(crc32.Castagnoli)

var cdbLE = binary.LittleEndian

// cdbHostLittle gates slab aliasing, exactly as in the frame codec.
var cdbHostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Database is the read side shared by the live *DB and the compiled
// *CompiledDB, so consumers (log pipelines, samplers, HTTP handlers) can
// take either.
type Database interface {
	Lookup(addr netip.Addr) (Route, bool)
	ASN(addr netip.Addr) uint32
	PublicCountry(addr netip.Addr) string
	TrueCountry(addr netip.Addr) string
	Len() int
	Walk(fn func(p netip.Prefix, r Route) bool)
}

var (
	_ Database = (*DB)(nil)
	_ Database = (*CompiledDB)(nil)
)

// CompiledDB is a read-only DB view over a compiled artifact. All slabs
// alias the loaded byte slice (see LoadBytes); the zero value is an
// empty database.
type CompiledDB struct {
	countries []string
	bases     []uint32
	bits      []byte
	asns      []uint32
	regIdx    []uint16
	trueIdx   []uint16
	nodes     []uint32 // 3 entries per node: child0, child1, route index
}

// Compile flattens db into a version-1 artifact. The route slabs are in
// Walk (address) order and node 0 is the trie root, so LoadBytes∘Compile
// answers every query identically to db.
func Compile(db *DB) ([]byte, error) {
	// Collect the country dictionary first: sorted and unique so the
	// artifact is deterministic for a given database.
	dict := map[string]uint16{}
	var countries []string
	db.Walk(func(_ netip.Prefix, r Route) bool {
		for _, c := range []string{r.RegisteredCountry, r.TrueCountry} {
			if _, ok := dict[c]; !ok {
				dict[c] = 0
				countries = append(countries, c)
			}
		}
		return true
	})
	sort.Strings(countries)
	if len(countries) > 1<<16 {
		return nil, fmt.Errorf("netdb: %d countries exceed the u16 dictionary", len(countries))
	}
	for i, c := range countries {
		dict[c] = uint16(i)
	}

	// Flatten trie and routes together in preorder: a node's route is
	// recorded before its children's, which is exactly Walk order.
	type flatNode struct{ c0, c1, route uint32 }
	var nodes []flatNode
	var routes []struct {
		p netip.Prefix
		r Route
	}
	var rec func(n *node[Route]) uint32
	rec = func(n *node[Route]) uint32 {
		if n == nil {
			return cdbNone
		}
		idx := uint32(len(nodes))
		nodes = append(nodes, flatNode{cdbNone, cdbNone, cdbNone})
		if n.hasValue {
			nodes[idx].route = uint32(len(routes))
			routes = append(routes, struct {
				p netip.Prefix
				r Route
			}{n.prefix, n.value})
		}
		c0 := rec(n.children[0])
		c1 := rec(n.children[1])
		nodes[idx].c0, nodes[idx].c1 = c0, c1
		return idx
	}
	rec(db.table.root)
	if uint64(len(nodes)) >= uint64(cdbNone) || uint64(len(routes)) >= uint64(cdbNone) {
		return nil, fmt.Errorf("netdb: database too large to compile")
	}

	size := 4 + 2 + 2 + 4
	for _, c := range countries {
		size += 4 + len(c)
	}
	size += 4
	size += cdbPad8(size)
	size += len(routes) * (4 + 4 + 2 + 2 + 1)
	size += cdbPad4(size)
	size += 4 + len(nodes)*12
	size += 4 // crc

	buf := make([]byte, 0, size)
	buf = append(buf, cdbMagic[:]...)
	buf = cdbLE.AppendUint16(buf, CompiledVersion)
	buf = cdbLE.AppendUint16(buf, 0)
	buf = cdbLE.AppendUint32(buf, uint32(len(countries)))
	for _, c := range countries {
		buf = cdbLE.AppendUint32(buf, uint32(len(c)))
		buf = append(buf, c...)
	}
	buf = cdbLE.AppendUint32(buf, uint32(len(routes)))
	for i := cdbPad8(len(buf)); i > 0; i-- {
		buf = append(buf, 0)
	}
	for _, rt := range routes {
		buf = cdbLE.AppendUint32(buf, AddrToUint32(rt.p.Addr()))
	}
	for _, rt := range routes {
		buf = cdbLE.AppendUint32(buf, rt.r.ASN)
	}
	for _, rt := range routes {
		buf = cdbLE.AppendUint16(buf, dict[rt.r.RegisteredCountry])
	}
	for _, rt := range routes {
		buf = cdbLE.AppendUint16(buf, dict[rt.r.TrueCountry])
	}
	for _, rt := range routes {
		buf = append(buf, byte(rt.p.Bits()))
	}
	for i := cdbPad4(len(buf)); i > 0; i-- {
		buf = append(buf, 0)
	}
	buf = cdbLE.AppendUint32(buf, uint32(len(nodes)))
	for _, n := range nodes {
		buf = cdbLE.AppendUint32(buf, n.c0)
		buf = cdbLE.AppendUint32(buf, n.c1)
		buf = cdbLE.AppendUint32(buf, n.route)
	}
	buf = cdbLE.AppendUint32(buf, crc32.Checksum(buf, cdbCRC))
	return buf, nil
}

func cdbPad8(n int) int { return (8 - n%8) % 8 }
func cdbPad4(n int) int { return (4 - n%4) % 4 }

// cdbCorrupt reports a structurally invalid artifact.
type cdbCorrupt string

func (e cdbCorrupt) Error() string { return "netdb: corrupt artifact: " + string(e) }

// LoadBytes opens a compiled artifact, aliasing the route and node slabs
// out of buf: the caller must keep buf alive as long as the database and
// must not mutate it. Every checksum, bound, and index is verified here,
// once, so the returned database's queries are allocation-free slice
// walks. On a big-endian host (or an unaligned buffer) the affected
// slabs are copied instead — still one allocation per slab.
func LoadBytes(buf []byte) (*CompiledDB, error) {
	if len(buf) < 4+2+2+4+4+4+12+4 { // header + counts + root node + crc
		return nil, cdbCorrupt("shorter than the fixed header")
	}
	if [4]byte(buf[:4]) != cdbMagic {
		return nil, cdbCorrupt("bad magic")
	}
	body := buf[:len(buf)-4]
	if want := cdbLE.Uint32(buf[len(buf)-4:]); crc32.Checksum(body, cdbCRC) != want {
		return nil, cdbCorrupt("checksum mismatch")
	}
	r := &cdbReader{b: body, off: 4}
	if v := r.u16(); v != CompiledVersion {
		return nil, fmt.Errorf("netdb: unsupported artifact version %d (have %d)", v, CompiledVersion)
	}
	if fl := r.u16(); fl != 0 {
		return nil, fmt.Errorf("netdb: unsupported artifact flags %#x", fl)
	}

	countryN := r.u32()
	if uint64(countryN)*4 > r.remaining() {
		return nil, cdbCorrupt("country count exceeds buffer")
	}
	countries := make([]string, countryN)
	for i := range countries {
		countries[i] = r.str()
	}

	routeN := r.u32()
	if uint64(routeN)*13 > r.remaining() {
		return nil, cdbCorrupt("route count exceeds buffer")
	}
	r.pad(8)
	db := &CompiledDB{countries: countries}
	db.bases = cdbAliasU32(r.take(uint64(routeN)*4), int(routeN))
	db.asns = cdbAliasU32(r.take(uint64(routeN)*4), int(routeN))
	db.regIdx = cdbAliasU16(r.take(uint64(routeN)*2), int(routeN))
	db.trueIdx = cdbAliasU16(r.take(uint64(routeN)*2), int(routeN))
	db.bits = r.take(uint64(routeN))
	r.pad(4)

	nodeN := r.u32()
	if uint64(nodeN)*12 > r.remaining() {
		return nil, cdbCorrupt("node count exceeds buffer")
	}
	db.nodes = cdbAliasU32(r.take(uint64(nodeN)*12), int(nodeN)*3)
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, cdbCorrupt("trailing bytes after the node slab")
	}
	if nodeN == 0 {
		return nil, cdbCorrupt("missing root node")
	}

	// Up-front validation: after this, queries index slabs unchecked.
	for i := 0; i < int(routeN); i++ {
		if db.bits[i] > 32 {
			return nil, cdbCorrupt("prefix length over 32")
		}
		if uint32(db.regIdx[i]) >= countryN || uint32(db.trueIdx[i]) >= countryN {
			return nil, cdbCorrupt("country index out of range")
		}
	}
	for i, v := range db.nodes {
		if v == cdbNone {
			continue
		}
		if i%3 == 2 {
			if v >= routeN {
				return nil, cdbCorrupt("route index out of range")
			}
		} else if v >= nodeN {
			return nil, cdbCorrupt("child index out of range")
		}
	}
	return db, nil
}

// cdbReader is the artifact's sticky-error cursor, mirroring the frame
// codec's reader.
type cdbReader struct {
	b   []byte
	off int
	err error
}

func (r *cdbReader) fail(msg string) {
	if r.err == nil {
		r.err = cdbCorrupt(msg)
	}
}

func (r *cdbReader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("truncated")
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

func (r *cdbReader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return cdbLE.Uint16(p)
}

func (r *cdbReader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return cdbLE.Uint32(p)
}

func (r *cdbReader) str() string {
	n := r.u32()
	p := r.take(uint64(n))
	if len(p) == 0 {
		return ""
	}
	return unsafe.String(&p[0], len(p))
}

func (r *cdbReader) pad(to int) {
	for r.off%to != 0 {
		p := r.take(1)
		if p == nil {
			return
		}
		if p[0] != 0 {
			r.fail("nonzero padding")
			return
		}
	}
}

func (r *cdbReader) remaining() uint64 { return uint64(len(r.b) - r.off) }

// cdbAliasU32 views p as n little-endian uint32s, aliasing when aligned
// on a little-endian host and copying otherwise.
func cdbAliasU32(p []byte, n int) []uint32 {
	if n == 0 || p == nil {
		return nil
	}
	if cdbHostLittle && uintptr(unsafe.Pointer(&p[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = cdbLE.Uint32(p[4*i:])
	}
	return out
}

// cdbAliasU16 is cdbAliasU32 for 2-byte slabs.
func cdbAliasU16(p []byte, n int) []uint16 {
	if n == 0 || p == nil {
		return nil
	}
	if cdbHostLittle && uintptr(unsafe.Pointer(&p[0]))%2 == 0 {
		return unsafe.Slice((*uint16)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = cdbLE.Uint16(p[2*i:])
	}
	return out
}

// route materializes route i from the slabs.
func (db *CompiledDB) route(i uint32) Route {
	return Route{
		ASN:               db.asns[i],
		RegisteredCountry: db.countries[db.regIdx[i]],
		TrueCountry:       db.countries[db.trueIdx[i]],
	}
}

// Lookup resolves an address to its longest-prefix route, matching
// (*DB).Lookup bit for bit. It performs no allocations.
func (db *CompiledDB) Lookup(addr netip.Addr) (Route, bool) {
	if !addr.Is4() || len(db.nodes) == 0 {
		return Route{}, false
	}
	a := addr.As4()
	best := cdbNone
	cur := uint32(0)
	for i := 0; ; i++ {
		if ri := db.nodes[3*cur+2]; ri != cdbNone {
			best = ri
		}
		if i == 32 {
			break
		}
		bit := uint32(a[i/8]>>(7-i%8)) & 1
		next := db.nodes[3*cur+bit]
		if next == cdbNone {
			break
		}
		cur = next
	}
	if best == cdbNone {
		return Route{}, false
	}
	return db.route(best), true
}

// ASN resolves an address to its origin ASN; 0 if unrouted.
func (db *CompiledDB) ASN(addr netip.Addr) uint32 {
	r, ok := db.Lookup(addr)
	if !ok {
		return 0
	}
	return r.ASN
}

// PublicCountry geolocates an address as a public database would.
func (db *CompiledDB) PublicCountry(addr netip.Addr) string {
	r, ok := db.Lookup(addr)
	if !ok {
		return ""
	}
	return r.RegisteredCountry
}

// TrueCountry geolocates an address to the actual user location.
func (db *CompiledDB) TrueCountry(addr netip.Addr) string {
	r, ok := db.Lookup(addr)
	if !ok {
		return ""
	}
	return r.TrueCountry
}

// Len returns the number of compiled routes.
func (db *CompiledDB) Len() int { return len(db.bases) }

// Walk visits all routes in address order, same as (*DB).Walk.
func (db *CompiledDB) Walk(fn func(p netip.Prefix, r Route) bool) {
	for i := range db.bases {
		p := PrefixFromUint32(db.bases[i], int(db.bits[i]))
		if !fn(p, db.route(uint32(i))) {
			return
		}
	}
}
