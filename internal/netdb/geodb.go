package netdb

import "net/netip"

// Route is the payload the simulators attach to each announced prefix.
type Route struct {
	ASN uint32 // origin AS of the announcement

	// RegisteredCountry is where the block is registered / geolocated by
	// a public MaxMind-style database. APNIC's pipeline sees this view.
	RegisteredCountry string

	// TrueCountry is where the block's human users actually are. The
	// CDN's proprietary internal geolocation resolves to this view. For
	// most blocks the two agree; for VPN egress ranges they diverge.
	TrueCountry string
}

// DB is the combined routing + geolocation database shared by the
// simulated measurement systems.
type DB struct {
	table *Table[Route]
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{table: NewTable[Route]()}
}

// Announce installs a route for prefix.
func (db *DB) Announce(p netip.Prefix, r Route) error {
	return db.table.Insert(p, r)
}

// Lookup resolves an address to its route.
func (db *DB) Lookup(addr netip.Addr) (Route, bool) {
	r, _, ok := db.table.Lookup(addr)
	return r, ok
}

// ASN resolves an address to its origin ASN ("deriving the client IP's
// ASN using BGP feeds", §3.4). Returns 0 if unrouted.
func (db *DB) ASN(addr netip.Addr) uint32 {
	r, ok := db.Lookup(addr)
	if !ok {
		return 0
	}
	return r.ASN
}

// PublicCountry geolocates an address the way a public database would —
// the view APNIC's pipeline uses.
func (db *DB) PublicCountry(addr netip.Addr) string {
	r, ok := db.Lookup(addr)
	if !ok {
		return ""
	}
	return r.RegisteredCountry
}

// TrueCountry geolocates an address to the actual user location — the
// view the CDN's internal tool produces.
func (db *DB) TrueCountry(addr netip.Addr) string {
	r, ok := db.Lookup(addr)
	if !ok {
		return ""
	}
	return r.TrueCountry
}

// Len returns the number of announced prefixes.
func (db *DB) Len() int { return db.table.Len() }

// Walk visits all announced routes in address order.
func (db *DB) Walk(fn func(p netip.Prefix, r Route) bool) {
	db.table.Walk(fn)
}
