package netdb

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestTrieLongestPrefixMatch(t *testing.T) {
	tbl := NewTable[uint32]()
	if err := tbl.Insert(mustPrefix("10.0.0.0/8"), 100); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(mustPrefix("10.1.0.0/16"), 200); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(mustPrefix("10.1.2.0/24"), 300); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		addr string
		want uint32
		pfx  string
	}{
		{"10.2.3.4", 100, "10.0.0.0/8"},
		{"10.1.9.9", 200, "10.1.0.0/16"},
		{"10.1.2.3", 300, "10.1.2.0/24"},
	}
	for _, c := range cases {
		v, p, ok := tbl.Lookup(netip.MustParseAddr(c.addr))
		if !ok || v != c.want || p != mustPrefix(c.pfx) {
			t.Errorf("Lookup(%s) = (%d, %v, %v), want (%d, %s, true)", c.addr, v, p, ok, c.want, c.pfx)
		}
	}
	if _, _, ok := tbl.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("lookup outside any prefix should miss")
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d, want 3", tbl.Len())
	}
}

func TestTrieReplaceAndExact(t *testing.T) {
	tbl := NewTable[string]()
	p := mustPrefix("192.0.1.0/24")
	_ = tbl.Insert(p, "a")
	_ = tbl.Insert(p, "b")
	if tbl.Len() != 1 {
		t.Fatalf("replacing should not grow Len: %d", tbl.Len())
	}
	v, ok := tbl.Exact(p)
	if !ok || v != "b" {
		t.Fatalf("Exact = (%q, %v)", v, ok)
	}
	if _, ok := tbl.Exact(mustPrefix("192.0.0.0/16")); ok {
		t.Error("Exact on uninstalled prefix should miss")
	}
}

func TestTrieRejectsNonIPv4(t *testing.T) {
	tbl := NewTable[int]()
	if err := tbl.Insert(netip.MustParsePrefix("2001:db8::/32"), 1); err == nil {
		t.Error("IPv6 insert should fail")
	}
	if _, _, ok := tbl.Lookup(netip.MustParseAddr("::1")); ok {
		t.Error("IPv6 lookup should miss")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	tbl := NewTable[int]()
	_ = tbl.Insert(mustPrefix("0.0.0.0/0"), 7)
	v, _, ok := tbl.Lookup(netip.MustParseAddr("203.0.113.7"))
	if !ok || v != 7 {
		t.Fatalf("default route lookup = (%d, %v)", v, ok)
	}
}

func TestTrieHostRoute(t *testing.T) {
	tbl := NewTable[int]()
	_ = tbl.Insert(mustPrefix("198.51.100.1/32"), 1)
	_ = tbl.Insert(mustPrefix("198.51.100.0/24"), 2)
	v, _, _ := tbl.Lookup(netip.MustParseAddr("198.51.100.1"))
	if v != 1 {
		t.Fatalf("host route should win: got %d", v)
	}
	v, _, _ = tbl.Lookup(netip.MustParseAddr("198.51.100.2"))
	if v != 2 {
		t.Fatalf("covering route should match others: got %d", v)
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	tbl := NewTable[int]()
	_ = tbl.Insert(mustPrefix("9.0.0.0/8"), 1)
	_ = tbl.Insert(mustPrefix("1.0.0.0/8"), 2)
	_ = tbl.Insert(mustPrefix("5.5.0.0/16"), 3)
	var order []string
	tbl.Walk(func(p netip.Prefix, v int) bool {
		order = append(order, p.String())
		return true
	})
	want := []string{"1.0.0.0/8", "5.5.0.0/16", "9.0.0.0/8"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("walk order = %v, want %v", order, want)
	}
	count := 0
	tbl.Walk(func(p netip.Prefix, v int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d nodes", count)
	}
}

func TestAllocatorNoOverlapNoReserved(t *testing.T) {
	a := NewAllocator()
	var prefixes []netip.Prefix
	s := rng.New(1)
	for i := 0; i < 500; i++ {
		bits := 12 + s.Intn(16)
		p, err := a.Alloc(bits)
		if err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, p)
	}
	for i, p := range prefixes {
		for _, r := range reservedRanges {
			if r.Overlaps(p) {
				t.Fatalf("allocation %v overlaps reserved %v", p, r)
			}
		}
		for j := i + 1; j < len(prefixes); j++ {
			if p.Overlaps(prefixes[j]) {
				t.Fatalf("allocations overlap: %v and %v", p, prefixes[j])
			}
		}
	}
}

func TestAllocatorDeterministic(t *testing.T) {
	a1, a2 := NewAllocator(), NewAllocator()
	for i := 0; i < 50; i++ {
		bits := 14 + i%10
		p1, err1 := a1.Alloc(bits)
		p2, err2 := a2.Alloc(bits)
		if err1 != nil || err2 != nil || p1 != p2 {
			t.Fatalf("allocators diverged at %d: %v vs %v", i, p1, p2)
		}
	}
}

func TestAllocatorRejectsBadBits(t *testing.T) {
	a := NewAllocator()
	if _, err := a.Alloc(7); err == nil {
		t.Error("Alloc(7) should fail")
	}
	if _, err := a.Alloc(31); err == nil {
		t.Error("Alloc(31) should fail")
	}
}

func TestBitsForHosts(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{1, 30}, {4, 30}, {5, 29}, {250, 24}, {1 << 20, 12}, {1 << 30, 8},
	}
	for _, c := range cases {
		if got := BitsForHosts(c.n); got != c.want {
			t.Errorf("BitsForHosts(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDBDualGeolocation(t *testing.T) {
	db := NewDB()
	// Normal block: both views agree.
	_ = db.Announce(mustPrefix("3.0.0.0/16"), Route{ASN: 64500, RegisteredCountry: "FR", TrueCountry: "FR"})
	// VPN egress block: registered in Norway, users actually in Germany.
	_ = db.Announce(mustPrefix("4.0.0.0/20"), Route{ASN: 64501, RegisteredCountry: "NO", TrueCountry: "DE"})

	fr := netip.MustParseAddr("3.0.1.2")
	if db.PublicCountry(fr) != "FR" || db.TrueCountry(fr) != "FR" {
		t.Error("normal block views should agree on FR")
	}
	vpn := netip.MustParseAddr("4.0.0.9")
	if db.PublicCountry(vpn) != "NO" {
		t.Errorf("public geolocation of VPN block = %q, want NO", db.PublicCountry(vpn))
	}
	if db.TrueCountry(vpn) != "DE" {
		t.Errorf("true geolocation of VPN block = %q, want DE", db.TrueCountry(vpn))
	}
	if db.ASN(vpn) != 64501 {
		t.Errorf("ASN = %d", db.ASN(vpn))
	}
	if db.ASN(netip.MustParseAddr("8.8.8.8")) != 0 {
		t.Error("unrouted ASN should be 0")
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return AddrToUint32(AddrFromUint32(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for random installed /16s, any address inside resolves to the
// installed value and any address outside misses.
func TestQuickTrieMembership(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		tbl := NewTable[uint32]()
		installed := map[uint32]uint32{} // /16 base -> value
		for i := 0; i < 20; i++ {
			base := uint32(s.Intn(1<<16)) << 16
			v := uint32(s.Intn(1 << 30))
			installed[base] = v
			if err := tbl.Insert(PrefixFromUint32(base, 16), v); err != nil {
				return false
			}
		}
		for i := 0; i < 200; i++ {
			addr := uint32(s.Uint64())
			v, _, ok := tbl.Lookup(AddrFromUint32(addr))
			want, present := installed[addr&0xffff0000]
			if present != ok {
				return false
			}
			if present && v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	tbl := NewTable[uint32]()
	s := rng.New(1)
	for i := 0; i < 100000; i++ {
		base := uint32(s.Uint64()) &^ 0xff
		_ = tbl.Insert(PrefixFromUint32(base, 24), uint32(i))
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = AddrFromUint32(uint32(s.Uint64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i%len(addrs)])
	}
}
