// Package netdb implements the IP-layer substrate both measurement systems
// in the paper sit on: an IPv4 longest-prefix-match routing trie, an
// address-block allocator, and a geolocation database with two views —
// the *registered* country (what a MaxMind-style lookup, and hence APNIC,
// sees) and the *true* client country (what the CDN's proprietary internal
// geolocation resolves). The divergence between the two views is exactly
// what produces the paper's Norway VPN outlier (§4.4).
package netdb

import (
	"fmt"
	"net/netip"
)

// Table is a binary trie keyed by IPv4 prefixes supporting longest-prefix
// match, the data structure underlying BGP FIB lookups. V is the payload
// attached to each route (an ASN, a geolocation record, ...).
type Table[V any] struct {
	root *node[V]
	n    int
}

type node[V any] struct {
	children [2]*node[V]
	hasValue bool
	value    V
	prefix   netip.Prefix
}

// NewTable returns an empty routing table.
func NewTable[V any]() *Table[V] {
	return &Table[V]{root: &node[V]{}}
}

// Len returns the number of installed prefixes.
func (t *Table[V]) Len() int { return t.n }

// bitAt returns bit i (0 = most significant) of the IPv4 address.
func bitAt(a netip.Addr, i int) int {
	b := a.As4()
	return int(b[i/8]>>(7-i%8)) & 1
}

// Insert installs value at prefix, replacing any previous value for the
// exact same prefix. It returns an error for non-IPv4 or invalid prefixes.
func (t *Table[V]) Insert(p netip.Prefix, value V) error {
	if !p.IsValid() || !p.Addr().Is4() {
		return fmt.Errorf("netdb: invalid IPv4 prefix %v", p)
	}
	p = p.Masked()
	cur := t.root
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(p.Addr(), i)
		if cur.children[b] == nil {
			cur.children[b] = &node[V]{}
		}
		cur = cur.children[b]
	}
	if !cur.hasValue {
		t.n++
	}
	cur.hasValue = true
	cur.value = value
	cur.prefix = p
	return nil
}

// Lookup returns the value of the longest installed prefix containing
// addr, along with that prefix. ok is false if no prefix matches.
func (t *Table[V]) Lookup(addr netip.Addr) (value V, prefix netip.Prefix, ok bool) {
	if !addr.Is4() {
		return value, prefix, false
	}
	cur := t.root
	for i := 0; ; i++ {
		if cur.hasValue {
			value, prefix, ok = cur.value, cur.prefix, true
		}
		if i == 32 {
			return value, prefix, ok
		}
		b := bitAt(addr, i)
		if cur.children[b] == nil {
			return value, prefix, ok
		}
		cur = cur.children[b]
	}
}

// Exact returns the value installed at exactly prefix, if any.
func (t *Table[V]) Exact(p netip.Prefix) (V, bool) {
	var zero V
	if !p.IsValid() || !p.Addr().Is4() {
		return zero, false
	}
	p = p.Masked()
	cur := t.root
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(p.Addr(), i)
		if cur.children[b] == nil {
			return zero, false
		}
		cur = cur.children[b]
	}
	if cur.hasValue && cur.prefix == p {
		return cur.value, true
	}
	return zero, false
}

// Walk visits every installed (prefix, value) pair in trie (address) order.
// The walk stops early if fn returns false.
func (t *Table[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	var rec func(n *node[V]) bool
	rec = func(n *node[V]) bool {
		if n == nil {
			return true
		}
		if n.hasValue && !fn(n.prefix, n.value) {
			return false
		}
		return rec(n.children[0]) && rec(n.children[1])
	}
	rec(t.root)
}

// PrefixFromUint32 builds an IPv4 prefix from a 32-bit base address and a
// prefix length.
func PrefixFromUint32(base uint32, bits int) netip.Prefix {
	a := netip.AddrFrom4([4]byte{byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base)})
	return netip.PrefixFrom(a, bits).Masked()
}

// AddrFromUint32 converts a 32-bit value to an IPv4 address.
func AddrFromUint32(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// AddrToUint32 converts an IPv4 address to its 32-bit value.
func AddrToUint32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
