package netdb

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"net/netip"
	"testing"
)

// nestedDB builds a database exercising the awkward trie shapes: a
// default route, nested prefixes three deep, adjacent siblings, a host
// route, and diverging geolocation views.
func nestedDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	announce := func(cidr string, asn uint32, reg, true_ string) {
		t.Helper()
		if err := db.Announce(netip.MustParsePrefix(cidr), Route{ASN: asn, RegisteredCountry: reg, TrueCountry: true_}); err != nil {
			t.Fatal(err)
		}
	}
	announce("0.0.0.0/0", 1, "ZZ", "ZZ")
	announce("10.0.0.0/8", 64500, "DE", "DE")
	announce("10.1.0.0/16", 64501, "DE", "FR")
	announce("10.1.2.0/24", 64502, "FR", "FR")
	announce("10.2.0.0/16", 64503, "NL", "NL")
	announce("192.0.2.17/32", 64504, "NO", "SE")
	announce("198.51.100.0/24", 64505, "NO", "NO")
	return db
}

// probes covers every announced prefix plus boundary and unrouted space.
var probes = []string{
	"10.0.0.1", "10.1.0.1", "10.1.2.3", "10.1.3.1", "10.2.0.255",
	"10.255.255.255", "192.0.2.17", "192.0.2.18", "198.51.100.99",
	"203.0.113.1", "0.0.0.0", "255.255.255.255",
}

func TestCompiledEquivalence(t *testing.T) {
	db := nestedDB(t)
	buf, err := Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	cdb, err := LoadBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, db, cdb)

	// IPv6 addresses resolve to nothing in both views.
	if _, ok := cdb.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("compiled DB resolved an IPv6 address")
	}
}

// assertEquivalent checks that the compiled view answers every read
// exactly like the live trie.
func assertEquivalent(t *testing.T, db *DB, cdb *CompiledDB) {
	t.Helper()
	if db.Len() != cdb.Len() {
		t.Fatalf("Len: live %d, compiled %d", db.Len(), cdb.Len())
	}
	type walked struct {
		p netip.Prefix
		r Route
	}
	var a, b []walked
	db.Walk(func(p netip.Prefix, r Route) bool { a = append(a, walked{p, r}); return true })
	cdb.Walk(func(p netip.Prefix, r Route) bool { b = append(b, walked{p, r}); return true })
	if len(a) != len(b) {
		t.Fatalf("Walk: live visited %d, compiled %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Walk entry %d: live %+v, compiled %+v", i, a[i], b[i])
		}
	}
	for _, s := range probes {
		addr := netip.MustParseAddr(s)
		lr, lok := db.Lookup(addr)
		cr, cok := cdb.Lookup(addr)
		if lok != cok || lr != cr {
			t.Errorf("Lookup(%s): live (%+v,%v), compiled (%+v,%v)", s, lr, lok, cr, cok)
		}
		if db.ASN(addr) != cdb.ASN(addr) ||
			db.PublicCountry(addr) != cdb.PublicCountry(addr) ||
			db.TrueCountry(addr) != cdb.TrueCountry(addr) {
			t.Errorf("derived views disagree at %s", s)
		}
	}
}

// TestCompiledEquivalenceRandom fuzzes the shape: random prefixes, then
// random probe addresses, compiled vs live.
func TestCompiledEquivalenceRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	db := NewDB()
	countries := []string{"DE", "FR", "NL", "NO", "SE", "ZZ"}
	for i := 0; i < 500; i++ {
		bits := 4 + rnd.Intn(29)
		p := PrefixFromUint32(rnd.Uint32(), bits)
		r := Route{
			ASN:               uint32(64000 + rnd.Intn(1000)),
			RegisteredCountry: countries[rnd.Intn(len(countries))],
			TrueCountry:       countries[rnd.Intn(len(countries))],
		}
		if err := db.Announce(p, r); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	cdb, err := LoadBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != cdb.Len() {
		t.Fatalf("Len: live %d, compiled %d", db.Len(), cdb.Len())
	}
	for i := 0; i < 5000; i++ {
		addr := AddrFromUint32(rnd.Uint32())
		lr, lok := db.Lookup(addr)
		cr, cok := cdb.Lookup(addr)
		if lok != cok || lr != cr {
			t.Fatalf("Lookup(%s): live (%+v,%v), compiled (%+v,%v)", addr, lr, lok, cr, cok)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	db := nestedDB(t)
	a, err := Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Compile is not deterministic for the same database")
	}
}

func TestCompiledEmpty(t *testing.T) {
	buf, err := Compile(NewDB())
	if err != nil {
		t.Fatal(err)
	}
	cdb, err := LoadBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if cdb.Len() != 0 {
		t.Fatalf("empty DB compiled to %d routes", cdb.Len())
	}
	if _, ok := cdb.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Error("empty compiled DB resolved an address")
	}
}

func TestLoadBytesRejectsCorruption(t *testing.T) {
	buf, err := Compile(nestedDB(t))
	if err != nil {
		t.Fatal(err)
	}
	resealArtifact := func(b []byte) []byte {
		if len(b) < 4 {
			return b
		}
		body := b[:len(b)-4]
		return cdbLE.AppendUint32(body, crc32.Checksum(body, cdbCRC))
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:9] }},
		{"bad magic", func(b []byte) []byte { b[1] = 'X'; return b }},
		{"future version", func(b []byte) []byte { b[4] = 9; return resealArtifact(b) }},
		{"nonzero flags", func(b []byte) []byte { b[6] = 1; return resealArtifact(b) }},
		{"flipped bit", func(b []byte) []byte { b[len(b)/2] ^= 0x20; return b }},
		{"flipped crc", func(b []byte) []byte { b[len(b)-2] ^= 0xFF; return b }},
		{"truncated", func(b []byte) []byte { return resealArtifact(b[:len(b)-16]) }},
		{"trailing bytes", func(b []byte) []byte { return resealArtifact(append(b, 1, 2, 3, 4)) }},
	}
	for _, tc := range cases {
		in := tc.mutate(append([]byte(nil), buf...))
		if _, err := LoadBytes(in); err == nil {
			t.Errorf("%s: LoadBytes accepted corrupt artifact", tc.name)
		}
	}
}

// TestCompiledLookupAllocs pins the hot path: compiled lookups allocate
// nothing.
func TestCompiledLookupAllocs(t *testing.T) {
	buf, err := Compile(nestedDB(t))
	if err != nil {
		t.Fatal(err)
	}
	cdb, err := LoadBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	addr := netip.MustParseAddr("10.1.2.3")
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := cdb.Lookup(addr); !ok {
			t.Fatal("lookup failed")
		}
	}); n != 0 {
		t.Errorf("compiled Lookup allocates %.1f times per call, want 0", n)
	}
}

func BenchmarkCompiledLookup(b *testing.B) {
	buf, err := Compile(nestedDBBench(b))
	if err != nil {
		b.Fatal(err)
	}
	cdb, err := LoadBytes(buf)
	if err != nil {
		b.Fatal(err)
	}
	addr := netip.MustParseAddr("10.1.2.3")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdb.Lookup(addr)
	}
}

func BenchmarkLiveLookup(b *testing.B) {
	db := nestedDBBench(b)
	addr := netip.MustParseAddr("10.1.2.3")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Lookup(addr)
	}
}

// nestedDBBench mirrors nestedDB for benchmarks.
func nestedDBBench(b *testing.B) *DB {
	b.Helper()
	db := NewDB()
	for _, e := range []struct {
		cidr string
		r    Route
	}{
		{"0.0.0.0/0", Route{1, "ZZ", "ZZ"}},
		{"10.0.0.0/8", Route{64500, "DE", "DE"}},
		{"10.1.0.0/16", Route{64501, "DE", "FR"}},
		{"10.1.2.0/24", Route{64502, "FR", "FR"}},
	} {
		if err := db.Announce(netip.MustParsePrefix(e.cidr), e.r); err != nil {
			b.Fatal(err)
		}
	}
	return db
}
