package core

import (
	"sort"

	"repro/internal/orgs"
)

// Overlap quantifies how two datasets' (country, org) pair sets relate
// (§4.2, Figure 3): the raw pair counts, and how much of a weighting
// (users, User-Agents, traffic volume) the common pairs carry.
type Overlap struct {
	Both     int     // pairs in both datasets
	AOnly    int     // pairs only in the first dataset
	BOnly    int     // pairs only in the second dataset
	BothPctA float64 // share of dataset-A weight on common pairs
	BothPctB float64 // share of dataset-B weight on common pairs
}

// ComputeOverlap intersects the key sets of two (country, org)-keyed
// weightings and reports both the pair counts and the weighted coverage.
// Iteration is in sorted key order so the floating-point sums are
// bit-reproducible across runs.
func ComputeOverlap(a, b map[orgs.CountryOrg]float64) Overlap {
	var o Overlap
	var aBoth, aTotal, bBoth, bTotal float64
	for _, k := range sortedPairs(a) {
		v := a[k]
		aTotal += v
		if _, ok := b[k]; ok {
			o.Both++
			aBoth += v
		} else {
			o.AOnly++
		}
	}
	for _, k := range sortedPairs(b) {
		v := b[k]
		bTotal += v
		if _, ok := a[k]; ok {
			bBoth += v
		} else {
			o.BOnly++
		}
	}
	if aTotal > 0 {
		o.BothPctA = 100 * aBoth / aTotal
	}
	if bTotal > 0 {
		o.BothPctB = 100 * bBoth / bTotal
	}
	return o
}

func sortedPairs(m map[orgs.CountryOrg]float64) []orgs.CountryOrg {
	keys := make([]orgs.CountryOrg, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Country != keys[j].Country {
			return keys[i].Country < keys[j].Country
		}
		return keys[i].Org < keys[j].Org
	})
	return keys
}

// CountryCoverage is one row of the paper's Tables 3/5: within one
// country, the percentage of dataset-B weight (e.g. CDN traffic volume)
// carried by pairs also present in dataset A (APNIC).
type CountryCoverage struct {
	Country string
	Pct     float64
}

// PerCountryCoverage computes, per country, the share of b's weight on
// pairs present in a. Countries present in b but absent from a entirely
// get 0%.
func PerCountryCoverage(a, b map[orgs.CountryOrg]float64) []CountryCoverage {
	type acc struct{ both, total float64 }
	byCountry := map[string]*acc{}
	// Sorted key order keeps the per-country float sums bit-reproducible
	// across runs, as in ComputeOverlap.
	for _, k := range sortedPairs(b) {
		v := b[k]
		c := byCountry[k.Country]
		if c == nil {
			c = &acc{}
			byCountry[k.Country] = c
		}
		c.total += v
		if _, ok := a[k]; ok {
			c.both += v
		}
	}
	out := make([]CountryCoverage, 0, len(byCountry))
	for cc, c := range byCountry {
		pct := 0.0
		if c.total > 0 {
			pct = 100 * c.both / c.total
		}
		out = append(out, CountryCoverage{Country: cc, Pct: pct})
	}
	// Sort by coverage descending, then by country for determinism —
	// the order Tables 3/5 use.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pct != out[j].Pct {
			return out[i].Pct > out[j].Pct
		}
		return out[i].Country < out[j].Country
	})
	return out
}
