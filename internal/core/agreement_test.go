package core

import (
	"math"
	"testing"

	"repro/internal/orgs"
)

func TestCompareSharesPerfect(t *testing.T) {
	shares := map[string]float64{"a": 0.5, "b": 0.3, "c": 0.15, "d": 0.05}
	res := CompareShares(shares, shares)
	if res.Level != CompleteAgreement {
		t.Fatalf("identical shares level = %v", res.Level)
	}
	if math.Abs(res.Pearson-1) > 1e-9 || math.Abs(res.Kendall-1) > 1e-9 || math.Abs(res.Slope-1) > 1e-9 {
		t.Fatalf("identical shares: %+v", res)
	}
}

func TestCompareSharesScrambled(t *testing.T) {
	a := map[string]float64{"a": 0.5, "b": 0.3, "c": 0.15, "d": 0.05}
	b := map[string]float64{"a": 0.05, "b": 0.15, "c": 0.3, "d": 0.5}
	res := CompareShares(a, b)
	if res.Level == CompleteAgreement || res.Level == PrincipalOrgAgreement {
		t.Fatalf("reversed shares level = %v", res.Level)
	}
	if res.Kendall >= 0 {
		t.Fatalf("reversed shares Kendall = %v, want negative", res.Kendall)
	}
}

func TestCompareSharesMissingOrgsCountZero(t *testing.T) {
	a := map[string]float64{"a": 0.7, "b": 0.3}
	b := map[string]float64{"a": 0.7, "c": 0.3}
	res := CompareShares(a, b)
	if res.N != 3 {
		t.Fatalf("union size = %d, want 3", res.N)
	}
	if res.Level == CompleteAgreement {
		t.Fatal("shares disagreeing on half the mass cannot be Complete")
	}
}

func TestCompareSharesNoInformation(t *testing.T) {
	res := CompareShares(map[string]float64{"a": 1}, map[string]float64{"a": 1})
	if res.Level != NoInformation {
		t.Fatalf("two-org comparison level = %v, want NoInformation", res.Level)
	}
	res = CompareShares(nil, nil)
	if res.Level != NoInformation {
		t.Fatalf("empty comparison level = %v", res.Level)
	}
}

func TestKendallSmallOrgFilter(t *testing.T) {
	// Big orgs agree perfectly; a swarm of sub-0.5% orgs is reversed.
	// With the filter, Kendall stays high.
	a := map[string]float64{"big1": 0.6, "big2": 0.3}
	b := map[string]float64{"big1": 0.6, "big2": 0.3}
	for i := 0; i < 30; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i/26))
		a[id] = 0.0001 * float64(i+1)
		b[id] = 0.0001 * float64(30-i)
	}
	res := CompareShares(a, b)
	if res.Kendall < 0.5 {
		t.Fatalf("Kendall with tail filter = %v; the tail should be removed", res.Kendall)
	}
}

func TestClassifyPrincipalVsRank(t *testing.T) {
	// Strong Pearson, positive slope, weak Kendall → Principal only.
	r := Agreement{Pearson: 0.95, Kendall: 0.4, Slope: 0.9}
	if got := classify(r); got != PrincipalOrgAgreement {
		t.Errorf("classify = %v, want PrincipalOrgAgreement", got)
	}
	// Strong Kendall, weak Pearson → Rank only.
	r = Agreement{Pearson: 0.5, Kendall: 0.9, Slope: 0.9}
	if got := classify(r); got != RankAgreement {
		t.Errorf("classify = %v, want RankAgreement", got)
	}
	// Both strong but slope far from 1 → Principal (not Complete).
	r = Agreement{Pearson: 0.9, Kendall: 0.9, Slope: 3.0}
	if got := classify(r); got != PrincipalOrgAgreement {
		t.Errorf("classify = %v, want PrincipalOrgAgreement", got)
	}
	// Everything strong → Complete.
	r = Agreement{Pearson: 0.9, Kendall: 0.85, Slope: 1.1}
	if got := classify(r); got != CompleteAgreement {
		t.Errorf("classify = %v, want CompleteAgreement", got)
	}
	// Nothing strong → None.
	r = Agreement{Pearson: 0.3, Kendall: 0.2, Slope: 0.5}
	if got := classify(r); got != NoAgreement {
		t.Errorf("classify = %v, want NoAgreement", got)
	}
}

func TestPrincipalOrgMatch(t *testing.T) {
	a := map[string]float64{"x": 0.6, "y": 0.4}
	b := map[string]float64{"x": 0.5, "y": 0.5 - 1e-9}
	if !PrincipalOrgMatch(a, b) {
		t.Error("same top org should match")
	}
	c := map[string]float64{"x": 0.4, "y": 0.6}
	if PrincipalOrgMatch(a, c) {
		t.Error("different top orgs should not match")
	}
	if PrincipalOrgMatch(nil, a) {
		t.Error("empty dataset cannot match")
	}
}

func TestSummarize(t *testing.T) {
	agreements := map[string]Agreement{
		"AA": {Pearson: 0.95, Kendall: 0.9, Slope: 1.0, Level: CompleteAgreement},
		"BB": {Pearson: 0.9, Kendall: 0.3, Slope: 0.8, Level: PrincipalOrgAgreement},
		"CC": {Pearson: 0.2, Kendall: 0.1, Slope: -0.5, Level: NoAgreement},
		"DD": {Level: NoInformation},
	}
	match := map[string]bool{"AA": true, "BB": true, "CC": false}
	s := Summarize(agreements, match)
	if s.Countries != 3 {
		t.Fatalf("countries = %d, want 3 (NoInformation excluded)", s.Countries)
	}
	if math.Abs(s.PrincipalPct-66.66) > 1 {
		t.Errorf("principal pct = %v", s.PrincipalPct)
	}
	if math.Abs(s.CompletePct-33.33) > 1 {
		t.Errorf("complete pct = %v", s.CompletePct)
	}
	if math.Abs(s.RankPct-33.33) > 1 {
		t.Errorf("rank pct = %v", s.RankPct)
	}
	if math.Abs(s.NoAgreementPct-33.33) > 1 {
		t.Errorf("no-agreement pct = %v", s.NoAgreementPct)
	}
}

func TestLevelStrings(t *testing.T) {
	for _, l := range []AgreementLevel{NoInformation, NoAgreement, RankAgreement, PrincipalOrgAgreement, CompleteAgreement} {
		if l.String() == "" || l.String() == "Unknown" {
			t.Errorf("level %d has bad string", l)
		}
	}
}

func TestComputeOverlap(t *testing.T) {
	a := map[orgs.CountryOrg]float64{
		{Country: "FR", Org: "x"}: 80,
		{Country: "FR", Org: "y"}: 15,
		{Country: "FR", Org: "z"}: 5, // APNIC-only
	}
	b := map[orgs.CountryOrg]float64{
		{Country: "FR", Org: "x"}: 70,
		{Country: "FR", Org: "y"}: 20,
		{Country: "FR", Org: "w"}: 10, // CDN-only
	}
	o := ComputeOverlap(a, b)
	if o.Both != 2 || o.AOnly != 1 || o.BOnly != 1 {
		t.Fatalf("overlap counts = %+v", o)
	}
	if math.Abs(o.BothPctA-95) > 1e-9 {
		t.Errorf("A coverage = %v, want 95", o.BothPctA)
	}
	if math.Abs(o.BothPctB-90) > 1e-9 {
		t.Errorf("B coverage = %v, want 90", o.BothPctB)
	}
}

func TestPerCountryCoverage(t *testing.T) {
	a := map[orgs.CountryOrg]float64{
		{Country: "FR", Org: "x"}: 1,
	}
	b := map[orgs.CountryOrg]float64{
		{Country: "FR", Org: "x"}: 90,
		{Country: "FR", Org: "y"}: 10,
		{Country: "DE", Org: "q"}: 100, // country absent from a entirely
	}
	rows := PerCountryCoverage(a, b)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Country != "FR" || math.Abs(rows[0].Pct-90) > 1e-9 {
		t.Errorf("FR row = %+v", rows[0])
	}
	if rows[1].Country != "DE" || rows[1].Pct != 0 {
		t.Errorf("DE row = %+v", rows[1])
	}
}
