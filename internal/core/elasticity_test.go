package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/orgs"
	"repro/internal/rng"
)

// syntheticElasticityData builds N countries on the users ≈ k·samples^β
// trend plus named outliers far above the band.
func syntheticElasticityData(n int, outliers []string) (map[orgs.CountryOrg]float64, map[orgs.CountryOrg]float64) {
	users := map[orgs.CountryOrg]float64{}
	samples := map[orgs.CountryOrg]float64{}
	s := rng.New(3)
	for i := 0; i < n; i++ {
		cc := fmt.Sprintf("C%02d", i)
		smp := math.Pow(10, s.Range(3, 7))
		u := 30 * math.Pow(smp, 0.95) * s.LogNormal(0, 0.1)
		key := orgs.CountryOrg{Country: cc, Org: cc + "-top"}
		users[key] = u
		samples[key] = smp
		// Each country also has a smaller org on the same per-country
		// ratio (the paper's colinearity footnote).
		key2 := orgs.CountryOrg{Country: cc, Org: cc + "-second"}
		users[key2] = u / 4
		samples[key2] = smp / 4
	}
	for _, cc := range outliers {
		smp := 5e3
		key := orgs.CountryOrg{Country: cc, Org: cc + "-top"}
		samples[key] = smp
		users[key] = 30 * math.Pow(smp, 0.95) * 200 // 200x over-weighted
	}
	return users, samples
}

func TestTopOrgPoints(t *testing.T) {
	users, samples := syntheticElasticityData(10, nil)
	pts := TopOrgPoints(users, samples, 1)
	if len(pts) != 10 {
		t.Fatalf("%d points, want one per country", len(pts))
	}
	for _, p := range pts {
		if p.Org != p.Country+"-top" {
			t.Errorf("%s top org = %s", p.Country, p.Org)
		}
	}
	pts2 := TopOrgPoints(users, samples, 2)
	if len(pts2) != 20 {
		t.Fatalf("top-2 gave %d points", len(pts2))
	}
}

func TestTopOrgPointsSkipsNonPositive(t *testing.T) {
	users := map[orgs.CountryOrg]float64{
		{Country: "AA", Org: "x"}: 100,
		{Country: "AA", Org: "y"}: 0,
	}
	samples := map[orgs.CountryOrg]float64{
		{Country: "AA", Org: "x"}: 10,
		{Country: "AA", Org: "y"}: 10,
	}
	pts := TopOrgPoints(users, samples, 5)
	if len(pts) != 1 {
		t.Fatalf("%d points; zero-user org should be dropped", len(pts))
	}
}

func TestAnalyzeElasticityFindsOutliers(t *testing.T) {
	users, samples := syntheticElasticityData(60, []string{"RU", "TM", "ER"})
	an := AnalyzeElasticity(TopOrgPoints(users, samples, 1))
	if math.Abs(an.Fit.Beta-0.95) > 0.1 {
		t.Errorf("beta = %v, want ≈0.95", an.Fit.Beta)
	}
	found := map[string]bool{}
	for _, cc := range an.AboveCI {
		found[cc] = true
	}
	for _, cc := range []string{"RU", "TM", "ER"} {
		if !found[cc] {
			t.Errorf("planted outlier %s not above CI (above=%v)", cc, an.AboveCI)
		}
	}
	if len(an.AboveCI) > 8 {
		t.Errorf("too many above-CI countries: %v", an.AboveCI)
	}
}

func TestRatioAboveBound(t *testing.T) {
	users, samples := syntheticElasticityData(60, nil)
	an := AnalyzeElasticity(TopOrgPoints(users, samples, 1))
	// On-trend point: not above.
	if an.RatioAboveBound(1e5, 30*math.Pow(1e5, 0.95)) {
		t.Error("on-trend point flagged")
	}
	if !an.RatioAboveBound(1e5, 30*math.Pow(1e5, 0.95)*300) {
		t.Error("grossly over-weighted point not flagged")
	}
}

func TestDaysAboveFraction(t *testing.T) {
	users, samples := syntheticElasticityData(60, nil)
	an := AnalyzeElasticity(TopOrgPoints(users, samples, 1))
	onTrend := ElasticityPoint{Samples: 1e5, Users: 30 * math.Pow(1e5, 0.95)}
	anomalous := ElasticityPoint{Samples: 1e5, Users: onTrend.Users * 300}
	days := map[string]map[string]ElasticityPoint{
		"2024-01-01": {"GOOD": onTrend, "BAD": anomalous},
		"2024-01-02": {"GOOD": onTrend, "BAD": anomalous},
		"2024-01-03": {"GOOD": onTrend, "BAD": onTrend}, // one clean day
	}
	frac := an.DaysAboveFraction(days)
	if frac["GOOD"] != 0 {
		t.Errorf("GOOD fraction = %v", frac["GOOD"])
	}
	if math.Abs(frac["BAD"]-2.0/3) > 1e-9 {
		t.Errorf("BAD fraction = %v, want 2/3", frac["BAD"])
	}
}

func TestElasticityRatio(t *testing.T) {
	if ElasticityRatio(100, 10) != 10 {
		t.Error("ratio wrong")
	}
	if ElasticityRatio(100, 0) != 0 {
		t.Error("zero samples should give 0")
	}
}

func TestColinearityAcrossK(t *testing.T) {
	// The paper's footnote: using top-1 vs top-5 does not change the
	// outlier set because per-country points are colinear.
	users, samples := syntheticElasticityData(60, []string{"RU"})
	an1 := AnalyzeElasticity(TopOrgPoints(users, samples, 1))
	an2 := AnalyzeElasticity(TopOrgPoints(users, samples, 2))
	in1 := map[string]bool{}
	for _, cc := range an1.AboveCI {
		in1[cc] = true
	}
	if !in1["RU"] {
		t.Fatal("RU not flagged at K=1")
	}
	found := false
	for _, cc := range an2.AboveCI {
		if cc == "RU" {
			found = true
		}
	}
	if !found {
		t.Error("RU outlier lost when switching to K=2")
	}
}
