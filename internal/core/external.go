package core

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// KendallBin is one bin of Figure 9: countries grouped by their
// M-Lab↔APNIC Kendall-Tau, with the min/avg/max CDN↔APNIC Kendall-Tau
// observed inside the bin.
type KendallBin struct {
	Lo, Hi        float64
	Count         int
	Min, Avg, Max float64
}

// BinKendall groups countries into tau bins of the given width by their
// public-dataset correlation (M-Lab vs APNIC) and summarizes the private
// correlation (CDN vs APNIC) within each bin (§5.2's methodology). NaN
// entries on either axis are skipped.
func BinKendall(public, private map[string]float64, width float64) []KendallBin {
	if width <= 0 {
		width = 0.05
	}
	type agg struct {
		min, max, sum float64
		n             int
	}
	bins := map[int]*agg{}
	// Sorted country order keeps each bin's floating-point sum (and so
	// its Avg) bit-reproducible across runs.
	ccs := make([]string, 0, len(public))
	for cc := range public {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	for _, cc := range ccs {
		pub := public[cc]
		priv, ok := private[cc]
		if !ok || math.IsNaN(pub) || math.IsNaN(priv) {
			continue
		}
		idx := int(math.Floor(pub / width))
		b := bins[idx]
		if b == nil {
			b = &agg{min: math.Inf(1), max: math.Inf(-1)}
			bins[idx] = b
		}
		b.n++
		b.sum += priv
		if priv < b.min {
			b.min = priv
		}
		if priv > b.max {
			b.max = priv
		}
	}
	idxs := make([]int, 0, len(bins))
	for i := range bins {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]KendallBin, 0, len(idxs))
	for _, i := range idxs {
		b := bins[i]
		out = append(out, KendallBin{
			Lo:    float64(i) * width,
			Hi:    float64(i+1) * width,
			Count: b.n,
			Min:   b.min,
			Avg:   b.sum / float64(b.n),
			Max:   b.max,
		})
	}
	return out
}

// MICComparison is one country's Figure 10 data point: how much
// information the APNIC user estimates alone carry about CDN traffic
// volume, versus a model blending APNIC with IXP capacity.
type MICComparison struct {
	Country  string
	APNIC    float64 // MIC(APNIC users, CDN volume)
	Combined float64 // MIC(blend(APNIC, IXP), CDN volume)
	N        int     // organizations compared
}

// TrafficModel is the §5.3 inferential model: a log-space blend of APNIC
// user shares and IXP capacities, fitted once on data where ground-truth
// volume is available, then applied anywhere from public inputs only.
// Organizations without a public IXP registration fall back to an
// APNIC-only sub-model rather than treating "unregistered" as zero
// capacity.
type TrafficModel struct {
	B0, BAPNIC, BIXP float64 // the blend, for orgs with IXP data
	A0, A1           float64 // the APNIC-only fallback
	ok               bool
}

const logEps = 1e-9

// FitTrafficModel trains the blend on pooled per-org observations:
// log(volume) ~ log(APNIC share) + log(IXP capacity) over orgs with IXP
// registrations, plus log(volume) ~ log(APNIC share) over everything as
// the fallback. In the paper's framing the training side uses private CDN
// data; prediction needs only public inputs.
func FitTrafficModel(apnic, ixp, volume []float64) TrafficModel {
	var la, lx, lv []float64 // with IXP
	var fa, fv []float64     // fallback, all points
	for i := range volume {
		if volume[i] <= 0 {
			continue
		}
		lvi := math.Log10(volume[i])
		lai := math.Log10(apnic[i] + logEps)
		fa = append(fa, lai)
		fv = append(fv, lvi)
		if ixp[i] > 0 {
			la = append(la, lai)
			lx = append(lx, math.Log10(ixp[i]))
			lv = append(lv, lvi)
		}
	}
	b0, b1, b2, ok := stats.OLS2(la, lx, lv)
	fb := stats.LinearRegression(fa, fv)
	return TrafficModel{
		B0: b0, BAPNIC: b1, BIXP: b2,
		A0: fb.Intercept, A1: fb.Slope,
		ok: ok && fb.Ok(),
	}
}

// Ok reports whether the model fit succeeded.
func (m TrafficModel) Ok() bool { return m.ok }

// Predict returns the model's log-volume estimate from public inputs.
// With no IXP registration (ixpCap <= 0) the APNIC-only fallback is used.
func (m TrafficModel) Predict(apnicShare, ixpCap float64) float64 {
	la := math.Log10(apnicShare + logEps)
	if ixpCap <= 0 {
		return m.A0 + m.A1*la
	}
	return m.B0 + m.BAPNIC*la + m.BIXP*math.Log10(ixpCap)
}

// CompareMIC computes the Figure 10 statistic for one country from
// aligned per-org vectors: APNIC user shares, IXP capacities and CDN
// traffic volumes, using a pre-trained blend for the combined predictor.
// Orgs missing an IXP capacity participate with 0, as in real-world use.
// Returns ok=false when there are too few orgs for MIC to be meaningful.
func CompareMIC(country string, model TrafficModel, apnicShares, ixpCaps, volumes map[string]float64) (MICComparison, bool) {
	keys := map[string]bool{}
	for k := range apnicShares {
		keys[k] = true
	}
	for k := range volumes {
		keys[k] = true
	}
	ids := make([]string, 0, len(keys))
	for k := range keys {
		ids = append(ids, k)
	}
	sort.Strings(ids)
	var a, blend, v []float64
	for _, id := range ids {
		a = append(a, apnicShares[id])
		v = append(v, volumes[id])
		blend = append(blend, model.Predict(apnicShares[id], ixpCaps[id]))
	}
	cmp := MICComparison{Country: country, N: len(ids)}
	if len(ids) < 8 || !model.Ok() {
		return cmp, false
	}
	cmp.APNIC = stats.MIC(a, v)
	cmp.Combined = stats.MIC(blend, v)
	if math.IsNaN(cmp.APNIC) || math.IsNaN(cmp.Combined) {
		return cmp, false
	}
	return cmp, true
}

// CrossValidation holds the out-of-sample performance of the §5.3 traffic
// model — the paper's future-work question: can a model trained where
// ground truth exists predict traffic volume elsewhere from public inputs
// alone?
type CrossValidation struct {
	Folds int
	// InSampleR2 and OutSampleR2 are log-space R² of the blend's
	// predictions on training and held-out observations.
	InSampleR2  float64
	OutSampleR2 float64
}

// CrossValidateTrafficModel runs deterministic k-fold cross-validation of
// the log-blend traffic model over pooled per-org observations. Folds are
// assigned by index stride, so results are reproducible without an RNG.
func CrossValidateTrafficModel(apnic, ixp, volume []float64, folds int) (CrossValidation, bool) {
	n := len(volume)
	if folds < 2 || n < folds*4 || len(apnic) != n || len(ixp) != n {
		return CrossValidation{}, false
	}
	var inPred, inTrue, outPred, outTrue []float64
	for f := 0; f < folds; f++ {
		var ta, tx, tv []float64
		for i := 0; i < n; i++ {
			if i%folds != f && volume[i] > 0 {
				ta = append(ta, apnic[i])
				tx = append(tx, ixp[i])
				tv = append(tv, volume[i])
			}
		}
		m := FitTrafficModel(ta, tx, tv)
		if !m.Ok() {
			return CrossValidation{}, false
		}
		for i := 0; i < n; i++ {
			if volume[i] <= 0 {
				continue
			}
			pred := m.Predict(apnic[i], ixp[i])
			lv := math.Log10(volume[i])
			if i%folds == f {
				outPred = append(outPred, pred)
				outTrue = append(outTrue, lv)
			} else {
				inPred = append(inPred, pred)
				inTrue = append(inTrue, lv)
			}
		}
	}
	cv := CrossValidation{
		Folds:       folds,
		InSampleR2:  r2Of(inPred, inTrue),
		OutSampleR2: r2Of(outPred, outTrue),
	}
	if math.IsNaN(cv.InSampleR2) || math.IsNaN(cv.OutSampleR2) {
		return cv, false
	}
	return cv, true
}

// r2Of is the coefficient of determination of predictions against truth.
func r2Of(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(truth) < 2 {
		return math.NaN()
	}
	mean := stats.Mean(truth)
	var ssRes, ssTot float64
	for i := range truth {
		r := truth[i] - pred[i]
		ssRes += r * r
		d := truth[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
