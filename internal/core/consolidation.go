package core

import (
	"sort"

	"repro/internal/stats"
)

// OrgsToCover returns the number of organizations needed to cover the
// given fraction of a country's estimated users (§6's metric with
// frac = 0.95).
func OrgsToCover(shares map[string]float64, frac float64) int {
	vals := make([]float64, 0, len(shares))
	keys := make([]string, 0, len(shares))
	for k := range shares {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals = append(vals, shares[k])
	}
	return stats.CoverCount(vals, frac)
}

// ConsolidationChange is one country's Figure 11 value: the percentage
// change in organizations-to-95% between the baseline year and a target
// year. +100 means doubled; -50 means halved.
type ConsolidationChange struct {
	Country  string
	Baseline int // orgs to 95% in the baseline year
	Target   int // orgs to 95% in the target year
	Pct      float64
	// NoData marks countries where no day passed the elasticity check
	// in one of the years — drawn black in the paper's maps.
	NoData bool
}

// ConsolidationChanges computes Figure 11's values from per-year share
// snapshots: baseline and target map country → per-org shares (already
// selected with the best-day rule). Countries missing from either year
// are reported with NoData.
func ConsolidationChanges(baseline, target map[string]map[string]float64) []ConsolidationChange {
	countries := map[string]bool{}
	for cc := range baseline {
		countries[cc] = true
	}
	for cc := range target {
		countries[cc] = true
	}
	ccs := make([]string, 0, len(countries))
	for cc := range countries {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)

	out := make([]ConsolidationChange, 0, len(ccs))
	for _, cc := range ccs {
		b, okB := baseline[cc]
		t, okT := target[cc]
		ch := ConsolidationChange{Country: cc}
		if !okB || !okT {
			ch.NoData = true
			out = append(out, ch)
			continue
		}
		ch.Baseline = OrgsToCover(b, 0.95)
		ch.Target = OrgsToCover(t, 0.95)
		if ch.Baseline == 0 {
			ch.NoData = true
		} else {
			ch.Pct = 100 * (float64(ch.Target)/float64(ch.Baseline) - 1)
		}
		out = append(out, ch)
	}
	return out
}

// Driver is one organization's contribution to a country's consolidation:
// how much user share it gained (or lost) between two snapshots. §6's
// future work is "identifying the key players driving access network
// consolidation"; this is that analysis.
type Driver struct {
	Org    string
	Before float64 // share in the baseline snapshot
	After  float64 // share in the target snapshot
	Delta  float64 // After − Before
}

// ConsolidationDrivers returns the organizations with the largest
// absolute share changes between two per-org share snapshots, largest
// gain first. Orgs absent from a snapshot count as zero share (entrants
// and absorbed networks show up naturally).
func ConsolidationDrivers(before, after map[string]float64, topN int) []Driver {
	ids := map[string]bool{}
	for id := range before {
		ids[id] = true
	}
	for id := range after {
		ids[id] = true
	}
	drivers := make([]Driver, 0, len(ids))
	for id := range ids {
		d := Driver{Org: id, Before: before[id], After: after[id]}
		d.Delta = d.After - d.Before
		drivers = append(drivers, d)
	}
	sort.Slice(drivers, func(i, j int) bool {
		ai, aj := drivers[i].Delta, drivers[j].Delta
		if ai != aj {
			return ai > aj
		}
		return drivers[i].Org < drivers[j].Org
	})
	if topN > 0 && len(drivers) > topN {
		drivers = drivers[:topN]
	}
	return drivers
}
