package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestBinKendall(t *testing.T) {
	public := map[string]float64{
		"AA": 0.12, "BB": 0.14, // bin [0.10, 0.15)
		"CC": 0.92, "DD": 0.93, // bin [0.90, 0.95)
	}
	private := map[string]float64{
		"AA": 0.2, "BB": 0.4,
		"CC": 0.85, "DD": 0.95,
	}
	bins := BinKendall(public, private, 0.05)
	if len(bins) != 2 {
		t.Fatalf("%d bins", len(bins))
	}
	lo := bins[0]
	if lo.Count != 2 || lo.Min != 0.2 || lo.Max != 0.4 || math.Abs(lo.Avg-0.3) > 1e-12 {
		t.Fatalf("low bin = %+v", lo)
	}
	hi := bins[1]
	if hi.Count != 2 || math.Abs(hi.Avg-0.9) > 1e-12 {
		t.Fatalf("high bin = %+v", hi)
	}
	if lo.Lo >= hi.Lo {
		t.Fatal("bins not sorted")
	}
}

func TestBinKendallSkipsNaNAndMissing(t *testing.T) {
	public := map[string]float64{"AA": 0.5, "BB": math.NaN(), "CC": 0.5}
	private := map[string]float64{"AA": 0.5, "BB": 0.5}
	bins := BinKendall(public, private, 0.05)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 1 {
		t.Fatalf("counted %d countries, want 1", total)
	}
}

func TestBinKendallDefaultWidth(t *testing.T) {
	bins := BinKendall(map[string]float64{"AA": 0.33}, map[string]float64{"AA": 0.5}, 0)
	if len(bins) != 1 || math.Abs(bins[0].Hi-bins[0].Lo-0.05) > 1e-12 {
		t.Fatalf("default width bins = %+v", bins)
	}
}

// micTestData builds per-org maps where volume depends mostly on IXP
// capacity and only weakly on APNIC shares, plus the pooled training
// vectors for the blend model.
func micTestData(n int) (apnic, ixp, vol map[string]float64, model TrafficModel) {
	s := rng.New(4)
	apnic = map[string]float64{}
	ixp = map[string]float64{}
	vol = map[string]float64{}
	var ta, tx, tv []float64
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("org%02d", i)
		a := s.Range(0.01, 1)
		x := s.Range(0.01, 1)
		apnic[id] = a
		ixp[id] = x
		vol[id] = x * math.Pow(a, 0.1) * math.Exp(s.Norm(0, 0.02))
		ta = append(ta, a)
		tx = append(tx, x)
		tv = append(tv, vol[id])
	}
	model = FitTrafficModel(ta, tx, tv)
	return apnic, ixp, vol, model
}

func TestCompareMICGain(t *testing.T) {
	apnic, ixp, vol, model := micTestData(80)
	if !model.Ok() {
		t.Fatal("traffic model fit failed")
	}
	cmp, ok := CompareMIC("XX", model, apnic, ixp, vol)
	if !ok {
		t.Fatal("comparison failed")
	}
	if cmp.Combined < cmp.APNIC {
		t.Fatalf("combined MIC %v below APNIC-alone %v", cmp.Combined, cmp.APNIC)
	}
	if cmp.Combined < 0.4 {
		t.Fatalf("combined MIC %v too low for a near-functional relation", cmp.Combined)
	}
}

func TestCompareMICTooFewOrgs(t *testing.T) {
	apnic, ixp, vol, model := micTestData(80)
	_ = ixp
	_ = vol
	tiny := map[string]float64{"a": 1, "b": 2}
	if _, ok := CompareMIC("XX", model, tiny, tiny, tiny); ok {
		t.Fatal("tiny org set should not produce a MIC comparison")
	}
	if _, ok := CompareMIC("XX", TrafficModel{}, apnic, apnic, apnic); ok {
		t.Fatal("unfitted model should not produce a comparison")
	}
}

func TestCompareMICAlignsOnUnion(t *testing.T) {
	s := rng.New(5)
	_, _, _, model := micTestData(80)
	apnic := map[string]float64{}
	vol := map[string]float64{}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("u%02d", i)
		v := s.Range(0.01, 1)
		apnic[id] = v
		vol[id] = v
	}
	// IXP data covers only a subset; missing orgs must count as zero,
	// not crash.
	ixp := map[string]float64{"u00": 1, "u01": 2}
	cmp, ok := CompareMIC("XX", model, apnic, ixp, vol)
	if !ok {
		t.Fatal("comparison failed")
	}
	if cmp.N != 30 {
		t.Fatalf("N = %d, want union size 30", cmp.N)
	}
}

func TestFitTrafficModelRecoversExponents(t *testing.T) {
	// volume = apnic^0.3 * ixp^0.7 exactly: the log-blend must recover
	// the exponents.
	s := rng.New(6)
	var ta, tx, tv []float64
	for i := 0; i < 200; i++ {
		a := s.Range(0.01, 1)
		x := s.Range(0.01, 1)
		ta = append(ta, a)
		tx = append(tx, x)
		tv = append(tv, math.Pow(a, 0.3)*math.Pow(x, 0.7))
	}
	m := FitTrafficModel(ta, tx, tv)
	if !m.Ok() {
		t.Fatal("fit failed")
	}
	if math.Abs(m.BAPNIC-0.3) > 0.05 || math.Abs(m.BIXP-0.7) > 0.05 {
		t.Fatalf("recovered exponents %.3f / %.3f, want 0.3 / 0.7", m.BAPNIC, m.BIXP)
	}
}

func TestOrgsToCover(t *testing.T) {
	shares := map[string]float64{"a": 0.5, "b": 0.3, "c": 0.15, "d": 0.05}
	if got := OrgsToCover(shares, 0.95); got != 3 {
		t.Fatalf("OrgsToCover = %d, want 3", got)
	}
	if got := OrgsToCover(nil, 0.95); got != 0 {
		t.Fatalf("empty OrgsToCover = %d", got)
	}
}

func TestConsolidationChanges(t *testing.T) {
	baseline := map[string]map[string]float64{
		"AA": {"x": 0.5, "y": 0.3, "z": 0.15, "w": 0.05}, // 3 orgs to 95%
		"BB": {"x": 0.96, "y": 0.04},                     // 1 org
	}
	target := map[string]map[string]float64{
		"AA": {"x": 0.96, "y": 0.04}, // 1 org: -66%
		"CC": {"x": 1.0},             // no baseline → NoData
	}
	changes := ConsolidationChanges(baseline, target)
	byCC := map[string]ConsolidationChange{}
	for _, c := range changes {
		byCC[c.Country] = c
	}
	aa := byCC["AA"]
	if aa.Baseline != 3 || aa.Target != 1 || math.Abs(aa.Pct+66.67) > 0.1 {
		t.Fatalf("AA change = %+v", aa)
	}
	if !byCC["BB"].NoData {
		t.Fatalf("BB should be NoData (missing target): %+v", byCC["BB"])
	}
	if !byCC["CC"].NoData {
		t.Fatalf("CC should be NoData (missing baseline): %+v", byCC["CC"])
	}
}

func TestRunChecksVerdicts(t *testing.T) {
	users, samples := syntheticElasticityData(60, nil)
	an := AnalyzeElasticity(TopOrgPoints(users, samples, 1))
	stable := []map[string]float64{
		{"x": 0.5, "y": 0.5},
		{"x": 0.51, "y": 0.49},
	}
	good := CheckInput{
		Country:      "GOOD",
		Samples:      1e5,
		Users:        30 * math.Pow(1e5, 0.95),
		Elasticity:   an,
		RecentShares: stable,
		MLabKendall:  0.9,
	}
	rep := RunChecks(good)
	if rep.Verdict != Reliable {
		t.Fatalf("good country verdict = %v: %+v", rep.Verdict, rep.Checks)
	}
	if len(rep.Checks) != 4 {
		t.Fatalf("%d checks run", len(rep.Checks))
	}

	// One failure → Caution.
	oneBad := good
	oneBad.MLabKendall = 0.1
	if got := RunChecks(oneBad).Verdict; got != Caution {
		t.Fatalf("one-failure verdict = %v", got)
	}

	// Multiple failures → Unreliable.
	bad := CheckInput{
		Country:    "BAD",
		Samples:    200,
		Users:      30 * math.Pow(200, 0.95) * 500,
		Elasticity: an,
		RecentShares: []map[string]float64{
			{"x": 0.9, "y": 0.1},
			{"x": 0.3, "y": 0.7},
		},
		MLabKendall: 0.0,
	}
	if got := RunChecks(bad).Verdict; got != Unreliable {
		t.Fatalf("bad country verdict = %v", got)
	}
}

func TestRunChecksMLabSkip(t *testing.T) {
	users, samples := syntheticElasticityData(60, nil)
	an := AnalyzeElasticity(TopOrgPoints(users, samples, 1))
	in := CheckInput{
		Country:      "NOMLAB",
		Samples:      1e5,
		Users:        30 * math.Pow(1e5, 0.95),
		Elasticity:   an,
		RecentShares: []map[string]float64{{"x": 1}, {"x": 1}},
		MLabKendall:  math.NaN(),
	}
	rep := RunChecks(in)
	if rep.Verdict != Reliable {
		t.Fatalf("NaN M-Lab should be skipped, verdict = %v", rep.Verdict)
	}
}

func TestVerdictStrings(t *testing.T) {
	if Reliable.String() != "reliable" || Caution.String() != "caution" || Unreliable.String() != "unreliable" {
		t.Fatal("verdict strings wrong")
	}
}

func TestCrossValidateTrafficModel(t *testing.T) {
	s := rng.New(8)
	var ta, tx, tv []float64
	for i := 0; i < 200; i++ {
		a := s.Range(0.01, 1)
		x := s.Range(0.01, 1)
		ta = append(ta, a)
		tx = append(tx, x)
		tv = append(tv, math.Pow(a, 0.4)*math.Pow(x, 0.6)*math.Exp(s.Norm(0, 0.1)))
	}
	cv, ok := CrossValidateTrafficModel(ta, tx, tv, 5)
	if !ok {
		t.Fatal("cross-validation failed")
	}
	if cv.InSampleR2 < 0.8 || cv.OutSampleR2 < 0.7 {
		t.Fatalf("R² in=%v out=%v; model should fit a near-exact law", cv.InSampleR2, cv.OutSampleR2)
	}
	if cv.OutSampleR2 > cv.InSampleR2+0.1 {
		t.Fatalf("out-of-sample R² implausibly high: %+v", cv)
	}
	// Degenerate inputs fail cleanly.
	if _, ok := CrossValidateTrafficModel(ta[:6], tx[:6], tv[:6], 5); ok {
		t.Fatal("tiny input should fail")
	}
	if _, ok := CrossValidateTrafficModel(ta, tx, tv, 1); ok {
		t.Fatal("single fold should fail")
	}
}

func TestConsolidationDrivers(t *testing.T) {
	before := map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2}
	after := map[string]float64{"a": 0.7, "c": 0.1, "d": 0.2} // b absorbed, d entered
	drivers := ConsolidationDrivers(before, after, 0)
	if len(drivers) != 4 {
		t.Fatalf("%d drivers", len(drivers))
	}
	// "a" (+0.2 up to float rounding) and "d" (+0.2 exactly) lead.
	lead := map[string]bool{drivers[0].Org: true, drivers[1].Org: true}
	if !lead["a"] || !lead["d"] {
		t.Fatalf("top gainers = %+v", drivers[:2])
	}
	if math.Abs(drivers[0].Delta-0.2) > 1e-9 {
		t.Fatalf("top gain = %v", drivers[0].Delta)
	}
	if drivers[len(drivers)-1].Org != "b" || math.Abs(drivers[len(drivers)-1].Delta+0.3) > 1e-12 {
		t.Fatalf("top loser = %+v", drivers[len(drivers)-1])
	}
	top2 := ConsolidationDrivers(before, after, 2)
	if len(top2) != 2 {
		t.Fatalf("topN truncation wrong: %+v", top2)
	}
}

func TestRecommend(t *testing.T) {
	reports := map[string]Report{
		"AA": {Country: "AA", Verdict: Reliable, Checks: []CheckResult{
			{Name: "sample-sufficiency", Passed: true},
		}},
		"BB": {Country: "BB", Verdict: Caution, Checks: []CheckResult{
			{Name: "elasticity-band", Passed: false},
		}},
		"CC": {Country: "CC", Verdict: Unreliable, Checks: []CheckResult{
			{Name: "sample-sufficiency", Passed: false},
			{Name: "elasticity-band", Passed: false},
		}},
	}
	gs := Recommend(reports)
	byCheck := map[string]Guidance{}
	for _, g := range gs {
		byCheck[g.Check] = g
	}
	eb, ok := byCheck["elasticity-band"]
	if !ok || len(eb.Countries) != 2 || eb.Countries[0] != "BB" || eb.Countries[1] != "CC" {
		t.Fatalf("elasticity guidance = %+v", eb)
	}
	if eb.Advice == "" {
		t.Fatal("missing advice text")
	}
	overall, ok := byCheck["overall"]
	if !ok || len(overall.Countries) != 1 || overall.Countries[0] != "CC" {
		t.Fatalf("overall guidance = %+v", overall)
	}
	if len(Recommend(map[string]Report{"AA": reports["AA"]})) != 0 {
		t.Fatal("all-pass reports should yield no guidance")
	}
}
