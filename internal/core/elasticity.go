package core

import (
	"sort"

	"repro/internal/orgs"
	"repro/internal/stats"
)

// ElasticityPoint is one country's (samples, users) observation for the
// log-log regression of §5.1.1 — by default the country's largest org.
type ElasticityPoint struct {
	Country string
	Org     string
	Samples float64
	Users   float64
}

// TopOrgPoints extracts each country's top-K orgs by estimated users,
// pairing their user estimates with their raw sample counts. K=1
// reproduces Figure 6; the paper's footnote checks K ∈ {5, 10, 20} give
// the same outliers because points within a country are colinear.
func TopOrgPoints(users, samples map[orgs.CountryOrg]float64, k int) []ElasticityPoint {
	perCountry := map[string][]ElasticityPoint{}
	for key, u := range users {
		s := samples[key]
		if u <= 0 || s <= 0 {
			continue
		}
		perCountry[key.Country] = append(perCountry[key.Country], ElasticityPoint{
			Country: key.Country, Org: key.Org, Samples: s, Users: u,
		})
	}
	var out []ElasticityPoint
	countries := make([]string, 0, len(perCountry))
	for cc := range perCountry {
		countries = append(countries, cc)
	}
	sort.Strings(countries)
	for _, cc := range countries {
		pts := perCountry[cc]
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].Users != pts[j].Users {
				return pts[i].Users > pts[j].Users
			}
			return pts[i].Org < pts[j].Org
		})
		if len(pts) > k {
			pts = pts[:k]
		}
		out = append(out, pts...)
	}
	return out
}

// ElasticityAnalysis is the fitted log-log relationship plus outliers.
type ElasticityAnalysis struct {
	Fit    stats.ElasticityFit
	Points []ElasticityPoint
	// AboveCI / BelowCI are the countries outside the 95% prediction
	// band: above means each sample "weighs" unusually many users — the
	// paper's signal of unreliable estimation.
	AboveCI []string
	BelowCI []string
}

// AnalyzeElasticity fits log10(users) = a + beta*log10(samples) at 95%
// confidence over the given points (Figure 6).
func AnalyzeElasticity(points []ElasticityPoint) ElasticityAnalysis {
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.Samples
		ys[i] = p.Users
	}
	fit := stats.Elasticity(xs, ys, 0.95)
	an := ElasticityAnalysis{Fit: fit, Points: points}
	seenAbove := map[string]bool{}
	seenBelow := map[string]bool{}
	for _, p := range points {
		if fit.Above(p.Samples, p.Users) && !seenAbove[p.Country] {
			seenAbove[p.Country] = true
			an.AboveCI = append(an.AboveCI, p.Country)
		}
		if fit.Below(p.Samples, p.Users) && !seenBelow[p.Country] {
			seenBelow[p.Country] = true
			an.BelowCI = append(an.BelowCI, p.Country)
		}
	}
	sort.Strings(an.AboveCI)
	sort.Strings(an.BelowCI)
	return an
}

// RatioAboveBound reports whether a country's users-to-samples point sits
// above the analysis's upper prediction bound — the per-day check behind
// Figure 7.
func (an ElasticityAnalysis) RatioAboveBound(samples, users float64) bool {
	return an.Fit.Above(samples, users)
}

// DaysAboveFraction computes, for each country, the fraction of days on
// which its top-org users-to-samples ratio fell above the elasticity
// bound (Figure 7). days maps each date label to that day's per-country
// top-org point.
func (an ElasticityAnalysis) DaysAboveFraction(days map[string]map[string]ElasticityPoint) map[string]float64 {
	above := map[string]int{}
	total := map[string]int{}
	for _, perCountry := range days {
		for cc, p := range perCountry {
			total[cc]++
			if an.RatioAboveBound(p.Samples, p.Users) {
				above[cc]++
			}
		}
	}
	out := make(map[string]float64, len(total))
	for cc, n := range total {
		out[cc] = float64(above[cc]) / float64(n)
	}
	return out
}

// ElasticityRatio is the per-country users-per-sample ratio used by the
// best-day selection rule of §5.1.2: lower means better-grounded
// estimates.
func ElasticityRatio(users, samples float64) float64 {
	if samples <= 0 {
		return 0
	}
	return users / samples
}
