package core

import (
	"math"
	"sort"

	"repro/internal/dates"
	"repro/internal/stats"
)

// Granularity labels the time steps of the stability analysis (Figure 8).
type Granularity string

// Granularities in Figure 8.
const (
	Daily   Granularity = "days"
	Weekly  Granularity = "weeks"
	Monthly Granularity = "months"
	Yearly  Granularity = "years"
)

// Step returns the granularity's step in days.
func (g Granularity) Step() int {
	switch g {
	case Daily:
		return 1
	case Weekly:
		return 7
	case Monthly:
		return 30
	case Yearly:
		return 365
	default:
		return 1
	}
}

// StabilityDistance computes the Kolmogorov–Smirnov-style distance
// between a country's per-org user share distributions at two times
// (§5.1.2): organizations are aligned on the union of keys (absent orgs
// count 0), and the distance is the maximum per-org share difference —
// "the number of users estimated to be in an organization differs by at
// least X% of a country's Internet population".
func StabilityDistance(sharesT, sharesT1 map[string]float64) float64 {
	if len(sharesT) == 0 || len(sharesT1) == 0 {
		return math.NaN()
	}
	a, b, _ := stats.AlignShares(sharesT, sharesT1)
	return stats.MaxShareDiff(a, b)
}

// StabilitySeries computes consecutive-step distances for one country
// over a sequence of share snapshots (already spaced at the granularity's
// step). The result feeds one curve of Figure 8's CDF.
func StabilitySeries(snapshots []map[string]float64) []float64 {
	var out []float64
	for i := 1; i < len(snapshots); i++ {
		d := StabilityDistance(snapshots[i-1], snapshots[i])
		if !math.IsNaN(d) {
			out = append(out, d)
		}
	}
	return out
}

// BestDay picks, from a window of candidate days, the one with the
// smallest users-per-sample (elasticity) ratio — the paper's §5.1.2
// aggregation rule for choosing which daily APNIC snapshot to trust.
// ratios maps a sortable date label to the country's ratio that day;
// days with ratio <= 0 (no data) are skipped. ok is false if no candidate
// has data.
func BestDay(ratios map[string]float64) (day string, ok bool) {
	keys := make([]string, 0, len(ratios))
	for k := range ratios {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := math.Inf(1)
	for _, k := range keys {
		r := ratios[k]
		if r > 0 && r < best {
			best = r
			day = k
			ok = true
		}
	}
	return day, ok
}

// BestDayDate is the date-keyed variant of BestDay for per-day hot paths:
// same rule (smallest positive ratio, ties broken toward the earliest
// candidate) without the date→string→date round-trip. Selection is
// identical to BestDay over the same days because "YYYY-MM-DD" labels
// sort chronologically.
func BestDayDate(ratios map[dates.Date]float64) (day dates.Date, ok bool) {
	days := make([]dates.Date, 0, len(ratios))
	for d := range ratios {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i].DayNumber() < days[j].DayNumber() })
	best := math.Inf(1)
	for _, d := range days {
		if r := ratios[d]; r > 0 && r < best {
			best = r
			day = d
			ok = true
		}
	}
	return day, ok
}
