// Package core implements the paper's validation toolkit — the actual
// contribution of the study. Every function operates on plain
// (country, org)-keyed measurements, so the same code that validates the
// simulated datasets here would validate the real APNIC dataset against
// real CDN exports.
//
// The pieces map to the paper as follows:
//
//   - Agreement classification (this file): §4.3, Table 4, Figure 4.
//   - Overlap / weighted coverage: §4.2, Figure 3, Tables 3 and 5.
//   - Sample elasticity: §5.1.1, Figures 6 and 7.
//   - Temporal stability and best-day selection: §5.1.2, Figure 8.
//   - External consistency (M-Lab, IXP+MIC): §5.2 and §5.3, Figures 9-10.
//   - Consolidation: §6, Figure 11.
//   - Reliability checks (the released artifact): §5's synthesis.
package core

import (
	"math"

	"repro/internal/stats"
)

// StrongCorrelation is the paper's threshold for a "strong" correlation
// (Table 4, following Schober et al.).
const StrongCorrelation = 0.8

// KendallMinShare is the paper's small-org filter: organizations below
// 0.5% of a country's users in both datasets are removed before the
// Kendall-Tau computation so the long tail cannot dominate rank order.
const KendallMinShare = 0.005

// AgreementLevel classifies how well two datasets agree on a country
// (Table 4 / Figure 4's legend).
type AgreementLevel int

// Agreement levels, from worst to best.
const (
	NoInformation AgreementLevel = iota
	NoAgreement
	RankAgreement
	PrincipalOrgAgreement
	CompleteAgreement
)

func (l AgreementLevel) String() string {
	switch l {
	case NoInformation:
		return "No Information"
	case NoAgreement:
		return "No Agreement"
	case RankAgreement:
		return "Rank Agreement"
	case PrincipalOrgAgreement:
		return "Principal Org Agreement"
	case CompleteAgreement:
		return "Complete Agreement"
	default:
		return "Unknown"
	}
}

// Agreement is the full comparison result for one country.
type Agreement struct {
	Pearson float64 // linear correlation of shares
	Kendall float64 // tau-b of shares after the small-org filter
	Slope   float64 // linear regression coefficient (other ~ APNIC)
	N       int     // organizations compared
	Level   AgreementLevel
}

// CompareShares compares a country's APNIC share vector against another
// dataset's share vector over the union of org keys (§4.3 methodology):
// missing orgs count as zero, both sides are normalized, Pearson and the
// regression use all orgs, Kendall removes sub-0.5% orgs.
func CompareShares(apnic, other map[string]float64) Agreement {
	return CompareSharesFiltered(apnic, other, KendallMinShare)
}

// CompareSharesFiltered is CompareShares with an explicit small-org
// filter threshold for the Kendall statistic, exposed for the ablation
// study of the paper's 0.5% choice.
func CompareSharesFiltered(apnic, other map[string]float64, minShare float64) Agreement {
	a, b, _ := stats.AlignShares(apnic, other)
	a = stats.Normalize(a)
	b = stats.Normalize(b)

	var res Agreement
	res.N = len(a)
	if len(a) < 3 || stats.Sum(a) == 0 || stats.Sum(b) == 0 {
		res.Pearson = math.NaN()
		res.Kendall = math.NaN()
		res.Slope = math.NaN()
		res.Level = NoInformation
		return res
	}

	res.Pearson = stats.Pearson(a, b)
	fit := stats.LinearRegression(a, b)
	res.Slope = fit.Slope

	// Small-org filter for the rank statistic.
	var ka, kb []float64
	for i := range a {
		if a[i] >= minShare || b[i] >= minShare {
			ka = append(ka, a[i])
			kb = append(kb, b[i])
		}
	}
	res.Kendall = stats.KendallTau(ka, kb)

	res.Level = classify(res)
	return res
}

// classify applies Table 4's conditions.
func classify(r Agreement) AgreementLevel {
	if math.IsNaN(r.Pearson) && math.IsNaN(r.Kendall) {
		return NoInformation
	}
	rank := !math.IsNaN(r.Kendall) && r.Kendall >= StrongCorrelation
	principal := !math.IsNaN(r.Pearson) && r.Pearson >= StrongCorrelation && r.Slope > 0
	complete := rank && principal && math.Abs(r.Slope-1) <= 0.35
	switch {
	case complete:
		return CompleteAgreement
	case principal:
		return PrincipalOrgAgreement
	case rank:
		return RankAgreement
	default:
		return NoAgreement
	}
}

// PrincipalOrgMatch reports whether both datasets name the same largest
// organization — the headline statistic of §4.3 ("the APNIC and CDN
// datasets agree on the principal org for 93.9% of countries").
func PrincipalOrgMatch(apnic, other map[string]float64) bool {
	ta, oka := argmax(apnic)
	tb, okb := argmax(other)
	return oka && okb && ta == tb
}

func argmax(m map[string]float64) (string, bool) {
	best := math.Inf(-1)
	id := ""
	for k, v := range m {
		if v > best || (v == best && (id == "" || k < id)) {
			best, id = v, k
		}
	}
	return id, id != "" && best > 0
}

// AgreementSummary aggregates per-country agreement levels into the
// percentages the paper reports.
type AgreementSummary struct {
	Countries      int
	PrincipalPct   float64 // countries with at least Principal agreement OR matching top org
	RankPct        float64 // countries with Kendall >= 0.8
	CompletePct    float64 // countries with Complete agreement
	NoAgreementPct float64
}

// Summarize computes the paper's headline percentages from per-country
// agreements plus the principal-org matches.
func Summarize(agreements map[string]Agreement, principalMatch map[string]bool) AgreementSummary {
	var s AgreementSummary
	for cc, a := range agreements {
		if a.Level == NoInformation {
			continue
		}
		s.Countries++
		if principalMatch[cc] {
			s.PrincipalPct++
		}
		if !math.IsNaN(a.Kendall) && a.Kendall >= StrongCorrelation {
			s.RankPct++
		}
		if a.Level == CompleteAgreement {
			s.CompletePct++
		}
		if a.Level == NoAgreement {
			s.NoAgreementPct++
		}
	}
	if s.Countries > 0 {
		n := float64(s.Countries)
		s.PrincipalPct = 100 * s.PrincipalPct / n
		s.RankPct = 100 * s.RankPct / n
		s.CompletePct = 100 * s.CompletePct / n
		s.NoAgreementPct = 100 * s.NoAgreementPct / n
	}
	return s
}
