package core

import (
	"fmt"
	"math"
	"sort"
)

// Verdict is the bottom line of the reliability checks.
type Verdict int

// Verdicts.
const (
	Reliable Verdict = iota
	Caution
	Unreliable
)

func (v Verdict) String() string {
	switch v {
	case Reliable:
		return "reliable"
	case Caution:
		return "caution"
	default:
		return "unreliable"
	}
}

// CheckInput is everything the artifact checks need for one country —
// all derivable from public data (the APNIC dataset itself plus M-Lab).
type CheckInput struct {
	Country string

	// Samples and Users are the country's totals on the day under test.
	Samples float64
	Users   float64

	// Elasticity is the global fit of §5.1.1, used to test whether the
	// country's users-per-sample ratio is anomalous.
	Elasticity ElasticityAnalysis

	// RecentShares is the per-org share distribution on consecutive
	// recent snapshots (e.g. 7 daily snapshots), oldest first, for the
	// temporal-stability check.
	RecentShares []map[string]float64

	// MLabKendall is the Kendall-Tau between the APNIC and M-Lab org
	// rankings for this country; NaN when M-Lab has no usable data.
	MLabKendall float64
}

// CheckResult is one named check's outcome.
type CheckResult struct {
	Name   string
	Passed bool
	Detail string
}

// Report is the artifact's output for one country.
type Report struct {
	Country string
	Checks  []CheckResult
	Verdict Verdict
}

// Thresholds for the individual checks, exposed for ablation.
var (
	// MinCountrySamples is the floor below which a country's entire
	// report is too thin to rescale meaningfully.
	MinCountrySamples = 1000.0
	// StabilityThreshold is the §5.1.2 alarm level: an org moving by
	// more than this share of the country between consecutive snapshots.
	StabilityThreshold = 0.2
	// MLabAgreementThreshold is the §5.2 cross-check level.
	MLabAgreementThreshold = 0.5
)

// RunChecks executes the paper's reliability checklist for one country:
//
//  1. Sample sufficiency — enough raw samples to rescale at all.
//  2. Elasticity — the users-per-sample ratio sits inside the global
//     95% prediction band (§5.1.1).
//  3. Temporal stability — no org's share moved more than the threshold
//     across recent snapshots (§5.1.2).
//  4. M-Lab cross-check — public external data ranks orgs consistently
//     (§5.2); skipped (passes vacuously) when M-Lab has no coverage.
//
// Verdict: all passed → Reliable; one failed → Caution; two or more →
// Unreliable.
func RunChecks(in CheckInput) Report {
	rep := Report{Country: in.Country}
	failures := 0
	add := func(name string, passed bool, detail string) {
		rep.Checks = append(rep.Checks, CheckResult{Name: name, Passed: passed, Detail: detail})
		if !passed {
			failures++
		}
	}

	add("sample-sufficiency", in.Samples >= MinCountrySamples,
		fmt.Sprintf("%.0f samples (floor %.0f)", in.Samples, MinCountrySamples))

	elasticOK := !in.Elasticity.RatioAboveBound(in.Samples, in.Users)
	add("elasticity-band", elasticOK,
		fmt.Sprintf("users/sample ratio %.1f", ElasticityRatio(in.Users, in.Samples)))

	maxMove := 0.0
	for i := 1; i < len(in.RecentShares); i++ {
		d := StabilityDistance(in.RecentShares[i-1], in.RecentShares[i])
		if !math.IsNaN(d) && d > maxMove {
			maxMove = d
		}
	}
	add("temporal-stability", maxMove <= StabilityThreshold,
		fmt.Sprintf("max consecutive share move %.3f (limit %.2f)", maxMove, StabilityThreshold))

	if math.IsNaN(in.MLabKendall) {
		add("mlab-crosscheck", true, "no M-Lab coverage; skipped")
	} else {
		add("mlab-crosscheck", in.MLabKendall >= MLabAgreementThreshold,
			fmt.Sprintf("Kendall-Tau vs M-Lab %.2f (floor %.2f)", in.MLabKendall, MLabAgreementThreshold))
	}

	switch {
	case failures == 0:
		rep.Verdict = Reliable
	case failures == 1:
		rep.Verdict = Caution
	default:
		rep.Verdict = Unreliable
	}
	return rep
}

// Guidance is one actionable recommendation derived from check outcomes
// across countries — the §2 goal of "clear guidelines for interpreting
// the numbers the dataset provides".
type Guidance struct {
	Check     string   // failing check, or "overall"
	Countries []string // affected countries, sorted
	Advice    string
}

// adviceFor maps a failing check to the paper's remedy.
var adviceFor = map[string]string{
	"sample-sufficiency": "Too few raw samples to rescale: do not use per-AS estimates; treat the country as unmeasured or aggregate to the country level only.",
	"elasticity-band":    "Each sample represents anomalously many users (§5.1.1): use the raw 'Samples' column instead of 'Estimated Users', and prefer dates chosen by the best-day rule.",
	"temporal-stability": "Estimates moved sharply across recent days (§5.1.2): pick the day with the smallest users-per-sample ratio within the 60-day window before relying on a snapshot.",
	"mlab-crosscheck":    "Public M-Lab rankings disagree (§5.2): expect weaker agreement with traffic-volume ground truth; validate against an additional source before weighting ASes.",
}

// Recommend turns per-country reports into the artifact's guideline
// summary: which checks failed where, and what to do about each.
func Recommend(reports map[string]Report) []Guidance {
	byCheck := map[string][]string{}
	var unreliable []string
	for cc, rep := range reports {
		for _, c := range rep.Checks {
			if !c.Passed {
				byCheck[c.Name] = append(byCheck[c.Name], cc)
			}
		}
		if rep.Verdict == Unreliable {
			unreliable = append(unreliable, cc)
		}
	}
	var out []Guidance
	for _, name := range []string{"sample-sufficiency", "elasticity-band", "temporal-stability", "mlab-crosscheck"} {
		ccs := byCheck[name]
		if len(ccs) == 0 {
			continue
		}
		sort.Strings(ccs)
		out = append(out, Guidance{Check: name, Countries: ccs, Advice: adviceFor[name]})
	}
	if len(unreliable) > 0 {
		sort.Strings(unreliable)
		out = append(out, Guidance{
			Check:     "overall",
			Countries: unreliable,
			Advice:    "Multiple checks failed: exclude these countries from user-weighted analyses, or report results with and without them.",
		})
	}
	return out
}
