package core

import (
	"math"
	"testing"

	"repro/internal/dates"
)

func TestStabilityDistance(t *testing.T) {
	a := map[string]float64{"x": 0.6, "y": 0.4}
	if d := StabilityDistance(a, a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	b := map[string]float64{"x": 0.4, "y": 0.6}
	if d := StabilityDistance(a, b); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("swap distance = %v, want 0.2", d)
	}
	// An org disappearing entirely moves its full share.
	c := map[string]float64{"x": 1.0}
	if d := StabilityDistance(a, c); math.Abs(d-0.4) > 1e-12 {
		t.Fatalf("disappearance distance = %v, want 0.4", d)
	}
	if !math.IsNaN(StabilityDistance(nil, a)) {
		t.Fatal("empty snapshot should be NaN")
	}
}

func TestStabilitySeries(t *testing.T) {
	snaps := []map[string]float64{
		{"x": 0.5, "y": 0.5},
		{"x": 0.5, "y": 0.5},
		{"x": 0.8, "y": 0.2},
	}
	series := StabilitySeries(snaps)
	if len(series) != 2 {
		t.Fatalf("series length = %d", len(series))
	}
	if series[0] != 0 || math.Abs(series[1]-0.3) > 1e-12 {
		t.Fatalf("series = %v", series)
	}
	if len(StabilitySeries(snaps[:1])) != 0 {
		t.Fatal("single snapshot should give empty series")
	}
}

func TestBestDay(t *testing.T) {
	ratios := map[string]float64{
		"2024-01-01": 40,
		"2024-01-02": 25, // best
		"2024-01-03": 60,
		"2024-01-04": 0, // no data — skipped
	}
	day, ok := BestDay(ratios)
	if !ok || day != "2024-01-02" {
		t.Fatalf("BestDay = %q, %v", day, ok)
	}
	if _, ok := BestDay(map[string]float64{"x": 0}); ok {
		t.Fatal("all-zero ratios should fail")
	}
	if _, ok := BestDay(nil); ok {
		t.Fatal("empty ratios should fail")
	}
}

func TestBestDayDeterministicTies(t *testing.T) {
	// Equal ratios: the earliest day wins (sorted iteration).
	ratios := map[string]float64{"2024-01-03": 10, "2024-01-01": 10, "2024-01-02": 10}
	day, _ := BestDay(ratios)
	if day != "2024-01-01" {
		t.Fatalf("tie-break day = %s", day)
	}
}

// TestBestDayDateMatchesBestDay checks the date-keyed variant selects the
// same day as the string-keyed rule over identical candidates, including
// the skip-zero and tie-break behavior.
func TestBestDayDateMatchesBestDay(t *testing.T) {
	byDate := map[dates.Date]float64{
		dates.New(2024, 1, 1): 40,
		dates.New(2024, 1, 2): 25, // best
		dates.New(2024, 1, 3): 60,
		dates.New(2024, 1, 4): 0, // no data — skipped
	}
	byLabel := map[string]float64{}
	for d, r := range byDate {
		byLabel[d.String()] = r
	}
	day, ok := BestDayDate(byDate)
	label, lok := BestDay(byLabel)
	if !ok || !lok || day.String() != label {
		t.Fatalf("BestDayDate = %s (%v), BestDay = %s (%v)", day, ok, label, lok)
	}

	ties := map[dates.Date]float64{
		dates.New(2024, 1, 3): 10,
		dates.New(2024, 1, 1): 10,
		dates.New(2024, 1, 2): 10,
	}
	if day, _ := BestDayDate(ties); day != dates.New(2024, 1, 1) {
		t.Fatalf("tie-break day = %s, want earliest", day)
	}

	if _, ok := BestDayDate(map[dates.Date]float64{dates.New(2024, 1, 1): 0}); ok {
		t.Fatal("all-zero ratios should fail")
	}
	if _, ok := BestDayDate(nil); ok {
		t.Fatal("empty ratios should fail")
	}
}

func TestGranularitySteps(t *testing.T) {
	if Daily.Step() != 1 || Weekly.Step() != 7 || Monthly.Step() != 30 || Yearly.Step() != 365 {
		t.Fatal("granularity steps wrong")
	}
	if Granularity("bogus").Step() != 1 {
		t.Fatal("unknown granularity should default to 1")
	}
}
