package geo

import (
	"sort"
	"testing"
)

func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range All() {
		if err := c.Validate(); err != nil {
			t.Error(err)
		}
		if seen[c.Code] {
			t.Errorf("%s: duplicate country code", c.Code)
		}
		seen[c.Code] = true
	}
	if len(seen) < 100 {
		t.Errorf("registry has %d countries, want >= 100", len(seen))
	}
}

func TestValidateRejectsBadRows(t *testing.T) {
	base, _ := ByCode("FR")
	cases := []struct {
		name   string
		mutate func(*Country)
	}{
		{"bad code", func(c *Country) { c.Code = "FRA" }},
		{"missing name", func(c *Country) { c.Name = "" }},
		{"zero population", func(c *Country) { c.Population = 0 }},
		{"pen2013 high", func(c *Country) { c.Pen2013 = 1.2 }},
		{"pen2024 negative", func(c *Country) { c.Pen2024 = -0.1 }},
		{"freedom high", func(c *Country) { c.Freedom = 101 }},
		{"ad reach high", func(c *Country) { c.AdReach = 1.5 }},
		{"ad volatility negative", func(c *Country) { c.AdVolatility = -0.2 }},
		{"household below 1", func(c *Country) { c.HouseholdSize = 0.5 }},
		{"shutdown rate high", func(c *Country) { c.ShutdownRate = 1.3 }},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid row", tc.name)
		}
	}
}

func TestKeyCountriesPresent(t *testing.T) {
	// Every country the paper names as an outlier or example must exist.
	for _, code := range []string{
		"FR", "RU", "NO", "IN", "MM", "CN", "KR", "JP", "DE", "BR",
		"PL", "AU", "CH", "TM", "ER", "MG", "SD", "VU", "CM", "BJ",
		"CG", "LK", "TH", "KP", "US", "ZA", "SE", "MX", "CA", "FI",
		"AT", "IT", "GB",
	} {
		if _, ok := ByCode(code); !ok {
			t.Errorf("country %s missing from registry", code)
		}
	}
}

func TestOutlierDesign(t *testing.T) {
	// The ad-reach structure drives the paper's Figure 6 outlier set:
	// these countries must have much lower reach than the baseline.
	base, _ := ByCode("FR")
	for _, code := range []string{"RU", "TM", "ER", "MG", "SD", "MM", "VU"} {
		c, _ := ByCode(code)
		if c.AdReach > base.AdReach/2 {
			t.Errorf("%s ad reach %v not clearly below baseline %v", code, c.AdReach, base.AdReach)
		}
	}
	no, _ := ByCode("NO")
	if !no.VPNHub {
		t.Error("Norway must be a VPN hub")
	}
	mm, _ := ByCode("MM")
	if mm.ShutdownRate <= 0 {
		t.Error("Myanmar must have a positive shutdown rate")
	}
	kp, _ := ByCode("KP")
	if kp.AdReach != 0 {
		t.Error("North Korea must have zero ad reach (Google bans ads there)")
	}
}

func TestPenetrationInterpolation(t *testing.T) {
	c, _ := ByCode("IN")
	if got := c.Penetration(2013); got != c.Pen2013 {
		t.Errorf("Penetration(2013) = %v", got)
	}
	if got := c.Penetration(2024); got != c.Pen2024 {
		t.Errorf("Penetration(2024) = %v", got)
	}
	mid := c.Penetration(2019)
	if mid <= c.Pen2013 || mid >= c.Pen2024 {
		t.Errorf("Penetration(2019) = %v not strictly between anchors", mid)
	}
	// Clamped outside the range.
	if c.Penetration(2010) != c.Pen2013 || c.Penetration(2030) != c.Pen2024 {
		t.Error("penetration not clamped outside [2013, 2024]")
	}
}

func TestInternetUsers(t *testing.T) {
	c, _ := ByCode("IN")
	users := c.InternetUsers(2024)
	if users < 5e8 || users > 1e9 {
		t.Errorf("India 2024 Internet users = %v, want hundreds of millions", users)
	}
}

func TestContinentMapping(t *testing.T) {
	cases := map[string]Continent{
		"US": NorthAmerica, "BR": SouthAmerica, "FR": Europe,
		"IN": Asia, "NG": Africa, "AU": Oceania, "FJ": Oceania,
		"MX": NorthAmerica, "RU": Europe, "EG": Africa,
	}
	for code, want := range cases {
		c, ok := ByCode(code)
		if !ok {
			t.Fatalf("missing %s", code)
		}
		if got := c.Continent(); got != want {
			t.Errorf("%s continent = %v, want %v", code, got, want)
		}
	}
}

func TestSubregionCoverage(t *testing.T) {
	// Every Table 6 row must have at least one country so the regional
	// ASN analysis has data everywhere.
	for _, s := range AllSubregions() {
		if len(InSubregion(s)) == 0 {
			t.Errorf("subregion %q has no countries", s)
		}
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Code < all[j].Code }) {
		t.Error("All() not sorted by code")
	}
	codes := Codes()
	if len(codes) != len(all) {
		t.Error("Codes() length mismatch")
	}
}

func TestByCodeMiss(t *testing.T) {
	if _, ok := ByCode("XX"); ok {
		t.Error("ByCode(XX) should miss")
	}
}

func TestInContinent(t *testing.T) {
	eu := InContinent(Europe)
	if len(eu) < 20 {
		t.Errorf("Europe has %d countries, want >= 20", len(eu))
	}
	for _, c := range eu {
		if c.Continent() != Europe {
			t.Errorf("%s leaked into Europe", c.Code)
		}
	}
}
