package geo

import "fmt"

// Validate checks one country row against the registry's invariants: the
// bounds every simulation input must satisfy before any generator divides
// by, samples from, or interpolates over it. The static registry is tested
// against it, and the scenario loader revalidates rows after applying
// overrides (a shutdown-rate override of 1.3 must be rejected exactly like
// a typo in the registry would be).
func (c Country) Validate() error {
	if len(c.Code) != 2 {
		return fmt.Errorf("geo: %q: code must be two characters", c.Code)
	}
	if c.Name == "" {
		return fmt.Errorf("geo: %s: missing name", c.Code)
	}
	if c.Population <= 0 {
		return fmt.Errorf("geo: %s: non-positive population %d", c.Code, c.Population)
	}
	if c.Pen2013 < 0 || c.Pen2013 > 1 {
		return fmt.Errorf("geo: %s: 2013 penetration %v out of [0,1]", c.Code, c.Pen2013)
	}
	if c.Pen2024 < 0 || c.Pen2024 > 1 {
		return fmt.Errorf("geo: %s: 2024 penetration %v out of [0,1]", c.Code, c.Pen2024)
	}
	if c.Freedom < 0 || c.Freedom > 100 {
		return fmt.Errorf("geo: %s: freedom index %d out of [0,100]", c.Code, c.Freedom)
	}
	if c.AdReach < 0 || c.AdReach > 1 {
		return fmt.Errorf("geo: %s: ad reach %v out of [0,1]", c.Code, c.AdReach)
	}
	if c.AdVolatility < 0 || c.AdVolatility > 1 {
		return fmt.Errorf("geo: %s: ad volatility %v out of [0,1]", c.Code, c.AdVolatility)
	}
	if c.HouseholdSize < 1 {
		return fmt.Errorf("geo: %s: household size %v < 1", c.Code, c.HouseholdSize)
	}
	if c.ShutdownRate < 0 || c.ShutdownRate > 1 {
		return fmt.Errorf("geo: %s: shutdown rate %v out of [0,1]", c.Code, c.ShutdownRate)
	}
	return nil
}
