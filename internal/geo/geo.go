// Package geo provides the static country registry the synthetic world is
// built on: ISO 3166 codes, UN-style subregions (the rows of the paper's
// Table 6), populations, Internet penetration trajectories, a Freedom-House-
// style index, a Google ad-reach factor, and M-Lab search-integration flags.
//
// The numeric values are plausible, hand-curated approximations — they are
// inputs to a simulation, not measurements — but the *relative* structure
// is what the paper's experiments depend on: which countries have low ad
// reach (Russia, Turkmenistan, Eritrea, ...), which have low Internet
// freedom, which host VPN egress concentrations (Norway), which suffer
// shutdowns (Myanmar), and which sit in which consolidation region.
package geo

import "sort"

// Subregion is a UN-geoscheme-style subregion, matching the rows of the
// paper's Table 6 (Appendix D). The catch-all "Asia", "Africa" and
// "Oceania" rows cover Central/Western Asia, Middle/Western Africa, and
// Melanesia/Micronesia/Polynesia respectively, as in the paper.
type Subregion string

// Subregions, in the paper's Table 6 row order.
const (
	Caribbean      Subregion = "Caribbean"
	CentralAmerica Subregion = "Central America"
	SouthAmer      Subregion = "South America"
	NorthernAmer   Subregion = "Northern America"
	EasternAsia    Subregion = "Eastern Asia"
	OtherAsia      Subregion = "Asia"
	SouthernAsia   Subregion = "Southern Asia"
	SouthEastAsia  Subregion = "South-Eastern Asia"
	EasternAfrica  Subregion = "Eastern Africa"
	SouthernAfrica Subregion = "Southern Africa"
	NorthernAfrica Subregion = "Northern Africa"
	OtherAfrica    Subregion = "Africa"
	EasternEurope  Subregion = "Eastern Europe"
	SouthernEurope Subregion = "Southern Europe"
	NorthernEurope Subregion = "Northern Europe"
	WesternEurope  Subregion = "Western Europe"
	AustraliaNZ    Subregion = "Australia and New Zealand"
	OtherOceania   Subregion = "Oceania"
)

// Continent groups subregions for continental analyses (Figure 10).
type Continent string

// Continents.
const (
	Africa       Continent = "Africa"
	Asia         Continent = "Asia"
	Europe       Continent = "Europe"
	NorthAmerica Continent = "North America"
	SouthAmerica Continent = "South America"
	Oceania      Continent = "Oceania"
)

// ContinentOf maps a subregion to its continent.
func ContinentOf(s Subregion) Continent {
	switch s {
	case Caribbean, CentralAmerica, NorthernAmer:
		return NorthAmerica
	case SouthAmer:
		return SouthAmerica
	case EasternAsia, OtherAsia, SouthernAsia, SouthEastAsia:
		return Asia
	case EasternAfrica, SouthernAfrica, NorthernAfrica, OtherAfrica:
		return Africa
	case EasternEurope, SouthernEurope, NorthernEurope, WesternEurope:
		return Europe
	default:
		return Oceania
	}
}

// AllSubregions returns every subregion in Table 6 row order.
func AllSubregions() []Subregion {
	return []Subregion{
		Caribbean, CentralAmerica, SouthAmer, NorthernAmer,
		EasternAsia, OtherAsia, SouthernAsia, SouthEastAsia,
		EasternAfrica, SouthernAfrica, NorthernAfrica, OtherAfrica,
		EasternEurope, SouthernEurope, NorthernEurope, WesternEurope,
		AustraliaNZ, OtherOceania,
	}
}

// Country is one entry of the registry.
type Country struct {
	Code      string    // ISO 3166-1 alpha-2 (plus the CDN's "T1" for Tor)
	Name      string    // English short name
	Subregion Subregion // UN-style subregion (Table 6 rows)

	Population int64   // approximate 2024 population
	Pen2013    float64 // Internet penetration in 2013, in [0,1]
	Pen2024    float64 // Internet penetration in 2024, in [0,1]

	Freedom int // Freedom-House-style Internet freedom index, 0..100

	// AdReach is the fraction of a country's Internet users effectively
	// reachable by Google-Ads impressions — the paper's first APNIC bias
	// (§3.2). Near 1 where Google dominates, near 0 where it is banned
	// or marginal (Russia/Yandex, China, North Korea, Turkmenistan...).
	AdReach float64

	// AdVolatility is the day-to-day multiplicative noise (log-sigma) of
	// ad impressions. High values model the unstable ad serving the
	// paper observes in parts of Africa (Figure 7's transient dips).
	AdVolatility float64

	// MLabIntegrated reports whether the M-Lab speed test is surfaced in
	// Google Search for this country (§5.2's filtering step).
	MLabIntegrated bool

	// HouseholdSize converts broadband subscribers to users (§3.3:
	// "a subscriber can represent a whole family").
	HouseholdSize float64

	// VPNHub marks countries hosting large VPN egress deployments whose
	// IPs geolocate locally while users are elsewhere (Norway, §4.4).
	VPNHub bool

	// ShutdownRate is the per-day probability of a government-ordered
	// Internet shutdown suppressing most traffic (Myanmar, §4.4).
	ShutdownRate float64
}

// Continent returns the country's continent.
func (c Country) Continent() Continent { return ContinentOf(c.Subregion) }

// Penetration returns the Internet penetration for a year, linearly
// interpolated between the 2013 and 2024 anchors and clamped outside.
func (c Country) Penetration(year int) float64 {
	switch {
	case year <= 2013:
		return c.Pen2013
	case year >= 2024:
		return c.Pen2024
	}
	f := float64(year-2013) / 11
	return c.Pen2013 + f*(c.Pen2024-c.Pen2013)
}

// InternetUsers returns the estimated number of Internet users in a year.
func (c Country) InternetUsers(year int) float64 {
	return float64(c.Population) * c.Penetration(year)
}

// registry is the master table. Values are hand-curated approximations;
// see the package comment for what actually matters about them.
var registry = []Country{
	// ---- Northern America ----
	{Code: "US", Name: "United States", Subregion: NorthernAmer, Population: 335_000_000, Pen2013: 0.75, Pen2024: 0.92, Freedom: 76, AdReach: 0.92, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "CA", Name: "Canada", Subregion: NorthernAmer, Population: 39_000_000, Pen2013: 0.85, Pen2024: 0.94, Freedom: 88, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.4},

	// ---- Caribbean ----
	{Code: "JM", Name: "Jamaica", Subregion: Caribbean, Population: 2_800_000, Pen2013: 0.38, Pen2024: 0.70, Freedom: 75, AdReach: 0.85, AdVolatility: 0.10, MLabIntegrated: true, HouseholdSize: 3.1},
	{Code: "CU", Name: "Cuba", Subregion: Caribbean, Population: 11_000_000, Pen2013: 0.26, Pen2024: 0.71, Freedom: 20, AdReach: 0.30, AdVolatility: 0.20, MLabIntegrated: false, HouseholdSize: 2.9},
	{Code: "DO", Name: "Dominican Republic", Subregion: Caribbean, Population: 11_300_000, Pen2013: 0.46, Pen2024: 0.85, Freedom: 70, AdReach: 0.87, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 3.3},
	{Code: "HT", Name: "Haiti", Subregion: Caribbean, Population: 11_700_000, Pen2013: 0.10, Pen2024: 0.39, Freedom: 55, AdReach: 0.60, AdVolatility: 0.18, MLabIntegrated: false, HouseholdSize: 4.3},
	{Code: "TT", Name: "Trinidad and Tobago", Subregion: Caribbean, Population: 1_500_000, Pen2013: 0.64, Pen2024: 0.81, Freedom: 78, AdReach: 0.88, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 3.2},

	// ---- Central America ----
	{Code: "MX", Name: "Mexico", Subregion: CentralAmerica, Population: 129_000_000, Pen2013: 0.43, Pen2024: 0.81, Freedom: 60, AdReach: 0.90, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 3.6},
	{Code: "CR", Name: "Costa Rica", Subregion: CentralAmerica, Population: 5_200_000, Pen2013: 0.46, Pen2024: 0.85, Freedom: 85, AdReach: 0.91, AdVolatility: 0.07, MLabIntegrated: true, HouseholdSize: 3.1},
	{Code: "GT", Name: "Guatemala", Subregion: CentralAmerica, Population: 17_600_000, Pen2013: 0.23, Pen2024: 0.56, Freedom: 62, AdReach: 0.84, AdVolatility: 0.12, MLabIntegrated: true, HouseholdSize: 4.6},
	{Code: "PA", Name: "Panama", Subregion: CentralAmerica, Population: 4_400_000, Pen2013: 0.43, Pen2024: 0.74, Freedom: 72, AdReach: 0.88, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 3.5},
	{Code: "SV", Name: "El Salvador", Subregion: CentralAmerica, Population: 6_300_000, Pen2013: 0.23, Pen2024: 0.65, Freedom: 58, AdReach: 0.85, AdVolatility: 0.11, MLabIntegrated: true, HouseholdSize: 3.8},

	// ---- South America ----
	{Code: "BR", Name: "Brazil", Subregion: SouthAmer, Population: 216_000_000, Pen2013: 0.51, Pen2024: 0.84, Freedom: 64, AdReach: 0.60, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 3.0},
	{Code: "AR", Name: "Argentina", Subregion: SouthAmer, Population: 46_000_000, Pen2013: 0.60, Pen2024: 0.89, Freedom: 71, AdReach: 0.90, AdVolatility: 0.07, MLabIntegrated: true, HouseholdSize: 3.0},
	{Code: "CL", Name: "Chile", Subregion: SouthAmer, Population: 19_600_000, Pen2013: 0.65, Pen2024: 0.94, Freedom: 80, AdReach: 0.91, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 3.1},
	{Code: "CO", Name: "Colombia", Subregion: SouthAmer, Population: 52_000_000, Pen2013: 0.50, Pen2024: 0.77, Freedom: 65, AdReach: 0.89, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 3.2},
	{Code: "PE", Name: "Peru", Subregion: SouthAmer, Population: 34_000_000, Pen2013: 0.39, Pen2024: 0.75, Freedom: 68, AdReach: 0.88, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 3.7},
	{Code: "UY", Name: "Uruguay", Subregion: SouthAmer, Population: 3_400_000, Pen2013: 0.58, Pen2024: 0.90, Freedom: 86, AdReach: 0.92, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.8},
	{Code: "BO", Name: "Bolivia", Subregion: SouthAmer, Population: 12_200_000, Pen2013: 0.37, Pen2024: 0.66, Freedom: 61, AdReach: 0.85, AdVolatility: 0.12, MLabIntegrated: true, HouseholdSize: 3.5},
	{Code: "EC", Name: "Ecuador", Subregion: SouthAmer, Population: 18_000_000, Pen2013: 0.40, Pen2024: 0.73, Freedom: 66, AdReach: 0.87, AdVolatility: 0.10, MLabIntegrated: true, HouseholdSize: 3.6},
	{Code: "PY", Name: "Paraguay", Subregion: SouthAmer, Population: 6_900_000, Pen2013: 0.37, Pen2024: 0.77, Freedom: 64, AdReach: 0.86, AdVolatility: 0.11, MLabIntegrated: true, HouseholdSize: 4.0},
	{Code: "VE", Name: "Venezuela", Subregion: SouthAmer, Population: 28_000_000, Pen2013: 0.55, Pen2024: 0.72, Freedom: 29, AdReach: 0.65, AdVolatility: 0.16, MLabIntegrated: false, HouseholdSize: 3.9},

	// ---- Eastern Asia ----
	{Code: "CN", Name: "China", Subregion: EasternAsia, Population: 1_410_000_000, Pen2013: 0.45, Pen2024: 0.77, Freedom: 9, AdReach: 0.35, AdVolatility: 0.10, MLabIntegrated: false, HouseholdSize: 2.8},
	{Code: "JP", Name: "Japan", Subregion: EasternAsia, Population: 124_000_000, Pen2013: 0.88, Pen2024: 0.94, Freedom: 77, AdReach: 0.88, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.2},
	{Code: "KR", Name: "Korea, Republic of", Subregion: EasternAsia, Population: 51_700_000, Pen2013: 0.85, Pen2024: 0.97, Freedom: 67, AdReach: 0.70, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.3},
	{Code: "TW", Name: "Taiwan", Subregion: EasternAsia, Population: 23_400_000, Pen2013: 0.76, Pen2024: 0.92, Freedom: 79, AdReach: 0.89, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.7},
	{Code: "MN", Name: "Mongolia", Subregion: EasternAsia, Population: 3_400_000, Pen2013: 0.18, Pen2024: 0.84, Freedom: 65, AdReach: 0.82, AdVolatility: 0.12, MLabIntegrated: true, HouseholdSize: 3.5},
	{Code: "HK", Name: "Hong Kong", Subregion: EasternAsia, Population: 7_400_000, Pen2013: 0.74, Pen2024: 0.95, Freedom: 42, AdReach: 0.85, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.7},
	{Code: "KP", Name: "Korea, Democratic People's Republic of", Subregion: EasternAsia, Population: 26_000_000, Pen2013: 0.001, Pen2024: 0.002, Freedom: 3, AdReach: 0, AdVolatility: 0.40, MLabIntegrated: false, HouseholdSize: 3.9},

	// ---- Southern Asia ----
	{Code: "IN", Name: "India", Subregion: SouthernAsia, Population: 1_430_000_000, Pen2013: 0.15, Pen2024: 0.52, Freedom: 50, AdReach: 0.90, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 4.4},
	{Code: "PK", Name: "Pakistan", Subregion: SouthernAsia, Population: 240_000_000, Pen2013: 0.11, Pen2024: 0.41, Freedom: 26, AdReach: 0.75, AdVolatility: 0.14, MLabIntegrated: true, HouseholdSize: 6.2},
	{Code: "BD", Name: "Bangladesh", Subregion: SouthernAsia, Population: 172_000_000, Pen2013: 0.07, Pen2024: 0.44, Freedom: 41, AdReach: 0.78, AdVolatility: 0.13, MLabIntegrated: true, HouseholdSize: 4.3},
	{Code: "LK", Name: "Sri Lanka", Subregion: SouthernAsia, Population: 22_200_000, Pen2013: 0.12, Pen2024: 0.50, Freedom: 52, AdReach: 0.45, AdVolatility: 0.20, MLabIntegrated: true, HouseholdSize: 3.8},
	{Code: "NP", Name: "Nepal", Subregion: SouthernAsia, Population: 30_500_000, Pen2013: 0.13, Pen2024: 0.51, Freedom: 57, AdReach: 0.80, AdVolatility: 0.13, MLabIntegrated: true, HouseholdSize: 4.3},
	{Code: "AF", Name: "Afghanistan", Subregion: SouthernAsia, Population: 42_000_000, Pen2013: 0.06, Pen2024: 0.18, Freedom: 14, AdReach: 0.40, AdVolatility: 0.25, MLabIntegrated: false, HouseholdSize: 8.0},
	{Code: "IR", Name: "Iran, Islamic Republic of", Subregion: SouthernAsia, Population: 89_000_000, Pen2013: 0.30, Pen2024: 0.79, Freedom: 11, AdReach: 0.25, AdVolatility: 0.22, MLabIntegrated: false, HouseholdSize: 3.3},

	// ---- South-Eastern Asia ----
	{Code: "ID", Name: "Indonesia", Subregion: SouthEastAsia, Population: 277_000_000, Pen2013: 0.15, Pen2024: 0.67, Freedom: 47, AdReach: 0.88, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 3.9},
	{Code: "TH", Name: "Thailand", Subregion: SouthEastAsia, Population: 71_800_000, Pen2013: 0.29, Pen2024: 0.88, Freedom: 39, AdReach: 0.55, AdVolatility: 0.15, MLabIntegrated: true, HouseholdSize: 3.0},
	{Code: "VN", Name: "Viet Nam", Subregion: SouthEastAsia, Population: 98_900_000, Pen2013: 0.39, Pen2024: 0.79, Freedom: 22, AdReach: 0.72, AdVolatility: 0.12, MLabIntegrated: true, HouseholdSize: 3.5},
	{Code: "PH", Name: "Philippines", Subregion: SouthEastAsia, Population: 117_000_000, Pen2013: 0.37, Pen2024: 0.73, Freedom: 61, AdReach: 0.89, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 4.2},
	{Code: "MY", Name: "Malaysia", Subregion: SouthEastAsia, Population: 34_300_000, Pen2013: 0.57, Pen2024: 0.98, Freedom: 61, AdReach: 0.90, AdVolatility: 0.07, MLabIntegrated: true, HouseholdSize: 3.9},
	{Code: "MM", Name: "Myanmar", Subregion: SouthEastAsia, Population: 54_600_000, Pen2013: 0.02, Pen2024: 0.44, Freedom: 9, AdReach: 0.15, AdVolatility: 0.30, MLabIntegrated: false, HouseholdSize: 4.2, ShutdownRate: 0.10},
	{Code: "KH", Name: "Cambodia", Subregion: SouthEastAsia, Population: 16_900_000, Pen2013: 0.07, Pen2024: 0.60, Freedom: 44, AdReach: 0.80, AdVolatility: 0.14, MLabIntegrated: true, HouseholdSize: 4.5},
	{Code: "SG", Name: "Singapore", Subregion: SouthEastAsia, Population: 5_900_000, Pen2013: 0.79, Pen2024: 0.96, Freedom: 54, AdReach: 0.91, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 3.1},
	{Code: "LA", Name: "Lao People's Democratic Republic", Subregion: SouthEastAsia, Population: 7_600_000, Pen2013: 0.13, Pen2024: 0.66, Freedom: 26, AdReach: 0.65, AdVolatility: 0.17, MLabIntegrated: false, HouseholdSize: 4.8},

	// ---- Asia (Central + Western) ----
	{Code: "KZ", Name: "Kazakhstan", Subregion: OtherAsia, Population: 19_600_000, Pen2013: 0.54, Pen2024: 0.92, Freedom: 34, AdReach: 0.60, AdVolatility: 0.12, MLabIntegrated: true, HouseholdSize: 3.4},
	{Code: "UZ", Name: "Uzbekistan", Subregion: OtherAsia, Population: 35_600_000, Pen2013: 0.27, Pen2024: 0.77, Freedom: 27, AdReach: 0.55, AdVolatility: 0.14, MLabIntegrated: true, HouseholdSize: 4.8},
	{Code: "TM", Name: "Turkmenistan", Subregion: OtherAsia, Population: 6_500_000, Pen2013: 0.07, Pen2024: 0.38, Freedom: 5, AdReach: 0.02, AdVolatility: 0.35, MLabIntegrated: false, HouseholdSize: 5.2},
	{Code: "KG", Name: "Kyrgyzstan", Subregion: OtherAsia, Population: 7_000_000, Pen2013: 0.23, Pen2024: 0.78, Freedom: 53, AdReach: 0.62, AdVolatility: 0.14, MLabIntegrated: true, HouseholdSize: 4.2},
	{Code: "SA", Name: "Saudi Arabia", Subregion: OtherAsia, Population: 36_400_000, Pen2013: 0.60, Pen2024: 0.99, Freedom: 25, AdReach: 0.85, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 5.0},
	{Code: "AE", Name: "United Arab Emirates", Subregion: OtherAsia, Population: 9_500_000, Pen2013: 0.88, Pen2024: 0.99, Freedom: 28, AdReach: 0.87, AdVolatility: 0.07, MLabIntegrated: true, HouseholdSize: 4.5},
	{Code: "IL", Name: "Israel", Subregion: OtherAsia, Population: 9_800_000, Pen2013: 0.71, Pen2024: 0.90, Freedom: 74, AdReach: 0.90, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 3.1},
	{Code: "TR", Name: "Türkiye", Subregion: OtherAsia, Population: 85_800_000, Pen2013: 0.46, Pen2024: 0.86, Freedom: 30, AdReach: 0.84, AdVolatility: 0.10, MLabIntegrated: true, HouseholdSize: 3.2},
	{Code: "IQ", Name: "Iraq", Subregion: OtherAsia, Population: 45_500_000, Pen2013: 0.09, Pen2024: 0.79, Freedom: 38, AdReach: 0.70, AdVolatility: 0.16, MLabIntegrated: true, HouseholdSize: 6.0},
	{Code: "YE", Name: "Yemen", Subregion: OtherAsia, Population: 34_400_000, Pen2013: 0.20, Pen2024: 0.27, Freedom: 24, AdReach: 0.30, AdVolatility: 0.25, MLabIntegrated: false, HouseholdSize: 6.7},
	{Code: "JO", Name: "Jordan", Subregion: OtherAsia, Population: 11_300_000, Pen2013: 0.41, Pen2024: 0.88, Freedom: 46, AdReach: 0.86, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 4.7},
	{Code: "OM", Name: "Oman", Subregion: OtherAsia, Population: 4_600_000, Pen2013: 0.66, Pen2024: 0.96, Freedom: 45, AdReach: 0.85, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 5.4},
	{Code: "GE", Name: "Georgia", Subregion: OtherAsia, Population: 3_700_000, Pen2013: 0.43, Pen2024: 0.79, Freedom: 76, AdReach: 0.83, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 3.3},
	{Code: "AM", Name: "Armenia", Subregion: OtherAsia, Population: 2_800_000, Pen2013: 0.42, Pen2024: 0.79, Freedom: 71, AdReach: 0.80, AdVolatility: 0.10, MLabIntegrated: true, HouseholdSize: 3.6},
	{Code: "AZ", Name: "Azerbaijan", Subregion: OtherAsia, Population: 10_200_000, Pen2013: 0.59, Pen2024: 0.88, Freedom: 37, AdReach: 0.70, AdVolatility: 0.12, MLabIntegrated: true, HouseholdSize: 4.0},

	// ---- Eastern Africa ----
	{Code: "KE", Name: "Kenya", Subregion: EasternAfrica, Population: 55_100_000, Pen2013: 0.13, Pen2024: 0.41, Freedom: 66, AdReach: 0.82, AdVolatility: 0.14, MLabIntegrated: true, HouseholdSize: 3.9},
	{Code: "ET", Name: "Ethiopia", Subregion: EasternAfrica, Population: 126_500_000, Pen2013: 0.02, Pen2024: 0.21, Freedom: 27, AdReach: 0.55, AdVolatility: 0.22, MLabIntegrated: false, HouseholdSize: 4.6},
	{Code: "TZ", Name: "Tanzania, United Republic of", Subregion: EasternAfrica, Population: 67_400_000, Pen2013: 0.04, Pen2024: 0.32, Freedom: 52, AdReach: 0.72, AdVolatility: 0.18, MLabIntegrated: true, HouseholdSize: 4.9},
	{Code: "UG", Name: "Uganda", Subregion: EasternAfrica, Population: 48_600_000, Pen2013: 0.13, Pen2024: 0.27, Freedom: 51, AdReach: 0.70, AdVolatility: 0.19, MLabIntegrated: true, HouseholdSize: 4.5},
	{Code: "MG", Name: "Madagascar", Subregion: EasternAfrica, Population: 30_300_000, Pen2013: 0.02, Pen2024: 0.20, Freedom: 58, AdReach: 0.10, AdVolatility: 0.30, MLabIntegrated: false, HouseholdSize: 4.5},
	{Code: "MZ", Name: "Mozambique", Subregion: EasternAfrica, Population: 33_900_000, Pen2013: 0.05, Pen2024: 0.21, Freedom: 49, AdReach: 0.62, AdVolatility: 0.20, MLabIntegrated: true, HouseholdSize: 4.4},
	{Code: "ZW", Name: "Zimbabwe", Subregion: EasternAfrica, Population: 16_300_000, Pen2013: 0.15, Pen2024: 0.35, Freedom: 48, AdReach: 0.65, AdVolatility: 0.18, MLabIntegrated: true, HouseholdSize: 4.1},
	{Code: "ER", Name: "Eritrea", Subregion: EasternAfrica, Population: 3_700_000, Pen2013: 0.009, Pen2024: 0.25, Freedom: 8, AdReach: 0.03, AdVolatility: 0.35, MLabIntegrated: false, HouseholdSize: 5.0},
	{Code: "SO", Name: "Somalia", Subregion: EasternAfrica, Population: 18_100_000, Pen2013: 0.015, Pen2024: 0.28, Freedom: 27, AdReach: 0.45, AdVolatility: 0.26, MLabIntegrated: false, HouseholdSize: 6.1},
	{Code: "RW", Name: "Rwanda", Subregion: EasternAfrica, Population: 14_100_000, Pen2013: 0.09, Pen2024: 0.34, Freedom: 37, AdReach: 0.70, AdVolatility: 0.17, MLabIntegrated: true, HouseholdSize: 4.3},
	{Code: "ZM", Name: "Zambia", Subregion: EasternAfrica, Population: 20_600_000, Pen2013: 0.15, Pen2024: 0.31, Freedom: 59, AdReach: 0.68, AdVolatility: 0.18, MLabIntegrated: true, HouseholdSize: 5.1},

	// ---- Southern Africa ----
	{Code: "ZA", Name: "South Africa", Subregion: SouthernAfrica, Population: 60_400_000, Pen2013: 0.47, Pen2024: 0.75, Freedom: 74, AdReach: 0.89, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 3.4},
	{Code: "NA", Name: "Namibia", Subregion: SouthernAfrica, Population: 2_600_000, Pen2013: 0.14, Pen2024: 0.62, Freedom: 72, AdReach: 0.84, AdVolatility: 0.11, MLabIntegrated: true, HouseholdSize: 4.2},
	{Code: "BW", Name: "Botswana", Subregion: SouthernAfrica, Population: 2_700_000, Pen2013: 0.15, Pen2024: 0.77, Freedom: 70, AdReach: 0.85, AdVolatility: 0.10, MLabIntegrated: true, HouseholdSize: 3.7},

	// ---- Northern Africa ----
	{Code: "EG", Name: "Egypt", Subregion: NorthernAfrica, Population: 112_700_000, Pen2013: 0.29, Pen2024: 0.72, Freedom: 28, AdReach: 0.82, AdVolatility: 0.11, MLabIntegrated: true, HouseholdSize: 4.1},
	{Code: "DZ", Name: "Algeria", Subregion: NorthernAfrica, Population: 45_600_000, Pen2013: 0.16, Pen2024: 0.71, Freedom: 40, AdReach: 0.80, AdVolatility: 0.12, MLabIntegrated: true, HouseholdSize: 5.2},
	{Code: "MA", Name: "Morocco", Subregion: NorthernAfrica, Population: 37_800_000, Pen2013: 0.56, Pen2024: 0.90, Freedom: 51, AdReach: 0.85, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 4.3},
	{Code: "TN", Name: "Tunisia", Subregion: NorthernAfrica, Population: 12_500_000, Pen2013: 0.43, Pen2024: 0.79, Freedom: 60, AdReach: 0.86, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 3.9},
	{Code: "SD", Name: "Sudan", Subregion: NorthernAfrica, Population: 48_100_000, Pen2013: 0.22, Pen2024: 0.29, Freedom: 21, AdReach: 0.05, AdVolatility: 0.32, MLabIntegrated: false, HouseholdSize: 5.7},
	{Code: "LY", Name: "Libya", Subregion: NorthernAfrica, Population: 6_900_000, Pen2013: 0.16, Pen2024: 0.48, Freedom: 30, AdReach: 0.60, AdVolatility: 0.20, MLabIntegrated: false, HouseholdSize: 5.8},

	// ---- Africa (Middle + Western) ----
	{Code: "NG", Name: "Nigeria", Subregion: OtherAfrica, Population: 223_800_000, Pen2013: 0.19, Pen2024: 0.45, Freedom: 59, AdReach: 0.83, AdVolatility: 0.13, MLabIntegrated: true, HouseholdSize: 4.9},
	{Code: "GH", Name: "Ghana", Subregion: OtherAfrica, Population: 34_100_000, Pen2013: 0.12, Pen2024: 0.70, Freedom: 65, AdReach: 0.82, AdVolatility: 0.13, MLabIntegrated: true, HouseholdSize: 3.6},
	{Code: "CI", Name: "Côte d'Ivoire", Subregion: OtherAfrica, Population: 28_900_000, Pen2013: 0.12, Pen2024: 0.45, Freedom: 61, AdReach: 0.78, AdVolatility: 0.15, MLabIntegrated: true, HouseholdSize: 5.0},
	{Code: "SN", Name: "Senegal", Subregion: OtherAfrica, Population: 17_800_000, Pen2013: 0.13, Pen2024: 0.60, Freedom: 64, AdReach: 0.80, AdVolatility: 0.14, MLabIntegrated: true, HouseholdSize: 8.3},
	{Code: "CM", Name: "Cameroon", Subregion: OtherAfrica, Population: 28_600_000, Pen2013: 0.06, Pen2024: 0.45, Freedom: 44, AdReach: 0.35, AdVolatility: 0.28, MLabIntegrated: false, HouseholdSize: 5.0},
	{Code: "CG", Name: "Congo", Subregion: OtherAfrica, Population: 6_100_000, Pen2013: 0.07, Pen2024: 0.33, Freedom: 41, AdReach: 0.30, AdVolatility: 0.30, MLabIntegrated: false, HouseholdSize: 4.5},
	{Code: "CD", Name: "Congo, The Democratic Republic of the", Subregion: OtherAfrica, Population: 102_300_000, Pen2013: 0.02, Pen2024: 0.23, Freedom: 43, AdReach: 0.50, AdVolatility: 0.24, MLabIntegrated: false, HouseholdSize: 5.3},
	{Code: "BJ", Name: "Benin", Subregion: OtherAfrica, Population: 13_700_000, Pen2013: 0.05, Pen2024: 0.34, Freedom: 60, AdReach: 0.32, AdVolatility: 0.28, MLabIntegrated: false, HouseholdSize: 5.2},
	{Code: "TG", Name: "Togo", Subregion: OtherAfrica, Population: 9_100_000, Pen2013: 0.05, Pen2024: 0.37, Freedom: 55, AdReach: 0.66, AdVolatility: 0.19, MLabIntegrated: true, HouseholdSize: 4.4},
	{Code: "ML", Name: "Mali", Subregion: OtherAfrica, Population: 23_300_000, Pen2013: 0.03, Pen2024: 0.35, Freedom: 38, AdReach: 0.58, AdVolatility: 0.22, MLabIntegrated: false, HouseholdSize: 5.9},
	{Code: "GN", Name: "Guinea", Subregion: OtherAfrica, Population: 14_200_000, Pen2013: 0.02, Pen2024: 0.35, Freedom: 45, AdReach: 0.55, AdVolatility: 0.23, MLabIntegrated: false, HouseholdSize: 6.2},
	{Code: "BF", Name: "Burkina Faso", Subregion: OtherAfrica, Population: 23_300_000, Pen2013: 0.04, Pen2024: 0.22, Freedom: 42, AdReach: 0.55, AdVolatility: 0.23, MLabIntegrated: false, HouseholdSize: 5.9},
	{Code: "GA", Name: "Gabon", Subregion: OtherAfrica, Population: 2_400_000, Pen2013: 0.28, Pen2024: 0.72, Freedom: 47, AdReach: 0.70, AdVolatility: 0.16, MLabIntegrated: true, HouseholdSize: 4.1},

	// ---- Eastern Europe ----
	{Code: "RU", Name: "Russian Federation", Subregion: EasternEurope, Population: 144_400_000, Pen2013: 0.61, Pen2024: 0.90, Freedom: 21, AdReach: 0.25, AdVolatility: 0.14, MLabIntegrated: false, HouseholdSize: 2.6},
	{Code: "PL", Name: "Poland", Subregion: EasternEurope, Population: 37_700_000, Pen2013: 0.63, Pen2024: 0.87, Freedom: 77, AdReach: 0.91, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.6},
	{Code: "UA", Name: "Ukraine", Subregion: EasternEurope, Population: 37_000_000, Pen2013: 0.41, Pen2024: 0.80, Freedom: 59, AdReach: 0.85, AdVolatility: 0.12, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "RO", Name: "Romania", Subregion: EasternEurope, Population: 19_100_000, Pen2013: 0.50, Pen2024: 0.89, Freedom: 78, AdReach: 0.90, AdVolatility: 0.07, MLabIntegrated: true, HouseholdSize: 2.8},
	{Code: "CZ", Name: "Czechia", Subregion: EasternEurope, Population: 10_500_000, Pen2013: 0.74, Pen2024: 0.93, Freedom: 79, AdReach: 0.91, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.4},
	{Code: "HU", Name: "Hungary", Subregion: EasternEurope, Population: 9_600_000, Pen2013: 0.72, Pen2024: 0.91, Freedom: 69, AdReach: 0.90, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.6},
	{Code: "BG", Name: "Bulgaria", Subregion: EasternEurope, Population: 6_400_000, Pen2013: 0.53, Pen2024: 0.88, Freedom: 71, AdReach: 0.89, AdVolatility: 0.07, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "SK", Name: "Slovakia", Subregion: EasternEurope, Population: 5_400_000, Pen2013: 0.78, Pen2024: 0.92, Freedom: 76, AdReach: 0.90, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.9},
	{Code: "BY", Name: "Belarus", Subregion: EasternEurope, Population: 9_200_000, Pen2013: 0.54, Pen2024: 0.90, Freedom: 25, AdReach: 0.45, AdVolatility: 0.14, MLabIntegrated: false, HouseholdSize: 2.5},
	{Code: "MD", Name: "Moldova, Republic of", Subregion: EasternEurope, Population: 2_500_000, Pen2013: 0.45, Pen2024: 0.80, Freedom: 65, AdReach: 0.84, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 2.9},

	// ---- Southern Europe ----
	{Code: "IT", Name: "Italy", Subregion: SouthernEurope, Population: 58_800_000, Pen2013: 0.58, Pen2024: 0.86, Freedom: 76, AdReach: 0.91, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.3},
	{Code: "ES", Name: "Spain", Subregion: SouthernEurope, Population: 48_400_000, Pen2013: 0.72, Pen2024: 0.95, Freedom: 79, AdReach: 0.92, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "GR", Name: "Greece", Subregion: SouthernEurope, Population: 10_400_000, Pen2013: 0.60, Pen2024: 0.86, Freedom: 75, AdReach: 0.90, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "PT", Name: "Portugal", Subregion: SouthernEurope, Population: 10_300_000, Pen2013: 0.62, Pen2024: 0.88, Freedom: 82, AdReach: 0.91, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "RS", Name: "Serbia", Subregion: SouthernEurope, Population: 6_600_000, Pen2013: 0.53, Pen2024: 0.85, Freedom: 57, AdReach: 0.87, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 2.9},
	{Code: "HR", Name: "Croatia", Subregion: SouthernEurope, Population: 3_900_000, Pen2013: 0.67, Pen2024: 0.84, Freedom: 73, AdReach: 0.90, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.8},
	{Code: "SI", Name: "Slovenia", Subregion: SouthernEurope, Population: 2_100_000, Pen2013: 0.73, Pen2024: 0.90, Freedom: 78, AdReach: 0.91, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "AL", Name: "Albania", Subregion: SouthernEurope, Population: 2_800_000, Pen2013: 0.57, Pen2024: 0.83, Freedom: 67, AdReach: 0.86, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 3.6},

	// ---- Northern Europe ----
	{Code: "GB", Name: "United Kingdom", Subregion: NorthernEurope, Population: 67_700_000, Pen2013: 0.90, Pen2024: 0.97, Freedom: 79, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.3},
	{Code: "SE", Name: "Sweden", Subregion: NorthernEurope, Population: 10_500_000, Pen2013: 0.95, Pen2024: 0.97, Freedom: 88, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.2},
	{Code: "NO", Name: "Norway", Subregion: NorthernEurope, Population: 5_500_000, Pen2013: 0.95, Pen2024: 0.99, Freedom: 94, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.2, VPNHub: true},
	{Code: "DK", Name: "Denmark", Subregion: NorthernEurope, Population: 5_900_000, Pen2013: 0.95, Pen2024: 0.99, Freedom: 91, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.1},
	{Code: "FI", Name: "Finland", Subregion: NorthernEurope, Population: 5_500_000, Pen2013: 0.91, Pen2024: 0.97, Freedom: 90, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.0},
	{Code: "IE", Name: "Ireland", Subregion: NorthernEurope, Population: 5_300_000, Pen2013: 0.78, Pen2024: 0.96, Freedom: 85, AdReach: 0.92, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.7},
	{Code: "LT", Name: "Lithuania", Subregion: NorthernEurope, Population: 2_800_000, Pen2013: 0.68, Pen2024: 0.88, Freedom: 80, AdReach: 0.90, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.2},
	{Code: "EE", Name: "Estonia", Subregion: NorthernEurope, Population: 1_300_000, Pen2013: 0.80, Pen2024: 0.93, Freedom: 93, AdReach: 0.92, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.1},
	{Code: "IS", Name: "Iceland", Subregion: NorthernEurope, Population: 390_000, Pen2013: 0.97, Pen2024: 1.00, Freedom: 94, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.5},

	// ---- Western Europe ----
	{Code: "DE", Name: "Germany", Subregion: WesternEurope, Population: 84_400_000, Pen2013: 0.84, Pen2024: 0.93, Freedom: 77, AdReach: 0.91, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.0},
	{Code: "FR", Name: "France", Subregion: WesternEurope, Population: 68_200_000, Pen2013: 0.82, Pen2024: 0.93, Freedom: 76, AdReach: 0.92, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.2},
	{Code: "NL", Name: "Netherlands", Subregion: WesternEurope, Population: 17_900_000, Pen2013: 0.94, Pen2024: 0.97, Freedom: 87, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.1},
	{Code: "BE", Name: "Belgium", Subregion: WesternEurope, Population: 11_800_000, Pen2013: 0.82, Pen2024: 0.95, Freedom: 83, AdReach: 0.92, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.3},
	{Code: "CH", Name: "Switzerland", Subregion: WesternEurope, Population: 8_900_000, Pen2013: 0.87, Pen2024: 0.96, Freedom: 89, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.2},
	{Code: "AT", Name: "Austria", Subregion: WesternEurope, Population: 9_100_000, Pen2013: 0.80, Pen2024: 0.95, Freedom: 81, AdReach: 0.92, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.2},
	{Code: "LU", Name: "Luxembourg", Subregion: WesternEurope, Population: 660_000, Pen2013: 0.94, Pen2024: 0.99, Freedom: 88, AdReach: 0.93, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.4},

	// ---- Australia and New Zealand ----
	{Code: "AU", Name: "Australia", Subregion: AustraliaNZ, Population: 26_600_000, Pen2013: 0.83, Pen2024: 0.94, Freedom: 76, AdReach: 0.92, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "NZ", Name: "New Zealand", Subregion: AustraliaNZ, Population: 5_200_000, Pen2013: 0.83, Pen2024: 0.96, Freedom: 87, AdReach: 0.92, AdVolatility: 0.05, MLabIntegrated: true, HouseholdSize: 2.6},

	// ---- Microstates and small islands (the paper's Appendix B tail:
	// countries where tiny populations make estimates coarse) ----
	{Code: "BS", Name: "Bahamas", Subregion: Caribbean, Population: 410_000, Pen2013: 0.72, Pen2024: 0.94, Freedom: 80, AdReach: 0.88, AdVolatility: 0.10, MLabIntegrated: true, HouseholdSize: 3.4},
	{Code: "BB", Name: "Barbados", Subregion: Caribbean, Population: 280_000, Pen2013: 0.71, Pen2024: 0.82, Freedom: 82, AdReach: 0.88, AdVolatility: 0.10, MLabIntegrated: true, HouseholdSize: 2.9},
	{Code: "GY", Name: "Guyana", Subregion: SouthAmer, Population: 810_000, Pen2013: 0.33, Pen2024: 0.85, Freedom: 73, AdReach: 0.84, AdVolatility: 0.13, MLabIntegrated: true, HouseholdSize: 3.9},
	{Code: "SR", Name: "Suriname", Subregion: SouthAmer, Population: 620_000, Pen2013: 0.37, Pen2024: 0.76, Freedom: 72, AdReach: 0.83, AdVolatility: 0.13, MLabIntegrated: true, HouseholdSize: 3.9},
	{Code: "KM", Name: "Comoros", Subregion: EasternAfrica, Population: 850_000, Pen2013: 0.065, Pen2024: 0.35, Freedom: 48, AdReach: 0.60, AdVolatility: 0.22, MLabIntegrated: false, HouseholdSize: 5.4},
	{Code: "SC", Name: "Seychelles", Subregion: EasternAfrica, Population: 100_000, Pen2013: 0.50, Pen2024: 0.89, Freedom: 66, AdReach: 0.82, AdVolatility: 0.14, MLabIntegrated: true, HouseholdSize: 3.7},
	{Code: "CV", Name: "Cabo Verde", Subregion: OtherAfrica, Population: 600_000, Pen2013: 0.37, Pen2024: 0.70, Freedom: 78, AdReach: 0.80, AdVolatility: 0.14, MLabIntegrated: true, HouseholdSize: 4.2},
	{Code: "DJ", Name: "Djibouti", Subregion: EasternAfrica, Population: 1_100_000, Pen2013: 0.10, Pen2024: 0.69, Freedom: 26, AdReach: 0.45, AdVolatility: 0.22, MLabIntegrated: false, HouseholdSize: 6.0},
	{Code: "GM", Name: "Gambia", Subregion: OtherAfrica, Population: 2_700_000, Pen2013: 0.14, Pen2024: 0.58, Freedom: 56, AdReach: 0.68, AdVolatility: 0.18, MLabIntegrated: true, HouseholdSize: 7.9},
	{Code: "GQ", Name: "Equatorial Guinea", Subregion: OtherAfrica, Population: 1_700_000, Pen2013: 0.16, Pen2024: 0.54, Freedom: 22, AdReach: 0.45, AdVolatility: 0.24, MLabIntegrated: false, HouseholdSize: 5.0},
	{Code: "TD", Name: "Chad", Subregion: OtherAfrica, Population: 18_300_000, Pen2013: 0.023, Pen2024: 0.12, Freedom: 31, AdReach: 0.45, AdVolatility: 0.26, MLabIntegrated: false, HouseholdSize: 5.8},
	{Code: "NE", Name: "Niger", Subregion: OtherAfrica, Population: 27_200_000, Pen2013: 0.016, Pen2024: 0.17, Freedom: 46, AdReach: 0.52, AdVolatility: 0.24, MLabIntegrated: false, HouseholdSize: 6.0},
	{Code: "MW", Name: "Malawi", Subregion: EasternAfrica, Population: 20_900_000, Pen2013: 0.054, Pen2024: 0.25, Freedom: 57, AdReach: 0.62, AdVolatility: 0.20, MLabIntegrated: true, HouseholdSize: 4.5},
	{Code: "BI", Name: "Burundi", Subregion: EasternAfrica, Population: 13_200_000, Pen2013: 0.013, Pen2024: 0.11, Freedom: 23, AdReach: 0.48, AdVolatility: 0.25, MLabIntegrated: false, HouseholdSize: 4.8},
	{Code: "LS", Name: "Lesotho", Subregion: SouthernAfrica, Population: 2_300_000, Pen2013: 0.11, Pen2024: 0.48, Freedom: 64, AdReach: 0.76, AdVolatility: 0.15, MLabIntegrated: true, HouseholdSize: 3.4},
	{Code: "SZ", Name: "Eswatini", Subregion: SouthernAfrica, Population: 1_200_000, Pen2013: 0.25, Pen2024: 0.59, Freedom: 28, AdReach: 0.70, AdVolatility: 0.16, MLabIntegrated: false, HouseholdSize: 4.6},
	{Code: "MV", Name: "Maldives", Subregion: SouthernAsia, Population: 520_000, Pen2013: 0.44, Pen2024: 0.84, Freedom: 58, AdReach: 0.84, AdVolatility: 0.12, MLabIntegrated: true, HouseholdSize: 5.3},
	{Code: "BT", Name: "Bhutan", Subregion: SouthernAsia, Population: 790_000, Pen2013: 0.30, Pen2024: 0.86, Freedom: 61, AdReach: 0.80, AdVolatility: 0.13, MLabIntegrated: true, HouseholdSize: 4.6},
	{Code: "TL", Name: "Timor-Leste", Subregion: SouthEastAsia, Population: 1_400_000, Pen2013: 0.011, Pen2024: 0.39, Freedom: 65, AdReach: 0.65, AdVolatility: 0.19, MLabIntegrated: false, HouseholdSize: 5.3},
	{Code: "BN", Name: "Brunei Darussalam", Subregion: SouthEastAsia, Population: 450_000, Pen2013: 0.65, Pen2024: 0.98, Freedom: 35, AdReach: 0.85, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 5.0},
	{Code: "MT", Name: "Malta", Subregion: SouthernEurope, Population: 540_000, Pen2013: 0.69, Pen2024: 0.91, Freedom: 80, AdReach: 0.91, AdVolatility: 0.06, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "CY", Name: "Cyprus", Subregion: SouthernEurope, Population: 1_260_000, Pen2013: 0.66, Pen2024: 0.91, Freedom: 77, AdReach: 0.90, AdVolatility: 0.07, MLabIntegrated: true, HouseholdSize: 2.8},
	{Code: "MC", Name: "Monaco", Subregion: WesternEurope, Population: 37_000, Pen2013: 0.91, Pen2024: 0.99, Freedom: 83, AdReach: 0.92, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 2.1},
	{Code: "LI", Name: "Liechtenstein", Subregion: WesternEurope, Population: 39_000, Pen2013: 0.94, Pen2024: 0.99, Freedom: 88, AdReach: 0.92, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 2.3},
	{Code: "AD", Name: "Andorra", Subregion: SouthernEurope, Population: 80_000, Pen2013: 0.94, Pen2024: 0.95, Freedom: 84, AdReach: 0.91, AdVolatility: 0.08, MLabIntegrated: true, HouseholdSize: 2.5},
	{Code: "SM", Name: "San Marino", Subregion: SouthernEurope, Population: 34_000, Pen2013: 0.51, Pen2024: 0.80, Freedom: 85, AdReach: 0.91, AdVolatility: 0.09, MLabIntegrated: true, HouseholdSize: 2.5},

	// ---- Oceania (Melanesia, Micronesia, Polynesia) ----
	{Code: "PG", Name: "Papua New Guinea", Subregion: OtherOceania, Population: 10_300_000, Pen2013: 0.06, Pen2024: 0.24, Freedom: 62, AdReach: 0.60, AdVolatility: 0.20, MLabIntegrated: false, HouseholdSize: 5.3},
	{Code: "FJ", Name: "Fiji", Subregion: OtherOceania, Population: 930_000, Pen2013: 0.37, Pen2024: 0.85, Freedom: 63, AdReach: 0.80, AdVolatility: 0.13, MLabIntegrated: true, HouseholdSize: 4.5},
	{Code: "VU", Name: "Vanuatu", Subregion: OtherOceania, Population: 330_000, Pen2013: 0.11, Pen2024: 0.66, Freedom: 70, AdReach: 0.05, AdVolatility: 0.32, MLabIntegrated: false, HouseholdSize: 4.8},
	{Code: "TO", Name: "Tonga", Subregion: OtherOceania, Population: 107_000, Pen2013: 0.35, Pen2024: 0.67, Freedom: 72, AdReach: 0.40, AdVolatility: 0.25, MLabIntegrated: false, HouseholdSize: 5.5},
	{Code: "WS", Name: "Samoa", Subregion: OtherOceania, Population: 220_000, Pen2013: 0.15, Pen2024: 0.64, Freedom: 74, AdReach: 0.65, AdVolatility: 0.18, MLabIntegrated: false, HouseholdSize: 6.8},
	{Code: "SB", Name: "Solomon Islands", Subregion: OtherOceania, Population: 720_000, Pen2013: 0.08, Pen2024: 0.42, Freedom: 68, AdReach: 0.55, AdVolatility: 0.22, MLabIntegrated: false, HouseholdSize: 5.5},
	{Code: "PW", Name: "Palau", Subregion: OtherOceania, Population: 18_000, Pen2013: 0.31, Pen2024: 0.86, Freedom: 80, AdReach: 0.75, AdVolatility: 0.18, MLabIntegrated: false, HouseholdSize: 4.0},
	{Code: "NR", Name: "Nauru", Subregion: OtherOceania, Population: 12_000, Pen2013: 0.43, Pen2024: 0.80, Freedom: 70, AdReach: 0.55, AdVolatility: 0.25, MLabIntegrated: false, HouseholdSize: 5.9},
	{Code: "TV", Name: "Tuvalu", Subregion: OtherOceania, Population: 11_000, Pen2013: 0.37, Pen2024: 0.70, Freedom: 75, AdReach: 0.40, AdVolatility: 0.30, MLabIntegrated: false, HouseholdSize: 6.0},
	{Code: "KI", Name: "Kiribati", Subregion: OtherOceania, Population: 130_000, Pen2013: 0.11, Pen2024: 0.54, Freedom: 72, AdReach: 0.50, AdVolatility: 0.26, MLabIntegrated: false, HouseholdSize: 6.4},
	{Code: "MH", Name: "Marshall Islands", Subregion: OtherOceania, Population: 42_000, Pen2013: 0.16, Pen2024: 0.62, Freedom: 78, AdReach: 0.60, AdVolatility: 0.24, MLabIntegrated: false, HouseholdSize: 7.2},
	{Code: "FM", Name: "Micronesia, Federated States of", Subregion: OtherOceania, Population: 115_000, Pen2013: 0.28, Pen2024: 0.41, Freedom: 76, AdReach: 0.58, AdVolatility: 0.24, MLabIntegrated: false, HouseholdSize: 6.7},
}

// byCode is built once at init from the registry.
var byCode = func() map[string]Country {
	m := make(map[string]Country, len(registry))
	for _, c := range registry {
		m[c.Code] = c
	}
	return m
}()

// All returns a copy of the full registry sorted by country code.
func All() []Country {
	out := append([]Country(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// ByCode looks up a country by its ISO code.
func ByCode(code string) (Country, bool) {
	c, ok := byCode[code]
	return c, ok
}

// Codes returns all country codes, sorted.
func Codes() []string {
	out := make([]string, 0, len(registry))
	for _, c := range registry {
		out = append(out, c.Code)
	}
	sort.Strings(out)
	return out
}

// InSubregion returns all countries in a subregion, sorted by code.
func InSubregion(s Subregion) []Country {
	var out []Country
	for _, c := range All() {
		if c.Subregion == s {
			out = append(out, c)
		}
	}
	return out
}

// InContinent returns all countries on a continent, sorted by code.
func InContinent(ct Continent) []Country {
	var out []Country
	for _, c := range All() {
		if c.Continent() == ct {
			out = append(out, c)
		}
	}
	return out
}
