package apnicweb

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/apnic"
	"repro/internal/dates"
)

// LiveSource is the seam between the server and a streaming estimator:
// Snapshot returns the newest rolling day, a revision that changes
// whenever the estimate changes (the ETag base), the assembled report,
// and ok=false while no data has arrived yet. stream.RollingEstimator
// satisfies it; the interface lives here so the serving layer does not
// depend on the pipeline package.
type LiveSource interface {
	Snapshot() (d dates.Date, rev uint64, rep *apnic.Report, ok bool)
}

// SetLive attaches a live estimator behind GET /v1/live/{country}. Safe
// to call at any time, including while serving; a nil source detaches.
func (s *Server) SetLive(src LiveSource) {
	s.liveMu.Lock()
	s.live = src
	s.liveMu.Unlock()
}

func (s *Server) liveSource() LiveSource {
	s.liveMu.RLock()
	defer s.liveMu.RUnlock()
	return s.live
}

// liveState is the mutex'd live attachment; embedded in Server.
type liveState struct {
	liveMu sync.RWMutex
	live   LiveSource
}

// LiveRow is one AS of a live per-country estimate. Ranks are global
// (across all countries), matching the batch dataset's rank column.
type LiveRow struct {
	Rank    int     `json:"rank"`
	ASN     uint32  `json:"asn"`
	ASName  string  `json:"as_name"`
	Users   float64 `json:"users"`
	PctCC   float64 `json:"pct_country"`
	Samples int64   `json:"samples"`
}

// LiveResponse is the GET /v1/live/{country} body: the streaming
// estimator's current rolling-window estimate for one country. Unlike
// the dated report routes this resource mutates as the stream drains,
// so it carries a revision-derived ETag and no-cache semantics instead
// of the immutable day contract.
type LiveResponse struct {
	Country  string    `json:"cc"`
	Date     string    `json:"date"`
	Window   int       `json:"window"`
	Revision uint64    `json:"revision"`
	Rows     []LiveRow `json:"rows"`
}

// handleLive serves the live rolling estimate for one country. 503
// until a stream is attached and has observed data; 304 on a matching
// revision ETag, so pollers pay nothing while the stream is quiet.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	src := s.liveSource()
	if src == nil {
		jsonError(w, http.StatusServiceUnavailable, "no live stream attached")
		return
	}
	d, rev, rep, ok := src.Snapshot()
	if !ok {
		jsonError(w, http.StatusServiceUnavailable, "live estimator has no data yet")
		return
	}
	cc := strings.ToUpper(r.PathValue("country"))
	// The validator names (day, revision, country): the snapshot promises
	// rep was assembled at exactly rev, so equal tags mean equal bytes.
	etag := fmt.Sprintf(`"live-%s-%d-%d"`, cc, d.DayNumber(), rev)
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", "no-cache")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	resp := LiveResponse{Country: cc, Date: d.String(), Window: rep.Window, Revision: rev}
	for _, row := range rep.Rows {
		if row.CC != cc {
			continue
		}
		resp.Rows = append(resp.Rows, LiveRow{
			Rank:    row.Rank,
			ASN:     row.ASN,
			ASName:  row.ASName,
			Users:   row.Users,
			PctCC:   row.PctCountry,
			Samples: row.Samples,
		})
	}
	if r.Method == http.MethodHead {
		return
	}
	json.NewEncoder(w).Encode(resp)
}
