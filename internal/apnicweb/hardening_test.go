package apnicweb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/obsv"
)

func newLogger(w io.Writer) *log.Logger { return log.New(w, "", 0) }

// TestSeriesFromAfterTo is the regression for the silently-empty-series
// bug: from > to used to return 200 with zero points, indistinguishable
// from a missing AS. It must be a 400.
func TestSeriesFromAfterTo(t *testing.T) {
	ts, _ := testServer(t)
	cases := []string{
		"/v1/series/AS1?cc=FR&from=2024-04-12&to=2024-04-08", // inverted
		"/v1/series/AS1?cc=FR&from=2030-01-01&to=2030-01-05", // entirely after the range
		"/v1/series/AS1?cc=FR&from=2001-01-01&to=2001-01-05", // entirely before the range
	}
	for _, path := range cases {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d (%q), want 400", path, resp.StatusCode, body)
		}
	}
}

// TestRenderErrorPropagates is the regression for the swallowed WriteCSV
// error: the 500 body must carry the underlying message, the error must
// be cached (same message on repeat, underlying render ran once), and the
// render-error counter must count both requests.
func TestRenderErrorPropagates(t *testing.T) {
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	var renders atomic.Int64
	srv.writeCSV = func(rep *apnic.Report, w io.Writer) error {
		renders.Add(1)
		return errors.New("disk on fire")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var bodies []string
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Get(ts.URL + "/v1/reports/2024-06-01.csv")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500", i, resp.StatusCode)
		}
		bodies = append(bodies, string(body))
	}
	if !strings.Contains(bodies[0], "disk on fire") {
		t.Errorf("500 body %q does not carry the underlying error", bodies[0])
	}
	if bodies[0] != bodies[1] {
		t.Errorf("cached error day changed message between requests:\n%q\n%q", bodies[0], bodies[1])
	}
	if n := renders.Load(); n != 1 {
		t.Errorf("render ran %d times; error days must cache like success days", n)
	}
	if n := srv.Metrics().Counter("apnicweb_render_errors_total").Value(); n != 2 {
		t.Errorf("render-error counter = %d, want 2 (one per failed request)", n)
	}
}

// drainTransport wraps a RoundTripper and records, per response, how
// many body bytes the caller read before Close.
type drainTransport struct {
	base   http.RoundTripper
	mu     sync.Mutex
	closed []*drainBody
}

type drainBody struct {
	io.ReadCloser
	read   int64
	sawEOF bool
	closed bool
}

func (b *drainBody) Read(p []byte) (int, error) {
	n, err := b.ReadCloser.Read(p)
	b.read += int64(n)
	if err == io.EOF {
		b.sawEOF = true
	}
	return n, err
}

func (b *drainBody) Close() error {
	b.closed = true
	return b.ReadCloser.Close()
}

func (d *drainTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.base.RoundTrip(req)
	if resp != nil {
		body := &drainBody{ReadCloser: resp.Body}
		resp.Body = body
		d.mu.Lock()
		d.closed = append(d.closed, body)
		d.mu.Unlock()
	}
	return resp, err
}

// TestClientDrainsErrorBody is the regression for the keep-alive leak:
// on a non-200 the client used to Close the body with zero bytes read,
// so the connection could never be reused. It must now read the full
// (bounded) error body before closing, and surface a snippet of it in
// the error.
func TestClientDrainsErrorBody(t *testing.T) {
	ts, _ := testServer(t)
	dt := &drainTransport{base: ts.Client().Transport}
	c := &Client{BaseURL: ts.URL, HTTPClient: &http.Client{Transport: dt}}

	_, err := c.Report(context.Background(), dates.New(2030, 1, 1)) // out of range: 404
	if err == nil {
		t.Fatal("out-of-range fetch should fail")
	}
	if !strings.Contains(err.Error(), "date out of served range") {
		t.Errorf("error %q does not surface the server's body", err)
	}
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if len(dt.closed) != 1 {
		t.Fatalf("%d responses recorded, want 1", len(dt.closed))
	}
	b := dt.closed[0]
	if !b.closed {
		t.Error("body never closed")
	}
	if b.read < int64(len("date out of served range")) {
		t.Errorf("only %d body bytes read before close; error body was left undrained", b.read)
	}
}

// TestClientCapsErrorBody: a hostile/huge error body must not be read
// past the drain bound.
func TestClientCapsErrorBody(t *testing.T) {
	huge := strings.Repeat("x", 4<<20)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound) // 404: not retried
		io.WriteString(w, huge)
	}))
	defer backend.Close()

	dt := &drainTransport{base: backend.Client().Transport}
	c := &Client{BaseURL: backend.URL, HTTPClient: &http.Client{Transport: dt}}
	_, err := c.Report(context.Background(), dates.New(2024, 1, 1))
	if err == nil {
		t.Fatal("want error")
	}
	if len(err.Error()) > errBodyLimit+256 {
		t.Errorf("error message is %d bytes; snippet cap failed", len(err.Error()))
	}
	dt.mu.Lock()
	defer dt.mu.Unlock()
	if got, max := dt.closed[0].read, int64(errBodyLimit+errDrainLimit+1); got > max {
		t.Errorf("read %d bytes of a hostile error body, cap is %d", got, max)
	}
}

// TestClientDrainsDatesBody: the success path of Dates must also leave
// no unread bytes (the JSON encoder's trailing newline) behind.
func TestClientDrainsDatesBody(t *testing.T) {
	ts, _ := testServer(t)
	dt := &drainTransport{base: ts.Client().Transport}
	c := &Client{BaseURL: ts.URL, HTTPClient: &http.Client{Transport: dt}}
	if _, _, err := c.Dates(context.Background()); err != nil {
		t.Fatal(err)
	}
	dt.mu.Lock()
	defer dt.mu.Unlock()
	b := dt.closed[0]
	if !b.closed {
		t.Error("body never closed")
	}
	if !b.sawEOF {
		t.Error("Dates closed the body without reading to EOF; connection cannot be reused")
	}
}

// TestClientRetriesFlakyBackend puts a fault-injecting proxy in front of
// a real server: the first two attempts get 503, the third succeeds. The
// client must recover transparently and surface attempt counts in its
// metrics and a retry line in its logs.
func TestClientRetriesFlakyBackend(t *testing.T) {
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	inner := srv.Handler()
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "backend restarting", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	reg := obsv.NewRegistry()
	var logBuf strings.Builder
	c := &Client{
		BaseURL:    flaky.URL,
		HTTPClient: flaky.Client(),
		Retry:      obsv.RetryPolicy{MaxAttempts: 4, BaseDelay: 1}, // 1ns: fast test
		Metrics:    reg,
		Log:        newLogger(&logBuf),
	}
	rep, err := c.Report(context.Background(), dates.New(2024, 4, 21))
	if err != nil {
		t.Fatalf("client did not recover from flaky backend: %v", err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("empty report after recovery")
	}
	if got := reg.Counter("httpclient_attempts_total").Value(); got != 3 {
		t.Errorf("attempts metric = %d, want 3", got)
	}
	if got := reg.Counter(`httpclient_retries_total{reason="status"}`).Value(); got != 2 {
		t.Errorf("retries metric = %d, want 2", got)
	}
	if !strings.Contains(logBuf.String(), "httpclient retry attempt=2/4") {
		t.Errorf("no retry log line:\n%s", logBuf.String())
	}
}

// TestSeriesColdDayHammer fires many concurrent series requests over
// overlapping cold days through the real handler and verifies each
// report was generated exactly once per distinct day.
func TestSeriesColdDayHammer(t *testing.T) {
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep := testGen.Generate(dates.New(2024, 7, 1))
	row := rep.Rows[0]
	const days = 4 // 2024-07-01 .. 2024-07-04
	url := fmt.Sprintf("%s/v1/series/AS%d?cc=%s&from=2024-07-01&to=2024-07-0%d", ts.URL, row.ASN, row.CC, days)

	const goroutines = 24
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, err := ts.Client().Get(url)
				if err != nil {
					errs[g] = err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[g] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if n := srv.apnicSrc.CacheStats().Gens; n != days {
		t.Errorf("generator ran %d times for %d distinct days under series load", n, days)
	}
}

// TestMetricsEndpoint drives a few requests and checks /metrics exposes
// per-route counters, latency histograms, and the cache gauges, in both
// formats.
func TestMetricsEndpoint(t *testing.T) {
	ts, c := testServer(t)
	if _, err := c.Report(context.Background(), dates.New(2024, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(context.Background(), dates.New(2024, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Dates(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`http_requests_total{route="/v1/reports/:date",class="2xx"} 2`,
		`http_requests_total{route="/v1/dates",class="2xx"} 1`,
		`http_request_seconds_bucket{route="/v1/reports/:date",le="+Inf"} 2`,
		`source_generations_total{dataset="apnic"} 1`,
		`source_cache_days{dataset="apnic"} 1`,
		"apnicweb_render_errors_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("json format Content-Type = %q", ct)
	}
	if !strings.Contains(string(jsonBody), `"source_generations_total{dataset=\"apnic\"}": 1`) {
		t.Errorf("json metrics missing generation counter:\n%s", jsonBody)
	}
}
