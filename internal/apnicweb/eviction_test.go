package apnicweb

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dates"
)

// TestBoundedCacheEviction serves more days than the cache capacity and
// checks the caches stay bounded, evictions are counted on /metrics, and
// an evicted day regenerates byte-identically.
func TestBoundedCacheEviction(t *testing.T) {
	const capacity = 4
	srv := NewServerCached(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31), capacity)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(d dates.Date) []byte {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/v1/reports/" + d.String() + ".csv")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", d, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	first := get(dates.New(2024, 3, 1))
	for i := 1; i < capacity*3; i++ { // push the first day out
		get(dates.New(2024, 3, 1).AddDays(i))
	}
	if n := srv.apnicSrc.CacheStats().Len; n > capacity {
		t.Fatalf("report cache holds %d days, capacity %d", n, capacity)
	}
	if n := srv.csv.Len(); n > capacity {
		t.Fatalf("csv cache holds %d days, capacity %d", n, capacity)
	}
	if ev := srv.apnicSrc.CacheStats().Evictions; ev == 0 {
		t.Fatal("no report evictions after serving 3x capacity")
	}

	// Determinism across eviction: the refilled day must be identical.
	if again := get(dates.New(2024, 3, 1)); !bytes.Equal(again, first) {
		t.Fatal("evicted day regenerated with different bytes")
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, name := range []string{
		`source_cache_evictions{dataset="apnic"}`,
		"apnicweb_csv_cache_evictions",
		"apnicweb_index_cache_evictions",
		"apnicweb_cache_capacity_days",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("apnicweb_cache_capacity_days %d", capacity)) {
		t.Errorf("capacity gauge does not report %d:\n%s", capacity, text)
	}
}

// TestBoundedCacheHammer pounds a small-capacity server from many
// goroutines over a key space larger than the cache — the -race workout
// for concurrent serving with in-flight eviction on the full HTTP path.
func TestBoundedCacheHammer(t *testing.T) {
	const capacity, days, goroutines, reqs = 3, 12, 8, 30
	srv := NewServerCached(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31), capacity)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Reference bodies, fetched serially first.
	want := make(map[dates.Date][]byte, days)
	for i := 0; i < days; i++ {
		d := dates.New(2024, 6, 1).AddDays(i)
		resp, err := ts.Client().Get(ts.URL + "/v1/reports/" + d.String() + ".csv")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		want[d] = body
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				d := dates.New(2024, 6, 1).AddDays((g*5 + i) % days)
				resp, err := ts.Client().Get(ts.URL + "/v1/reports/" + d.String() + ".csv")
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(body, want[d]) {
					t.Errorf("day %s served different bytes under pressure", d)
					return
				}
			}
		}()
	}
	wg.Wait()

	if n := srv.apnicSrc.CacheStats().Len; n > capacity {
		t.Fatalf("report cache holds %d days, capacity %d", n, capacity)
	}
	if ev := srv.apnicSrc.CacheStats().Evictions; ev == 0 {
		t.Fatal("hammer produced no evictions")
	}
}
