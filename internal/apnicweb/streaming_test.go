package apnicweb

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/dates"
	"repro/internal/source"
)

// countingWriter wraps a ResponseWriter and records how the handler
// writes the body: call count and whether anything arrived after an
// explicit error status.
type countingWriter struct {
	http.ResponseWriter
	writes         int
	bytes          int
	status         int
	bodyAfterError bool
}

func (c *countingWriter) WriteHeader(code int) {
	c.status = code
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.status >= 400 && c.writes > 0 {
		c.bodyAfterError = true
	}
	c.writes++
	c.bytes += len(p)
	return c.ResponseWriter.Write(p)
}

// TestStreamingCSVChunks proves the identity CSV path streams instead of
// buffering: the handler performs many Writes (the csv encoder flushes
// every ~4KB), the response goes out chunked, and Content-Length is
// omitted — not set to a guess.
func TestStreamingCSVChunks(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 7, 1)
	path := "/v1/apnic/reports/" + d.String() + ".csv"

	// Below the HTTP layer: count handler Writes.
	rec := httptest.NewRecorder()
	cw := &countingWriter{ResponseWriter: rec}
	srv.Handler().ServeHTTP(cw, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if cw.writes < 2 {
		t.Errorf("handler wrote the %d-byte body in %d Write(s); streaming demands incremental flushes", cw.bytes, cw.writes)
	}
	if cw.bytes <= 4096 {
		t.Fatalf("apnic day is only %d bytes; fixture too small to prove streaming", cw.bytes)
	}

	// On the wire: no Content-Length, chunked framing.
	resp := rawGet(t, ts, path, nil)
	body := readAll(t, resp)
	if resp.ContentLength != -1 {
		t.Errorf("ContentLength = %d, want -1 (unknown) on a streamed response", resp.ContentLength)
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		t.Errorf("streamed response declares Content-Length %q", cl)
	}
	if len(resp.TransferEncoding) == 0 || resp.TransferEncoding[0] != "chunked" {
		t.Errorf("TransferEncoding = %v, want chunked", resp.TransferEncoding)
	}
	if !bytes.Equal(body, rec.Body.Bytes()) {
		t.Error("wire body differs from the direct handler render")
	}
}

// TestStreamingColdDayHammer fires concurrent identity requests at one
// cache-cold day: the generator must fill exactly once (singleflight
// below the streaming layer) and every client must see identical bytes.
func TestStreamingColdDayHammer(t *testing.T) {
	srv, ts, _ := multiServer(t)
	const workers = 24
	d := dates.New(2024, 9, 13) // untouched by other requests in this test
	path := "/v1/broadband/reports/" + d.String() + ".csv"

	bodies := make([][]byte, workers)
	errs := make([]error, workers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer done.Done()
			start.Wait() // barrier: maximize cold-day contention
			resp, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
			resp.Body.Close()
			if errs[i] == nil && resp.StatusCode != http.StatusOK {
				errs[i] = errors.New(resp.Status)
			}
		}()
	}
	start.Done()
	done.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := 1; i < workers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("worker %d streamed different bytes", i)
		}
	}
	st, ok := srv.Registry().FrameCacheStats("broadband")
	if !ok {
		t.Fatal("no cache stats for broadband")
	}
	if st.Gens != 1 {
		t.Errorf("generator filled %d times for one day under contention; singleflight demands exactly one", st.Gens)
	}
}

// TestClientDisconnectDoesNotPoison: a client that bails mid-download —
// on both the streamed identity path and the cached gzip path — must not
// leave a truncated artifact behind for the next client.
func TestClientDisconnectDoesNotPoison(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 8, 8)
	path := "/v1/apnic/reports/" + d.String() + ".csv"

	abandon := func(hdr map[string]string) {
		t.Helper()
		resp := rawGet(t, ts, path, hdr)
		buf := make([]byte, 512)
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() // disconnect with most of the body unread
	}
	abandon(nil)
	abandon(map[string]string{"Accept-Encoding": "gzip"})

	// A fresh full download must parse back to the registry's frame.
	want, err := srv.Registry().Frame("apnic", d)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, rawGet(t, ts, path, nil))
	f, err := source.ReadCSV(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post-disconnect identity body does not parse: %v", err)
	}
	if !f.Equal(want) {
		t.Fatal("post-disconnect identity body differs from the generated frame")
	}

	gzResp := rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
	zr, err := gzip.NewReader(gzResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	gzResp.Body.Close()
	if err != nil {
		t.Fatalf("post-disconnect gzip body truncated: %v", err)
	}
	if !bytes.Equal(decoded, body) {
		t.Fatal("post-disconnect gzip body differs from identity bytes")
	}
	// Note: the identity disconnect may or may not tick the stream-abort
	// counter, depending on whether the server's writes were still in
	// flight when the close landed. Both are correct; what this test pins
	// is that neither outcome leaves a truncated artifact behind.
}

// TestStreamErrorAbortsConnection: when the render fails mid-stream the
// server must NOT finish the response cleanly — a truncated chunked body
// that still gets its terminating chunk looks complete to every client.
// The connection is dropped instead, the abort counter moves, and the
// same day serves fine afterwards (nothing poisoned).
func TestStreamErrorAbortsConnection(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 10, 2)
	path := "/v1/cdn/reports/" + d.String() + ".csv"

	realWrite := srv.writeFrameCSV
	srv.writeFrameCSV = func(f *source.Frame, w io.Writer) error {
		// Write past net/http's 4KB response buffer so the 200 and a
		// partial body are committed to the wire before the failure.
		row := []byte("FR,example,123456\n")
		for written := 0; written < 8192; written += len(row) {
			if _, err := w.Write(row); err != nil {
				return err
			}
		}
		return errors.New("render failed mid-flight")
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "identity")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d; the failure hits after headers are committed", resp.StatusCode)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatal("client read completed cleanly on a truncated stream; the connection must abort")
	}
	if n := srv.metrics.Counter("apnicweb_stream_aborts_total").Value(); n != 1 {
		t.Errorf("stream abort counter = %d, want 1", n)
	}

	// Restore the seam: the same day must serve completely — identity
	// bodies are never byte-cached, so the abort left nothing behind.
	srv.writeFrameCSV = realWrite
	resp = rawGet(t, ts, path, nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-abort status %d", resp.StatusCode)
	}
	want, err := srv.Registry().Frame("cdn", d)
	if err != nil {
		t.Fatal(err)
	}
	f, err := source.ReadCSV(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(want) {
		t.Fatal("post-abort render differs from the generated frame")
	}
}

// TestGzipRenderErrorCleanrooms500: a render failure caught before any
// byte is on the wire (the gzip path materializes first) must produce a
// clean JSON 500 carrying none of the success-only headers — an ETag or
// public Cache-Control on a 500 could get cached by an intermediary.
func TestGzipRenderErrorCleanrooms500(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 10, 3)
	path := "/v1/mlab/reports/" + d.String() + ".csv"

	srv.writeFrameCSV = func(*source.Frame, io.Writer) error {
		return errors.New("render failed before any byte")
	}
	resp := rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	for _, hdr := range []string{"ETag", "Cache-Control", "Content-Encoding"} {
		if v := resp.Header.Get(hdr); v != "" {
			t.Errorf("500 response carries %s: %q", hdr, v)
		}
	}
	if !bytes.Contains(body, []byte("report generation failed")) {
		t.Errorf("500 body %q is not the JSON error", body)
	}
	if n := srv.metrics.Counter("apnicweb_stream_aborts_total").Value(); n != 0 {
		t.Errorf("pre-wire failure counted as a stream abort (%d)", n)
	}
}

// TestNotModifiedWritesNoBody drives a 304 below the HTTP layer and
// proves the handler never calls Write after WriteHeader(304) — the
// error-path audit for body-after-header bugs that net/http would only
// log, not fail.
func TestNotModifiedWritesNoBody(t *testing.T) {
	srv, _, _ := multiServer(t)
	d := dates.New(2024, 10, 4)
	path := "/v1/ixp/reports/" + d.String() + ".csv"

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("priming status %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")

	rec = httptest.NewRecorder()
	cw := &countingWriter{ResponseWriter: rec}
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("If-None-Match", etag)
	srv.Handler().ServeHTTP(cw, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("status %d, want 304", rec.Code)
	}
	if cw.writes != 0 {
		t.Errorf("handler wrote %d body chunk(s) on a 304", cw.writes)
	}
}
