package apnicweb

import (
	"bytes"
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dates"
	"repro/internal/source/binfmt"
	"repro/internal/source/framez"
)

// TestAcceptsFrameBinz is the negotiation table for the compressed
// binary representation: same opt-in-only rules as the raw binary
// plane, and naming both frame types selects binz.
func TestAcceptsFrameBinz(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{``, false},
		{`application/x-frame-binz`, true},
		{`APPLICATION/X-FRAME-BINZ`, true},
		{`application/json, application/x-frame-binz`, true},
		{`application/x-frame-bin, application/x-frame-binz`, true},
		{`application/x-frame-binz;q=0.5`, true},
		{`application/x-frame-binz;q=0`, false}, // explicit refusal
		{`application/x-frame-bin`, false},      // the raw type is not the compressed one
		{`application/json`, false},
		{`*/*`, false},           // wildcard must not select binary
		{`application/*`, false}, // ditto
	}
	for _, tc := range cases {
		if got := acceptsFrameBinz(tc.header); got != tc.want {
			t.Errorf("acceptsFrameBinz(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestVaryAcceptOnReportRoutes is the regression suite for the Vary
// header: the generic report routes negotiate their representation from
// Accept (acceptsFrameBin/acceptsFrameBinz on the bare-date path), so a
// shared cache keying only on Accept-Encoding could serve a binary body
// to a browser that asked for JSON. Every generic report response —
// including 304s, which caches also store — must list Accept in Vary.
// The legacy route's representation is fixed by its path, so it keeps
// the original Accept-Encoding-only header (its bytes are pinned).
func TestVaryAcceptOnReportRoutes(t *testing.T) {
	_, ts, _ := multiServer(t)
	d := dates.New(2024, 5, 5)
	bare := "/v1/cdn/reports/" + d.String()
	cases := []struct {
		name string
		path string
		hdr  map[string]string
		want string
	}{
		{"frame-csv", bare + ".csv", nil, "Accept, Accept-Encoding"},
		{"frame-json", bare, nil, "Accept, Accept-Encoding"},
		{"frame-bin", bare + binfmt.Suffix, nil, "Accept, Accept-Encoding"},
		{"negotiated-bin", bare, map[string]string{"Accept": binfmt.ContentType}, "Accept, Accept-Encoding"},
		{"frame-binz", bare + framez.Suffix, nil, "Accept, Accept-Encoding"},
		{"negotiated-binz", bare, map[string]string{"Accept": framez.ContentType}, "Accept, Accept-Encoding"},
		{"legacy-csv", "/v1/reports/" + d.String() + ".csv", nil, "Accept-Encoding"},
	}
	for _, tc := range cases {
		resp := rawGet(t, ts, tc.path, tc.hdr)
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", tc.name, resp.StatusCode)
			continue
		}
		if vary := resp.Header.Get("Vary"); vary != tc.want {
			t.Errorf("%s: Vary = %q, want %q", tc.name, vary, tc.want)
		}
		// The 304 must carry the same Vary: revalidation responses update
		// stored cache metadata.
		hdr := map[string]string{"If-None-Match": resp.Header.Get("ETag")}
		for k, v := range tc.hdr {
			hdr[k] = v
		}
		resp = rawGet(t, ts, tc.path, hdr)
		readAll(t, resp)
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("%s: revalidation = %d, want 304", tc.name, resp.StatusCode)
			continue
		}
		if vary := resp.Header.Get("Vary"); vary != tc.want {
			t.Errorf("%s: 304 Vary = %q, want %q", tc.name, vary, tc.want)
		}
	}
}

// TestBinzRouteDecodesToSameFrame: for every dataset, the .binz suffix
// and the Accept-negotiated bare route serve identical bytes that
// decode to the exact frame the other representations render, with the
// binz content type, an exact Content-Length, and a body strictly
// smaller than the raw binary one.
func TestBinzRouteDecodesToSameFrame(t *testing.T) {
	srv, ts, c := multiServer(t)
	d := dates.New(2024, 4, 21)
	for _, name := range allDatasets {
		path := "/v1/" + name + "/reports/" + d.String() + framez.Suffix
		resp := rawGet(t, ts, path, nil)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != framez.ContentType {
			t.Errorf("%s: Content-Type %q", name, ct)
		}
		if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
			t.Errorf("%s: Content-Length %q for a %d-byte body", name, cl, len(body))
		}
		f, err := framez.Decode(body)
		if err != nil {
			t.Fatalf("%s: decoding binz body: %v", name, err)
		}
		want, err := srv.Registry().Frame(name, d)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(want) {
			t.Errorf("%s: binz route decodes to a different frame", name)
		}
		raw := readAll(t, rawGet(t, ts, "/v1/"+name+"/reports/"+d.String()+binfmt.Suffix, nil))
		if len(body) >= len(raw) {
			t.Errorf("%s: binz body (%d bytes) not smaller than bin (%d)", name, len(body), len(raw))
		}

		// Accept negotiation on the bare route serves the same bytes, and
		// naming both frame types still selects the compressed one.
		for _, accept := range []string{
			framez.ContentType,
			binfmt.ContentType + ", " + framez.ContentType,
		} {
			resp = rawGet(t, ts, "/v1/"+name+"/reports/"+d.String(), map[string]string{"Accept": accept})
			negotiated := readAll(t, resp)
			if resp.Header.Get("Content-Type") != framez.ContentType || !bytes.Equal(negotiated, body) {
				t.Errorf("%s: Accept %q body differs from the .binz route", name, accept)
			}
		}

		// The client helper agrees.
		g, err := c.FrameBinz(context.Background(), name, d)
		if err != nil {
			t.Fatalf("%s: client FrameBinz: %v", name, err)
		}
		if !g.Equal(want) {
			t.Errorf("%s: client-decoded frame differs", name)
		}
	}
}

// TestBinzRouteConditional: the compressed binary representation has
// its own "-binz" variant ETag that never collides with the validators
// of any other representation of the same dataset-day — csv, json, bin,
// or their gzip variants — and revalidates to an empty 304.
func TestBinzRouteConditional(t *testing.T) {
	_, ts, _ := multiServer(t)
	d := dates.New(2024, 5, 5)
	binzPath := "/v1/cdn/reports/" + d.String() + framez.Suffix

	resp := rawGet(t, ts, binzPath, nil)
	readAll(t, resp)
	etag := resp.Header.Get("ETag")
	if !strings.HasSuffix(etag, `-binz"`) {
		t.Fatalf("binz ETag %q does not carry the -binz variant suffix", etag)
	}
	others := map[string]map[string]string{
		"/v1/cdn/reports/" + d.String() + ".csv":                nil,
		"/v1/cdn/reports/" + d.String():                         nil,
		"/v1/cdn/reports/" + d.String() + binfmt.Suffix:         nil,
		"/v1/cdn/reports/" + d.String() + ".csv?gz":             {"Accept-Encoding": "gzip"},
		"/v1/cdn/reports/" + d.String() + binfmt.Suffix + "?gz": {"Accept-Encoding": "gzip"},
	}
	for otherPath, hdr := range others {
		other := rawGet(t, ts, strings.TrimSuffix(otherPath, "?gz"), hdr)
		readAll(t, other)
		if got := other.Header.Get("ETag"); got == etag || got == "" {
			t.Errorf("%s: ETag %q must be a distinct validator from the binz tag %q", otherPath, got, etag)
		}
	}

	resp = rawGet(t, ts, binzPath, map[string]string{"If-None-Match": etag})
	if body := readAll(t, resp); resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Errorf("binz revalidation = %d with %d body bytes, want empty 304", resp.StatusCode, len(body))
	}
}

// TestBinzRouteSkipsGzip: binz bodies are already entropy-coded, so the
// server must not re-gzip them (double compression wastes CPU and
// inflates the bytes) and must bypass the pre-compressed LRU entirely —
// a gzip-accepting client gets the identity artifact with its exact
// length declared.
func TestBinzRouteSkipsGzip(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 5, 6)
	path := "/v1/apnic/reports/" + d.String() + framez.Suffix

	identity := readAll(t, rawGet(t, ts, path, nil))
	resp := rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
	body := readAll(t, resp)
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("binz response carries Content-Encoding %q; must be identity-only", ce)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Errorf("Content-Length %q for a %d-byte body", cl, len(body))
	}
	if !bytes.Equal(body, identity) {
		t.Fatal("gzip-accepting binz request served different bytes than identity")
	}
	if _, err := framez.Decode(body); err != nil {
		t.Fatalf("served binz body does not decode: %v", err)
	}
	// A HEAD with gzip acceptable must agree: identity, exact length.
	req, err := http.NewRequest(http.MethodHead, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	hresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if ce := hresp.Header.Get("Content-Encoding"); ce != "" {
		t.Errorf("HEAD binz Content-Encoding = %q", ce)
	}
	if cl := hresp.Header.Get("Content-Length"); cl != strconv.Itoa(len(identity)) {
		t.Errorf("HEAD binz Content-Length = %q, want %d", cl, len(identity))
	}
	// The gzip LRU never saw the binz representation.
	if n := srv.gzips.Len(); n != 0 {
		t.Errorf("gzip cache holds %d entries after binz-only traffic, want 0", n)
	}
}
