package apnicweb

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dates"
	"repro/internal/source/binfmt"
)

// TestAcceptsFrameBin is the table suite for binary content negotiation:
// only a request that names the media type opts in.
func TestAcceptsFrameBin(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{``, false},
		{`application/x-frame-bin`, true},
		{`APPLICATION/X-FRAME-BIN`, true},
		{`application/json, application/x-frame-bin`, true},
		{`application/x-frame-bin;q=0.5`, true},
		{`application/x-frame-bin;q=0`, false}, // explicit refusal
		{`application/json`, false},
		{`*/*`, false},           // wildcard must not select binary
		{`application/*`, false}, // ditto
		{`text/html, */*;q=0.8`, false},
	}
	for _, tc := range cases {
		if got := acceptsFrameBin(tc.header); got != tc.want {
			t.Errorf("acceptsFrameBin(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestBinaryRouteDecodesToSameFrame: for every dataset, the .bin suffix
// and the Accept-negotiated bare route serve identical bytes that decode
// to the exact frame the CSV route represents, with the binary content
// type and an exact Content-Length.
func TestBinaryRouteDecodesToSameFrame(t *testing.T) {
	srv, ts, c := multiServer(t)
	d := dates.New(2024, 4, 21)
	for _, name := range allDatasets {
		path := "/v1/" + name + "/reports/" + d.String() + binfmt.Suffix
		resp := rawGet(t, ts, path, nil)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != binfmt.ContentType {
			t.Errorf("%s: Content-Type %q", name, ct)
		}
		if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
			t.Errorf("%s: Content-Length %q for a %d-byte body", name, cl, len(body))
		}
		f, err := binfmt.Decode(body)
		if err != nil {
			t.Fatalf("%s: decoding binary body: %v", name, err)
		}
		want, err := srv.Registry().Frame(name, d)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(want) {
			t.Errorf("%s: binary route decodes to a different frame", name)
		}

		// Accept negotiation on the bare route serves the same bytes.
		bare := "/v1/" + name + "/reports/" + d.String()
		resp = rawGet(t, ts, bare, map[string]string{"Accept": binfmt.ContentType})
		negotiated := readAll(t, resp)
		if resp.Header.Get("Content-Type") != binfmt.ContentType || !bytes.Equal(negotiated, body) {
			t.Errorf("%s: Accept-negotiated body differs from the .bin route", name)
		}

		// The client helper agrees with both.
		g, err := c.FrameBin(context.Background(), name, d)
		if err != nil {
			t.Fatalf("%s: client FrameBin: %v", name, err)
		}
		if !g.Equal(want) {
			t.Errorf("%s: client-decoded frame differs", name)
		}
	}
}

// TestBinaryRouteConditional: the binary representation has its own
// "-bin" variant ETag, revalidates to 304, and does not share validators
// with CSV/JSON.
func TestBinaryRouteConditional(t *testing.T) {
	_, ts, _ := multiServer(t)
	d := dates.New(2024, 5, 5)
	binPath := "/v1/cdn/reports/" + d.String() + binfmt.Suffix

	resp := rawGet(t, ts, binPath, nil)
	readAll(t, resp)
	etag := resp.Header.Get("ETag")
	if !strings.HasSuffix(etag, `-bin"`) {
		t.Fatalf("binary ETag %q does not carry the -bin variant suffix", etag)
	}
	for _, otherPath := range []string{
		"/v1/cdn/reports/" + d.String() + ".csv",
		"/v1/cdn/reports/" + d.String(),
	} {
		other := rawGet(t, ts, otherPath, nil)
		readAll(t, other)
		if got := other.Header.Get("ETag"); got == etag {
			t.Errorf("%s shares the binary ETag %q", otherPath, got)
		}
	}

	resp = rawGet(t, ts, binPath, map[string]string{"If-None-Match": etag})
	if body := readAll(t, resp); resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Errorf("binary revalidation = %d with %d body bytes, want empty 304", resp.StatusCode, len(body))
	}
}

// TestBinaryRouteGzip: a gzip-coded binary response decompresses to the
// identity bytes and still decodes. (Binary bodies compress well — the
// string arenas are text — so the hot-day cache applies to them too.)
func TestBinaryRouteGzip(t *testing.T) {
	_, ts, _ := multiServer(t)
	d := dates.New(2024, 5, 6)
	path := "/v1/apnic/reports/" + d.String() + binfmt.Suffix

	identity := readAll(t, rawGet(t, ts, path, nil))
	resp := rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
	raw := readAll(t, resp)
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q", resp.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, identity) {
		t.Fatal("gzip binary body does not decompress to the identity bytes")
	}
	if _, err := binfmt.Decode(plain); err != nil {
		t.Fatalf("decompressed binary body does not decode: %v", err)
	}
}
