package apnicweb

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

// freshGzip compresses p with a brand-new BestSpeed writer: the
// reference output the pooled path must reproduce exactly.
func freshGzip(t *testing.T, p []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGzipWriterPoolByteIdentical pins the safety property the pooled
// fill path in gzipBody relies on: a gzip.Writer reused via Reset emits
// exactly the bytes a fresh writer would, for every input — including
// empty bodies and inputs compressed right after a very different one
// (stale hash-chain state is what Reset must clear). The same writer
// instance is driven through increasingly dissimilar payloads and each
// output is compared byte-for-byte against a fresh-writer reference.
func TestGzipWriterPoolByteIdentical(t *testing.T) {
	bodies := [][]byte{
		[]byte(strings.Repeat("FR,AS5410,Bouygues Telecom,1234.5\n", 500)),
		nil, // empty body
		[]byte("short"),
		bytes.Repeat([]byte{0x00, 0xFF, 0x7A, 0x03}, 4096), // binary-ish
		[]byte(strings.Repeat("zzzzzzzz", 2000)),
	}

	// One writer reused across every body, out of the server's own pool.
	zw := gzipWriters.Get().(*gzip.Writer)
	defer gzipWriters.Put(zw)
	for round := 0; round < 2; round++ { // second round: reuse after reuse
		for i, body := range bodies {
			want := freshGzip(t, body)
			var buf bytes.Buffer
			zw.Reset(&buf)
			if _, err := zw.Write(body); err != nil {
				t.Fatalf("round %d body %d: %v", round, i, err)
			}
			if err := zw.Close(); err != nil {
				t.Fatalf("round %d body %d: %v", round, i, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("round %d body %d: pooled writer output differs from fresh writer (%d vs %d bytes)",
					round, i, buf.Len(), len(want))
			}
			// And the pooled bytes still decompress to the input.
			zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, body) {
				t.Fatalf("round %d body %d: decompressed bytes differ", round, i)
			}
		}
	}
}
