package apnicweb

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dates"
	"repro/internal/source"
)

// TestETagMatch is the table suite for If-None-Match evaluation: weak
// comparison, multiple tags, wildcard, and garbage.
func TestETagMatch(t *testing.T) {
	const etag = `"abc123-csv"`
	cases := []struct {
		header string
		want   bool
	}{
		{``, false},
		{`"abc123-csv"`, true},                     // exact
		{`W/"abc123-csv"`, true},                   // weak tag, weak comparison matches
		{`"abc123-json"`, false},                   // other representation
		{`"zzz", "abc123-csv"`, true},              // multiple tags, one matches
		{`"zzz", "yyy"`, false},                    // multiple tags, none match
		{` "zzz" ,  W/"abc123-csv" , "yyy"`, true}, // whitespace + weak in a list
		{`*`, true},                                // wildcard matches any representation
		{`abc123-csv`, false},                      // unquoted is not an entity tag
		{`"abc123-csv`, false},                     // malformed quoting
		{`"ABC123-CSV"`, false},                    // tags are case-sensitive
	}
	for _, tc := range cases {
		if got := etagMatch(tc.header, etag); got != tc.want {
			t.Errorf("etagMatch(%q, %s) = %v, want %v", tc.header, etag, got, tc.want)
		}
	}
	// A weak current-representation tag also compares weakly.
	if !etagMatch(`"abc123-csv"`, `W/"abc123-csv"`) {
		t.Error("weak comparison must ignore W/ on the selected representation too")
	}
}

// TestAcceptsGzip is the table suite for Accept-Encoding negotiation.
func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{``, false}, // absent header: identity only
		{`gzip`, true},
		{`x-gzip`, true},
		{`GZIP`, true},
		{`gzip, deflate, br`, true},
		{`deflate, gzip;q=0.5`, true},
		{`gzip;q=0`, false},    // explicit refusal
		{`gzip;q=0.0`, false},  // explicit refusal, fractional form
		{`gzip; q=0`, false},   // parameter whitespace
		{`deflate, br`, false}, // gzip never offered
		{`*`, true},            // wildcard includes gzip
		{`*;q=0`, false},       // wildcard refused, gzip never named
		{`identity`, false},
		{`gzip;q=banana`, true}, // malformed q: stay acceptable
	}
	for _, tc := range cases {
		if got := acceptsGzip(tc.header); got != tc.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// rawGet issues a GET with exact headers — no transparent gzip from the
// Go transport — so tests observe the wire encoding the server chose.
func rawGet(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An explicit Accept-Encoding disables the transport's automatic
	// gzip handling, exposing raw bytes and headers. ("identity", not
	// the empty string: Header.Get on an empty value returns "", which
	// the transport reads as unset and re-adds gzip.)
	req.Header.Set("Accept-Encoding", "identity")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// reportPaths enumerates the three immutable report representations the
// conditional layer serves.
func reportPaths(d dates.Date) map[string]string {
	return map[string]string{
		"legacy-csv": "/v1/reports/" + d.String() + ".csv",
		"frame-csv":  "/v1/cdn/reports/" + d.String() + ".csv",
		"frame-json": "/v1/cdn/reports/" + d.String(),
	}
}

// wantVary is the expected Vary header per reportPaths entry: generic
// routes negotiate the representation from Accept, the legacy route's
// is fixed by its path (see TestVaryAcceptOnReportRoutes).
func wantVary(name string) string {
	if name == "legacy-csv" {
		return "Accept-Encoding"
	}
	return "Accept, Accept-Encoding"
}

// TestConditionalGetRoundTrip drives the full revalidation cycle on all
// three report representations: 200 with a strong ETag, then 304 with an
// empty body when the tag is replayed, including weak/multi-tag/wildcard
// replays; a wrong tag still gets 200.
func TestConditionalGetRoundTrip(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 5, 5)

	for name, path := range reportPaths(d) {
		resp := rawGet(t, ts, path, nil)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		etag := resp.Header.Get("ETag")
		if etag == "" || !strings.HasPrefix(etag, `"`) || strings.HasPrefix(etag, "W/") {
			t.Fatalf("%s: ETag %q is not a strong quoted validator", name, etag)
		}
		if vary := resp.Header.Get("Vary"); vary != wantVary(name) {
			t.Errorf("%s: Vary = %q, want %q", name, vary, wantVary(name))
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty 200 body", name)
		}

		// Replay shapes that must all revalidate to 304.
		for _, inm := range []string{
			etag,
			"W/" + etag,
			`"bogus", ` + etag,
			"*",
		} {
			resp := rawGet(t, ts, path, map[string]string{"If-None-Match": inm})
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusNotModified {
				t.Errorf("%s: If-None-Match %q = %d, want 304", name, inm, resp.StatusCode)
			}
			if len(body) != 0 {
				t.Errorf("%s: 304 carried %d body bytes", name, len(body))
			}
			if got := resp.Header.Get("ETag"); got != etag {
				t.Errorf("%s: 304 ETag %q, want %q", name, got, etag)
			}
			if vary := resp.Header.Get("Vary"); vary != wantVary(name) {
				t.Errorf("%s: 304 Vary = %q, want %q", name, vary, wantVary(name))
			}
		}

		// A stale tag must serve the full body again.
		resp = rawGet(t, ts, path, map[string]string{"If-None-Match": `"deadbeef"`})
		if again := readAll(t, resp); resp.StatusCode != http.StatusOK || !bytes.Equal(again, body) {
			t.Errorf("%s: stale-tag replay = %d (%d bytes), want identical 200", name, resp.StatusCode, len(again))
		}
	}

	if n := srv.Metrics().Counter("apnicweb_not_modified_total").Value(); n != 12 {
		t.Errorf("not-modified counter = %d, want 12 (4 replays x 3 representations)", n)
	}
}

// TestConditionalVariantMismatch: the gzip and identity representations
// have distinct strong ETags, so an identity tag replayed alongside
// Accept-Encoding: gzip selects a different representation and must not
// 304.
func TestConditionalVariantMismatch(t *testing.T) {
	_, ts, _ := multiServer(t)
	d := dates.New(2024, 5, 6)
	path := "/v1/cdn/reports/" + d.String() + ".csv"

	identity := rawGet(t, ts, path, nil)
	readAll(t, identity)
	idTag := identity.Header.Get("ETag")

	gzipped := rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
	readAll(t, gzipped)
	gzTag := gzipped.Header.Get("ETag")

	if idTag == gzTag {
		t.Fatalf("identity and gzip share strong ETag %s; encodings are different representations", idTag)
	}
	resp := rawGet(t, ts, path, map[string]string{
		"Accept-Encoding": "gzip",
		"If-None-Match":   idTag,
	})
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("identity tag with gzip negotiation = %d, want 200 (different representation)", resp.StatusCode)
	}
	resp = rawGet(t, ts, path, map[string]string{
		"Accept-Encoding": "gzip",
		"If-None-Match":   gzTag,
	})
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("gzip tag with gzip negotiation = %d, want 304", resp.StatusCode)
	}
}

// TestGzipBodiesDecodeIdentical: for every report representation, the
// gzip body must decompress to exactly the identity bytes, carry correct
// Content-Encoding/Content-Length, and repeat byte-identically (the
// pre-compressed cache at work).
func TestGzipBodiesDecodeIdentical(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 5, 7)

	for name, path := range reportPaths(d) {
		identity := readAll(t, rawGet(t, ts, path, nil))

		resp := rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: gzip status %d", name, resp.StatusCode)
		}
		if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
			t.Fatalf("%s: Content-Encoding = %q", name, ce)
		}
		if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(raw)) {
			t.Errorf("%s: Content-Length %q != compressed body %d", name, cl, len(raw))
		}
		if len(raw) >= len(identity) {
			t.Errorf("%s: gzip body (%d bytes) not smaller than identity (%d)", name, len(raw), len(identity))
		}
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		decoded, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s: decoding gzip body: %v", name, err)
		}
		if !bytes.Equal(decoded, identity) {
			t.Errorf("%s: gzip body decodes to different bytes than identity", name)
		}

		again := readAll(t, rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"}))
		if !bytes.Equal(again, raw) {
			t.Errorf("%s: repeated gzip response differs (cache must serve identical bytes)", name)
		}
	}

	if n := srv.Metrics().Counter(`apnicweb_responses_total{encoding="gzip"}`).Value(); n != 6 {
		t.Errorf("gzip response counter = %d, want 6", n)
	}
	if n := srv.Metrics().Counter(`apnicweb_responses_total{encoding="identity"}`).Value(); n != 3 {
		t.Errorf("identity response counter = %d, want 3", n)
	}
}

// TestLegacyGoldenBytesWithoutConditionalHeaders pins the compatibility
// contract of the conditional layer: a request with no Accept-Encoding
// and no If-None-Match gets the exact bytes of the native render, with no
// Content-Encoding, on both legacy routes and the generic CSV route.
func TestLegacyGoldenBytesWithoutConditionalHeaders(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 4, 21)

	var golden strings.Builder
	if err := srv.apnicSrc.Generator().Generate(d).WriteCSV(&golden); err != nil {
		t.Fatal(err)
	}
	resp := rawGet(t, ts, "/v1/reports/"+d.String()+".csv", nil)
	body := readAll(t, resp)
	if resp.Header.Get("Content-Encoding") != "" {
		t.Errorf("unsolicited Content-Encoding %q on legacy route", resp.Header.Get("Content-Encoding"))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Errorf("legacy Content-Type = %q", ct)
	}
	if !bytes.Equal(body, []byte(golden.String())) {
		t.Fatal("legacy CSV bytes differ from the native render when no conditional headers are sent")
	}

	f, err := srv.Registry().Frame("cdn", d)
	if err != nil {
		t.Fatal(err)
	}
	var frameGolden bytes.Buffer
	if err := f.WriteCSV(&frameGolden); err != nil {
		t.Fatal(err)
	}
	resp = rawGet(t, ts, "/v1/cdn/reports/"+d.String()+".csv", nil)
	if got := readAll(t, resp); !bytes.Equal(got, frameGolden.Bytes()) {
		t.Fatal("generic frame CSV bytes differ from the direct render when no conditional headers are sent")
	}

	// And the frame route's ETag is exactly the frame's own validator.
	if want := f.ETag("csv"); resp.Header.Get("ETag") != want {
		t.Errorf("frame CSV ETag = %q, want %q", resp.Header.Get("ETag"), want)
	}

	// Parse-back sanity: the served identity bytes remain a valid frame.
	parsed, err := source.ReadCSV(bytes.NewReader(frameGolden.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(f) {
		t.Fatal("served CSV no longer round-trips through the codec")
	}
}

// TestSmallRoutesUnconditional: dates and series responses are dynamic
// aggregates, stay unconditional and uncompressed by design.
func TestSmallRoutesUnconditional(t *testing.T) {
	_, ts, _ := multiServer(t)
	for _, path := range []string{"/v1/dates", "/v1/cdn/dates"} {
		resp := rawGet(t, ts, path, map[string]string{"Accept-Encoding": "gzip"})
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if et := resp.Header.Get("ETag"); et != "" {
			t.Errorf("%s: unexpected ETag %q", path, et)
		}
		if ce := resp.Header.Get("Content-Encoding"); ce != "" {
			t.Errorf("%s: unexpected Content-Encoding %q", path, ce)
		}
	}
}
