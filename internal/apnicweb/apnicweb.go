// Package apnicweb serves and fetches APNIC-style daily reports over
// HTTP, mirroring how the real dataset is published on
// stats.labs.apnic.net and consumed by research pipelines. The server
// exposes generated CSV reports with daily cache semantics; the client
// downloads and parses them back into apnic.Report values.
//
// Endpoints:
//
//	GET /v1/reports/<YYYY-MM-DD>.csv           one day's report as CSV
//	GET /v1/dates                              served date range, JSON
//	GET /v1/series/AS<asn>?cc=XX&from=&to=&step=   per-AS time series, JSON
//	    (the footnote-2 per-ASN view of stats.labs.apnic.net)
//	GET /metrics                               Prometheus text (?format=json for JSON)
//	GET /healthz                               liveness probe
//
// Every route is wrapped in the obsv middleware, so request counts,
// status classes, and latency histograms appear on /metrics alongside
// the server's cache and render-error series.
package apnicweb

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/syncx"
)

// Server serves generated reports for a date range.
//
// Day artifacts are cached with per-day singleflight entries: concurrent
// requests for the same day share one generation, requests for distinct
// days generate in parallel. (The old coarse-mutex version could either
// serialize the whole request path or, when naively double-checked,
// generate the same day twice under load.)
//
// The caches are bounded LRUs (NewServerCached sets the capacity, default
// DefaultCacheDays): a scan over a multi-year range no longer pins every
// day's report, CSV, and row index in memory forever. Eviction is safe
// because every artifact is a pure function of (seed, date) — an evicted
// day regenerates byte-identically on the next request.
type Server struct {
	gen   *apnic.Generator
	first dates.Date
	last  dates.Date

	// Log, when non-nil, receives structured request logs and render
	// failures. Set it before calling Handler.
	Log *log.Logger

	metrics  *obsv.Registry
	writeCSV func(*apnic.Report, io.Writer) error // seam for render-failure tests

	reports *syncx.LRU[dates.Date, *apnic.Report]       // generated reports per day
	csv     *syncx.LRU[dates.Date, csvDay]              // rendered CSV per day
	index   *syncx.LRU[dates.Date, map[seriesKey]int32] // (ASN, CC) → row position per day

	genCalls   atomic.Int64 // report generations (exceeds distinct days only after evictions)
	reportReqs atomic.Int64 // report-cache lookups

	renderErrs *obsv.Counter
}

// DefaultCacheDays bounds each day cache when NewServer is used: a year
// of reports, which covers the usual serving window while keeping a
// multi-year scan from growing the process without limit.
const DefaultCacheDays = 365

type csvDay struct {
	body []byte
	err  error
}

// seriesKey identifies one row of a day's report: the paper's
// per-(country, AS) series identity.
type seriesKey struct {
	asn uint32
	cc  string
}

// NewServer returns a server for [first, last] with DefaultCacheDays of
// bounded day caching.
func NewServer(gen *apnic.Generator, first, last dates.Date) *Server {
	return NewServerCached(gen, first, last, DefaultCacheDays)
}

// NewServerCached returns a server whose day caches (report, CSV, row
// index) each hold at most cacheDays entries, evicting least recently
// used days. cacheDays < 1 is clamped to 1.
func NewServerCached(gen *apnic.Generator, first, last dates.Date, cacheDays int) *Server {
	s := &Server{
		gen:      gen,
		first:    first,
		last:     last,
		metrics:  obsv.NewRegistry(),
		writeCSV: (*apnic.Report).WriteCSV,
		reports:  syncx.NewLRU[dates.Date, *apnic.Report](cacheDays),
		csv:      syncx.NewLRU[dates.Date, csvDay](cacheDays),
		index:    syncx.NewLRU[dates.Date, map[seriesKey]int32](cacheDays),
	}
	s.renderErrs = s.metrics.Counter("apnicweb_render_errors_total")
	// The cache counters live as atomics on the hot path and are
	// surfaced as gauges at scrape time, so serving cost stays flat.
	s.metrics.GaugeFunc("apnicweb_gen_calls", func() float64 { return float64(s.genCalls.Load()) })
	s.metrics.GaugeFunc("apnicweb_cache_capacity_days", func() float64 { return float64(s.reports.Cap()) })
	s.metrics.GaugeFunc("apnicweb_report_cache_hits", func() float64 {
		h, _, _ := s.reports.Stats()
		return float64(h)
	})
	s.metrics.GaugeFunc("apnicweb_report_cache_misses", func() float64 {
		_, m, _ := s.reports.Stats()
		return float64(m)
	})
	s.metrics.GaugeFunc("apnicweb_report_cache_evictions", func() float64 {
		_, _, e := s.reports.Stats()
		return float64(e)
	})
	s.metrics.GaugeFunc("apnicweb_csv_cache_evictions", func() float64 {
		_, _, e := s.csv.Stats()
		return float64(e)
	})
	s.metrics.GaugeFunc("apnicweb_index_cache_evictions", func() float64 {
		_, _, e := s.index.Stats()
		return float64(e)
	})
	s.metrics.GaugeFunc("apnicweb_report_cache_days", func() float64 { return float64(s.reports.Len()) })
	s.metrics.GaugeFunc("apnicweb_csv_cache_days", func() float64 { return float64(s.csv.Len()) })
	return s
}

// Metrics exposes the server's registry so embedding binaries can add
// their own series and dump a snapshot on exit.
func (s *Server) Metrics() *obsv.Registry { return s.metrics }

// report returns the (cached) generated report for a day, generating it
// at most once even when many requests race on a cold day.
func (s *Server) report(d dates.Date) *apnic.Report {
	s.reportReqs.Add(1)
	return s.reports.Get(d, func() *apnic.Report {
		s.genCalls.Add(1)
		return s.gen.Generate(d)
	})
}

// rowIndex returns the day's (ASN, CC) → row-position map, built once
// per day. Series requests used to scan all of a day's rows per lookup
// (O(rows) each, tens of thousands of comparisons); the index makes
// every lookup after the first O(1).
func (s *Server) rowIndex(d dates.Date) map[seriesKey]int32 {
	return s.index.Get(d, func() map[seriesKey]int32 {
		rep := s.report(d)
		m := make(map[seriesKey]int32, len(rep.Rows))
		for i, row := range rep.Rows {
			m[seriesKey{row.ASN, row.CC}] = int32(i)
		}
		return m
	})
}

// routeLabel collapses request paths onto their route patterns so the
// per-route metric series stay bounded no matter what clients request.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/reports/"):
		return "/v1/reports/:date"
	case strings.HasPrefix(p, "/v1/series/"):
		return "/v1/series/:asn"
	case p == "/v1/dates", p == "/healthz", p == "/metrics":
		return p
	default:
		return "other"
	}
}

// Handler returns the HTTP handler, instrumented with per-route metrics
// and (when s.Log is set) request logging.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/dates", s.handleDates)
	mux.HandleFunc("GET /v1/reports/", s.handleReport)
	mux.HandleFunc("GET /v1/series/", s.handleSeries)
	mux.Handle("GET /metrics", s.metrics.Handler())
	mw := &obsv.HTTPMetrics{Registry: s.metrics, Log: s.Log, Route: routeLabel}
	return mw.Wrap(mux)
}

// SeriesPoint is one day of the per-AS series response.
type SeriesPoint struct {
	Date    string  `json:"date"`
	Users   float64 `json:"users"`
	Samples int64   `json:"samples"`
}

// SeriesResponse is the /v1/series body.
type SeriesResponse struct {
	ASN     uint32        `json:"asn"`
	Country string        `json:"cc"`
	Points  []SeriesPoint `json:"points"`
}

// handleSeries serves the per-(country, AS) daily series — the view the
// paper's footnote 2 links for Bouygues Telecom on the real site.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/series/")
	if !strings.HasPrefix(name, "AS") {
		http.Error(w, "want /v1/series/AS<asn>", http.StatusNotFound)
		return
	}
	asn64, err := strconv.ParseUint(strings.TrimPrefix(name, "AS"), 10, 32)
	if err != nil {
		http.Error(w, "bad ASN", http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	cc := q.Get("cc")
	if cc == "" {
		http.Error(w, "missing cc parameter", http.StatusBadRequest)
		return
	}
	from, to := s.first, s.last
	if v := q.Get("from"); v != "" {
		if from, err = dates.Parse(v); err != nil {
			http.Error(w, "bad from date", http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = dates.Parse(v); err != nil {
			http.Error(w, "bad to date", http.StatusBadRequest)
			return
		}
	}
	if from.After(to) {
		// This used to fall through and return a silently empty series,
		// indistinguishable from "AS not present" — reject it instead.
		http.Error(w, "from is after to", http.StatusBadRequest)
		return
	}
	step := 1
	if v := q.Get("step"); v != "" {
		if step, err = strconv.Atoi(v); err != nil || step < 1 {
			http.Error(w, "bad step", http.StatusBadRequest)
			return
		}
	}
	if from.Before(s.first) {
		from = s.first
	}
	if to.After(s.last) {
		to = s.last
	}
	if from.After(to) { // requested window entirely outside the served range
		http.Error(w, "range does not overlap the served dates", http.StatusBadRequest)
		return
	}
	const maxPoints = 120
	if span := to.Sub(from)/step + 1; span > maxPoints {
		http.Error(w, fmt.Sprintf("too many points (max %d); raise step or narrow the range", maxPoints), http.StatusBadRequest)
		return
	}

	resp := SeriesResponse{ASN: uint32(asn64), Country: cc}
	key := seriesKey{resp.ASN, cc}
	for _, d := range dates.Range(from, to, step) {
		if i, ok := s.rowIndex(d)[key]; ok {
			row := s.report(d).Rows[i]
			resp.Points = append(resp.Points, SeriesPoint{
				Date: d.String(), Users: row.Users, Samples: row.Samples,
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// DateRange is the /v1/dates response body.
type DateRange struct {
	First string `json:"first"`
	Last  string `json:"last"`
}

func (s *Server) handleDates(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(DateRange{First: s.first.String(), Last: s.last.String()})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/reports/")
	if !strings.HasSuffix(name, ".csv") {
		http.Error(w, "want /v1/reports/<YYYY-MM-DD>.csv", http.StatusNotFound)
		return
	}
	d, err := dates.Parse(strings.TrimSuffix(name, ".csv"))
	if err != nil {
		http.Error(w, "bad date", http.StatusBadRequest)
		return
	}
	if d.Before(s.first) || d.After(s.last) {
		http.Error(w, "date out of served range", http.StatusNotFound)
		return
	}
	body, err := s.render(d)
	if err != nil {
		// The old handler swallowed err here, leaving operators with an
		// opaque 500 and no counter to alert on.
		s.renderErrs.Inc()
		if s.Log != nil {
			s.Log.Printf("render error date=%s err=%q", d, err)
		}
		http.Error(w, "report generation failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Cache-Control", "public, max-age=86400")
	w.Write(body)
}

func (s *Server) render(d dates.Date) ([]byte, error) {
	day := s.csv.Get(d, func() csvDay {
		var b strings.Builder
		if err := s.writeCSV(s.report(d), &b); err != nil {
			// Rendering is deterministic in (seed, date), so a failure
			// would recur on every attempt; caching it is sound — and
			// repeat requests must see the same error, not a flap.
			return csvDay{err: err}
		}
		return csvDay{body: []byte(b.String())}
	})
	return day.body, day.err
}

// errBodyLimit caps how much of a non-200 response body the client reads
// into an error message; errDrainLimit caps how much more it will drain
// to keep the connection reusable before giving up and closing it.
const (
	errBodyLimit  = 1 << 10
	errDrainLimit = 64 << 10
)

// Client fetches reports from a server. It retries transient failures
// (connection errors, 429, 5xx) with exponential backoff through
// obsv.RetryTransport; see Retry.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout. Its transport
	// is wrapped with the retrying transport on first use.
	HTTPClient *http.Client
	// Retry overrides the default retry policy (4 attempts, 100ms base
	// backoff). Set before first use.
	Retry obsv.RetryPolicy
	// Metrics, when non-nil, receives per-attempt client metrics
	// (httpclient_attempts_total, httpclient_retries_total, ...).
	Metrics *obsv.Registry
	// Log, when non-nil, gets one line per retry with delay and cause.
	Log *log.Logger

	once sync.Once
	c    *http.Client
}

func (c *Client) http() *http.Client {
	c.once.Do(func() {
		base := c.HTTPClient
		if base == nil {
			base = &http.Client{Timeout: 30 * time.Second}
		}
		wrapped := *base // shallow copy so we never mutate the caller's client
		wrapped.Transport = &obsv.RetryTransport{
			Base:    base.Transport,
			Policy:  c.Retry,
			Metrics: c.Metrics,
			Log:     c.Log,
		}
		c.c = &wrapped
	})
	return c.c
}

// errorf reads a bounded snippet of a non-200 response body for the
// error message, then drains (bounded) so the connection can be reused.
// The old client closed the body unread, which killed keep-alive on
// every error response.
func errorf(u string, resp *http.Response) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
	io.Copy(io.Discard, io.LimitReader(resp.Body, errDrainLimit))
	msg := strings.TrimSpace(string(snippet))
	if msg == "" {
		return fmt.Errorf("apnicweb: GET %s: %s", u, resp.Status)
	}
	return fmt.Errorf("apnicweb: GET %s: %s: %s", u, resp.Status, msg)
}

// Dates fetches the served date range.
func (c *Client) Dates(ctx context.Context) (first, last dates.Date, err error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/dates")
	if err != nil {
		return first, last, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return first, last, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return first, last, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return first, last, errorf(u, resp)
	}
	var dr DateRange
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return first, last, fmt.Errorf("apnicweb: decoding dates: %w", err)
	}
	// The decoder stops at the closing brace; drain the trailing newline
	// so the connection goes back to the keep-alive pool.
	io.Copy(io.Discard, io.LimitReader(resp.Body, errDrainLimit))
	if first, err = dates.Parse(dr.First); err != nil {
		return first, last, err
	}
	last, err = dates.Parse(dr.Last)
	return first, last, err
}

// Report fetches and parses one day's report.
func (c *Client) Report(ctx context.Context, d dates.Date) (*apnic.Report, error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/reports/", d.String()+".csv")
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorf(u, resp)
	}
	rep, err := apnic.ReadCSV(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("apnicweb: parsing %s: %w", d, err)
	}
	return rep, nil
}
