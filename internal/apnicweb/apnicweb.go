// Package apnicweb serves and fetches the simulated datasets over HTTP.
// Historically it published only the APNIC per-AS reports, mirroring
// stats.labs.apnic.net; it now serves every dataset registered in a
// source.Registry under generic routes, with the original APNIC routes
// kept as byte-identical compatibility aliases.
//
// Generic endpoints (one family per registered dataset):
//
//	GET /v1/{dataset}/dates                    served range + cadence, JSON
//	GET /v1/{dataset}/reports/{date}.csv       one day's frame as CSV
//	GET /v1/{dataset}/reports/{date}           one day's frame as JSON
//	GET /v1/{dataset}/series/{key}?cc=XX&from=&to=&step=   per-row series, JSON
//
// Legacy APNIC aliases (responses byte-identical to the APNIC-only server):
//
//	GET /v1/reports/{date}                     <YYYY-MM-DD>.csv, native CSV
//	GET /v1/dates                              served date range, JSON
//	GET /v1/series/{asn}?cc=XX&from=&to=&step= per-AS time series, JSON
//	    (the footnote-2 per-ASN view of stats.labs.apnic.net)
//
// Plus:
//
//	GET /v1/live/{country}                     rolling streaming estimate, JSON (see live.go)
//	GET /metrics                               Prometheus text (?format=json for JSON)
//	GET /healthz                               liveness probe
//
// Every route is wrapped in the obsv middleware with a bounded per-route
// (and per-dataset) label, so request counts, status classes, and latency
// histograms appear on /metrics alongside the cache and render-error
// series. Errors on generic routes carry a JSON body; legacy routes keep
// their original plain-text errors.
//
// Report routes exploit day immutability (every dataset-day is a pure
// function of (seed, date)): responses carry strong ETags derived from
// the frame content hash, If-None-Match revalidation answers 304 without
// rendering, Accept-Encoding negotiates gzip bodies out of a bounded
// pre-compressed hot-day cache, and identity CSV/JSON bodies stream
// row-by-row without materializing the rendered report. See
// conditional.go and serveImmutable.
package apnicweb

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/source"
	"repro/internal/source/binfmt"
	"repro/internal/source/bundle"
	"repro/internal/source/framez"
	"repro/internal/syncx"
	"repro/internal/world"
)

// Server serves generated reports for a date range.
//
// Day artifacts are cached with per-day singleflight entries: concurrent
// requests for the same day share one generation, requests for distinct
// days generate in parallel. (The old coarse-mutex version could either
// serialize the whole request path or, when naively double-checked,
// generate the same day twice under load.)
//
// The caches are bounded LRUs (NewServerCached sets the capacity, default
// DefaultCacheDays): a scan over a multi-year range no longer pins every
// day's report, CSV, and row index in memory forever. Eviction is safe
// because every artifact is a pure function of (seed, date) — an evicted
// day regenerates byte-identically on the next request.
type Server struct {
	reg      *source.Registry
	apnicSrc *apnic.Source // legacy alias routes need the native reports
	first    dates.Date
	last     dates.Date

	// Log, when non-nil, receives structured request logs and render
	// failures. Set it before calling Handler.
	Log *log.Logger

	metrics  *obsv.Registry
	writeCSV func(*apnic.Report, io.Writer) error // seam for render-failure tests

	// Streaming seams: the identity CSV/JSON report paths write the frame
	// straight to the client; tests inject mid-stream failures here.
	writeFrameCSV  func(*source.Frame, io.Writer) error
	writeFrameJSON func(*source.Frame, io.Writer) error

	csv   *syncx.LRU[dates.Date, csvDay]              // legacy APNIC CSV per day
	index *syncx.LRU[dates.Date, map[seriesKey]int32] // (ASN, CC) → row position per day
	etags *syncx.LRU[frameKey, string]                // frame content hash per (dataset, day)
	gzips *syncx.LRU[gzKey, csvDay]                   // pre-compressed hot-day bodies

	renderErrs   *obsv.Counter
	streamAborts *obsv.Counter
	notModified  *obsv.Counter
	encGzip      *obsv.Counter
	encIdentity  *obsv.Counter

	// liveState holds the optional streaming estimator behind
	// /v1/live/{country}; see live.go and SetLive.
	liveState
}

// DefaultCacheDays bounds each day cache when NewServer is used: a year
// of reports, which covers the usual serving window while keeping a
// multi-year scan from growing the process without limit.
const DefaultCacheDays = 365

type csvDay struct {
	body []byte
	etag string // content hash of the identity body (legacy cache only)
	err  error
}

// frameKey identifies one dataset-day artifact in the generic caches.
type frameKey struct {
	dataset string
	day     int // dates.Date.DayNumber()
}

// gzKey identifies one pre-compressed representation: the repr
// distinguishes codecs ("csv", "json", "legacy") because the same
// dataset-day compresses to different bytes under each.
type gzKey struct {
	repr    string
	dataset string
	day     int
}

// seriesKey identifies one row of a day's report: the paper's
// per-(country, AS) series identity.
type seriesKey struct {
	asn uint32
	cc  string
}

// NewServer returns an APNIC-only server for [first, last] with
// DefaultCacheDays of bounded day caching.
func NewServer(gen *apnic.Generator, first, last dates.Date) *Server {
	return NewServerCached(gen, first, last, DefaultCacheDays)
}

// NewServerCached returns an APNIC-only server whose day caches each hold
// at most cacheDays entries, evicting least recently used days. cacheDays
// < 1 is clamped to 1. The generic routes serve the single "apnic"
// dataset; NewMultiServer serves the full roster.
func NewServerCached(gen *apnic.Generator, first, last dates.Date, cacheDays int) *Server {
	metrics := obsv.NewRegistry()
	reg := source.NewRegistry(metrics, cacheDays)
	apnicSrc := apnic.NewSource(gen, metrics, cacheDays)
	reg.Register(apnicSrc)
	return newServer(reg, apnicSrc, first, last, cacheDays, metrics)
}

// NewMultiServer builds the full seven-dataset roster over one world and
// serves every dataset under /v1/{dataset}/..., with the legacy APNIC
// routes aliasing the "apnic" dataset.
func NewMultiServer(w *world.World, seed uint64, first, last dates.Date, cacheDays int) *Server {
	metrics := obsv.NewRegistry()
	b := bundle.New(w, seed, bundle.Config{Metrics: metrics, CacheDays: cacheDays})
	return newServer(b.Registry, b.APNIC, first, last, cacheDays, metrics)
}

func newServer(reg *source.Registry, apnicSrc *apnic.Source, first, last dates.Date, cacheDays int, metrics *obsv.Registry) *Server {
	if cacheDays < 1 {
		cacheDays = 1
	}
	// Idempotent when the bundle already injected them; the APNIC-only
	// constructors build a bare registry that must learn the codecs here.
	reg.SetBinCodec(binfmt.Encode)
	reg.SetBinzCodec(framez.Encode)
	rosterCap := cacheDays * max(1, len(reg.Names()))
	s := &Server{
		reg:            reg,
		apnicSrc:       apnicSrc,
		first:          first,
		last:           last,
		metrics:        metrics,
		writeCSV:       (*apnic.Report).WriteCSV,
		writeFrameCSV:  (*source.Frame).WriteCSV,
		writeFrameJSON: (*source.Frame).WriteJSON,
		csv:            syncx.NewLRU[dates.Date, csvDay](cacheDays),
		index:          syncx.NewLRU[dates.Date, map[seriesKey]int32](cacheDays),
		// One day-budget per dataset: the generic caches serve the whole
		// roster, so their capacity scales with the roster size.
		etags: syncx.NewLRU[frameKey, string](rosterCap),
		gzips: syncx.NewLRU[gzKey, csvDay](rosterCap),
	}
	s.renderErrs = s.metrics.Counter("apnicweb_render_errors_total")
	s.streamAborts = s.metrics.Counter("apnicweb_stream_aborts_total")
	s.notModified = s.metrics.Counter("apnicweb_not_modified_total")
	s.encGzip = s.metrics.Counter(`apnicweb_responses_total{encoding="gzip"}`)
	s.encIdentity = s.metrics.Counter(`apnicweb_responses_total{encoding="identity"}`)
	// Cache counters live in the LRUs on the hot path and are surfaced as
	// gauges at scrape time, so serving cost stays flat. The native
	// report cache's series (source_cache_*{dataset="apnic"}, ...) are
	// registered by the source layer on the same registry.
	s.metrics.GaugeFunc("apnicweb_cache_capacity_days", func() float64 { return float64(s.csv.Cap()) })
	s.metrics.GaugeFunc("apnicweb_csv_cache_evictions", func() float64 {
		_, _, e := s.csv.Stats()
		return float64(e)
	})
	s.metrics.GaugeFunc("apnicweb_index_cache_evictions", func() float64 {
		_, _, e := s.index.Stats()
		return float64(e)
	})
	s.metrics.GaugeFunc("apnicweb_csv_cache_days", func() float64 { return float64(s.csv.Len()) })
	s.metrics.GaugeFunc("apnicweb_gzip_cache_days", func() float64 { return float64(s.gzips.Len()) })
	s.metrics.GaugeFunc("apnicweb_gzip_cache_evictions", func() float64 {
		_, _, e := s.gzips.Stats()
		return float64(e)
	})
	s.metrics.GaugeFunc("apnicweb_etag_cache_days", func() float64 { return float64(s.etags.Len()) })
	return s
}

// Metrics exposes the server's registry so embedding binaries can add
// their own series and dump a snapshot on exit.
func (s *Server) Metrics() *obsv.Registry { return s.metrics }

// Registry exposes the dataset roster the server serves.
func (s *Server) Registry() *source.Registry { return s.reg }

// report returns the (cached) generated report for a day, generating it
// at most once even when many requests race on a cold day.
func (s *Server) report(d dates.Date) *apnic.Report {
	return s.apnicSrc.Report(d)
}

// rowIndex returns the day's (ASN, CC) → row-position map, built once
// per day. Series requests used to scan all of a day's rows per lookup
// (O(rows) each, tens of thousands of comparisons); the index makes
// every lookup after the first O(1).
func (s *Server) rowIndex(d dates.Date) map[seriesKey]int32 {
	return s.index.Get(d, func() map[seriesKey]int32 {
		rep := s.report(d)
		m := make(map[seriesKey]int32, len(rep.Rows))
		for i, row := range rep.Rows {
			m[seriesKey{row.ASN, row.CC}] = int32(i)
		}
		return m
	})
}

// routeLabel collapses request paths onto their route patterns so the
// per-route metric series stay bounded no matter what clients request.
// Dataset segments are kept only for registered datasets (a bounded set);
// everything else collapses to "other".
func (s *Server) routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/reports/"):
		return "/v1/reports/:date"
	case strings.HasPrefix(p, "/v1/series/"):
		return "/v1/series/:asn"
	case strings.HasPrefix(p, "/v1/live/"):
		return "/v1/live/:cc"
	case p == "/v1/dates", p == "/healthz", p == "/metrics":
		return p
	}
	if rest, ok := strings.CutPrefix(p, "/v1/"); ok {
		name, tail, _ := strings.Cut(rest, "/")
		if _, known := s.reg.Lookup(name); known {
			switch {
			case tail == "dates":
				return "/v1/" + name + "/dates"
			case strings.HasPrefix(tail, "reports/"):
				return "/v1/" + name + "/reports/:date"
			case strings.HasPrefix(tail, "series/"):
				return "/v1/" + name + "/series/:key"
			}
		}
	}
	return "other"
}

// Handler returns the HTTP handler, instrumented with per-route metrics
// and (when s.Log is set) request logging.
//
// Routing is two-tier because Go 1.22 mux precedence demands it: the
// legacy literal patterns (/v1/reports/{date}) and the generic wildcard
// patterns (/v1/{dataset}/dates) overlap with neither more specific, so
// registering both in one mux panics. The outer mux owns the legacy
// routes plus the /v1/ subtree; the subtree is strictly less specific
// than every literal pattern, so legacy paths win and everything else
// falls through to the generic inner mux.
func (s *Server) Handler() http.Handler {
	inner := http.NewServeMux()
	inner.HandleFunc("GET /v1/{dataset}/dates", s.handleDatasetDates)
	inner.HandleFunc("GET /v1/{dataset}/reports/{date}", s.handleDatasetReport)
	inner.HandleFunc("GET /v1/{dataset}/series/{key}", s.handleDatasetSeries)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/dates", s.handleDates)
	mux.HandleFunc("GET /v1/reports/{date}", s.handleReport)
	mux.HandleFunc("GET /v1/series/{asn}", s.handleSeries)
	mux.HandleFunc("GET /v1/live/{country}", s.handleLive)
	mux.Handle("GET /metrics", s.metrics.Handler())
	mux.Handle("/v1/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := inner.Handler(r); pattern == "" {
			jsonError(w, http.StatusNotFound, "no such route")
			return
		}
		// Serve through the mux (not the matched handler directly) so the
		// inner patterns' path values are bound on the request.
		inner.ServeHTTP(w, r)
	}))
	mw := &obsv.HTTPMetrics{Registry: s.metrics, Log: s.Log, Route: s.routeLabel}
	return mw.Wrap(mux)
}

// errorBody is the JSON error shape of the generic dataset routes.
type errorBody struct {
	Error string `json:"error"`
}

// jsonError writes a JSON error body, the contract of every generic
// /v1/{dataset}/... route (legacy routes keep plain-text errors).
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// lookupDataset resolves the {dataset} path segment, writing the
// satellite JSON 404 when the name is unknown.
func (s *Server) lookupDataset(w http.ResponseWriter, r *http.Request) (source.Source, bool) {
	name := r.PathValue("dataset")
	src, ok := s.reg.Lookup(name)
	if !ok {
		jsonError(w, http.StatusNotFound,
			fmt.Sprintf("unknown dataset %q (served: %s)", name, strings.Join(s.reg.Names(), ", ")))
		return nil, false
	}
	return src, true
}

// DatasetDates is the /v1/{dataset}/dates response body.
type DatasetDates struct {
	Dataset string `json:"dataset"`
	First   string `json:"first"`
	Last    string `json:"last"`
	Cadence string `json:"cadence"`
}

func (s *Server) handleDatasetDates(w http.ResponseWriter, r *http.Request) {
	src, ok := s.lookupDataset(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(DatasetDates{
		Dataset: src.Name(),
		First:   s.first.String(),
		Last:    s.last.String(),
		Cadence: src.Window().Cadence,
	})
}

// handleDatasetReport serves one dataset-day in one of four
// representations: "{date}.csv" as frame CSV, "{date}.bin" (or a bare
// date with Accept: application/x-frame-bin) as the binary columnar
// encoding, "{date}.binz" (or Accept: application/x-frame-binz) as the
// compressed binary encoding, and a bare "{date}" otherwise as frame
// JSON. All four carry a strong ETag derived from the frame content
// hash (variant-suffixed, so no two representations share a validator)
// and negotiate gzip through serveImmutable — except binz, which is
// already entropy-coded and always serves identity. Text identity
// bodies stream row-by-row and are never materialized server-side;
// binary bodies are served from the registry's memoized encodings — the
// compact artifact IS the cache.
func (s *Server) handleDatasetReport(w http.ResponseWriter, r *http.Request) {
	src, ok := s.lookupDataset(w, r)
	if !ok {
		return
	}
	name := r.PathValue("date")
	var wantCSV, wantBin, wantBinz bool
	if trimmed, ok := strings.CutSuffix(name, ".csv"); ok {
		name, wantCSV = trimmed, true
	} else if trimmed, ok := strings.CutSuffix(name, framez.Suffix); ok {
		name, wantBinz = trimmed, true
	} else if trimmed, ok := strings.CutSuffix(name, binfmt.Suffix); ok {
		name, wantBin = trimmed, true
	} else if accept := r.Header.Get("Accept"); acceptsFrameBinz(accept) {
		// A client naming both frame media types gets the compressed one.
		wantBinz = true
	} else {
		wantBin = acceptsFrameBin(accept)
	}
	d, err := dates.Parse(name)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad date (want YYYY-MM-DD, YYYY-MM-DD.csv, YYYY-MM-DD.bin or YYYY-MM-DD.binz)")
		return
	}
	if d.Before(s.first) || d.After(s.last) {
		jsonError(w, http.StatusNotFound, "date out of served range")
		return
	}
	f, err := s.reg.Frame(src.Name(), d)
	if err == nil {
		// Pre-flight the frame shape before any byte is written: once the
		// stream starts, a failure can only abort the connection, so every
		// error detectable up front must become a clean 500 here.
		err = f.Check()
	}
	var binBody []byte
	if err == nil {
		switch {
		case wantBin:
			binBody, err = s.reg.FrameBin(src.Name(), d)
		case wantBinz:
			binBody, err = s.reg.FrameBinz(src.Name(), d)
		}
	}
	if err != nil {
		s.renderErrs.Inc()
		if s.Log != nil {
			s.Log.Printf("render error dataset=%s date=%s err=%q", src.Name(), d, err)
		}
		jsonError(w, http.StatusInternalServerError, "report generation failed: "+err.Error())
		return
	}
	b := immutableBody{
		dataset: src.Name(),
		day:     d,
		hash:    s.frameHash(src.Name(), d, f),
		fail: func(code int, msg string) {
			s.renderErrs.Inc()
			jsonError(w, code, msg)
		},
	}
	// The generic report routes negotiate their representation from the
	// Accept header, so every response (all four representations — the
	// suffix paths serve the same resources) must tell shared caches the
	// body varies on it.
	b.varyAccept = true
	switch {
	case wantBin:
		b.repr, b.contentType = "bin", binfmt.ContentType
		b.body = binBody
		// Binary bodies are materialized (the memoized artifact is the
		// response), so the exact length can be declared up front.
		b.declareLen = true
	case wantBinz:
		b.repr, b.contentType = "binz", framez.ContentType
		b.body = binBody
		b.declareLen = true
		// Already entropy-coded: gzip on top costs CPU on both ends for
		// negative savings, so the representation is identity-only and
		// never enters the pre-compressed LRU.
		b.noGzip = true
	case wantCSV:
		b.repr, b.contentType = "csv", "text/csv; charset=utf-8"
		b.stream = func(w io.Writer) error { return s.writeFrameCSV(f, w) }
	default:
		b.repr, b.contentType = "json", "application/json"
		b.stream = func(w io.Writer) error { return s.writeFrameJSON(f, w) }
	}
	s.serveImmutable(w, r, b)
}

// frameHash memoizes the frame content hash per (dataset, day). Hashing
// is much cheaper than rendering (no per-cell formatting) but still
// O(cells), so a hot day pays it once while resident.
func (s *Server) frameHash(dataset string, d dates.Date, f *source.Frame) string {
	return s.etags.Get(frameKey{dataset, d.DayNumber()}, f.ContentHash)
}

// immutableBody describes one immutable dataset-day representation for
// serveImmutable: a pre-rendered identity body (legacy CSV, whose bytes
// are cached anyway for the byte-identity contract) or a streamable
// render (generic frame routes). Exactly one of body and stream is set.
type immutableBody struct {
	repr        string // representation key: "csv", "json", "bin", "binz", "legacy"
	dataset     string
	day         dates.Date
	contentType string
	hash        string                // content hash, the ETag base
	body        []byte                // identity bytes, when already materialized
	stream      func(io.Writer) error // identity streamer otherwise
	declareLen  bool                  // set Content-Length for identity body bytes
	noGzip      bool                  // pre-compressed representation: identity only
	varyAccept  bool                  // representation was negotiated from Accept
	fail        func(code int, msg string)
}

// serveImmutable finishes a report response: ETag / If-None-Match
// validation, Accept-Encoding negotiation, the bounded pre-compressed
// cache for gzip bodies, and row-streamed identity bodies.
//
// Ordering is load-bearing. The 304 check runs before any rendering so a
// revalidation costs one memoized hash lookup. The gzip body is rendered
// into the cache from the frame — never teed off a live response — so a
// mid-download disconnect cannot poison it. The identity stream writes
// last, after every fallible step, because once it starts the only
// honest way to report failure is aborting the connection (streamBody).
func (s *Server) serveImmutable(w http.ResponseWriter, r *http.Request, b immutableBody) {
	gz := !b.noGzip && acceptsGzip(r.Header.Get("Accept-Encoding"))
	variant := b.repr
	if gz {
		variant += ".gz"
	}
	etag := source.FormatETag(b.hash, variant)
	h := w.Header()
	if b.varyAccept {
		// The generic routes pick csv/json/bin/binz from the Accept header
		// (the bare-date path most visibly): without Accept in Vary a
		// shared cache could answer a browser's JSON request with a binary
		// body stored for a frame client. Sent on 304s too — revalidation
		// updates stored response metadata.
		h.Set("Vary", "Accept, Accept-Encoding")
	} else {
		// Legacy routes serve one fixed representation per path; their
		// headers (like their bytes) are pinned by the compatibility tests.
		h.Set("Vary", "Accept-Encoding")
	}
	h.Set("ETag", etag)
	h.Set("Cache-Control", "public, max-age=86400")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", b.contentType)
	if r.Method == http.MethodHead {
		// Go 1.22 "GET /..." patterns also match HEAD, and before this
		// check a HEAD request fell through to the body paths: the
		// streaming routes rendered (and chunked) a full body net/http then
		// had to discard, and a mid-render failure could panic with
		// ErrAbortHandler on a request that never wanted bytes at all.
		// Answer with the negotiated headers alone. Content-Length is
		// declared only when the identity body is already materialized;
		// gzip and streamed lengths are unknown without rendering, which is
		// exactly the work HEAD exists to skip.
		if gz {
			h.Set("Content-Encoding", "gzip")
			s.encGzip.Inc()
		} else {
			if b.body != nil && b.declareLen {
				h.Set("Content-Length", strconv.Itoa(len(b.body)))
			}
			s.encIdentity.Inc()
		}
		w.WriteHeader(http.StatusOK)
		return
	}
	if gz {
		body, err := s.gzipBody(b)
		if err != nil {
			if s.Log != nil {
				s.Log.Printf("gzip render error dataset=%s repr=%s date=%s err=%q", b.dataset, b.repr, b.day, err)
			}
			// Strip the success-only headers: a 500 carrying a public
			// max-age Cache-Control (or a validator) could get cached.
			h.Del("ETag")
			h.Del("Cache-Control")
			h.Del("Vary")
			h.Del("Content-Type")
			b.fail(http.StatusInternalServerError, "report generation failed: "+err.Error())
			return
		}
		h.Set("Content-Encoding", "gzip")
		// The compressed body is materialized (that is the point of the
		// hot-day cache), so its length is known and safe to declare.
		h.Set("Content-Length", strconv.Itoa(len(body)))
		s.encGzip.Inc()
		w.Write(body)
		return
	}
	s.encIdentity.Inc()
	if b.body != nil {
		// Content-Length is deliberately not set for the legacy route:
		// net/http chunks large bodies exactly as it did before the
		// conditional layer existed, keeping those responses
		// byte-identical on the wire. The binary route opts in instead —
		// its body is a materialized artifact with a known length.
		if b.declareLen {
			h.Set("Content-Length", strconv.Itoa(len(b.body)))
		}
		w.Write(b.body)
		return
	}
	s.streamBody(w, b)
}

// streamBody writes an identity body row-by-row. The whole rendered
// report never exists in server memory — the CSV/JSON writers flush
// through their small encoder buffers straight into the chunked response.
//
// A mid-stream failure cannot change the status code (it is already on
// the wire as 200) and must not be papered over: returning normally would
// let net/http write the terminating zero-length chunk, making the
// truncated body indistinguishable from a complete one. Panicking with
// http.ErrAbortHandler instead drops the connection so the client's read
// fails — the HTTP-shaped version of "crash, don't corrupt".
func (s *Server) streamBody(w http.ResponseWriter, b immutableBody) {
	if err := b.stream(w); err != nil {
		s.streamAborts.Inc()
		if s.Log != nil {
			s.Log.Printf("stream abort dataset=%s repr=%s date=%s err=%q", b.dataset, b.repr, b.day, err)
		}
		panic(http.ErrAbortHandler)
	}
}

// gzipWriters pools gzip.Writer instances for the pre-compressed-LRU
// fill path. A gzip writer carries ~1.3MB of deflate state (hash chains,
// window, output buffers); constructing one per cache fill made every
// cold gzip request pay that allocation and the GC churn behind it.
// Reset rebinds a pooled writer to a new destination with the same
// BestSpeed level, and gzip output is a pure function of (input, level),
// so reuse is byte-identical to a fresh writer — pinned by
// TestGzipWriterPoolByteIdentical.
var gzipWriters = sync.Pool{
	New: func() any {
		zw, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return zw
	},
}

// gzipBody returns the cached gzip representation, rendering and
// compressing it at most once per (repr, dataset, day) while resident.
// The fill renders from the immutable artifact, never from a client
// connection, so partial client reads cannot poison the cache; and gzip
// output is deterministic for a fixed input and level, so a refill after
// eviction is byte-identical.
func (s *Server) gzipBody(b immutableBody) ([]byte, error) {
	day := s.gzips.Get(gzKey{b.repr, b.dataset, b.day.DayNumber()}, func() csvDay {
		var buf bytes.Buffer
		zw := gzipWriters.Get().(*gzip.Writer)
		zw.Reset(&buf)
		var err error
		if b.body != nil {
			_, err = zw.Write(b.body)
		} else {
			err = b.stream(zw)
		}
		if cerr := zw.Close(); err == nil {
			err = cerr
		}
		// Pool even after an error: Reset clears sticky write errors, and
		// a closed writer is reusable by contract.
		gzipWriters.Put(zw)
		if err != nil {
			// Deterministic render: the failure recurs on every attempt,
			// so caching it is sound (and repeat requests see one message).
			return csvDay{err: err}
		}
		return csvDay{body: buf.Bytes()}
	})
	return day.body, day.err
}

// GenericSeriesPoint is one date of a generic per-row series: every
// numeric column of the matched row.
type GenericSeriesPoint struct {
	Date   string             `json:"date"`
	Values map[string]float64 `json:"values"`
}

// GenericSeriesResponse is the /v1/{dataset}/series body.
type GenericSeriesResponse struct {
	Dataset string               `json:"dataset"`
	Key     string               `json:"key"`
	Country string               `json:"cc,omitempty"`
	Points  []GenericSeriesPoint `json:"points"`
}

// seriesSelector maps a dataset's route key to the frame columns that
// identify one row. Unified rule: itu rows are keyed by country alone
// (the key IS the cc); apnic rows by (AS, cc); every per-(country, org)
// dataset by (Org, cc).
func seriesSelector(dataset, key, cc string) (map[string]string, string, error) {
	switch dataset {
	case "itu":
		return map[string]string{"CC": key}, "", nil
	case apnic.DatasetName:
		asn, ok := strings.CutPrefix(key, "AS")
		if !ok {
			return nil, "", fmt.Errorf("want /v1/%s/series/AS<asn>", dataset)
		}
		if _, err := strconv.ParseUint(asn, 10, 32); err != nil {
			return nil, "", fmt.Errorf("bad ASN")
		}
		if cc == "" {
			return nil, "", fmt.Errorf("missing cc parameter")
		}
		return map[string]string{"AS": asn, "CC": cc}, cc, nil
	default:
		if cc == "" {
			return nil, "", fmt.Errorf("missing cc parameter")
		}
		return map[string]string{"Org": key, "CC": cc}, cc, nil
	}
}

// matchRow returns the index of the first row whose cells equal the
// selector, or -1. Cells compare in codec form, so int columns match
// their decimal strings.
func matchRow(f *source.Frame, sel map[string]string) int {
	cols := make([]*source.Column, 0, len(sel))
	want := make([]string, 0, len(sel))
	for name, v := range sel {
		c := f.Col(name)
		if c == nil {
			return -1
		}
		cols = append(cols, c)
		want = append(want, v)
	}
	for i := 0; i < f.Rows(); i++ {
		hit := true
		for j, c := range cols {
			if c.Cell(i) != want[j] {
				hit = false
				break
			}
		}
		if hit {
			return i
		}
	}
	return -1
}

// handleDatasetSeries serves a per-row time series for any dataset: the
// generic analogue of the legacy per-AS series route.
func (s *Server) handleDatasetSeries(w http.ResponseWriter, r *http.Request) {
	src, ok := s.lookupDataset(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	sel, cc, err := seriesSelector(src.Name(), r.PathValue("key"), q.Get("cc"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	from, to, step, ok := s.seriesRange(q, func(code int, msg string) { jsonError(w, code, msg) })
	if !ok {
		return
	}
	resp := GenericSeriesResponse{Dataset: src.Name(), Key: r.PathValue("key"), Country: cc}
	for _, d := range dates.Range(from, to, step) {
		f, err := s.reg.Frame(src.Name(), d)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err.Error())
			return
		}
		i := matchRow(f, sel)
		if i < 0 {
			continue
		}
		vals := map[string]float64{}
		for _, c := range f.Cols {
			if _, isKey := sel[c.Name]; isKey {
				continue
			}
			switch c.Kind {
			case source.Int:
				vals[c.Name] = float64(c.Ints[i])
			case source.Float:
				vals[c.Name] = c.Floats[i]
			}
		}
		resp.Points = append(resp.Points, GenericSeriesPoint{Date: d.String(), Values: vals})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// seriesRange parses and clips the shared from/to/step query parameters,
// reporting errors through fail (legacy routes pass http.Error, generic
// routes pass jsonError).
func (s *Server) seriesRange(q url.Values, fail func(int, string)) (from, to dates.Date, step int, ok bool) {
	var err error
	from, to = s.first, s.last
	if v := q.Get("from"); v != "" {
		if from, err = dates.Parse(v); err != nil {
			fail(http.StatusBadRequest, "bad from date")
			return
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = dates.Parse(v); err != nil {
			fail(http.StatusBadRequest, "bad to date")
			return
		}
	}
	if from.After(to) {
		// This used to fall through and return a silently empty series,
		// indistinguishable from "row not present" — reject it instead.
		fail(http.StatusBadRequest, "from is after to")
		return
	}
	step = 1
	if v := q.Get("step"); v != "" {
		if step, err = strconv.Atoi(v); err != nil || step < 1 {
			fail(http.StatusBadRequest, "bad step")
			return
		}
	}
	if from.Before(s.first) {
		from = s.first
	}
	if to.After(s.last) {
		to = s.last
	}
	if from.After(to) { // requested window entirely outside the served range
		fail(http.StatusBadRequest, "range does not overlap the served dates")
		return
	}
	const maxPoints = 120
	if span := to.Sub(from)/step + 1; span > maxPoints {
		fail(http.StatusBadRequest, fmt.Sprintf("too many points (max %d); raise step or narrow the range", maxPoints))
		return
	}
	return from, to, step, true
}

// SeriesPoint is one day of the per-AS series response.
type SeriesPoint struct {
	Date    string  `json:"date"`
	Users   float64 `json:"users"`
	Samples int64   `json:"samples"`
}

// SeriesResponse is the /v1/series body.
type SeriesResponse struct {
	ASN     uint32        `json:"asn"`
	Country string        `json:"cc"`
	Points  []SeriesPoint `json:"points"`
}

// handleSeries serves the per-(country, AS) daily series — the view the
// paper's footnote 2 links for Bouygues Telecom on the real site. It is
// the legacy alias of /v1/apnic/series/{asn}; its response shape and
// error strings are pinned by the byte-identity tests.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("asn")
	if !strings.HasPrefix(name, "AS") {
		http.Error(w, "want /v1/series/AS<asn>", http.StatusNotFound)
		return
	}
	asn64, err := strconv.ParseUint(strings.TrimPrefix(name, "AS"), 10, 32)
	if err != nil {
		http.Error(w, "bad ASN", http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	cc := q.Get("cc")
	if cc == "" {
		http.Error(w, "missing cc parameter", http.StatusBadRequest)
		return
	}
	from, to, step, ok := s.seriesRange(q, func(code int, msg string) { http.Error(w, msg, code) })
	if !ok {
		return
	}

	resp := SeriesResponse{ASN: uint32(asn64), Country: cc}
	key := seriesKey{resp.ASN, cc}
	for _, d := range dates.Range(from, to, step) {
		if i, ok := s.rowIndex(d)[key]; ok {
			row := s.report(d).Rows[i]
			resp.Points = append(resp.Points, SeriesPoint{
				Date: d.String(), Users: row.Users, Samples: row.Samples,
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// DateRange is the /v1/dates response body.
type DateRange struct {
	First string `json:"first"`
	Last  string `json:"last"`
}

func (s *Server) handleDates(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(DateRange{First: s.first.String(), Last: s.last.String()})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("date")
	if !strings.HasSuffix(name, ".csv") {
		http.Error(w, "want /v1/reports/<YYYY-MM-DD>.csv", http.StatusNotFound)
		return
	}
	d, err := dates.Parse(strings.TrimSuffix(name, ".csv"))
	if err != nil {
		http.Error(w, "bad date", http.StatusBadRequest)
		return
	}
	if d.Before(s.first) || d.After(s.last) {
		http.Error(w, "date out of served range", http.StatusNotFound)
		return
	}
	body, hash, err := s.render(d)
	if err != nil {
		// The old handler swallowed err here, leaving operators with an
		// opaque 500 and no counter to alert on.
		s.renderErrs.Inc()
		if s.Log != nil {
			s.Log.Printf("render error date=%s err=%q", d, err)
		}
		http.Error(w, "report generation failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	// The identity body stays the cached native render, byte-identical to
	// the pre-conditional server; the "legacy" repr keys a separate gzip
	// cache slot because these bytes differ from the frame-CSV codec's.
	s.serveImmutable(w, r, immutableBody{
		repr:        "legacy",
		dataset:     apnic.DatasetName,
		day:         d,
		contentType: "text/csv; charset=utf-8",
		hash:        hash,
		body:        body,
		fail: func(code int, msg string) {
			s.renderErrs.Inc()
			http.Error(w, msg, code)
		},
	})
}

func (s *Server) render(d dates.Date) ([]byte, string, error) {
	day := s.csv.Get(d, func() csvDay {
		var b strings.Builder
		if err := s.writeCSV(s.report(d), &b); err != nil {
			// Rendering is deterministic in (seed, date), so a failure
			// would recur on every attempt; caching it is sound — and
			// repeat requests must see the same error, not a flap.
			return csvDay{err: err}
		}
		body := []byte(b.String())
		// Hash once at fill: the legacy route's canonical artifact is the
		// body itself, so its validator comes from the bytes, not a frame.
		return csvDay{body: body, etag: bodyHash(body)}
	})
	return day.body, day.etag, day.err
}

// errBodyLimit caps how much of a non-200 response body the client reads
// into an error message; errDrainLimit caps how much more it will drain
// to keep the connection reusable before giving up and closing it.
const (
	errBodyLimit  = 1 << 10
	errDrainLimit = 64 << 10
)

// Client fetches reports from a server. It retries transient failures
// (connection errors, 429, 5xx) with exponential backoff through
// obsv.RetryTransport; see Retry.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout. Its transport
	// is wrapped with the retrying transport on first use.
	HTTPClient *http.Client
	// Retry overrides the default retry policy (4 attempts, 100ms base
	// backoff). Set before first use.
	Retry obsv.RetryPolicy
	// Metrics, when non-nil, receives per-attempt client metrics
	// (httpclient_attempts_total, httpclient_retries_total, ...).
	Metrics *obsv.Registry
	// Log, when non-nil, gets one line per retry with delay and cause.
	Log *log.Logger

	once sync.Once
	c    *http.Client
}

func (c *Client) http() *http.Client {
	c.once.Do(func() {
		base := c.HTTPClient
		if base == nil {
			base = &http.Client{Timeout: 30 * time.Second}
		}
		wrapped := *base // shallow copy so we never mutate the caller's client
		wrapped.Transport = &obsv.RetryTransport{
			Base:    base.Transport,
			Policy:  c.Retry,
			Metrics: c.Metrics,
			Log:     c.Log,
		}
		c.c = &wrapped
	})
	return c.c
}

// errorf reads a bounded snippet of a non-200 response body for the
// error message, then drains (bounded) so the connection can be reused.
// The old client closed the body unread, which killed keep-alive on
// every error response.
func errorf(u string, resp *http.Response) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
	io.Copy(io.Discard, io.LimitReader(resp.Body, errDrainLimit))
	msg := strings.TrimSpace(string(snippet))
	if msg == "" {
		return fmt.Errorf("apnicweb: GET %s: %s", u, resp.Status)
	}
	return fmt.Errorf("apnicweb: GET %s: %s: %s", u, resp.Status, msg)
}

// Dates fetches the served date range.
func (c *Client) Dates(ctx context.Context) (first, last dates.Date, err error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/dates")
	if err != nil {
		return first, last, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return first, last, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return first, last, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return first, last, errorf(u, resp)
	}
	var dr DateRange
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return first, last, fmt.Errorf("apnicweb: decoding dates: %w", err)
	}
	// The decoder stops at the closing brace; drain the trailing newline
	// so the connection goes back to the keep-alive pool.
	io.Copy(io.Discard, io.LimitReader(resp.Body, errDrainLimit))
	if first, err = dates.Parse(dr.First); err != nil {
		return first, last, err
	}
	last, err = dates.Parse(dr.Last)
	return first, last, err
}

// Report fetches and parses one day's report.
func (c *Client) Report(ctx context.Context, d dates.Date) (*apnic.Report, error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/reports/", d.String()+".csv")
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorf(u, resp)
	}
	rep, err := apnic.ReadCSV(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("apnicweb: parsing %s: %w", d, err)
	}
	return rep, nil
}

// DatasetDates fetches one dataset's served range and cadence from the
// generic /v1/{dataset}/dates route.
func (c *Client) DatasetDates(ctx context.Context, dataset string) (DatasetDates, error) {
	var dd DatasetDates
	u, err := url.JoinPath(c.BaseURL, "/v1/", dataset, "/dates")
	if err != nil {
		return dd, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return dd, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return dd, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dd, errorf(u, resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dd); err != nil {
		return dd, fmt.Errorf("apnicweb: decoding %s dates: %w", dataset, err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, errDrainLimit))
	return dd, nil
}

// Frame fetches and parses one dataset-day from the generic CSV route.
func (c *Client) Frame(ctx context.Context, dataset string, d dates.Date) (*source.Frame, error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/", dataset, "/reports/", d.String()+".csv")
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorf(u, resp)
	}
	f, err := source.ReadCSV(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("apnicweb: parsing %s %s: %w", dataset, d, err)
	}
	return f, nil
}

// FrameJSON fetches and parses one dataset-day from the generic JSON
// route (the bare-date representation).
func (c *Client) FrameJSON(ctx context.Context, dataset string, d dates.Date) (*source.Frame, error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/", dataset, "/reports/", d.String())
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorf(u, resp)
	}
	f, err := source.ReadJSON(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("apnicweb: parsing %s %s: %w", dataset, d, err)
	}
	return f, nil
}

// FrameBin fetches one dataset-day over the binary representation and
// zero-copy decodes it: the returned frame aliases the response buffer,
// so the fetch costs one body read plus a constant number of
// allocations, regardless of row count. It negotiates via the Accept
// header rather than the .bin path suffix, exercising the content-type
// route a proxying client would use.
func (c *Client) FrameBin(ctx context.Context, dataset string, d dates.Date) (*source.Frame, error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/", dataset, "/reports/", d.String())
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", binfmt.ContentType)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorf(u, resp)
	}
	if ct := resp.Header.Get("Content-Type"); ct != binfmt.ContentType {
		return nil, fmt.Errorf("apnicweb: GET %s: server answered %q, not %q", u, ct, binfmt.ContentType)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("apnicweb: reading %s %s: %w", dataset, d, err)
	}
	f, err := binfmt.Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("apnicweb: decoding %s %s: %w", dataset, d, err)
	}
	return f, nil
}

// FrameBinz fetches one dataset-day over the compressed binary
// representation and decodes it. Like FrameBin it negotiates via the
// Accept header; unlike FrameBin the returned frame owns its memory
// (framez decode is self-contained), so the response buffer is garbage
// the moment decoding returns. The server never gzips this
// representation, so the body read is the wire transfer.
func (c *Client) FrameBinz(ctx context.Context, dataset string, d dates.Date) (*source.Frame, error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/", dataset, "/reports/", d.String())
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", framez.ContentType)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorf(u, resp)
	}
	if ct := resp.Header.Get("Content-Type"); ct != framez.ContentType {
		return nil, fmt.Errorf("apnicweb: GET %s: server answered %q, not %q", u, ct, framez.ContentType)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("apnicweb: reading %s %s: %w", dataset, d, err)
	}
	f, err := framez.Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("apnicweb: decoding %s %s: %w", dataset, d, err)
	}
	return f, nil
}
