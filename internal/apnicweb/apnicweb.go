// Package apnicweb serves and fetches APNIC-style daily reports over
// HTTP, mirroring how the real dataset is published on
// stats.labs.apnic.net and consumed by research pipelines. The server
// exposes generated CSV reports with daily cache semantics; the client
// downloads and parses them back into apnic.Report values.
//
// Endpoints:
//
//	GET /v1/reports/<YYYY-MM-DD>.csv           one day's report as CSV
//	GET /v1/dates                              served date range, JSON
//	GET /v1/series/AS<asn>?cc=XX&from=&to=&step=   per-AS time series, JSON
//	    (the footnote-2 per-ASN view of stats.labs.apnic.net)
//	GET /healthz                               liveness probe
package apnicweb

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/syncx"
)

// Server serves generated reports for a date range.
//
// Day artifacts are cached with per-day singleflight entries: concurrent
// requests for the same day share one generation, requests for distinct
// days generate in parallel. (The old coarse-mutex version could either
// serialize the whole request path or, when naively double-checked,
// generate the same day twice under load.)
type Server struct {
	gen   *apnic.Generator
	first dates.Date
	last  dates.Date

	reports syncx.Cache[dates.Date, *apnic.Report] // generated reports per day
	csv     syncx.Cache[dates.Date, csvDay]        // rendered CSV per day

	genCalls atomic.Int64 // report generations; equals distinct days served
}

type csvDay struct {
	body []byte
	err  error
}

// NewServer returns a server for [first, last].
func NewServer(gen *apnic.Generator, first, last dates.Date) *Server {
	return &Server{gen: gen, first: first, last: last}
}

// report returns the (cached) generated report for a day, generating it
// at most once even when many requests race on a cold day.
func (s *Server) report(d dates.Date) *apnic.Report {
	return s.reports.Get(d, func() *apnic.Report {
		s.genCalls.Add(1)
		return s.gen.Generate(d)
	})
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/dates", s.handleDates)
	mux.HandleFunc("GET /v1/reports/", s.handleReport)
	mux.HandleFunc("GET /v1/series/", s.handleSeries)
	return mux
}

// SeriesPoint is one day of the per-AS series response.
type SeriesPoint struct {
	Date    string  `json:"date"`
	Users   float64 `json:"users"`
	Samples int64   `json:"samples"`
}

// SeriesResponse is the /v1/series body.
type SeriesResponse struct {
	ASN     uint32        `json:"asn"`
	Country string        `json:"cc"`
	Points  []SeriesPoint `json:"points"`
}

// handleSeries serves the per-(country, AS) daily series — the view the
// paper's footnote 2 links for Bouygues Telecom on the real site.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/series/")
	if !strings.HasPrefix(name, "AS") {
		http.Error(w, "want /v1/series/AS<asn>", http.StatusNotFound)
		return
	}
	asn64, err := strconv.ParseUint(strings.TrimPrefix(name, "AS"), 10, 32)
	if err != nil {
		http.Error(w, "bad ASN", http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	cc := q.Get("cc")
	if cc == "" {
		http.Error(w, "missing cc parameter", http.StatusBadRequest)
		return
	}
	from, to := s.first, s.last
	if v := q.Get("from"); v != "" {
		if from, err = dates.Parse(v); err != nil {
			http.Error(w, "bad from date", http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = dates.Parse(v); err != nil {
			http.Error(w, "bad to date", http.StatusBadRequest)
			return
		}
	}
	step := 1
	if v := q.Get("step"); v != "" {
		if step, err = strconv.Atoi(v); err != nil || step < 1 {
			http.Error(w, "bad step", http.StatusBadRequest)
			return
		}
	}
	if from.Before(s.first) {
		from = s.first
	}
	if to.After(s.last) {
		to = s.last
	}
	const maxPoints = 120
	if span := to.Sub(from)/step + 1; span > maxPoints {
		http.Error(w, fmt.Sprintf("too many points (max %d); raise step or narrow the range", maxPoints), http.StatusBadRequest)
		return
	}

	resp := SeriesResponse{ASN: uint32(asn64), Country: cc}
	for _, d := range dates.Range(from, to, step) {
		rep := s.report(d)
		for _, row := range rep.Rows {
			if row.ASN == resp.ASN && row.CC == cc {
				resp.Points = append(resp.Points, SeriesPoint{
					Date: d.String(), Users: row.Users, Samples: row.Samples,
				})
				break
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// DateRange is the /v1/dates response body.
type DateRange struct {
	First string `json:"first"`
	Last  string `json:"last"`
}

func (s *Server) handleDates(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(DateRange{First: s.first.String(), Last: s.last.String()})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/reports/")
	if !strings.HasSuffix(name, ".csv") {
		http.Error(w, "want /v1/reports/<YYYY-MM-DD>.csv", http.StatusNotFound)
		return
	}
	d, err := dates.Parse(strings.TrimSuffix(name, ".csv"))
	if err != nil {
		http.Error(w, "bad date", http.StatusBadRequest)
		return
	}
	if d.Before(s.first) || d.After(s.last) {
		http.Error(w, "date out of served range", http.StatusNotFound)
		return
	}
	body, err := s.render(d)
	if err != nil {
		http.Error(w, "report generation failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Cache-Control", "public, max-age=86400")
	w.Write(body)
}

func (s *Server) render(d dates.Date) ([]byte, error) {
	day := s.csv.Get(d, func() csvDay {
		var b strings.Builder
		if err := s.report(d).WriteCSV(&b); err != nil {
			// Rendering is deterministic in (seed, date), so a failure
			// would recur on every attempt; caching it is sound.
			return csvDay{err: err}
		}
		return csvDay{body: []byte(b.String())}
	})
	return day.body, day.err
}

// Client fetches reports from a server.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Dates fetches the served date range.
func (c *Client) Dates(ctx context.Context) (first, last dates.Date, err error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/dates")
	if err != nil {
		return first, last, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return first, last, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return first, last, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return first, last, fmt.Errorf("apnicweb: GET %s: %s", u, resp.Status)
	}
	var dr DateRange
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return first, last, fmt.Errorf("apnicweb: decoding dates: %w", err)
	}
	if first, err = dates.Parse(dr.First); err != nil {
		return first, last, err
	}
	last, err = dates.Parse(dr.Last)
	return first, last, err
}

// Report fetches and parses one day's report.
func (c *Client) Report(ctx context.Context, d dates.Date) (*apnic.Report, error) {
	u, err := url.JoinPath(c.BaseURL, "/v1/reports/", d.String()+".csv")
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("apnicweb: GET %s: %s", u, resp.Status)
	}
	rep, err := apnic.ReadCSV(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("apnicweb: parsing %s: %w", d, err)
	}
	return rep, nil
}
