package apnicweb

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dates"
	"repro/internal/source"
	"repro/internal/stream"
)

// TestHeadStreamingRoutes is the regression test for HEAD falling
// through to the streaming render: Go 1.22 "GET /..." patterns also
// match HEAD, and the old serveImmutable rendered (or aborted on) a
// full body. HEAD must answer the same negotiated headers as GET with
// no body — even when the underlying renderer would fail, because HEAD
// never renders.
func TestHeadStreamingRoutes(t *testing.T) {
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	// Poison the streaming seams: any attempt to render a body on the
	// HEAD path shows up as a failure.
	srv.writeFrameCSV = func(*source.Frame, io.Writer) error {
		return errors.New("HEAD must not render")
	}
	srv.writeFrameJSON = func(*source.Frame, io.Writer) error {
		return errors.New("HEAD must not render")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// net/http's transport asks for gzip on GET but never on HEAD; use an
	// identity-only client so both methods negotiate the same variant and
	// their validators must agree.
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	for _, path := range []string{
		"/v1/apnic/reports/2024-04-21.csv",
		"/v1/apnic/reports/2024-04-21",
	} {
		resp, err := client.Head(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HEAD %s status = %d", path, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Fatalf("HEAD %s returned %d body bytes", path, len(body))
		}
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("HEAD %s has no ETag", path)
		}
		if ct := resp.Header.Get("Content-Type"); ct == "" {
			t.Fatalf("HEAD %s has no Content-Type", path)
		}
		// The validator must be the one GET serves: a conditional GET with
		// the HEAD's ETag revalidates to 304 without rendering.
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", etag)
		resp2, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp2.Body)
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusNotModified {
			t.Fatalf("GET %s with HEAD's ETag = %d, want 304", path, resp2.StatusCode)
		}
	}
}

// TestHeadGzipAndLegacyRoutes covers the negotiated-encoding headers on
// HEAD and the legacy materialized route.
func TestHeadGzipAndLegacyRoutes(t *testing.T) {
	ts, _ := testServer(t)
	req, err := http.NewRequest(http.MethodHead, ts.URL+"/v1/apnic/reports/2024-04-21.csv", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	resp, err := (&http.Client{Transport: tr}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD gzip status = %d", resp.StatusCode)
	}
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("HEAD gzip Content-Encoding = %q", enc)
	}
	if !strings.HasSuffix(resp.Header.Get("ETag"), `-csv.gz"`) {
		t.Fatalf("HEAD gzip ETag = %q, want the csv.gz variant", resp.Header.Get("ETag"))
	}

	// Legacy CSV HEAD: headers present, no body.
	resp, err = ts.Client().Head(ts.URL + "/v1/reports/2024-04-21.csv")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("legacy HEAD: status %d, %d body bytes", resp.StatusCode, len(body))
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("legacy HEAD has no ETag")
	}
}

// TestLiveEndpoint drives a real pipeline into a rolling estimator
// attached to the server and exercises the full /v1/live contract:
// 503 before attachment and before data, country filtering with global
// ranks, revision ETag + 304 revalidation, and the stream_* pipeline
// metrics visible on the same /metrics the server already serves.
func TestLiveEndpoint(t *testing.T) {
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Unattached: 503 with a JSON error.
	resp, err := ts.Client().Get(ts.URL + "/v1/live/FR")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unattached live status = %d, want 503", resp.StatusCode)
	}

	// Attached but empty: still 503.
	est := stream.NewRollingEstimator(testGen)
	srv.SetLive(est)
	resp, err = ts.Client().Get(ts.URL + "/v1/live/FR")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty live status = %d, want 503", resp.StatusCode)
	}

	// Stream one day through the pipeline, with the pipeline's metrics on
	// the server registry — the acceptance criterion is that per-stage
	// stream_* series land on the same /metrics scrape.
	d := dates.New(2024, 4, 21)
	p, err := stream.New(stream.Config{
		Source:    &stream.CountSource{Gen: testGen, From: d, Days: 1, Chunk: 512},
		Publisher: &stream.EstimatorSink{Est: est},
		Metrics:   srv.Metrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/live/FR")
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	var live LiveResponse
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live status = %d", resp.StatusCode)
	}
	if etag == "" || !strings.HasPrefix(etag, `"live-FR-`) {
		t.Fatalf("live ETag = %q", etag)
	}
	if live.Country != "FR" || live.Date != d.String() {
		t.Fatalf("live header = %+v", live)
	}
	if len(live.Rows) == 0 {
		t.Fatal("live FR estimate is empty after a full day drained")
	}

	// The drained stream must agree exactly with the batch dataset's FR
	// rows, global ranks included.
	want := testGen.Generate(d)
	var wantFR []LiveRow
	for _, row := range want.Rows {
		if row.CC != "FR" {
			continue
		}
		wantFR = append(wantFR, LiveRow{
			Rank: row.Rank, ASN: row.ASN, ASName: row.ASName,
			Users: row.Users, PctCC: row.PctCountry, Samples: row.Samples,
		})
	}
	if len(live.Rows) != len(wantFR) {
		t.Fatalf("live FR rows = %d, batch has %d", len(live.Rows), len(wantFR))
	}
	for i := range wantFR {
		if live.Rows[i] != wantFR[i] {
			t.Fatalf("live row %d:\n got  %+v\n want %+v", i, live.Rows[i], wantFR[i])
		}
	}

	// Revalidation: same revision → 304; new data → fresh ETag.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/live/FR", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp.StatusCode)
	}
	est.Observe(stream.Impression{Day: d, CC: "FR", ASN: 64500, Weight: 1})
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation revalidation status = %d, want 200", resp.StatusCode)
	}

	// The pipeline's ledger is scrapeable next to the serving metrics.
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"stream_accepted_total",
		"stream_batches_total",
		"stream_published_records_total",
		`stream_filtered_total{reason="bot"}`,
		`stream_queue_depth{stage="events"}`,
	} {
		if !strings.Contains(string(scrape), series) {
			t.Fatalf("/metrics is missing %s", series)
		}
	}
}

// TestLiveHead: HEAD on the live route carries the validator, no body.
func TestLiveHead(t *testing.T) {
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	est := stream.NewRollingEstimator(testGen)
	d := dates.New(2024, 4, 21)
	est.Observe(stream.Impression{Day: d, CC: "FR", ASN: 64500, Weight: 200})
	srv.SetLive(est)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Head(ts.URL + "/v1/live/FR")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("live HEAD: status %d, %d body bytes", resp.StatusCode, len(body))
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("live HEAD has no ETag")
	}
}
