package apnicweb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"repro/internal/apnic"
	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/world"
)

var (
	testW   = world.MustBuild(world.Config{Seed: 11})
	testGen = apnic.New(testW, itu.New(testW, 11), 11)
)

func testServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

func TestHealthz(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestDatesEndpoint(t *testing.T) {
	_, c := testServer(t)
	first, last, err := c.Dates(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first != dates.New(2024, 1, 1) || last != dates.New(2024, 12, 31) {
		t.Fatalf("range = %v..%v", first, last)
	}
}

func TestReportRoundTrip(t *testing.T) {
	_, c := testServer(t)
	d := dates.New(2024, 4, 21)
	got, err := c.Report(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	want := testGen.Generate(d)
	if got.Date != d || len(got.Rows) != len(want.Rows) {
		t.Fatalf("fetched %d rows for %v, want %d", len(got.Rows), got.Date, len(want.Rows))
	}
	for i := range want.Rows {
		if got.Rows[i].ASN != want.Rows[i].ASN || got.Rows[i].Samples != want.Rows[i].Samples {
			t.Fatalf("row %d differs: %+v vs %+v", i, got.Rows[i], want.Rows[i])
		}
	}
}

func TestReportCaching(t *testing.T) {
	ts, _ := testServer(t)
	d := dates.New(2024, 3, 3)
	var bodies [][]byte
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Get(ts.URL + "/v1/reports/" + d.String() + ".csv")
		if err != nil {
			t.Fatal(err)
		}
		if cc := resp.Header.Get("Cache-Control"); cc == "" {
			t.Error("missing Cache-Control header")
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/csv; charset=utf-8" {
			t.Errorf("Content-Type = %q", ct)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		bodies = append(bodies, body)
	}
	if string(bodies[0]) != string(bodies[1]) {
		t.Fatal("cached response differs from first render")
	}
}

func TestErrorPaths(t *testing.T) {
	ts, c := testServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/v1/reports/2024-04-21", http.StatusNotFound}, // missing .csv
		{"/v1/reports/not-a-date.csv", http.StatusBadRequest},
		{"/v1/reports/2030-01-01.csv", http.StatusNotFound}, // out of range
		{"/v1/nope", http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
	// Client surfaces out-of-range as an error.
	if _, err := c.Report(context.Background(), dates.New(2030, 1, 1)); err == nil {
		t.Error("out-of-range fetch should fail")
	}
}

func TestClientContextCancellation(t *testing.T) {
	_, c := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Report(ctx, dates.New(2024, 4, 21)); err == nil {
		t.Error("cancelled context should fail the fetch")
	}
}

func TestConcurrentFetches(t *testing.T) {
	_, c := testServer(t)
	d := dates.New(2024, 5, 5)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := c.Report(context.Background(), d)
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSeriesEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	// Find a real (cc, ASN) from a generated report.
	rep := testGen.Generate(dates.New(2024, 4, 10))
	row := rep.Rows[0]
	url := ts.URL + "/v1/series/AS" + itoa(row.ASN) + "?cc=" + row.CC + "&from=2024-04-08&to=2024-04-12"
	resp, err := ts.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr SeriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.ASN != row.ASN || sr.Country != row.CC {
		t.Fatalf("series identity = %+v", sr)
	}
	if len(sr.Points) != 5 {
		t.Fatalf("%d points, want 5", len(sr.Points))
	}
	for _, p := range sr.Points {
		if p.Users <= 0 || p.Samples <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestSeriesEndpointErrors(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/v1/series/1234?cc=FR", http.StatusNotFound},    // missing AS prefix
		{"/v1/series/ASxyz?cc=FR", http.StatusBadRequest}, // bad ASN
		{"/v1/series/AS1?cc=", http.StatusBadRequest},     // missing cc
		{"/v1/series/AS1?cc=FR&from=garbage", http.StatusBadRequest},
		{"/v1/series/AS1?cc=FR&step=0", http.StatusBadRequest},
		{"/v1/series/AS1?cc=FR", http.StatusBadRequest}, // full year: too many points
	}
	for _, tc := range cases {
		resp, err := ts.Client().Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func itoa(v uint32) string { return strconv.FormatUint(uint64(v), 10) }

// TestServerSingleflightHammer fires many concurrent requests at
// overlapping cold days — through the real HTTP handler — and verifies
// the generator ran exactly once per distinct day (singleflight), every
// response is served, and repeated days return byte-identical CSV.
func TestServerSingleflightHammer(t *testing.T) {
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	days := []string{"2024-03-01", "2024-03-02", "2024-03-03", "2024-03-04"}
	const goroutines = 32
	bodies := make([]map[string][]byte, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bodies[g] = map[string][]byte{}
			for i := 0; i < 3; i++ {
				for _, day := range days {
					resp, err := ts.Client().Get(ts.URL + "/v1/reports/" + day + ".csv")
					if err != nil {
						errs[g] = err
						return
					}
					b, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs[g] = err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs[g] = fmt.Errorf("GET %s: %s", day, resp.Status)
						return
					}
					bodies[g][day] = b
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	if st := srv.apnicSrc.CacheStats(); int(st.Gens) != len(days) {
		t.Errorf("generator ran %d times for %d distinct days; singleflight demands one each", st.Gens, len(days))
	} else if st.Len != len(days) {
		t.Errorf("report cache holds %d days, want %d", st.Len, len(days))
	}
	for g := 1; g < goroutines; g++ {
		for _, day := range days {
			if !bytes.Equal(bodies[g][day], bodies[0][day]) {
				t.Fatalf("goroutine %d saw different CSV bytes for %s", g, day)
			}
		}
	}
}

// TestServerRenderConcurrentDistinctDays drives render directly (below
// the HTTP layer) to confirm distinct cold days do not serialize on a
// global lock: total singleflight entries equal distinct days and each
// day's bytes are stable.
func TestServerRenderConcurrentDistinctDays(t *testing.T) {
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	days := make([]dates.Date, 8)
	for i := range days {
		days[i] = dates.New(2024, 6, 1+i)
	}
	var wg sync.WaitGroup
	out := make([][]byte, len(days))
	for i, d := range days {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _, err := srv.render(d)
			if err != nil {
				t.Errorf("render(%v): %v", d, err)
				return
			}
			out[i] = b
		}()
	}
	wg.Wait()
	if n := srv.apnicSrc.CacheStats().Gens; int(n) != len(days) {
		t.Errorf("generator ran %d times for %d distinct days", n, len(days))
	}
	for i, d := range days {
		again, _, err := srv.render(d)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out[i], again) {
			t.Errorf("day %v: cached render differs from first render", d)
		}
	}
}
