package apnicweb

import (
	"testing"

	"repro/internal/apnic"
	"repro/internal/dates"
)

// The series endpoint used to find each day's (ASN, CC) row with a
// linear scan over all rows — O(rows) comparisons per day per request.
// These benchmarks pit that scan against the per-report index the server
// now builds once per day. On the seed world (~10k rows/day) the index
// is ~3 orders of magnitude faster per lookup, which is the difference
// between a series request costing 120 map probes and 1.2M row
// comparisons.

var benchSink apnic.Row

func benchTarget(rep *apnic.Report) seriesKey {
	row := rep.Rows[len(rep.Rows)/2] // median-position row: typical scan cost
	return seriesKey{row.ASN, row.CC}
}

func BenchmarkSeriesLookupLinearScan(b *testing.B) {
	rep := testGen.Generate(dates.New(2024, 4, 10))
	key := benchTarget(rep)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, row := range rep.Rows {
			if row.ASN == key.asn && row.CC == key.cc {
				benchSink = row
				break
			}
		}
	}
}

func BenchmarkSeriesLookupIndexed(b *testing.B) {
	srv := NewServer(testGen, dates.New(2024, 1, 1), dates.New(2024, 12, 31))
	d := dates.New(2024, 4, 10)
	rep := srv.report(d)
	key := benchTarget(rep)
	srv.rowIndex(d) // build outside the timed region, as one request amortizes it
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx, ok := srv.rowIndex(d)[key]; ok {
			benchSink = rep.Rows[idx]
		}
	}
}
