package apnicweb

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dates"
	"repro/internal/source"
)

func multiServer(t *testing.T) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv := NewMultiServer(testW, 11, dates.New(2024, 1, 1), dates.New(2024, 12, 31), 30)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

var allDatasets = []string{"apnic", "cdn", "itu", "mlab", "dnscount", "broadband", "ixp"}

// TestAllDatasetsServed is the integration core of the roster contract:
// every dataset answers its dates route and serves one report, and the
// fetched frame round-trips through the client parser.
func TestAllDatasetsServed(t *testing.T) {
	srv, _, c := multiServer(t)
	d := dates.New(2024, 4, 21)
	if got := srv.Registry().Names(); len(got) != len(allDatasets) {
		t.Fatalf("registry serves %v", got)
	}
	for _, name := range allDatasets {
		dd, err := c.DatasetDates(context.Background(), name)
		if err != nil {
			t.Fatalf("%s dates: %v", name, err)
		}
		if dd.Dataset != name || dd.First != "2024-01-01" || dd.Last != "2024-12-31" || dd.Cadence == "" {
			t.Fatalf("%s dates = %+v", name, dd)
		}
		f, err := c.Frame(context.Background(), name, d)
		if err != nil {
			t.Fatalf("%s report: %v", name, err)
		}
		if f.Source != name || f.Rows() == 0 {
			t.Fatalf("%s frame: source=%q rows=%d", name, f.Source, f.Rows())
		}
		want, err := srv.Registry().Frame(name, d)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(want) {
			t.Fatalf("%s: fetched frame differs from generated frame", name)
		}
	}
}

// TestUnknownDatasetJSON404 is the satellite regression: an unknown
// dataset name must yield 404 with a JSON error body on every generic
// route family.
func TestUnknownDatasetJSON404(t *testing.T) {
	_, ts, _ := multiServer(t)
	for _, path := range []string{
		"/v1/nosuch/dates",
		"/v1/nosuch/reports/2024-04-21.csv",
		"/v1/nosuch/reports/2024-04-21",
		"/v1/nosuch/series/AS1?cc=FR",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("GET %s Content-Type = %q, want JSON", path, ct)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("GET %s body %q is not a JSON error", path, body)
		} else if !strings.Contains(eb.Error, "nosuch") {
			t.Errorf("GET %s error %q does not name the dataset", path, eb.Error)
		}
	}
}

// TestLegacyAliasesByteIdentical pins the compatibility contract: the
// legacy APNIC routes on the multi server return the exact bytes of the
// native render — unchanged by the registry rerouting.
func TestLegacyAliasesByteIdentical(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 4, 21)

	get := func(path string) []byte {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var wantCSV bytes.Buffer
	if err := srv.apnicSrc.Generator().Generate(d).WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if got := get("/v1/reports/" + d.String() + ".csv"); !bytes.Equal(got, wantCSV.Bytes()) {
		t.Error("legacy /v1/reports CSV differs from the native render")
	}

	wantDates, err := json.Marshal(DateRange{First: "2024-01-01", Last: "2024-12-31"})
	if err != nil {
		t.Fatal(err)
	}
	if got := get("/v1/dates"); !bytes.Equal(bytes.TrimSpace(got), wantDates) {
		t.Errorf("legacy /v1/dates = %q, want %q", got, wantDates)
	}

	// The series alias must serve the same bytes as an APNIC-only server
	// built over the same generator.
	row := srv.apnicSrc.Generator().Generate(d).Rows[0]
	q := "/v1/series/AS" + itoa(row.ASN) + "?cc=" + row.CC + "&from=2024-04-20&to=2024-04-22"
	solo := httptest.NewServer(NewServer(srv.apnicSrc.Generator(), dates.New(2024, 1, 1), dates.New(2024, 12, 31)).Handler())
	defer solo.Close()
	soloResp, err := http.Get(solo.URL + q)
	if err != nil {
		t.Fatal(err)
	}
	soloBody, _ := io.ReadAll(soloResp.Body)
	soloResp.Body.Close()
	if got := get(q); !bytes.Equal(got, soloBody) {
		t.Errorf("legacy series alias differs:\n%q\nvs\n%q", got, soloBody)
	}
}

// TestGenericSeries exercises the generalized series route across three
// key shapes: apnic (AS + cc), itu (country key), cdn (org + cc).
func TestGenericSeries(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 4, 10)

	getSeries := func(path string) GenericSeriesResponse {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		var sr GenericSeriesResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	rep := srv.apnicSrc.Generator().Generate(d)
	row := rep.Rows[0]
	sr := getSeries("/v1/apnic/series/AS" + itoa(row.ASN) + "?cc=" + row.CC + "&from=2024-04-10&to=2024-04-10")
	if len(sr.Points) != 1 {
		t.Fatalf("apnic series: %+v", sr)
	}
	if got := sr.Points[0].Values["Estimated Users"]; got != row.Users {
		t.Errorf("apnic series users = %v, want %v", got, row.Users)
	}

	sr = getSeries("/v1/itu/series/FR?from=2024-04-10&to=2024-04-10")
	if len(sr.Points) != 1 || sr.Points[0].Values["Users"] <= 0 {
		t.Fatalf("itu series: %+v", sr)
	}

	// Any (country, org) present in the CDN snapshot works as a key.
	f, err := srv.Registry().Frame("cdn", d)
	if err != nil {
		t.Fatal(err)
	}
	cc, org := f.Col("CC").Strs[0], f.Col("Org").Strs[0]
	sr = getSeries("/v1/cdn/series/" + org + "?cc=" + cc + "&from=2024-04-10&to=2024-04-10")
	if len(sr.Points) != 1 {
		t.Fatalf("cdn series: %+v", sr)
	}
	if _, ok := sr.Points[0].Values["Bytes"]; !ok {
		t.Errorf("cdn series point lacks Bytes: %+v", sr.Points[0])
	}

	// Missing cc on an org-keyed dataset is a 400.
	resp, err := ts.Client().Get(ts.URL + "/v1/cdn/series/" + org)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cc-less cdn series = %d, want 400", resp.StatusCode)
	}
}

// TestDatasetReportJSON checks the bare-date route serves the frame as
// JSON and it parses back equal.
func TestDatasetReportJSON(t *testing.T) {
	srv, ts, _ := multiServer(t)
	d := dates.New(2024, 2, 2)
	resp, err := ts.Client().Get(ts.URL + "/v1/dnscount/reports/" + d.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	f, err := source.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.Registry().Frame("dnscount", d)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(want) {
		t.Fatal("JSON frame differs from generated frame")
	}
}
