package apnicweb

// Conditional GETs and response compression for the report routes.
//
// Every dataset-day is a pure function of (seed, date): once generated
// its bytes never change, which makes the report routes ideal for strong
// validators. The server derives an ETag from the frame's content hash
// (internal/source's ContentHash — computable from the in-memory frame
// without rendering a body), suffixed by the representation variant
// ("csv", "csv.gz", "json", ...) so a strong tag never aliases two
// different byte streams. If-None-Match is evaluated with the RFC 9110
// weak comparison (W/ prefixes ignored, "*" matches anything), so a 304
// costs one LRU lookup and zero rendering.
//
// Compression is negotiated from Accept-Encoding (q-values honored).
// Gzip bodies are rendered once per (representation, dataset, day) into a
// bounded LRU — the "pre-compressed hot-day cache" — and always from the
// cached frame, never from a live client stream, so a client that
// disconnects mid-response can never poison the cache with a truncated
// body. Identity CSV/JSON responses stream row-by-row instead (see
// streamBody in apnicweb.go) and are deliberately not byte-cached.

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"

	"repro/internal/source/binfmt"
	"repro/internal/source/framez"
)

// etagMatch reports whether any entity tag in an If-None-Match header
// value matches etag, using the weak comparison If-None-Match requires
// (RFC 9110 §13.1.2): W/ prefixes are ignored on both sides and "*"
// matches any current representation. A missing header never matches.
func etagMatch(ifNoneMatch, etag string) bool {
	ifNoneMatch = strings.TrimSpace(ifNoneMatch)
	if ifNoneMatch == "" {
		return false
	}
	if ifNoneMatch == "*" {
		return true
	}
	want := strings.TrimPrefix(etag, "W/")
	// Our tags are quoted hex with no embedded commas, so a comma split is
	// an exact field separation for any list a client can echo back.
	for _, tag := range strings.Split(ifNoneMatch, ",") {
		tag = strings.TrimSpace(tag)
		tag = strings.TrimPrefix(tag, "W/")
		if tag == want {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the request's Accept-Encoding header
// permits a gzip-coded response: a "gzip" (or "*") entry whose q-value is
// not zero. An absent header means identity only — proxies that strip
// Accept-Encoding must get uncompressed bytes.
func acceptsGzip(acceptEncoding string) bool {
	for _, part := range strings.Split(acceptEncoding, ",") {
		coding, params, _ := strings.Cut(part, ";")
		coding = strings.ToLower(strings.TrimSpace(coding))
		if coding != "gzip" && coding != "x-gzip" && coding != "*" {
			continue
		}
		if q, ok := qValue(params); ok && q == 0 {
			if coding != "*" {
				return false // explicit "gzip;q=0" refusal
			}
			continue // "*;q=0" refuses the wildcard, not gzip itself
		}
		return true
	}
	return false
}

// acceptsFrameBin reports whether the request's Accept header asks for
// the binary frame representation: an application/x-frame-bin member
// whose q-value is not zero. The wildcard types text routes default to
// (*/*, application/*) deliberately do NOT select binary — a browser
// must keep getting JSON; only a client that names the media type opts
// into the binary plane.
func acceptsFrameBin(accept string) bool {
	return acceptsMediaType(accept, binfmt.ContentType)
}

// acceptsFrameBinz is the same opt-in for the compressed binary
// representation (application/x-frame-binz). A client naming both frame
// media types gets binz: it asked for the denser plane.
func acceptsFrameBinz(accept string) bool {
	return acceptsMediaType(accept, framez.ContentType)
}

func acceptsMediaType(accept, want string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, params, _ := strings.Cut(part, ";")
		if !strings.EqualFold(strings.TrimSpace(mediaType), want) {
			continue
		}
		if q, ok := qValue(params); ok && q == 0 {
			return false // explicit refusal
		}
		return true
	}
	return false
}

// qValue parses the q parameter out of an Accept-Encoding member's
// parameter string (";q=0.5"). Returns ok=false when no q is present
// (which HTTP treats as q=1).
func qValue(params string) (float64, bool) {
	for _, p := range strings.Split(params, ";") {
		k, v, found := strings.Cut(strings.TrimSpace(p), "=")
		if !found || !strings.EqualFold(strings.TrimSpace(k), "q") {
			continue
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || q < 0 {
			return 1, true // malformed q: keep the coding acceptable
		}
		return q, true
	}
	return 0, false
}

// bodyHash returns the content hash of an already-rendered body, in the
// same hex shape as source.Frame.ContentHash, for routes (the legacy
// APNIC CSV) whose canonical artifact is the byte body rather than a
// frame.
func bodyHash(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:16])
}
