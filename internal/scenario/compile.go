package scenario

import (
	"math"

	"repro/internal/dates"
)

// Compiled is the world-construction view of a scenario: events bucketed
// per country and converted to integer day/week keys, so the generators'
// hot loops (per-(org, day) sampling) pay one nil check for unaffected
// countries and a short slice scan otherwise — never a map lookup on a
// string or a date comparison through dates.Date.
type Compiled struct {
	scn  *Scenario
	byCC map[string]*CountryShocks
	vpn  []stepFactor
}

// stepFactor is one open-ended multiplicative step: the factor applies
// from day number from on.
type stepFactor struct {
	from   int
	factor float64
}

// regime is one shutdown-rate override over [from, to] day numbers.
type regime struct {
	from, to int
	rate     float64
}

// CountryShocks is one country's compiled event view. A nil *CountryShocks
// means the scenario does not touch the country at all.
type CountryShocks struct {
	sampling []stepFactor    // ad exits + CGNAT, ordered by from day
	spikes   map[int]float64 // ITU week index → guaranteed factor
	regimes  []regime        // shutdown overrides, ordered by from day
}

// Compile validates a scenario and builds its per-country view. A nil
// scenario compiles the paper baseline.
func Compile(s *Scenario) (*Compiled, error) {
	if s == nil {
		s = Paper()
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{scn: s, byCC: map[string]*CountryShocks{}}
	shocks := func(cc string) *CountryShocks {
		sh := c.byCC[cc]
		if sh == nil {
			sh = &CountryShocks{}
			c.byCC[cc] = sh
		}
		return sh
	}
	for _, e := range s.AdExits {
		sh := shocks(e.Country)
		sh.sampling = append(sh.sampling, stepFactor{from: e.From.DayNumber(), factor: e.Factor})
	}
	for _, e := range s.CGNAT {
		sh := shocks(e.Country)
		sh.sampling = append(sh.sampling, stepFactor{from: e.From.DayNumber(), factor: e.Factor})
	}
	for _, e := range s.Spikes {
		sh := shocks(e.Country)
		if sh.spikes == nil {
			sh.spikes = map[int]float64{}
		}
		sh.spikes[dates.WeekIndex(e.Week)] = e.Factor
	}
	for _, e := range s.Shutdowns {
		sh := shocks(e.Country)
		to := math.MaxInt
		if e.To != (dates.Date{}) {
			to = e.To.DayNumber()
		}
		sh.regimes = append(sh.regimes, regime{from: e.From.DayNumber(), to: to, rate: e.Rate})
	}
	for _, e := range s.VPNSurges {
		c.vpn = append(c.vpn, stepFactor{from: e.From.DayNumber(), factor: e.Factor})
	}
	return c, nil
}

// MustCompile is Compile for literals known to be valid; it panics on error.
func MustCompile(s *Scenario) *Compiled {
	c, err := Compile(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Scenario returns the compiled scenario's source description.
func (c *Compiled) Scenario() *Scenario { return c.scn }

// Name returns the scenario name.
func (c *Compiled) Name() string { return c.scn.Name }

// Country returns the compiled shocks for one country, or nil when the
// scenario leaves it untouched. The result is immutable and shared.
func (c *Compiled) Country(cc string) *CountryShocks { return c.byCC[cc] }

// Countries returns the shocked country codes, sorted.
func (c *Compiled) Countries() []string { return sortedCodes(c.byCC) }

// Mergers returns the per-country merger overrides.
func (c *Compiled) Mergers() map[string]MergerOverride {
	out := make(map[string]MergerOverride, len(c.scn.Mergers))
	for _, m := range c.scn.Mergers {
		out[m.Country] = m
	}
	return out
}

// Entrants returns the scenario's new-entrant orgs in declaration order.
func (c *Compiled) Entrants() []Entrant { return c.scn.Entrants }

// VPNFactor returns the funnel multiplier active on a day (1 when no
// surge applies).
func (c *Compiled) VPNFactor(d dates.Date) float64 {
	if len(c.vpn) == 0 {
		return 1
	}
	f := 1.0
	dn := d.DayNumber()
	for _, s := range c.vpn {
		if dn >= s.from {
			f *= s.factor
		}
	}
	return f
}

// SamplingFactor returns the product of the country's active ad-sampling
// multipliers on a day number: 1 before any event, the event factors
// afterwards. The paper's Russia exit compiles to exactly one step, so the
// hot loop's `reach *= factor` reproduces the historical float math.
func (sh *CountryShocks) SamplingFactor(dayNumber int) float64 {
	f := 1.0
	for _, s := range sh.sampling {
		if dayNumber >= s.from {
			f *= s.factor
		}
	}
	return f
}

// HasSampling reports whether any ad-sampling event targets the country.
func (sh *CountryShocks) HasSampling() bool { return len(sh.sampling) > 0 }

// RegistrySpike returns the guaranteed ITU anomaly factor for a week
// index, if one is scheduled.
func (sh *CountryShocks) RegistrySpike(week int) (float64, bool) {
	f, ok := sh.spikes[week]
	return f, ok
}

// HasShutdownRegime reports whether any shutdown override targets the
// country — the cheap gate before per-day rate resolution.
func (sh *CountryShocks) HasShutdownRegime() bool { return len(sh.regimes) > 0 }

// ShutdownRate resolves the country's effective shutdown rate on a day
// number: the last declared regime covering the day wins, the baseline
// applies outside every regime.
func (sh *CountryShocks) ShutdownRate(dayNumber int, baseline float64) float64 {
	rate := baseline
	for _, r := range sh.regimes {
		if dayNumber >= r.from && dayNumber <= r.to {
			rate = r.rate
		}
	}
	return rate
}
