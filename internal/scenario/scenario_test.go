package scenario

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dates"
)

func TestPaperValidatesAndCompiles(t *testing.T) {
	p := Paper()
	if err := p.Validate(); err != nil {
		t.Fatalf("Paper() must validate: %v", err)
	}
	c := MustCompile(p)
	if c.Name() != "paper" {
		t.Fatalf("name = %q", c.Name())
	}

	// Russia's ads pause: one sampling step of exactly 0.25 from
	// 2022-03-10 — the constant the apnic package used to hard-code.
	ru := c.Country("RU")
	if ru == nil || !ru.HasSampling() {
		t.Fatal("paper scenario must shock RU sampling")
	}
	pause := dates.New(2022, 3, 10)
	if f := ru.SamplingFactor(pause.AddDays(-1).DayNumber()); f != 1 {
		t.Errorf("RU factor before pause = %v, want 1", f)
	}
	if f := ru.SamplingFactor(pause.DayNumber()); f != 0.25 {
		t.Errorf("RU factor at pause = %v, want exactly 0.25", f)
	}

	// France's registry spike: guaranteed in the week of 2019-05-13 only.
	fr := c.Country("FR")
	if fr == nil {
		t.Fatal("paper scenario must shock FR")
	}
	wk := dates.WeekIndex(dates.New(2019, 5, 13))
	if f, ok := fr.RegistrySpike(wk); !ok || f != 1.10 {
		t.Errorf("FR spike week = (%v, %v), want (1.10, true)", f, ok)
	}
	if _, ok := fr.RegistrySpike(wk + 1); ok {
		t.Error("FR must not spike the following week")
	}

	// CH and DE merger overrides with probability 1.
	m := c.Mergers()
	if m["CH"].Year != 2020 || m["CH"].Probability != 1 {
		t.Errorf("CH override = %+v", m["CH"])
	}
	if m["DE"].Year != 2019 || m["DE"].Probability != 1 {
		t.Errorf("DE override = %+v", m["DE"])
	}

	// No shutdown regimes, surges or entrants: Myanmar's baseline rate
	// lives in the geo registry, not here.
	if len(p.Shutdowns) != 0 || len(p.VPNSurges) != 0 || len(p.Entrants) != 0 {
		t.Error("paper scenario must not carry counterfactual events")
	}
	if f := c.VPNFactor(dates.New(2024, 1, 1)); f != 1 {
		t.Errorf("paper VPN factor = %v, want 1", f)
	}
}

func TestBuiltinsValidate(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Builtins() {
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %s: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate builtin name %s", s.Name)
		}
		names[s.Name] = true
	}
	if Builtins()[0].Name != "paper" {
		t.Error("paper must be first in the roster")
	}
	if _, ok := ByName("cgnat-wave"); !ok {
		t.Error("ByName must find cgnat-wave")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName must miss unknown names")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		want string
	}{
		{"missing name", Scenario{}, "missing name"},
		{"unknown country", Scenario{Name: "x",
			AdExits: []AdMarketExit{{Country: "XX", From: dates.New(2022, 1, 1), Factor: 0.5}}}, "unknown country"},
		{"ad factor zero", Scenario{Name: "x",
			AdExits: []AdMarketExit{{Country: "RU", From: dates.New(2022, 1, 1), Factor: 0}}}, "out of (0,1]"},
		{"ad factor above one", Scenario{Name: "x",
			AdExits: []AdMarketExit{{Country: "RU", From: dates.New(2022, 1, 1), Factor: 1.5}}}, "out of (0,1]"},
		{"invalid date", Scenario{Name: "x",
			AdExits: []AdMarketExit{{Country: "RU", From: dates.Date{Year: 2022, Month: 13, Day: 1}, Factor: 0.5}}}, "invalid date"},
		{"spike factor low", Scenario{Name: "x",
			Spikes: []RegistrySpike{{Country: "FR", Week: dates.New(2019, 5, 13), Factor: 1.0}}}, "out of (1,2]"},
		{"shutdown rate high", Scenario{Name: "x",
			Shutdowns: []ShutdownRegime{{Country: "MM", From: dates.New(2022, 1, 1), Rate: 1.3}}}, "shutdown rate"},
		{"shutdown range inverted", Scenario{Name: "x",
			Shutdowns: []ShutdownRegime{{Country: "MM", From: dates.New(2022, 6, 1), To: dates.New(2022, 1, 1), Rate: 0.2}}}, "bad range"},
		{"cgnat factor", Scenario{Name: "x",
			CGNAT: []CGNATRollout{{Country: "BR", From: dates.New(2022, 1, 1), Factor: 2}}}, "out of (0,1]"},
		{"vpn surge factor", Scenario{Name: "x",
			VPNSurges: []VPNSurge{{From: dates.New(2022, 1, 1), Factor: 11}}}, "out of (0,10]"},
		{"merger probability", Scenario{Name: "x",
			Mergers: []MergerOverride{{Country: "CH", Year: 2020, Probability: 1.5}}}, "probability"},
		{"merger year", Scenario{Name: "x",
			Mergers: []MergerOverride{{Country: "CH", Year: 1999, Probability: 1}}}, "year"},
		{"duplicate merger", Scenario{Name: "x",
			Mergers: []MergerOverride{
				{Country: "CH", Year: 2020, Probability: 1},
				{Country: "CH", Year: 2021, Probability: 1}}}, "duplicate merger"},
		{"entrant bad name", Scenario{Name: "x",
			Entrants: []Entrant{{Name: "gs", Home: "US", EntryYear: 2021, Weight: 0.1}}}, "entrant name"},
		{"entrant unknown home", Scenario{Name: "x",
			Entrants: []Entrant{{Name: "SAT-ONE", Home: "XX", EntryYear: 2021, Weight: 0.1}}}, "unknown country"},
		{"entrant duplicate country", Scenario{Name: "x",
			Entrants: []Entrant{{Name: "SAT-ONE", Home: "US", Countries: []string{"US"}, EntryYear: 2021, Weight: 0.1}}}, "duplicate country"},
		{"entrant weight", Scenario{Name: "x",
			Entrants: []Entrant{{Name: "SAT-ONE", Home: "US", EntryYear: 2021, Weight: 0}}}, "weight"},
		{"entrant mobile share", Scenario{Name: "x",
			Entrants: []Entrant{{Name: "SAT-ONE", Home: "US", EntryYear: 2021, Weight: 0.1, MobileShare: 1.2}}}, "mobile share"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCompileViews(t *testing.T) {
	s := &Scenario{
		Name: "views",
		AdExits: []AdMarketExit{
			{Country: "BR", From: dates.New(2022, 1, 1), Factor: 0.5},
		},
		CGNAT: []CGNATRollout{
			{Country: "BR", From: dates.New(2023, 1, 1), Factor: 0.1},
		},
		Shutdowns: []ShutdownRegime{
			{Country: "MM", From: dates.New(2022, 1, 1), To: dates.New(2022, 12, 31), Rate: 0.5},
			{Country: "IR", From: dates.New(2022, 6, 1), Rate: 0.3}, // open-ended
		},
		VPNSurges: []VPNSurge{
			{From: dates.New(2022, 1, 1), Factor: 2},
			{From: dates.New(2023, 1, 1), Factor: 1.5},
		},
	}
	c := MustCompile(s)

	br := c.Country("BR")
	if f := br.SamplingFactor(dates.New(2021, 12, 31).DayNumber()); f != 1 {
		t.Errorf("BR 2021 factor = %v", f)
	}
	if f := br.SamplingFactor(dates.New(2022, 6, 1).DayNumber()); f != 0.5 {
		t.Errorf("BR 2022 factor = %v, want 0.5", f)
	}
	// Overlapping events compose multiplicatively.
	if f := br.SamplingFactor(dates.New(2023, 6, 1).DayNumber()); math.Abs(f-0.05) > 1e-15 {
		t.Errorf("BR 2023 factor = %v, want 0.05", f)
	}

	mm := c.Country("MM")
	if r := mm.ShutdownRate(dates.New(2021, 6, 1).DayNumber(), 0.1); r != 0.1 {
		t.Errorf("MM outside regime = %v, want baseline 0.1", r)
	}
	if r := mm.ShutdownRate(dates.New(2022, 6, 1).DayNumber(), 0.1); r != 0.5 {
		t.Errorf("MM inside regime = %v, want 0.5", r)
	}
	if r := mm.ShutdownRate(dates.New(2023, 6, 1).DayNumber(), 0.1); r != 0.1 {
		t.Errorf("MM after regime = %v, want baseline again", r)
	}
	ir := c.Country("IR")
	if r := ir.ShutdownRate(dates.New(2030, 1, 1).DayNumber(), 0); r != 0.3 {
		t.Errorf("IR open-ended regime = %v, want 0.3", r)
	}

	if f := c.VPNFactor(dates.New(2021, 1, 1)); f != 1 {
		t.Errorf("VPN 2021 = %v", f)
	}
	if f := c.VPNFactor(dates.New(2022, 6, 1)); f != 2 {
		t.Errorf("VPN 2022 = %v", f)
	}
	if f := c.VPNFactor(dates.New(2023, 6, 1)); f != 3 {
		t.Errorf("VPN 2023 = %v, want 2*1.5", f)
	}

	if c.Country("FR") != nil {
		t.Error("untouched country must compile to nil shocks")
	}
	got := c.Countries()
	want := []string{"BR", "IR", "MM"}
	if len(got) != len(want) {
		t.Fatalf("Countries() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Countries() = %v, want %v", got, want)
		}
	}
}

func TestCompileNilIsPaper(t *testing.T) {
	c, err := Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "paper" {
		t.Errorf("nil scenario compiled to %q, want paper", c.Name())
	}
}

func TestLoaderRoundTrip(t *testing.T) {
	doc := `{
		"name": "loaded",
		"notes": "a test scenario",
		"ad_exits": [{"country": "RU", "from": "2022-03-10", "factor": 0.25}],
		"registry_spikes": [{"country": "FR", "week": "2019-05-13", "factor": 1.1}],
		"shutdown_regimes": [{"country": "MM", "from": "2023-01-01", "to": "2023-06-30", "rate": 0.4}],
		"cgnat_rollouts": [{"country": "BR", "from": "2022-01-01", "factor": 0.05}],
		"vpn_surges": [{"from": "2022-06-01", "factor": 3}],
		"mergers": [{"country": "CH", "year": 2020, "probability": 1}],
		"entrants": [{"name": "GLOBALSAT", "home": "US", "countries": ["AU", "BR"],
			"entry_year": 2021, "weight": 0.02, "mobile_share": 0.3}]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "loaded" || len(s.AdExits) != 1 || len(s.Entrants) != 1 {
		t.Fatalf("parsed = %+v", s)
	}
	if s.AdExits[0].From != dates.New(2022, 3, 10) {
		t.Errorf("ad exit date = %v", s.AdExits[0].From)
	}
	if s.Shutdowns[0].To != dates.New(2023, 6, 30) {
		t.Errorf("shutdown to = %v", s.Shutdowns[0].To)
	}
	if _, err := Compile(s); err != nil {
		t.Fatalf("loaded scenario must compile: %v", err)
	}
}

func TestLoaderStrictness(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown field", `{"name": "x", "surprise": 1}`},
		{"bad date", `{"name": "x", "ad_exits": [{"country": "RU", "from": "2022/03/10", "factor": 0.5}]}`},
		{"missing date", `{"name": "x", "ad_exits": [{"country": "RU", "factor": 0.5}]}`},
		{"out of bounds", `{"name": "x", "ad_exits": [{"country": "RU", "from": "2022-03-10", "factor": 7}]}`},
		{"unknown country", `{"name": "x", "cgnat_rollouts": [{"country": "ZZ", "from": "2022-01-01", "factor": 0.5}]}`},
		{"trailing data", `{"name": "x"} {"name": "y"}`},
		{"not json", `name: x`},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil {
			t.Errorf("%s: loader accepted invalid document", tc.name)
		}
	}
}
