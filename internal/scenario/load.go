package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/dates"
)

// The wire format is deliberately separate from the in-memory types:
// dates travel as "YYYY-MM-DD" strings, unknown fields are rejected, and
// every decoded scenario passes the same Validate() a struct literal
// would — a config file cannot reach a state a literal could not.

type wireScenario struct {
	Name      string         `json:"name"`
	Notes     string         `json:"notes,omitempty"`
	AdExits   []wireAdExit   `json:"ad_exits,omitempty"`
	Spikes    []wireSpike    `json:"registry_spikes,omitempty"`
	Shutdowns []wireShutdown `json:"shutdown_regimes,omitempty"`
	CGNAT     []wireCGNAT    `json:"cgnat_rollouts,omitempty"`
	VPNSurges []wireVPNSurge `json:"vpn_surges,omitempty"`
	Mergers   []wireMerger   `json:"mergers,omitempty"`
	Entrants  []wireEntrant  `json:"entrants,omitempty"`
}

type wireAdExit struct {
	Country string  `json:"country"`
	From    string  `json:"from"`
	Factor  float64 `json:"factor"`
}

type wireSpike struct {
	Country string  `json:"country"`
	Week    string  `json:"week"`
	Factor  float64 `json:"factor"`
}

type wireShutdown struct {
	Country string  `json:"country"`
	From    string  `json:"from"`
	To      string  `json:"to,omitempty"`
	Rate    float64 `json:"rate"`
}

type wireCGNAT struct {
	Country string  `json:"country"`
	From    string  `json:"from"`
	Factor  float64 `json:"factor"`
}

type wireVPNSurge struct {
	From   string  `json:"from"`
	Factor float64 `json:"factor"`
}

type wireMerger struct {
	Country     string  `json:"country"`
	Year        int     `json:"year"`
	Probability float64 `json:"probability"`
}

type wireEntrant struct {
	Name        string   `json:"name"`
	Home        string   `json:"home"`
	Countries   []string `json:"countries,omitempty"`
	EntryYear   int      `json:"entry_year"`
	Weight      float64  `json:"weight"`
	MobileShare float64  `json:"mobile_share"`
}

// Decode reads one scenario from JSON with strict validation: unknown
// fields, malformed dates, out-of-bounds factors and unknown countries
// are all errors, and trailing data after the document is rejected.
func Decode(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var w wireScenario
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after document")
	}
	s, err := w.toScenario()
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Parse decodes one scenario from a JSON byte slice.
func Parse(data []byte) (*Scenario, error) {
	return Decode(bytes.NewReader(data))
}

// LoadFile reads and validates a scenario from a JSON file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

func (w *wireScenario) toScenario() (*Scenario, error) {
	parse := func(field, v string) (dates.Date, error) {
		d, err := dates.Parse(v)
		if err != nil {
			return dates.Date{}, fmt.Errorf("scenario %s: %s: %w", w.Name, field, err)
		}
		return d, nil
	}
	s := &Scenario{Name: w.Name, Notes: w.Notes}
	for _, e := range w.AdExits {
		from, err := parse("ad_exits.from", e.From)
		if err != nil {
			return nil, err
		}
		s.AdExits = append(s.AdExits, AdMarketExit{Country: e.Country, From: from, Factor: e.Factor})
	}
	for _, e := range w.Spikes {
		week, err := parse("registry_spikes.week", e.Week)
		if err != nil {
			return nil, err
		}
		s.Spikes = append(s.Spikes, RegistrySpike{Country: e.Country, Week: week, Factor: e.Factor})
	}
	for _, e := range w.Shutdowns {
		from, err := parse("shutdown_regimes.from", e.From)
		if err != nil {
			return nil, err
		}
		var to dates.Date
		if e.To != "" {
			to, err = parse("shutdown_regimes.to", e.To)
			if err != nil {
				return nil, err
			}
		}
		s.Shutdowns = append(s.Shutdowns, ShutdownRegime{Country: e.Country, From: from, To: to, Rate: e.Rate})
	}
	for _, e := range w.CGNAT {
		from, err := parse("cgnat_rollouts.from", e.From)
		if err != nil {
			return nil, err
		}
		s.CGNAT = append(s.CGNAT, CGNATRollout{Country: e.Country, From: from, Factor: e.Factor})
	}
	for _, e := range w.VPNSurges {
		from, err := parse("vpn_surges.from", e.From)
		if err != nil {
			return nil, err
		}
		s.VPNSurges = append(s.VPNSurges, VPNSurge{From: from, Factor: e.Factor})
	}
	for _, e := range w.Mergers {
		s.Mergers = append(s.Mergers, MergerOverride{Country: e.Country, Year: e.Year, Probability: e.Probability})
	}
	for _, e := range w.Entrants {
		s.Entrants = append(s.Entrants, Entrant{
			Name:        e.Name,
			Home:        e.Home,
			Countries:   e.Countries,
			EntryYear:   e.EntryYear,
			Weight:      e.Weight,
			MobileShare: e.MobileShare,
		})
	}
	return s, nil
}
