// Package scenario is the declarative shock model behind world
// construction. The paper's §4.4 reliability arguments rest on three
// real-world events — Google pausing ads in Russia (March 2022), the
// France ITU revision spike (the week of 2019-05-13), and Myanmar's
// shutdown regime — which used to live as constants inside the apnic, itu
// and world packages. This package promotes them to *data*: a Scenario is
// a typed list of events applied to any seed at world-construction time,
// so the repro can stress the reliability checklist against shocks the
// paper never observed (CGNAT rollouts, VPN-adoption surges, a
// Starlink-style multi-country entrant) as well as the three it did.
//
// Paper() is the byte-pinned baseline: building a world with it (or with a
// nil scenario, which defaults to it) reproduces the pre-scenario worlds
// bit for bit. Every other scenario perturbs the geo registry's baseline
// fields; it never replaces them.
package scenario

import (
	"fmt"
	"regexp"
	"sort"

	"repro/internal/dates"
	"repro/internal/geo"
)

// Scenario is one named bundle of typed world events. The zero value is a
// valid empty scenario (a world with *no* special events — note that this
// is not the paper's world; use Paper() for that).
type Scenario struct {
	Name  string
	Notes string // free-form provenance / description

	// AdExits suppress ad sampling in a country from a date on — the
	// mechanism behind the Russia ads pause (§3.2, §4.4).
	AdExits []AdMarketExit

	// Spikes are guaranteed one-week registry anomalies in a country's
	// ITU series — the France 2019-05-13 event of Figure 1.
	Spikes []RegistrySpike

	// Shutdowns override a country's baseline shutdown rate during a date
	// range — regime changes on top of geo.Country.ShutdownRate.
	Shutdowns []ShutdownRegime

	// CGNAT models carrier-grade NAT rollouts: true users are unchanged
	// but per-user ad sampling collapses (many users behind few
	// addresses), inflating the users-per-sample ratio the elasticity
	// check watches.
	CGNAT []CGNATRollout

	// VPNSurges scale the Norway-style VPN funnel from a date on.
	VPNSurges []VPNSurge

	// Mergers force (or re-weight) the market-consolidation event in a
	// country — the Sunrise+UPC and Vodafone+Unitymedia analogues.
	Mergers []MergerOverride

	// Entrants inject new multi-country access orgs (a Starlink-style
	// operator: one org, prefixes registered at home, users everywhere).
	Entrants []Entrant
}

// AdMarketExit suppresses ad sampling in one country from a date on.
type AdMarketExit struct {
	Country string
	From    dates.Date
	// Factor multiplies the country's effective ad reach from From on
	// (0.25 = three quarters of impressions gone). Must be in (0, 1].
	Factor float64
}

// RegistrySpike is a guaranteed anomaly week in a country's ITU series.
type RegistrySpike struct {
	Country string
	Week    dates.Date // any day inside the spike week
	Factor  float64    // multiplier on the weekly estimate, in (1, 2]
}

// ShutdownRegime overrides a country's daily shutdown probability during
// [From, To]. A zero To leaves the regime open-ended.
type ShutdownRegime struct {
	Country string
	From    dates.Date
	To      dates.Date // zero = open-ended
	Rate    float64    // per-day shutdown probability, in [0, 1]
}

// CGNATRollout collapses per-user sampling in one country from a date on.
type CGNATRollout struct {
	Country string
	From    dates.Date
	// Factor multiplies per-user ad sampling from From on (0.05 = a
	// twentyfold user-per-sample inflation). Must be in (0, 1].
	Factor float64
}

// VPNSurge scales the VPN funnel total from a date on.
type VPNSurge struct {
	From   dates.Date
	Factor float64 // multiplier on VPNFunnelTotal, in (0, 10]
}

// MergerOverride pins the consolidation event for one country: with
// Probability 1 the merger is guaranteed in Year (the paper's CH and DE
// events); fractional probabilities re-weight the regional wave.
type MergerOverride struct {
	Country     string
	Year        int
	Probability float64
}

// Entrant is a new access org entering Home plus Countries in EntryYear.
// Its prefixes are registered in Home while its users are in each presence
// country — the satellite-operator geolocation bias, same shape as the VPN
// funnel but per-market.
type Entrant struct {
	Name        string   // org ID and display name; [A-Z0-9-], >= 3 chars
	Home        string   // home country (registration + headquarters)
	Countries   []string // additional presence countries
	EntryYear   int
	Weight      float64 // unnormalized market weight per presence country
	MobileShare float64 // fraction of users on mobile access, in [0, 1]
}

// entrantName keeps entrant org IDs out of the generated "CC-TAG-NN"
// namespace and safe for use in URLs and derivation labels.
var entrantName = regexp.MustCompile(`^[A-Z][A-Z0-9-]{2,31}$`)

// Validate checks every event against the geo registry and the bounds a
// world build assumes. Overridden per-country values are revalidated
// through geo.Country.Validate, so a scenario cannot smuggle in a rate the
// static registry itself would reject.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	country := func(kind, cc string) (geo.Country, error) {
		c, ok := geo.ByCode(cc)
		if !ok {
			return geo.Country{}, fmt.Errorf("scenario %s: %s: unknown country %q", s.Name, kind, cc)
		}
		return c, nil
	}
	for _, e := range s.AdExits {
		if _, err := country("ad-exit", e.Country); err != nil {
			return err
		}
		if !e.From.Valid() {
			return fmt.Errorf("scenario %s: ad-exit %s: invalid date %v", s.Name, e.Country, e.From)
		}
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("scenario %s: ad-exit %s: factor %v out of (0,1]", s.Name, e.Country, e.Factor)
		}
	}
	for _, e := range s.Spikes {
		if _, err := country("spike", e.Country); err != nil {
			return err
		}
		if !e.Week.Valid() {
			return fmt.Errorf("scenario %s: spike %s: invalid week %v", s.Name, e.Country, e.Week)
		}
		if e.Factor <= 1 || e.Factor > 2 {
			return fmt.Errorf("scenario %s: spike %s: factor %v out of (1,2]", s.Name, e.Country, e.Factor)
		}
	}
	for _, e := range s.Shutdowns {
		base, err := country("shutdown", e.Country)
		if err != nil {
			return err
		}
		if !e.From.Valid() {
			return fmt.Errorf("scenario %s: shutdown %s: invalid from %v", s.Name, e.Country, e.From)
		}
		if e.To != (dates.Date{}) && (!e.To.Valid() || e.To.Before(e.From)) {
			return fmt.Errorf("scenario %s: shutdown %s: bad range %v..%v", s.Name, e.Country, e.From, e.To)
		}
		// The overridden rate must satisfy the same registry bound as the
		// baseline it replaces.
		base.ShutdownRate = e.Rate
		if err := base.Validate(); err != nil {
			return fmt.Errorf("scenario %s: shutdown override: %w", s.Name, err)
		}
	}
	for _, e := range s.CGNAT {
		if _, err := country("cgnat", e.Country); err != nil {
			return err
		}
		if !e.From.Valid() {
			return fmt.Errorf("scenario %s: cgnat %s: invalid date %v", s.Name, e.Country, e.From)
		}
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("scenario %s: cgnat %s: factor %v out of (0,1]", s.Name, e.Country, e.Factor)
		}
	}
	for _, e := range s.VPNSurges {
		if !e.From.Valid() {
			return fmt.Errorf("scenario %s: vpn-surge: invalid date %v", s.Name, e.From)
		}
		if e.Factor <= 0 || e.Factor > 10 {
			return fmt.Errorf("scenario %s: vpn-surge: factor %v out of (0,10]", s.Name, e.Factor)
		}
	}
	seenMerger := map[string]bool{}
	for _, e := range s.Mergers {
		if _, err := country("merger", e.Country); err != nil {
			return err
		}
		if seenMerger[e.Country] {
			return fmt.Errorf("scenario %s: duplicate merger override for %s", s.Name, e.Country)
		}
		seenMerger[e.Country] = true
		if e.Probability < 0 || e.Probability > 1 {
			return fmt.Errorf("scenario %s: merger %s: probability %v out of [0,1]", s.Name, e.Country, e.Probability)
		}
		if e.Year < 2013 || e.Year > 2030 {
			return fmt.Errorf("scenario %s: merger %s: year %d out of [2013,2030]", s.Name, e.Country, e.Year)
		}
	}
	seenEntrant := map[string]bool{}
	for _, e := range s.Entrants {
		if !entrantName.MatchString(e.Name) {
			return fmt.Errorf("scenario %s: entrant name %q must match %s", s.Name, e.Name, entrantName)
		}
		if seenEntrant[e.Name] {
			return fmt.Errorf("scenario %s: duplicate entrant %q", s.Name, e.Name)
		}
		seenEntrant[e.Name] = true
		if _, err := country("entrant", e.Home); err != nil {
			return err
		}
		seenCC := map[string]bool{e.Home: true}
		for _, cc := range e.Countries {
			if _, err := country("entrant", cc); err != nil {
				return err
			}
			if seenCC[cc] {
				return fmt.Errorf("scenario %s: entrant %s: duplicate country %s", s.Name, e.Name, cc)
			}
			seenCC[cc] = true
		}
		if e.EntryYear < 2013 || e.EntryYear > 2030 {
			return fmt.Errorf("scenario %s: entrant %s: entry year %d out of [2013,2030]", s.Name, e.Name, e.EntryYear)
		}
		if e.Weight <= 0 || e.Weight > 1 {
			return fmt.Errorf("scenario %s: entrant %s: weight %v out of (0,1]", s.Name, e.Name, e.Weight)
		}
		if e.MobileShare < 0 || e.MobileShare > 1 {
			return fmt.Errorf("scenario %s: entrant %s: mobile share %v out of [0,1]", s.Name, e.Name, e.MobileShare)
		}
	}
	return nil
}

// Paper returns the scenario encoding exactly the events the paper
// documents — the byte-pinned baseline every golden test runs against.
// Building a world with it reproduces the pre-scenario-engine output bit
// for bit (Myanmar's shutdown regime needs no event here: it is the geo
// registry's *baseline* ShutdownRate, which scenarios perturb but the
// paper world keeps).
func Paper() *Scenario {
	return &Scenario{
		Name:  "paper",
		Notes: "the events documented in the source paper (§3.2, §4.4, §6, Figure 1)",
		AdExits: []AdMarketExit{
			// Google paused ads in Russia on 2022-03-10.
			{Country: "RU", From: dates.New(2022, 3, 10), Factor: 0.25},
		},
		Spikes: []RegistrySpike{
			// France's ITU series spiked ~+6M users the week of 2019-05-13.
			{Country: "FR", Week: dates.New(2019, 5, 13), Factor: 1.10},
		},
		Mergers: []MergerOverride{
			{Country: "CH", Year: 2020, Probability: 1}, // Sunrise + UPC
			{Country: "DE", Year: 2019, Probability: 1}, // Vodafone + Unitymedia
		},
	}
}

// Builtins returns the named scenario roster cmd/fleet sweeps: the paper
// baseline first, then counterfactual shocks chosen to stress different
// rows of the reliability checklist. Each non-paper scenario layers its
// events on top of the paper's (the Russia pause and France spike still
// happen; history is perturbed, not erased).
func Builtins() []*Scenario {
	counterfactual := func(name, notes string, mutate func(*Scenario)) *Scenario {
		s := Paper()
		s.Name = name
		s.Notes = notes
		mutate(s)
		return s
	}
	return []*Scenario{
		Paper(),
		counterfactual("cgnat-wave",
			"aggressive CGNAT rollouts in large mobile-first markets from 2022: samples collapse while true users are unchanged, inflating users-per-sample far above the elasticity band",
			func(s *Scenario) {
				s.CGNAT = []CGNATRollout{
					{Country: "BR", From: dates.New(2022, 1, 1), Factor: 0.05},
					{Country: "IN", From: dates.New(2022, 1, 1), Factor: 0.05},
					{Country: "ID", From: dates.New(2022, 6, 1), Factor: 0.08},
				}
			}),
		counterfactual("ad-blackout",
			"a Russia-style ads pause hitting Turkey and Brazil days before the Table 2 snapshot: country sample floors break and the mid-window cut destabilizes the 7-day share series",
			func(s *Scenario) {
				s.AdExits = append(s.AdExits,
					AdMarketExit{Country: "TR", From: dates.New(2024, 4, 18), Factor: 0.02},
					AdMarketExit{Country: "BR", From: dates.New(2024, 4, 18), Factor: 0.03},
				)
			}),
		counterfactual("shutdown-regimes",
			"an Iran-style shutdown wave plus a Myanmar escalation: window-averaged sampling is suppressed hard enough to break sample sufficiency",
			func(s *Scenario) {
				s.Shutdowns = []ShutdownRegime{
					{Country: "IR", From: dates.New(2022, 9, 15), To: dates.New(2024, 12, 31), Rate: 0.45},
					{Country: "MM", From: dates.New(2023, 1, 1), Rate: 0.40}, // open-ended escalation
				}
			}),
		counterfactual("vpn-surge",
			"VPN adoption triples the Norway funnel from mid-2022, widening the hub's APNIC-vs-CDN disagreement",
			func(s *Scenario) {
				s.VPNSurges = []VPNSurge{{From: dates.New(2022, 6, 1), Factor: 3}}
			}),
		counterfactual("starlink-entry",
			"a Starlink-style operator enters seven markets in 2021 with home-registered prefixes: IP geolocation credits its users to the US",
			func(s *Scenario) {
				s.Entrants = []Entrant{{
					Name:        "GLOBALSAT",
					Home:        "US",
					Countries:   []string{"AU", "BR", "CA", "DE", "GB", "NG", "PH"},
					EntryYear:   2021,
					Weight:      0.02,
					MobileShare: 0.3,
				}}
			}),
	}
}

// ByName returns the builtin scenario with the given name.
func ByName(name string) (*Scenario, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Names returns the builtin scenario names in roster order.
func Names() []string {
	bs := Builtins()
	out := make([]string, len(bs))
	for i, s := range bs {
		out[i] = s.Name
	}
	return out
}

// sortedCodes returns a deterministic iteration order for per-country maps.
func sortedCodes(m map[string]*CountryShocks) []string {
	out := make([]string, 0, len(m))
	for cc := range m {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}
