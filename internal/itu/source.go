package itu

import (
	"fmt"
	"sort"

	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/source"
)

// DatasetName is the registry name of the ITU per-country estimate series.
const DatasetName = "itu"

// Table is the day-keyed native artifact of the estimator: every
// country's estimate for the week containing Date. The estimator itself
// exposes only point lookups (Users), so the table is what gives the ITU
// series a Generate-shaped entry point for the source registry.
type Table struct {
	Date  dates.Date
	Users map[string]float64 // country -> estimated Internet users
}

// Generate collects the full per-country table for the week containing d.
// Every country of the world appears, including zero-user ones, so a
// frame consumer sees the same domain as direct Users calls.
func (e *Estimator) Generate(d dates.Date) *Table {
	t := &Table{Date: d, Users: map[string]float64{}}
	for _, cc := range e.w.Countries() {
		t.Users[cc] = e.Users(cc, d)
	}
	return t
}

// Total returns the table's world total, matching WorldTotal for the
// table's date.
func (t *Table) Total() float64 {
	total := 0.0
	for _, v := range t.Users {
		total += v
	}
	return total
}

// Frame converts the table to the uniform columnar form, one row per
// country sorted by code. Lossless: TableFromFrame reconstructs an equal
// table.
func (t *Table) Frame() *source.Frame {
	ccs := make([]string, 0, len(t.Users))
	for cc := range t.Users {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	f := source.NewFrame(DatasetName, t.Date)
	cc := f.AddStrings("CC")
	users := f.AddFloats("Users")
	for _, c := range ccs {
		cc.Strs = append(cc.Strs, c)
		users.Floats = append(users.Floats, t.Users[c])
	}
	return f
}

// TableFromFrame reconstructs the native table from its frame form.
func TableFromFrame(f *source.Frame) (*Table, error) {
	cc, users := f.Col("CC"), f.Col("Users")
	if cc == nil || users == nil {
		return nil, fmt.Errorf("itu: frame is missing table columns")
	}
	t := &Table{Date: f.Date, Users: make(map[string]float64, f.Rows())}
	for i := 0; i < f.Rows(); i++ {
		t.Users[cc.Strs[i]] = users.Floats[i]
	}
	return t, nil
}

// Source adapts the estimator to the uniform source interface, caching
// the native tables day-keyed.
type Source struct {
	est  *Estimator
	days *source.Days[*Table]
}

// NewSource wraps an estimator as a registrable source.
func NewSource(est *Estimator, metrics *obsv.Registry, cacheDays int) *Source {
	return &Source{
		est:  est,
		days: source.NewDays[*Table](metrics, "source", DatasetName, cacheDays),
	}
}

// Estimator returns the wrapped estimator.
func (s *Source) Estimator() *Estimator { return s.est }

// Name implements source.Source.
func (s *Source) Name() string { return DatasetName }

// Window implements source.Source.
func (s *Source) Window() source.Window {
	return source.Window{First: source.SpanFirst, Last: source.SpanLast, Cadence: source.CadenceWeekly}
}

// Table returns the memoized native table for a day.
func (s *Source) Table(d dates.Date) *Table {
	return s.days.Get(d, s.est.Generate)
}

// Generate implements source.Source.
func (s *Source) Generate(d dates.Date) *source.Frame {
	return s.Table(d).Frame()
}

// CacheStats reports the native table cache's activity.
func (s *Source) CacheStats() source.CacheStats { return s.days.Stats() }
