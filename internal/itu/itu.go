// Package itu simulates the ITU-T per-country Internet-user estimates that
// APNIC uses to normalize ad-impression counts into user populations
// (§3.2). The estimates track the ground truth with weekly revision noise,
// plus occasional large one-week anomalies — the paper's Figure 1 shows
// such an event for France on 2019-05-13, when the reported user total was
// 6 million higher than any other week of the decade. Because APNIC
// rescales every AS in a country by this denominator, a spike in the ITU
// series shows up as a synchronized jump in every AS's estimated users.
package itu

import (
	"repro/internal/dates"
	"repro/internal/rng"
	"repro/internal/world"
)

// Estimator produces the simulated ITU weekly user-estimate series.
type Estimator struct {
	w    *world.World
	root *rng.Stream

	// noiseSigma is the weekly multiplicative revision noise (log scale).
	noiseSigma float64
}

// New returns an estimator over the given world. Different seeds give
// different revision-noise realizations.
func New(w *world.World, seed uint64) *Estimator {
	return &Estimator{
		w:          w,
		root:       rng.New(seed).Split("itu"),
		noiseSigma: 0.012,
	}
}

// weekIndex is the revision granularity of the series: dates.WeekIndex,
// shared with the scenario engine so a declared spike week and the
// estimator agree on bucket boundaries.
func weekIndex(d dates.Date) int { return dates.WeekIndex(d) }

// Derivation channel keys for the weekly revision and anomaly streams.
const (
	chanRevision uint64 = iota + 1
	chanSpike
)

// Users returns the ITU-style estimate of a country's Internet users for
// the week containing d.
func (e *Estimator) Users(country string, d dates.Date) float64 {
	base := e.w.TotalUsers(country, d)
	if base <= 0 {
		return 0
	}
	// TotalUsers > 0 implies the market exists.
	key := e.w.Market(country).Key()
	wk := weekIndex(d)
	s := e.root.Derive(chanRevision, key, uint64(int64(wk)))
	v := base * s.LogNormal(0, e.noiseSigma)
	if f := e.spikeFactor(country, key, wk); f != 1 {
		v *= f
	}
	return v
}

// spikeFactor returns the anomaly multiplier for a (country, week).
// Scenario registry-spike events are guaranteed (the paper world's France
// 2019-05-13 week, ≈ +6M users on a ~62M base); every country additionally
// has a small number of random anomaly weeks per decade. The guaranteed
// check precedes the random draw, exactly as the hard-coded France check
// did, and the derivation is stateless, so the random realization for
// every other week is unchanged.
func (e *Estimator) spikeFactor(country string, key uint64, wk int) float64 {
	if m := e.w.Market(country); m != nil {
		if sh := m.Shocks(); sh != nil {
			if f, ok := sh.RegistrySpike(wk); ok {
				return f
			}
		}
	}
	// Random anomalies: ~0.3% of weeks, i.e. roughly 1-2 per decade.
	s := e.root.Derive(chanSpike, key, uint64(int64(wk)))
	if s.Bool(0.003) {
		return s.Range(1.05, 1.2)
	}
	return 1
}

// WorldTotal returns the ITU-style estimate of all Internet users across
// every country in the world, used for APNIC's "% of Internet" column.
func (e *Estimator) WorldTotal(d dates.Date) float64 {
	total := 0.0
	for _, code := range e.w.Countries() {
		total += e.Users(code, d)
	}
	return total
}
