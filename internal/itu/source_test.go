package itu

import (
	"reflect"
	"testing"

	"repro/internal/dates"
)

// sampleDays spans the simulated decade, deliberately crossing week
// boundaries and the France 2019-05-13 anomaly week.
var sampleDays = []dates.Date{
	dates.New(2013, 11, 1),
	dates.New(2016, 2, 29),
	dates.New(2019, 5, 13),
	dates.New(2019, 5, 15),
	dates.New(2022, 3, 14),
	dates.New(2024, 12, 31),
}

// TestFrameMatchesDirectUsers pins the day-keyed adapter to the point
// API: for every (country, sampled day), the value read through the
// generated frame equals a direct Estimator.Users call.
func TestFrameMatchesDirectUsers(t *testing.T) {
	est := New(testW, 42)
	for _, d := range sampleDays {
		f := est.Generate(d).Frame()
		cc, users := f.Col("CC"), f.Col("Users")
		if cc == nil || users == nil {
			t.Fatalf("%s: frame missing columns", d)
		}
		byCC := make(map[string]float64, f.Rows())
		for i := 0; i < f.Rows(); i++ {
			byCC[cc.Strs[i]] = users.Floats[i]
		}
		countries := testW.Countries()
		if len(byCC) != len(countries) {
			t.Fatalf("%s: frame has %d countries; world has %d", d, len(byCC), len(countries))
		}
		for _, c := range countries {
			got, ok := byCC[c]
			if !ok {
				t.Fatalf("%s: frame is missing country %s", d, c)
			}
			if want := est.Users(c, d); got != want {
				t.Errorf("%s %s: frame Users = %v; direct call = %v", d, c, got, want)
			}
		}
	}
}

func TestTableRoundTripLossless(t *testing.T) {
	est := New(testW, 42)
	tab := est.Generate(dates.New(2019, 5, 13))
	back, err := TableFromFrame(tab.Frame())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, back) {
		t.Fatal("Table -> Frame -> Table changed the data")
	}
}

func TestTableTotalMatchesWorldTotal(t *testing.T) {
	est := New(testW, 42)
	d := dates.New(2020, 6, 1)
	got := est.Generate(d).Total()
	want := est.WorldTotal(d)
	// Summation order differs (map iteration vs sorted country order),
	// so allow float associativity slack.
	if diff := got - want; diff > 1e-6*want || diff < -1e-6*want {
		t.Fatalf("Table.Total() = %v; WorldTotal = %v", got, want)
	}
}
