package itu

import (
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 5})

func TestDeterminism(t *testing.T) {
	e1 := New(testW, 9)
	e2 := New(testW, 9)
	d := dates.New(2024, 3, 1)
	for _, c := range []string{"FR", "IN", "RU"} {
		if e1.Users(c, d) != e2.Users(c, d) {
			t.Fatalf("estimator not deterministic for %s", c)
		}
	}
}

func TestTracksGroundTruth(t *testing.T) {
	e := New(testW, 9)
	d := dates.New(2024, 3, 1)
	for _, c := range []string{"FR", "IN", "US", "VU"} {
		truth := testW.TotalUsers(c, d)
		est := e.Users(c, d)
		if est <= 0 {
			t.Fatalf("%s estimate non-positive", c)
		}
		if math.Abs(est-truth)/truth > 0.25 {
			t.Errorf("%s estimate %v strays from truth %v", c, est, truth)
		}
	}
}

func TestWeeklyGranularity(t *testing.T) {
	e := New(testW, 9)
	// Within one 7-day block the noise draw is constant, so day-to-day
	// changes reflect only the smooth ground-truth drift.
	a := e.Users("DE", dates.New(2024, 3, 4)) // Monday-anchored block
	b := e.Users("DE", dates.New(2024, 3, 5))
	rel := math.Abs(a-b) / a
	if rel > 0.001 {
		t.Errorf("intra-week jump of %v; noise should be weekly", rel)
	}
}

func TestFranceSpikeEvent(t *testing.T) {
	e := New(testW, 9)
	spike := e.Users("FR", dates.New(2019, 5, 13))
	// Compare against neighboring weeks.
	before := e.Users("FR", dates.New(2019, 4, 29))
	after := e.Users("FR", dates.New(2019, 6, 3))
	if spike < 1.06*before || spike < 1.06*after {
		t.Errorf("no France anomaly: before=%v spike=%v after=%v", before, spike, after)
	}
}

func TestSpikesAreRare(t *testing.T) {
	e := New(testW, 9)
	days := dates.Range(dates.New(2014, 1, 6), dates.New(2023, 12, 25), 7)
	for _, c := range []string{"DE", "US", "JP"} {
		spikes := 0
		var prev float64
		for i, d := range days {
			v := e.Users(c, d)
			if i > 0 && v > prev*1.05 {
				spikes++
			}
			prev = v
		}
		if spikes > 8 {
			t.Errorf("%s has %d spike weeks in a decade; should be rare", c, spikes)
		}
	}
}

func TestWorldTotal(t *testing.T) {
	e := New(testW, 9)
	d := dates.New(2024, 3, 1)
	total := e.WorldTotal(d)
	fr := e.Users("FR", d)
	if total <= fr {
		t.Fatal("world total must exceed a single country")
	}
	if total < 3e9 || total > 7e9 {
		t.Errorf("world total = %v, want a few billion", total)
	}
}
