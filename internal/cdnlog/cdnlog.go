// Package cdnlog implements the raw request-log layer beneath the
// aggregate CDN simulator: a log-record format carrying client IP,
// User-Agent, byte count and bot score; a sampler that synthesizes
// records by drawing real client addresses from the world's announced
// prefixes; and an aggregator that replays the paper's §3.4 pipeline —
// resolve the client ASN from BGP state, geolocate with the CDN's
// internal (true-country) view, drop requests scoring below the bot
// threshold, and reduce to per-(country, org) request, byte and distinct
// User-Agent counts.
//
// The aggregate cdn package generates these reductions directly for
// speed; this package exists so the attribution semantics — longest-
// prefix-match ASN resolution, VPN egress re-geolocation, sibling-AS
// merging — are exercised end to end at the record level.
package cdnlog

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/orgs"
)

// Record is one sampled HTTP request as logged at a CDN PoP.
type Record struct {
	Client    netip.Addr // client IP address
	Bytes     int64      // response bytes
	BotScore  int        // 1 (certain bot) .. 99 (certain human)
	UserAgent string     // raw User-Agent header
}

// fieldSep separates log fields; User-Agent is the final field and may
// contain anything except tabs and newlines.
const fieldSep = '\t'

// Append serializes the record as one log line (no trailing newline).
func (r Record) Append(buf []byte) []byte {
	buf = append(buf, r.Client.String()...)
	buf = append(buf, fieldSep)
	buf = strconv.AppendInt(buf, r.Bytes, 10)
	buf = append(buf, fieldSep)
	buf = strconv.AppendInt(buf, int64(r.BotScore), 10)
	buf = append(buf, fieldSep)
	buf = append(buf, r.UserAgent...)
	return buf
}

// String returns the log-line form.
func (r Record) String() string { return string(r.Append(nil)) }

// ParseRecord parses one log line.
func ParseRecord(line string) (Record, error) {
	var rec Record
	parts := strings.SplitN(line, string(fieldSep), 4)
	if len(parts) != 4 {
		return rec, fmt.Errorf("cdnlog: malformed record (want 4 fields, got %d)", len(parts))
	}
	addr, err := netip.ParseAddr(parts[0])
	if err != nil {
		return rec, fmt.Errorf("cdnlog: bad client address: %w", err)
	}
	bytes, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || bytes < 0 {
		return rec, fmt.Errorf("cdnlog: bad byte count %q", parts[1])
	}
	score, err := strconv.Atoi(parts[2])
	if err != nil || score < 1 || score > 99 {
		return rec, fmt.Errorf("cdnlog: bad bot score %q", parts[2])
	}
	rec.Client = addr
	rec.Bytes = bytes
	rec.BotScore = score
	rec.UserAgent = parts[3]
	return rec, nil
}

// Resolver maps a client address to its route (ASN + geolocation views).
// *netdb.DB satisfies it.
type Resolver interface {
	ASN(addr netip.Addr) uint32
	TrueCountry(addr netip.Addr) string
}

// PairStats is the aggregator's per-(country, org) reduction.
type PairStats struct {
	Requests int64 // human-classified sampled requests
	Bytes    int64 // bytes on human-classified requests
	Bots     int64 // requests dropped by the bot filter
	uas      map[string]struct{}
}

// UserAgents returns the number of distinct User-Agent strings observed
// on human-classified requests.
func (p *PairStats) UserAgents() int { return len(p.uas) }

// Aggregator reduces a stream of records to per-(country, org) stats.
type Aggregator struct {
	resolver     Resolver
	registry     *orgs.Registry
	botThreshold int

	stats      map[orgs.CountryOrg]*PairStats
	unrouted   int64
	unassigned int64 // routed but AS not in the org registry
}

// NewAggregator returns an aggregator using the CDN's attribution rules:
// ASN from the routing table, country from the internal true-location
// view, bot filter at the given score threshold (the paper keeps >= 50).
func NewAggregator(resolver Resolver, registry *orgs.Registry, botThreshold int) *Aggregator {
	return &Aggregator{
		resolver:     resolver,
		registry:     registry,
		botThreshold: botThreshold,
		stats:        map[orgs.CountryOrg]*PairStats{},
	}
}

// Add processes one record.
func (a *Aggregator) Add(rec Record) {
	asn := a.resolver.ASN(rec.Client)
	if asn == 0 {
		a.unrouted++
		return
	}
	org, ok := a.registry.ByASN(asn)
	if !ok {
		a.unassigned++
		return
	}
	country := a.resolver.TrueCountry(rec.Client)
	key := orgs.CountryOrg{Country: country, Org: org.ID}
	st := a.stats[key]
	if st == nil {
		st = &PairStats{uas: map[string]struct{}{}}
		a.stats[key] = st
	}
	if rec.BotScore < a.botThreshold {
		st.Bots++
		return
	}
	st.Requests++
	st.Bytes += rec.Bytes
	st.uas[rec.UserAgent] = struct{}{}
}

// ReadFrom consumes newline-separated log lines until EOF, skipping blank
// lines. It returns the number of parsed records and the first parse
// error encountered (parsing continues past bad lines, as a log pipeline
// must). Lines of any length are handled — a pathological User-Agent
// must not stall the feed — and a final line without a trailing newline
// still parses.
func (a *Aggregator) ReadFrom(r io.Reader) (parsed int64, firstErr error) {
	// bufio.Scanner is the obvious tool here, but its token limit turns
	// one oversized line into ErrTooLong and stops the whole scan — the
	// remaining (valid) records would be silently dropped. Read with
	// ReadSlice instead, accumulating continuation fragments, so an
	// arbitrarily long line costs at most one allocation and never
	// terminates the stream.
	br := bufio.NewReaderSize(r, 64*1024)
	var long []byte // continuation accumulator for lines longer than the buffer
	take := func(line []byte) {
		s := strings.TrimSuffix(string(line), "\n")
		s = strings.TrimSuffix(s, "\r") // scanner-compatible CRLF handling
		if s == "" {
			return
		}
		rec, err := ParseRecord(s)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		a.Add(rec)
		parsed++
	}
	for {
		frag, err := br.ReadSlice('\n')
		switch {
		case err == nil:
			if len(long) == 0 {
				take(frag)
			} else {
				long = append(long, frag...)
				take(long)
				long = long[:0]
			}
		case err == bufio.ErrBufferFull:
			long = append(long, frag...)
		case err == io.EOF:
			// Unterminated final line: parse what's left.
			if len(long) > 0 || len(frag) > 0 {
				take(append(long, frag...))
			}
			return parsed, firstErr
		default:
			if firstErr == nil {
				firstErr = err
			}
			return parsed, firstErr
		}
	}
}

// Stats returns the per-(country, org) reductions. The returned map is
// the aggregator's own state; callers must not mutate it while adding.
func (a *Aggregator) Stats() map[orgs.CountryOrg]*PairStats { return a.stats }

// Unrouted returns the number of records whose client had no route.
func (a *Aggregator) Unrouted() int64 { return a.unrouted }

// Unassigned returns the number of records routed to an unknown AS.
func (a *Aggregator) Unassigned() int64 { return a.unassigned }
