package cdnlog

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 11})

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{
		Client:    netip.MustParseAddr("192.0.2.7"),
		Bytes:     48213,
		BotScore:  88,
		UserAgent: "Mozilla/5.0 (X11; Linux x86_64) Chrome/124.0",
	}
	got, err := ParseRecord(rec.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("round trip: %+v != %+v", got, rec)
	}
}

func TestParseRecordRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"no-tabs-here",
		"1.2.3.4\tabc\t50\tUA",   // bad bytes
		"1.2.3.4\t100\t0\tUA",    // score out of range
		"1.2.3.4\t100\t100\tUA",  // score out of range
		"not-an-ip\t100\t50\tUA", // bad address
		"1.2.3.4\t-5\t50\tUA",    // negative bytes
		"1.2.3.4\t100\t50",       // missing UA field
	}
	for _, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) should fail", line)
		}
	}
}

// Property: every record serializes and parses back identically as long
// as the UA has no tabs or newlines.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(ip uint32, bytes uint32, score uint8, uaRaw string) bool {
		uaStr := strings.Map(func(r rune) rune {
			if r == '\t' || r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, uaRaw)
		rec := Record{
			Client:    netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}),
			Bytes:     int64(bytes),
			BotScore:  int(score%99) + 1,
			UserAgent: uaStr,
		}
		got, err := ParseRecord(rec.String())
		return err == nil && got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerAttribution(t *testing.T) {
	s := NewSampler(testW, 3)
	d := dates.New(2024, 4, 1)
	agg := NewAggregator(testW.DB, testW.Registry, 50)

	// Records for two French orgs must aggregate back to exactly those
	// (country, org) pairs.
	m := testW.Market("FR")
	var pairs []orgs.CountryOrg
	for _, e := range m.ActiveEntries(d)[:4] {
		pairs = append(pairs, orgs.CountryOrg{Country: "FR", Org: e.Org.ID})
	}
	perPair := 200
	for _, p := range pairs {
		recs := s.PairRecords(p, d, perPair)
		if len(recs) != perPair {
			t.Fatalf("%v: got %d records", p, len(recs))
		}
		for _, r := range recs {
			agg.Add(r)
		}
	}
	if agg.Unrouted() != 0 || agg.Unassigned() != 0 {
		t.Fatalf("unrouted=%d unassigned=%d", agg.Unrouted(), agg.Unassigned())
	}
	stats := agg.Stats()
	if len(stats) != len(pairs) {
		t.Fatalf("aggregated %d pairs, want %d: %v", len(stats), len(pairs), stats)
	}
	for _, p := range pairs {
		st, ok := stats[p]
		if !ok {
			t.Fatalf("pair %v lost in aggregation", p)
		}
		if st.Requests+st.Bots != int64(perPair) {
			t.Fatalf("%v: %d human + %d bots != %d", p, st.Requests, st.Bots, perPair)
		}
		if st.Requests == 0 || st.Bots == 0 {
			t.Errorf("%v: expected both humans (%d) and bots (%d)", p, st.Requests, st.Bots)
		}
		if st.UserAgents() == 0 || st.UserAgents() > int(st.Requests) {
			t.Errorf("%v: %d UAs over %d human requests", p, st.UserAgents(), st.Requests)
		}
		if st.Bytes <= 0 {
			t.Errorf("%v: no bytes", p)
		}
	}
}

func TestSamplerVPNGeolocation(t *testing.T) {
	// VPN records drawn for an origin country must carry addresses whose
	// registered country is the hub but true country is the origin — and
	// the aggregator must attribute them to the origin.
	s := NewSampler(testW, 3)
	d := dates.New(2024, 4, 1)
	vpn := testW.VPNOrgID
	var origin string
	for cc, share := range testW.VPNOrigins() {
		if share > 0 {
			origin = cc
			break
		}
	}
	if origin == "" {
		t.Fatal("no VPN origins")
	}
	pair := orgs.CountryOrg{Country: origin, Org: vpn}
	recs := s.PairRecords(pair, d, 50)
	if len(recs) == 0 {
		t.Fatal("no VPN records")
	}
	agg := NewAggregator(testW.DB, testW.Registry, 50)
	for _, r := range recs {
		if got := testW.DB.PublicCountry(r.Client); got != "NO" {
			t.Fatalf("VPN client %v publicly geolocates to %q, want NO", r.Client, got)
		}
		if got := testW.DB.TrueCountry(r.Client); got != origin {
			t.Fatalf("VPN client %v truly locates to %q, want %s", r.Client, got, origin)
		}
		agg.Add(r)
	}
	if _, ok := agg.Stats()[pair]; !ok {
		t.Fatalf("aggregator did not attribute VPN records to %v: %v", pair, agg.Stats())
	}
}

func TestBotThreshold(t *testing.T) {
	rec := Record{Client: firstClient(t), Bytes: 10, BotScore: 30, UserAgent: "curl/8"}
	strict := NewAggregator(testW.DB, testW.Registry, 50)
	strict.Add(rec)
	off := NewAggregator(testW.DB, testW.Registry, 0)
	off.Add(rec)

	var strictHuman, offHuman int64
	for _, st := range strict.Stats() {
		strictHuman += st.Requests
	}
	for _, st := range off.Stats() {
		offHuman += st.Requests
	}
	if strictHuman != 0 {
		t.Error("score-30 record should be filtered at threshold 50")
	}
	if offHuman != 1 {
		t.Error("threshold 0 should keep everything")
	}
}

// firstClient returns an address inside some announced prefix.
func firstClient(t *testing.T) netip.Addr {
	t.Helper()
	s := NewSampler(testW, 1)
	for _, ps := range s.byASN {
		if len(ps) > 0 {
			return addrIn(ps[0], rng.New(1))
		}
	}
	t.Fatal("no prefixes announced")
	return netip.Addr{}
}

func TestWriteDayReadFromRoundTrip(t *testing.T) {
	s := NewSampler(testW, 3)
	d := dates.New(2024, 4, 1)
	var buf bytes.Buffer
	written, err := s.WriteDay(&buf, "CH", d, 50)
	if err != nil {
		t.Fatal(err)
	}
	if written == 0 {
		t.Fatal("no records written")
	}
	agg := NewAggregator(testW.DB, testW.Registry, 50)
	parsed, err := agg.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != written {
		t.Fatalf("parsed %d of %d written records", parsed, written)
	}
	// Every pair must belong to Switzerland.
	for k := range agg.Stats() {
		if k.Country != "CH" {
			t.Errorf("pair %v leaked out of CH", k)
		}
	}
}

func TestReadFromSkipsBadLines(t *testing.T) {
	input := "garbage line\n" + Record{
		Client: firstClient(t), Bytes: 5, BotScore: 90, UserAgent: "x",
	}.String() + "\n\n"
	agg := NewAggregator(testW.DB, testW.Registry, 50)
	parsed, err := agg.ReadFrom(strings.NewReader(input))
	if parsed != 1 {
		t.Fatalf("parsed = %d, want 1", parsed)
	}
	if err == nil {
		t.Fatal("first parse error should be reported")
	}
}

func TestSamplerDeterministic(t *testing.T) {
	d := dates.New(2024, 4, 1)
	pair := orgs.CountryOrg{Country: "FR", Org: testW.Market("FR").Entries[0].Org.ID}
	a := NewSampler(testW, 9).PairRecords(pair, d, 20)
	b := NewSampler(testW, 9).PairRecords(pair, d, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestReadFromLongLines is the regression test for the scanner-limit
// bug: a pathological User-Agent far beyond any fixed token limit must
// parse, and — critically — records after it must keep flowing. The old
// bufio.Scanner implementation hit ErrTooLong and silently stopped the
// whole feed.
func TestReadFromLongLines(t *testing.T) {
	client := firstClient(t)
	hugeUA := strings.Repeat("M", 2<<20) // 2 MiB, over the old 1 MiB cap
	long := Record{Client: client, Bytes: 7, BotScore: 90, UserAgent: hugeUA}
	after := Record{Client: client, Bytes: 9, BotScore: 91, UserAgent: "tail/1.0"}

	agg := NewAggregator(testW.DB, testW.Registry, 50)
	input := long.String() + "\n" + after.String() + "\n"
	parsed, err := agg.ReadFrom(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if parsed != 2 {
		t.Fatalf("parsed = %d, want 2 (long line must not stop the feed)", parsed)
	}
	var reqs, bytesTotal int64
	for _, st := range agg.Stats() {
		reqs += st.Requests
		bytesTotal += st.Bytes
	}
	if reqs != 2 || bytesTotal != 16 {
		t.Fatalf("aggregated %d requests / %d bytes, want 2 / 16", reqs, bytesTotal)
	}
}

// TestReadFromNoTrailingNewline is the regression test for the missing
// final newline: the last record of a truncated log must still parse.
func TestReadFromNoTrailingNewline(t *testing.T) {
	client := firstClient(t)
	first := Record{Client: client, Bytes: 3, BotScore: 88, UserAgent: "a"}
	last := Record{Client: client, Bytes: 4, BotScore: 89, UserAgent: "b"}

	agg := NewAggregator(testW.DB, testW.Registry, 50)
	parsed, err := agg.ReadFrom(strings.NewReader(first.String() + "\n" + last.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed != 2 {
		t.Fatalf("parsed = %d, want 2 (unterminated final record dropped)", parsed)
	}

	// An unterminated line longer than the read buffer parses too.
	hugeUA := strings.Repeat("U", 200_000)
	big := Record{Client: client, Bytes: 1, BotScore: 77, UserAgent: hugeUA}
	agg2 := NewAggregator(testW.DB, testW.Registry, 50)
	parsed, err = agg2.ReadFrom(strings.NewReader(big.String()))
	if err != nil || parsed != 1 {
		t.Fatalf("unterminated long line: parsed=%d err=%v", parsed, err)
	}
}

// TestReadFromOversizedGarbage: a multi-megabyte line that is not even
// a record reports a parse error but never halts the stream.
func TestReadFromOversizedGarbage(t *testing.T) {
	client := firstClient(t)
	good := Record{Client: client, Bytes: 2, BotScore: 95, UserAgent: "ok"}
	input := strings.Repeat("x", 3<<20) + "\n" + good.String() + "\n"

	agg := NewAggregator(testW.DB, testW.Registry, 50)
	parsed, err := agg.ReadFrom(strings.NewReader(input))
	if err == nil {
		t.Fatal("garbage line should surface a parse error")
	}
	if parsed != 1 {
		t.Fatalf("parsed = %d, want 1 (garbage must not stop later records)", parsed)
	}
}

// TestReadFromCRLF keeps scanner-compatible CRLF handling.
func TestReadFromCRLF(t *testing.T) {
	client := firstClient(t)
	rec := Record{Client: client, Bytes: 6, BotScore: 80, UserAgent: "win"}
	agg := NewAggregator(testW.DB, testW.Registry, 50)
	parsed, err := agg.ReadFrom(strings.NewReader(rec.String() + "\r\n"))
	if err != nil || parsed != 1 {
		t.Fatalf("CRLF record: parsed=%d err=%v", parsed, err)
	}
}
