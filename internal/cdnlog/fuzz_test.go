package cdnlog

import (
	"testing"
)

// FuzzParseRecord exercises the log-line parser with arbitrary inputs:
// it must never panic, and anything it accepts must round-trip.
func FuzzParseRecord(f *testing.F) {
	f.Add("192.0.2.7\t48213\t88\tMozilla/5.0 (X11; Linux x86_64)")
	f.Add("1.2.3.4\t0\t1\tcurl/8.4.0")
	f.Add("255.255.255.255\t9223372036854775807\t99\t")
	f.Add("garbage")
	f.Add("a\tb\tc\td\te")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		// Accepted records must survive a serialize/parse round trip.
		again, err := ParseRecord(rec.String())
		if err != nil {
			t.Fatalf("round trip of accepted record failed: %v (line %q)", err, line)
		}
		if again != rec {
			t.Fatalf("round trip changed record: %+v != %+v", again, rec)
		}
	})
}
