package cdnlog

import (
	"io"
	"net/netip"
	"sort"

	"repro/internal/dates"
	"repro/internal/netdb"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/ua"
	"repro/internal/world"
)

// Derivation channels for per-(pair, day) child streams: integer-tuple
// Derive keys replace the old "pair/<cc>/<org>/<date>" Split labels on
// the record-generation hot path.
const (
	chanPair uint64 = iota + 1
	chanUA
)

// Sampler synthesizes raw log records for the world's client population:
// each record's source address is drawn from the org's announced
// prefixes, its User-Agent from the ua grammar, its bot score from the
// org's bot mix. The sampler is the record-level counterpart of the
// aggregate cdn generator.
type Sampler struct {
	w    *world.World
	root *rng.Stream

	// prefixes per ASN, indexed once from the routing table.
	byASN map[uint32][]netip.Prefix
}

// NewSampler indexes the world's announced prefixes.
func NewSampler(w *world.World, seed uint64) *Sampler {
	s := &Sampler{
		w:     w,
		root:  rng.New(seed).Split("cdnlog"),
		byASN: map[uint32][]netip.Prefix{},
	}
	w.RoutingDB().Walk(func(p netip.Prefix, r netdb.Route) bool {
		s.byASN[r.ASN] = append(s.byASN[r.ASN], p)
		return true
	})
	return s
}

// addrIn draws a uniform address inside a prefix.
func addrIn(p netip.Prefix, stream *rng.Stream) netip.Addr {
	base := netdb.AddrToUint32(p.Addr())
	size := uint32(1) << (32 - p.Bits())
	off := uint32(stream.Uint64()) % size
	return netdb.AddrFromUint32(base + off)
}

// PairRecords synthesizes n records for one (country, org) pair on a day.
// VPN pairs draw addresses from the egress block registered for the
// record's true country, so the aggregator's geolocation step can be
// verified end to end. It returns nil if the org announces no space.
func (s *Sampler) PairRecords(pair orgs.CountryOrg, d dates.Date, n int) []Record {
	o, ok := s.w.Registry.ByID(pair.Org)
	if !ok {
		return nil
	}
	// Candidate prefixes: those of the org's ASNs whose true country is
	// the pair's country (for VPN orgs, the per-origin egress blocks).
	var prefixes []netip.Prefix
	for _, asn := range o.ASNs {
		for _, p := range s.byASN[asn] {
			r, _ := s.w.RoutingDB().Lookup(p.Addr())
			if r.TrueCountry == pair.Country {
				prefixes = append(prefixes, p)
			}
		}
	}
	if len(prefixes) == 0 {
		return nil
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Addr().Less(prefixes[j].Addr()) })

	e := s.w.Entry(o.Home, o.ID)
	botShare := 0.1
	mobileShare := 0.3
	bytesMean := 50_000.0
	if e != nil {
		botShare = e.BotShare
		mobileShare = e.MobileShare
		bytesMean = 20_000 * e.TrafficPerUser
	}

	ccKey, orgKey := rng.KeyString(pair.Country), rng.KeyString(pair.Org)
	day := uint64(int64(d.DayNumber()))
	stream := s.root.Derive(chanPair, ccKey, orgKey, day)
	uaStream := s.root.Derive(chanUA, ccKey, orgKey, day)
	gen := ua.NewGenerator(&uaStream, mobileShare)
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		p := prefixes[stream.Intn(len(prefixes))]
		rec := Record{
			Client: addrIn(p, &stream),
			Bytes:  int64(stream.LogNormal(0, 0.8) * bytesMean),
		}
		if stream.Bool(botShare) {
			rec.UserAgent = gen.GenerateBot()
			rec.BotScore = 1 + stream.Intn(45) // bots score low
		} else {
			rec.UserAgent = gen.Generate()
			rec.BotScore = 55 + stream.Intn(45) // humans score high
		}
		out = append(out, rec)
	}
	return out
}

// EachDayRecord streams the records of every active pair of a country on
// a day, perOrg records each, in the same deterministic order WriteDay
// serializes them. fn returning false stops the iteration early. This is
// the replayable feed behind the streaming pipeline's log source: the
// same (world, seed, country, day) always replays the same records.
func (s *Sampler) EachDayRecord(country string, d dates.Date, perOrg int, fn func(Record) bool) {
	m := s.w.Market(country)
	if m == nil {
		return
	}
	for _, e := range m.ActiveEntries(d) {
		for _, rec := range s.PairRecords(orgs.CountryOrg{Country: country, Org: e.Org.ID}, d, perOrg) {
			if !fn(rec) {
				return
			}
		}
	}
}

// WriteDay streams records for every active pair of a country on a day,
// perOrg records each, as newline-separated log lines.
func (s *Sampler) WriteDay(w io.Writer, country string, d dates.Date, perOrg int) (written int64, err error) {
	buf := make([]byte, 0, 512)
	s.EachDayRecord(country, d, perOrg, func(rec Record) bool {
		buf = rec.Append(buf[:0])
		buf = append(buf, '\n')
		if _, werr := w.Write(buf); werr != nil {
			err = werr
			return false
		}
		written++
		return true
	})
	return written, err
}
