package source

import (
	"strings"
	"testing"

	"repro/internal/dates"
)

func hashFrame() *Frame {
	f := NewFrame("test", dates.New(2024, 4, 21))
	f.AddMeta("window-days", "60")
	cc := f.AddStrings("CC")
	asn := f.AddInts("AS")
	users := f.AddFloats("Users")
	for i := 0; i < 100; i++ {
		cc.Strs = append(cc.Strs, "FR")
		asn.Ints = append(asn.Ints, int64(5000+i))
		users.Floats = append(users.Floats, float64(i)*1.5)
	}
	return f
}

// TestContentHashStable pins that hashing is deterministic and that two
// independently built equal frames hash identically.
func TestContentHashStable(t *testing.T) {
	a, b := hashFrame(), hashFrame()
	if !a.Equal(b) {
		t.Fatal("fixture frames should be equal")
	}
	ha, hb := a.ContentHash(), b.ContentHash()
	if ha != hb {
		t.Fatalf("equal frames hash differently: %s vs %s", ha, hb)
	}
	if len(ha) != 32 {
		t.Fatalf("hash %q is %d hex chars, want 32 (128 bits)", ha, len(ha))
	}
	if ha != a.ContentHash() {
		t.Fatal("repeated hashing of the same frame is unstable")
	}
	if strings.ToLower(ha) != ha {
		t.Fatalf("hash %q is not lowercase hex", ha)
	}
}

// TestContentHashSensitivity flips every kind of content one unit at a
// time and demands the digest move: a validator that misses any of these
// would serve stale 304s.
func TestContentHashSensitivity(t *testing.T) {
	base := hashFrame().ContentHash()
	mutations := map[string]func(f *Frame){
		"source name":  func(f *Frame) { f.Source = "test2" },
		"date":         func(f *Frame) { f.Date = dates.New(2024, 4, 22) },
		"meta value":   func(f *Frame) { f.Meta[0][1] = "61" },
		"meta key":     func(f *Frame) { f.Meta[0][0] = "window" },
		"extra meta":   func(f *Frame) { f.AddMeta("x", "y") },
		"string cell":  func(f *Frame) { f.Col("CC").Strs[3] = "DE" },
		"int cell":     func(f *Frame) { f.Col("AS").Ints[3]++ },
		"float cell":   func(f *Frame) { f.Col("Users").Floats[3] += 0.25 },
		"column name":  func(f *Frame) { f.Col("AS").Name = "ASN" },
		"row dropped":  func(f *Frame) { c := f.Col("CC"); c.Strs = c.Strs[:99] },
		"column order": func(f *Frame) { f.Cols[0], f.Cols[1] = f.Cols[1], f.Cols[0] },
	}
	for name, mutate := range mutations {
		f := hashFrame()
		mutate(f)
		if got := f.ContentHash(); got == base {
			t.Errorf("mutation %q did not change the content hash", name)
		}
	}
}

// TestContentHashNoLengthConfusion: shifting a byte between adjacent
// string cells must change the hash (the length-prefix framing at work).
func TestContentHashNoLengthConfusion(t *testing.T) {
	mk := func(a, b string) string {
		f := NewFrame("t", dates.New(2024, 1, 1))
		c := f.AddStrings("S")
		c.Strs = []string{a, b}
		return f.ContentHash()
	}
	if mk("ab", "c") == mk("a", "bc") {
		t.Fatal("concatenation ambiguity: cell boundaries are not framed")
	}
}

// TestETagVariants pins the validator format: quoted, variant-suffixed,
// distinct per representation of the same content.
func TestETagVariants(t *testing.T) {
	f := hashFrame()
	csv, gz, jsn := f.ETag("csv"), f.ETag("csv.gz"), f.ETag("json")
	for _, tag := range []string{csv, gz, jsn} {
		if !strings.HasPrefix(tag, `"`) || !strings.HasSuffix(tag, `"`) {
			t.Errorf("etag %s is not a quoted entity tag", tag)
		}
		if strings.HasPrefix(tag, `W/`) {
			t.Errorf("etag %s is weak; frames are immutable, tags must be strong", tag)
		}
	}
	if csv == gz || csv == jsn || gz == jsn {
		t.Fatalf("representations share a strong validator: %s %s %s", csv, gz, jsn)
	}
	if got := FormatETag("abc", ""); got != `"abc"` {
		t.Errorf(`FormatETag("abc", "") = %s`, got)
	}
	if got := FormatETag("abc", "csv"); got != `"abc-csv"` {
		t.Errorf(`FormatETag("abc", "csv") = %s`, got)
	}
}

func BenchmarkContentHash(b *testing.B) {
	f := hashFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.ContentHash()
	}
}
