// Package source unifies the seven dataset simulators behind one
// abstraction. The paper's core move is treating APNIC as one of several
// datasets (Table 1) and cross-validating them; this package gives the
// codebase the same plurality: every simulator is wrapped as a Source
// that produces a columnar Frame for a date, serialization (CSV and
// JSON) is written once against Frame instead of once per dataset, and a
// Registry memoizes per-(dataset, day) artifacts with uniform
// singleflight caching and metrics.
//
// The simulators keep their rich native types (apnic.Report,
// cdn.Snapshot, ...); the adapters in each simulator package convert at
// the boundary, and the round-trip tests pin that the conversion is
// lossless for every column the experiments consume.
package source

import (
	"fmt"
	"strconv"

	"repro/internal/dates"
)

// Kind is the cell type of a column.
type Kind uint8

const (
	String Kind = iota
	Int
	Float
)

// String returns the codec tag for the kind ("str", "int", "float").
func (k Kind) String() string {
	switch k {
	case String:
		return "str"
	case Int:
		return "int"
	case Float:
		return "float"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// parseKind is the inverse of Kind.String.
func parseKind(s string) (Kind, error) {
	switch s {
	case "str":
		return String, nil
	case "int":
		return Int, nil
	case "float":
		return Float, nil
	}
	return 0, fmt.Errorf("source: unknown column kind %q", s)
}

// Column is one typed, named column of a Frame. Exactly one of the value
// slices is populated, selected by Kind.
type Column struct {
	Name string
	Kind Kind

	Strs   []string
	Ints   []int64
	Floats []float64
}

// Len returns the number of cells in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case String:
		return len(c.Strs)
	case Int:
		return len(c.Ints)
	default:
		return len(c.Floats)
	}
}

// Cell formats cell i the way the CSV codec writes it. Floats use the
// shortest representation that round-trips (strconv 'g' with precision
// -1), so parse → re-format is byte-stable.
func (c *Column) Cell(i int) string {
	switch c.Kind {
	case String:
		return c.Strs[i]
	case Int:
		return strconv.FormatInt(c.Ints[i], 10)
	default:
		return strconv.FormatFloat(c.Floats[i], 'g', -1, 64)
	}
}

// appendCell parses one codec cell into the column.
func (c *Column) appendCell(s string) error {
	switch c.Kind {
	case String:
		c.Strs = append(c.Strs, s)
	case Int:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("source: column %q: bad int cell %q", c.Name, s)
		}
		c.Ints = append(c.Ints, v)
	default:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("source: column %q: bad float cell %q", c.Name, s)
		}
		c.Floats = append(c.Floats, v)
	}
	return nil
}

// equal reports whether two columns are identical in name, kind, and
// every cell (floats compared exactly — frames are deterministic
// artifacts, so bit equality is the contract).
func (c *Column) equal(o *Column) bool {
	if c.Name != o.Name || c.Kind != o.Kind || c.Len() != o.Len() {
		return false
	}
	switch c.Kind {
	case String:
		for i, v := range c.Strs {
			if o.Strs[i] != v {
				return false
			}
		}
	case Int:
		for i, v := range c.Ints {
			if o.Ints[i] != v {
				return false
			}
		}
	default:
		for i, v := range c.Floats {
			if o.Floats[i] != v {
				return false
			}
		}
	}
	return true
}

// Frame is one dataset-day as an ordered columnar table: the uniform
// shape every simulator converts into at the serving boundary. Column
// and metadata order are part of the value — iteration and serialization
// are deterministic.
type Frame struct {
	// Source is the dataset name the frame came from ("apnic", "cdn", ...).
	Source string
	// Date identifies the day (for monthly datasets, the first day of the
	// month; for surveys, the collection date).
	Date dates.Date
	// Meta is ordered dataset metadata (e.g. APNIC's window-days).
	Meta [][2]string
	// Cols are the ordered columns; all have the same length. Pointers,
	// so the *Column handed out by Add* stays valid as columns are added.
	Cols []*Column
}

// NewFrame returns an empty frame for a dataset-day.
func NewFrame(sourceName string, d dates.Date) *Frame {
	return &Frame{Source: sourceName, Date: d}
}

// AddMeta appends one metadata pair.
func (f *Frame) AddMeta(key, value string) {
	f.Meta = append(f.Meta, [2]string{key, value})
}

// MetaValue returns the value of the first metadata pair with the key.
func (f *Frame) MetaValue(key string) (string, bool) {
	for _, kv := range f.Meta {
		if kv[0] == key {
			return kv[1], true
		}
	}
	return "", false
}

func (f *Frame) addCol(name string, kind Kind) *Column {
	c := &Column{Name: name, Kind: kind}
	f.Cols = append(f.Cols, c)
	return c
}

// AddStrings appends an empty string column and returns it for filling.
func (f *Frame) AddStrings(name string) *Column { return f.addCol(name, String) }

// AddInts appends an empty int column.
func (f *Frame) AddInts(name string) *Column { return f.addCol(name, Int) }

// AddFloats appends an empty float column.
func (f *Frame) AddFloats(name string) *Column { return f.addCol(name, Float) }

// Col returns the column with the given name, or nil.
func (f *Frame) Col(name string) *Column {
	for _, c := range f.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Rows returns the row count (the length of the first column).
func (f *Frame) Rows() int {
	if len(f.Cols) == 0 {
		return 0
	}
	return f.Cols[0].Len()
}

// Check validates the frame's shape: a source name and equal-length
// columns with distinct names.
func (f *Frame) Check() error {
	if f.Source == "" {
		return fmt.Errorf("source: frame has no source name")
	}
	seen := make(map[string]bool, len(f.Cols))
	for _, c := range f.Cols {
		if c.Name == "" {
			return fmt.Errorf("source: %s frame has an unnamed column", f.Source)
		}
		if seen[c.Name] {
			return fmt.Errorf("source: %s frame has duplicate column %q", f.Source, c.Name)
		}
		seen[c.Name] = true
		if c.Len() != f.Rows() {
			return fmt.Errorf("source: %s frame column %q has %d cells, want %d",
				f.Source, c.Name, c.Len(), f.Rows())
		}
	}
	return nil
}

// Equal reports whether two frames are identical: source, date, ordered
// metadata, and every column cell.
func (f *Frame) Equal(g *Frame) bool {
	if f.Source != g.Source || f.Date != g.Date ||
		len(f.Meta) != len(g.Meta) || len(f.Cols) != len(g.Cols) {
		return false
	}
	for i, kv := range f.Meta {
		if g.Meta[i] != kv {
			return false
		}
	}
	for i := range f.Cols {
		if !f.Cols[i].equal(g.Cols[i]) {
			return false
		}
	}
	return true
}
