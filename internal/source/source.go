package source

import (
	"fmt"

	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/syncx"
)

// Cadence describes how often a dataset's contents actually change.
const (
	CadenceDaily   = "daily"   // a new artifact every day (apnic, cdn, dnscount)
	CadenceWeekly  = "weekly"  // revised weekly, addressable daily (itu)
	CadenceMonthly = "monthly" // one artifact per month (mlab)
	CadenceSurvey  = "survey"  // hand-collected; any date yields the survey as of then (broadband)
	CadenceScrape  = "scrape"  // registry scrape; any date yields the state as of then (ixp)
)

// Span of the synthetic world's simulated history: the default serving
// window every source reports. The APNIC archive starts 2013-11-01 (the
// paper's earliest pull) and the simulation runs through 2024.
var (
	SpanFirst = dates.New(2013, 11, 1)
	SpanLast  = dates.New(2024, 12, 31)
)

// Window describes the dates a source covers and how often its contents
// change.
type Window struct {
	First   dates.Date `json:"first"`
	Last    dates.Date `json:"last"`
	Cadence string     `json:"cadence"`
}

// Contains reports whether d falls inside the window.
func (w Window) Contains(d dates.Date) bool {
	return !d.Before(w.First) && !d.After(w.Last)
}

// Source is one dataset simulator seen through the uniform lens: a name,
// a covered window, and a day-keyed frame generator. Adapters in each
// simulator package implement it over the package's rich native type,
// converting at this boundary; Generate must be a pure function of
// (adapter construction, date) so caches may treat frames as immutable.
type Source interface {
	Name() string
	Window() Window
	Generate(d dates.Date) *Frame
}

// CacheStats is one day cache's activity snapshot.
type CacheStats struct {
	Reqs, Gens              int64 // lookups and singleflight fills
	Hits, Misses, Evictions int64 // LRU accounting (Reqs = Hits + Misses)
	Len, Cap                int   // resident days and capacity
}

// Days is the uniform bounded day cache every dataset artifact sits
// behind: per-day singleflight fills, LRU eviction, and per-dataset
// metrics on a shared registry. It replaces the ad-hoc per-consumer
// caches (Lab's syncx.Cache fields, apnicweb's report LRU) so
// memoization and metrics behave identically across all seven datasets.
type Days[T any] struct {
	lru  *syncx.LRU[int, T]
	reqs *obsv.Counter
	gens *obsv.Counter
}

// NewDays returns a day cache holding at most capacity days, reporting
// into metrics under the bounded dataset label. prefix distinguishes
// cache layers ("source" for native artifacts, "source_frame" for the
// registry's frame layer).
func NewDays[T any](metrics *obsv.Registry, prefix, dataset string, capacity int) *Days[T] {
	if metrics == nil {
		metrics = obsv.NewRegistry()
	}
	label := fmt.Sprintf("{dataset=%q}", dataset)
	c := &Days[T]{
		lru:  syncx.NewLRU[int, T](capacity),
		reqs: metrics.Counter(prefix + "_requests_total" + label),
		gens: metrics.Counter(prefix + "_generations_total" + label),
	}
	metrics.GaugeFunc(prefix+"_cache_days"+label, func() float64 { return float64(c.lru.Len()) })
	metrics.GaugeFunc(prefix+"_cache_capacity"+label, func() float64 { return float64(c.lru.Cap()) })
	metrics.GaugeFunc(prefix+"_cache_hits"+label, func() float64 {
		h, _, _ := c.lru.Stats()
		return float64(h)
	})
	metrics.GaugeFunc(prefix+"_cache_misses"+label, func() float64 {
		_, m, _ := c.lru.Stats()
		return float64(m)
	})
	metrics.GaugeFunc(prefix+"_cache_evictions"+label, func() float64 {
		_, _, e := c.lru.Stats()
		return float64(e)
	})
	return c
}

// Get returns the cached artifact for a day, filling it at most once
// while the day stays resident even under concurrent callers.
func (c *Days[T]) Get(d dates.Date, fill func(dates.Date) T) T {
	c.reqs.Inc()
	return c.lru.Get(d.DayNumber(), func() T {
		c.gens.Inc()
		return fill(d)
	})
}

// Stats returns the cache's activity snapshot.
func (c *Days[T]) Stats() CacheStats {
	h, m, e := c.lru.Stats()
	return CacheStats{
		Reqs: c.reqs.Value(), Gens: c.gens.Value(),
		Hits: h, Misses: m, Evictions: e,
		Len: c.lru.Len(), Cap: c.lru.Cap(),
	}
}
