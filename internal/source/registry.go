package source

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/dates"
	"repro/internal/obsv"
)

// ErrUnknownSource is returned when a dataset name is not registered.
var ErrUnknownSource = errors.New("source: unknown dataset")

// ErrNoBinCodec is returned by FrameBin when no binary codec has been
// injected with SetBinCodec.
var ErrNoBinCodec = errors.New("source: no binary frame codec registered")

// ErrNoBinzCodec is returned by FrameBinz when no compressed binary
// codec has been injected with SetBinzCodec.
var ErrNoBinzCodec = errors.New("source: no compressed binary frame codec registered")

// BinCodec serializes a frame into its binary wire form. The registry
// cannot import binfmt or framez (both import this package for Frame),
// so the codecs are injected at wiring time — bundle.New hands in
// binfmt.Encode and framez.Encode.
type BinCodec func(*Frame) ([]byte, error)

// binResult memoizes one day's encoded bytes together with the encode
// error, so a deterministic failure is not retried per request.
type binResult struct {
	b   []byte
	err error
}

// DefaultCacheDays bounds each dataset's frame cache when no capacity is
// given: a year of frames per dataset.
const DefaultCacheDays = 365

// Registry resolves dataset names to sources and memoizes their frames
// with per-(dataset, day) singleflight caching — the single place both
// the experiment lab and the HTTP server go through, so memoization and
// metrics are uniform across all seven datasets.
type Registry struct {
	metrics  *obsv.Registry
	capacity int

	mu      sync.RWMutex
	names   []string // registration order
	entries map[string]*regEntry
	bin     BinCodec
	binz    BinCodec
}

type regEntry struct {
	src    Source
	frames *Days[*Frame]
	bins   *Days[binResult]
	binzs  *Days[binResult]
}

// NewRegistry returns a registry whose per-dataset frame caches hold at
// most cacheDays days each (DefaultCacheDays when cacheDays < 1). A nil
// metrics registry gets a private one.
func NewRegistry(metrics *obsv.Registry, cacheDays int) *Registry {
	if metrics == nil {
		metrics = obsv.NewRegistry()
	}
	if cacheDays < 1 {
		cacheDays = DefaultCacheDays
	}
	return &Registry{
		metrics:  metrics,
		capacity: cacheDays,
		entries:  map[string]*regEntry{},
	}
}

// Metrics returns the obsv registry the frame caches report into.
func (r *Registry) Metrics() *obsv.Registry { return r.metrics }

// Register adds a source under its name. Registering a duplicate name is
// a programming error and panics.
func (r *Registry) Register(s Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := s.Name()
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("source: duplicate registration of dataset %q", name))
	}
	r.entries[name] = &regEntry{
		src:    s,
		frames: NewDays[*Frame](r.metrics, "source_frame", name, r.capacity),
		bins:   NewDays[binResult](r.metrics, "source_bin", name, r.capacity),
		binzs:  NewDays[binResult](r.metrics, "source_binz", name, r.capacity),
	}
	r.names = append(r.names, name)
}

// Names returns the registered dataset names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// Lookup returns the source registered under name.
func (r *Registry) Lookup(name string) (Source, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	return e.src, true
}

func (r *Registry) entry(name string) (*regEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Frame returns the memoized frame for one dataset-day, generating it at
// most once while the day stays resident even under concurrent callers.
// The returned frame is shared: callers must treat it as read-only.
func (r *Registry) Frame(name string, d dates.Date) (*Frame, error) {
	e, ok := r.entry(name)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownSource, name)
	}
	return e.frames.Get(d, e.src.Generate), nil
}

// SetBinCodec injects the binary frame codec FrameBin encodes with.
func (r *Registry) SetBinCodec(codec BinCodec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bin = codec
}

// FrameBin returns the memoized binary encoding of one dataset-day,
// sharing the frame layer's memoization: a cold binary request fills the
// frame cache too, and the encoded bytes are then cached independently
// (prefix "source_bin") so repeat binary hits skip the frame entirely.
// The returned slice is shared: callers must treat it as read-only.
func (r *Registry) FrameBin(name string, d dates.Date) ([]byte, error) {
	e, ok := r.entry(name)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownSource, name)
	}
	r.mu.RLock()
	codec := r.bin
	r.mu.RUnlock()
	if codec == nil {
		return nil, ErrNoBinCodec
	}
	res := e.bins.Get(d, func(d dates.Date) binResult {
		b, err := codec(e.frames.Get(d, e.src.Generate))
		return binResult{b: b, err: err}
	})
	return res.b, res.err
}

// FrameBinCacheStats returns the binary-encoding cache activity for one
// dataset.
func (r *Registry) FrameBinCacheStats(name string) (CacheStats, bool) {
	e, ok := r.entry(name)
	if !ok {
		return CacheStats{}, false
	}
	return e.bins.Stats(), true
}

// SetBinzCodec injects the compressed binary frame codec FrameBinz
// encodes with.
func (r *Registry) SetBinzCodec(codec BinCodec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.binz = codec
}

// FrameBinz returns the memoized compressed binary encoding of one
// dataset-day, mirroring FrameBin: a cold request fills the frame cache,
// and the compressed bytes are cached independently (prefix
// "source_binz") so repeat hits pay neither the generate nor the
// transform+deflate cost. The returned slice is shared: callers must
// treat it as read-only.
func (r *Registry) FrameBinz(name string, d dates.Date) ([]byte, error) {
	e, ok := r.entry(name)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownSource, name)
	}
	r.mu.RLock()
	codec := r.binz
	r.mu.RUnlock()
	if codec == nil {
		return nil, ErrNoBinzCodec
	}
	res := e.binzs.Get(d, func(d dates.Date) binResult {
		b, err := codec(e.frames.Get(d, e.src.Generate))
		return binResult{b: b, err: err}
	})
	return res.b, res.err
}

// FrameBinzCacheStats returns the compressed-encoding cache activity
// for one dataset.
func (r *Registry) FrameBinzCacheStats(name string) (CacheStats, bool) {
	e, ok := r.entry(name)
	if !ok {
		return CacheStats{}, false
	}
	return e.binzs.Stats(), true
}

// Window returns the registered source's window.
func (r *Registry) Window(name string) (Window, bool) {
	s, ok := r.Lookup(name)
	if !ok {
		return Window{}, false
	}
	return s.Window(), true
}

// FrameCacheStats returns the frame cache activity for one dataset.
func (r *Registry) FrameCacheStats(name string) (CacheStats, bool) {
	e, ok := r.entry(name)
	if !ok {
		return CacheStats{}, false
	}
	return e.frames.Stats(), true
}
