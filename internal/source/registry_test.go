package source

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dates"
	"repro/internal/obsv"
)

// countingSource counts Generate calls so tests can pin singleflight.
type countingSource struct {
	name string
	gens atomic.Int64
}

func (s *countingSource) Name() string { return s.name }

func (s *countingSource) Window() Window {
	return Window{First: SpanFirst, Last: SpanLast, Cadence: CadenceDaily}
}

func (s *countingSource) Generate(d dates.Date) *Frame {
	s.gens.Add(1)
	f := NewFrame(s.name, d)
	c := f.AddInts("Day")
	c.Ints = []int64{int64(d.DayNumber())}
	return f
}

func TestRegistryHammerSingleflight(t *testing.T) {
	src := &countingSource{name: "fake"}
	reg := NewRegistry(obsv.NewRegistry(), 30)
	reg.Register(src)

	day := dates.New(2024, 3, 9)
	const workers = 64
	var wg sync.WaitGroup
	frames := make([]*Frame, workers)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			f, err := reg.Frame("fake", day)
			if err != nil {
				t.Error(err)
				return
			}
			frames[i] = f
		}(i)
	}
	wg.Wait()

	if got := src.gens.Load(); got != 1 {
		t.Fatalf("Generate ran %d times under concurrent Frame calls; want exactly 1", got)
	}
	for i := 1; i < workers; i++ {
		if frames[i] != frames[0] {
			t.Fatalf("worker %d got a distinct frame pointer; cache did not share", i)
		}
	}
	st, ok := reg.FrameCacheStats("fake")
	if !ok {
		t.Fatal("FrameCacheStats lost the dataset")
	}
	if st.Reqs != workers || st.Gens != 1 || st.Len != 1 {
		t.Fatalf("stats = %+v; want Reqs=%d Gens=1 Len=1", st, workers)
	}
}

func TestRegistryUnknownDataset(t *testing.T) {
	reg := NewRegistry(nil, 0)
	if _, err := reg.Frame("nope", dates.New(2024, 1, 1)); !errors.Is(err, ErrUnknownSource) {
		t.Fatalf("Frame on unknown dataset: err = %v; want ErrUnknownSource", err)
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Fatal("Lookup found an unregistered dataset")
	}
	if _, ok := reg.Window("nope"); ok {
		t.Fatal("Window found an unregistered dataset")
	}
}

func TestRegistryNamesAndDuplicate(t *testing.T) {
	reg := NewRegistry(nil, 0)
	reg.Register(&countingSource{name: "b"})
	reg.Register(&countingSource{name: "a"})
	names := reg.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("Names() = %v; want registration order [b a]", names)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	reg.Register(&countingSource{name: "a"})
}

func TestDaysEviction(t *testing.T) {
	c := NewDays[int](nil, "test", "x", 2)
	fill := func(d dates.Date) int { return d.DayNumber() }
	d1, d2, d3 := dates.New(2024, 1, 1), dates.New(2024, 1, 2), dates.New(2024, 1, 3)
	c.Get(d1, fill)
	c.Get(d2, fill)
	c.Get(d3, fill) // evicts d1
	c.Get(d1, fill) // regenerates
	st := c.Stats()
	if st.Gens != 4 || st.Evictions < 2 || st.Len != 2 || st.Cap != 2 {
		t.Fatalf("stats = %+v; want Gens=4 Evictions>=2 Len=2 Cap=2", st)
	}
}
