// Package bundle assembles the seven dataset simulators into one
// source.Registry. The source package cannot import the simulators (they
// import it for their Frame conversions), so this is the single place the
// full roster is wired together — the experiment lab and the HTTP server
// both build their registries here, which is what guarantees they agree
// on dataset names, caching, and metrics.
package bundle

import (
	"repro/internal/apnic"
	"repro/internal/broadband"
	"repro/internal/cdn"
	"repro/internal/dnscount"
	"repro/internal/itu"
	"repro/internal/ixp"
	"repro/internal/mlab"
	"repro/internal/obsv"
	"repro/internal/source"
	"repro/internal/source/binfmt"
	"repro/internal/source/framez"
	"repro/internal/world"
)

// Config tunes the bundle. Zero value is usable: a private metrics
// registry and source.DefaultCacheDays per dataset. Pre-built generator
// fields let a caller that already owns instances (the experiment lab)
// reuse them; nil fields are constructed from (w, seed).
type Config struct {
	Metrics   *obsv.Registry
	CacheDays int

	ITU       *itu.Estimator
	APNIC     *apnic.Generator
	CDN       *cdn.Generator
	MLab      *mlab.Generator
	DNS       *dnscount.Generator
	Broadband *broadband.Generator
	IXP       *ixp.Generator
}

// Bundle is the assembled roster: the uniform registry plus the typed
// adapters, so consumers needing native artifacts (reports, snapshots)
// skip the frame conversion while still sharing the same day caches.
type Bundle struct {
	Registry *source.Registry

	APNIC     *apnic.Source
	CDN       *cdn.Source
	ITU       *itu.Source
	MLab      *mlab.Source
	DNS       *dnscount.Source
	Broadband *broadband.Source
	IXP       *ixp.Source
}

// New builds the seven sources over one world and registers them all.
// Generation is deterministic in (w, seed): two bundles with the same
// inputs produce byte-identical frames.
func New(w *world.World, seed uint64, cfg Config) *Bundle {
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = obsv.NewRegistry()
	}
	days := cfg.CacheDays
	if days < 1 {
		days = source.DefaultCacheDays
	}

	ituEst := cfg.ITU
	if ituEst == nil {
		ituEst = itu.New(w, seed)
	}
	apnicGen := cfg.APNIC
	if apnicGen == nil {
		apnicGen = apnic.New(w, ituEst, seed)
	}
	cdnGen := cfg.CDN
	if cdnGen == nil {
		cdnGen = cdn.New(w, seed)
	}
	mlabGen := cfg.MLab
	if mlabGen == nil {
		mlabGen = mlab.New(w, seed)
	}
	dnsGen := cfg.DNS
	if dnsGen == nil {
		dnsGen = dnscount.New(w, seed)
	}
	bbGen := cfg.Broadband
	if bbGen == nil {
		bbGen = broadband.New(w, seed)
	}
	ixpGen := cfg.IXP
	if ixpGen == nil {
		ixpGen = ixp.New(w, seed)
	}

	b := &Bundle{
		Registry:  source.NewRegistry(metrics, days),
		APNIC:     apnic.NewSource(apnicGen, metrics, days),
		CDN:       cdn.NewSource(cdnGen, metrics, days),
		ITU:       itu.NewSource(ituEst, metrics, days),
		MLab:      mlab.NewSource(mlabGen, metrics, days),
		DNS:       dnscount.NewSource(dnsGen, metrics, days),
		Broadband: broadband.NewSource(bbGen, metrics, days),
		IXP:       ixp.NewSource(ixpGen, metrics, days),
	}
	// The binary frame codecs live above source (binfmt and framez both
	// import it), so this is also where the registry learns to encode
	// frames; every consumer built from the bundle can then serve both
	// FrameBin and FrameBinz.
	b.Registry.SetBinCodec(binfmt.Encode)
	b.Registry.SetBinzCodec(framez.Encode)
	b.Registry.Register(b.APNIC)
	b.Registry.Register(b.CDN)
	b.Registry.Register(b.ITU)
	b.Registry.Register(b.MLab)
	b.Registry.Register(b.DNS)
	b.Registry.Register(b.Broadband)
	b.Registry.Register(b.IXP)
	return b
}
