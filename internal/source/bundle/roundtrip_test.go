package bundle

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/apnic"
	"repro/internal/broadband"
	"repro/internal/cdn"
	"repro/internal/dates"
	"repro/internal/dnscount"
	"repro/internal/itu"
	"repro/internal/ixp"
	"repro/internal/mlab"
	"repro/internal/source"
	"repro/internal/source/framez"
	"repro/internal/world"
)

var (
	testW   = world.MustBuild(world.Config{Seed: 11})
	testDay = dates.New(2022, 6, 15)
)

// AllDatasets is the expected roster, in registration order.
var allDatasets = []string{"apnic", "cdn", "itu", "mlab", "dnscount", "broadband", "ixp"}

func TestBundleRoster(t *testing.T) {
	b := New(testW, 42, Config{})
	names := b.Registry.Names()
	if len(names) != len(allDatasets) {
		t.Fatalf("registry has %d datasets; want %d (%v)", len(names), len(allDatasets), names)
	}
	for i, want := range allDatasets {
		if names[i] != want {
			t.Errorf("dataset %d = %q; want %q", i, names[i], want)
		}
		w, ok := b.Registry.Window(want)
		if !ok || w.Cadence == "" {
			t.Errorf("dataset %q has no usable window: %+v ok=%v", want, w, ok)
		}
	}
}

// TestCodecRoundTripAllSources is the table-driven codec suite: for every
// registered dataset, Generate → WriteCSV → ReadCSV reproduces an equal
// frame and a re-serialize is byte-identical; likewise for JSON.
func TestCodecRoundTripAllSources(t *testing.T) {
	b := New(testW, 42, Config{})
	for _, name := range b.Registry.Names() {
		t.Run(name, func(t *testing.T) {
			f, err := b.Registry.Frame(name, testDay)
			if err != nil {
				t.Fatal(err)
			}
			if f.Source != name {
				t.Fatalf("frame source = %q; want %q", f.Source, name)
			}
			if f.Rows() == 0 {
				t.Fatalf("%s produced an empty frame for %s", name, testDay)
			}

			var csv1 bytes.Buffer
			if err := f.WriteCSV(&csv1); err != nil {
				t.Fatal(err)
			}
			g, err := source.ReadCSV(bytes.NewReader(csv1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !f.Equal(g) {
				t.Fatal("frame changed across CSV round trip")
			}
			var csv2 bytes.Buffer
			if err := g.WriteCSV(&csv2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
				t.Fatal("re-serialized CSV is not byte-identical")
			}

			var json1 bytes.Buffer
			if err := f.WriteJSON(&json1); err != nil {
				t.Fatal(err)
			}
			h, err := source.ReadJSON(bytes.NewReader(json1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !f.Equal(h) {
				t.Fatal("frame changed across JSON round trip")
			}
			var json2 bytes.Buffer
			if err := h.WriteJSON(&json2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(json1.Bytes(), json2.Bytes()) {
				t.Fatal("re-serialized JSON is not byte-identical")
			}
		})
	}
}

// TestNativeRoundTripLossless pins each adapter's boundary conversion:
// frame → native type → frame reproduces the original frame exactly, so
// nothing the rich native types carry is lost in the columnar form.
func TestNativeRoundTripLossless(t *testing.T) {
	b := New(testW, 42, Config{})
	reframe := map[string]func(*source.Frame) (*source.Frame, error){
		"apnic": func(f *source.Frame) (*source.Frame, error) {
			r, err := apnic.ReportFromFrame(f)
			if err != nil {
				return nil, err
			}
			return r.Frame(), nil
		},
		"cdn": func(f *source.Frame) (*source.Frame, error) {
			s, err := cdn.SnapshotFromFrame(f)
			if err != nil {
				return nil, err
			}
			return s.Frame(), nil
		},
		"itu": func(f *source.Frame) (*source.Frame, error) {
			tab, err := itu.TableFromFrame(f)
			if err != nil {
				return nil, err
			}
			return tab.Frame(), nil
		},
		"mlab": func(f *source.Frame) (*source.Frame, error) {
			ds, err := mlab.DatasetFromFrame(f)
			if err != nil {
				return nil, err
			}
			return ds.Frame(), nil
		},
		"dnscount": func(f *source.Frame) (*source.Frame, error) {
			ds, err := dnscount.DatasetFromFrame(f)
			if err != nil {
				return nil, err
			}
			return ds.Frame(), nil
		},
		"broadband": func(f *source.Frame) (*source.Frame, error) {
			ds, err := broadband.DatasetFromFrame(f)
			if err != nil {
				return nil, err
			}
			return ds.Frame(), nil
		},
		"ixp": func(f *source.Frame) (*source.Frame, error) {
			s, err := ixp.SnapshotFromFrame(f)
			if err != nil {
				return nil, err
			}
			return s.Frame(), nil
		},
	}
	for _, name := range b.Registry.Names() {
		t.Run(name, func(t *testing.T) {
			rt, ok := reframe[name]
			if !ok {
				t.Fatalf("no native round trip registered for %q", name)
			}
			f, err := b.Registry.Frame(name, testDay)
			if err != nil {
				t.Fatal(err)
			}
			g, err := rt(f)
			if err != nil {
				t.Fatal(err)
			}
			if !f.Equal(g) {
				t.Fatal("frame -> native -> frame changed the data")
			}
		})
	}
}

// TestBundleSingleflight hammers the real registry: concurrent Frame
// calls for the same (dataset, day) must generate exactly once each.
func TestBundleSingleflight(t *testing.T) {
	b := New(testW, 42, Config{})
	const workers = 16
	var wg sync.WaitGroup
	for _, name := range b.Registry.Names() {
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				if _, err := b.Registry.Frame(name, testDay); err != nil {
					t.Error(err)
				}
			}(name)
		}
	}
	wg.Wait()
	for _, name := range b.Registry.Names() {
		st, ok := b.Registry.FrameCacheStats(name)
		if !ok {
			t.Fatalf("no frame cache stats for %q", name)
		}
		if st.Gens != 1 || st.Reqs != workers {
			t.Errorf("%s: frame cache Gens=%d Reqs=%d; want 1 and %d", name, st.Gens, st.Reqs, workers)
		}
	}
}

// TestBundleDeterminism pins generation as a pure function of (world
// config, seed): two independent bundles produce byte-identical CSV.
func TestBundleDeterminism(t *testing.T) {
	w2 := world.MustBuild(world.Config{Seed: 11})
	b1 := New(testW, 42, Config{})
	b2 := New(w2, 42, Config{})
	for _, name := range b1.Registry.Names() {
		f1, err := b1.Registry.Frame(name, testDay)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := b2.Registry.Frame(name, testDay)
		if err != nil {
			t.Fatal(err)
		}
		var buf1, buf2 bytes.Buffer
		if err := f1.WriteCSV(&buf1); err != nil {
			t.Fatal(err)
		}
		if err := f2.WriteCSV(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Errorf("%s: two same-seed bundles disagree", name)
		}
	}
}

// TestBinzRoundTripAllSources runs the compressed binary codec over
// every registered dataset through the registry's memoized path: the
// decoded frame must equal the generated one cell-for-cell, re-encode
// byte-identically (the canonical-format invariant), and come out
// strictly smaller than the raw binary plane — the ≥2x ratio itself is
// enforced per dataset by benchsweep's -min-binz-ratio gate.
func TestBinzRoundTripAllSources(t *testing.T) {
	b := New(testW, 42, Config{})
	for _, name := range b.Registry.Names() {
		t.Run(name, func(t *testing.T) {
			f, err := b.Registry.Frame(name, testDay)
			if err != nil {
				t.Fatal(err)
			}
			z, err := b.Registry.FrameBinz(name, testDay)
			if err != nil {
				t.Fatal(err)
			}
			g, err := framez.Decode(z)
			if err != nil {
				t.Fatal(err)
			}
			if !f.Equal(g) {
				t.Fatal("frame changed across compressed binary round trip")
			}
			again, err := framez.Encode(g)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(z, again) {
				t.Fatal("re-encoded compressed bytes differ")
			}
			raw, err := b.Registry.FrameBin(name, testDay)
			if err != nil {
				t.Fatal(err)
			}
			if len(z) >= len(raw) {
				t.Fatalf("binz %d bytes is not smaller than bin %d bytes", len(z), len(raw))
			}
			if memo, err := b.Registry.FrameBinz(name, testDay); err != nil || !bytes.Equal(memo, z) {
				t.Fatalf("memoized FrameBinz differs: %v", err)
			}
		})
	}
}
