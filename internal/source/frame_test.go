package source

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dates"
)

func sampleFrame() *Frame {
	f := NewFrame("sample", dates.New(2024, 4, 21))
	f.AddMeta("window-days", "60")
	f.AddMeta("note", "quoted, cell")
	cc := f.AddStrings("CC")
	cc.Strs = []string{"DE", "FR", "T1"}
	n := f.AddInts("Samples")
	n.Ints = []int64{120, -4, 1 << 61}
	u := f.AddFloats("Users")
	u.Floats = []float64{1234.5, 0.000125, 2.0e7}
	name := f.AddStrings("AS Name")
	name.Strs = []string{`Deutsche "Telekom"`, "Bouygues, SA", "plain"}
	return f
}

func TestCSVRoundTripIdempotent(t *testing.T) {
	f := sampleFrame()
	var first bytes.Buffer
	if err := f.WriteCSV(&first); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSV(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatalf("frame changed across CSV round trip:\n%+v\nvs\n%+v", f, g)
	}
	var second bytes.Buffer
	if err := g.WriteCSV(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-serialized CSV differs:\n%q\nvs\n%q", first.String(), second.String())
	}
}

func TestJSONRoundTripIdempotent(t *testing.T) {
	f := sampleFrame()
	var first bytes.Buffer
	if err := f.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	g, err := ReadJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatalf("frame changed across JSON round trip:\n%+v\nvs\n%+v", f, g)
	}
	var second bytes.Buffer
	if err := g.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-serialized JSON differs:\n%q\nvs\n%q", first.String(), second.String())
	}
}

func TestFloatCellsRoundTripExactly(t *testing.T) {
	f := NewFrame("floats", dates.New(2024, 1, 1))
	c := f.AddFloats("v")
	c.Floats = []float64{math.Pi, 1e-300, 6.02214076e23, math.MaxFloat64, 1.0 / 3.0}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Floats {
		if got := g.Col("v").Floats[i]; got != v {
			t.Errorf("float %d: %v -> %v (bits lost)", i, v, got)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no magic":     "Rank,AS\n1,2\n",
		"bad date":     "#source,x,date,not-a-date\nA:int\n1\n",
		"odd meta":     "#source,x,date,2024-01-01,dangling\nA:int\n1\n",
		"no kind tag":  "#source,x,date,2024-01-01\nColumn\nv\n",
		"unknown kind": "#source,x,date,2024-01-01\nA:decimal\n1\n",
		"bad int cell": "#source,x,date,2024-01-01\nA:int\nxyz\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadCSV accepted %q", name, in)
		}
	}
}

func TestFrameCheck(t *testing.T) {
	f := NewFrame("x", dates.New(2024, 1, 1))
	a := f.AddInts("A")
	a.Ints = []int64{1, 2}
	b := f.AddInts("B")
	b.Ints = []int64{1}
	if err := f.Check(); err == nil {
		t.Error("Check accepted ragged columns")
	}
	b.Ints = append(b.Ints, 2)
	if err := f.Check(); err != nil {
		t.Errorf("Check rejected a valid frame: %v", err)
	}
	f.AddInts("A")
	if err := f.Check(); err == nil {
		t.Error("Check accepted duplicate column names")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{First: dates.New(2024, 1, 1), Last: dates.New(2024, 12, 31), Cadence: CadenceDaily}
	if !w.Contains(dates.New(2024, 6, 1)) || !w.Contains(w.First) || !w.Contains(w.Last) {
		t.Error("window excludes interior or boundary dates")
	}
	if w.Contains(dates.New(2023, 12, 31)) || w.Contains(dates.New(2025, 1, 1)) {
		t.Error("window includes exterior dates")
	}
}
