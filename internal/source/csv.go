package source

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/dates"
)

// The CSV codec serializes a Frame as:
//
//	#source,<name>,date,<YYYY-MM-DD>[,<metaKey>,<metaValue>...]
//	<Name>:<kind>,<Name>:<kind>,...
//	<cells...>
//
// The typed header makes the format self-describing, so ReadCSV
// reconstructs the exact column kinds and a re-serialize is
// byte-identical (floats are written in shortest-round-trip form, which
// is idempotent under parse → format).

// csvMagic starts the metadata record of every frame CSV.
const csvMagic = "#source"

// WriteCSV serializes the frame.
func (f *Frame) WriteCSV(w io.Writer) error {
	if err := f.Check(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	meta := make([]string, 0, 4+2*len(f.Meta))
	meta = append(meta, csvMagic, f.Source, "date", f.Date.String())
	for _, kv := range f.Meta {
		meta = append(meta, kv[0], kv[1])
	}
	if err := cw.Write(meta); err != nil {
		return err
	}
	header := make([]string, len(f.Cols))
	for i := range f.Cols {
		header[i] = f.Cols[i].Name + ":" + f.Cols[i].Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(f.Cols))
	for r := 0; r < f.Rows(); r++ {
		for i := range f.Cols {
			rec[i] = f.Cols[i].Cell(r)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a frame written by WriteCSV.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // metadata and data records have different widths

	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("source: reading frame metadata: %w", err)
	}
	if len(meta) < 4 || meta[0] != csvMagic || meta[2] != "date" {
		return nil, fmt.Errorf("source: missing %s metadata record", csvMagic)
	}
	if len(meta)%2 != 0 {
		return nil, fmt.Errorf("source: odd metadata record length %d", len(meta))
	}
	d, err := dates.Parse(meta[3])
	if err != nil {
		return nil, fmt.Errorf("source: bad frame date: %w", err)
	}
	f := NewFrame(meta[1], d)
	for i := 4; i < len(meta); i += 2 {
		f.AddMeta(meta[i], meta[i+1])
	}

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("source: reading frame header: %w", err)
	}
	for _, h := range header {
		name, tag, ok := cutLast(h, ':')
		if !ok {
			return nil, fmt.Errorf("source: header column %q has no kind tag", h)
		}
		kind, err := parseKind(tag)
		if err != nil {
			return nil, err
		}
		f.addCol(name, kind)
	}

	cr.FieldsPerRecord = len(f.Cols)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("source: reading frame row: %w", err)
		}
		for i := range f.Cols {
			if err := f.Cols[i].appendCell(rec[i]); err != nil {
				return nil, err
			}
		}
	}
	if err := f.Check(); err != nil {
		return nil, err
	}
	return f, nil
}

// cutLast splits s at the last occurrence of sep, so column names may
// themselves contain the separator ("% of Country:float").
func cutLast(s string, sep byte) (before, after string, ok bool) {
	i := strings.LastIndexByte(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}
