package source

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// ContentHash returns a strong, canonical digest of the frame's content:
// source name, date, ordered metadata, and every column's name, kind, and
// cells. Two frames hash equal iff Frame.Equal would report them equal,
// so the digest is a valid strong ETag for any immutable dataset-day —
// the serving layer derives If-None-Match validators from it without
// rendering (or buffering) a response body.
//
// The digest is SHA-256 truncated to 128 bits, hex-encoded (32 bytes of
// ASCII): collision-safe for cache validation while keeping headers
// short. Each field is length-prefixed before hashing so concatenation
// ambiguities ("ab"+"c" vs "a"+"bc") cannot collide.
func (f *Frame) ContentHash() string {
	h := sha256.New()
	var scratch [binary.MaxVarintLen64]byte
	writeStr := func(s string) {
		n := binary.PutUvarint(scratch[:], uint64(len(s)))
		h.Write(scratch[:n])
		// io.WriteString would allocate through the hash.Hash interface on
		// some Go versions; sha256's Write never retains the slice.
		h.Write([]byte(s))
	}
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		h.Write(scratch[:8])
	}

	writeStr(f.Source)
	writeU64(uint64(int64(f.Date.DayNumber())))
	writeU64(uint64(len(f.Meta)))
	for _, kv := range f.Meta {
		writeStr(kv[0])
		writeStr(kv[1])
	}
	writeU64(uint64(len(f.Cols)))
	for _, c := range f.Cols {
		hashColumn(h, c, writeStr, writeU64)
	}

	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return hex.EncodeToString(sum[:16])
}

// hashColumn folds one column into the digest. Numeric cells hash their
// binary representation (not the formatted string), so hashing a frame is
// cheaper than rendering it: no per-cell string formatting.
func hashColumn(h hash.Hash, c *Column, writeStr func(string), writeU64 func(uint64)) {
	writeStr(c.Name)
	writeU64(uint64(c.Kind))
	writeU64(uint64(c.Len()))
	switch c.Kind {
	case String:
		for _, s := range c.Strs {
			writeStr(s)
		}
	case Int:
		for _, v := range c.Ints {
			writeU64(uint64(v))
		}
	default:
		for _, v := range c.Floats {
			writeU64(math.Float64bits(v))
		}
	}
}

// ETag formats the frame's content hash as a strong HTTP entity tag for
// one representation of the frame. The variant distinguishes
// representations of the same content (codec and content-coding), since a
// strong validator must change whenever the bytes on the wire do:
// Frame.ETag("csv") != Frame.ETag("csv.gz") != Frame.ETag("json").
func (f *Frame) ETag(variant string) string {
	return FormatETag(f.ContentHash(), variant)
}

// FormatETag builds a quoted strong entity tag from a content hash and a
// representation variant. Exported so serving layers that cache body
// hashes (rather than frames) can mint consistent tags.
func FormatETag(hash, variant string) string {
	if variant == "" {
		return `"` + hash + `"`
	}
	return `"` + hash + "-" + variant + `"`
}
