package framez

import (
	"testing"

	"repro/internal/source"
	"repro/internal/source/binfmt"
)

// Benchmarks report throughput against the *logical* frame size (the
// raw binfmt bytes), so bin and binz numbers are directly comparable:
// bytes/sec means "how fast does a frame of this much data move", not
// "how fast do we chew compressed bytes".
func benchFrame(b *testing.B) (*source.Frame, int64) {
	f := wideFrame(10000)
	raw, err := binfmt.Encode(f)
	if err != nil {
		b.Fatal(err)
	}
	return f, int64(len(raw))
}

func BenchmarkBinzEncode(b *testing.B) {
	f, logical := benchFrame(b)
	b.SetBytes(logical)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinzDecode(b *testing.B) {
	f, logical := benchFrame(b)
	buf, err := Encode(f)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(logical)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
