package framez

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/source"
)

var update = flag.Bool("update", false, "rewrite the golden version-1 bytes")

// Two golden files pin two different promises. frame_v1.binz encodes the
// 3-row sample frame: every payload is below the flate floor, so its
// bytes depend only on the container and transforms — drift there is a
// wire-format break and needs a Version bump. wide_v1.binz encodes a
// 300-row frame whose columns do take the flate pass, so it additionally
// pins the compression level and compress/flate's determinism; it can
// legitimately change on a Go toolchain upgrade (regenerate with -update
// and say so in the commit), but never within one toolchain.
func TestGoldenBytes(t *testing.T) {
	cases := []struct {
		path  string
		frame *source.Frame
	}{
		{"testdata/frame_v1.binz", sampleFrame()},
		{"testdata/wide_v1.binz", wideFrame(300)},
	}
	for _, c := range cases {
		got, err := Encode(c.frame)
		if err != nil {
			t.Fatal(err)
		}
		if *update {
			if err := os.MkdirAll(filepath.Dir(c.path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(c.path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d bytes)", c.path, len(got))
			continue
		}
		want, err := os.ReadFile(c.path)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: version-%d encoding drifted from the committed golden bytes (%d vs %d); "+
				"a deliberate format change must bump Version and add a new golden file", c.path, Version, len(got), len(want))
		}
		f, err := Decode(want)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		if !f.Equal(c.frame) {
			t.Fatalf("%s: golden bytes no longer decode to the pinned frame", c.path)
		}
	}
}
