// Package framez implements the compressed binary columnar codec for
// source.Frame — the fourth wire representation beside CSV, JSON, and
// the raw binary plane (binfmt), negotiated over HTTP as
// application/x-frame-binz. Where binfmt ships each column as a raw
// 8-byte-per-cell slab, framez first applies a per-column *typed
// transform* that exploits what dataset-day columns actually look like
// (monotone ASNs, slowly-varying floats, low-cardinality strings), then
// an optional compress/flate pass, and only then frames the bytes:
//
//   - int columns: delta + zigzag + varint. Sorted key columns (ASNs,
//     day numbers) collapse to one or two bytes per cell.
//   - float columns: XOR with the previous value, byte-aligned
//     Gorilla-style packing — one control byte holding the significant
//     byte count of the XOR, then only those bytes. Repeated or
//     slowly-drifting series collapse to near one byte per cell. The
//     raw fallback stores the slab byte-plane transposed (all byte-7s,
//     then all byte-6s, ...) so the shared sign/exponent planes sit
//     contiguously where flate can see them.
//   - string columns: a sorted dictionary with front-coded entries
//     (shared-prefix length + suffix) plus one varint dictionary index
//     per row. Country-code columns cost ~one byte per cell.
//
// Each transform is only used when it beats the raw slab, and flate is
// only applied when a cheap sampled cost model says it pays: the first
// sampleLen bytes are test-compressed, and the full pass runs only when
// the sample saves at least 1/8 (then the result must actually be
// smaller). Every choice is a pure function of the column's cells, which
// keeps the format canonical: one frame has exactly one valid byte form.
//
// Canonicality is enforced, not assumed. Decode re-checks every choice
// the encoder is defined to make — varints must be minimal, dictionary
// entries strictly sorted with maximal front-coding prefixes and no
// unreferenced entries, transform tags must match the size rule, and a
// flate-tagged payload must byte-equal the deterministic re-compression
// of its inflated content. Anything else is rejected with an error
// before the frame is returned, so the fuzz oracle (accepted input
// re-encodes byte-identically) holds by construction, exactly like
// binfmt's.
//
// Wire format, version 1 (all fixed-width integers little-endian):
//
//	magic     4 bytes  FC 'F' 'R' 'Z'
//	version   u16      1
//	flags     u16      0 (reserved; decoders reject nonzero)
//	source    str      u32 length + bytes
//	day       i64      dates.Date.DayNumber()
//	metaN     u32      then metaN × (str key, str value), in order
//	rows      u32
//	colN      u32
//	colN × column:
//	  name    str
//	  kind    u8       0=str 1=int 2=float (source.Kind)
//	  codec   u8       low 7 bits: 0=raw 1=delta 2=xor 3=dict;
//	                   bit 0x80: payload is flate-compressed
//	  encLen  u32      payload length on the wire
//	  tLen    u32      payload length after inflation (== encLen when
//	                   the flate bit is clear)
//	  payload encLen bytes
//	crc       u32      CRC-32C (Castagnoli) of every byte before it
//
// Unlike binfmt, Decode returns a self-contained frame: every column is
// reconstructed into fresh memory (transforms make aliasing the wire
// bytes impossible anyway), so the input buffer can be reused or freed
// immediately. Decoding still costs O(columns) allocations, not
// O(cells): value slices are allocated whole and string cells alias a
// per-column arena.
//
// Both directions run their column work in parallel across a worker
// pool (bounded by GOMAXPROCS). Encode's output bytes are identical at
// any worker count because assembly happens in column order after the
// workers finish; Decode walks the container sequentially, then fans
// the per-column inflate + verify + transform out, reporting the
// lowest-column-index error so failures are equally deterministic.
package framez

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"unsafe"

	"repro/internal/dates"
	"repro/internal/source"
)

// Version is the wire-format version this package encodes.
const Version = 1

// ContentType is the media type negotiated for compressed binary frame
// bodies.
const ContentType = "application/x-frame-binz"

// Suffix is the path suffix selecting the compressed binary
// representation on the report routes, beside ".csv" and ".bin".
const Suffix = ".binz"

// Column codec tags. The low 7 bits name the typed transform; the high
// bit marks a flate pass over the transform's output.
const (
	tagRaw   = 0 // the slab binfmt would ship (floats: byte-transposed)
	tagDelta = 1 // int: delta + zigzag + varint
	tagXor   = 2 // float: XOR-with-previous, byte-stripped
	tagDict  = 3 // string: front-coded sorted dictionary + varint indexes

	flagFlate = 0x80
)

// Cost-model constants. flateLevel trades ratio for speed on both sides
// (decode re-compresses to verify canonicality); flateMin skips bodies
// too small for flate's block overhead; sampleLen bounds the sniff the
// cost model pays before committing to a full compression pass.
const (
	flateLevel = flate.BestSpeed
	flateMin   = 64
	sampleLen  = 4096
)

// maxDay bounds the day number in either direction (±~27k years): far
// beyond any dataset-day, near enough to keep a hostile header honest.
const maxDay = 10_000_000

// magic opens every encoded frame.
var magic = [4]byte{0xFC, 'F', 'R', 'Z'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var le = binary.LittleEndian

// encodeWorkers and decodeWorkers override the column worker count when
// nonzero; the determinism tests pin that any value yields identical
// bytes (encode) and an identical frame or identical error (decode).
var (
	encodeWorkers = 0
	decodeWorkers = 0
)

// colEnc is one column's encoded payload, produced by the worker pool.
type colEnc struct {
	tag     byte
	tLen    int // pre-flate payload length
	payload []byte
}

// colDesc is one column's wire descriptor, collected by the container
// walk and handed to the decode worker pool.
type colDesc struct {
	kind    source.Kind
	tag     byte
	tLen    int
	payload []byte
}

// Encode serializes the frame into its canonical compressed form.
func Encode(f *source.Frame) ([]byte, error) {
	if err := f.Check(); err != nil {
		return nil, err
	}
	if d := f.Date.DayNumber(); d > maxDay || d < -maxDay {
		return nil, fmt.Errorf("framez: day number %d out of range", d)
	}
	rows := f.Rows()
	encs := make([]colEnc, len(f.Cols))
	if err := encodeColumns(f.Cols, rows, encs); err != nil {
		return nil, err
	}

	n := 4 + 2 + 2 + 4 + len(f.Source) + 8 + 4
	for _, kv := range f.Meta {
		n += 4 + len(kv[0]) + 4 + len(kv[1])
	}
	n += 4 + 4
	for i, c := range f.Cols {
		n += 4 + len(c.Name) + 1 + 1 + 4 + 4 + len(encs[i].payload)
	}
	n += 4

	buf := make([]byte, 0, n)
	buf = append(buf, magic[:]...)
	buf = le.AppendUint16(buf, Version)
	buf = le.AppendUint16(buf, 0) // flags
	buf = appendStr(buf, f.Source)
	buf = le.AppendUint64(buf, uint64(int64(f.Date.DayNumber())))
	buf = le.AppendUint32(buf, uint32(len(f.Meta)))
	for _, kv := range f.Meta {
		buf = appendStr(buf, kv[0])
		buf = appendStr(buf, kv[1])
	}
	buf = le.AppendUint32(buf, uint32(rows))
	buf = le.AppendUint32(buf, uint32(len(f.Cols)))
	for i, c := range f.Cols {
		e := &encs[i]
		if len(e.payload) > math.MaxUint32 || e.tLen > math.MaxUint32 {
			return nil, fmt.Errorf("framez: column %q payload exceeds 4GiB", c.Name)
		}
		buf = appendStr(buf, c.Name)
		buf = append(buf, byte(c.Kind), e.tag)
		buf = le.AppendUint32(buf, uint32(len(e.payload)))
		buf = le.AppendUint32(buf, uint32(e.tLen))
		buf = append(buf, e.payload...)
	}
	buf = le.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// Write serializes the frame to w in a single call, mirroring
// binfmt.Write.
func Write(f *source.Frame, w io.Writer) error {
	buf, err := Encode(f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// encodeColumns fills encs, one worker per column up to GOMAXPROCS.
func encodeColumns(cols []*source.Column, rows int, encs []colEnc) error {
	workers := runtime.GOMAXPROCS(0)
	if encodeWorkers > 0 {
		workers = encodeWorkers
	}
	if workers > len(cols) {
		workers = len(cols)
	}
	if workers <= 1 {
		for i, c := range cols {
			e, err := encodeColumn(c, rows)
			if err != nil {
				return err
			}
			encs[i] = e
		}
		return nil
	}
	errs := make([]error, len(cols))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				encs[i], errs[i] = encodeColumn(cols[i], rows)
			}
		}()
	}
	for i := range cols {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// encodeColumn applies the canonical choice rule to one column: typed
// transform when it is strictly smaller than the raw slab, then flate
// when the sampled cost model says it pays.
func encodeColumn(c *source.Column, rows int) (colEnc, error) {
	var (
		candidate []byte
		tag       byte
	)
	switch c.Kind {
	case source.Int:
		rawLen := rows * 8
		if t := sizeDeltaInts(c.Ints); t < rawLen {
			candidate = appendDeltaInts(make([]byte, 0, t), c.Ints)
			tag = tagDelta
		} else {
			candidate = rawInts(c.Ints)
			tag = tagRaw
		}
	case source.Float:
		rawLen := rows * 8
		if t := sizeXorFloats(c.Floats); t < rawLen {
			candidate = appendXorFloats(make([]byte, 0, t), c.Floats)
			tag = tagXor
		} else {
			candidate = rawFloats(c.Floats)
			tag = tagRaw
		}
	case source.String:
		arena := 0
		for _, s := range c.Strs {
			arena += len(s)
			if arena > math.MaxUint32 {
				return colEnc{}, fmt.Errorf("framez: column %q arena exceeds 4GiB", c.Name)
			}
		}
		rawLen := (rows+1)*4 + arena
		d := newDictModel(c.Strs)
		if t := d.size(); t < rawLen {
			candidate = d.append(make([]byte, 0, t))
			tag = tagDict
		} else {
			candidate = rawStrs(c.Strs, arena)
			tag = tagRaw
		}
	default:
		return colEnc{}, fmt.Errorf("framez: column %q has unknown kind %d", c.Name, c.Kind)
	}
	e := colEnc{tag: tag, tLen: len(candidate), payload: candidate}
	if len(candidate) >= flateMin && sampleWins(candidate) {
		if f := deflate(candidate); len(f) < len(candidate) {
			e.tag |= flagFlate
			e.payload = f
		}
	}
	return e, nil
}

// ---- typed transforms ----

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns how many bytes AppendUvarint would emit.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func sizeDeltaInts(vals []int64) int {
	n := 0
	prev := int64(0)
	for _, v := range vals {
		n += uvarintLen(zigzag(v - prev))
		prev = v
	}
	return n
}

func appendDeltaInts(dst []byte, vals []int64) []byte {
	prev := int64(0)
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	return dst
}

// sigBytes returns the minimal byte count holding x (0 for x == 0).
func sigBytes(x uint64) int { return (64 - bits.LeadingZeros64(x) + 7) / 8 }

func sizeXorFloats(vals []float64) int {
	n := 0
	prev := uint64(0)
	for _, v := range vals {
		b := math.Float64bits(v)
		n += 1 + sigBytes(b^prev)
		prev = b
	}
	return n
}

func appendXorFloats(dst []byte, vals []float64) []byte {
	prev := uint64(0)
	for _, v := range vals {
		b := math.Float64bits(v)
		x := b ^ prev
		k := sigBytes(x)
		dst = append(dst, byte(k))
		for i := 0; i < k; i++ {
			dst = append(dst, byte(x>>(8*i)))
		}
		prev = b
	}
	return dst
}

// rawInts is the binfmt slab: rows × 8 little-endian bytes.
func rawInts(vals []int64) []byte {
	out := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		out = le.AppendUint64(out, uint64(v))
	}
	return out
}

// rawFloats stores the slab byte-plane transposed: all cells' byte 0,
// then all cells' byte 1, ... Sign and exponent bytes land contiguously,
// which is what lets the flate pass find the redundancy a row-major slab
// hides at stride 8.
func rawFloats(vals []float64) []byte {
	rows := len(vals)
	out := make([]byte, rows*8)
	for i, v := range vals {
		b := math.Float64bits(v)
		for p := 0; p < 8; p++ {
			out[p*rows+i] = byte(b >> (8 * p))
		}
	}
	return out
}

// rawStrs is the binfmt string slab: (rows+1) cumulative u32 end
// offsets, then the concatenated arena.
func rawStrs(vals []string, arena int) []byte {
	out := make([]byte, 0, (len(vals)+1)*4+arena)
	out = le.AppendUint32(out, 0)
	end := uint32(0)
	for _, s := range vals {
		end += uint32(len(s))
		out = le.AppendUint32(out, end)
	}
	for _, s := range vals {
		out = append(out, s...)
	}
	return out
}

// dictModel is the shared sorted-unique view behind both the dict size
// estimate and the dict emitter, so the two always agree.
type dictModel struct {
	entries []string // sorted unique values
	indexes []uint32 // per-row entry index
}

func newDictModel(vals []string) *dictModel {
	entries := append([]string(nil), vals...)
	sort.Strings(entries)
	u := 0
	for i, s := range entries {
		if i == 0 || s != entries[u-1] {
			entries[u] = s
			u++
		}
	}
	entries = entries[:u]
	indexes := make([]uint32, len(vals))
	for i, s := range vals {
		indexes[i] = uint32(sort.SearchStrings(entries, s))
	}
	return &dictModel{entries: entries, indexes: indexes}
}

// commonPrefixLen returns the length of the longest shared prefix.
func commonPrefixLen(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func (d *dictModel) size() int {
	n := uvarintLen(uint64(len(d.entries)))
	prev := ""
	for _, s := range d.entries {
		p := commonPrefixLen(prev, s)
		n += uvarintLen(uint64(p)) + uvarintLen(uint64(len(s)-p)) + len(s) - p
		prev = s
	}
	for _, ix := range d.indexes {
		n += uvarintLen(uint64(ix))
	}
	return n
}

func (d *dictModel) append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.entries)))
	prev := ""
	for _, s := range d.entries {
		p := commonPrefixLen(prev, s)
		dst = binary.AppendUvarint(dst, uint64(p))
		dst = binary.AppendUvarint(dst, uint64(len(s)-p))
		dst = append(dst, s[p:]...)
		prev = s
	}
	for _, ix := range d.indexes {
		dst = binary.AppendUvarint(dst, uint64(ix))
	}
	return dst
}

// ---- flate cost model ----

var flateWriters = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flateLevel)
	return w
}}

type inflater struct {
	br *bytes.Reader
	fr io.ReadCloser
}

var flateReaders = sync.Pool{New: func() any {
	br := bytes.NewReader(nil)
	return &inflater{br: br, fr: flate.NewReader(br).(io.ReadCloser)}
}}

// deflate compresses p at the codec's fixed level. compress/flate is
// deterministic for a fixed (input, level), which is what lets the
// decoder verify a flate-tagged payload by recompressing — and what the
// golden test pins.
func deflate(p []byte) []byte {
	var buf bytes.Buffer
	// Worst-case DEFLATE output (stored-block fallback) is the input
	// plus ~5 bytes per 64 KiB block; pre-sizing to that bound keeps the
	// whole pass at one buffer allocation.
	buf.Grow(len(p) + len(p)/255 + 64)
	w := flateWriters.Get().(*flate.Writer)
	w.Reset(&buf)
	w.Write(p) // a bytes.Buffer sink cannot fail
	w.Close()
	flateWriters.Put(w)
	return buf.Bytes()
}

// sampleWins is the sampled cost model: compress the first sampleLen
// bytes and require at least a 1/8 saving before paying for the full
// pass. Deterministic, so the decoder re-runs it to verify the flate
// bit.
func sampleWins(c []byte) bool {
	s := c
	if len(s) > sampleLen {
		s = s[:sampleLen]
	}
	return len(deflate(s))*8 <= len(s)*7
}

// maxInflated bounds how much a DEFLATE stream of encLen bytes can
// legally expand (the format's ~1032:1 ceiling, with slack), so a
// hostile tLen cannot provoke a giant allocation backed by a tiny
// input.
func maxInflated(encLen int) int { return encLen*1032 + 64 }

// inflate decompresses p, which must yield exactly tLen bytes.
func inflate(p []byte, tLen int) ([]byte, error) {
	inf := flateReaders.Get().(*inflater)
	defer flateReaders.Put(inf)
	inf.br.Reset(p)
	if err := inf.fr.(flate.Resetter).Reset(inf.br, nil); err != nil {
		return nil, err
	}
	out := make([]byte, tLen)
	if _, err := io.ReadFull(inf.fr, out); err != nil {
		return nil, corruptError("flate payload shorter than its declared length")
	}
	var one [1]byte
	if n, _ := inf.fr.Read(one[:]); n != 0 {
		return nil, corruptError("flate payload longer than its declared length")
	}
	return out, nil
}

// ---- container plumbing (mirrors binfmt's sticky-error reader) ----

type corruptError string

func (e corruptError) Error() string { return "framez: corrupt frame: " + string(e) }

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = corruptError(msg)
	}
}

func (r *reader) need(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("truncated")
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

func (r *reader) u8() byte {
	p := r.need(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u16() uint16 {
	p := r.need(2)
	if p == nil {
		return 0
	}
	return le.Uint16(p)
}

func (r *reader) u32() uint32 {
	p := r.need(4)
	if p == nil {
		return 0
	}
	return le.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.need(8)
	if p == nil {
		return 0
	}
	return le.Uint64(p)
}

// str reads a length-prefixed string, copying (framez frames are
// self-contained, unlike binfmt's aliasing decode).
func (r *reader) str() string {
	n := r.u32()
	p := r.need(uint64(n))
	if p == nil {
		return ""
	}
	return string(p)
}

func (r *reader) remaining() uint64 { return uint64(len(r.b) - r.off) }

// preader walks one column payload with minimality-checked varints.
type preader struct {
	b   []byte
	off int
	err error
}

func (p *preader) fail(msg string) {
	if p.err == nil {
		p.err = corruptError(msg)
	}
}

func (p *preader) remaining() int { return len(p.b) - p.off }

func (p *preader) need(n int) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || n > len(p.b)-p.off {
		p.fail("column payload truncated")
		return nil
	}
	q := p.b[p.off : p.off+n]
	p.off += n
	return q
}

// uvarint reads one canonically-encoded (minimal-length) varint. A
// non-minimal encoding ("0x80 0x00" for zero) or a 64-bit overflow is
// rejected: both would decode to a value that re-encodes differently.
func (p *preader) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for i := p.off; i < len(p.b); i++ {
		b := p.b[i]
		if shift == 63 && b > 1 {
			p.fail("varint overflows 64 bits")
			return 0
		}
		if shift > 63 {
			p.fail("varint overflows 64 bits")
			return 0
		}
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			if b == 0 && shift > 0 {
				p.fail("non-minimal varint")
				return 0
			}
			p.off = i + 1
			return v
		}
		shift += 7
	}
	p.fail("varint truncated")
	return 0
}

// ---- decode ----

// Decode parses an encoded frame into a self-contained source.Frame. It
// rejects truncated, corrupt, or non-canonical input with an error,
// never a panic, and allocates O(columns), not O(cells). Hostile inputs
// are bounds-checked before any allocation larger than a constant
// multiple of the input size.
func Decode(buf []byte) (*source.Frame, error) {
	if len(buf) < 4+2+2+4 {
		return nil, corruptError("shorter than the fixed header")
	}
	if [4]byte(buf[:4]) != magic {
		return nil, corruptError("bad magic")
	}
	body := buf[:len(buf)-4]
	if want := le.Uint32(buf[len(buf)-4:]); crc32.Checksum(body, castagnoli) != want {
		return nil, corruptError("checksum mismatch")
	}
	r := &reader{b: body, off: 4}
	if v := r.u16(); v != Version {
		return nil, fmt.Errorf("framez: unsupported version %d (have %d)", v, Version)
	}
	if fl := r.u16(); fl != 0 {
		return nil, fmt.Errorf("framez: unsupported flags %#x", fl)
	}

	name := r.str()
	day := int64(r.u64())
	if day > maxDay || day < -maxDay {
		return nil, corruptError("day number out of range")
	}
	d := dates.FromDayNumber(int(day))

	metaN := r.u32()
	if uint64(metaN)*8 > r.remaining() {
		return nil, corruptError("meta count exceeds buffer")
	}
	var meta [][2]string
	if metaN > 0 {
		meta = make([][2]string, 0, metaN)
		for i := uint32(0); i < metaN && r.err == nil; i++ {
			k := r.str()
			v := r.str()
			meta = append(meta, [2]string{k, v})
		}
	}

	rows := r.u32()
	colN := r.u32()
	// Minimal column cost: name prefix + kind + tag + encLen + tLen.
	if uint64(colN)*14 > r.remaining() {
		return nil, corruptError("column count exceeds buffer")
	}
	if colN == 0 && rows != 0 {
		return nil, corruptError("rows without columns")
	}
	cols := make([]source.Column, colN)
	ptrs := make([]*source.Column, colN)
	descs := make([]colDesc, colN)
	for i := range cols {
		c := &cols[i]
		ptrs[i] = c
		c.Name = r.str()
		kind := r.u8()
		tag := r.u8()
		encLen := r.u32()
		tLen := r.u32()
		payload := r.need(uint64(encLen))
		if r.err != nil {
			return nil, r.err
		}
		descs[i] = colDesc{kind: source.Kind(kind), tag: tag, tLen: int(tLen), payload: payload}
	}
	if r.remaining() != 0 {
		return nil, corruptError("trailing bytes after the last column")
	}
	if err := decodeColumns(cols, descs, int(rows)); err != nil {
		return nil, err
	}
	f := &source.Frame{Source: name, Date: d, Meta: meta, Cols: ptrs}
	if err := f.Check(); err != nil {
		return nil, err
	}
	return f, nil
}

// decodeColumns reconstructs every column, one worker per column up to
// GOMAXPROCS. Column payloads decode independently — and decode's cost
// is dominated by the per-column canonicality work (re-deflating
// flate-tagged payloads to verify them) — so fanning out recovers on
// multi-core what the verification spends. The container walk stays
// sequential; only the payload decode parallelizes. The result is
// worker-count independent: columns land in their own slots, and the
// first error in column order wins.
func decodeColumns(cols []source.Column, descs []colDesc, rows int) error {
	workers := runtime.GOMAXPROCS(0)
	if decodeWorkers > 0 {
		workers = decodeWorkers
	}
	if workers > len(cols) {
		workers = len(cols)
	}
	if workers <= 1 {
		for i := range cols {
			d := &descs[i]
			if err := decodeColumn(&cols[i], d.kind, d.tag, d.payload, d.tLen, rows); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(cols))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				d := &descs[i]
				errs[i] = decodeColumn(&cols[i], d.kind, d.tag, d.payload, d.tLen, rows)
			}
		}()
	}
	for i := range cols {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// decodeColumn reconstructs one column and verifies every canonical
// choice: the flate bit against the sampled cost model, and the
// transform tag against the size rule.
func decodeColumn(c *source.Column, kind source.Kind, tag byte, payload []byte, tLen, rows int) error {
	base := tag &^ flagFlate
	flated := tag&flagFlate != 0

	var cand []byte
	if flated {
		if tLen < flateMin {
			return corruptError("flate bit on a payload below the size floor")
		}
		if tLen > maxInflated(len(payload)) {
			return corruptError("inflated length exceeds the flate expansion bound")
		}
		var err error
		if cand, err = inflate(payload, tLen); err != nil {
			return err
		}
	} else {
		if tLen != len(payload) {
			return corruptError("declared length disagrees with payload size")
		}
		cand = payload
	}

	var rawLen int
	switch kind {
	case source.Int:
		c.Kind = source.Int
		rawLen = rows * 8
		switch base {
		case tagRaw:
			if len(cand) != rawLen {
				return corruptError("raw int slab has the wrong size")
			}
			c.Ints = make([]int64, rows)
			for i := range c.Ints {
				c.Ints[i] = int64(le.Uint64(cand[8*i:]))
			}
		case tagDelta:
			if rows > len(cand) {
				return corruptError("more rows than delta payload bytes")
			}
			p := &preader{b: cand}
			c.Ints = make([]int64, rows)
			prev := int64(0)
			for i := range c.Ints {
				prev += unzigzag(p.uvarint())
				c.Ints[i] = prev
			}
			if p.err != nil {
				return p.err
			}
			if p.remaining() != 0 {
				return corruptError("trailing bytes in delta payload")
			}
		default:
			return corruptError("codec tag invalid for an int column")
		}
	case source.Float:
		c.Kind = source.Float
		rawLen = rows * 8
		switch base {
		case tagRaw:
			if len(cand) != rawLen {
				return corruptError("raw float slab has the wrong size")
			}
			c.Floats = make([]float64, rows)
			for i := range c.Floats {
				var b uint64
				for p := 0; p < 8; p++ {
					b |= uint64(cand[p*rows+i]) << (8 * p)
				}
				c.Floats[i] = math.Float64frombits(b)
			}
		case tagXor:
			if rows > len(cand) {
				return corruptError("more rows than xor payload bytes")
			}
			p := &preader{b: cand}
			c.Floats = make([]float64, rows)
			prev := uint64(0)
			for i := range c.Floats {
				k := int(p.uvarint()) // control byte is < 0x80, so this is a plain byte read
				if k > 8 {
					p.fail("xor control byte exceeds 8")
				}
				q := p.need(k)
				if p.err != nil {
					return p.err
				}
				var x uint64
				for j := 0; j < k; j++ {
					x |= uint64(q[j]) << (8 * j)
				}
				if k > 0 && q[k-1] == 0 {
					return corruptError("non-minimal xor byte count")
				}
				prev ^= x
				c.Floats[i] = math.Float64frombits(prev)
			}
			if p.err != nil {
				return p.err
			}
			if p.remaining() != 0 {
				return corruptError("trailing bytes in xor payload")
			}
		default:
			return corruptError("codec tag invalid for a float column")
		}
	case source.String:
		c.Kind = source.String
		switch base {
		case tagRaw:
			if err := decodeRawStrs(c, cand, rows); err != nil {
				return err
			}
		case tagDict:
			if err := decodeDictStrs(c, cand, rows); err != nil {
				return err
			}
		default:
			return corruptError("codec tag invalid for a string column")
		}
		arena := 0
		for _, s := range c.Strs {
			arena += len(s)
		}
		rawLen = (rows+1)*4 + arena
	default:
		return corruptError(fmt.Sprintf("unknown column kind %d", kind))
	}

	// The transform tag must match the size rule the encoder applies:
	// transform iff strictly smaller than the raw slab. The transform
	// size recompute is only needed to convict a raw tag — transform
	// payloads are already canonical byte-for-byte (minimal varints,
	// checked above), so their length is their size.
	if base == tagRaw {
		var transLen int
		switch kind {
		case source.Int:
			transLen = sizeDeltaInts(c.Ints)
		case source.Float:
			transLen = sizeXorFloats(c.Floats)
		case source.String:
			transLen = newDictModel(c.Strs).size()
		}
		if transLen < rawLen {
			return corruptError("raw tag where the typed transform is smaller")
		}
	} else if len(cand) >= rawLen {
		return corruptError("transform tag where the raw slab is no larger")
	}

	// The flate bit must match the sampled cost model, and a compressed
	// payload must be the deterministic recompression of its content —
	// DEFLATE admits many encodings of the same bytes, and accepting a
	// non-canonical one would break "one frame, one byte form".
	if flated {
		if !sampleWins(cand) {
			return corruptError("flate bit where the sampled cost model declines")
		}
		if !bytes.Equal(deflate(cand), payload) {
			return corruptError("flate payload is not the canonical compression")
		}
	} else if len(cand) >= flateMin && sampleWins(cand) {
		if len(deflate(cand)) < len(cand) {
			return corruptError("missing flate pass where the cost model pays")
		}
	}
	return nil
}

// decodeRawStrs parses the binfmt-style offsets+arena slab, copying the
// arena so the frame does not alias the input buffer.
func decodeRawStrs(c *source.Column, cand []byte, rows int) error {
	if len(cand) < (rows+1)*4 {
		return corruptError("string offset slab truncated")
	}
	offs := cand[:(rows+1)*4]
	if le.Uint32(offs) != 0 {
		return corruptError("string offsets do not start at 0")
	}
	arenaLen := le.Uint32(offs[4*rows:])
	if len(cand) != (rows+1)*4+int(arenaLen) {
		return corruptError("string arena length disagrees with payload size")
	}
	arena := append([]byte(nil), cand[(rows+1)*4:]...)
	c.Strs = make([]string, rows)
	prev := uint32(0)
	for i := 0; i < rows; i++ {
		end := le.Uint32(offs[4*(i+1):])
		if end < prev || end > arenaLen {
			return corruptError("string offsets not monotone")
		}
		c.Strs[i] = aliasBytes(arena[prev:end])
		prev = end
	}
	return nil
}

// decodeDictStrs parses the front-coded dictionary and per-row indexes,
// verifying strict sort order, maximal prefixes, full reference
// coverage, and index bounds.
func decodeDictStrs(c *source.Column, cand []byte, rows int) error {
	if rows > len(cand) {
		return corruptError("more rows than dictionary index bytes")
	}
	p := &preader{b: cand}
	dictN := p.uvarint()
	if p.err != nil {
		return p.err
	}
	// Every entry costs at least two varint bytes; every row one index
	// byte. Bounding dictN here keeps a hostile count from provoking a
	// large allocation the payload could never back.
	if dictN > uint64(p.remaining()) {
		return corruptError("dictionary count exceeds payload")
	}
	// Scan pass: walk the entry headers once to learn the exact arena
	// size, so the build pass allocates it whole (one allocation, and
	// entry aliases into it never move). Prefix lengths are checked
	// against the previous entry's length here too, so a hostile header
	// cannot claim an arena the entries could never build, and the total
	// is capped at the encoder's own 4GiB arena bound.
	scan := *p
	total := 0
	prevLen := 0
	for i := uint64(0); i < dictN; i++ {
		pl := scan.uvarint()
		sl := scan.uvarint()
		if scan.err == nil && (pl > uint64(prevLen) || sl > math.MaxUint32) {
			scan.fail("front-coding prefix exceeds the previous entry")
		}
		scan.need(int(sl))
		if scan.err != nil {
			return scan.err
		}
		prevLen = int(pl) + int(sl)
		total += prevLen
		if total > math.MaxUint32 {
			return corruptError("dictionary arena exceeds 4GiB")
		}
	}

	entries := make([]string, dictN)
	arena := make([]byte, 0, total)
	prev := ""
	for i := range entries {
		pl := p.uvarint()
		sl := p.uvarint()
		if p.err != nil {
			return p.err
		}
		if pl > uint64(len(prev)) {
			return corruptError("front-coding prefix exceeds the previous entry")
		}
		suffix := p.need(int(sl))
		if p.err != nil {
			return p.err
		}
		if i > 0 {
			if sl == 0 {
				return corruptError("dictionary entries not strictly sorted")
			}
			if int(pl) < len(prev) && suffix[0] <= prev[pl] {
				// <: unsorted. ==: the shared prefix was not maximal, so the
				// entry would re-encode differently.
				return corruptError("dictionary front-coding is not canonical")
			}
		}
		start := len(arena)
		arena = append(arena, prev[:pl]...)
		arena = append(arena, suffix...)
		entries[i] = aliasBytes(arena[start:len(arena)])
		prev = entries[i]
	}

	used := make([]bool, dictN)
	c.Strs = make([]string, rows)
	for i := 0; i < rows; i++ {
		ix := p.uvarint()
		if p.err != nil {
			return p.err
		}
		if ix >= dictN {
			return corruptError("dictionary index out of range")
		}
		used[ix] = true
		c.Strs[i] = entries[ix]
	}
	if p.remaining() != 0 {
		return corruptError("trailing bytes in dictionary payload")
	}
	for _, u := range used {
		if !u {
			return corruptError("unreferenced dictionary entry")
		}
	}
	return nil
}

// aliasBytes returns a string sharing p's bytes without copying. Every
// caller passes a slice of a decoder-owned arena (never the caller's
// input buffer), and the arena is not mutated after the frame is built,
// so the usual unsafe.String immutability contract holds — this is what
// keeps decode at O(columns) allocations instead of O(cells).
func aliasBytes(p []byte) string {
	if len(p) == 0 {
		return ""
	}
	return unsafe.String(&p[0], len(p))
}

func appendStr(buf []byte, s string) []byte {
	buf = le.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}
