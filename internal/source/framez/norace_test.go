//go:build !race

package framez

const raceEnabled = false
