//go:build race

package framez

// raceEnabled reports whether the race detector is on. Under race,
// sync.Pool deliberately drops items at random (its own race-hack), so
// the flate reader/writer pools re-allocate and exact alloc counts are
// meaningless — the alloc-budget test skips itself.
const raceEnabled = true
