package framez

import (
	"testing"
)

// FuzzDecodeFrameZ drives the compressed decoder with arbitrary bytes:
// it must reject anything malformed with an error — never a panic, never
// an oversized allocation — and anything it accepts must be a well-formed
// frame that re-encodes byte-identically. The canonicality checks make
// the oracle strict: a hostile input cannot smuggle an alternative
// DEFLATE stream, a non-minimal varint, or a misordered dictionary past
// Decode, because each would re-encode differently. CI runs a short
// -fuzz smoke on top of the committed corpus.
func FuzzDecodeFrameZ(f *testing.F) {
	seeds := [][]byte{nil, magic[:]}
	if b, err := Encode(sampleFrame()); err == nil {
		seeds = append(seeds, b, b[:len(b)/2], b[4:], append(append([]byte(nil), b...), 0))
	}
	// Big enough that dict, delta, and flate all engage.
	if b, err := Encode(wideFrame(300)); err == nil {
		seeds = append(seeds, b)
	}
	if b, err := Encode(hardFrame(100)); err == nil {
		seeds = append(seeds, b)
	}
	if b, err := Encode(wideFrame(0)); err == nil {
		seeds = append(seeds, b)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		if err := fr.Check(); err != nil {
			t.Fatalf("decoder accepted a frame that fails Check: %v", err)
		}
		out, err := Encode(fr)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if string(out) != string(data) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(out))
		}
	})
}
