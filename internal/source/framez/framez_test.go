package framez

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"unsafe"

	"repro/internal/dates"
	"repro/internal/source"
	"repro/internal/source/binfmt"
)

// sampleFrame mirrors the frame the CSV/JSON/binfmt codec tests pin:
// mixed kinds, awkward cell contents, ordered metadata.
func sampleFrame() *source.Frame {
	f := source.NewFrame("sample", dates.New(2024, 4, 21))
	f.AddMeta("window-days", "60")
	f.AddMeta("note", "quoted, cell")
	cc := f.AddStrings("CC")
	cc.Strs = []string{"DE", "FR", "T1"}
	n := f.AddInts("Samples")
	n.Ints = []int64{120, -4, 1 << 61}
	u := f.AddFloats("Users")
	u.Floats = []float64{1234.5, 0.000125, 2.0e7}
	name := f.AddStrings("AS Name")
	name.Strs = []string{`Deutsche "Telekom"`, "Bouygues, SA", ""}
	return f
}

// wideFrame builds a frame with the sample schema scaled to rows rows.
// CC cycles through 97 values (dictionary-friendly), AS Name is unique
// per row (front-coding-friendly), Users drifts smoothly, Samples is
// near-monotone (delta-friendly).
func wideFrame(rows int) *source.Frame {
	f := source.NewFrame("wide", dates.New(2024, 4, 21))
	f.AddMeta("window-days", "60")
	cc := f.AddStrings("CC")
	name := f.AddStrings("AS Name")
	users := f.AddFloats("Users")
	samples := f.AddInts("Samples")
	for i := 0; i < rows; i++ {
		cc.Strs = append(cc.Strs, fmt.Sprintf("C%d", i%97))
		name.Strs = append(name.Strs, fmt.Sprintf("AS-NAME-%d network", i))
		users.Floats = append(users.Floats, float64(i)*1.75+0.125)
		samples.Ints = append(samples.Ints, int64(i)*3-7)
	}
	return f
}

// hardFrame stresses the cost model's "store raw" side: ints that jump
// the full 64-bit range (delta loses), floats with independent random
// bit patterns (xor loses), strings unique and prefix-free.
func hardFrame(rows int) *source.Frame {
	f := source.NewFrame("hard", dates.New(2024, 4, 21))
	is := f.AddInts("RndInt")
	fs := f.AddFloats("RndFloat")
	ss := f.AddStrings("RndStr")
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < rows; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		is.Ints = append(is.Ints, int64(x))
		// Pin the exponent to 0x3FF (normal numbers in [1, 2)) so the
		// mantissa is random but no cell is NaN or Inf.
		fs.Floats = append(fs.Floats, math.Float64frombits(x&^(uint64(0x7FF)<<52)|0x3FF<<52))
		ss.Strs = append(ss.Strs, fmt.Sprintf("%016x", x))
	}
	return f
}

func roundTripFrames() []*source.Frame {
	return []*source.Frame{
		sampleFrame(),
		wideFrame(0),
		wideFrame(1),
		wideFrame(1000),
		hardFrame(200),
		source.NewFrame("empty", dates.New(2020, 1, 1)),
	}
}

func TestRoundTrip(t *testing.T) {
	for _, f := range roundTripFrames() {
		buf, err := Encode(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Source, err)
		}
		g, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Source, err)
		}
		if !f.Equal(g) {
			t.Fatalf("%s: frame changed across compressed round trip", f.Source)
		}
		// Canonical: re-encoding the decoded frame reproduces the bytes.
		again, err := Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, again) {
			t.Fatalf("%s: re-encoded bytes differ", f.Source)
		}
	}
}

func TestWriteMatchesEncode(t *testing.T) {
	f := sampleFrame()
	buf, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	var w bytes.Buffer
	if err := Write(f, &w); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, w.Bytes()) {
		t.Fatal("Write and Encode disagree")
	}
}

// TestEncodeParallelDeterministic pins that the worker pool only
// parallelizes the work, never the bytes: every worker count produces
// the identical encoding.
func TestEncodeParallelDeterministic(t *testing.T) {
	f := wideFrame(3000)
	defer func() { encodeWorkers = 0 }()
	encodeWorkers = 1
	want, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		encodeWorkers = w
		got, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%d workers produced different bytes than 1 worker", w)
		}
	}
}

// TestDecodeParallelDeterministic: decode's worker pool must yield the
// identical frame at every worker count — pinned through the canonical
// re-encoding, which covers every cell and the container fields at once.
func TestDecodeParallelDeterministic(t *testing.T) {
	buf, err := Encode(wideFrame(3000))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { decodeWorkers = 0 }()
	for _, w := range []int{1, 2, 3, 8} {
		decodeWorkers = w
		f, err := Decode(buf)
		if err != nil {
			t.Fatalf("%d workers: %v", w, err)
		}
		again, err := Encode(f)
		if err != nil {
			t.Fatalf("%d workers: %v", w, err)
		}
		if !bytes.Equal(buf, again) {
			t.Fatalf("%d workers decoded a frame that re-encodes differently", w)
		}
	}
}

// TestDecodeSelfContained pins the opposite contract from binfmt's
// zero-copy aliasing: a decoded framez frame must not reference the
// input buffer, so callers can recycle it immediately.
func TestDecodeSelfContained(t *testing.T) {
	buf, err := Encode(wideFrame(50))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	start := uintptr(unsafe.Pointer(&buf[0]))
	end := start + uintptr(len(buf))
	for _, c := range f.Cols {
		for _, s := range c.Strs {
			if len(s) == 0 {
				continue
			}
			p := uintptr(unsafe.Pointer(unsafe.StringData(s)))
			if p >= start && p < end {
				t.Fatalf("column %q aliases the input buffer", c.Name)
			}
		}
	}
	// Clobbering the input must not disturb the decoded frame.
	want := f.Col("CC").Strs[0]
	for i := range buf {
		buf[i] = 0xAA
	}
	if f.Col("CC").Strs[0] != want {
		t.Fatal("decoded frame changed when the input buffer was overwritten")
	}
}

// TestDecodeAllocBudget pins that decode allocates per column, not per
// cell: the count must not grow with the row count.
func TestDecodeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; alloc counts are not meaningful")
	}
	// Container headers + a few buffers per column (inflate, verify,
	// arena). Measured at one worker so the count is exact: the pool's
	// fixed per-Decode cost (descriptor/error slices, channel, worker
	// stacks) is constant in rows, and the real parallel path's alloc
	// count is gated in benchsweep.
	const budget = 128
	defer func() { decodeWorkers = 0 }()
	decodeWorkers = 1
	allocs := func(rows int) float64 {
		buf, err := Encode(wideFrame(rows))
		if err != nil {
			t.Fatal(err)
		}
		var sink *source.Frame
		n := testing.AllocsPerRun(100, func() {
			f, err := Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			sink = f
		})
		_ = sink
		return n
	}
	small, large := allocs(100), allocs(10000)
	if small > budget {
		t.Errorf("decode of a 100-row frame allocates %.0f times, budget %d", small, budget)
	}
	if large > budget {
		t.Errorf("decode of a 10000-row frame allocates %.0f times, budget %d", large, budget)
	}
}

// TestCompressionWins is the package's reason to exist: on a realistic
// wide frame the compressed encoding must be well under half the raw
// binary plane's size.
func TestCompressionWins(t *testing.T) {
	f := wideFrame(5000)
	raw, err := binfmt.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	z, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(z)*2 >= len(raw) {
		t.Fatalf("binz %d bytes vs bin %d: less than 2x smaller", len(z), len(raw))
	}
}

func TestEncodeRejectsBadFrames(t *testing.T) {
	f := sampleFrame()
	f.Cols[0].Strs = f.Cols[0].Strs[:1] // ragged columns
	if _, err := Encode(f); err == nil {
		t.Error("ragged frame encoded")
	}
	if _, err := Encode(source.NewFrame("", dates.New(2024, 1, 1))); err == nil {
		t.Error("nameless frame encoded")
	}
}

func TestFloatBitExactness(t *testing.T) {
	f := source.NewFrame("floats", dates.New(2024, 4, 21))
	c := f.AddFloats("V")
	c.Floats = []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.Pi, 5e-324}
	nan := math.NaN()
	c.Floats = append(c.Floats, nan)
	buf, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Col("V").Floats
	for i, want := range c.Floats {
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Errorf("cell %d: bits %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
}

// TestTransformSelection pins the cost model's choices on frames built
// to favor each side, via the codec tags on the wire.
func TestTransformSelection(t *testing.T) {
	tags := func(f *source.Frame) map[string]byte {
		buf, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]byte{}
		for _, c := range f.Cols {
			// Search for the length-prefixed name so a short name cannot
			// match payload (or magic) bytes.
			needle := appendStr(nil, c.Name)
			i := bytes.Index(buf, needle)
			if i < 0 {
				t.Fatalf("column %q not found in encoding", c.Name)
			}
			out[c.Name] = buf[i+len(needle)+1] // kind byte, then tag byte
		}
		return out
	}
	wide := tags(wideFrame(2000))
	if got := wide["Samples"] &^ flagFlate; got != tagDelta {
		t.Errorf("near-monotone ints: tag %d, want delta", got)
	}
	if got := wide["CC"] &^ flagFlate; got != tagDict {
		t.Errorf("low-cardinality strings: tag %d, want dict", got)
	}
	hard := tags(hardFrame(2000))
	if got := hard["RndInt"] &^ flagFlate; got != tagRaw {
		t.Errorf("random ints: tag %d, want raw", got)
	}
	if got := hard["RndFloat"] &^ flagFlate; got != tagRaw {
		t.Errorf("random floats: tag %d, want raw", got)
	}
	// A constant float column must collapse via xor.
	f := source.NewFrame("flat", dates.New(2024, 4, 21))
	c := f.AddFloats("V")
	for i := 0; i < 500; i++ {
		c.Floats = append(c.Floats, 42.5)
	}
	if got := tags(f)["V"] &^ flagFlate; got != tagXor {
		t.Errorf("constant floats: tag %d, want xor", got)
	}
}
