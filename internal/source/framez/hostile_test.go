package framez

import (
	"bytes"
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/dates"
)

// rawCol is a hand-assembled column for hostile-input construction: the
// builder writes whatever tag, lengths, and payload it is given, so
// tests can target one malformation at a time.
type rawCol struct {
	name    string
	kind    byte
	tag     byte
	tLen    uint32
	payload []byte
}

// buildFrame assembles container bytes directly, with the column count
// taken from cols and a valid trailing CRC (corruption tests that need
// a bad CRC flip bytes afterwards).
func buildFrame(src string, day int64, rows uint32, cols []rawCol) []byte {
	b := append([]byte(nil), magic[:]...)
	b = le.AppendUint16(b, Version)
	b = le.AppendUint16(b, 0)
	b = appendStr(b, src)
	b = le.AppendUint64(b, uint64(day))
	b = le.AppendUint32(b, 0) // metaN
	b = le.AppendUint32(b, rows)
	b = le.AppendUint32(b, uint32(len(cols)))
	for _, c := range cols {
		b = appendStr(b, c.name)
		b = append(b, c.kind, c.tag)
		b = le.AppendUint32(b, uint32(len(c.payload)))
		b = le.AppendUint32(b, c.tLen)
		b = append(b, c.payload...)
	}
	return le.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

const testDay = 19834 // 2024-04-21

// goodCols is a minimal canonical frame the builder can assemble: one
// delta int, one xor float, one dict string, one row.
func goodCols() []rawCol {
	return []rawCol{
		{name: "I", kind: 1, tag: tagDelta, tLen: 1, payload: []byte{0x0A}},         // 5
		{name: "F", kind: 2, tag: tagXor, tLen: 1, payload: []byte{0}},              // 0.0
		{name: "S", kind: 0, tag: tagDict, tLen: 5, payload: []byte{1, 0, 1, 'x', 0}}, // "x"
	}
}

// TestBuilderProducesCanonicalFrames is the oracle for the hand
// assembler itself: its output must decode and re-encode byte-identically,
// otherwise every rejection below could be rejecting the scaffolding.
func TestBuilderProducesCanonicalFrames(t *testing.T) {
	buf := buildFrame("h", testDay, 1, goodCols())
	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, again) {
		t.Fatal("hand-built frame is not canonical")
	}
}

// TestDecodeParallelErrorDeterministic: when several columns are
// corrupt, the reported error must be the lowest-index column's at any
// worker count — otherwise parallel decode would surface whichever
// worker lost the race.
func TestDecodeParallelErrorDeterministic(t *testing.T) {
	cols := goodCols()
	// Column 1: xor control byte out of range. Column 2: dict index out
	// of range. Column 1's error must win.
	cols[1] = rawCol{name: "F", kind: 2, tag: tagXor, tLen: 10, payload: []byte{9, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	cols[2] = rawCol{name: "S", kind: 0, tag: tagDict, tLen: 5, payload: []byte{1, 0, 1, 'x', 1}}
	buf := buildFrame("h", testDay, 1, cols)
	defer func() { decodeWorkers = 0 }()
	for _, w := range []int{1, 2, 3, 8} {
		decodeWorkers = w
		_, err := Decode(buf)
		if err == nil {
			t.Fatalf("%d workers: hostile frame accepted", w)
		}
		if !strings.Contains(err.Error(), "control byte") {
			t.Fatalf("%d workers: got column-2's error instead of column-1's: %v", w, err)
		}
	}
}

// mutate swaps one column of the good frame for a hostile one.
func withCol(i int, c rawCol) []byte {
	cols := goodCols()
	cols[i] = c
	return buildFrame("h", testDay, 1, cols)
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	valid := buildFrame("h", testDay, 1, goodCols())
	cases := []struct {
		name string
		in   []byte
		want string // substring the error must carry
	}{
		{"empty", nil, "shorter"},
		{"bad magic", func() []byte { b := append([]byte(nil), valid...); b[0] = 'X'; return b }(), "magic"},
		{"crc mismatch", func() []byte { b := append([]byte(nil), valid...); b[len(b)-1] ^= 0xFF; return b }(), "checksum"},
		{"future version", reseal(func() []byte { b := append([]byte(nil), valid...); b[4] = 9; return b }()), "version"},
		{"nonzero flags", reseal(func() []byte { b := append([]byte(nil), valid...); b[6] = 1; return b }()), "flags"},
		{"truncated column header", reseal(append([]byte(nil), valid[:len(valid)-10]...)), ""},
		{"trailing container bytes", reseal(append(append([]byte(nil), valid...), 0, 0, 0, 0)), "trailing"},
		{"day out of range", buildFrame("h", 1<<40, 1, goodCols()), "day"},
		{"rows without columns", buildFrame("h", testDay, 3, nil), "rows without columns"},
		{"meta count exceeds buffer", reseal(func() []byte {
			b := append([]byte(nil), valid...)
			// metaN sits right after the 8-byte day; source "h" ends at 4+2+2+4+1.
			le.PutUint32(b[4+2+2+4+1+8:], 0xFFFFFFF0)
			return b
		}()), "meta count"},

		{"codec tag out of range for int", withCol(0, rawCol{name: "I", kind: 1, tag: 5, tLen: 1, payload: []byte{0x0A}}), "codec tag invalid"},
		{"string tag on int column", withCol(0, rawCol{name: "I", kind: 1, tag: tagDict, tLen: 1, payload: []byte{0x0A}}), "codec tag invalid"},
		{"unknown kind", withCol(0, rawCol{name: "I", kind: 7, tag: tagRaw, tLen: 8, payload: make([]byte, 8)}), "kind"},

		{"varint overflow", withCol(0, rawCol{name: "I", kind: 1, tag: tagDelta, tLen: 10,
			payload: []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}}), "overflow"},
		{"non-minimal varint", withCol(0, rawCol{name: "I", kind: 1, tag: tagDelta, tLen: 2, payload: []byte{0x80, 0x00}}), "non-minimal"},
		{"delta payload truncated", withCol(0, rawCol{name: "I", kind: 1, tag: tagDelta, tLen: 1, payload: []byte{0x80}}), ""},
		{"trailing payload bytes", withCol(0, rawCol{name: "I", kind: 1, tag: tagDelta, tLen: 2, payload: []byte{0x0A, 0x0A}}), "trailing"},
		{"declared length disagrees", withCol(0, rawCol{name: "I", kind: 1, tag: tagDelta, tLen: 7, payload: []byte{0x0A}}), "declared length"},
		{"raw slab wrong size", withCol(0, rawCol{name: "I", kind: 1, tag: tagRaw, tLen: 7, payload: make([]byte, 7)}), "wrong size"},
		{"transform no smaller than raw", withCol(0, rawCol{name: "I", kind: 1, tag: tagDelta, tLen: 10,
			payload: []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}}), "raw slab is no larger"},

		{"xor control byte exceeds 8", withCol(1, rawCol{name: "F", kind: 2, tag: tagXor, tLen: 10,
			payload: []byte{9, 1, 2, 3, 4, 5, 6, 7, 8, 9}}), "control byte"},
		{"xor non-minimal byte count", withCol(1, rawCol{name: "F", kind: 2, tag: tagXor, tLen: 3, payload: []byte{2, 1, 0}}), "non-minimal"},
		{"xor payload truncated", withCol(1, rawCol{name: "F", kind: 2, tag: tagXor, tLen: 3, payload: []byte{7, 1, 2}}), ""},

		{"dict index past dictionary end", withCol(2, rawCol{name: "S", kind: 0, tag: tagDict, tLen: 5, payload: []byte{1, 0, 1, 'x', 1}}), "index out of range"},
		{"dict count exceeds payload", withCol(2, rawCol{name: "S", kind: 0, tag: tagDict, tLen: 2, payload: []byte{0x7F, 0}}), "dictionary count"},
		{"unreferenced dict entry", buildFrame("h", testDay, 1, []rawCol{
			{name: "S", kind: 0, tag: tagDict, tLen: 8, payload: []byte{2, 0, 1, 'x', 1, 1, 'y', 0}}}), "unreferenced"},
		{"dict entries unsorted", buildFrame("h", testDay, 2, []rawCol{
			{name: "S", kind: 0, tag: tagDict, tLen: 9, payload: []byte{2, 0, 1, 'y', 0, 1, 'x', 0, 1}}}), "not canonical"},
		{"dict duplicate entry", buildFrame("h", testDay, 2, []rawCol{
			{name: "S", kind: 0, tag: tagDict, tLen: 8, payload: []byte{2, 0, 1, 'x', 1, 0, 0, 1}}}), "sorted"},
		{"front-coding prefix not maximal", buildFrame("h", testDay, 2, []rawCol{
			{name: "S", kind: 0, tag: tagDict, tLen: 11, payload: []byte{2, 0, 2, 'a', 'b', 0, 2, 'a', 'c', 0, 1}}}), "not canonical"},
		{"front-coding prefix too long", buildFrame("h", testDay, 2, []rawCol{
			{name: "S", kind: 0, tag: tagDict, tLen: 9, payload: []byte{2, 0, 1, 'a', 3, 1, 'b', 0, 1}}}), "prefix exceeds"},
		{"string offsets not monotone", buildFrame("h", testDay, 2, []rawCol{
			{name: "S", kind: 0, tag: tagRaw, tLen: 14,
				payload: func() []byte {
					b := le.AppendUint32(nil, 0)
					b = le.AppendUint32(b, 3) // row 0 ends past row 1's end
					b = le.AppendUint32(b, 2) // arena length
					return append(b, 'x', 'y')
				}()}}), "monotone"},

		{"flate below size floor", withCol(0, rawCol{name: "I", kind: 1, tag: tagDelta | flagFlate, tLen: 10, payload: []byte{1, 2, 3}}), "size floor"},
		{"flate expansion bound", withCol(0, rawCol{name: "I", kind: 1, tag: tagDelta | flagFlate, tLen: 0xFFFFFF00, payload: []byte{1, 2, 3}}), "expansion bound"},
		{"flate garbage stream", withCol(0, rawCol{name: "I", kind: 1, tag: tagDelta | flagFlate, tLen: 100, payload: []byte{0xde, 0xad, 0xbe, 0xef}}), ""},
	}
	for _, tc := range cases {
		f, err := Decode(tc.in)
		if err == nil {
			t.Errorf("%s: decode accepted hostile input (frame %q)", tc.name, f.Source)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// reseal recomputes the trailing checksum so a structural mutation is
// exercised past the CRC check.
func reseal(b []byte) []byte {
	if len(b) < 4 {
		return b
	}
	body := b[:len(b)-4]
	return le.AppendUint32(body, crc32.Checksum(body, castagnoli))
}

// TestDecodeRejectsMissingFlate pins the other half of the cost-model
// contract: a payload the model would compress must arrive compressed.
func TestDecodeRejectsMissingFlate(t *testing.T) {
	// 100 rows of one repeated dict entry: highly compressible, well over
	// the flate floor, but shipped without the flate bit.
	payload := []byte{1, 0, 4, 'A', 'A', 'A', 'A'}
	for i := 0; i < 100; i++ {
		payload = append(payload, 0)
	}
	buf := buildFrame("h", testDay, 100, []rawCol{
		{name: "S", kind: 0, tag: tagDict, tLen: uint32(len(payload)), payload: payload},
	})
	if _, err := Decode(buf); err == nil || !strings.Contains(err.Error(), "missing flate pass") {
		t.Fatalf("uncompressed compressible payload accepted: %v", err)
	}
}

// TestDecodeRejectsNonCanonicalFlate pins that a flate-tagged payload
// must be the deterministic recompression of its content, not any valid
// DEFLATE stream of the same bytes.
func TestDecodeRejectsNonCanonicalFlate(t *testing.T) {
	f := wideFrame(2000)
	buf, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	// Find a flated column and splice in a stored-block DEFLATE stream of
	// the same inflated content: decodes identically, different bytes.
	g, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	needle := appendStr(nil, "CC")
	i := bytes.Index(buf, needle)
	if i < 0 {
		t.Fatal("CC column not found")
	}
	hdr := i + len(needle)
	tag := buf[hdr+1]
	if tag&flagFlate == 0 {
		t.Skip("CC column was not flate-compressed")
	}
	encLen := le.Uint32(buf[hdr+2:])
	tLen := le.Uint32(buf[hdr+6:])
	payload := buf[hdr+10 : hdr+10+int(encLen)]
	content, err := inflate(payload, int(tLen))
	if err != nil {
		t.Fatal(err)
	}
	// Stored-block encoding: 5-byte header per chunk, content verbatim.
	var alt []byte
	for off := 0; off < len(content); off += 0xFFFF {
		end := min(off+0xFFFF, len(content))
		final := byte(0)
		if end == len(content) {
			final = 1
		}
		n := end - off
		alt = append(alt, final, byte(n), byte(n>>8), byte(^n), byte(^n>>8))
		alt = append(alt, content[off:end]...)
	}
	mutated := append([]byte(nil), buf[:hdr+2]...)
	mutated = le.AppendUint32(mutated, uint32(len(alt)))
	mutated = le.AppendUint32(mutated, tLen)
	mutated = append(mutated, alt...)
	mutated = append(mutated, buf[hdr+10+int(encLen):len(buf)-4]...)
	mutated = reseal(append(mutated, 0, 0, 0, 0))
	if _, err := Decode(mutated); err == nil || !strings.Contains(err.Error(), "canonical") {
		t.Fatalf("alternative DEFLATE stream accepted: %v", err)
	}
}

// TestHostileInputNeverPanics sweeps truncations and bit flips of a
// valid encoding through Decode: every outcome must be a frame or an
// error, never a panic (the fuzz smoke extends this with coverage
// guidance in CI).
func TestHostileInputNeverPanics(t *testing.T) {
	buf, err := Encode(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(buf); cut++ {
		Decode(buf[:cut])
		Decode(reseal(append([]byte(nil), buf[:cut]...)))
	}
	for i := 0; i < len(buf); i++ {
		for _, bit := range []byte{0x01, 0x80} {
			m := append([]byte(nil), buf...)
			m[i] ^= bit
			Decode(m)
			Decode(reseal(m))
		}
	}
	_ = dates.New // keep the import honest if the day cases move
}
