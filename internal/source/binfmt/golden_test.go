package binfmt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden version-1 bytes")

// goldenPath holds the committed version-1 encoding of sampleFrame.
const goldenPath = "testdata/frame_v1.bin"

// TestGoldenBytes pins the version-1 wire format: the committed bytes
// must decode to the sample frame, and re-encoding the sample frame must
// reproduce them exactly. Any codec change that alters the bytes is a
// wire-format break and needs a version bump, not a golden refresh.
func TestGoldenBytes(t *testing.T) {
	got, err := Encode(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("version-%d encoding drifted from the committed golden bytes (%d vs %d bytes); "+
			"a deliberate format change must bump Version and add a new golden file", Version, len(got), len(want))
	}
	f, err := Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(sampleFrame()) {
		t.Fatal("golden bytes no longer decode to the sample frame")
	}
}
