// Package binfmt implements the binary columnar codec for source.Frame —
// the third wire representation beside CSV and JSON, negotiated over HTTP
// as application/x-frame-bin. The text codecs cost O(cells) string
// formatting on encode and O(cells) parsing plus one allocation per cell
// on decode; this codec writes each column as one contiguous typed slab
// and decodes by *aliasing* the slabs straight out of the input buffer,
// so a full dataset-day decodes with a constant number of allocations
// regardless of row count.
//
// Wire format, version 1 (all integers little-endian):
//
//	magic     4 bytes  FB 'F' 'R' 'B'   (0xFB keeps it out of text space)
//	version   u16      1
//	flags     u16      0 (reserved; decoders reject nonzero)
//	source    str      u32 length + bytes
//	day       i64      dates.Date.DayNumber()
//	metaN     u32      then metaN × (str key, str value), in order
//	rows      u32
//	colN      u32
//	colN × column:
//	  name    str
//	  kind    u8       0=str 1=int 2=float (source.Kind)
//	  pad     zeros to the next 8-byte boundary (relative to offset 0)
//	  int/float: rows × 8-byte values (int64 / IEEE-754 float64 bits)
//	  str:       (rows+1) × u32 cumulative end offsets (offsets[0] = 0,
//	             monotone nondecreasing), then offsets[rows] arena bytes
//	crc       u32      CRC-32C (Castagnoli) of every byte before it
//
// The encoding is canonical: one frame has exactly one valid byte form
// (padding must be zero, offsets must start at 0), so encode∘decode is
// byte-identical and the golden test can pin version-1 bytes forever.
//
// Zero-copy aliasing rules: Decode returns a Frame whose numeric column
// slices, string cells, source name, and metadata all point into the
// input buffer. The caller must keep buf alive as long as the frame and
// must never mutate it — the frame is a read-only view, exactly like the
// frames handed out by the registry cache. Aliasing numeric slabs needs
// the slab 8-byte aligned and a little-endian host; when either fails
// (a decoder given an unaligned subslice, a big-endian machine) Decode
// transparently falls back to copying the slab — still one allocation
// per column, never one per cell.
package binfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"repro/internal/dates"
	"repro/internal/source"
)

// Version is the wire-format version this package encodes.
const Version = 1

// ContentType is the media type negotiated for binary frame bodies.
const ContentType = "application/x-frame-bin"

// Suffix is the path suffix selecting the binary representation on the
// report routes, beside ".csv".
const Suffix = ".bin"

// magic opens every encoded frame; the trailing byte is the version, so
// a version bump changes the first four bytes.
var magic = [4]byte{0xFB, 'F', 'R', 'B'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittle reports whether the host stores integers little-endian, the
// precondition for aliasing numeric slabs instead of copying them.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// le is the wire byte order.
var le = binary.LittleEndian

// Size returns the exact encoded length of the frame in bytes. Encode
// allocates once with it, and the padding math here is the same the
// encoder and decoder use, so all three agree by construction.
func Size(f *source.Frame) int {
	n := 4 + 2 + 2 // magic, version, flags
	n += 4 + len(f.Source)
	n += 8 // day number
	n += 4
	for _, kv := range f.Meta {
		n += 4 + len(kv[0]) + 4 + len(kv[1])
	}
	n += 4 + 4 // rows, colN
	rows := f.Rows()
	for _, c := range f.Cols {
		n += 4 + len(c.Name) + 1
		n += pad8(n)
		switch c.Kind {
		case source.Int, source.Float:
			n += rows * 8
		case source.String:
			n += (rows + 1) * 4
			for _, s := range c.Strs {
				n += len(s)
			}
		}
	}
	return n + 4 // crc
}

// pad8 returns how many zero bytes land offset n on an 8-byte boundary.
func pad8(n int) int { return (8 - n%8) % 8 }

// Encode serializes the frame into a single exactly-sized buffer.
func Encode(f *source.Frame) ([]byte, error) {
	if err := f.Check(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, Size(f))
	buf = append(buf, magic[:]...)
	buf = le.AppendUint16(buf, Version)
	buf = le.AppendUint16(buf, 0) // flags
	buf = appendStr(buf, f.Source)
	buf = le.AppendUint64(buf, uint64(int64(f.Date.DayNumber())))
	buf = le.AppendUint32(buf, uint32(len(f.Meta)))
	for _, kv := range f.Meta {
		buf = appendStr(buf, kv[0])
		buf = appendStr(buf, kv[1])
	}
	rows := f.Rows()
	buf = le.AppendUint32(buf, uint32(rows))
	buf = le.AppendUint32(buf, uint32(len(f.Cols)))
	for _, c := range f.Cols {
		buf = appendStr(buf, c.Name)
		buf = append(buf, byte(c.Kind))
		for i := pad8(len(buf)); i > 0; i-- {
			buf = append(buf, 0)
		}
		switch c.Kind {
		case source.Int:
			for _, v := range c.Ints {
				buf = le.AppendUint64(buf, uint64(v))
			}
		case source.Float:
			for _, v := range c.Floats {
				buf = le.AppendUint64(buf, math.Float64bits(v))
			}
		case source.String:
			end := uint32(0)
			buf = le.AppendUint32(buf, 0)
			for _, s := range c.Strs {
				if uint64(end)+uint64(len(s)) > math.MaxUint32 {
					return nil, fmt.Errorf("binfmt: column %q arena exceeds 4GiB", c.Name)
				}
				end += uint32(len(s))
				buf = le.AppendUint32(buf, end)
			}
			for _, s := range c.Strs {
				buf = append(buf, s...)
			}
		default:
			return nil, fmt.Errorf("binfmt: column %q has unknown kind %d", c.Name, c.Kind)
		}
	}
	buf = le.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// Write serializes the frame to w. The body is encoded into one buffer
// first (the checksum trailer covers every preceding byte, and binary
// bodies are compact — a fraction of their CSV rendering), then written
// in a single call.
func Write(f *source.Frame, w io.Writer) error {
	buf, err := Encode(f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

func appendStr(buf []byte, s string) []byte {
	buf = le.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// corruptError reports a structurally invalid input.
type corruptError string

func (e corruptError) Error() string { return "binfmt: corrupt frame: " + string(e) }

// reader walks the buffer with sticky-error bounds checking, so the
// decode body reads linearly and checks err once per column.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = corruptError(msg)
	}
}

// need consumes n bytes, or fails.
func (r *reader) need(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("truncated")
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

func (r *reader) u8() byte {
	p := r.need(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u16() uint16 {
	p := r.need(2)
	if p == nil {
		return 0
	}
	return le.Uint16(p)
}

func (r *reader) u32() uint32 {
	p := r.need(4)
	if p == nil {
		return 0
	}
	return le.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.need(8)
	if p == nil {
		return 0
	}
	return le.Uint64(p)
}

// str reads a length-prefixed string aliasing the buffer (no copy).
func (r *reader) str() string {
	n := r.u32()
	return aliasString(r.need(uint64(n)))
}

// pad8 consumes padding to the next 8-byte boundary, insisting it is
// zero so the encoding stays canonical (one frame, one byte form).
func (r *reader) pad8() {
	for r.off%8 != 0 {
		if r.u8() != 0 {
			r.fail("nonzero padding")
			return
		}
	}
}

// remaining returns the unconsumed byte count.
func (r *reader) remaining() uint64 { return uint64(len(r.b) - r.off) }

// aliasString returns a string sharing p's bytes. Zero allocations: the
// string header points into the decode buffer.
func aliasString(p []byte) string {
	if len(p) == 0 {
		return ""
	}
	return unsafe.String(&p[0], len(p))
}

// Decode parses an encoded frame, aliasing column data out of buf — see
// the package comment for the aliasing rules (buf must outlive the frame
// and never be mutated). It rejects truncated or corrupt input with an
// error, never a panic, and allocates O(columns), not O(cells).
func Decode(buf []byte) (*source.Frame, error) {
	if len(buf) < 4+2+2+4 {
		return nil, corruptError("shorter than the fixed header")
	}
	if [4]byte(buf[:4]) != magic {
		return nil, corruptError("bad magic")
	}
	body := buf[:len(buf)-4]
	if want := le.Uint32(buf[len(buf)-4:]); crc32.Checksum(body, castagnoli) != want {
		return nil, corruptError("checksum mismatch")
	}
	r := &reader{b: body, off: 4}
	if v := r.u16(); v != Version {
		return nil, fmt.Errorf("binfmt: unsupported version %d (have %d)", v, Version)
	}
	if fl := r.u16(); fl != 0 {
		return nil, fmt.Errorf("binfmt: unsupported flags %#x", fl)
	}

	name := r.str()
	day := int64(r.u64())
	d := dates.FromDayNumber(int(day))
	if r.err == nil && int64(d.DayNumber()) != day {
		return nil, corruptError("day number out of range")
	}

	metaN := r.u32()
	// Each pair costs at least two length prefixes; bounding metaN (and
	// rows/colN below) by what the buffer could possibly hold keeps a
	// hostile header from provoking a giant allocation before the bounds
	// checks bite.
	if uint64(metaN)*8 > r.remaining() {
		return nil, corruptError("meta count exceeds buffer")
	}
	var meta [][2]string
	if metaN > 0 {
		meta = make([][2]string, 0, metaN)
		for i := uint32(0); i < metaN && r.err == nil; i++ {
			k := r.str()
			v := r.str()
			meta = append(meta, [2]string{k, v})
		}
	}

	rows := r.u32()
	colN := r.u32()
	if uint64(colN)*5 > r.remaining() { // name prefix + kind byte minimum
		return nil, corruptError("column count exceeds buffer")
	}
	if colN == 0 && rows != 0 {
		// Encode derives the row count from the first column, so a
		// column-less frame claiming rows would not re-encode canonically.
		return nil, corruptError("rows without columns")
	}
	cols := make([]source.Column, colN)
	ptrs := make([]*source.Column, colN)
	for i := range cols {
		c := &cols[i]
		ptrs[i] = c
		c.Name = r.str()
		kind := r.u8()
		r.pad8()
		if r.err != nil {
			return nil, r.err
		}
		switch source.Kind(kind) {
		case source.Int:
			c.Kind = source.Int
			c.Ints = aliasInt64(r.need(uint64(rows) * 8), int(rows))
		case source.Float:
			c.Kind = source.Float
			c.Floats = aliasFloat64(r.need(uint64(rows)*8), int(rows))
		case source.String:
			c.Kind = source.String
			c.Strs = readStrings(r, int(rows))
		default:
			return nil, corruptError(fmt.Sprintf("unknown column kind %d", kind))
		}
		if r.err != nil {
			return nil, r.err
		}
	}
	if r.remaining() != 0 {
		return nil, corruptError("trailing bytes after the last column")
	}
	f := &source.Frame{Source: name, Date: d, Meta: meta, Cols: ptrs}
	if err := f.Check(); err != nil {
		return nil, err
	}
	return f, nil
}

// aliasInt64 views p as rows little-endian int64s without copying when
// the slab is 8-aligned on a little-endian host, copying otherwise.
func aliasInt64(p []byte, rows int) []int64 {
	if rows == 0 || p == nil {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&p[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&p[0])), rows)
	}
	out := make([]int64, rows)
	for i := range out {
		out[i] = int64(le.Uint64(p[8*i:]))
	}
	return out
}

// aliasFloat64 is aliasInt64 for IEEE-754 slabs.
func aliasFloat64(p []byte, rows int) []float64 {
	if rows == 0 || p == nil {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&p[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&p[0])), rows)
	}
	out := make([]float64, rows)
	for i := range out {
		out[i] = math.Float64frombits(le.Uint64(p[8*i:]))
	}
	return out
}

// readStrings decodes one string column: the offset slab indexes the
// arena, and every cell is an aliasing string header into it — the only
// allocation is the []string backing array itself.
func readStrings(r *reader, rows int) []string {
	offs := r.need((uint64(rows) + 1) * 4)
	if offs == nil {
		return nil
	}
	if le.Uint32(offs) != 0 {
		r.fail("string offsets do not start at 0")
		return nil
	}
	arenaLen := le.Uint32(offs[4*rows:])
	arena := r.need(uint64(arenaLen))
	if arena == nil {
		return nil
	}
	if rows == 0 {
		if arenaLen != 0 {
			r.fail("arena bytes with zero rows")
		}
		return nil
	}
	out := make([]string, rows)
	prev := uint32(0)
	for i := 0; i < rows; i++ {
		end := le.Uint32(offs[4*(i+1):])
		if end < prev || end > arenaLen {
			r.fail("string offsets not monotone")
			return nil
		}
		out[i] = aliasString(arena[prev:end])
		prev = end
	}
	return out
}
