package binfmt

import (
	"bytes"
	"testing"

	"repro/internal/source"
)

// The benchmarks compare the binary codec against the CSV path on the
// same wide frame; CI's bench smoke runs them, and cmd/benchsweep
// re-measures the same ratio for its -min-bin-speedup gate.

func benchFrame(b *testing.B) *source.Frame {
	b.Helper()
	return wideFrame(5000)
}

func BenchmarkBinEncode(b *testing.B) {
	f := benchFrame(b)
	buf, err := Encode(f)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinDecode(b *testing.B) {
	buf, err := Encode(benchFrame(b))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSVRoundTrip(b *testing.B) {
	f := benchFrame(b)
	var w bytes.Buffer
	if err := f.WriteCSV(&w); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := f.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := source.ReadCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinRoundTrip(b *testing.B) {
	f := benchFrame(b)
	buf, err := Encode(f)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Encode(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(out); err != nil {
			b.Fatal(err)
		}
	}
}
