package binfmt

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math"
	"strings"
	"testing"
	"unsafe"

	"repro/internal/dates"
	"repro/internal/source"
)

// sampleFrame mirrors the frame the CSV/JSON codec tests pin: mixed
// kinds, awkward cell contents, ordered metadata.
func sampleFrame() *source.Frame {
	f := source.NewFrame("sample", dates.New(2024, 4, 21))
	f.AddMeta("window-days", "60")
	f.AddMeta("note", "quoted, cell")
	cc := f.AddStrings("CC")
	cc.Strs = []string{"DE", "FR", "T1"}
	n := f.AddInts("Samples")
	n.Ints = []int64{120, -4, 1 << 61}
	u := f.AddFloats("Users")
	u.Floats = []float64{1234.5, 0.000125, 2.0e7}
	name := f.AddStrings("AS Name")
	name.Strs = []string{`Deutsche "Telekom"`, "Bouygues, SA", ""}
	return f
}

// wideFrame builds a frame with the sample schema scaled to rows rows,
// for the O(1)-allocations and throughput measurements.
func wideFrame(rows int) *source.Frame {
	f := source.NewFrame("wide", dates.New(2024, 4, 21))
	f.AddMeta("window-days", "60")
	cc := f.AddStrings("CC")
	name := f.AddStrings("AS Name")
	users := f.AddFloats("Users")
	samples := f.AddInts("Samples")
	for i := 0; i < rows; i++ {
		cc.Strs = append(cc.Strs, fmt.Sprintf("C%d", i%97))
		name.Strs = append(name.Strs, fmt.Sprintf("AS-NAME-%d network", i))
		users.Floats = append(users.Floats, float64(i)*1.75+0.125)
		samples.Ints = append(samples.Ints, int64(i)*3-7)
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	for _, f := range []*source.Frame{
		sampleFrame(),
		wideFrame(0),
		wideFrame(1),
		wideFrame(1000),
		source.NewFrame("empty", dates.New(2020, 1, 1)),
	} {
		buf, err := Encode(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Source, err)
		}
		if len(buf) != Size(f) {
			t.Fatalf("%s: encoded %d bytes, Size says %d", f.Source, len(buf), Size(f))
		}
		g, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Source, err)
		}
		if !f.Equal(g) {
			t.Fatalf("%s: frame changed across binary round trip", f.Source)
		}
		// Canonical: re-encoding the decoded frame reproduces the bytes.
		again, err := Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, again) {
			t.Fatalf("%s: re-encoded bytes differ", f.Source)
		}
	}
}

func TestWriteMatchesEncode(t *testing.T) {
	f := sampleFrame()
	buf, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	var w bytes.Buffer
	if err := Write(f, &w); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, w.Bytes()) {
		t.Fatal("Write and Encode disagree")
	}
}

// TestDecodeAliases pins the zero-copy contract: decoded numeric slabs
// and string cells point into the input buffer, not copies of it.
func TestDecodeAliases(t *testing.T) {
	buf, err := Encode(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	ints := f.Col("Samples").Ints
	if len(ints) == 0 {
		t.Fatal("no int cells")
	}
	if !inBuf(buf, uintptr(unsafe.Pointer(&ints[0]))) {
		t.Error("int slab was copied, not aliased")
	}
	strs := f.Col("AS Name").Strs
	if !inBuf(buf, uintptr(unsafe.Pointer(unsafe.StringData(strs[0])))) {
		t.Error("string cell was copied, not aliased")
	}
}

// inBuf reports whether the pointer lands inside buf's backing array.
func inBuf(buf []byte, p uintptr) bool {
	start := uintptr(unsafe.Pointer(&buf[0]))
	return p >= start && p < start+uintptr(len(buf))
}

// TestDecodeUnalignedFallsBack: a decoder handed a misaligned subslice
// must still decode correctly (via the copying path).
func TestDecodeUnalignedFallsBack(t *testing.T) {
	f := sampleFrame()
	buf, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, len(buf)+1)
	copy(shifted[1:], buf)
	g, err := Decode(shifted[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("misaligned decode changed the frame")
	}
}

// TestDecodeAllocBudget pins the decode allocation count: a handful of
// slice headers per frame, independent of the row count. This is the
// alloc gate the serving path's binary decode depends on — it runs in
// every `go test`, so CI enforces it alongside the sweep gates.
func TestDecodeAllocBudget(t *testing.T) {
	const budget = 10 // frame + meta + column backing + pointer slice + one []string per string column
	allocs := func(rows int) float64 {
		buf, err := Encode(wideFrame(rows))
		if err != nil {
			t.Fatal(err)
		}
		var sink *source.Frame
		n := testing.AllocsPerRun(200, func() {
			f, err := Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			sink = f
		})
		_ = sink
		return n
	}
	small, large := allocs(100), allocs(10000)
	if small > budget {
		t.Errorf("decode of a 100-row frame allocates %.0f times, budget %d", small, budget)
	}
	if small != large {
		t.Errorf("allocations scale with rows: %.0f at 100 rows vs %.0f at 10000", small, large)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	buf, err := Encode(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:7] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"future version", func(b []byte) []byte { b[4] = 9; return reseal(b) }},
		{"nonzero flags", func(b []byte) []byte { b[6] = 1; return reseal(b) }},
		{"truncated body", func(b []byte) []byte { return reseal(b[:len(b)-20]) }},
		{"flipped cell bit", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"flipped crc", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }},
		{"trailing bytes", func(b []byte) []byte { return reseal(append(b, 0, 0, 0, 0)) }},
	}
	for _, tc := range cases {
		in := tc.mutate(append([]byte(nil), buf...))
		if _, err := Decode(in); err == nil {
			t.Errorf("%s: decode accepted corrupt input", tc.name)
		}
	}
}

// reseal recomputes the trailing checksum so a structural mutation is
// exercised past the CRC check.
func reseal(b []byte) []byte {
	if len(b) < 4 {
		return b
	}
	body := b[:len(b)-4]
	return le.AppendUint32(body, crc32.Checksum(body, castagnoli))
}

func TestDecodeErrorsAreErrors(t *testing.T) {
	// A frame whose column kinds lie about their payload must error, not
	// mis-alias: kind byte swapped to an out-of-range value.
	buf, err := Encode(sampleFrame())
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(buf, []byte("Samples"))
	if i < 0 {
		t.Fatal("column name not found")
	}
	buf[i+len("Samples")] = 7 // kind byte follows the name bytes
	if _, err := Decode(reseal(buf)); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("bad kind byte not rejected: %v", err)
	}
}

func TestEncodeRejectsBadFrames(t *testing.T) {
	f := sampleFrame()
	f.Cols[0].Strs = f.Cols[0].Strs[:1] // ragged columns
	if _, err := Encode(f); err == nil {
		t.Error("ragged frame encoded")
	}
	if _, err := Encode(source.NewFrame("", dates.New(2024, 1, 1))); err == nil {
		t.Error("nameless frame encoded")
	}
}

func TestFloatBitExactness(t *testing.T) {
	f := source.NewFrame("floats", dates.New(2024, 4, 21))
	c := f.AddFloats("V")
	c.Floats = []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.Pi, 5e-324}
	nan := math.NaN()
	c.Floats = append(c.Floats, nan)
	buf, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Col("V").Floats
	for i, want := range c.Floats {
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Errorf("cell %d: bits %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
}
