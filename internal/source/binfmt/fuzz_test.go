package binfmt

import (
	"testing"
)

// FuzzDecodeFrame drives the zero-copy decoder with arbitrary bytes: it
// must reject anything malformed with an error — never a panic, never an
// out-of-bounds alias — and anything it accepts must be a well-formed
// frame that re-encodes canonically. CI runs a short -fuzz smoke on top
// of the committed corpus.
func FuzzDecodeFrame(f *testing.F) {
	seeds := [][]byte{nil, magic[:]}
	if b, err := Encode(sampleFrame()); err == nil {
		seeds = append(seeds, b, b[:len(b)/2], b[4:], append(append([]byte(nil), b...), 0))
	}
	if b, err := Encode(wideFrame(3)); err == nil {
		seeds = append(seeds, b)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		if err := fr.Check(); err != nil {
			t.Fatalf("decoder accepted a frame that fails Check: %v", err)
		}
		// The format is canonical: whatever decodes must re-encode to the
		// exact input bytes.
		out, err := Encode(fr)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if string(out) != string(data) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(out))
		}
	})
}
