package source

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dates"
)

// frameJSON is the wire shape of the JSON codec: column-oriented, with
// explicit kinds, so the decode reconstructs the typed frame exactly.
type frameJSON struct {
	Source  string       `json:"source"`
	Date    string       `json:"date"`
	Rows    int          `json:"rows"`
	Meta    [][2]string  `json:"meta,omitempty"`
	Columns []columnJSON `json:"columns"`
}

type columnJSON struct {
	Name   string          `json:"name"`
	Kind   string          `json:"kind"`
	Values json.RawMessage `json:"values"`
}

// WriteJSON serializes the frame as column-oriented JSON. Like the CSV
// codec it is deterministic and idempotent: decode → re-encode is
// byte-identical.
func (f *Frame) WriteJSON(w io.Writer) error {
	if err := f.Check(); err != nil {
		return err
	}
	out := frameJSON{
		Source: f.Source,
		Date:   f.Date.String(),
		Rows:   f.Rows(),
		Meta:   f.Meta,
	}
	for _, c := range f.Cols {
		var vals any
		switch c.Kind {
		case String:
			vals = c.Strs
		case Int:
			vals = c.Ints
		default:
			vals = c.Floats
		}
		raw, err := json.Marshal(vals)
		if err != nil {
			return fmt.Errorf("source: encoding column %q: %w", c.Name, err)
		}
		out.Columns = append(out.Columns, columnJSON{Name: c.Name, Kind: c.Kind.String(), Values: raw})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// ReadJSON parses a frame written by WriteJSON.
func ReadJSON(r io.Reader) (*Frame, error) {
	var in frameJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("source: decoding frame JSON: %w", err)
	}
	d, err := dates.Parse(in.Date)
	if err != nil {
		return nil, fmt.Errorf("source: bad frame date: %w", err)
	}
	f := NewFrame(in.Source, d)
	f.Meta = in.Meta
	for _, cj := range in.Columns {
		kind, err := parseKind(cj.Kind)
		if err != nil {
			return nil, err
		}
		c := f.addCol(cj.Name, kind)
		switch kind {
		case String:
			if err := json.Unmarshal(cj.Values, &c.Strs); err != nil {
				return nil, fmt.Errorf("source: column %q: %w", cj.Name, err)
			}
		case Int:
			if err := json.Unmarshal(cj.Values, &c.Ints); err != nil {
				return nil, fmt.Errorf("source: column %q: %w", cj.Name, err)
			}
		default:
			if err := json.Unmarshal(cj.Values, &c.Floats); err != nil {
				return nil, fmt.Errorf("source: column %q: %w", cj.Name, err)
			}
		}
	}
	if err := f.Check(); err != nil {
		return nil, err
	}
	return f, nil
}
