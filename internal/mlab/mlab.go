// Package mlab simulates the M-Lab NDT speed-test dataset (§3.5):
// voluntary, user-initiated browser speed tests, counted per
// (country, org). The modelled biases follow the paper:
//
//   - Voluntary initiation: a persistent per-org "tech-savviness" skew
//     distorts relative counts.
//   - Search-engine gating: in countries where M-Lab is not integrated
//     into Google Search results, almost nobody finds the test — the
//     paper excludes those countries, and the generator reflects the
//     collapse in counts.
//   - Poor-performance triggering: users test more when the network
//     misbehaves, adding day-level noise.
//   - Shutdown days suppress testing like everything else.
package mlab

import (
	"sort"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/world"
)

// Derivation channel keys for the per-org and per-month noise streams.
const (
	chanSavvy uint64 = iota + 1
	chanMonthNoise
	chanCount
)

// Generator produces M-Lab-style test-count datasets over a world.
type Generator struct {
	W *world.World

	// BaseRate is the expected tests per user per month in integrated
	// countries.
	BaseRate float64

	root *rng.Stream
}

// New returns a generator with defaults.
func New(w *world.World, seed uint64) *Generator {
	return &Generator{W: w, BaseRate: 0.02, root: rng.New(seed).Split("mlab")}
}

// Dataset holds one month of test counts.
type Dataset struct {
	Month  dates.Date // first day of the month
	Counts map[orgs.CountryOrg]float64
}

// Integrated reports whether M-Lab is surfaced in search results for a
// country — the paper's first filtering step (§5.2).
func (g *Generator) Integrated(country string) bool {
	m := g.W.Market(country)
	return m != nil && m.Country.MLabIntegrated
}

// Generate produces the test counts for the month containing d.
func (g *Generator) Generate(d dates.Date) *Dataset {
	month := dates.New(d.Year, d.Month, 1)
	ds := &Dataset{Month: month, Counts: map[orgs.CountryOrg]float64{}}
	for _, cc := range g.W.Countries() {
		m := g.W.Market(cc)
		rate := g.BaseRate
		if !m.Country.MLabIntegrated {
			// Only users who seek out the M-Lab site run tests.
			rate *= 0.02
		}
		shut := g.W.ShutdownWindowFactor(cc, month.AddDays(27), 28)
		monthKey := uint64(int64(month.DayNumber()))
		for _, e := range m.ActiveEntries(month) {
			if !e.Org.Type.HostsUsers() {
				continue
			}
			users := g.W.TrueUsers(cc, e.Org.ID, month)
			// Persistent voluntary-tester skew per org.
			ss := g.root.Derive(chanSavvy, m.Key(), e.Key)
			savvy := ss.LogNormal(0, 0.25)
			// Month-level performance-trigger noise.
			ms := g.root.Derive(chanMonthNoise, m.Key(), e.Key, monthKey)
			noise := ms.LogNormal(0, 0.12)
			mean := users * rate * savvy * noise * shut
			if mean <= 0 {
				continue
			}
			cs := g.root.Derive(chanCount, m.Key(), e.Key, monthKey)
			n := cs.Poisson(mean)
			if n < 20 {
				continue // too few tests to be published meaningfully
			}
			ds.Counts[orgs.CountryOrg{Country: cc, Org: e.Org.ID}] = float64(n)
		}
	}
	return ds
}

// CountryShares returns one country's per-org share of tests, summing
// to 1.
func (ds *Dataset) CountryShares(country string) map[string]float64 {
	out := map[string]float64{}
	for k, v := range ds.Counts {
		if k.Country == country {
			out[k.Org] = v
		}
	}
	// Sorted-order summation keeps the shares bit-reproducible.
	return stats.NormalizeMap(out)
}

// Countries returns the sorted countries with published counts.
func (ds *Dataset) Countries() []string {
	seen := map[string]bool{}
	for k := range ds.Counts {
		seen[k.Country] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
