package mlab

import (
	"fmt"
	"sort"

	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/orgs"
	"repro/internal/source"
)

// DatasetName is the registry name of the M-Lab test-count dataset.
const DatasetName = "mlab"

// Frame converts the dataset to the uniform columnar form, one row per
// (country, org) pair sorted by country then org. The frame date is the
// month start, matching the native artifact. Lossless: DatasetFromFrame
// reconstructs an equal dataset.
func (ds *Dataset) Frame() *source.Frame {
	pairs := make([]orgs.CountryOrg, 0, len(ds.Counts))
	for pair := range ds.Counts {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Country != pairs[j].Country {
			return pairs[i].Country < pairs[j].Country
		}
		return pairs[i].Org < pairs[j].Org
	})
	f := source.NewFrame(DatasetName, ds.Month)
	cc := f.AddStrings("CC")
	org := f.AddStrings("Org")
	tests := f.AddFloats("Tests")
	for _, pair := range pairs {
		cc.Strs = append(cc.Strs, pair.Country)
		org.Strs = append(org.Strs, pair.Org)
		tests.Floats = append(tests.Floats, ds.Counts[pair])
	}
	return f
}

// DatasetFromFrame reconstructs the native dataset from its frame form.
func DatasetFromFrame(f *source.Frame) (*Dataset, error) {
	cc, org, tests := f.Col("CC"), f.Col("Org"), f.Col("Tests")
	if cc == nil || org == nil || tests == nil {
		return nil, fmt.Errorf("mlab: frame is missing dataset columns")
	}
	ds := &Dataset{Month: f.Date, Counts: make(map[orgs.CountryOrg]float64, f.Rows())}
	for i := 0; i < f.Rows(); i++ {
		ds.Counts[orgs.CountryOrg{Country: cc.Strs[i], Org: org.Strs[i]}] = tests.Floats[i]
	}
	return ds, nil
}

// Source adapts the generator to the uniform source interface. The cache
// is keyed by month start, so any day of a month resolves to the same
// native dataset without regeneration.
type Source struct {
	gen  *Generator
	days *source.Days[*Dataset]
}

// NewSource wraps a generator as a registrable source.
func NewSource(gen *Generator, metrics *obsv.Registry, cacheDays int) *Source {
	return &Source{
		gen:  gen,
		days: source.NewDays[*Dataset](metrics, "source", DatasetName, cacheDays),
	}
}

// Generator returns the wrapped generator.
func (s *Source) Generator() *Generator { return s.gen }

// Name implements source.Source.
func (s *Source) Name() string { return DatasetName }

// Window implements source.Source.
func (s *Source) Window() source.Window {
	return source.Window{First: source.SpanFirst, Last: source.SpanLast, Cadence: source.CadenceMonthly}
}

// Dataset returns the memoized native dataset for the month containing d.
func (s *Source) Dataset(d dates.Date) *Dataset {
	return s.days.Get(dates.New(d.Year, d.Month, 1), s.gen.Generate)
}

// Generate implements source.Source.
func (s *Source) Generate(d dates.Date) *source.Frame {
	return s.Dataset(d).Frame()
}

// CacheStats reports the native dataset cache's activity.
func (s *Source) CacheStats() source.CacheStats { return s.days.Stats() }
