package mlab

import (
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 11})

func TestDeterministic(t *testing.T) {
	d := dates.New(2024, 3, 1)
	a := New(testW, 4).Generate(d)
	b := New(testW, 4).Generate(d)
	if len(a.Counts) != len(b.Counts) {
		t.Fatal("count sets differ")
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("nondeterministic count for %v", k)
		}
	}
}

func TestMonthNormalization(t *testing.T) {
	g := New(testW, 4)
	a := g.Generate(dates.New(2024, 3, 1))
	b := g.Generate(dates.New(2024, 3, 17))
	if a.Month != b.Month {
		t.Fatal("same month should normalize to the same dataset key")
	}
	if len(a.Counts) != len(b.Counts) {
		t.Fatal("same-month datasets differ")
	}
}

func TestIntegrationGating(t *testing.T) {
	g := New(testW, 4)
	ds := g.Generate(dates.New(2024, 3, 1))
	perUser := func(cc string) float64 {
		total := 0.0
		for k, v := range ds.Counts {
			if k.Country == cc {
				total += v
			}
		}
		return total / testW.TotalUsers(cc, ds.Month)
	}
	// France is integrated, Myanmar and Turkmenistan are not.
	if !g.Integrated("FR") || g.Integrated("MM") || g.Integrated("TM") {
		t.Fatal("integration flags wrong")
	}
	if perUser("FR") < 10*perUser("TM") {
		t.Errorf("FR tests/user %v not ≫ TM %v", perUser("FR"), perUser("TM"))
	}
}

func TestSharesCorrelateWithTruth(t *testing.T) {
	ds := New(testW, 4).Generate(dates.New(2024, 3, 1))
	shares := ds.CountryShares("DE")
	if len(shares) < 3 {
		t.Fatalf("only %d German orgs in M-Lab", len(shares))
	}
	sum := 0.0
	for _, v := range shares {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	// The true market leader should be the M-Lab leader too (savvy bias
	// is mild in a high-reach country).
	argmax := func(m map[string]float64) string {
		best, bid := -1.0, ""
		for k, v := range m {
			if v > best {
				best, bid = v, k
			}
		}
		return bid
	}
	truth := map[string]float64{}
	for _, e := range testW.Market("DE").ActiveEntries(ds.Month) {
		if e.Org.Type.HostsUsers() {
			truth[e.Org.ID] = testW.TrueUsers("DE", e.Org.ID, ds.Month)
		}
	}
	if argmax(shares) != argmax(truth) {
		t.Errorf("M-Lab leader %s != true leader %s", argmax(shares), argmax(truth))
	}
}

func TestEyeballsOnly(t *testing.T) {
	ds := New(testW, 4).Generate(dates.New(2024, 3, 1))
	for k := range ds.Counts {
		o, ok := testW.Registry.ByID(k.Org)
		if !ok {
			t.Fatalf("unknown org %v", k)
		}
		if !o.Type.HostsUsers() {
			t.Errorf("non-eyeball org %s in speed tests", k.Org)
		}
	}
}

func TestCountriesListed(t *testing.T) {
	ds := New(testW, 4).Generate(dates.New(2024, 3, 1))
	cs := ds.Countries()
	if len(cs) < 40 {
		t.Fatalf("M-Lab sees %d countries", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] < cs[i-1] {
			t.Fatal("Countries not sorted")
		}
	}
}
