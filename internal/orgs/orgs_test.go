package orgs

import (
	"testing"
)

func TestRegistryAddAndLookup(t *testing.T) {
	r := NewRegistry()
	o := &Org{ID: "FR-ACC-01", Name: "Telecom Un", Type: ConvergedAccess, Home: "FR", ASNs: []uint32{64500, 64501}}
	if err := r.Add(o); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.ByID("FR-ACC-01"); !ok || got != o {
		t.Fatal("ByID miss")
	}
	for _, asn := range o.ASNs {
		if got, ok := r.ByASN(asn); !ok || got != o {
			t.Fatalf("ByASN(%d) miss", asn)
		}
	}
	if _, ok := r.ByASN(99); ok {
		t.Fatal("unknown ASN should miss")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	_ = r.Add(&Org{ID: "A", ASNs: []uint32{1}})
	if err := r.Add(&Org{ID: "A", ASNs: []uint32{2}}); err == nil {
		t.Error("duplicate ID should fail")
	}
	if err := r.Add(&Org{ID: "B", ASNs: []uint32{1}}); err == nil {
		t.Error("duplicate ASN should fail")
	}
	if err := r.Add(&Org{ID: "C"}); err == nil {
		t.Error("org without ASNs should fail")
	}
	if err := r.Add(nil); err == nil {
		t.Error("nil org should fail")
	}
}

func TestAggregateSumsSiblings(t *testing.T) {
	r := NewRegistry()
	_ = r.Add(&Org{ID: "FR-ACC-01", ASNs: []uint32{100, 101}})
	_ = r.Add(&Org{ID: "FR-ACC-02", ASNs: []uint32{200}})

	byAS := map[CountryAS]float64{
		{Country: "FR", ASN: 100}: 10,
		{Country: "FR", ASN: 101}: 5,
		{Country: "FR", ASN: 200}: 7,
		{Country: "BE", ASN: 100}: 2, // same org seen in another country
		{Country: "FR", ASN: 999}: 1, // unattributed AS
	}
	got := r.Aggregate(byAS)
	want := map[CountryOrg]float64{
		{Country: "FR", Org: "FR-ACC-01"}: 15,
		{Country: "FR", Org: "FR-ACC-02"}: 7,
		{Country: "BE", Org: "FR-ACC-01"}: 2,
		{Country: "FR", Org: "AS999"}:     1,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%v = %v, want %v", k, got[k], v)
		}
	}
}

func TestCountrySharesAndCountries(t *testing.T) {
	m := map[CountryOrg]float64{
		{Country: "FR", Org: "a"}: 1,
		{Country: "FR", Org: "b"}: 2,
		{Country: "DE", Org: "c"}: 3,
	}
	fr := CountryShares(m, "FR")
	if len(fr) != 2 || fr["a"] != 1 || fr["b"] != 2 {
		t.Fatalf("CountryShares FR = %v", fr)
	}
	cs := Countries(m)
	if len(cs) != 2 || cs[0] != "DE" || cs[1] != "FR" {
		t.Fatalf("Countries = %v", cs)
	}
}

func TestTypePredicates(t *testing.T) {
	if !FixedAccess.HostsUsers() || !MobileCarrier.HostsUsers() || !ConvergedAccess.HostsUsers() {
		t.Error("access/mobile types must host users")
	}
	for _, typ := range []Type{Enterprise, CloudProvider, CDNProvider, VPNProvider} {
		if typ.HostsUsers() {
			t.Errorf("%v should not host users", typ)
		}
	}
	if !FixedAccess.IsAccess() || !ConvergedAccess.IsAccess() {
		t.Error("fixed/converged must be access")
	}
	if MobileCarrier.IsAccess() {
		t.Error("pure mobile carriers are not in the broadband survey")
	}
	if FixedAccess.String() == "" || Type(99).String() == "" {
		t.Error("String must never be empty")
	}
}

func TestIDsSortedAndAll(t *testing.T) {
	r := NewRegistry()
	_ = r.Add(&Org{ID: "Z", ASNs: []uint32{1}})
	_ = r.Add(&Org{ID: "A", ASNs: []uint32{2}})
	_ = r.Add(&Org{ID: "M", ASNs: []uint32{3}})
	ids := r.IDs()
	if len(ids) != 3 || ids[0] != "A" || ids[1] != "M" || ids[2] != "Z" {
		t.Fatalf("IDs = %v", ids)
	}
	all := r.All()
	if len(all) != 3 || all[0].ID != "A" {
		t.Fatalf("All = %v", all)
	}
}
