// Package orgs models organizations and their sibling Autonomous Systems,
// and implements the (country, AS) → (country, org) aggregation of the
// paper's §3.1 ("Combining Orgs to Compare Datasets"): every dataset is
// reduced to (country, org) pairs before comparison so that sibling-AS
// bookkeeping differences between data sources cancel out.
package orgs

import (
	"fmt"
	"sort"
)

// Type classifies what kind of network an organization operates. The type
// determines how the org shows up in each dataset: access and mobile
// networks host users; enterprise networks host few; cloud and CDN
// networks carry traffic without hosting ad-reachable users; VPN providers
// concentrate foreign users behind locally-geolocated egress IPs.
type Type int

// Organization types.
const (
	FixedAccess Type = iota
	MobileCarrier
	ConvergedAccess // fixed + mobile under one org
	Enterprise
	CloudProvider
	CDNProvider
	VPNProvider
)

func (t Type) String() string {
	switch t {
	case FixedAccess:
		return "fixed-access"
	case MobileCarrier:
		return "mobile"
	case ConvergedAccess:
		return "converged-access"
	case Enterprise:
		return "enterprise"
	case CloudProvider:
		return "cloud"
	case CDNProvider:
		return "cdn"
	case VPNProvider:
		return "vpn"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// HostsUsers reports whether networks of this type primarily host human
// eyeballs (as opposed to servers or transit).
func (t Type) HostsUsers() bool {
	switch t {
	case FixedAccess, MobileCarrier, ConvergedAccess:
		return true
	default:
		return false
	}
}

// IsAccess reports whether the broadband-subscriber dataset would survey
// this type (it covers access networks only, §3.3).
func (t Type) IsAccess() bool {
	return t == FixedAccess || t == ConvergedAccess
}

// Org is an organization operating one or more sibling ASes.
type Org struct {
	ID   string // stable identifier, e.g. "FR-ACC-03"
	Name string // display name
	Type Type
	Home string   // home country ISO code
	ASNs []uint32 // sibling ASes, ascending
}

// CountryAS keys per-(country, AS) dataset rows.
type CountryAS struct {
	Country string
	ASN     uint32
}

// CountryOrg keys per-(country, org) dataset rows after aggregation.
type CountryOrg struct {
	Country string
	Org     string // Org.ID
}

// Registry resolves ASes to their owning organizations.
type Registry struct {
	byID  map[string]*Org
	byASN map[uint32]*Org
	ids   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:  map[string]*Org{},
		byASN: map[uint32]*Org{},
	}
}

// Add registers an organization. It returns an error on duplicate org IDs
// or ASNs — sibling sets must partition the AS number space.
func (r *Registry) Add(o *Org) error {
	if o == nil || o.ID == "" {
		return fmt.Errorf("orgs: nil or unnamed org")
	}
	if _, dup := r.byID[o.ID]; dup {
		return fmt.Errorf("orgs: duplicate org ID %q", o.ID)
	}
	if len(o.ASNs) == 0 {
		return fmt.Errorf("orgs: org %q has no ASNs", o.ID)
	}
	for _, asn := range o.ASNs {
		if prev, dup := r.byASN[asn]; dup {
			return fmt.Errorf("orgs: AS%d already owned by %q", asn, prev.ID)
		}
	}
	r.byID[o.ID] = o
	for _, asn := range o.ASNs {
		r.byASN[asn] = o
	}
	r.ids = append(r.ids, o.ID)
	sort.Strings(r.ids)
	return nil
}

// ByID returns the org with the given ID.
func (r *Registry) ByID(id string) (*Org, bool) {
	o, ok := r.byID[id]
	return o, ok
}

// ByASN returns the org owning the given AS.
func (r *Registry) ByASN(asn uint32) (*Org, bool) {
	o, ok := r.byASN[asn]
	return o, ok
}

// Len returns the number of registered organizations.
func (r *Registry) Len() int { return len(r.byID) }

// IDs returns all org IDs in sorted order.
func (r *Registry) IDs() []string {
	return append([]string(nil), r.ids...)
}

// All returns all orgs sorted by ID.
func (r *Registry) All() []*Org {
	out := make([]*Org, 0, len(r.ids))
	for _, id := range r.ids {
		out = append(out, r.byID[id])
	}
	return out
}

// Aggregate converts a per-(country, AS) measurement into a per-
// (country, org) measurement by summing sibling ASes, the paper's §3.1
// normalization. ASes not present in the registry are aggregated under a
// synthetic org ID "AS<asn>" so that unattributed measurements are kept
// visible rather than silently dropped.
func (r *Registry) Aggregate(byAS map[CountryAS]float64) map[CountryOrg]float64 {
	// Several ASes can fold into one org, so the += below sums floats;
	// iterate in sorted key order to keep those sums bit-reproducible.
	keys := make([]CountryAS, 0, len(byAS))
	for k := range byAS {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Country != keys[j].Country {
			return keys[i].Country < keys[j].Country
		}
		return keys[i].ASN < keys[j].ASN
	})
	out := make(map[CountryOrg]float64, len(byAS))
	for _, k := range keys {
		id := fmt.Sprintf("AS%d", k.ASN)
		if o, ok := r.byASN[k.ASN]; ok {
			id = o.ID
		}
		out[CountryOrg{Country: k.Country, Org: id}] += byAS[k]
	}
	return out
}

// CountryShares extracts one country's org→value map from a
// (country, org) keyed measurement.
func CountryShares(m map[CountryOrg]float64, country string) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		if k.Country == country {
			out[k.Org] = v
		}
	}
	return out
}

// Countries returns the sorted set of countries present in a measurement.
func Countries(m map[CountryOrg]float64) []string {
	seen := map[string]bool{}
	for k := range m {
		seen[k.Country] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
