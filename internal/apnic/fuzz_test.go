package apnic

import (
	"bytes"
	"testing"

	"repro/internal/dates"
)

// FuzzReadCSV exercises the report parser with arbitrary bytes: it must
// never panic, and any report it accepts must re-serialize and re-parse
// to the same row count.
func FuzzReadCSV(f *testing.F) {
	// Seed with a real report and a few corruptions of it.
	var buf bytes.Buffer
	rep := testGen().Generate(dates.New(2024, 4, 21))
	rep.Rows = rep.Rows[:10]
	_ = rep.WriteCSV(&buf)
	valid := buf.String()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add("")
	f.Add("# date,2024-01-01,window-days,60,,,,\n")
	f.Add("Rank,AS,AS Name,CC,Estimated Users,% of Country,% of Internet,Samples\n")

	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := ReadCSV(bytes.NewBufferString(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := parsed.WriteCSV(&out); err != nil {
			t.Fatalf("accepted report failed to serialize: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-parse of serialized report failed: %v", err)
		}
		if len(again.Rows) != len(parsed.Rows) {
			t.Fatalf("row count changed: %d -> %d", len(parsed.Rows), len(again.Rows))
		}
	})
}
