package apnic

import "repro/internal/dates"

// Test-only access to the uncached scan paths, so the memo regression
// tests can compare the cache front door against the raw computation.

func (g *Generator) CountryTotalsUncached(country string, d dates.Date) (int64, float64) {
	return g.countryTotalsScan(country, d)
}

func (g *Generator) CountryOrgSharesUncached(country string, d dates.Date) map[string]float64 {
	return g.countryOrgSharesScan(country, d)
}
