package apnic

import (
	"testing"

	"repro/internal/dates"
)

func archiveDays() []dates.Date {
	return dates.Range(dates.New(2024, 4, 1), dates.New(2024, 4, 5), 1)
}

func buildArchive(t *testing.T) *Archive {
	t.Helper()
	g := testGen()
	a := NewArchive()
	for _, d := range archiveDays() {
		a.Add(g.Generate(d))
	}
	return a
}

func TestArchiveAddAndLookup(t *testing.T) {
	a := buildArchive(t)
	if a.Len() != 5 {
		t.Fatalf("Len = %d", a.Len())
	}
	days := a.Days()
	for i := 1; i < len(days); i++ {
		if !days[i-1].Before(days[i]) {
			t.Fatal("Days not sorted")
		}
	}
	if _, ok := a.Report(dates.New(2024, 4, 3)); !ok {
		t.Fatal("missing archived day")
	}
	if _, ok := a.Report(dates.New(2020, 1, 1)); ok {
		t.Fatal("phantom day")
	}
}

func TestArchiveReplace(t *testing.T) {
	a := NewArchive()
	g := testGen()
	d := dates.New(2024, 4, 1)
	a.Add(g.Generate(d))
	a.Add(g.Generate(d))
	if a.Len() != 1 {
		t.Fatalf("replacing same day should not grow archive: %d", a.Len())
	}
}

func TestArchiveNearest(t *testing.T) {
	a := buildArchive(t)
	rep, ok := a.Nearest(dates.New(2024, 4, 10))
	if !ok || rep.Date != dates.New(2024, 4, 5) {
		t.Fatalf("Nearest after range = %v", rep.Date)
	}
	rep, _ = a.Nearest(dates.New(2024, 3, 1))
	if rep.Date != dates.New(2024, 4, 1) {
		t.Fatalf("Nearest before range = %v", rep.Date)
	}
	if _, ok := NewArchive().Nearest(dates.New(2024, 1, 1)); ok {
		t.Fatal("empty archive should have no nearest")
	}
}

func TestArchiveSeries(t *testing.T) {
	a := buildArchive(t)
	asns := a.ASNsIn("FR")
	if len(asns) < 3 {
		t.Fatalf("only %d French ASNs", len(asns))
	}
	series := a.Series("FR", asns[0])
	if len(series) != 5 {
		t.Fatalf("top AS present on %d of 5 days", len(series))
	}
	for i := 1; i < len(series); i++ {
		if !series[i-1].Date.Before(series[i].Date) {
			t.Fatal("series out of order")
		}
	}
	for _, p := range series {
		if p.Users <= 0 || p.Samples <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if got := a.Series("FR", 4_000_000_000); len(got) != 0 {
		t.Fatal("unknown ASN should give empty series")
	}
}

func TestArchiveCountrySeries(t *testing.T) {
	a := buildArchive(t)
	series := a.CountrySeries("DE")
	if len(series) != 5 {
		t.Fatalf("Germany present on %d of 5 days", len(series))
	}
	for _, p := range series {
		if p.Users < 1e6 {
			t.Fatalf("German user total %v too small", p.Users)
		}
	}
}

func TestArchiveOrgShareSeries(t *testing.T) {
	a := buildArchive(t)
	shares := a.OrgShareSeries(testW.Registry, "FR")
	if len(shares) != 5 {
		t.Fatalf("%d share snapshots", len(shares))
	}
	for _, snap := range shares {
		total := 0.0
		for _, v := range snap {
			total += v
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("shares sum to %v", total)
		}
	}
}

func TestArchiveDiskRoundTrip(t *testing.T) {
	a := buildArchive(t)
	dir := t.TempDir()
	if err := a.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != a.Len() {
		t.Fatalf("loaded %d days, want %d", loaded.Len(), a.Len())
	}
	for _, d := range a.Days() {
		orig, _ := a.Report(d)
		got, ok := loaded.Report(d)
		if !ok || len(got.Rows) != len(orig.Rows) {
			t.Fatalf("day %v mismatch after round trip", d)
		}
	}
}

func TestLoadArchiveEmptyDir(t *testing.T) {
	if _, err := LoadArchive(t.TempDir()); err == nil {
		t.Fatal("empty directory should fail")
	}
}
