package apnic

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/dates"
	"repro/internal/orgs"
	"repro/internal/stats"
)

// Archive is a collection of daily reports loaded from disk — the form in
// which researchers consume the real dataset (one CSV per day). It
// supports per-day lookup and per-(country, AS) time-series queries like
// the ones behind the paper's Figure 1.
type Archive struct {
	reports map[dates.Date]*Report
	days    []dates.Date // sorted
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{reports: map[dates.Date]*Report{}}
}

// Add inserts a report, replacing any previous report for the same day.
func (a *Archive) Add(rep *Report) {
	if _, exists := a.reports[rep.Date]; !exists {
		a.days = append(a.days, rep.Date)
		sort.Slice(a.days, func(i, j int) bool { return a.days[i].Before(a.days[j]) })
	}
	a.reports[rep.Date] = rep
}

// LoadArchive reads every "apnic-*.csv" file in a directory (the layout
// cmd/apnicgen writes).
func LoadArchive(dir string) (*Archive, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "apnic-*.csv"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("apnic: no apnic-*.csv files in %s", dir)
	}
	sort.Strings(matches)
	a := NewArchive()
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rep, err := ReadCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("apnic: loading %s: %w", filepath.Base(path), err)
		}
		a.Add(rep)
	}
	return a, nil
}

// Len returns the number of days in the archive.
func (a *Archive) Len() int { return len(a.reports) }

// Days returns the archived days in ascending order.
func (a *Archive) Days() []dates.Date {
	return append([]dates.Date(nil), a.days...)
}

// Report returns the report for a day.
func (a *Archive) Report(d dates.Date) (*Report, bool) {
	r, ok := a.reports[d]
	return r, ok
}

// Nearest returns the archived report closest to d (ties resolve to the
// earlier day). ok is false for an empty archive.
func (a *Archive) Nearest(d dates.Date) (*Report, bool) {
	if len(a.days) == 0 {
		return nil, false
	}
	best := a.days[0]
	bestDist := abs(d.Sub(best))
	for _, day := range a.days[1:] {
		if dist := abs(d.Sub(day)); dist < bestDist {
			best, bestDist = day, dist
		}
	}
	return a.reports[best], true
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Point is one day of a per-(country, AS) series.
type Point struct {
	Date    dates.Date
	Users   float64
	Samples int64
}

// Series extracts the (country, AS) time series across the archive —
// days where the AS is absent (below the sample floor) are skipped,
// exactly as in the published dataset.
func (a *Archive) Series(country string, asn uint32) []Point {
	var out []Point
	for _, d := range a.days {
		for _, row := range a.reports[d].Rows {
			if row.CC == country && row.ASN == asn {
				out = append(out, Point{Date: d, Users: row.Users, Samples: row.Samples})
				break
			}
		}
	}
	return out
}

// CountrySeries returns per-day totals for one country.
func (a *Archive) CountrySeries(country string) []Point {
	var out []Point
	for _, d := range a.days {
		var p Point
		p.Date = d
		found := false
		for _, row := range a.reports[d].Rows {
			if row.CC == country {
				p.Users += row.Users
				p.Samples += row.Samples
				found = true
			}
		}
		if found {
			out = append(out, p)
		}
	}
	return out
}

// OrgShareSeries returns, for each archived day, a country's per-org user
// shares — the input to the temporal-stability analysis (§5.1.2).
func (a *Archive) OrgShareSeries(reg *orgs.Registry, country string) []map[string]float64 {
	var out []map[string]float64
	for _, d := range a.days {
		users := orgs.CountryShares(a.reports[d].OrgUsersCached(reg), country)
		// Sorted-order summation keeps the shares bit-reproducible.
		if stats.SumMap(users) == 0 {
			continue
		}
		out = append(out, stats.NormalizeMap(users))
	}
	return out
}

// ASNsIn returns the ASNs observed for a country anywhere in the archive,
// sorted by their peak estimated users, descending.
func (a *Archive) ASNsIn(country string) []uint32 {
	peak := map[uint32]float64{}
	for _, d := range a.days {
		for _, row := range a.reports[d].Rows {
			if row.CC == country && row.Users > peak[row.ASN] {
				peak[row.ASN] = row.Users
			}
		}
	}
	out := make([]uint32, 0, len(peak))
	for asn := range peak {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool {
		if peak[out[i]] != peak[out[j]] {
			return peak[out[i]] > peak[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// WriteDir writes every report as apnic-<date>.csv into dir, creating it
// if needed — the inverse of LoadArchive.
func (a *Archive) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range a.days {
		var b strings.Builder
		if err := a.reports[d].WriteCSV(&b); err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("apnic-%s.csv", d))
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
