package apnic

import (
	"testing"

	"repro/internal/dates"
)

// TestGenerateAllocBudget guards the allocation-free hot path: after the
// world's year/day caches are warm, a daily report costs a handful of
// allocations (the report struct, its row slice, and the per-country
// maps) — measured at ~14 per run. A reintroduced fmt.Sprintf or
// string-labelled Split in the per-(country, org, day) loops would add
// tens of thousands and trip the budget immediately.
func TestGenerateAllocBudget(t *testing.T) {
	const budget = 64
	g := testGen()
	d := dates.New(2024, 4, 21)
	g.Generate(d) // warm the world caches so steady-state cost is measured
	allocs := testing.AllocsPerRun(5, func() { g.Generate(d) })
	if allocs > budget {
		t.Fatalf("apnic.Generate allocates %v times per run, budget %d", allocs, budget)
	}
}
