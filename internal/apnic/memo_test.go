package apnic

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/dates"
)

// samePointer reports whether two maps share the same underlying storage —
// the memo's "repeat lookups return the cached instance" contract.
func samePointer(a, b map[string]float64) bool {
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// memoGrid is the sampled (country, day) grid for the memo regression
// tests: a spread of market sizes and dates covering the Russia ads
// pause, shutdown-prone countries, and plain markets.
func memoGrid() (ccs []string, days []dates.Date) {
	ccs = []string{"DE", "IN", "RU", "MM", "NO", "US", "FR", "TM"}
	days = []dates.Date{
		dates.New(2021, 6, 1),
		dates.New(2022, 3, 15), // just after the Russia ads pause
		dates.New(2023, 7, 20),
		dates.New(2024, 2, 29),
		dates.New(2024, 12, 25),
	}
	return ccs, days
}

// TestCountryTotalsMemoEqualsUncached checks the memoized front door
// returns exactly what the raw scan computes, for first and repeat
// lookups, across a sampled grid.
func TestCountryTotalsMemoEqualsUncached(t *testing.T) {
	g := testGen()
	ref := testGen() // separate generator: its memo stays cold per pair
	ccs, days := memoGrid()
	for _, cc := range ccs {
		for _, d := range days {
			wantS, wantU := ref.CountryTotalsUncached(cc, d)
			for pass := 0; pass < 2; pass++ { // miss then hit
				gotS, gotU := g.CountryTotals(cc, d)
				if gotS != wantS || gotU != wantU {
					t.Fatalf("CountryTotals(%s, %s) pass %d = (%d, %v), uncached (%d, %v)",
						cc, d, pass, gotS, gotU, wantS, wantU)
				}
			}
		}
	}
	_, scans, _, _ := g.MemoStats()
	if want := int64(len(ccs) * len(days)); scans != want {
		t.Fatalf("totals scans = %d, want %d (one per distinct pair)", scans, want)
	}
}

// TestCountryOrgSharesMemoEqualsUncached is the same regression for the
// share maps: identical keys and bit-identical values.
func TestCountryOrgSharesMemoEqualsUncached(t *testing.T) {
	g := testGen()
	ref := testGen()
	ccs, days := memoGrid()
	for _, cc := range ccs {
		for _, d := range days {
			want := ref.CountryOrgSharesUncached(cc, d)
			got := g.CountryOrgShares(cc, d)
			if len(got) != len(want) {
				t.Fatalf("shares(%s, %s): %d orgs memoized, %d uncached", cc, d, len(got), len(want))
			}
			for id, v := range want {
				if got[id] != v {
					t.Fatalf("shares(%s, %s)[%s] = %v memoized, %v uncached", cc, d, id, got[id], v)
				}
			}
			if again := g.CountryOrgShares(cc, d); !samePointer(again, got) {
				t.Fatalf("repeat lookup returned a fresh map for (%s, %s)", cc, d)
			}
		}
	}
	_, _, _, scans := g.MemoStats()
	if want := int64(len(ccs) * len(days)); scans != want {
		t.Fatalf("share scans = %d, want %d (one per distinct pair)", scans, want)
	}
}

// TestMemoSingleflightConcurrent hammers one (country, day) pair from
// many goroutines: one scan, one shared map instance.
func TestMemoSingleflightConcurrent(t *testing.T) {
	g := testGen()
	d := dates.New(2023, 7, 20)
	const goroutines = 32
	maps := make([]map[string]float64, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			maps[i] = g.CountryOrgShares("DE", d)
			g.CountryTotals("DE", d)
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if !samePointer(maps[i], maps[0]) {
			t.Fatalf("goroutine %d saw a different map instance", i)
		}
	}
	_, tScans, _, sScans := g.MemoStats()
	if tScans != 1 || sScans != 1 {
		t.Fatalf("scans = (%d totals, %d shares), want 1 each", tScans, sScans)
	}
	if totals, shares := g.MemoLen(); totals != 1 || shares != 1 {
		t.Fatalf("memo lengths = (%d, %d), want 1 each", totals, shares)
	}
}

// BenchmarkCountryOrgSharesMemoized measures the hot repeat-lookup path
// the stability analysis pays after the first scan of a pair.
func BenchmarkCountryOrgSharesMemoized(b *testing.B) {
	g := testGen()
	d := dates.New(2023, 7, 20)
	g.CountryOrgShares("DE", d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountryOrgShares("DE", d)
	}
}

// BenchmarkCountryOrgSharesUncached is the same lookup without the memo —
// what every repeat (country, day) scan cost before memoization.
func BenchmarkCountryOrgSharesUncached(b *testing.B) {
	g := testGen()
	d := dates.New(2023, 7, 20)
	for i := 0; i < b.N; i++ {
		g.CountryOrgSharesUncached("DE", d)
	}
}
