package apnic

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/dates"
)

// csvHeader mirrors the public dataset's column names (§3.2).
var csvHeader = []string{"Rank", "AS", "AS Name", "CC", "Estimated Users", "% of Country", "% of Internet", "Samples"}

// WriteCSV serializes a report in the dataset's column layout.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := []string{"# date", r.Date.String(), "window-days", strconv.Itoa(r.Window), "", "", "", ""}
	if err := cw.Write(meta); err != nil {
		return err
	}
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Rank),
			"AS" + strconv.FormatUint(uint64(row.ASN), 10),
			row.ASName,
			row.CC,
			strconv.FormatFloat(row.Users, 'f', 2, 64),
			strconv.FormatFloat(row.PctCountry, 'f', 4, 64),
			strconv.FormatFloat(row.PctInternet, 'f', 6, 64),
			strconv.FormatInt(row.Samples, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a report written by WriteCSV.
func ReadCSV(rd io.Reader) (*Report, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = len(csvHeader)

	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("apnic: reading metadata: %w", err)
	}
	if len(meta) < 4 || meta[0] != "# date" {
		return nil, fmt.Errorf("apnic: missing metadata row")
	}
	date, err := dates.Parse(meta[1])
	if err != nil {
		return nil, fmt.Errorf("apnic: bad date: %w", err)
	}
	window, err := strconv.Atoi(meta[3])
	if err != nil {
		return nil, fmt.Errorf("apnic: bad window: %w", err)
	}

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("apnic: reading header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("apnic: header column %d = %q, want %q", i, header[i], want)
		}
	}

	rep := &Report{Date: date, Window: window}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("apnic: reading row: %w", err)
		}
		row, err := parseRow(rec)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func parseRow(rec []string) (Row, error) {
	var row Row
	var err error
	if row.Rank, err = strconv.Atoi(rec[0]); err != nil {
		return row, fmt.Errorf("apnic: bad rank %q", rec[0])
	}
	asStr := rec[1]
	if len(asStr) > 2 && asStr[:2] == "AS" {
		asStr = asStr[2:]
	}
	asn, err := strconv.ParseUint(asStr, 10, 32)
	if err != nil {
		return row, fmt.Errorf("apnic: bad AS %q", rec[1])
	}
	row.ASN = uint32(asn)
	row.ASName = rec[2]
	row.CC = rec[3]
	if row.Users, err = strconv.ParseFloat(rec[4], 64); err != nil {
		return row, fmt.Errorf("apnic: bad users %q", rec[4])
	}
	if row.PctCountry, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return row, fmt.Errorf("apnic: bad %% of country %q", rec[5])
	}
	if row.PctInternet, err = strconv.ParseFloat(rec[6], 64); err != nil {
		return row, fmt.Errorf("apnic: bad %% of internet %q", rec[6])
	}
	if row.Samples, err = strconv.ParseInt(rec[7], 10, 64); err != nil {
		return row, fmt.Errorf("apnic: bad samples %q", rec[7])
	}
	return row, nil
}
