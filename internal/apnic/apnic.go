// Package apnic simulates the APNIC per-AS User Population dataset (§3.2):
// a daily report of (Rank, AS, AS Name, CC, Estimated Users, % of Country,
// % of Internet, Samples) rows derived from non-targeted ad impressions
// normalized by ITU per-country Internet-user estimates.
//
// The measurement process modelled here follows the paper's description
// and the biases it documents:
//
//   - Samples are ad impressions: proportional to each org's ad-reachable
//     users (country ad reach × org ad factor × a persistent per-org bias),
//     with Poisson counting noise and weekly ad-serving volatility.
//   - IP-geolocated attribution: VPN egress users count toward the hub
//     country (Norway), not their origin.
//   - Estimated Users = country ITU estimate × the org's share of the
//     country's samples — so an ITU anomaly moves every AS in the country.
//   - Rows with fewer than MinSamples (empirically ≥120 in the paper,
//     §4.2) are dropped, which is why APNIC misses the long tail of tiny
//     networks the CDN still observes.
//   - Event shocks: Google pausing ads in Russia (March 2022) and
//     government shutdown days (Myanmar) suppress sampling.
package apnic

import (
	"fmt"
	"sort"

	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/world"
)

// DefaultSampleRate is the mean ad impressions per ad-reachable user per
// 60-day window. Calibrated against the paper's Table 2, where India's
// largest AS shows ≈278M estimated users and ≈8.4M window samples.
const DefaultSampleRate = 0.034

// DefaultMinSamples is the empirical inclusion floor the paper observed.
const DefaultMinSamples = 120

// russiaAdsPaused is when Google paused ads in Russia (§3.2, §4.4).
var russiaAdsPaused = dates.New(2022, 3, 10)

// Generator produces daily APNIC-style reports over a world.
type Generator struct {
	W   *world.World
	ITU *itu.Estimator

	// SampleRate is impressions per ad-reachable user per window.
	SampleRate float64
	// MinSamples is the per-AS inclusion floor.
	MinSamples int64
	// Window is the moving-window length in days (APNIC uses 60).
	Window int

	root *rng.Stream
}

// New returns a generator with the paper-calibrated defaults.
func New(w *world.World, ituEst *itu.Estimator, seed uint64) *Generator {
	return &Generator{
		W:          w,
		ITU:        ituEst,
		SampleRate: DefaultSampleRate,
		MinSamples: DefaultMinSamples,
		Window:     60,
		root:       rng.New(seed).Split("apnic"),
	}
}

// Row is one line of the daily report.
type Row struct {
	Rank        int     // 1-based rank by estimated users (global)
	ASN         uint32  // autonomous system number
	ASName      string  // display name
	CC          string  // ISO country code
	Users       float64 // estimated users of this AS in this country
	PctCountry  float64 // percent of the country's Internet users
	PctInternet float64 // percent of the world's Internet users
	Samples     int64   // ad impressions in the window
}

// Report is one day's dataset.
type Report struct {
	Date   dates.Date
	Window int
	Rows   []Row
}

// adReach returns the effective country ad reach on a date, applying the
// Russia ads pause.
func (g *Generator) adReach(country string, d dates.Date) float64 {
	c := g.W.Market(country).Country
	reach := c.AdReach
	if country == "RU" && !d.Before(russiaAdsPaused) {
		reach *= 0.25
	}
	return reach
}

// windowNoise returns the residual multiplicative volatility of the
// 60-day-averaged sample count for an org, drawn per (org, week) so that
// consecutive days share most of their window.
func (g *Generator) windowNoise(country, orgID string, d dates.Date) float64 {
	c := g.W.Market(country).Country
	wk := d.DayNumber() / 7
	s := g.root.Split(fmt.Sprintf("vol/%s/%s/%d", country, orgID, wk))
	return s.LogNormal(0, c.AdVolatility)
}

// shutdownFactor returns the fraction of window sampling surviving
// government shutdowns: the window-average of the world's shared shutdown
// realization — APNIC's 60-day smoothing blunts individual shutdown days.
func (g *Generator) shutdownFactor(country string, d dates.Date) float64 {
	return g.W.ShutdownWindowFactor(country, d, g.Window)
}

// OrgSamples returns the expected-plus-noise ad-impression count for one
// (country, org) on a date, before the per-AS split and inclusion floor.
func (g *Generator) OrgSamples(country, orgID string, d dates.Date) int64 {
	e := g.W.Entry(country, orgID)
	if e == nil {
		return 0
	}
	apparent := g.W.APNICUsers(country, orgID, d)
	mean := apparent * g.adReach(country, d) * e.AdFactor * e.APNICBias *
		g.SampleRate * g.windowNoise(country, orgID, d) * g.shutdownFactor(country, d)
	if mean <= 0 {
		return 0
	}
	s := g.root.Split(fmt.Sprintf("poisson/%s/%s/%s", country, orgID, d))
	return s.Poisson(mean)
}

// Generate produces the report for one day. Reports are independent: the
// same (world, seed, date) always yields the same report regardless of
// what was generated before.
func (g *Generator) Generate(d dates.Date) *Report {
	rep := &Report{Date: d, Window: g.Window}

	type asSample struct {
		asn     uint32
		name    string
		cc      string
		samples int64
	}
	countrySamples := map[string]int64{}
	var rows []asSample

	for _, code := range g.W.Countries() {
		m := g.W.Market(code)
		for _, e := range m.ActiveEntries(d) {
			total := g.OrgSamples(code, e.Org.ID, d)
			if total == 0 {
				continue
			}
			// Split the org total across sibling ASes by their fixed
			// weights; the last AS takes the rounding remainder.
			var assigned int64
			for i, asn := range e.Org.ASNs {
				var share int64
				if i == len(e.Org.ASNs)-1 {
					share = total - assigned
				} else {
					share = int64(float64(total) * e.ASNWeights[i])
				}
				assigned += share
				if share < g.MinSamples {
					continue
				}
				rows = append(rows, asSample{
					asn:     asn,
					name:    fmt.Sprintf("%s (AS%d)", e.Org.Name, asn),
					cc:      code,
					samples: share,
				})
				countrySamples[code] += share
			}
		}
	}

	worldITU := g.ITU.WorldTotal(d)
	for _, r := range rows {
		ctotal := countrySamples[r.cc]
		if ctotal == 0 {
			continue
		}
		ituUsers := g.ITU.Users(r.cc, d)
		users := float64(r.samples) / float64(ctotal) * ituUsers
		rep.Rows = append(rep.Rows, Row{
			ASN:         r.asn,
			ASName:      r.name,
			CC:          r.cc,
			Users:       users,
			PctCountry:  100 * float64(r.samples) / float64(ctotal),
			PctInternet: 100 * users / worldITU,
			Samples:     r.samples,
		})
	}

	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Users != rep.Rows[j].Users {
			return rep.Rows[i].Users > rep.Rows[j].Users
		}
		return rep.Rows[i].ASN < rep.Rows[j].ASN
	})
	for i := range rep.Rows {
		rep.Rows[i].Rank = i + 1
	}
	return rep
}

// OrgUsers aggregates a report's estimated users to (country, org) pairs
// using the registry (§3.1).
func (r *Report) OrgUsers(reg *orgs.Registry) map[orgs.CountryOrg]float64 {
	byAS := make(map[orgs.CountryAS]float64, len(r.Rows))
	for _, row := range r.Rows {
		byAS[orgs.CountryAS{Country: row.CC, ASN: row.ASN}] += row.Users
	}
	return reg.Aggregate(byAS)
}

// OrgSamples aggregates a report's raw samples to (country, org) pairs.
func (r *Report) OrgSamples(reg *orgs.Registry) map[orgs.CountryOrg]float64 {
	byAS := make(map[orgs.CountryAS]float64, len(r.Rows))
	for _, row := range r.Rows {
		byAS[orgs.CountryAS{Country: row.CC, ASN: row.ASN}] += float64(row.Samples)
	}
	return reg.Aggregate(byAS)
}

// CountryUsers sums estimated users per country.
func (r *Report) CountryUsers() map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		out[row.CC] += row.Users
	}
	return out
}

// CountrySamples sums raw samples per country.
func (r *Report) CountrySamples() map[string]int64 {
	out := map[string]int64{}
	for _, row := range r.Rows {
		out[row.CC] += row.Samples
	}
	return out
}

// TopOrgs returns a country's org IDs ordered by estimated users,
// descending.
func (r *Report) TopOrgs(reg *orgs.Registry, country string) []string {
	users := orgs.CountryShares(r.OrgUsers(reg), country)
	ids := make([]string, 0, len(users))
	for id := range users {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if users[ids[i]] != users[ids[j]] {
			return users[ids[i]] > users[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// CountryTotals computes one country's total window samples and ITU-scaled
// estimated users on a date without generating the full world report.
// The best-day selection rule (§5.1.2) scans 60 days per country, and this
// keeps that scan cheap. Totals include only ASes above the inclusion
// floor, like the published dataset.
func (g *Generator) CountryTotals(country string, d dates.Date) (samples int64, users float64) {
	m := g.W.Market(country)
	if m == nil {
		return 0, 0
	}
	for _, e := range m.ActiveEntries(d) {
		total := g.OrgSamples(country, e.Org.ID, d)
		if total == 0 {
			continue
		}
		var assigned int64
		for i := range e.Org.ASNs {
			var share int64
			if i == len(e.Org.ASNs)-1 {
				share = total - assigned
			} else {
				share = int64(float64(total) * e.ASNWeights[i])
			}
			assigned += share
			if share >= g.MinSamples {
				samples += share
			}
		}
	}
	if samples > 0 {
		users = g.ITU.Users(country, d)
	}
	return samples, users
}

// CountryOrgShares computes one country's per-org share of estimated
// users on a date without generating the full world report: shares within
// a country equal the org's share of the country's included samples.
// Orgs entirely below the inclusion floor are absent, like in the
// published dataset.
func (g *Generator) CountryOrgShares(country string, d dates.Date) map[string]float64 {
	m := g.W.Market(country)
	if m == nil {
		return nil
	}
	out := map[string]float64{}
	var total int64
	for _, e := range m.ActiveEntries(d) {
		orgTotal := g.OrgSamples(country, e.Org.ID, d)
		if orgTotal == 0 {
			continue
		}
		var assigned, included int64
		for i := range e.Org.ASNs {
			var share int64
			if i == len(e.Org.ASNs)-1 {
				share = orgTotal - assigned
			} else {
				share = int64(float64(orgTotal) * e.ASNWeights[i])
			}
			assigned += share
			if share >= g.MinSamples {
				included += share
			}
		}
		if included > 0 {
			out[e.Org.ID] = float64(included)
			total += included
		}
	}
	if total == 0 {
		return map[string]float64{}
	}
	for k := range out {
		out[k] /= float64(total)
	}
	return out
}
