// Package apnic simulates the APNIC per-AS User Population dataset (§3.2):
// a daily report of (Rank, AS, AS Name, CC, Estimated Users, % of Country,
// % of Internet, Samples) rows derived from non-targeted ad impressions
// normalized by ITU per-country Internet-user estimates.
//
// The measurement process modelled here follows the paper's description
// and the biases it documents:
//
//   - Samples are ad impressions: proportional to each org's ad-reachable
//     users (country ad reach × org ad factor × a persistent per-org bias),
//     with Poisson counting noise and weekly ad-serving volatility.
//   - IP-geolocated attribution: VPN egress users count toward the hub
//     country (Norway), not their origin.
//   - Estimated Users = country ITU estimate × the org's share of the
//     country's samples — so an ITU anomaly moves every AS in the country.
//   - Rows with fewer than MinSamples (empirically ≥120 in the paper,
//     §4.2) are dropped, which is why APNIC misses the long tail of tiny
//     networks the CDN still observes.
//   - Event shocks: scenario events (internal/scenario) suppress
//     sampling — the paper world's Russia ads pause (March 2022) and
//     Myanmar's government shutdown days, or any counterfactual shock a
//     non-paper scenario declares (CGNAT rollouts, other ad-market
//     exits). The generator reads them through the world's per-market
//     compiled view; nothing country-specific is hard-coded here.
package apnic

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/orgs"
	"repro/internal/rng"
	"repro/internal/syncx"
	"repro/internal/world"
)

// DefaultSampleRate is the mean ad impressions per ad-reachable user per
// 60-day window. Calibrated against the paper's Table 2, where India's
// largest AS shows ≈278M estimated users and ≈8.4M window samples.
const DefaultSampleRate = 0.034

// DefaultMinSamples is the empirical inclusion floor the paper observed.
const DefaultMinSamples = 120

// Generator produces daily APNIC-style reports over a world.
type Generator struct {
	W   *world.World
	ITU *itu.Estimator

	// SampleRate is impressions per ad-reachable user per window.
	SampleRate float64
	// MinSamples is the per-AS inclusion floor.
	MinSamples int64
	// Window is the moving-window length in days (APNIC uses 60).
	Window int

	root *rng.Stream

	// asName caches the "<Org Name> (AS<n>)" display strings so report
	// generation does not re-format one per row per day.
	asName map[uint32]string

	// Demand-driven memoization of the per-(country, day) scans. The
	// stability analysis (Figure 8's eight curves and their 60-day
	// best-day windows) and the 2024 elasticity sweep (Figure 7) hit the
	// same (country, day) pairs thousands of times across runners; both
	// scans are pure functions of (seed, country, day), so each pair is
	// computed once and shared. Sharded singleflight keeps concurrent
	// runners from serializing on one cache mutex. Configuration fields
	// (SampleRate, MinSamples, Window) must be set before first use —
	// memoized values are not invalidated.
	totalsMemo *syncx.Sharded[ccDay, countryTotals]
	sharesMemo *syncx.Sharded[ccDay, map[string]float64]

	totalsScans atomic.Int64 // uncached CountryTotals scans (memo fills)
	totalsReqs  atomic.Int64 // CountryTotals lookups
	sharesScans atomic.Int64 // uncached CountryOrgShares scans (memo fills)
	sharesReqs  atomic.Int64 // CountryOrgShares lookups
}

// ccDay keys the per-(country, day) memo caches.
type ccDay struct {
	cc  string
	day int // dates.Date.DayNumber()
}

// countryTotals is the memoized CountryTotals result.
type countryTotals struct {
	samples int64
	users   float64
}

// hashCCDay spreads (country, day) keys across memo shards.
func hashCCDay(k ccDay) uint64 {
	return rng.KeyString(k.cc) ^ (uint64(int64(k.day)) * 0x9e3779b97f4a7c15)
}

// Derivation channel keys for the generator's noise streams. Hot loops
// derive per-(country, org, time) streams as integer tuples —
// (channel, countryKey, orgKey, timeKey) — instead of formatted labels.
const (
	chanVolatility uint64 = iota + 1
	chanPoisson
)

// New returns a generator with the paper-calibrated defaults.
func New(w *world.World, ituEst *itu.Estimator, seed uint64) *Generator {
	g := &Generator{
		W:          w,
		ITU:        ituEst,
		SampleRate: DefaultSampleRate,
		MinSamples: DefaultMinSamples,
		Window:     60,
		root:       rng.New(seed).Split("apnic"),
		asName:     map[uint32]string{},
		totalsMemo: syncx.NewSharded[ccDay, countryTotals](16, hashCCDay),
		sharesMemo: syncx.NewSharded[ccDay, map[string]float64](16, hashCCDay),
	}
	for _, o := range w.Registry.All() {
		for _, asn := range o.ASNs {
			g.asName[asn] = fmt.Sprintf("%s (AS%d)", o.Name, asn)
		}
	}
	return g
}

// Row is one line of the daily report.
type Row struct {
	Rank        int     // 1-based rank by estimated users (global)
	ASN         uint32  // autonomous system number
	ASName      string  // display name
	CC          string  // ISO country code
	Users       float64 // estimated users of this AS in this country
	PctCountry  float64 // percent of the country's Internet users
	PctInternet float64 // percent of the world's Internet users
	Samples     int64   // ad impressions in the window
}

// Report is one day's dataset.
type Report struct {
	Date   dates.Date
	Window int
	Rows   []Row

	// aggMu guards the lazily-cached OrgUsers aggregation below. Reports
	// are shared read-only between concurrent experiment runners, each of
	// which needs the same (country, org) aggregation.
	aggMu    sync.Mutex
	aggReg   *orgs.Registry
	aggUsers map[orgs.CountryOrg]float64
}

// adReach returns the effective country ad reach on a date: the geo
// registry's baseline times whatever sampling shocks the world's scenario
// has active (ad-market exits, CGNAT rollouts). The paper scenario
// compiles Russia's 2022-03-10 ads pause to a single 0.25 step, so this
// computes exactly the `reach *= 0.25` the pre-scenario code did.
func (g *Generator) adReach(m *world.Market, d dates.Date) float64 {
	reach := m.Country.AdReach
	if sh := m.Shocks(); sh != nil && sh.HasSampling() {
		reach *= sh.SamplingFactor(d.DayNumber())
	}
	return reach
}

// windowNoise returns the residual multiplicative volatility of the
// 60-day-averaged sample count for an org, drawn per (org, week) so that
// consecutive days share most of their window.
func (g *Generator) windowNoise(m *world.Market, e *world.Entry, d dates.Date) float64 {
	wk := d.DayNumber() / 7
	s := g.root.Derive(chanVolatility, m.Key(), e.Key, uint64(int64(wk)))
	return s.LogNormal(0, m.Country.AdVolatility)
}

// shutdownFactor returns the fraction of window sampling surviving
// government shutdowns: the window-average of the world's shared shutdown
// realization — APNIC's 60-day smoothing blunts individual shutdown days.
func (g *Generator) shutdownFactor(country string, d dates.Date) float64 {
	return g.W.ShutdownWindowFactor(country, d, g.Window)
}

// OrgSamples returns the expected-plus-noise ad-impression count for one
// (country, org) on a date, before the per-AS split and inclusion floor.
func (g *Generator) OrgSamples(country, orgID string, d dates.Date) int64 {
	e := g.W.Entry(country, orgID)
	if e == nil {
		return 0
	}
	return g.orgSamples(g.W.Market(country), country, e, d)
}

// orgSamples is OrgSamples for an already-resolved (market, entry) pair —
// the allocation-free inner loop of Generate and the per-country scans.
func (g *Generator) orgSamples(m *world.Market, country string, e *world.Entry, d dates.Date) int64 {
	apparent := g.W.APNICUsers(country, e.Org.ID, d)
	mean := apparent * g.adReach(m, d) * e.AdFactor * e.APNICBias *
		g.SampleRate * g.windowNoise(m, e, d) * g.shutdownFactor(country, d)
	if mean <= 0 {
		return 0
	}
	s := g.root.Derive(chanPoisson, m.Key(), e.Key, uint64(int64(d.DayNumber())))
	return s.Poisson(mean)
}

// ASCount is one (country, AS) raw window-sample count before the
// inclusion floor: the exchange currency between the batch generator and
// the streaming rolling estimator. Both feed the same counts into
// AssembleReport, which is what makes streaming estimates converge
// *exactly* to batch reports once a day's stream is drained.
type ASCount struct {
	CC      string
	ASN     uint32
	Samples int64
}

// DayCounts produces every per-AS raw sample count for one day: the org
// totals split across sibling ASes by their fixed weights (the last AS
// takes the rounding remainder), with no inclusion floor applied. Zero
// shares are omitted — they carry no impressions and the floor (>= 1
// everywhere in this repo) would drop them anyway.
func (g *Generator) DayCounts(d dates.Date) []ASCount {
	counts := make([]ASCount, 0, 4096)
	for _, code := range g.W.Countries() {
		m := g.W.Market(code)
		for _, e := range m.ActiveEntries(d) {
			total := g.orgSamples(m, code, e, d)
			if total == 0 {
				continue
			}
			var assigned int64
			for i, asn := range e.Org.ASNs {
				var share int64
				if i == len(e.Org.ASNs)-1 {
					share = total - assigned
				} else {
					share = int64(float64(total) * e.ASNWeights[i])
				}
				assigned += share
				if share <= 0 {
					continue
				}
				counts = append(counts, ASCount{CC: code, ASN: asn, Samples: share})
			}
		}
	}
	return counts
}

// AssembleReport builds one day's report from raw per-AS counts: the
// inclusion floor, per-country totals, ITU scaling, the rank order. The
// result is independent of the order of counts (the final sort is a
// total order over distinct (CC, ASN) rows), so a streaming accumulator
// that reassembles the same multiset of counts in any order produces a
// report equal to the batch generator's.
//
// Counts must not repeat a (CC, ASN) pair; DayCounts never does, and the
// rolling estimator aggregates per pair before assembling.
func (g *Generator) AssembleReport(d dates.Date, counts []ASCount) *Report {
	rep := &Report{Date: d, Window: g.Window}

	countrySamples := make(map[string]int64, 256)
	for _, c := range counts {
		if c.Samples < g.MinSamples {
			continue
		}
		countrySamples[c.CC] += c.Samples
	}

	worldITU := g.ITU.WorldTotal(d)
	// Counts arrive grouped by country; memoize the per-country ITU
	// estimate rather than re-deriving it once per row.
	ituByCC := make(map[string]float64, len(countrySamples))
	rep.Rows = make([]Row, 0, len(counts))
	for _, r := range counts {
		if r.Samples < g.MinSamples {
			continue
		}
		ctotal := countrySamples[r.CC]
		if ctotal == 0 {
			continue
		}
		ituUsers, ok := ituByCC[r.CC]
		if !ok {
			ituUsers = g.ITU.Users(r.CC, d)
			ituByCC[r.CC] = ituUsers
		}
		users := float64(r.Samples) / float64(ctotal) * ituUsers
		rep.Rows = append(rep.Rows, Row{
			ASN:         r.ASN,
			ASName:      g.asName[r.ASN],
			CC:          r.CC,
			Users:       users,
			PctCountry:  100 * float64(r.Samples) / float64(ctotal),
			PctInternet: 100 * users / worldITU,
			Samples:     r.Samples,
		})
	}

	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Users != rep.Rows[j].Users {
			return rep.Rows[i].Users > rep.Rows[j].Users
		}
		if rep.Rows[i].ASN != rep.Rows[j].ASN {
			return rep.Rows[i].ASN < rep.Rows[j].ASN
		}
		// (Users, ASN) ties can only cross countries (a (CC, ASN) pair
		// appears at most once); breaking them makes the order a total
		// one, independent of the counts' arrival order.
		return rep.Rows[i].CC < rep.Rows[j].CC
	})
	for i := range rep.Rows {
		rep.Rows[i].Rank = i + 1
	}
	return rep
}

// Generate produces the report for one day. Reports are independent: the
// same (world, seed, date) always yields the same report regardless of
// what was generated before.
func (g *Generator) Generate(d dates.Date) *Report {
	return g.AssembleReport(d, g.DayCounts(d))
}

// OrgUsers aggregates a report's estimated users to (country, org) pairs
// using the registry (§3.1). The result is freshly allocated; callers that
// only read should prefer OrgUsersCached.
func (r *Report) OrgUsers(reg *orgs.Registry) map[orgs.CountryOrg]float64 {
	byAS := make(map[orgs.CountryAS]float64, len(r.Rows))
	for _, row := range r.Rows {
		byAS[orgs.CountryAS{Country: row.CC, ASN: row.ASN}] += row.Users
	}
	return reg.Aggregate(byAS)
}

// OrgUsersCached returns the OrgUsers aggregation, computing it at most
// once per (report, registry) — experiment runners all aggregate the same
// cached day report, and re-running the full aggregation per runner (or
// per country, as TopOrgs used to) dominated their cost. The returned map
// is shared: callers must not modify it.
func (r *Report) OrgUsersCached(reg *orgs.Registry) map[orgs.CountryOrg]float64 {
	r.aggMu.Lock()
	defer r.aggMu.Unlock()
	if r.aggUsers == nil || r.aggReg != reg {
		r.aggUsers = r.OrgUsers(reg)
		r.aggReg = reg
	}
	return r.aggUsers
}

// OrgSamples aggregates a report's raw samples to (country, org) pairs.
func (r *Report) OrgSamples(reg *orgs.Registry) map[orgs.CountryOrg]float64 {
	byAS := make(map[orgs.CountryAS]float64, len(r.Rows))
	for _, row := range r.Rows {
		byAS[orgs.CountryAS{Country: row.CC, ASN: row.ASN}] += float64(row.Samples)
	}
	return reg.Aggregate(byAS)
}

// CountryUsers sums estimated users per country.
func (r *Report) CountryUsers() map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		out[row.CC] += row.Users
	}
	return out
}

// CountrySamples sums raw samples per country.
func (r *Report) CountrySamples() map[string]int64 {
	out := map[string]int64{}
	for _, row := range r.Rows {
		out[row.CC] += row.Samples
	}
	return out
}

// TopOrgs returns a country's org IDs ordered by estimated users,
// descending. It reads the cached aggregation, so looping it over every
// country costs one OrgUsers pass, not one per country.
func (r *Report) TopOrgs(reg *orgs.Registry, country string) []string {
	users := orgs.CountryShares(r.OrgUsersCached(reg), country)
	ids := make([]string, 0, len(users))
	for id := range users {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if users[ids[i]] != users[ids[j]] {
			return users[ids[i]] > users[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// CountryTotals computes one country's total window samples and ITU-scaled
// estimated users on a date without generating the full world report.
// The best-day selection rule (§5.1.2) scans 60 days per country, and this
// keeps that scan cheap. Totals include only ASes above the inclusion
// floor, like the published dataset. Results are memoized per
// (country, day): the scan is a pure function of (seed, country, day), so
// repeat lookups — Figure 7's weekly 2024 sweep, Figure 8's best-day
// windows, the artifact checks — share one computation.
func (g *Generator) CountryTotals(country string, d dates.Date) (samples int64, users float64) {
	g.totalsReqs.Add(1)
	t := g.totalsMemo.Get(ccDay{country, d.DayNumber()}, func() countryTotals {
		g.totalsScans.Add(1)
		s, u := g.countryTotalsScan(country, d)
		return countryTotals{samples: s, users: u}
	})
	return t.samples, t.users
}

// countryTotalsScan is the uncached CountryTotals computation.
func (g *Generator) countryTotalsScan(country string, d dates.Date) (samples int64, users float64) {
	m := g.W.Market(country)
	if m == nil {
		return 0, 0
	}
	for _, e := range m.ActiveEntries(d) {
		total := g.orgSamples(m, country, e, d)
		if total == 0 {
			continue
		}
		var assigned int64
		for i := range e.Org.ASNs {
			var share int64
			if i == len(e.Org.ASNs)-1 {
				share = total - assigned
			} else {
				share = int64(float64(total) * e.ASNWeights[i])
			}
			assigned += share
			if share >= g.MinSamples {
				samples += share
			}
		}
	}
	if samples > 0 {
		users = g.ITU.Users(country, d)
	}
	return samples, users
}

// CountryOrgShares computes one country's per-org share of estimated
// users on a date without generating the full world report: shares within
// a country equal the org's share of the country's included samples.
// Orgs entirely below the inclusion floor are absent, like in the
// published dataset.
//
// Results are memoized per (country, day) and the returned map is shared
// between callers: treat it as read-only. Every call site in this
// repository only reads (alignment, K-S, rendering); a caller that needs
// to mutate must copy first.
func (g *Generator) CountryOrgShares(country string, d dates.Date) map[string]float64 {
	g.sharesReqs.Add(1)
	return g.sharesMemo.Get(ccDay{country, d.DayNumber()}, func() map[string]float64 {
		g.sharesScans.Add(1)
		return g.countryOrgSharesScan(country, d)
	})
}

// countryOrgSharesScan is the uncached CountryOrgShares computation.
func (g *Generator) countryOrgSharesScan(country string, d dates.Date) map[string]float64 {
	m := g.W.Market(country)
	if m == nil {
		return nil
	}
	out := map[string]float64{}
	var total int64
	for _, e := range m.ActiveEntries(d) {
		orgTotal := g.orgSamples(m, country, e, d)
		if orgTotal == 0 {
			continue
		}
		var assigned, included int64
		for i := range e.Org.ASNs {
			var share int64
			if i == len(e.Org.ASNs)-1 {
				share = orgTotal - assigned
			} else {
				share = int64(float64(orgTotal) * e.ASNWeights[i])
			}
			assigned += share
			if share >= g.MinSamples {
				included += share
			}
		}
		if included > 0 {
			out[e.Org.ID] = float64(included)
			total += included
		}
	}
	if total == 0 {
		return map[string]float64{}
	}
	for k := range out {
		out[k] /= float64(total)
	}
	return out
}

// MemoStats reports the (country, day) memo activity: total lookups and
// uncached scans for CountryTotals and CountryOrgShares. Hits are
// reqs − scans; under the singleflight contract scans equal the number
// of distinct (country, day) pairs requested.
func (g *Generator) MemoStats() (totalsReqs, totalsScans, sharesReqs, sharesScans int64) {
	return g.totalsReqs.Load(), g.totalsScans.Load(), g.sharesReqs.Load(), g.sharesScans.Load()
}

// MemoLen reports how many (country, day) entries each memo cache holds.
func (g *Generator) MemoLen() (totals, shares int) {
	return g.totalsMemo.Len(), g.sharesMemo.Len()
}
