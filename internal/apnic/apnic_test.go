package apnic

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/itu"
	"repro/internal/orgs"
	"repro/internal/world"
)

var (
	testW   = world.MustBuild(world.Config{Seed: 11})
	testITU = itu.New(testW, 11)
)

func testGen() *Generator { return New(testW, testITU, 11) }

func TestGenerateDeterministic(t *testing.T) {
	d := dates.New(2024, 4, 21)
	r1 := testGen().Generate(d)
	r2 := testGen().Generate(d)
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range r1.Rows {
		if r1.Rows[i] != r2.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, r1.Rows[i], r2.Rows[i])
		}
	}
}

func TestGenerateOrderIndependence(t *testing.T) {
	// Generating another day first must not change a report.
	g := testGen()
	_ = g.Generate(dates.New(2024, 1, 1))
	r1 := g.Generate(dates.New(2024, 4, 21))
	r2 := testGen().Generate(dates.New(2024, 4, 21))
	if len(r1.Rows) != len(r2.Rows) || r1.Rows[0] != r2.Rows[0] {
		t.Fatal("report depends on generation order")
	}
}

func TestReportStructure(t *testing.T) {
	rep := testGen().Generate(dates.New(2024, 4, 21))
	if len(rep.Rows) < 500 {
		t.Fatalf("only %d rows", len(rep.Rows))
	}
	prev := math.Inf(1)
	for i, row := range rep.Rows {
		if row.Rank != i+1 {
			t.Fatalf("rank %d at index %d", row.Rank, i)
		}
		if row.Users > prev {
			t.Fatal("rows not sorted by users")
		}
		prev = row.Users
		if row.Samples < DefaultMinSamples {
			t.Fatalf("row with %d samples below the floor", row.Samples)
		}
		if row.PctCountry <= 0 || row.PctCountry > 100+1e-9 {
			t.Fatalf("bad %% of country %v", row.PctCountry)
		}
		if row.CC == "" || row.ASName == "" {
			t.Fatal("missing CC or AS name")
		}
	}
}

func TestCountryPercentagesSum(t *testing.T) {
	rep := testGen().Generate(dates.New(2024, 4, 21))
	sums := map[string]float64{}
	for _, row := range rep.Rows {
		sums[row.CC] += row.PctCountry
	}
	for cc, s := range sums {
		if s > 100.0001 {
			t.Errorf("%s country percentages sum to %v", cc, s)
		}
	}
	// Large, well-sampled countries should be nearly fully covered.
	if sums["FR"] < 95 {
		t.Errorf("France coverage %v%%, want ~100", sums["FR"])
	}
}

func TestEstimatesTrackTruthInHighReachCountries(t *testing.T) {
	d := dates.New(2024, 4, 21)
	rep := testGen().Generate(d)
	users := rep.OrgUsers(testW.Registry)
	// The largest French org's estimate should be within a factor ~1.6
	// of ground truth (France has high ad reach).
	top := testGen().W.Market("FR").ActiveEntries(d)[0]
	truth := testW.TrueUsers("FR", top.Org.ID, d)
	est := users[orgs.CountryOrg{Country: "FR", Org: top.Org.ID}]
	if est <= 0 {
		t.Fatal("top French org missing from APNIC")
	}
	ratio := est / truth
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("FR top org estimate/truth = %v", ratio)
	}
}

func TestLowReachCountriesUnderSampled(t *testing.T) {
	d := dates.New(2024, 4, 21)
	rep := testGen().Generate(d)
	samples := rep.CountrySamples()
	users := rep.CountryUsers()
	// Users-per-sample must be far higher in Turkmenistan than France.
	ratio := func(cc string) float64 {
		if samples[cc] == 0 {
			return math.Inf(1)
		}
		return users[cc] / float64(samples[cc])
	}
	if ratio("TM") < 5*ratio("FR") {
		t.Errorf("TM users/sample %v not ≫ FR %v", ratio("TM"), ratio("FR"))
	}
}

func TestMinSamplesDropsTinyOrgs(t *testing.T) {
	d := dates.New(2024, 4, 21)
	rep := testGen().Generate(d)
	users := rep.OrgUsers(testW.Registry)
	// APNIC must see far fewer (country, org) pairs than exist.
	pairs := testW.CountryOrgPairs(d)
	if len(users) >= len(pairs) {
		t.Fatalf("APNIC sees %d pairs of %d; the floor should drop the tail", len(users), len(pairs))
	}
	if float64(len(users)) > 0.8*float64(len(pairs)) {
		t.Errorf("APNIC sees %d of %d pairs; want a substantial miss rate", len(users), len(pairs))
	}
}

func TestRussiaAdsPauseShrinksSamples(t *testing.T) {
	g := testGen()
	before := g.Generate(dates.New(2022, 2, 1)).CountrySamples()["RU"]
	after := g.Generate(dates.New(2022, 5, 1)).CountrySamples()["RU"]
	if before == 0 {
		t.Fatal("no Russian samples before the pause")
	}
	if float64(after) > 0.6*float64(before) {
		t.Errorf("RU samples %d → %d; pause should cut them sharply", before, after)
	}
}

func TestShutdownSuppression(t *testing.T) {
	// Myanmar's weekly shutdowns create much larger relative sample
	// swings than a stable country's.
	g := testGen()
	rel := func(cc string) float64 {
		var min, max float64 = math.Inf(1), 0
		for wk := 0; wk < 12; wk++ {
			d := dates.New(2024, 1, 2).AddDays(7 * wk)
			s := float64(g.Generate(d).CountrySamples()[cc])
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max == 0 {
			return 0
		}
		return (max - min) / max
	}
	if rel("MM") < rel("DE") {
		t.Errorf("MM swing %v not above DE swing %v", rel("MM"), rel("DE"))
	}
}

func TestVPNInflatesNorway(t *testing.T) {
	d := dates.New(2024, 4, 21)
	rep := testGen().Generate(d)
	users := rep.OrgUsers(testW.Registry)
	vpn := users[orgs.CountryOrg{Country: "NO", Org: testW.VPNOrgID}]
	truth := testW.TrueUsers("NO", testW.VPNOrgID, d)
	if vpn < 5*truth {
		t.Errorf("VPN org APNIC estimate %v not ≫ true local users %v", vpn, truth)
	}
}

func TestTopOrgs(t *testing.T) {
	rep := testGen().Generate(dates.New(2024, 4, 21))
	top := rep.TopOrgs(testW.Registry, "FR")
	if len(top) < 3 {
		t.Fatalf("only %d French orgs", len(top))
	}
	users := orgs.CountryShares(rep.OrgUsers(testW.Registry), "FR")
	for i := 1; i < len(top); i++ {
		if users[top[i]] > users[top[i-1]] {
			t.Fatal("TopOrgs not descending")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rep := testGen().Generate(dates.New(2024, 4, 21))
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != rep.Date || got.Window != rep.Window {
		t.Fatalf("metadata mismatch: %v/%d", got.Date, got.Window)
	}
	if len(got.Rows) != len(rep.Rows) {
		t.Fatalf("row count %d vs %d", len(got.Rows), len(rep.Rows))
	}
	for i := range got.Rows {
		a, b := got.Rows[i], rep.Rows[i]
		if a.Rank != b.Rank || a.ASN != b.ASN || a.CC != b.CC || a.Samples != b.Samples {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, a, b)
		}
		if math.Abs(a.Users-b.Users) > 0.01 {
			t.Fatalf("row %d users %v vs %v", i, a.Users, b.Users)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("not,a,report\n")); err == nil {
		t.Error("garbage CSV should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty CSV should fail")
	}
}

func TestSamplesCorrelateWithUsersAcrossCountries(t *testing.T) {
	// The defining log-log relationship of §5.1.1: more users, more
	// samples, elasticity near (slightly below) one.
	rep := testGen().Generate(dates.New(2024, 8, 9))
	users := rep.CountryUsers()
	samples := rep.CountrySamples()
	n := 0
	for cc := range users {
		if samples[cc] > 0 {
			n++
		}
	}
	if n < 50 {
		t.Fatalf("only %d countries with data", n)
	}
}

func TestCountryTotalsMatchesReport(t *testing.T) {
	// The cheap per-country scan must agree with the full world report.
	g := testGen()
	d := dates.New(2024, 4, 21)
	rep := g.Generate(d)
	wantSamples := rep.CountrySamples()
	for _, cc := range []string{"FR", "IN", "RU", "VU"} {
		gotS, gotU := g.CountryTotals(cc, d)
		if gotS != wantSamples[cc] {
			t.Errorf("%s samples: CountryTotals=%d report=%d", cc, gotS, wantSamples[cc])
		}
		if gotS > 0 && gotU <= 0 {
			t.Errorf("%s: samples without ITU users", cc)
		}
	}
}

func TestCountryOrgSharesMatchesReport(t *testing.T) {
	g := testGen()
	d := dates.New(2024, 4, 21)
	rep := g.Generate(d)
	users := orgs.CountryShares(rep.OrgUsers(testW.Registry), "FR")
	total := 0.0
	for _, v := range users {
		total += v
	}
	fast := g.CountryOrgShares("FR", d)
	if len(fast) != len(users) {
		t.Fatalf("org sets differ: fast=%d report=%d", len(fast), len(users))
	}
	for id, v := range users {
		if math.Abs(fast[id]-v/total) > 1e-9 {
			t.Errorf("share mismatch for %s: fast=%v report=%v", id, fast[id], v/total)
		}
	}
}
