package apnic

import (
	"fmt"
	"strconv"

	"repro/internal/dates"
	"repro/internal/obsv"
	"repro/internal/source"
)

// DatasetName is the registry name of the APNIC per-AS population dataset.
const DatasetName = "apnic"

// Frame converts the report to the uniform columnar form. The columns
// mirror the public dataset's CSV layout (§3.2); the conversion is
// lossless — ReportFromFrame reconstructs an equal report.
func (r *Report) Frame() *source.Frame {
	f := source.NewFrame(DatasetName, r.Date)
	f.AddMeta("window-days", strconv.Itoa(r.Window))
	rank := f.AddInts("Rank")
	as := f.AddInts("AS")
	name := f.AddStrings("AS Name")
	cc := f.AddStrings("CC")
	users := f.AddFloats("Estimated Users")
	pctCC := f.AddFloats("% of Country")
	pctNet := f.AddFloats("% of Internet")
	samples := f.AddInts("Samples")
	for _, row := range r.Rows {
		rank.Ints = append(rank.Ints, int64(row.Rank))
		as.Ints = append(as.Ints, int64(row.ASN))
		name.Strs = append(name.Strs, row.ASName)
		cc.Strs = append(cc.Strs, row.CC)
		users.Floats = append(users.Floats, row.Users)
		pctCC.Floats = append(pctCC.Floats, row.PctCountry)
		pctNet.Floats = append(pctNet.Floats, row.PctInternet)
		samples.Ints = append(samples.Ints, row.Samples)
	}
	return f
}

// ReportFromFrame reconstructs the native report from its frame form.
func ReportFromFrame(f *source.Frame) (*Report, error) {
	wd, ok := f.MetaValue("window-days")
	if !ok {
		return nil, fmt.Errorf("apnic: frame has no window-days metadata")
	}
	window, err := strconv.Atoi(wd)
	if err != nil {
		return nil, fmt.Errorf("apnic: frame window-days: %w", err)
	}
	rank, as := f.Col("Rank"), f.Col("AS")
	name, cc := f.Col("AS Name"), f.Col("CC")
	users, pctCC, pctNet := f.Col("Estimated Users"), f.Col("% of Country"), f.Col("% of Internet")
	samples := f.Col("Samples")
	if rank == nil || as == nil || name == nil || cc == nil || users == nil || pctCC == nil || pctNet == nil || samples == nil {
		return nil, fmt.Errorf("apnic: frame is missing report columns")
	}
	r := &Report{Date: f.Date, Window: window, Rows: make([]Row, f.Rows())}
	for i := range r.Rows {
		r.Rows[i] = Row{
			Rank:        int(rank.Ints[i]),
			ASN:         uint32(as.Ints[i]),
			ASName:      name.Strs[i],
			CC:          cc.Strs[i],
			Users:       users.Floats[i],
			PctCountry:  pctCC.Floats[i],
			PctInternet: pctNet.Floats[i],
			Samples:     samples.Ints[i],
		}
	}
	return r, nil
}

// Source adapts the generator to the uniform source interface, caching
// the native reports day-keyed so frame conversion never regenerates.
type Source struct {
	gen  *Generator
	days *source.Days[*Report]
}

// NewSource wraps a generator as a registrable source whose native-report
// cache holds at most cacheDays days.
func NewSource(gen *Generator, metrics *obsv.Registry, cacheDays int) *Source {
	return &Source{
		gen:  gen,
		days: source.NewDays[*Report](metrics, "source", DatasetName, cacheDays),
	}
}

// Generator returns the wrapped generator.
func (s *Source) Generator() *Generator { return s.gen }

// Name implements source.Source.
func (s *Source) Name() string { return DatasetName }

// Window implements source.Source.
func (s *Source) Window() source.Window {
	return source.Window{First: source.SpanFirst, Last: source.SpanLast, Cadence: source.CadenceDaily}
}

// Report returns the memoized native report for a day.
func (s *Source) Report(d dates.Date) *Report {
	return s.days.Get(d, s.gen.Generate)
}

// Generate implements source.Source.
func (s *Source) Generate(d dates.Date) *source.Frame {
	return s.Report(d).Frame()
}

// CacheStats reports the native report cache's activity.
func (s *Source) CacheStats() source.CacheStats { return s.days.Stats() }
